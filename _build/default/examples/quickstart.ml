(* Quickstart: the whole GLAF pipeline on a small kernel.

   Build a program through the GPI-equivalent builder API, let the
   auto-parallelizer annotate it, generate Fortran and C, then execute
   the generated Fortran through the interpreter — serial and parallel
   — and check the results agree.

   Run with:  dune exec examples/quickstart.exe
*)

open Glaf_ir
open Glaf_builder
module E = Expr
module S = Stmt

let () =
  (* 1. build: a dot-product-with-scaling kernel, as GPI actions *)
  let b = Build.create "quickstart" in
  Build.add_module b "demo";
  Build.start_function b "scaled_dot" ~return:Types.T_real8;
  Build.add_param b (Grid.scalar Types.T_int "n");
  Build.add_param b
    (Grid.array Types.T_real8 ~dims:[ Grid.dim (Grid.Sym "n") ] "x");
  Build.add_param b
    (Grid.array Types.T_real8 ~dims:[ Grid.dim (Grid.Sym "n") ] "y");
  Build.add_grid b
    (Grid.array Types.T_real8 ~dims:[ Grid.dim (Grid.Sym "n") ] "work");
  Build.add_grid b (Grid.scalar Types.T_real8 "total");
  Build.start_step b "scale";
  Build.add_stmt b
    (S.for_ "i" ~lo:(E.int 1) ~hi:(E.var "n")
       [
         S.assign_idx "work" [ E.var "i" ]
           E.(idx "x" [ var "i" ] * idx "y" [ var "i" ] * real 2.0);
       ]);
  Build.start_step b "reduce";
  Build.add_stmt b (S.assign_var "total" (E.real 0.0));
  Build.add_stmt b
    (S.for_ "i" ~lo:(E.int 1) ~hi:(E.var "n")
       [ S.assign_var "total" E.(var "total" + idx "work" [ var "i" ]) ]);
  Build.add_stmt b (S.Return (Some (E.var "total")));
  let program = Build.finish b in
  print_endline "== grid IR ==";
  print_endline (Pp.program_to_string program);

  (* 2. auto-parallelize *)
  let annotated, report = Glaf_analysis.Autopar.run program in
  print_endline "\n== auto-parallelization report ==";
  Format.printf "%a@." Glaf_analysis.Autopar.pp_report report;

  (* 3. generate code *)
  let fortran = Glaf_codegen.Fortran_gen.to_source annotated in
  print_endline "== generated Fortran ==";
  print_string fortran;
  print_endline "\n== generated C (excerpt) ==";
  let c = Glaf_codegen.C_gen.gen_program annotated in
  String.split_on_char '\n' c
  |> List.filteri (fun i _ -> i < 18)
  |> List.iter print_endline;

  (* 4. execute the generated Fortran: serial vs 4 threads *)
  let wrapper =
    {|
real*8 function driver(n, threads)
  integer :: n, threads
  real*8, allocatable :: a(:), b(:)
  integer :: i
  allocate(a(n), b(n))
  do i = 1, n
    a(i) = i * 0.25d0
    b(i) = 1.0d0 / i
  end do
  driver = scaled_dot(n, a, b)
end function driver
|}
  in
  let cu = Glaf_fortran.Parser.parse_string (fortran ^ wrapper) in
  let run threads =
    let st = Glaf_interp.Interp.make_state cu in
    Glaf_interp.Interp.set_threads st threads;
    match
      Glaf_interp.Interp.call st "driver"
        [ Glaf_fortran.Ast.Int_lit 1000; Glaf_fortran.Ast.Int_lit threads ]
    with
    | Some v -> Glaf_runtime.Value.to_float v
    | None -> assert false
  in
  let serial = run 1 and parallel = run 4 in
  Printf.printf "\n== execution ==\nserial   = %.6f\nparallel = %.6f\nagree    = %b\n"
    serial parallel
    (Float.abs (serial -. parallel) < 1e-9)
