(* The FUN3D Jacobian-reconstruction case study (§4.2), end to end:

   GLAF decomposes the original single-function reconstruction into
   five sub-functions; this example walks the Figure-7 option matrix
   (parallelization level x no-reallocation), verifying each variant's
   RMS against the original serial version and reporting the
   reallocation counts and modeled paper-scale speed-ups.

   Run with:  dune exec examples/fun3d_jacobian.exe
*)

open Glaf_workloads

let () =
  (match Fun3d.integration_issues () with
  | [] -> print_endline "integration check: OK"
  | issues ->
    List.iter
      (fun i -> print_endline (Glaf_integration.Checker.issue_to_string i))
      issues);

  print_endline "\n== dynamic temporaries per GLAF function ==";
  List.iter
    (fun (f, n) -> Printf.printf "  %-14s %d\n" f n)
    (Fun3d_glaf.dynamic_temp_counts ());

  print_endline
    "\n== option matrix on a 150-cell mesh (interpreted; RMS tolerance 1e-7) ==";
  List.iter
    (fun (v, diff, allocs) ->
      Printf.printf "  %-40s rms diff %9.2e  allocations %6d\n"
        (Fun3d.variant_name v) diff allocs)
    (Fun3d.verify ~threads:2 ~ncell:150 ());

  print_endline "\n== Figure 7 (modeled, 1M cells, 16 threads) ==";
  List.iter
    (fun (name, s) ->
      Printf.printf "  %-40s %8.3fx%s\n" name s
        (if s < 1.0 then Printf.sprintf "  (1/%.0f)" (1.0 /. s) else ""))
    (Fun3d.figure7 ());
  print_endline
    "\npaper landmarks: best GLAF 1.67x, manual 3.85x (2.3x over best GLAF)";

  (* show the no-reallocation effect in generated code *)
  print_endline "\n== generated edge_loop allocation prologue (no-realloc) ==";
  let src = Glaf_fortran.Pp_ast.to_string (Fun3d.generated_cu Fun3d_glaf.best_options) in
  String.split_on_char '\n' src
  |> List.filter (fun l ->
         let t = String.trim l in
         String.length t > 3
         && (String.sub t 0 3 = "if " || String.length t > 8 && String.sub t 0 8 = "allocate"))
  |> List.filteri (fun i _ -> i < 8)
  |> List.iter print_endline
