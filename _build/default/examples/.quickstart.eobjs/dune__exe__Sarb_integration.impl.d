examples/sarb_integration.ml: Glaf_fortran Glaf_integration Glaf_optimizer Glaf_workloads List Printf Sarb Sarb_legacy String
