examples/gpi_script_demo.mli:
