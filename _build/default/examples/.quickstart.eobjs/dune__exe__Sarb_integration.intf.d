examples/sarb_integration.mli:
