examples/layout_and_collapse.ml: Build Expr Float Glaf_builder Glaf_codegen Glaf_fortran Glaf_interp Glaf_ir Glaf_optimizer Glaf_runtime Grid List Printf Stmt String Types
