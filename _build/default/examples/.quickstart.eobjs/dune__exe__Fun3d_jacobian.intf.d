examples/fun3d_jacobian.mli:
