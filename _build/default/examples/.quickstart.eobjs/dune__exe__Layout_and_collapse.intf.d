examples/layout_and_collapse.mli:
