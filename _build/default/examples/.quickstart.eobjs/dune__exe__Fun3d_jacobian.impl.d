examples/fun3d_jacobian.ml: Fun3d Fun3d_glaf Glaf_fortran Glaf_integration Glaf_workloads List Printf String
