examples/quickstart.ml: Build Expr Float Format Glaf_analysis Glaf_builder Glaf_codegen Glaf_fortran Glaf_interp Glaf_ir Glaf_runtime Grid List Pp Printf Stmt String Types
