examples/zones_sarb.mli:
