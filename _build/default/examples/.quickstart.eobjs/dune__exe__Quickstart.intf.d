examples/quickstart.mli:
