examples/zones_sarb.ml: Array Float Glaf_fortran Glaf_interp Glaf_optimizer Glaf_runtime Glaf_workloads List Printf Sarb Value Zones
