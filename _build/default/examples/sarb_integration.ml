(* The Synoptic SARB case study (§4.1), end to end:

   1. scan the legacy code base (modules, COMMON blocks, TYPEs);
   2. check the GLAF program's integration surface against it;
   3. auto-parallelize and generate Fortran for each Table-2 variant;
   4. substitute the six kernels into the legacy program;
   5. verify functional equivalence (§4.1.1);
   6. reproduce Figures 5 and 6 on the machine model.

   Run with:  dune exec examples/sarb_integration.exe
*)

open Glaf_workloads

let () =
  (* 1-2. legacy model + integration check *)
  let legacy_model = Glaf_integration.Legacy_model.of_ast (Sarb_legacy.parse ()) in
  Printf.printf "legacy modules: %s\n"
    (String.concat ", "
       (List.map
          (fun m -> m.Glaf_integration.Legacy_model.m_name)
          legacy_model.Glaf_integration.Legacy_model.modules));
  (match Sarb.integration_issues () with
  | [] -> print_endline "integration check: OK (all grids resolve against legacy code)"
  | issues ->
    List.iter
      (fun i -> print_endline (Glaf_integration.Checker.issue_to_string i))
      issues);

  (* 3. show a fragment of the v3 generated code *)
  let v3_src =
    Glaf_fortran.Pp_ast.to_string
      (Sarb.generated_cu (Sarb.Glaf_parallel Glaf_optimizer.Directive_policy.V3))
  in
  print_endline "\n== GLAF-parallel v3, longwave exchange loop (generated) ==";
  let lines = String.split_on_char '\n' v3_src in
  let rec show started n = function
    | [] -> ()
    | _ when n = 0 -> ()
    | line :: rest ->
      let hit = String.trim line = "! step: flux_exchange" in
      if started || hit then begin
        print_endline line;
        show true (n - 1) rest
      end
      else show false n rest
  in
  show false 14 lines;

  (* 4-5. substitution + verification *)
  print_endline "\n== section 4.1.1 verification (side-by-side vs original) ==";
  List.iter
    (fun (v, diff) ->
      Printf.printf "  %-22s max |diff| = %9.2e  %s\n" (Sarb.variant_name v)
        diff
        (if diff < 1e-9 then "equivalent" else "MISMATCH"))
    (Sarb.verify ~threads:2 ());

  (* 6. figures *)
  print_endline "\n== Figure 5 (speed-up vs original serial, 4 threads) ==";
  List.iter
    (fun (name, s) ->
      let paper = List.assoc name Sarb.figure5_paper in
      Printf.printf "  %-22s paper %.2fx   this repo %.2fx\n" name paper s)
    (Sarb.figure5 ());
  print_endline "\n== Figure 6 (v3 vs GLAF serial, thread sweep) ==";
  List.iter
    (fun (t, s) ->
      let paper = List.assoc t Sarb.figure6_paper in
      Printf.printf "  %dT  paper %.2fx   this repo %.2fx\n" t paper s)
    (Sarb.figure6 ())
