(* The Synoptic SARB execution context (§2.2): the globe is split into
   latitude zones processed in parallel (MPI in the original), each
   zone's time proportional to its size; GLAF contributes the
   intra-zone parallelism.  This example runs the v3-integrated SARB
   kernel over a set of cosine-sized zones on the domain-based zone
   scheduler, with a per-zone temperature perturbation, and reports
   the load balance of static vs LPT scheduling.

   Run with:  dune exec examples/zones_sarb.exe
*)

open Glaf_workloads
open Glaf_runtime

let () =
  let zones = Zones.latitude_zones ~zones:12 ~total_cells:12_000 in
  Printf.printf "zones (cells proportional to cos latitude):\n";
  List.iter
    (fun z ->
      Printf.printf "  zone %2d  lat %+6.1f  cells %5d\n" z.Zones.zone_id
        z.Zones.lat_deg z.Zones.size)
    zones;

  (* one interpreter state per worker is the MPI-rank analogue: ranks
     share nothing *)
  let cu = Sarb.integrated_cu (Sarb.Glaf_parallel Glaf_optimizer.Directive_policy.V3) in
  let checksums = Array.make (List.length zones + 1) nan in
  let process (z : Zones.zone) =
    let st = Glaf_interp.Interp.make_state ~printer:ignore cu in
    Glaf_interp.Interp.set_threads st 2;
    ignore (Glaf_interp.Interp.call st "sarb_init_profiles" []);
    (* per-zone forcing: equatorial zones are warmer *)
    let dtemp = 10.0 *. cos (z.Zones.lat_deg *. Float.pi /. 180.0) in
    ignore
      (Glaf_interp.Interp.call st "entropy_interface"
         [ Glaf_fortran.Ast.Real_lit (dtemp, true);
           Glaf_fortran.Ast.Real_lit (1.0, true) ]);
    match Glaf_interp.Interp.call st "sarb_checksum" [] with
    | Some v -> checksums.(z.Zones.zone_id) <- Value.to_float v
    | None -> ()
  in
  let schedule = Zones.schedule_lpt zones ~workers:3 in
  Zones.run schedule ~f:process;
  Printf.printf "\nper-zone checksums (3 workers, LPT schedule):\n";
  List.iter
    (fun z ->
      Printf.printf "  zone %2d  checksum %14.4f\n" z.Zones.zone_id
        checksums.(z.Zones.zone_id))
    zones;

  (* load balance comparison under a size-proportional cost *)
  let cost z = float_of_int z.Zones.size in
  let static = Zones.makespan (Zones.schedule_static zones ~workers:3) ~cost in
  let lpt = Zones.makespan schedule ~cost in
  let bound = Zones.total_work zones ~cost /. 3.0 in
  Printf.printf
    "\nload balance (cells on the critical worker):\n  static blocks %8.0f\n  LPT %17.0f\n  perfect-balance bound %.0f\n"
    static lpt bound;
  Printf.printf "\ndeterminism check: zone 1 = zone 12 (symmetric forcing): %b\n"
    (Float.abs (checksums.(1) -. checksums.(12)) < 1e-6)
