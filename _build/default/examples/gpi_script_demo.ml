(* The GPI action-script front-end: a textual replay of the GUI
   interactions of the paper's Figs. 2-4 — create grids (including
   grids living in existing modules, TYPE variables and COMMON
   blocks), choose a void return type to get a SUBROUTINE, add steps
   with foreach index ranges and formulas.

   Run with:  dune exec examples/gpi_script_demo.exe
*)

let script =
  {|
program point_charges
module module1

function calc_point_charge returns real8
  param n_atoms integer
  param charge real8 dims(n_atoms)
  param xs real8 dims(n_atoms)
  param px real8
  grid ke real8
  grid sum_f real8
  grid r real8
  step constants
    set ke = 8.9875e9
    set sum_f = 0.0
  step accumulate
    foreach row = 1, n_atoms
      set r = xs(row) - px
      if abs(r) > 1.0e-9
        set sum_f = sum_f + ke * charge(row) / (r * r)
      end if
    end foreach
    return sum_f

function apply_field returns void
  param n_atoms integer
  param charge real8 dims(n_atoms)
  grid efield real8 usemodule fieldmod
  grid scalefac real8 common calib
  step scale_charges
    foreach row = 1, n_atoms
      set charge(row) = charge(row) * scalefac * efield
    end foreach
end program
|}

let () =
  let program = Glaf_builder.Gpi_script.run script in
  print_endline "== IR built from the action script ==";
  print_endline (Glaf_ir.Pp.program_to_string program);

  let annotated, report = Glaf_analysis.Autopar.run program in
  print_endline "\n== analysis ==";
  Format.printf "%a@." Glaf_analysis.Autopar.pp_report report;

  print_endline "== generated Fortran ==";
  print_string (Glaf_codegen.Fortran_gen.to_source annotated);

  (* run the generated function *)
  let wrapper =
    {|
real*8 function demo()
  real*8 :: qs(3), ps(3)
  qs(1) = 1.0d-9; qs(2) = -2.0d-9; qs(3) = 0.5d-9
  ps(1) = 0.0d0; ps(2) = 0.5d0; ps(3) = 1.5d0
  demo = calc_point_charge(3, qs, ps, 1.0d0)
end function demo
|}
  in
  let src = Glaf_codegen.Fortran_gen.to_source annotated ^ wrapper in
  let st = Glaf_interp.Interp.make_state (Glaf_fortran.Parser.parse_string src) in
  match Glaf_interp.Interp.call st "demo" [] with
  | Some v ->
    Printf.printf "\n== execution ==\nforce on probe = %s N\n"
      (Glaf_runtime.Value.to_string v)
  | None -> print_endline "no result"
