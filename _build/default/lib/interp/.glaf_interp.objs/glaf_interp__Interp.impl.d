lib/interp/interp.ml: Array Ast Atomic Domain Farray Float Format Glaf_fortran Glaf_runtime Hashtbl Intrinsics List Omp Option Printf String Value
