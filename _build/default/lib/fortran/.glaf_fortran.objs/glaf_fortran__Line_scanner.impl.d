lib/fortran/line_scanner.pp.ml: Buffer List String
