lib/fortran/pp_ast.pp.ml: Ast Buffer Float Format List Printf String
