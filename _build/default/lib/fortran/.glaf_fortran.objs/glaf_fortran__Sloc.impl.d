lib/fortran/sloc.pp.ml: Ast Buffer Line_scanner List Pp_ast
