lib/fortran/ast.pp.ml: List Option Ppx_deriving_runtime String
