lib/fortran/lexer.pp.ml: Buffer Format List Printf String
