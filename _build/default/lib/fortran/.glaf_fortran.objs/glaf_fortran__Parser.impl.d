lib/fortran/parser.pp.ml: Array Ast Format Lexer Line_scanner List
