(** Tokenizer for one logical Fortran line.

    Keywords are not distinguished from identifiers here — Fortran has
    no reserved words; the parser decides from context.  Dotted
    operators ([.and.], [.true.], ...) become dedicated tokens. *)

type token =
  | Ident of string  (** lower-cased *)
  | Int of int
  | Real of float * bool  (** is_double *)
  | Str of string
  | Lparen
  | Rparen
  | Comma
  | Colon
  | Dcolon  (** :: *)
  | Percent
  | Assign_tok  (** = *)
  | Arrow  (** => *)
  | Plus
  | Minus
  | Star
  | Dstar  (** ** *)
  | Slash
  | Dslash  (** // *)
  | Eq_tok  (** == or .eq. *)
  | Ne_tok
  | Lt_tok
  | Le_tok
  | Gt_tok
  | Ge_tok
  | And_tok
  | Or_tok
  | Not_tok
  | Eqv_tok
  | Neqv_tok
  | True_tok
  | False_tok
  | Eof

let pp_token ppf t =
  let s =
    match t with
    | Ident s -> Printf.sprintf "ident %S" s
    | Int n -> Printf.sprintf "int %d" n
    | Real (x, d) -> Printf.sprintf "real %g%s" x (if d then "d" else "")
    | Str s -> Printf.sprintf "string %S" s
    | Lparen -> "(" | Rparen -> ")" | Comma -> "," | Colon -> ":"
    | Dcolon -> "::" | Percent -> "%" | Assign_tok -> "=" | Arrow -> "=>"
    | Plus -> "+" | Minus -> "-" | Star -> "*" | Dstar -> "**"
    | Slash -> "/" | Dslash -> "//"
    | Eq_tok -> "==" | Ne_tok -> "/=" | Lt_tok -> "<" | Le_tok -> "<="
    | Gt_tok -> ">" | Ge_tok -> ">="
    | And_tok -> ".and." | Or_tok -> ".or." | Not_tok -> ".not."
    | Eqv_tok -> ".eqv." | Neqv_tok -> ".neqv."
    | True_tok -> ".true." | False_tok -> ".false."
    | Eof -> "<eof>"
  in
  Format.pp_print_string ppf s

exception Lex_error of string

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

(* Scan a number starting at [i]; returns token and next index.
   Handles: 123, 1.5, "1.", ".5", 1e5, 1.5e-3, 1.0d0 / 2d0 (double),
   and kind suffixes 1.0_8 / 1.0_dp (double).  A dot followed by a
   letter other than an exponent marker ends the number, so "1.and."
   lexes as [1] [.and.]. *)
let scan_number s i =
  let n = String.length s in
  let buf = Buffer.create 16 in
  let peek j = if j < n then Some s.[j] else None in
  let rec digits j =
    match peek j with
    | Some c when is_digit c ->
      Buffer.add_char buf c;
      digits (j + 1)
    | _ -> j
  in
  let j = digits i in
  let saw_dot, j =
    match (peek j, peek (j + 1)) with
    | Some '.', Some c when is_digit c ->
      Buffer.add_char buf '.';
      (true, digits (j + 1))
    | Some '.', Some ('e' | 'E' | 'd' | 'D') ->
      (* "1.e5" / "1.d0": dot belongs to the number only if an exponent
         follows; otherwise it is ".d..."-style nonsense we reject later *)
      Buffer.add_char buf '.';
      (true, j + 1)
    | Some '.', Some c when is_alpha c -> (false, j) (* dotted operator *)
    | Some '.', _ ->
      Buffer.add_char buf '.';
      (true, j + 1)
    | _ -> (false, j)
  in
  let is_double = ref false in
  let saw_exp = ref false in
  let j =
    match peek j with
    | Some (('e' | 'E' | 'd' | 'D') as c) -> (
      let sign_ok k =
        match peek k with
        | Some c2 when is_digit c2 -> Some k
        | Some ('+' | '-') -> (
          match peek (k + 1) with
          | Some c3 when is_digit c3 -> Some k
          | _ -> None)
        | _ -> None
      in
      match sign_ok (j + 1) with
      | None -> j
      | Some _ ->
        saw_exp := true;
        if c = 'd' || c = 'D' then is_double := true;
        Buffer.add_char buf 'e';
        let j =
          match peek (j + 1) with
          | Some (('+' | '-') as sg) ->
            Buffer.add_char buf sg;
            j + 2
          | _ -> j + 1
        in
        digits j)
    | _ -> j
  in
  (* kind suffix: _8, _dp *)
  let j =
    if j < n && s.[j] = '_' then begin
      let k = ref (j + 1) in
      while !k < n && is_alnum s.[!k] do
        incr k
      done;
      let kind = String.lowercase_ascii (String.sub s (j + 1) (!k - j - 1)) in
      if kind = "8" || kind = "dp" then is_double := true;
      !k
    end
    else j
  in
  let text = Buffer.contents buf in
  let tok =
    if saw_dot || !saw_exp || !is_double then
      Real (float_of_string text, !is_double)
    else
      match int_of_string_opt text with
      | Some v -> Int v
      | None -> Real (float_of_string text, false)
  in
  (tok, j)

let dotted_ops =
  [
    ("and", And_tok); ("or", Or_tok); ("not", Not_tok);
    ("eq", Eq_tok); ("ne", Ne_tok); ("lt", Lt_tok); ("le", Le_tok);
    ("gt", Gt_tok); ("ge", Ge_tok); ("eqv", Eqv_tok); ("neqv", Neqv_tok);
    ("true", True_tok); ("false", False_tok);
  ]

(** Tokenize one logical line. *)
let tokenize line =
  let n = String.length line in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let rec go i =
    if i >= n then ()
    else
      let c = line.[i] in
      if c = ' ' || c = '\t' || c = '\r' then go (i + 1)
      else if is_digit c then begin
        let tok, j = scan_number line i in
        push tok;
        go j
      end
      else if c = '.' && i + 1 < n && is_digit line.[i + 1] then begin
        let tok, j = scan_number line i in
        push tok;
        go j
      end
      else if c = '.' then begin
        (* dotted operator *)
        let j = ref (i + 1) in
        while !j < n && is_alpha line.[!j] do
          incr j
        done;
        if !j < n && line.[!j] = '.' then begin
          let word = String.lowercase_ascii (String.sub line (i + 1) (!j - i - 1)) in
          match List.assoc_opt word dotted_ops with
          | Some t ->
            push t;
            go (!j + 1)
          | None -> raise (Lex_error (Printf.sprintf "unknown operator .%s." word))
        end
        else raise (Lex_error "stray '.'")
      end
      else if is_alpha c then begin
        let j = ref i in
        while !j < n && is_alnum line.[!j] do
          incr j
        done;
        push (Ident (String.lowercase_ascii (String.sub line i (!j - i))));
        go !j
      end
      else if c = '\'' || c = '"' then begin
        let quote = c in
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Lex_error "unterminated string")
          else if line.[j] = quote then
            if j + 1 < n && line.[j + 1] = quote then begin
              Buffer.add_char buf quote;
              str (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf line.[j];
            str (j + 1)
          end
        in
        let j = str (i + 1) in
        push (Str (Buffer.contents buf));
        go j
      end
      else
        let two = if i + 1 < n then String.sub line i 2 else "" in
        match two with
        | "::" -> push Dcolon; go (i + 2)
        | "**" -> push Dstar; go (i + 2)
        | "//" -> push Dslash; go (i + 2)
        | "==" -> push Eq_tok; go (i + 2)
        | "/=" -> push Ne_tok; go (i + 2)
        | "<=" -> push Le_tok; go (i + 2)
        | ">=" -> push Ge_tok; go (i + 2)
        | "=>" -> push Arrow; go (i + 2)
        | _ -> (
          match c with
          | '(' -> push Lparen; go (i + 1)
          | ')' -> push Rparen; go (i + 1)
          | ',' -> push Comma; go (i + 1)
          | ':' -> push Colon; go (i + 1)
          | '%' -> push Percent; go (i + 1)
          | '=' -> push Assign_tok; go (i + 1)
          | '+' -> push Plus; go (i + 1)
          | '-' -> push Minus; go (i + 1)
          | '*' -> push Star; go (i + 1)
          | '/' -> push Slash; go (i + 1)
          | '<' -> push Lt_tok; go (i + 1)
          | '>' -> push Gt_tok; go (i + 1)
          | c ->
            raise (Lex_error (Printf.sprintf "unexpected character %C" c)))
  in
  go 0;
  List.rev (Eof :: !toks)
