(** Logical-line scanner for free-form Fortran.

    Splits raw source into logical lines: strips blank lines and plain
    comments, joins [&] continuations, and recognizes OpenMP sentinel
    comments ([!$OMP ...]), which survive as directive lines.  Line
    numbers refer to the first physical line of each logical line. *)

type line = {
  lineno : int;
  text : string;
  is_directive : bool;  (** an [!$OMP] sentinel line *)
}

let is_omp_sentinel s =
  let s = String.trim s in
  String.length s >= 5
  && String.lowercase_ascii (String.sub s 0 5) = "!$omp"

(* Remove a trailing comment that is not inside a string literal. *)
let strip_comment s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i in_str quote =
    if i >= n then Buffer.contents buf
    else
      let c = s.[i] in
      if in_str then (
        Buffer.add_char buf c;
        if c = quote then go (i + 1) false ' ' else go (i + 1) true quote)
      else if c = '\'' || c = '"' then (
        Buffer.add_char buf c;
        go (i + 1) true c)
      else if c = '!' then Buffer.contents buf
      else (
        Buffer.add_char buf c;
        go (i + 1) false ' ')
  in
  go 0 false ' '

(* Split a physical line on ';' statement separators (outside strings). *)
let split_semicolons s =
  let n = String.length s in
  let parts = ref [] in
  let buf = Buffer.create n in
  let flush () =
    let t = String.trim (Buffer.contents buf) in
    if t <> "" then parts := t :: !parts;
    Buffer.clear buf
  in
  let rec go i in_str quote =
    if i >= n then flush ()
    else
      let c = s.[i] in
      if in_str then (
        Buffer.add_char buf c;
        if c = quote then go (i + 1) false ' ' else go (i + 1) true quote)
      else if c = '\'' || c = '"' then (
        Buffer.add_char buf c;
        go (i + 1) true c)
      else if c = ';' then (
        flush ();
        go (i + 1) false ' ')
      else (
        Buffer.add_char buf c;
        go (i + 1) false ' ')
  in
  go 0 false ' ';
  List.rev !parts

(** Scan [source] into logical lines. *)
let scan source =
  let physical = String.split_on_char '\n' source in
  let result = ref [] in
  let pending = Buffer.create 80 in
  let pending_no = ref 0 in
  let pending_directive = ref false in
  let flush () =
    if Buffer.length pending > 0 then begin
      let text = String.trim (Buffer.contents pending) in
      if text <> "" then
        if !pending_directive then
          result :=
            { lineno = !pending_no; text; is_directive = true } :: !result
        else
          List.iter
            (fun t ->
              result :=
                { lineno = !pending_no; text = t; is_directive = false }
                :: !result)
            (split_semicolons text);
      Buffer.clear pending
    end;
    pending_directive := false
  in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let directive = is_omp_sentinel raw in
      let body =
        if directive then
          (* keep the clause text after the sentinel and any
             continuation marker *)
          let t = String.trim raw in
          String.sub t 5 (String.length t - 5)
        else strip_comment raw
      in
      let body = String.trim body in
      if body = "" then (if Buffer.length pending = 0 then flush ())
      else begin
        (* continuation? previous pending line ended with '&' *)
        if Buffer.length pending = 0 then begin
          pending_no := lineno;
          pending_directive := directive
        end;
        let continued = String.length body > 0 && body.[String.length body - 1] = '&' in
        let body =
          if continued then String.trim (String.sub body 0 (String.length body - 1))
          else body
        in
        (* leading '&' on continuation lines is optional *)
        let body =
          if Buffer.length pending > 0 && String.length body > 0 && body.[0] = '&'
          then String.trim (String.sub body 1 (String.length body - 1))
          else body
        in
        Buffer.add_char pending ' ';
        Buffer.add_string pending body;
        if not continued then flush ()
      end)
    physical;
  flush ();
  List.rev !result
