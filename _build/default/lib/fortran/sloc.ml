(** Source-lines-of-code counting, used to regenerate the paper's
    Table 1 (SLOC per SARB subroutine implemented via GLAF).

    A source line is a logical line that is neither blank nor a pure
    comment; OMP sentinels count (they are semantically meaningful), a
    convention matching common SLOC counters on Fortran. *)

let of_source source = List.length (Line_scanner.scan source)

(** SLOC of one subprogram rendered standalone (header and END lines
    included, declarations included). *)
let of_subprogram (sp : Ast.subprogram) =
  of_source (Pp_ast.to_string [ Ast.Standalone sp ])

(** SLOC of the body only (statements, no declarations/header). *)
let of_body (sp : Ast.subprogram) =
  let w = { Pp_ast.buf = Buffer.create 1024; indent = 0 } in
  List.iter (Pp_ast.stmt_to_buf w) sp.Ast.sub_body;
  of_source (Buffer.contents w.Pp_ast.buf)

(** Per-subprogram SLOC table for a compilation unit, in source order. *)
let table (cu : Ast.compilation_unit) =
  List.map
    (fun sp -> (sp.Ast.sub_name, of_subprogram sp))
    (Ast.all_subprograms cu)
