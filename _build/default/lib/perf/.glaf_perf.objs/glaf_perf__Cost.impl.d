lib/perf/cost.ml: Ast Compiler_model Float Fun Glaf_fortran Hashtbl List Machine Option
