lib/perf/machine.ml: Float
