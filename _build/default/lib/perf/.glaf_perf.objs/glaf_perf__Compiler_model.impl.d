lib/perf/compiler_model.ml: Ast Float Glaf_fortran List Machine Option
