(** Model of what an optimizing Fortran compiler (gfortran/ifort -O3)
    does to each loop, inferred from the AST — the effects the paper
    reads out of optimization reports in §4.1.2:

    - zero-initialization loops become [memset];
    - straight-line single loops (incl. simple reductions and
      single-value loads) vectorize;
    - very short loops unroll;
    - loops containing control flow or calls stay scalar ("the
      compiler fails to identify these loops as parallel").

    A loop that carries an OpenMP directive is {e outlined} and gets
    none of these optimizations — which is precisely why GLAF-parallel
    v0 loses to the original serial code on small loops. *)

open Glaf_fortran

type loop_opt =
  | Memset
  | Vectorized
  | Unrolled
  | Scalar

let show = function
  | Memset -> "memset"
  | Vectorized -> "SIMD"
  | Unrolled -> "unrolled"
  | Scalar -> "scalar"

let is_zero_lit = function
  | Ast.Int_lit 0 -> true
  | Ast.Real_lit (0.0, _) -> true
  | _ -> false

(* A designator-with-args is either an array reference or an elemental
   intrinsic (both vectorize) or a user function (which does not).
   User {e subroutine} calls appear as [Ast.Call] statements and are
   rejected by [straight_line] directly; user functions in expressions
   are flagged by the [is_user_fn] predicate when the caller can
   supply one. *)
let rec no_user_calls ~is_user_fn e =
  let ok = ref true in
  let rec go (e : Ast.expr) =
    match e with
    | Ast.Desig parts ->
      List.iter
        (fun (name, args) ->
          if args <> [] && is_user_fn name then ok := false;
          List.iter go args)
        parts
    | Ast.Unop (_, a) -> go a
    | Ast.Binop (_, a, b) ->
      go a;
      go b
    | Ast.Implied_do (a, _, lo, hi) ->
      go a;
      go lo;
      go hi
    | Ast.Section (lo, hi) ->
      Option.iter go lo;
      Option.iter go hi
    | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Str_lit _ -> ()
  in
  go e;
  !ok

and straight_line ~is_user_fn stmts =
  List.for_all
    (fun (s : Ast.stmt) ->
      match s with
      | Ast.Assign (d, e) ->
        no_user_calls ~is_user_fn (Ast.Desig d)
        && no_user_calls ~is_user_fn e
      | Ast.Comment _ | Ast.Continue -> true
      | Ast.Do _ | Ast.If_block _ | Ast.If_arith _ | Ast.Do_while _
      | Ast.Call _ | Ast.Return | Ast.Exit | Ast.Cycle | Ast.Stop _
      | Ast.Allocate _ | Ast.Deallocate _ | Ast.Print _ | Ast.Omp_atomic _
      | Ast.Omp_critical _ | Ast.Omp_barrier ->
        false)
    stmts

(** Classify what the compiler does to a {e serial} loop. *)
let classify ?(trip = None) ?(is_user_fn = fun _ -> false) (l : Ast.do_loop) :
    loop_opt =
  match l.Ast.do_body with
  | [ Ast.Assign (_, rhs) ] when is_zero_lit rhs -> Memset
  | body when straight_line ~is_user_fn body -> (
    match trip with
    | Some t when t <= 8 -> Unrolled
    | _ -> Vectorized)
  | _ -> Scalar

(** Speedup factor of the classification on machine [m]. *)
let speedup (m : Machine.t) = function
  | Memset -> m.Machine.memset_speedup
  | Vectorized -> Float.max 1.0 (float_of_int m.Machine.simd_width *. m.Machine.simd_efficiency)
  | Unrolled -> m.Machine.unroll_speedup
  | Scalar -> 1.0
