lib/codegen/c_gen.ml: Buffer Expr Float Format Func Glaf_ir Grid Ir_module List Printf Stmt String Types
