lib/codegen/fortran_gen.ml: Ast Expr Func Glaf_fortran Glaf_ir Grid Ir_module List Option Pp_ast Stmt String Types
