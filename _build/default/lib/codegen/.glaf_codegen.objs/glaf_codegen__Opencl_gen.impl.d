lib/codegen/opencl_gen.ml: Buffer C_gen Expr Func Glaf_ir Grid Ir_module List Printf Stmt String Types
