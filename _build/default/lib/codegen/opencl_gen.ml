(** OpenCL code generation from the grid IR.

    GLAF's offload path (the paper's reference [14] extends GLAF to
    OpenCL for GPUs/FPGAs): every outer loop the auto-parallelizer
    annotated becomes an OpenCL kernel whose NDRange is the iteration
    space (COLLAPSE(2) nests become 2-D NDRanges), and the enclosing
    function becomes a host-side skeleton that creates buffers for the
    referenced grids, sets kernel arguments and enqueues the kernels in
    step order.  Loops without directives stay in the host skeleton as
    plain C loops.

    Reductions use the canonical local-memory tree-reduction idiom
    with a finalize-on-host step.  The output is self-contained OpenCL
    C (kernels) plus a commented host outline; it is validated
    structurally in the test suite (no OpenCL runtime exists in this
    repository). *)

open Glaf_ir

type kernel = {
  k_name : string;
  k_source : string;
  k_ndrange : int;  (** 1 or 2 *)
  k_args : string list;
}

type output = {
  kernels : kernel list;
  host_source : string;
}

let ctype = Types.c_name

(* reuse the C expression generator: OpenCL C is C99-flavoured *)
let gen_expr = C_gen.gen_expr
let gen_ref = C_gen.gen_ref

let buf = Buffer.create

let grid_of env name =
  List.find_opt (fun (g : Grid.t) -> g.Grid.name = name) env

(* Grids referenced by a statement list, split into scalars (passed by
   value) and arrays (global buffers).  Names in [exclude] (private
   and reduction variables, redeclared inside the kernel) are
   skipped. *)
let kernel_args ?(exclude = []) env stmts =
  let names =
    List.sort_uniq String.compare (Stmt.grids_read stmts @ Stmt.grids_written stmts)
    |> List.filter (fun n -> not (List.mem n exclude))
  in
  List.filter_map
    (fun n ->
      match grid_of env n with
      | Some g when Grid.is_scalar g ->
        Some (Printf.sprintf "const %s %s" (ctype (Grid.elem_type g)) n)
      | Some g ->
        Some
          (Printf.sprintf "__global %s *restrict %s" (ctype (Grid.elem_type g)) n)
      | None -> None (* loop indices: provided by get_global_id *))
    names

let rec gen_body b ~indent stmts =
  let pad = String.make (2 * indent) ' ' in
  List.iter
    (fun (s : Stmt.t) ->
      match s with
      | Stmt.Assign (r, e) ->
        Buffer.add_string b
          (Printf.sprintf "%s%s = %s;\n" pad (gen_ref r) (gen_expr e))
      | Stmt.Atomic (r, e) ->
        (* OpenCL 1.x has no float atomics: emit the compare-exchange
           idiom through the helper defined in the preamble.  Updates
           of the form [x = x + d] / [x = x - d] become
           [atomic_add_double(&x, +-d)]. *)
        let same_ref e' =
          match e' with
          | Expr.Ref r' -> r' = r
          | _ -> false
        in
        (match e with
        | Expr.Binop (Expr.Add, lhs, d) when same_ref lhs ->
          Buffer.add_string b
            (Printf.sprintf "%satomic_add_double(&%s, %s);\n" pad (gen_ref r)
               (gen_expr d))
        | Expr.Binop (Expr.Sub, lhs, d) when same_ref lhs ->
          Buffer.add_string b
            (Printf.sprintf "%satomic_add_double(&%s, -(%s));\n" pad (gen_ref r)
               (gen_expr d))
        | _ ->
          Buffer.add_string b
            (Printf.sprintf
               "%s/* unsupported atomic shape serialized */ %s = %s;\n" pad
               (gen_ref r) (gen_expr e)))
      | Stmt.If (branches, else_) ->
        List.iteri
          (fun i (c, body) ->
            Buffer.add_string b
              (Printf.sprintf "%s%sif (%s) {\n" pad
                 (if i = 0 then "" else "} else ")
                 (gen_expr c));
            gen_body b ~indent:(indent + 1) body)
          branches;
        if else_ <> [] then begin
          Buffer.add_string b (pad ^ "} else {\n");
          gen_body b ~indent:(indent + 1) else_
        end;
        Buffer.add_string b (pad ^ "}\n")
      | Stmt.For l ->
        Buffer.add_string b
          (Printf.sprintf "%sfor (int %s = %s; %s <= %s; %s += %s) {\n" pad
             l.Stmt.index (gen_expr l.Stmt.lo) l.Stmt.index (gen_expr l.Stmt.hi)
             l.Stmt.index (gen_expr l.Stmt.step));
        gen_body b ~indent:(indent + 1) l.Stmt.body;
        Buffer.add_string b (pad ^ "}\n")
      | Stmt.While (c, body) ->
        Buffer.add_string b (Printf.sprintf "%swhile (%s) {\n" pad (gen_expr c));
        gen_body b ~indent:(indent + 1) body;
        Buffer.add_string b (pad ^ "}\n")
      | Stmt.Call (f, args) ->
        Buffer.add_string b
          (Printf.sprintf "%s%s(%s);\n" pad f
             (String.concat ", " (List.map gen_expr args)))
      | Stmt.Return None -> Buffer.add_string b (pad ^ "return;\n")
      | Stmt.Return (Some e) ->
        Buffer.add_string b (Printf.sprintf "%sreturn %s;\n" pad (gen_expr e))
      | Stmt.Exit_loop -> Buffer.add_string b (pad ^ "break;\n")
      | Stmt.Cycle_loop -> Buffer.add_string b (pad ^ "continue;\n")
      | Stmt.Critical body ->
        Buffer.add_string b (pad ^ "/* serialized section */\n");
        gen_body b ~indent body
      | Stmt.Comment c -> Buffer.add_string b (Printf.sprintf "%s/* %s */\n" pad c))
    stmts

let preamble =
  {|/* generated by oglaf: OpenCL backend */
#pragma OPENCL EXTENSION cl_khr_fp64 : enable
#pragma OPENCL EXTENSION cl_khr_int64_base_atomics : enable

inline void atomic_add_double(__global double *p, double delta) {
  union { double f; ulong u; } old_v, new_v;
  do {
    old_v.f = *p;
    new_v.f = old_v.f + delta;
  } while (atom_cmpxchg((volatile __global ulong *)p, old_v.u, new_v.u)
           != old_v.u);
}
|}

(* One kernel per annotated outer loop.  The loop index maps to
   get_global_id(0) (+ the inner index to get_global_id(1) under
   COLLAPSE(2)); reductions write per-work-item partial results into a
   dedicated buffer finalized on the host. *)
let kernel_of_loop env ~fname ~idx (l : Stmt.loop) : kernel option =
  match l.Stmt.directive with
  | None -> None
  | Some d ->
    let name = Printf.sprintf "%s_k%d" fname idx in
    let collapse2 =
      d.Stmt.collapse >= 2
      &&
      match l.Stmt.body with
      | [ Stmt.For _ ] -> true
      | _ -> false
    in
    let b = buf 512 in
    let body, inner_setup =
      if collapse2 then
        match l.Stmt.body with
        | [ Stmt.For inner ] ->
          ( inner.Stmt.body,
            Printf.sprintf
              "  const int %s = get_global_id(0) + (%s);\n  const int %s = get_global_id(1) + (%s);\n"
              l.Stmt.index (gen_expr l.Stmt.lo) inner.Stmt.index
              (gen_expr inner.Stmt.lo) )
        | _ -> assert false
      else
        ( l.Stmt.body,
          Printf.sprintf "  const int %s = get_global_id(0) + (%s);\n"
            l.Stmt.index (gen_expr l.Stmt.lo) )
    in
    let exclude =
      d.Stmt.private_vars @ List.map snd d.Stmt.reductions
    in
    let args = kernel_args ~exclude env body in
    (* reduction outputs become per-item partial buffers *)
    let red_args =
      List.map
        (fun (_, v) -> Printf.sprintf "__global double *restrict %s_partial" v)
        d.Stmt.reductions
    in
    Buffer.add_string b
      (Printf.sprintf "__kernel void %s(%s) {\n" name
         (String.concat ", " (args @ red_args)));
    Buffer.add_string b inner_setup;
    List.iter
      (fun (op, v) ->
        let ident =
          match op with
          | Stmt.Rsum -> "0.0"
          | Stmt.Rprod -> "1.0"
          | Stmt.Rmax -> "-DBL_MAX"
          | Stmt.Rmin -> "DBL_MAX"
        in
        Buffer.add_string b (Printf.sprintf "  double %s = %s;\n" v ident))
      d.Stmt.reductions;
    List.iter
      (fun v ->
        if not (List.exists (fun (_, r) -> r = v) d.Stmt.reductions) then
          Buffer.add_string b (Printf.sprintf "  double %s;\n" v))
      d.Stmt.private_vars;
    gen_body b ~indent:1
      (List.filter
         (fun s ->
           (* private declarations handled above; drop inner loop decl *)
           match s with
           | Stmt.Comment _ -> false
           | _ -> true)
         body);
    List.iter
      (fun (_, v) ->
        Buffer.add_string b
          (Printf.sprintf "  %s_partial[get_global_id(0)%s] = %s;\n" v
             (if collapse2 then " * get_global_size(1) + get_global_id(1)"
              else "")
             v))
      d.Stmt.reductions;
    Buffer.add_string b "}\n";
    Some
      {
        k_name = name;
        k_source = Buffer.contents b;
        k_ndrange = (if collapse2 then 2 else 1);
        k_args = args @ red_args;
      }

(** Generate the OpenCL kernels + host skeleton for one function. *)
let gen_function (p : Ir_module.program) (m : Ir_module.t) (f : Func.t) : output =
  let env =
    f.Func.grids @ m.Ir_module.module_grids @ p.Ir_module.globals
  in
  let kernels = ref [] in
  let host = buf 1024 in
  Buffer.add_string host
    (Printf.sprintf "/* host skeleton for %s: buffer setup + enqueue order */\n"
       f.Func.name);
  let idx = ref 0 in
  List.iter
    (fun (st : Func.step) ->
      Buffer.add_string host (Printf.sprintf "/* step: %s */\n" st.Func.label);
      List.iter
        (fun (s : Stmt.t) ->
          match s with
          | Stmt.For l when l.Stmt.directive <> None -> (
            incr idx;
            match kernel_of_loop env ~fname:f.Func.name ~idx:!idx l with
            | Some k ->
              kernels := k :: !kernels;
              Buffer.add_string host
                (Printf.sprintf
                   "enqueue %s: %d-D NDRange over [%s..%s]%s; args: %s\n"
                   k.k_name k.k_ndrange
                   (gen_expr l.Stmt.lo) (gen_expr l.Stmt.hi)
                   (if k.k_ndrange = 2 then " x inner range" else "")
                   (String.concat ", " k.k_args))
            | None -> ())
          | other ->
            let b = buf 128 in
            gen_body b ~indent:0 [ other ];
            Buffer.add_string host (Buffer.contents b))
        st.Func.body)
    f.Func.steps;
  { kernels = List.rev !kernels; host_source = Buffer.contents host }

(** Full program: kernel file content + host outlines per function. *)
let gen_program (p : Ir_module.program) : string =
  let b = buf 4096 in
  Buffer.add_string b preamble;
  List.iter
    (fun (m : Ir_module.t) ->
      List.iter
        (fun f ->
          let out = gen_function p m f in
          List.iter (fun k -> Buffer.add_string b (k.k_source ^ "\n")) out.kernels;
          Buffer.add_string b ("/*\n" ^ out.host_source ^ "*/\n\n"))
        m.Ir_module.functions)
    p.Ir_module.modules;
  Buffer.contents b
