(** Expressions of the grid IR.

    A [gref] is a reference to a grid cell: the grid name, an optional
    field (for record grids, mapping to Fortran [TYPE] elements or C
    struct members) and one index expression per dimension (none for a
    scalar grid). *)

type unop =
  | Neg
  | Not
[@@deriving show { with_path = false }, eq, ord]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Pow
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
[@@deriving show { with_path = false }, eq, ord]

type t =
  | Int_lit of int
  | Real_lit of float
  | Bool_lit of bool
  | Str_lit of string
  | Ref of gref
  | Unop of unop * t
  | Binop of binop * t * t
  | Call of string * t list  (** intrinsic or user-function call *)

and gref = {
  grid : string;
  field : string option;
  indices : t list;
}
[@@deriving show { with_path = false }, eq, ord]

let int n = Int_lit n
let real x = Real_lit x
let bool b = Bool_lit b
let str s = Str_lit s

(** Reference to a scalar grid (no indices). *)
let var name = Ref { grid = name; field = None; indices = [] }

(** Reference to an array grid element. *)
let idx name indices = Ref { grid = name; field = None; indices }

(** Reference to a field of a record grid element. *)
let fld name field indices = Ref { grid = name; field = Some field; indices }

let neg e = Unop (Neg, e)
let not_ e = Unop (Not, e)
let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( % ) a b = Binop (Mod, a, b)
let ( ** ) a b = Binop (Pow, a, b)
let ( = ) a b = Binop (Eq, a, b)
let ( <> ) a b = Binop (Ne, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( <= ) a b = Binop (Le, a, b)
let ( > ) a b = Binop (Gt, a, b)
let ( >= ) a b = Binop (Ge, a, b)
let ( && ) a b = Binop (And, a, b)
let ( || ) a b = Binop (Or, a, b)
let call name args = Call (name, args)

let is_comparison = function
  | Eq | Ne | Lt | Le | Gt | Ge -> true
  | Add | Sub | Mul | Div | Pow | Mod | And | Or -> false

let is_logical = function
  | And | Or -> true
  | _ -> false

(** [fold f acc e] folds [f] over every sub-expression of [e]
    (including [e] itself), pre-order. *)
let rec fold f acc e =
  let acc = f acc e in
  match e with
  | Int_lit _ | Real_lit _ | Bool_lit _ | Str_lit _ -> acc
  | Ref r -> List.fold_left (fold f) acc r.indices
  | Unop (_, a) -> fold f acc a
  | Binop (_, a, b) -> fold f (fold f acc a) b
  | Call (_, args) -> List.fold_left (fold f) acc args

(** All grid references occurring in [e] (reads), outermost first.
    Index expressions of a reference are themselves scanned, so
    [a(b(i))] yields references to both [a] and [b]. *)
let refs e =
  let collect acc = function
    | Ref r -> r :: acc
    | _ -> acc
  in
  List.rev (fold collect [] e)

(** Names of all grids read by [e]. *)
let grids_read e =
  let names = List.map (fun r -> r.grid) (refs e) in
  List.sort_uniq String.compare names

(** [map_refs f e] rewrites every grid reference with [f] bottom-up. *)
let rec map_refs f e =
  match e with
  | Int_lit _ | Real_lit _ | Bool_lit _ | Str_lit _ -> e
  | Ref r -> Ref (f { r with indices = List.map (map_refs f) r.indices })
  | Unop (op, a) -> Unop (op, map_refs f a)
  | Binop (op, a, b) -> Binop (op, map_refs f a, map_refs f b)
  | Call (name, args) -> Call (name, List.map (map_refs f) args)

(** [subst_var name replacement e] replaces scalar references to grid
    [name] by [replacement]. *)
let subst_var name replacement e =
  let rec go e =
    match e with
    | Ref { grid; field = None; indices = [] } when String.equal grid name ->
      replacement
    | Ref r -> Ref { r with indices = List.map go r.indices }
    | Int_lit _ | Real_lit _ | Bool_lit _ | Str_lit _ -> e
    | Unop (op, a) -> Unop (op, go a)
    | Binop (op, a, b) -> Binop (op, go a, go b)
    | Call (f, args) -> Call (f, List.map go args)
  in
  go e

(** Does [e] mention grid [name] at all? *)
let mentions name e =
  let is_ref acc e =
    match e with
    | Ref r -> Stdlib.( || ) acc (String.equal r.grid name)
    | _ -> acc
  in
  fold is_ref false e

(** Structural size of the expression tree (for cost models/tests). *)
let size e = fold (fun n _ -> Stdlib.( + ) n 1) 0 e

(** Loop-index linearity of an index expression w.r.t. variable [v]:
    recognized affine shapes used by the dependence analysis. *)
type affinity =
  | Constant            (** does not mention [v] *)
  | Identity            (** exactly [v] *)
  | Affine of int * int (** [a*v + b] with compile-time [a], [b] *)
  | Nonlinear           (** anything else mentioning [v] *)

let affinity_of ~var:v e =
  let rec go e =
    match e with
    | Int_lit b -> Some (0, b)
    | Ref { grid; field = None; indices = [] } when String.equal grid v ->
      Some (1, 0)
    | Ref _ -> None
    | Unop (Neg, a) -> (
      match go a with
      | Some (c, b) -> Some (Stdlib.( - ) 0 c, Stdlib.( - ) 0 b)
      | None -> None)
    | Binop (Add, a, b) -> (
      match (go a, go b) with
      | Some (c1, d1), Some (c2, d2) ->
        Some (Stdlib.( + ) c1 c2, Stdlib.( + ) d1 d2)
      | _ -> None)
    | Binop (Sub, a, b) -> (
      match (go a, go b) with
      | Some (c1, d1), Some (c2, d2) ->
        Some (Stdlib.( - ) c1 c2, Stdlib.( - ) d1 d2)
      | _ -> None)
    | Binop (Mul, Int_lit k, a) | Binop (Mul, a, Int_lit k) -> (
      match go a with
      | Some (c, b) -> Some (Stdlib.( * ) k c, Stdlib.( * ) k b)
      | None -> None)
    | _ -> None
  in
  if Stdlib.not (mentions v e) then Constant
  else
    match go e with
    | Some (1, 0) -> Identity
    | Some (a, b) -> Affine (a, b)
    | None -> Nonlinear
