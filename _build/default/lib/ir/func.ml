(** GLAF functions.

    A function is composed of {e steps} (the GPI's unit of editing);
    each step has a label and a statement list.  A function with
    [return = None] is generated as a Fortran [SUBROUTINE] (§3.4),
    otherwise as a [FUNCTION] returning the given element type. *)

type step = {
  label : string;
  body : Stmt.t list;
}
[@@deriving show { with_path = false }, eq]

type t = {
  name : string;
  return : Types.elem_type option;  (** [None] = void = SUBROUTINE *)
  params : string list;  (** names of [Arg]-storage grids, in order *)
  grids : Grid.t list;  (** every grid visible in this function *)
  steps : step list;
}
[@@deriving show { with_path = false }, eq]

let make ?return ?(params = []) ?(grids = []) ?(steps = []) name =
  { name; return; params; grids; steps }

let step label body = { label; body }

let body f = List.concat_map (fun s -> s.body) f.steps

let is_subroutine f = f.return = None

let find_grid f name =
  List.find_opt (fun (g : Grid.t) -> String.equal g.Grid.name name) f.grids

(** Grids declared locally in the subprogram body: everything that is
    neither an argument nor declared elsewhere ([USE]d modules, TYPE
    elements, the enclosing generated module for [Module_scope]).
    COMMON members {e are} declared locally (then grouped into the
    COMMON statement), per §3.2. *)
let local_grids f =
  List.filter
    (fun (g : Grid.t) ->
      (not (Grid.is_argument g))
      && (not (Grid.externally_declared g))
      && g.Grid.storage <> Grid.Module_scope)
    f.grids

let arg_grids f =
  List.filter_map (fun p -> find_grid f p) f.params

(** Legacy modules this function needs to [USE] (§3.1, §3.5). *)
let used_modules f =
  List.filter_map
    (fun (g : Grid.t) ->
      match g.Grid.storage with
      | Grid.External_module m | Grid.Type_element (m, _) -> Some m
      | _ -> None)
    f.grids
  |> List.sort_uniq String.compare

(** COMMON blocks referenced by this function, with their members in
    declaration order (§3.2). *)
let common_blocks f =
  let blocks =
    List.filter_map
      (fun (g : Grid.t) ->
        match g.Grid.storage with
        | Grid.Common b -> Some b
        | _ -> None)
      f.grids
    |> List.sort_uniq String.compare
  in
  List.map
    (fun b ->
      ( b,
        List.filter
          (fun (g : Grid.t) -> g.Grid.storage = Grid.Common b)
          f.grids ))
    blocks

(** All statements of the function, across steps. *)
let all_stmts f = body f

(** Subroutines/functions called by this function. *)
let callees f = Stmt.calls (all_stmts f)
