(** Structural validation of grid-IR programs.

    The GPI enforces most of these invariants interactively; the
    builder API cannot, so every pipeline entry point validates first.
    Checks include: unique names, resolvable grid references, index
    arity matching grid rank, field access only on record grids,
    arguments matching declared params, symbolic extents resolvable,
    and the §3.3 constraint that externally-declared grids are never
    also initialized by GLAF. *)

type error = {
  where : string;  (** "module.function" or "global" *)
  what : string;
}

let err where fmt = Format.kasprintf (fun what -> { where; what }) fmt

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.where e.what

let error_to_string e = Format.asprintf "%a" pp_error e

let duplicates names =
  let tbl = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem tbl n then true
      else (
        Hashtbl.add tbl n ();
        false))
    names
  |> List.sort_uniq String.compare

let check_unique where what names =
  List.map (fun n -> err where "duplicate %s %S" what n) (duplicates names)

(* A scalar environment: grid names usable as symbolic extents or loop
   indices. Loop indices are implicitly-declared integer scalars. *)

let check_ref where lookup ~loop_indices (r : Expr.gref) =
  match lookup r.Expr.grid with
  | None ->
    if List.mem r.Expr.grid loop_indices then
      if r.Expr.indices <> [] || r.Expr.field <> None then
        [ err where "loop index %S used with indices/field" r.Expr.grid ]
      else []
    else [ err where "reference to unknown grid %S" r.Expr.grid ]
  | Some (g : Grid.t) ->
    let arity_errors =
      let want = Grid.num_dims g and got = List.length r.Expr.indices in
      (* Referencing a whole array (no indices) is allowed: it denotes
         the full grid, e.g. as a call argument or SUM(a). *)
      if got <> 0 && got <> want then
        [
          err where "grid %S has rank %d but is indexed with %d subscripts"
            r.Expr.grid want got;
        ]
      else []
    in
    let field_errors =
      match (r.Expr.field, g.Grid.kind) with
      | None, _ -> []
      | Some f, Grid.Record fields ->
        if List.mem_assoc f fields then []
        else [ err where "grid %S has no field %S" r.Expr.grid f ]
      | Some f, Grid.Dense _ ->
        [ err where "field access %S.%S on non-record grid" r.Expr.grid f ]
    in
    arity_errors @ field_errors

let rec check_expr where lookup ~loop_indices (e : Expr.t) =
  match e with
  | Expr.Int_lit _ | Expr.Real_lit _ | Expr.Bool_lit _ | Expr.Str_lit _ -> []
  | Expr.Ref r ->
    check_ref where lookup ~loop_indices r
    @ List.concat_map (check_expr where lookup ~loop_indices) r.Expr.indices
  | Expr.Unop (_, a) -> check_expr where lookup ~loop_indices a
  | Expr.Binop (_, a, b) ->
    check_expr where lookup ~loop_indices a
    @ check_expr where lookup ~loop_indices b
  | Expr.Call (_, args) ->
    List.concat_map (check_expr where lookup ~loop_indices) args

let rec check_stmts where lookup ~loop_indices stmts =
  let check_stmt (s : Stmt.t) =
    match s with
    | Stmt.Assign (r, e) | Stmt.Atomic (r, e) ->
      check_ref where lookup ~loop_indices r
      @ List.concat_map (check_expr where lookup ~loop_indices) r.Expr.indices
      @ check_expr where lookup ~loop_indices e
    | Stmt.If (branches, else_) ->
      List.concat_map
        (fun (c, body) ->
          check_expr where lookup ~loop_indices c
          @ check_stmts where lookup ~loop_indices body)
        branches
      @ check_stmts where lookup ~loop_indices else_
    | Stmt.For l ->
      let bound_errors =
        List.concat_map
          (check_expr where lookup ~loop_indices)
          [ l.Stmt.lo; l.Stmt.hi; l.Stmt.step ]
      in
      let shadow =
        if List.mem l.Stmt.index loop_indices then
          [ err where "loop index %S shadows an enclosing index" l.Stmt.index ]
        else []
      in
      bound_errors @ shadow
      @ check_stmts where lookup
          ~loop_indices:(l.Stmt.index :: loop_indices)
          l.Stmt.body
    | Stmt.While (c, body) ->
      check_expr where lookup ~loop_indices c
      @ check_stmts where lookup ~loop_indices body
    | Stmt.Call (_, args) ->
      List.concat_map (check_expr where lookup ~loop_indices) args
    | Stmt.Return (Some e) -> check_expr where lookup ~loop_indices e
    | Stmt.Return None | Stmt.Exit_loop | Stmt.Cycle_loop | Stmt.Comment _ ->
      []
    | Stmt.Critical body -> check_stmts where lookup ~loop_indices body
  in
  List.concat_map check_stmt stmts

let check_grid where (g : Grid.t) =
  let init_errors =
    if Grid.externally_declared g && g.Grid.init <> Grid.No_init then
      [
        err where
          "grid %S lives in an external module and must not be initialized \
           by GLAF"
          g.Grid.name;
      ]
    else []
  in
  let record_errors =
    match g.Grid.kind with
    | Grid.Record [] -> [ err where "record grid %S has no fields" g.Grid.name ]
    | Grid.Record fields ->
      check_unique where "record field" (List.map fst fields)
    | Grid.Dense _ -> []
  in
  let extent_errors =
    List.concat_map
      (fun d ->
        match d.Grid.extent with
        | Grid.Fixed n when n <= 0 ->
          [ err where "grid %S has non-positive extent %d" g.Grid.name n ]
        | Grid.Fixed _ | Grid.Sym _ -> [])
      g.Grid.dims
  in
  init_errors @ record_errors @ extent_errors

let check_function p (m : Ir_module.t) (f : Func.t) =
  let where = m.Ir_module.name ^ "." ^ f.Func.name in
  let lookup name = Ir_module.resolve_grid p m f name in
  let name_errors =
    check_unique where "grid" (List.map (fun g -> g.Grid.name) f.Func.grids)
  in
  let param_errors =
    List.concat_map
      (fun pname ->
        match Func.find_grid f pname with
        | None -> [ err where "parameter %S has no grid" pname ]
        | Some g ->
          if Grid.is_argument g then []
          else [ err where "parameter grid %S lacks Arg storage" pname ])
      f.Func.params
  in
  let arg_pos_errors =
    let args = Func.arg_grids f in
    List.concat_map
      (fun (g : Grid.t) ->
        match Grid.arg_position g with
        | Some n when n < 0 || n >= List.length f.Func.params ->
          [ err where "argument grid %S has out-of-range position %d"
              g.Grid.name n ]
        | _ -> [])
      args
  in
  let extent_errors =
    List.concat_map
      (fun (g : Grid.t) ->
        List.filter_map
          (fun dep ->
            match lookup dep with
            | Some dg when Grid.is_scalar dg -> None
            | Some _ ->
              Some (err where "extent %S of grid %S is not a scalar" dep
                      g.Grid.name)
            | None ->
              if List.mem dep f.Func.params then None
              else
                Some (err where "extent %S of grid %S is unresolvable" dep
                        g.Grid.name))
          (Grid.extent_deps g))
      f.Func.grids
  in
  let grid_errors = List.concat_map (check_grid where) f.Func.grids in
  let stmt_errors = check_stmts where lookup ~loop_indices:[] (Func.body f) in
  name_errors @ param_errors @ arg_pos_errors @ extent_errors @ grid_errors
  @ stmt_errors

let check_calls p =
  let known =
    List.map (fun (f : Func.t) -> f.Func.name) (Ir_module.all_functions p)
  in
  List.concat_map
    (fun (m : Ir_module.t) ->
      List.concat_map
        (fun (f : Func.t) ->
          let where = m.Ir_module.name ^ "." ^ f.Func.name in
          List.concat_map
            (fun s ->
              match (s : Stmt.t) with
              | Stmt.Call (callee, args) -> (
                if not (List.mem callee known) then
                  (* calls into legacy code are resolved at integration
                     time, not here *)
                  []
                else
                  match Ir_module.find_program_function p callee with
                  | Some callee_f
                    when List.length callee_f.Func.params <> List.length args
                    ->
                    [
                      err where
                        "call to %S passes %d arguments, expected %d" callee
                        (List.length args)
                        (List.length callee_f.Func.params);
                    ]
                  | _ -> [])
              | _ -> [])
            (Stmt.fold_stmts (fun acc s -> s :: acc) [] (Func.body f)))
        m.Ir_module.functions)
    p.Ir_module.modules

(** Validate a whole program; returns all errors found (empty = valid). *)
let program (p : Ir_module.program) =
  let global_errors =
    check_unique "global" "grid" (List.map (fun g -> g.Grid.name) p.Ir_module.globals)
    @ List.concat_map (check_grid "global") p.Ir_module.globals
  in
  let module_name_errors =
    check_unique "program" "module"
      (List.map (fun m -> m.Ir_module.name) p.Ir_module.modules)
  in
  let function_name_errors =
    check_unique "program" "function"
      (List.map (fun (f : Func.t) -> f.Func.name) (Ir_module.all_functions p))
  in
  let per_function =
    List.concat_map
      (fun m ->
        List.concat_map (check_function p m) m.Ir_module.functions)
      p.Ir_module.modules
  in
  global_errors @ module_name_errors @ function_name_errors @ per_function
  @ check_calls p

exception Invalid of error list

(** Validate and raise {!Invalid} on any error. *)
let program_exn p =
  match program p with
  | [] -> ()
  | errors -> raise (Invalid errors)
