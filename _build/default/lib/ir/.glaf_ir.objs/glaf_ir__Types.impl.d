lib/ir/types.pp.ml: Ppx_deriving_runtime
