lib/ir/ir_module.pp.ml: Func Grid List Ppx_deriving_runtime String
