lib/ir/stmt.pp.ml: Expr List Ppx_deriving_runtime String
