lib/ir/grid.pp.ml: List Ppx_deriving_runtime String Types
