lib/ir/func.pp.ml: Grid List Ppx_deriving_runtime Stmt String Types
