lib/ir/pp.pp.ml: Expr Format Func Grid Ir_module List Stmt String Types
