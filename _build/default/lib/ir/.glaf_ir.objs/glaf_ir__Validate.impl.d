lib/ir/validate.pp.ml: Expr Format Func Grid Hashtbl Ir_module List Stmt String
