lib/ir/expr.pp.ml: List Ppx_deriving_runtime Stdlib String
