(** Grids: GLAF's single data abstraction.

    A grid represents anything from a scalar to a multi-dimensional
    array to a record (Fortran [TYPE] / C struct).  The [storage] class
    encodes where the variable lives, which drives the integration
    features of the paper's §3: existing-module variables ([USE]),
    COMMON blocks, module-scope variables and elements of existing
    [TYPE] variables. *)

type extent =
  | Fixed of int
  | Sym of string  (** size given by a scalar grid, e.g. [n_atoms] *)
[@@deriving show { with_path = false }, eq, ord]

type dim = {
  dim_name : string option;  (** GPI caption of the dimension, if any *)
  extent : extent;
  lower : int;  (** Fortran lower bound; 1 by default *)
}
[@@deriving show { with_path = false }, eq, ord]

let dim ?name ?(lower = 1) extent = { dim_name = name; extent; lower }

(** Dense grids hold one element type; record grids hold named,
    possibly differently-typed fields per cell (the paper's
    [dataTypes\[dim\]] generalization, Fig. 1). *)
type kind =
  | Dense of Types.elem_type
  | Record of (string * Types.elem_type) list
[@@deriving show { with_path = false }, eq, ord]

(** Where a grid lives — §3 of the paper.

    - [Local]: declared in the generated subprogram body.
    - [Arg n]: the [n]-th dummy argument.
    - [Module_scope]: declared at the top of the GLAF-generated module
      (§3.3); GLAF must declare and initialize it.
    - [External_module m]: exists in legacy module [m] (§3.1); codegen
      emits [USE m] and no declaration.
    - [Type_element (m, v)]: element of an existing [TYPE] variable [v]
      from legacy module [m] (§3.5); references are prefixed [v%].
    - [Common b]: member of COMMON block [b] (§3.2); codegen groups all
      members and emits [COMMON /b/ ...] after their declarations. *)
type storage =
  | Local
  | Arg of int
  | Module_scope
  | External_module of string
  | Type_element of string * string
  | Common of string
[@@deriving show { with_path = false }, eq, ord]

type init =
  | No_init
  | Zero_init
  | Const_init of float
  | Data_init of float list  (** manual entry of initial data via GPI *)
[@@deriving show { with_path = false }, eq, ord]

type t = {
  name : string;
  kind : kind;
  dims : dim list;  (** [] for scalars *)
  storage : storage;
  allocatable : bool;
      (** dynamically allocated on entry (Fortran ALLOCATABLE) *)
  save : bool;
      (** Fortran SAVE attribute — the paper's no-reallocation tweak *)
  init : init;
  caption : string;
  comment : string;
}
[@@deriving show { with_path = false }, eq, ord]

let make ?(kind = Dense Types.T_real8) ?(dims = []) ?(storage = Local)
    ?(allocatable = false) ?(save = false) ?(init = No_init) ?(caption = "")
    ?(comment = "") name =
  { name; kind; dims; storage; allocatable; save; init; caption; comment }

let scalar ?storage ?init elem name =
  make ~kind:(Dense elem) ?storage ?init name

let array ?storage ?allocatable ?init elem ~dims name =
  make ~kind:(Dense elem) ~dims ?storage ?allocatable ?init name

let record ?storage fields ~dims name = make ~kind:(Record fields) ~dims ?storage name

let is_scalar g = g.dims = []
let num_dims g = List.length g.dims

let elem_type g =
  match g.kind with
  | Dense t -> t
  | Record _ -> Types.T_real8

let field_type g field =
  match g.kind with
  | Dense t -> Some t
  | Record fields -> List.assoc_opt field fields

(** Total number of elements when all extents are fixed. *)
let fixed_size g =
  let mul acc d =
    match (acc, d.extent) with
    | Some n, Fixed k -> Some (n * k)
    | _, Sym _ | None, _ -> None
  in
  List.fold_left mul (Some 1) g.dims

(** Scalar grids whose values determine this grid's symbolic extents. *)
let extent_deps g =
  List.filter_map
    (fun d ->
      match d.extent with
      | Sym s -> Some s
      | Fixed _ -> None)
    g.dims
  |> List.sort_uniq String.compare

(** Is the grid declared somewhere outside the generated unit (so it
    must {e not} be re-declared in the subprogram body)? §3.1/§3.2/§3.5. *)
let externally_declared g =
  match g.storage with
  | External_module _ | Type_element _ -> true
  | Common _ | Local | Arg _ | Module_scope -> false

let is_argument g =
  match g.storage with
  | Arg _ -> true
  | _ -> false

let arg_position g =
  match g.storage with
  | Arg n -> Some n
  | _ -> None
