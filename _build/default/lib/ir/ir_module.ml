(** GLAF modules and whole programs.

    A GLAF program is a set of modules plus the special {e Global
    Scope} (grids visible across the whole program, §3.1–§3.3).  Each
    module contains functions and module-scope grids. *)

type t = {
  name : string;
  module_grids : Grid.t list;
      (** grids with [Module_scope] storage declared by this module *)
  functions : Func.t list;
}
[@@deriving show { with_path = false }, eq]

let make ?(module_grids = []) ?(functions = []) name =
  { name; module_grids; functions }

let find_function m name =
  List.find_opt (fun (f : Func.t) -> String.equal f.Func.name name) m.functions

type program = {
  prog_name : string;
  globals : Grid.t list;  (** the GPI's Global Scope *)
  modules : t list;
  entry : string option;  (** name of the main function, if any *)
}
[@@deriving show { with_path = false }, eq]

let program ?(globals = []) ?(modules = []) ?entry prog_name =
  { prog_name; globals; modules; entry }

let all_functions p = List.concat_map (fun m -> m.functions) p.modules

let find_program_function p name =
  List.find_opt
    (fun (f : Func.t) -> String.equal f.Func.name name)
    (all_functions p)

(** Resolve a grid name as seen from function [f] of program [p]:
    function scope first, then the enclosing module's grids, then the
    Global Scope. *)
let resolve_grid p m f name =
  match Func.find_grid f name with
  | Some g -> Some g
  | None -> (
    match
      List.find_opt (fun (g : Grid.t) -> String.equal g.Grid.name name)
        m.module_grids
    with
    | Some g -> Some g
    | None ->
      List.find_opt (fun (g : Grid.t) -> String.equal g.Grid.name name)
        p.globals)

(** Legacy modules used anywhere in the program. *)
let used_modules p =
  all_functions p
  |> List.concat_map Func.used_modules
  |> List.sort_uniq String.compare
