(** Element types of grid cells.

    GLAF represents every program variable as a {e grid}; each grid cell
    holds a value of one of these element types.  [T_real] is a 32-bit
    real in generated Fortran ([REAL]) and [T_real8] a 64-bit one
    ([REAL*8] / [DOUBLE PRECISION]). *)

type elem_type =
  | T_int
  | T_real
  | T_real8
  | T_logical
  | T_string
[@@deriving show { with_path = false }, eq, ord]

(** Fortran spelling of an element type. *)
let fortran_name = function
  | T_int -> "INTEGER"
  | T_real -> "REAL"
  | T_real8 -> "REAL*8"
  | T_logical -> "LOGICAL"
  | T_string -> "CHARACTER(LEN=256)"

(** C spelling of an element type. *)
let c_name = function
  | T_int -> "int"
  | T_real -> "float"
  | T_real8 -> "double"
  | T_logical -> "int"
  | T_string -> "char*"

let is_numeric = function
  | T_int | T_real | T_real8 -> true
  | T_logical | T_string -> false

let is_floating = function
  | T_real | T_real8 -> true
  | T_int | T_logical | T_string -> false

(** Result type of a binary numeric operation: widest operand wins. *)
let join a b =
  match (a, b) with
  | T_real8, _ | _, T_real8 -> T_real8
  | T_real, _ | _, T_real -> T_real
  | T_int, T_int -> T_int
  | T_logical, T_logical -> T_logical
  | a, _ -> a
