(** Human-readable pretty-printer for the grid IR (debugging aid and
    the GPI's textual echo of the program under construction). *)

open Format

let rec pp_expr ppf (e : Expr.t) =
  match e with
  | Expr.Int_lit n -> fprintf ppf "%d" n
  | Expr.Real_lit x -> fprintf ppf "%g" x
  | Expr.Bool_lit b -> fprintf ppf "%B" b
  | Expr.Str_lit s -> fprintf ppf "%S" s
  | Expr.Ref r -> pp_ref ppf r
  | Expr.Unop (Expr.Neg, a) -> fprintf ppf "(-%a)" pp_expr a
  | Expr.Unop (Expr.Not, a) -> fprintf ppf "(.not. %a)" pp_expr a
  | Expr.Binop (op, a, b) ->
    fprintf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b
  | Expr.Call (f, args) ->
    fprintf ppf "%s(%a)" f
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_expr)
      args

and pp_ref ppf (r : Expr.gref) =
  (match r.Expr.field with
  | Some f -> fprintf ppf "%s.%s" r.Expr.grid f
  | None -> fprintf ppf "%s" r.Expr.grid);
  match r.Expr.indices with
  | [] -> ()
  | idx ->
    fprintf ppf "[%a]"
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_expr)
      idx

and binop_symbol (op : Expr.binop) =
  match op with
  | Expr.Add -> "+"
  | Expr.Sub -> "-"
  | Expr.Mul -> "*"
  | Expr.Div -> "/"
  | Expr.Pow -> "**"
  | Expr.Mod -> "mod"
  | Expr.Eq -> "=="
  | Expr.Ne -> "/="
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="
  | Expr.And -> ".and."
  | Expr.Or -> ".or."

let pp_directive ppf (d : Stmt.directive) =
  fprintf ppf "@[<h>!parallel";
  if d.Stmt.collapse > 1 then fprintf ppf " collapse(%d)" d.Stmt.collapse;
  (match d.Stmt.num_threads with
  | Some n -> fprintf ppf " threads(%d)" n
  | None -> ());
  if d.Stmt.private_vars <> [] then
    fprintf ppf " private(%s)" (String.concat "," d.Stmt.private_vars);
  List.iter
    (fun (op, v) ->
      let s =
        match op with
        | Stmt.Rsum -> "+"
        | Stmt.Rprod -> "*"
        | Stmt.Rmax -> "max"
        | Stmt.Rmin -> "min"
      in
      fprintf ppf " reduction(%s:%s)" s v)
    d.Stmt.reductions;
  fprintf ppf "@]"

let rec pp_stmt ppf (s : Stmt.t) =
  match s with
  | Stmt.Assign (r, e) -> fprintf ppf "@[<h>%a = %a@]" pp_ref r pp_expr e
  | Stmt.Atomic (r, e) ->
    fprintf ppf "@[<h>atomic %a = %a@]" pp_ref r pp_expr e
  | Stmt.If (branches, else_) ->
    let pp_branch first ppf (c, body) =
      fprintf ppf "@[<v 2>%s %a then@,%a@]"
        (if first then "if" else "elseif")
        pp_expr c pp_body body
    in
    (match branches with
    | [] -> ()
    | first :: rest ->
      pp_branch true ppf first;
      List.iter (fun b -> fprintf ppf "@,%a" (pp_branch false) b) rest);
    if else_ <> [] then fprintf ppf "@,@[<v 2>else@,%a@]" pp_body else_;
    fprintf ppf "@,endif"
  | Stmt.For l ->
    (match l.Stmt.directive with
    | Some d -> fprintf ppf "%a@," pp_directive d
    | None -> ());
    fprintf ppf "@[<v 2>foreach %s = %a .. %a" l.Stmt.index pp_expr l.Stmt.lo
      pp_expr l.Stmt.hi;
    (match l.Stmt.step with
    | Expr.Int_lit 1 -> ()
    | st -> fprintf ppf " step %a" pp_expr st);
    fprintf ppf "@,%a@]@,end foreach" pp_body l.Stmt.body
  | Stmt.While (c, body) ->
    fprintf ppf "@[<v 2>while %a@,%a@]@,end while" pp_expr c pp_body body
  | Stmt.Call (f, args) ->
    fprintf ppf "@[<h>call %s(%a)@]" f
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_expr)
      args
  | Stmt.Return None -> fprintf ppf "return"
  | Stmt.Return (Some e) -> fprintf ppf "return %a" pp_expr e
  | Stmt.Exit_loop -> fprintf ppf "exit"
  | Stmt.Cycle_loop -> fprintf ppf "cycle"
  | Stmt.Critical body ->
    fprintf ppf "@[<v 2>critical@,%a@]@,end critical" pp_body body
  | Stmt.Comment c -> fprintf ppf "! %s" c

and pp_body ppf stmts =
  pp_print_list ~pp_sep:pp_print_cut pp_stmt ppf stmts

let pp_storage ppf (s : Grid.storage) =
  match s with
  | Grid.Local -> fprintf ppf "local"
  | Grid.Arg n -> fprintf ppf "arg(%d)" n
  | Grid.Module_scope -> fprintf ppf "module-scope"
  | Grid.External_module m -> fprintf ppf "use %s" m
  | Grid.Type_element (m, v) -> fprintf ppf "use %s, element of %s" m v
  | Grid.Common b -> fprintf ppf "common /%s/" b

let pp_extent ppf (e : Grid.extent) =
  match e with
  | Grid.Fixed n -> fprintf ppf "%d" n
  | Grid.Sym s -> fprintf ppf "%s" s

let pp_grid ppf (g : Grid.t) =
  let pp_kind ppf = function
    | Grid.Dense t -> fprintf ppf "%s" (Types.fortran_name t)
    | Grid.Record fields ->
      fprintf ppf "record{%s}"
        (String.concat "; "
           (List.map
              (fun (n, t) -> n ^ ":" ^ Types.fortran_name t)
              fields))
  in
  fprintf ppf "@[<h>grid %s : %a" g.Grid.name pp_kind g.Grid.kind;
  if g.Grid.dims <> [] then
    fprintf ppf "[%a]"
      (pp_print_list
         ~pp_sep:(fun ppf () -> fprintf ppf ", ")
         (fun ppf d -> pp_extent ppf d.Grid.extent))
      g.Grid.dims;
  fprintf ppf " (%a%s%s)@]" pp_storage g.Grid.storage
    (if g.Grid.allocatable then ", allocatable" else "")
    (if g.Grid.save then ", save" else "")

let pp_step ppf (s : Func.step) =
  fprintf ppf "@[<v 2>step %S:@,%a@]" s.Func.label pp_body s.Func.body

let pp_func ppf (f : Func.t) =
  let kind =
    match f.Func.return with
    | None -> "subroutine"
    | Some t -> "function:" ^ Types.fortran_name t
  in
  fprintf ppf "@[<v 2>%s %s(%s)@,%a@,%a@]" kind f.Func.name
    (String.concat ", " f.Func.params)
    (pp_print_list ~pp_sep:pp_print_cut pp_grid)
    f.Func.grids
    (pp_print_list ~pp_sep:pp_print_cut pp_step)
    f.Func.steps

let pp_module ppf (m : Ir_module.t) =
  fprintf ppf "@[<v 2>module %s@,%a@,%a@]" m.Ir_module.name
    (pp_print_list ~pp_sep:pp_print_cut pp_grid)
    m.Ir_module.module_grids
    (pp_print_list ~pp_sep:pp_print_cut pp_func)
    m.Ir_module.functions

let pp_program ppf (p : Ir_module.program) =
  fprintf ppf "@[<v>program %s@,@[<v 2>global scope:@,%a@]@,%a@]"
    p.Ir_module.prog_name
    (pp_print_list ~pp_sep:pp_print_cut pp_grid)
    p.Ir_module.globals
    (pp_print_list ~pp_sep:pp_print_cut pp_module)
    p.Ir_module.modules

let expr_to_string e = asprintf "%a" pp_expr e
let stmt_to_string s = asprintf "@[<v>%a@]" pp_stmt s
let func_to_string f = asprintf "%a" pp_func f
let program_to_string p = asprintf "%a" pp_program p
