lib/integration/checker.ml: Format Func Glaf_fortran Glaf_ir Grid Ir_module Legacy_model List Stmt Types
