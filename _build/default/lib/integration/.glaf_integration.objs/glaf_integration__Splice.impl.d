lib/integration/splice.ml: Ast Glaf_fortran List String
