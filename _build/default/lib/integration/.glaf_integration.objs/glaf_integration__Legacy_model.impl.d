lib/integration/legacy_model.ml: Ast Glaf_fortran Hashtbl List Option Parser String
