(** Model of an existing legacy FORTRAN code base.

    Scans parsed legacy source and indexes exactly the entities the
    paper's integration features must agree with: modules and their
    variables (§3.1), derived TYPEs and TYPE variables (§3.5), COMMON
    blocks and their members (§3.2), and subprogram signatures
    (§3.4).  The GPI uses this to offer grid-import choices; the
    {!Checker} verifies GLAF-generated code against it. *)

open Glaf_fortran

type var_info = {
  v_name : string;
  v_base : Ast.base_type;
  v_rank : int;
  v_allocatable : bool;
}

type type_info = {
  t_name : string;
  t_fields : var_info list;
}

type module_info = {
  m_name : string;
  m_vars : var_info list;
  m_types : type_info list;
  m_type_vars : (string * string) list;  (** variable name, type name *)
}

type sub_info = {
  s_name : string;
  s_arity : int;
  s_is_function : bool;
}

type t = {
  modules : module_info list;
  commons : (string * var_info list) list;  (** block -> members *)
  subprograms : sub_info list;
}

let vars_of_decls decls =
  List.concat_map
    (fun d ->
      match d with
      | Ast.Var_decl { base; attrs; entities } ->
        List.map
          (fun (e : Ast.entity) ->
            let rank =
              match (e.Ast.ent_deferred, e.Ast.ent_dims) with
              | Some r, _ -> r
              | None, Some dims -> List.length dims
              | None, None -> (
                match
                  List.find_map
                    (function Ast.Dimension d -> Some d | _ -> None)
                    attrs
                with
                | Some d -> List.length d
                | None -> 0)
            in
            {
              v_name = e.Ast.ent_name;
              v_base = base;
              v_rank = rank;
              v_allocatable = List.mem Ast.Allocatable attrs;
            })
          entities
      | _ -> [])
    decls

let types_of_decls decls =
  List.filter_map
    (function
      | Ast.Type_def { type_name; fields } ->
        Some { t_name = type_name; t_fields = vars_of_decls fields }
      | _ -> None)
    decls

let type_vars_of_decls decls =
  List.concat_map
    (fun d ->
      match d with
      | Ast.Var_decl { base = Ast.Derived tname; entities; _ } ->
        List.map (fun (e : Ast.entity) -> (e.Ast.ent_name, tname)) entities
      | _ -> [])
    decls

let commons_of_decls ~vars decls =
  List.filter_map
    (function
      | Ast.Common (block, names) ->
        let members =
          List.map
            (fun n ->
              match List.find_opt (fun v -> v.v_name = n) vars with
              | Some v -> v
              | None ->
                (* implicitly typed COMMON member *)
                {
                  v_name = n;
                  v_base =
                    (match n.[0] with
                    | 'i' .. 'n' -> Ast.Integer
                    | _ -> Ast.Real8);
                  v_rank = 0;
                  v_allocatable = false;
                })
            names
        in
        Some (block, members)
      | _ -> None)
    decls

(** Build the model from parsed legacy source. *)
let of_ast (cu : Ast.compilation_unit) : t =
  let modules =
    List.filter_map
      (function
        | Ast.Module m ->
          Some
            {
              m_name = m.Ast.mod_name;
              m_vars = vars_of_decls m.Ast.mod_decls;
              m_types = types_of_decls m.Ast.mod_decls;
              m_type_vars = type_vars_of_decls m.Ast.mod_decls;
            }
        | _ -> None)
      cu
  in
  let commons =
    List.concat_map
      (fun u ->
        let decls =
          match u with
          | Ast.Module m -> m.Ast.mod_decls
          | Ast.Standalone sp -> sp.Ast.sub_decls
          | Ast.Main m -> m.Ast.main_decls
        in
        let vars = vars_of_decls decls in
        commons_of_decls ~vars decls
        @ List.concat_map
            (fun sp ->
              let vars = vars_of_decls sp.Ast.sub_decls in
              commons_of_decls ~vars sp.Ast.sub_decls)
            (match u with
            | Ast.Module m -> m.Ast.mod_contains
            | _ -> []))
      cu
  in
  (* merge duplicate COMMON views, preferring the richest (typed) one *)
  let commons =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (b, ms) ->
        match Hashtbl.find_opt tbl b with
        | None -> Hashtbl.replace tbl b ms
        | Some old -> if List.length ms > List.length old then Hashtbl.replace tbl b ms)
      commons;
    Hashtbl.fold (fun b ms acc -> (b, ms) :: acc) tbl []
    |> List.sort compare
  in
  let subprograms =
    List.map
      (fun (sp : Ast.subprogram) ->
        {
          s_name = String.lowercase_ascii sp.Ast.sub_name;
          s_arity = List.length sp.Ast.sub_args;
          s_is_function = sp.Ast.sub_kind <> `Subroutine;
        })
      (Ast.all_subprograms cu)
  in
  { modules; commons; subprograms }

let of_source source = of_ast (Parser.parse_string source)

(** {1 Queries} *)

let find_module t name =
  List.find_opt (fun m -> String.lowercase_ascii m.m_name = String.lowercase_ascii name) t.modules

let find_module_var t ~module_name ~var =
  Option.bind (find_module t module_name) (fun m ->
      List.find_opt (fun v -> v.v_name = var) m.m_vars)

let find_type_var t ~module_name ~type_var =
  Option.bind (find_module t module_name) (fun m ->
      List.assoc_opt type_var m.m_type_vars)

let find_type_field t ~module_name ~type_name ~field =
  Option.bind (find_module t module_name) (fun m ->
      Option.bind
        (List.find_opt (fun ti -> ti.t_name = type_name) m.m_types)
        (fun ti -> List.find_opt (fun v -> v.v_name = field) ti.t_fields))

let find_common t block = List.assoc_opt block t.commons

let find_subprogram t name =
  List.find_opt (fun s -> s.s_name = String.lowercase_ascii name) t.subprograms
