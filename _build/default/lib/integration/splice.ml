(** Splicing GLAF-generated code into a legacy code base.

    The paper's workflow (§4.1.1): develop the kernels in GLAF, unit
    test them against sample inputs via a wrapper, then {e substitute}
    the original subroutines in the legacy program with the generated
    ones and run the legacy test suite.  [replace_subprograms] performs
    exactly that substitution at the AST level; [add_units] appends
    new generated modules (e.g. the GLAF globals module) ahead of the
    legacy units so later USE statements resolve. *)

open Glaf_fortran

let lower = String.lowercase_ascii

(** Replace same-named subprograms of [legacy] with versions from
    [generated]; returns the new compilation unit and the list of
    names actually substituted. *)
let replace_subprograms ~legacy ~generated :
    Ast.compilation_unit * string list =
  let replacements =
    List.map
      (fun (sp : Ast.subprogram) -> (lower sp.Ast.sub_name, sp))
      (Ast.all_subprograms generated)
  in
  let substituted = ref [] in
  let swap (sp : Ast.subprogram) =
    match List.assoc_opt (lower sp.Ast.sub_name) replacements with
    | Some repl ->
      substituted := sp.Ast.sub_name :: !substituted;
      repl
    | None -> sp
  in
  let cu =
    List.map
      (fun u ->
        match u with
        | Ast.Module m ->
          Ast.Module { m with Ast.mod_contains = List.map swap m.Ast.mod_contains }
        | Ast.Standalone sp -> Ast.Standalone (swap sp)
        | Ast.Main _ -> u)
      legacy
  in
  (cu, List.rev !substituted)

(** Names of generated subprograms that do not exist in the legacy
    code (helper functions GLAF introduced, e.g. interior-loop
    functions per §3.3) — these must be {e added}, not substituted. *)
let new_subprograms ~legacy ~generated =
  let legacy_names =
    List.map (fun (sp : Ast.subprogram) -> lower sp.Ast.sub_name)
      (Ast.all_subprograms legacy)
  in
  List.filter
    (fun (sp : Ast.subprogram) -> not (List.mem (lower sp.Ast.sub_name) legacy_names))
    (Ast.all_subprograms generated)

(** Prepend generated units (modules first, then standalones) so that
    legacy units can USE them. *)
let add_units ~legacy ~units : Ast.compilation_unit =
  let modules, others =
    List.partition (function Ast.Module _ -> true | _ -> false) units
  in
  modules @ others @ legacy

(** Module-preserving substitution: remove every legacy subprogram
    whose name is re-implemented in [generated] (wherever it lives)
    and prepend the generated units whole.  This is the right mode
    when the generated subprograms rely on their generated module's
    scope (module-scope grids, §3.3) and therefore must stay inside
    it.  Calls in the remaining legacy code resolve to the generated
    versions by name.  Returns the integrated unit and the names that
    were substituted. *)
let substitute ~legacy ~generated : Ast.compilation_unit * string list =
  let gen_names =
    List.map (fun (sp : Ast.subprogram) -> lower sp.Ast.sub_name)
      (Ast.all_subprograms generated)
  in
  let substituted = ref [] in
  let keep_sub (sp : Ast.subprogram) =
    if List.mem (lower sp.Ast.sub_name) gen_names then begin
      substituted := sp.Ast.sub_name :: !substituted;
      false
    end
    else true
  in
  let legacy' =
    List.filter_map
      (fun u ->
        match u with
        | Ast.Standalone sp -> if keep_sub sp then Some u else None
        | Ast.Module m ->
          Some
            (Ast.Module
               { m with Ast.mod_contains = List.filter keep_sub m.Ast.mod_contains })
        | Ast.Main _ -> Some u)
      legacy
  in
  (add_units ~legacy:legacy' ~units:generated, List.rev !substituted)

(** Full integration: replace matching subroutines, append brand-new
    generated helpers into the module that contained the first
    replaced subprogram (or as standalone units), and prepend any new
    generated modules.  Returns the integrated compilation unit. *)
let integrate ~legacy ~generated : Ast.compilation_unit * string list =
  let replaced_cu, substituted = replace_subprograms ~legacy ~generated in
  let fresh = new_subprograms ~legacy ~generated in
  let generated_modules =
    List.filter_map
      (function
        | Ast.Module m ->
          (* keep only modules that are NOT already present in legacy *)
          if
            List.exists
              (function
                | Ast.Module lm -> lower lm.Ast.mod_name = lower m.Ast.mod_name
                | _ -> false)
              legacy
          then None
          else
            (* strip subprograms that were used for substitution; keep
               the module shell with its declarations and the fresh
               helpers it carries *)
            let keep =
              List.filter
                (fun (sp : Ast.subprogram) ->
                  not (List.mem sp.Ast.sub_name substituted))
                m.Ast.mod_contains
            in
            Some (Ast.Module { m with Ast.mod_contains = keep })
        | Ast.Standalone _ | Ast.Main _ -> None)
      generated
  in
  let fresh_standalone =
    List.filter_map
      (fun (sp : Ast.subprogram) ->
        (* fresh helpers already inside a kept generated module need no
           standalone copy *)
        let inside_kept_module =
          List.exists
            (function
              | Ast.Module m ->
                List.exists
                  (fun (s : Ast.subprogram) -> s.Ast.sub_name = sp.Ast.sub_name)
                  m.Ast.mod_contains
              | _ -> false)
            generated_modules
        in
        if inside_kept_module then None else Some (Ast.Standalone sp))
      fresh
  in
  (add_units ~legacy:replaced_cu ~units:(generated_modules @ fresh_standalone),
   substituted)
