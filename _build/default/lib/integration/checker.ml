(** Integration checker: verifies that a GLAF grid-IR program is
    consistent with a legacy code model before code generation.

    The paper identifies integration failures as the blocker for
    frameworks like GLAF; this checker turns them into diagnostics:
    - a grid marked [External_module m] must exist as a variable of
      module [m] with matching type and rank (§3.1);
    - a grid marked [Type_element (m, tv)] needs [tv] to be a TYPE
      variable of [m] whose type has a matching field (§3.5);
    - COMMON grids must agree with the block's legacy declaration
      (name present, type compatible) (§3.2);
    - calls to names outside the GLAF program must resolve to legacy
      subprograms with the right arity (§3.4). *)

open Glaf_ir

type issue = {
  where : string;
  what : string;
}

let issue where fmt = Format.kasprintf (fun what -> { where; what }) fmt

let pp_issue ppf i = Format.fprintf ppf "%s: %s" i.where i.what

let issue_to_string i = Format.asprintf "%a" pp_issue i

let base_compatible (elem : Types.elem_type) (base : Glaf_fortran.Ast.base_type) =
  match (elem, base) with
  | Types.T_int, Glaf_fortran.Ast.Integer -> true
  | Types.T_real, Glaf_fortran.Ast.Real -> true
  | Types.T_real8, (Glaf_fortran.Ast.Real8 | Glaf_fortran.Ast.Real) -> true
  | Types.T_logical, Glaf_fortran.Ast.Logical -> true
  | Types.T_string, Glaf_fortran.Ast.Character _ -> true
  | _ -> false

let check_grid legacy where (g : Grid.t) : issue list =
  let elem = Grid.elem_type g in
  let rank = Grid.num_dims g in
  match g.Grid.storage with
  | Grid.External_module m -> (
    match Legacy_model.find_module legacy m with
    | None -> [ issue where "grid %S: USEd module %S does not exist" g.Grid.name m ]
    | Some _ -> (
      match Legacy_model.find_module_var legacy ~module_name:m ~var:g.Grid.name with
      | None ->
        [ issue where "grid %S not found in legacy module %S" g.Grid.name m ]
      | Some v ->
        (if base_compatible elem v.Legacy_model.v_base then []
         else
           [
             issue where "grid %S: type mismatch with legacy module %S"
               g.Grid.name m;
           ])
        @
        if v.Legacy_model.v_rank = rank then []
        else
          [
            issue where "grid %S: rank %d but legacy declares rank %d"
              g.Grid.name rank v.Legacy_model.v_rank;
          ]))
  | Grid.Type_element (m, tv) -> (
    match Legacy_model.find_type_var legacy ~module_name:m ~type_var:tv with
    | None ->
      [
        issue where "grid %S: no TYPE variable %S in legacy module %S"
          g.Grid.name tv m;
      ]
    | Some tname -> (
      match
        Legacy_model.find_type_field legacy ~module_name:m ~type_name:tname
          ~field:g.Grid.name
      with
      | None ->
        [
          issue where "grid %S: TYPE %S has no such element" g.Grid.name tname;
        ]
      | Some v ->
        (if base_compatible elem v.Legacy_model.v_base then []
         else [ issue where "grid %S: TYPE element type mismatch" g.Grid.name ])
        @
        if v.Legacy_model.v_rank = rank then []
        else [ issue where "grid %S: TYPE element rank mismatch" g.Grid.name ]))
  | Grid.Common block -> (
    match Legacy_model.find_common legacy block with
    | None ->
      (* a brand-new COMMON block introduced by GLAF code is legal *)
      []
    | Some members -> (
      match
        List.find_opt (fun v -> v.Legacy_model.v_name = g.Grid.name) members
      with
      | None ->
        [
          issue where "grid %S is not a member of legacy COMMON /%s/"
            g.Grid.name block;
        ]
      | Some v ->
        if base_compatible elem v.Legacy_model.v_base then []
        else
          [
            issue where "grid %S: type mismatch with COMMON /%s/" g.Grid.name
              block;
          ]))
  | Grid.Local | Grid.Arg _ | Grid.Module_scope -> []

let check_calls legacy (p : Ir_module.program) : issue list =
  let own =
    List.map (fun (f : Func.t) -> f.Func.name) (Ir_module.all_functions p)
  in
  List.concat_map
    (fun (f : Func.t) ->
      let where = f.Func.name in
      Stmt.fold_stmts
        (fun acc s ->
          match s with
          | Stmt.Call (callee, args) when not (List.mem callee own) -> (
            match Legacy_model.find_subprogram legacy callee with
            | None ->
              issue where "CALL to %S: not in GLAF program nor legacy code"
                callee
              :: acc
            | Some si ->
              if si.Legacy_model.s_arity <> List.length args then
                issue where
                  "CALL to legacy %S with %d arguments, legacy expects %d"
                  callee (List.length args) si.Legacy_model.s_arity
                :: acc
              else acc)
          | _ -> acc)
        [] (Func.all_stmts f))
    (Ir_module.all_functions p)

(** Check a whole GLAF program against a legacy model. *)
let check legacy (p : Ir_module.program) : issue list =
  let grid_issues =
    List.concat_map
      (fun (f : Func.t) ->
        List.concat_map (check_grid legacy f.Func.name) f.Func.grids)
      (Ir_module.all_functions p)
    @ List.concat_map (check_grid legacy "global") p.Ir_module.globals
  in
  grid_issues @ check_calls legacy p

exception Incompatible of issue list

let check_exn legacy p =
  match check legacy p with
  | [] -> ()
  | issues -> raise (Incompatible issues)
