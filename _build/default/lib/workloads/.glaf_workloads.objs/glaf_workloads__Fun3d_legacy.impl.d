lib/workloads/fun3d_legacy.ml: Glaf_fortran List String
