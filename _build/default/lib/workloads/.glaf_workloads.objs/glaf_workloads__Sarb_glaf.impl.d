lib/workloads/sarb_glaf.ml: Build Expr Glaf_builder Glaf_ir Grid Ir_module List Sarb_legacy Stmt Types
