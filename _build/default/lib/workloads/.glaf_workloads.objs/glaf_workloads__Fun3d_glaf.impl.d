lib/workloads/fun3d_glaf.ml: Build Expr Func Glaf_builder Glaf_ir Glaf_optimizer Grid Ir_module List Stmt String Types
