lib/workloads/sarb_legacy.ml: Glaf_fortran String
