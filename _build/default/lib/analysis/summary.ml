(** Side-effect summaries of GLAF functions.

    GLAF models interior nested loops as separate functions (§3.3), so
    loops routinely contain calls; the dependence analysis needs to
    know what a callee touches.  A summary records which parameter
    positions are written/read and which non-local grids (module-scope,
    COMMON, external-module, global) are written/read, propagated
    transitively through the call graph. *)

open Glaf_ir

type t = {
  writes_params : int list;
  reads_params : int list;
  writes_external : string list;
  reads_external : string list;
  calls_unknown : string list;
      (** callees that are neither program functions nor known-pure *)
}

let empty =
  {
    writes_params = [];
    reads_params = [];
    writes_external = [];
    reads_external = [];
    calls_unknown = [];
  }

let union a b =
  let u l1 l2 = List.sort_uniq compare (l1 @ l2) in
  {
    writes_params = u a.writes_params b.writes_params;
    reads_params = u a.reads_params b.reads_params;
    writes_external = u a.writes_external b.writes_external;
    reads_external = u a.reads_external b.reads_external;
    calls_unknown = u a.calls_unknown b.calls_unknown;
  }

(* Storage of grid [name] as seen from function [f]: local (incl.
   arguments) or external. *)
let grid_visibility p m f name =
  match Func.find_grid f name with
  | Some g -> (
    match g.Grid.storage with
    | Grid.Local -> `Local
    | Grid.Arg n -> `Param n
    | Grid.Module_scope | Grid.External_module _ | Grid.Type_element _
    | Grid.Common _ ->
      `External)
  | None -> (
    match Ir_module.resolve_grid p m f name with
    | Some _ -> `External
    | None -> `Index (* loop index or unknown: local by construction *))

type env = {
  program : Ir_module.program;
  pure : string list;  (** library functions assumed side-effect free *)
}

let rec summarize env cache visited fname : t =
  match Hashtbl.find_opt cache fname with
  | Some s -> s
  | None ->
    if List.mem fname visited then
      (* recursive cycle: conservative empty fixpoint seed *)
      empty
    else begin
      let result =
        match find_with_module env.program fname with
        | None -> { empty with calls_unknown = [ fname ] }
        | Some (m, f) -> summarize_function env cache (fname :: visited) m f
      in
      Hashtbl.replace cache fname result;
      result
    end

and find_with_module p fname =
  List.find_map
    (fun m ->
      match Ir_module.find_function m fname with
      | Some f -> Some (m, f)
      | None -> None)
    p.Ir_module.modules

and summarize_function env cache visited m f : t =
  let p = env.program in
  let acc = ref empty in
  let classify_ref kind (r : Expr.gref) =
    match grid_visibility p m f r.Expr.grid with
    | `Local | `Index -> ()
    | `Param n ->
      acc :=
        if kind = `W then
          union !acc { empty with writes_params = [ n ] }
        else union !acc { empty with reads_params = [ n ] }
    | `External ->
      acc :=
        if kind = `W then
          union !acc { empty with writes_external = [ r.Expr.grid ] }
        else union !acc { empty with reads_external = [ r.Expr.grid ] }
  in
  let body = Func.all_stmts f in
  List.iter (classify_ref `W) (Stmt.writes body);
  List.iter (classify_ref `R) (Stmt.reads body);
  (* propagate callee effects through actual arguments *)
  let handle_call callee args =
    if List.mem callee env.pure then ()
    else begin
      let s = summarize env cache visited callee in
      acc :=
        union !acc
          {
            empty with
            writes_external = s.writes_external;
            reads_external = s.reads_external;
            calls_unknown = s.calls_unknown;
          };
      (match find_with_module p callee with
      | None ->
        acc := union !acc { empty with calls_unknown = [ callee ] }
      | Some _ ->
        List.iteri
          (fun pos arg ->
            let refs = Expr.refs arg in
            let is_written = List.mem pos s.writes_params in
            let is_read = List.mem pos s.reads_params in
            List.iter
              (fun r ->
                if is_written then classify_ref `W r;
                if is_read then classify_ref `R r)
              refs)
          args)
    end
  in
  Stmt.fold_stmts
    (fun () st ->
      match st with
      | Stmt.Call (callee, args) -> handle_call callee args
      | _ ->
        List.iter
          (fun e ->
            Expr.fold
              (fun () e ->
                match e with
                | Expr.Call (callee, args) -> handle_call callee args
                | _ -> ())
              () e)
          (Stmt.shallow_exprs st))
    () body;
  !acc

(** Summaries for every function of [program]. *)
let of_program ?(pure = []) program : (string, t) Hashtbl.t =
  let env = { program; pure } in
  let cache = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) -> ignore (summarize env cache [] f.Func.name))
    (Ir_module.all_functions program);
  cache
