(** Loop dependence analysis — GLAF's parallelism-detection back-end.

    For a candidate loop over index [i], the loop is parallelizable
    when every pair of accesses that could touch the same grid cell
    from different iterations is disproved:

    - array accesses are compared dimension-wise with a strong-SIV
      test on subscripts affine in [i];
    - scalars written inside the body must be recognized as private
      (written before read, lexically) or as reductions
      ([s = s op e], one op, no other uses);
    - function-local temporary arrays whose subscripts never involve
      [i] are privatized (the FUN3D pattern: per-iteration scratch);
    - calls are checked against {!Summary} — writes to non-local state
      block parallelization, written actual arguments are treated as
      writes at the call site. *)

open Glaf_ir

type env = {
  program : Ir_module.program;
  enclosing : Ir_module.t;
  func : Func.t;
  summaries : (string, Summary.t) Hashtbl.t;
  pure : string list;
}

let env_of_program ?(pure = []) program enclosing func =
  {
    program;
    enclosing;
    func;
    summaries = Summary.of_program ~pure program;
    pure;
  }

let lookup_grid env name =
  Ir_module.resolve_grid env.program env.enclosing env.func name

let is_scalar_name env name =
  match lookup_grid env name with
  | Some g -> Grid.is_scalar g
  | None -> true (* loop index or implicit scalar *)

let is_local_grid env name =
  match lookup_grid env name with
  | Some g -> g.Grid.storage = Grid.Local
  | None -> true

(** {1 Reduction shapes} *)

(* Recognize s := s op e (or commuted, or a sum chain s + e1 + e2);
   returns the op and the non-s operands. *)
let reduction_shape sname (e : Expr.t) : (Stmt.red_op * Expr.t list) option =
  let is_s = function
    | Expr.Ref { Expr.grid; field = None; indices = [] } -> grid = sname
    | _ -> false
  in
  let lower = String.lowercase_ascii in
  (* recognize sum chains with s on the leftmost spine:
     s + e1, s + e1 + e2, s - e1 + e2, ... *)
  let rec sum_chain e =
    if is_s e then Some []
    else
      match e with
      | Expr.Binop ((Expr.Add | Expr.Sub), a, b)
        when not (Expr.mentions sname b) -> (
        match sum_chain a with
        | Some parts -> Some (b :: parts)
        | None -> None)
      | _ -> None
  in
  match e with
  | Expr.Binop ((Expr.Add | Expr.Sub), _, _) when sum_chain e <> Some [] -> (
    match sum_chain e with
    | Some (_ :: _ as parts) -> Some (Stmt.Rsum, parts)
    | Some [] | None -> (
      match e with
      | Expr.Binop (Expr.Add, a, b) when is_s b && not (Expr.mentions sname a)
        ->
        Some (Stmt.Rsum, [ a ])
      | _ -> None))
  | Expr.Binop (Expr.Mul, a, b) when is_s a && not (Expr.mentions sname b) ->
    Some (Stmt.Rprod, [ b ])
  | Expr.Binop (Expr.Mul, a, b) when is_s b && not (Expr.mentions sname a) ->
    Some (Stmt.Rprod, [ a ])
  | Expr.Call (f, [ a; b ])
    when (lower f = "max" || lower f = "dmax1" || lower f = "amax1")
         && is_s a
         && not (Expr.mentions sname b) ->
    Some (Stmt.Rmax, [ b ])
  | Expr.Call (f, [ a; b ])
    when (lower f = "max" || lower f = "dmax1" || lower f = "amax1")
         && is_s b
         && not (Expr.mentions sname a) ->
    Some (Stmt.Rmax, [ a ])
  | Expr.Call (f, [ a; b ])
    when (lower f = "min" || lower f = "dmin1" || lower f = "amin1")
         && is_s a
         && not (Expr.mentions sname b) ->
    Some (Stmt.Rmin, [ b ])
  | Expr.Call (f, [ a; b ])
    when (lower f = "min" || lower f = "dmin1" || lower f = "amin1")
         && is_s b
         && not (Expr.mentions sname a) ->
    Some (Stmt.Rmin, [ a ])
  | _ -> None

(** {1 Access collection} *)

type kind =
  | R
  | W
  | Red of Stmt.red_op  (** scalar reduction update [s = s op e] *)

type access = {
  aref : Expr.gref;
  akind : kind;
  seq : int;  (** lexical order *)
}

type collected = {
  accesses : access list;  (** lexical order *)
  obstacles : Loop_info.obstacle list;
  inner_indices : string list;  (** indices of nested serial loops *)
}

let collect env (loop : Stmt.loop) : collected =
  let seq = ref 0 in
  let accesses = ref [] in
  let obstacles = ref [] in
  let inner = ref [] in
  let push akind r =
    incr seq;
    accesses := { aref = r; akind; seq = !seq } :: !accesses
  in
  let rec scan_expr e =
    (* reads + calls inside expressions *)
    (match e with
    | Expr.Call (callee, args) ->
      handle_call callee args;
      (* arguments scanned by handle_call *)
      ()
    | Expr.Ref r ->
      push R r;
      List.iter scan_expr r.Expr.indices
    | Expr.Unop (_, a) -> scan_expr a
    | Expr.Binop (_, a, b) ->
      scan_expr a;
      scan_expr b
    | Expr.Int_lit _ | Expr.Real_lit _ | Expr.Bool_lit _ | Expr.Str_lit _ ->
      ())
  and handle_call callee args =
    if List.mem callee env.pure then List.iter scan_expr args
    else
      match Hashtbl.find_opt env.summaries callee with
      | None -> obstacles := Loop_info.Unsafe_call callee :: !obstacles
      | Some s ->
        if s.Summary.writes_external <> [] || s.Summary.calls_unknown <> []
        then obstacles := Loop_info.Unsafe_call callee :: !obstacles
        else
          List.iteri
            (fun pos arg ->
              (match arg with
              | Expr.Ref r when List.mem pos s.Summary.writes_params ->
                (* by-reference in/out: the callee may read the dummy
                   before writing it, and its final value is live-out,
                   so record both a read and a write at the call site *)
                push R r;
                push W r
              | _ ->
                if List.mem pos s.Summary.writes_params then
                  obstacles := Loop_info.Unsafe_call callee :: !obstacles);
              scan_expr arg)
            args
  and walk ~depth stmts =
    List.iter
      (fun (s : Stmt.t) ->
        match s with
        | Stmt.Assign (r, e) -> (
          List.iter scan_expr r.Expr.indices;
          match (r.Expr.indices, r.Expr.field) with
          | [], None -> (
            (* scalar assignment: reduction update? *)
            match reduction_shape r.Expr.grid e with
            | Some (op, others) ->
              List.iter scan_expr others;
              push (Red op) r
            | None ->
              scan_expr e;
              push W r)
          | _ ->
            scan_expr e;
            push W r)
        | Stmt.Atomic (r, e) ->
          (* atomic updates are race-free by construction: register
             neither a read nor a write dependence on the target *)
          List.iter scan_expr r.Expr.indices;
          (match reduction_shape r.Expr.grid e with
          | Some (_, others) -> List.iter scan_expr others
          | None -> scan_expr e)
        | Stmt.If (branches, else_) ->
          List.iter
            (fun (c, body) ->
              scan_expr c;
              walk ~depth body)
            branches;
          walk ~depth else_
        | Stmt.For l ->
          inner := l.Stmt.index :: !inner;
          scan_expr l.Stmt.lo;
          scan_expr l.Stmt.hi;
          scan_expr l.Stmt.step;
          push W { Expr.grid = l.Stmt.index; field = None; indices = [] };
          walk ~depth:(depth + 1) l.Stmt.body
        | Stmt.While (c, body) ->
          scan_expr c;
          walk ~depth:(depth + 1) body
        | Stmt.Call (callee, args) -> handle_call callee args
        | Stmt.Return _ -> obstacles := Loop_info.Early_exit :: !obstacles
        | Stmt.Exit_loop ->
          if depth = 0 then obstacles := Loop_info.Early_exit :: !obstacles
        | Stmt.Cycle_loop -> ()
        | Stmt.Critical _body ->
          (* executed under a global lock: contents cannot race *)
          ()
        | Stmt.Comment _ -> ())
      stmts
  in
  walk ~depth:0 loop.Stmt.body;
  {
    accesses = List.rev !accesses;
    obstacles = List.rev !obstacles;
    inner_indices = List.sort_uniq String.compare !inner;
  }

(** {1 Scalar roles} *)

type scalar_role =
  | Read_only
  | Private
  | Reduction of Stmt.red_op
  | Dependent

let scalar_role ~index (c : collected) sname : scalar_role =
  if sname = index then Read_only
  else
    let touches =
      List.filter (fun a -> a.aref.Expr.grid = sname) c.accesses
    in
    let has_plain_write = List.exists (fun a -> a.akind = W) touches in
    let red_ops =
      List.filter_map
        (fun a -> match a.akind with Red op -> Some op | _ -> None)
        touches
    in
    if (not has_plain_write) && red_ops = [] then Read_only
    else if red_ops <> [] && not has_plain_write then begin
      (* pure reduction if a single op and no other reads *)
      let same_op =
        match red_ops with
        | [] -> None
        | op :: rest -> if List.for_all (( = ) op) rest then Some op else None
      in
      let other_reads = List.exists (fun a -> a.akind = R) touches in
      match same_op with
      | Some op when not other_reads -> Reduction op
      | _ -> Dependent
    end
    else
      (* plain writes involved: private iff first touch is a write *)
      match touches with
      | { akind = W; _ } :: _ -> Private
      | _ -> Dependent

(** {1 Array dependence} *)

(* Disambiguate a pair of accesses to the same grid across iterations
   of loop [index].  Returns true when provably independent. *)
let independent_pair ~index (a : Expr.gref) (b : Expr.gref) =
  let rank = max (List.length a.Expr.indices) (List.length b.Expr.indices) in
  if List.length a.Expr.indices <> List.length b.Expr.indices then false
  else begin
    let ok = ref false in
    for d = 0 to rank - 1 do
      let sa = List.nth a.Expr.indices d and sb = List.nth b.Expr.indices d in
      match
        (Expr.affinity_of ~var:index sa, Expr.affinity_of ~var:index sb)
      with
      | Expr.Identity, Expr.Identity -> ok := true
      | Expr.Affine (ca, oa), Expr.Affine (cb, ob)
        when ca = cb && ca <> 0 && oa = ob ->
        ok := true
      | Expr.Identity, Expr.Affine (1, 0) | Expr.Affine (1, 0), Expr.Identity ->
        ok := true
      | _ -> ()
    done;
    !ok
  end

(* Distinct fields of a record grid never alias. *)
let may_alias (a : Expr.gref) (b : Expr.gref) =
  a.Expr.grid = b.Expr.grid
  &&
  match (a.Expr.field, b.Expr.field) with
  | Some fa, Some fb -> fa = fb
  | _ -> true

(** {1 Whole-loop analysis} *)

let constant_trip (loop : Stmt.loop) =
  match (loop.Stmt.lo, loop.Stmt.hi, loop.Stmt.step) with
  | Expr.Int_lit lo, Expr.Int_lit hi, Expr.Int_lit 1 -> Some (hi - lo + 1)
  | _ -> None

(* Is expression free of the loop index and of anything written in the
   body? (used for collapse legality of inner bounds) *)
let outer_invariant ~index c e =
  (not (Expr.mentions index e))
  && List.for_all
       (fun g ->
         not
           (List.exists
              (fun a -> a.akind <> R && a.aref.Expr.grid = g)
              c.accesses))
       (Expr.grids_read e)

(* Loop classes follow the paper's Table 2 wording: v1 targets
   zero-initializations and single-value loads; v2 targets "all
   remaining single loops of the code ... as well as loops that
   contain reductions" — i.e. any non-nested loop; v3 targets
   "double-nested loops that contain one or a few statements without
   including any control structure".  What survives all removals is
   the class of control-carrying nests (the two large
   longwave_entropy_model loops). *)
let classify env (loop : Stmt.loop) ~parallel:_ : Loop_info.loop_class =
  let body = loop.Stmt.body in
  let is_user_fn name =
    Ir_module.find_program_function env.program name <> None
  in
  let expr_calls_user e =
    Expr.fold
      (fun acc e ->
        match e with
        | Expr.Call (f, _) -> acc || is_user_fn f
        | _ -> acc)
      false e
  in
  let has_control =
    Stmt.exists
      (function
        | Stmt.If _ | Stmt.While _ | Stmt.Call _ | Stmt.Critical _ -> true
        | s -> List.exists expr_calls_user (Stmt.shallow_exprs s))
      body
  in
  let depth = 1 + Stmt.loop_depth body in
  match body with
  | [ Stmt.Assign (r, rhs) ]
    when r.Expr.indices <> []
         && (rhs = Expr.Int_lit 0 || rhs = Expr.Real_lit 0.0) ->
    Loop_info.Init_zero
  | [ Stmt.Assign (r, (Expr.Ref _ | Expr.Int_lit _ | Expr.Real_lit _)) ]
    when r.Expr.indices <> [] ->
    Loop_info.Init_broadcast
  | _ ->
    if depth = 1 then Loop_info.Simple_single
    else if depth = 2 && not has_control then Loop_info.Simple_double
    else Loop_info.Complex

let rec analyze env (loop : Stmt.loop) : Loop_info.t =
  let index = loop.Stmt.index in
  let c = collect env loop in
  let obstacles = ref c.obstacles in
  (* scalar names touched *)
  let scalar_names =
    List.filter_map
      (fun a ->
        if a.aref.Expr.indices = [] && a.aref.Expr.field = None
           && is_scalar_name env a.aref.Expr.grid
        then Some a.aref.Expr.grid
        else None)
      c.accesses
    |> List.sort_uniq String.compare
  in
  let reductions = ref [] in
  let private_vars = ref [] in
  List.iter
    (fun s ->
      match scalar_role ~index c s with
      | Read_only -> ()
      | Private -> private_vars := s :: !private_vars
      | Reduction op ->
        reductions := { Loop_info.red_var = s; red_op = op } :: !reductions
      | Dependent ->
        obstacles := Loop_info.Scalar_dependence s :: !obstacles)
    scalar_names;
  (* inner loop indices are always private *)
  private_vars :=
    List.sort_uniq String.compare (c.inner_indices @ !private_vars);
  (* array accesses *)
  let array_accesses =
    List.filter
      (fun a ->
        a.aref.Expr.indices <> [] || not (is_scalar_name env a.aref.Expr.grid))
      c.accesses
  in
  (* privatizable local scratch arrays: local storage, no subscript
     mentions the loop index anywhere, first access is a write *)
  let scratch =
    let grids =
      List.map (fun a -> a.aref.Expr.grid) array_accesses
      |> List.sort_uniq String.compare
    in
    List.filter
      (fun g ->
        is_local_grid env g
        && (not (is_scalar_name env g))
        && List.for_all
             (fun a ->
               a.aref.Expr.grid <> g
               || List.for_all
                    (fun ix -> not (Expr.mentions index ix))
                    a.aref.Expr.indices)
             array_accesses
        &&
        match List.find_opt (fun a -> a.aref.Expr.grid = g) array_accesses with
        | Some { akind = W; _ } -> true
        | _ -> false)
      grids
  in
  private_vars := List.sort_uniq String.compare (scratch @ !private_vars);
  let checked =
    List.filter (fun a -> not (List.mem a.aref.Expr.grid scratch)) array_accesses
  in
  let writes = List.filter (fun a -> a.akind <> R) checked in
  let flag_carried g =
    if
      not
        (List.exists
           (function Loop_info.Loop_carried g' -> g' = g | _ -> false)
           !obstacles)
    then obstacles := Loop_info.Loop_carried g :: !obstacles
  in
  (* every (write, other-access) pair on a potentially aliasing cell
     must be disproved *)
  List.iter
    (fun w ->
      List.iter
        (fun a ->
          if
            a.seq <> w.seq
            && may_alias w.aref a.aref
            && not (independent_pair ~index w.aref a.aref)
          then flag_carried w.aref.Expr.grid)
        checked)
    writes;
  let obstacles = List.sort_uniq compare !obstacles in
  let parallel = obstacles = [] in
  let collapsible =
    (* the fused space is only valid if BOTH loops are independently
       parallel: a serial inner recurrence (e.g. a per-band cumulative
       sweep) must not be collapsed *)
    parallel
    &&
    match loop.Stmt.body with
    | [ Stmt.For inner ] ->
      inner.Stmt.step = Expr.Int_lit 1
      && outer_invariant ~index c inner.Stmt.lo
      && outer_invariant ~index c inner.Stmt.hi
      && (analyze env inner).Loop_info.parallel
    | _ -> false
  in
  {
    Loop_info.parallel;
    obstacles;
    reductions = List.rev !reductions;
    private_vars = !private_vars;
    classification = classify env loop ~parallel;
    collapsible;
    trip_count = constant_trip loop;
  }
