lib/analysis/summary.pp.ml: Expr Func Glaf_ir Grid Hashtbl Ir_module List Stmt
