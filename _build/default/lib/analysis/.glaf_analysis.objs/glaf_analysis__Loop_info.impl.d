lib/analysis/loop_info.pp.ml: Glaf_ir List Ppx_deriving_runtime Printf Stmt
