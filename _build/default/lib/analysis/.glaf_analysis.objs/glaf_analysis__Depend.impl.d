lib/analysis/depend.pp.ml: Expr Func Glaf_ir Grid Hashtbl Ir_module List Loop_info Stmt String Summary
