lib/analysis/autopar.pp.ml: Depend Format Func Glaf_ir Ir_module List Loop_info Stmt String
