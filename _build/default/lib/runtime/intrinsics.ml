(** Fortran intrinsic library (the paper's §3.6: ABS, ALOG, SUM, ...).

    [apply name args] evaluates intrinsic [name] (lower-case) or
    returns [None] when the name is not an intrinsic — the interpreter
    then looks for a user function.  Both the generic F90 names and the
    specific F77 names used in legacy codes (ALOG, DMAX1, IABS, ...)
    are provided. *)

open Value

let float1 f = function
  | [ v ] -> Real (f (to_float v))
  | _ -> error "intrinsic expects one argument"

let float2 f = function
  | [ a; b ] -> Real (f (to_float a) (to_float b))
  | _ -> error "intrinsic expects two arguments"

let fold_numeric name ident f args =
  match args with
  | [ Arr a ] ->
    Real
      (Farray.fold
         (fun acc c ->
           match c with
           | Farray.Cf x -> f acc x
           | Farray.Ci n -> f acc (float_of_int n)
           | Farray.Cb _ | Farray.Cs _ ->
             error "%s over non-numeric array" name)
         ident a)
  | [ v ] -> Real (f ident (to_float v))
  | _ -> error "%s expects one array argument" name

let variadic_minmax name pick args =
  match args with
  | [] -> error "%s needs arguments" name
  | [ Arr _ ] -> error "%s of array: use minval/maxval" name
  | first :: rest ->
    let all_int = List.for_all is_int (first :: rest) in
    let best =
      List.fold_left
        (fun acc v -> if pick (to_float v) (to_float acc) then v else acc)
        first rest
    in
    if all_int then Int (to_int best) else Real (to_float best)

let sign_val a b =
  let a = Float.abs a in
  if b >= 0.0 then a else -.a

let table : (string * (Value.t list -> Value.t)) list =
  [
    (* --- elemental numeric --- *)
    ( "abs",
      function
      | [ Int n ] -> Int (abs n)
      | [ Real x ] -> Real (Float.abs x)
      | _ -> error "abs expects one numeric argument" );
    ("iabs", function [ v ] -> Int (abs (to_int v)) | _ -> error "iabs arity");
    ("dabs", float1 Float.abs);
    ("sqrt", float1 sqrt);
    ("dsqrt", float1 sqrt);
    ("exp", float1 exp);
    ("dexp", float1 exp);
    ("log", float1 log);
    ("alog", float1 log);
    ("dlog", float1 log);
    ("log10", float1 log10);
    ("alog10", float1 log10);
    ("sin", float1 sin);
    ("cos", float1 cos);
    ("tan", float1 tan);
    ("asin", float1 asin);
    ("acos", float1 acos);
    ("atan", float1 atan);
    ("atan2", float2 atan2);
    ("sinh", float1 sinh);
    ("cosh", float1 cosh);
    ("tanh", float1 tanh);
    ("sign", float2 sign_val);
    ("dsign", float2 sign_val);
    ( "mod",
      function
      | [ Int a; Int b ] ->
        if b = 0 then error "mod by zero" else Int (a mod b)
      | [ a; b ] -> Real (Float.rem (to_float a) (to_float b))
      | _ -> error "mod expects two arguments" );
    (* --- conversions --- *)
    ("int", function [ v ] -> Int (to_int v) | _ -> error "int arity");
    ("ifix", function [ v ] -> Int (to_int v) | _ -> error "ifix arity");
    ( "nint",
      function
      | [ v ] -> Int (int_of_float (Float.round (to_float v)))
      | _ -> error "nint arity" );
    ( "floor",
      function
      | [ v ] -> Int (int_of_float (Float.floor (to_float v)))
      | _ -> error "floor arity" );
    ( "ceiling",
      function
      | [ v ] -> Int (int_of_float (Float.ceil (to_float v)))
      | _ -> error "ceiling arity" );
    ("real", function [ v ] -> Real (to_float v) | _ -> error "real arity");
    ("float", function [ v ] -> Real (to_float v) | _ -> error "float arity");
    ("dble", function [ v ] -> Real (to_float v) | _ -> error "dble arity");
    ("sngl", function [ v ] -> Real (to_float v) | _ -> error "sngl arity");
    (* --- min/max --- *)
    ("max", variadic_minmax "max" ( > ));
    ("min", variadic_minmax "min" ( < ));
    ("amax1", variadic_minmax "amax1" ( > ));
    ("amin1", variadic_minmax "amin1" ( < ));
    ("dmax1", variadic_minmax "dmax1" ( > ));
    ("dmin1", variadic_minmax "dmin1" ( < ));
    ("max0", variadic_minmax "max0" ( > ));
    ("min0", variadic_minmax "min0" ( < ));
    (* --- array reductions --- *)
    ("sum", fold_numeric "sum" 0.0 ( +. ));
    ("product", fold_numeric "product" 1.0 ( *. ));
    ( "minval",
      fun args -> fold_numeric "minval" Float.infinity Float.min args );
    ( "maxval",
      fun args -> fold_numeric "maxval" Float.neg_infinity Float.max args );
    ( "size",
      function
      | [ Arr a ] -> Int (Farray.size a)
      | _ -> error "size expects an array" );
    ( "dot_product",
      function
      | [ Arr a; Arr b ] when Farray.size a = Farray.size b ->
        let n = Farray.size a in
        let s = ref 0.0 in
        for i = 0 to n - 1 do
          let x =
            match Farray.get_linear a i with
            | Farray.Cf x -> x
            | Farray.Ci k -> float_of_int k
            | _ -> error "dot_product over non-numeric array"
          and y =
            match Farray.get_linear b i with
            | Farray.Cf y -> y
            | Farray.Ci k -> float_of_int k
            | _ -> error "dot_product over non-numeric array"
          in
          s := !s +. (x *. y)
        done;
        Real !s
      | _ -> error "dot_product expects two equal-size arrays" );
    (* --- misc --- *)
    ( "merge",
      function
      | [ t; f; Bool c ] -> if c then t else f
      | _ -> error "merge expects (tsource, fsource, mask)" );
    ( "huge",
      function
      | [ Int _ ] -> Int max_int
      | [ Real _ ] -> Real Float.max_float
      | _ -> error "huge arity" );
    ( "tiny",
      function
      | [ Real _ ] -> Real Float.min_float
      | _ -> error "tiny arity" );
    ( "epsilon",
      function
      | [ Real _ ] -> Real epsilon_float
      | _ -> error "epsilon arity" );
  ]

let tbl : (string, Value.t list -> Value.t) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace h k v) table;
  h

let is_intrinsic name = Hashtbl.mem tbl (String.lowercase_ascii name)

let apply name args =
  match Hashtbl.find_opt tbl (String.lowercase_ascii name) with
  | Some f -> Some (f args)
  | None -> None

(** Names exposed, for the codegen library-function whitelist. *)
let names () = List.map fst table
