(** Runtime values of the Fortran interpreter.

    Scalars carry their Fortran type; whole arrays appear as values
    only transiently (as intrinsic arguments, e.g. [SUM(a)]). *)

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type t =
  | Int of int
  | Real of float  (** both REAL and REAL*8; doubles everywhere *)
  | Bool of bool
  | Str of string
  | Arr of Farray.t  (** whole-array value (intrinsic arguments only) *)

let of_cell = function
  | Farray.Cf x -> Real x
  | Farray.Ci n -> Int n
  | Farray.Cb b -> Bool b
  | Farray.Cs s -> Str s

let to_cell = function
  | Int n -> Farray.Ci n
  | Real x -> Farray.Cf x
  | Bool b -> Farray.Cb b
  | Str s -> Farray.Cs s
  | Arr _ -> error "array value cannot be stored in a cell"

let to_values a =
  List.init (Farray.size a) (fun i -> of_cell (Farray.get_linear a i))

let rec pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Real x -> Format.fprintf ppf "%.10g" x
  | Bool b -> Format.fprintf ppf "%s" (if b then "T" else "F")
  | Str s -> Format.fprintf ppf "%s" s
  | Arr a ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp)
      (to_values a)

and to_string v = Format.asprintf "%a" pp v

let to_float = function
  | Int n -> float_of_int n
  | Real x -> x
  | Bool _ -> error "logical value used as number"
  | Str _ -> error "character value used as number"
  | Arr _ -> error "array value used as scalar"

let to_int = function
  | Int n -> n
  | Real x -> int_of_float x
  | Bool _ | Str _ | Arr _ -> error "value not convertible to integer"

let to_bool = function
  | Bool b -> b
  | Int n -> n <> 0
  | Real _ | Str _ | Arr _ -> error "value not convertible to logical"

let is_int = function
  | Int _ -> true
  | _ -> false

(** Numeric binary operation following Fortran typing: integer if both
    integer (with integer division), real otherwise. *)
let num2 name fint freal a b =
  match (a, b) with
  | Int x, Int y -> Int (fint x y)
  | (Int _ | Real _), (Int _ | Real _) -> Real (freal (to_float a) (to_float b))
  | _ -> error "non-numeric operands to %s" name

let add a b = num2 "+" ( + ) ( +. ) a b
let sub a b = num2 "-" ( - ) ( -. ) a b
let mul a b = num2 "*" ( * ) ( *. ) a b

let div a b =
  match (a, b) with
  | Int _, Int 0 -> error "integer division by zero"
  | Int x, Int y -> Int (x / y)
  | (Int _ | Real _), (Int _ | Real _) -> Real (to_float a /. to_float b)
  | _ -> error "non-numeric operands to /"

let pow a b =
  match (a, b) with
  | Int x, Int y when y >= 0 ->
    let rec go acc n = if n = 0 then acc else go (acc * x) (n - 1) in
    Int (go 1 y)
  | (Int _ | Real _), (Int _ | Real _) -> Real (to_float a ** to_float b)
  | _ -> error "non-numeric operands to **"

let neg = function
  | Int n -> Int (-n)
  | Real x -> Real (-.x)
  | Bool _ | Str _ | Arr _ -> error "cannot negate non-numeric value"

let compare_values a b =
  match (a, b) with
  | Int x, Int y -> compare x y
  | (Int _ | Real _), (Int _ | Real _) -> compare (to_float a) (to_float b)
  | Str x, Str y -> compare x y
  | Bool x, Bool y -> compare x y
  | _ -> error "incomparable values"

let eq a b = compare_values a b = 0
let lt a b = compare_values a b < 0
let le a b = compare_values a b <= 0

(** Equality up to absolute tolerance (used by verification harness). *)
let approx_eq ?(tol = 1e-12) a b =
  match (a, b) with
  | (Int _ | Real _), (Int _ | Real _) ->
    Float.abs (to_float a -. to_float b) <= tol
  | _ -> eq a b

(** Zero value of a Fortran base type. *)
let zero_of (bt : Glaf_fortran.Ast.base_type) =
  match bt with
  | Glaf_fortran.Ast.Integer -> Int 0
  | Glaf_fortran.Ast.Real | Glaf_fortran.Ast.Real8 -> Real 0.0
  | Glaf_fortran.Ast.Logical -> Bool false
  | Glaf_fortran.Ast.Character _ -> Str ""
  | Glaf_fortran.Ast.Derived name -> error "no zero for derived type %s" name

(** Coerce [v] for storage into a variable of base type [bt]. *)
let coerce (bt : Glaf_fortran.Ast.base_type) v =
  match (bt, v) with
  | Glaf_fortran.Ast.Integer, Real x -> Int (int_of_float x)
  | Glaf_fortran.Ast.Integer, Int _ -> v
  | (Glaf_fortran.Ast.Real | Glaf_fortran.Ast.Real8), Int n ->
    Real (float_of_int n)
  | (Glaf_fortran.Ast.Real | Glaf_fortran.Ast.Real8), Real _ -> v
  | Glaf_fortran.Ast.Logical, Bool _ -> v
  | Glaf_fortran.Ast.Character _, Str _ -> v
  | _, _ -> error "type mismatch storing %s" (to_string v)
