(** Inter-zone scheduling — the Synoptic SARB execution context.

    The paper (§2.2) describes the pre-existing coarse-grained
    parallelism of Synoptic SARB: the earth is split into latitude
    zones that run in parallel (via MPI in the original), each zone's
    time proportional to its size (equatorial zones are larger), and
    GLAF adds the intra-zone parallelism.  This module reproduces that
    substrate on domains: latitude zones with cosine-weighted sizes,
    static block scheduling vs longest-processing-time (LPT)
    scheduling, makespan accounting, and a combined inter+intra model
    used by the ablation bench. *)

type zone = {
  zone_id : int;
  lat_deg : float;  (** zone-centre latitude *)
  size : int;  (** number of grid cells (columns) in the zone *)
}

(** [latitude_zones ~zones ~total_cells] splits the globe into
    [zones] latitude bands; each band's cell count is proportional to
    the cosine of its centre latitude (equal-angle gridding), summing
    to ~[total_cells]. *)
let latitude_zones ~zones ~total_cells =
  let zones = max 1 zones in
  let centre i =
    -90.0 +. ((float_of_int i +. 0.5) *. (180.0 /. float_of_int zones))
  in
  let weights = List.init zones (fun i -> cos (centre i *. Float.pi /. 180.0)) in
  let wsum = List.fold_left ( +. ) 0.0 weights in
  List.mapi
    (fun i w ->
      {
        zone_id = i + 1;
        lat_deg = centre i;
        size = max 1 (int_of_float (float_of_int total_cells *. w /. wsum));
      })
    weights

(** Static block scheduling: contiguous zone ranges per worker (what a
    naive MPI decomposition does). *)
let schedule_static zones ~workers =
  let workers = max 1 workers in
  let arr = Array.make workers [] in
  let n = List.length zones in
  List.iteri
    (fun i z ->
      let w = i * workers / max 1 n in
      arr.(w) <- z :: arr.(w))
    zones;
  Array.map List.rev arr

(** Longest-processing-time greedy scheduling: sort by size descending,
    always give the next zone to the least-loaded worker. *)
let schedule_lpt zones ~workers =
  let workers = max 1 workers in
  let arr = Array.make workers [] in
  let load = Array.make workers 0 in
  List.iter
    (fun z ->
      let w = ref 0 in
      Array.iteri (fun i l -> if l < load.(!w) then w := i) load;
      arr.(!w) <- z :: arr.(!w);
      load.(!w) <- load.(!w) + z.size)
    (List.sort (fun a b -> compare b.size a.size) zones);
  Array.map List.rev arr

(** Makespan of a schedule under a per-zone cost function. *)
let makespan schedule ~cost =
  Array.fold_left
    (fun worst worker_zones ->
      Float.max worst
        (List.fold_left (fun acc z -> acc +. cost z) 0.0 worker_zones))
    0.0 schedule

(** Total work (sum of all zone costs) — the perfect-balance bound is
    [total_work /. workers]. *)
let total_work zones ~cost = List.fold_left (fun acc z -> acc +. cost z) 0.0 zones

(** Run a per-zone function over a schedule, one domain per worker.
    Exceptions from any worker propagate. *)
let run schedule ~f =
  let workers = Array.length schedule in
  if workers <= 1 then Array.iter (List.iter f) schedule
  else begin
    let spawned =
      Array.map (fun zs -> Domain.spawn (fun () -> List.iter f zs)) schedule
    in
    let first_exn = ref None in
    Array.iter
      (fun d ->
        match Domain.join d with
        | () -> ()
        | exception e -> if !first_exn = None then first_exn := Some e)
      spawned;
    match !first_exn with
    | Some e -> raise e
    | None -> ()
  end

(** Modeled wall-clock of the combined inter+intra configuration: the
    globe's zones are spread over [nodes] MPI ranks (LPT), and within
    a rank each zone runs the kernel in time [zone_time z ~threads].
    This is the ablation the paper's introduction motivates: before
    GLAF only inter-zone parallelism existed ([threads = 1]). *)
let combined_makespan zones ~nodes ~zone_time =
  let schedule = schedule_lpt zones ~workers:nodes in
  makespan schedule ~cost:zone_time
