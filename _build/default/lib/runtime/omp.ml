(** OpenMP-flavoured parallel runtime on OCaml 5 domains.

    Provides the fork-join [parallel_for] the interpreter uses to
    execute [!$OMP PARALLEL DO], with static chunking (OpenMP's default
    schedule), a global lock for CRITICAL sections and an atomic-update
    helper.  Nested parallel regions simply spawn more domains, which
    reproduces the oversubscription behaviour the paper observes at 8
    threads on a 4-core machine. *)

let default_num_threads = ref (max 1 (Domain.recommended_domain_count () - 1))

let set_num_threads n = default_num_threads := max 1 n
let num_threads () = !default_num_threads

(* One global lock backs both CRITICAL sections and ATOMIC updates;
   fine for correctness, and its contention is part of what makes
   fine-grained parallel loops slow — as in the paper. *)
let critical_mutex = Mutex.create ()

let critical f =
  Mutex.lock critical_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock critical_mutex) f

let atomic_update = critical

(** Static chunking of the inclusive iteration space [lo..hi] (unit
    step) into [n] contiguous chunks; returns [(chunk_lo, chunk_hi)]
    per thread, empty chunks as [(1, 0)]-style inverted ranges. *)
let static_chunks ~lo ~hi n =
  let total = hi - lo + 1 in
  if total <= 0 then Array.make n (lo, lo - 1)
  else
    Array.init n (fun t ->
        let base = total / n and extra = total mod n in
        let start = lo + (t * base) + min t extra in
        let len = base + if t < extra then 1 else 0 in
        (start, start + len - 1))

(** Run [body t chunk_lo chunk_hi] on [threads] domains over [lo..hi].
    The calling domain acts as thread 0 (like an OpenMP master), the
    rest are spawned — so a 1-thread parallel loop still pays a small
    runtime cost but spawns nothing. *)
let parallel_for ?threads ~lo ~hi body =
  let n = match threads with Some n -> max 1 n | None -> num_threads () in
  let chunks = static_chunks ~lo ~hi n in
  if n = 1 then begin
    let clo, chi = chunks.(0) in
    body 0 clo chi
  end
  else begin
    let spawned =
      Array.init (n - 1) (fun i ->
          let t = i + 1 in
          let clo, chi = chunks.(t) in
          Domain.spawn (fun () -> body t clo chi))
    in
    let clo, chi = chunks.(0) in
    let master_exn =
      match body 0 clo chi with
      | () -> None
      | exception e -> Some e
    in
    let worker_exn = ref None in
    Array.iter
      (fun d ->
        match Domain.join d with
        | () -> ()
        | exception e -> if !worker_exn = None then worker_exn := Some e)
      spawned;
    match (master_exn, !worker_exn) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end

(** Fork-join helper returning per-thread results in thread order
    (deterministic reduction combining). *)
let parallel_for_collect ?threads ~lo ~hi body =
  let n = match threads with Some n -> max 1 n | None -> num_threads () in
  let results = Array.make n None in
  parallel_for ~threads:n ~lo ~hi (fun t clo chi ->
      results.(t) <- Some (body t clo chi));
  Array.to_list results |> List.filter_map Fun.id
