lib/runtime/omp.ml: Array Domain Fun List Mutex
