lib/runtime/value.ml: Farray Float Format Glaf_fortran List
