lib/runtime/farray.ml: Array Float Glaf_fortran Printf
