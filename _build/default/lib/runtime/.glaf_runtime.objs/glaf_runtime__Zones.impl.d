lib/runtime/zones.ml: Array Domain Float List
