lib/runtime/intrinsics.ml: Farray Float Hashtbl List String Value
