(** Data-layout transform: array-of-structures → structure-of-arrays.

    One of GLAF's code-optimization options (§2.1).  A record grid
    [g] with fields [f1..fk] and dims [d] is, in AoS form, generated
    as a Fortran derived TYPE plus an array of that type; the SoA
    transform replaces it by [k] dense grids [g_f1 .. g_fk], each with
    dims [d], and rewrites every reference [g(i)%fj] to [g_fj(i)].
    SoA is what lets the compiler vectorize field-wise sweeps, which
    is GLAF's stated motivation for offering the option. *)

open Glaf_ir

let soa_name grid_name field = grid_name ^ "_" ^ field

(* Rewrite refs to converted record grids. *)
let rewrite_ref converted (r : Expr.gref) : Expr.gref =
  if List.mem r.Expr.grid converted then
    match r.Expr.field with
    | Some f -> { r with Expr.grid = soa_name r.Expr.grid f; field = None }
    | None -> r (* whole-grid reference: left to the validator to flag *)
  else r

let rec rewrite_stmts converted stmts =
  let rewrite_expr e = Expr.map_refs (rewrite_ref converted) e in
  List.map
    (fun (s : Stmt.t) ->
      match s with
      | Stmt.Assign (r, e) ->
        Stmt.Assign
          ( rewrite_ref converted
              { r with Expr.indices = List.map rewrite_expr r.Expr.indices },
            rewrite_expr e )
      | Stmt.Atomic (r, e) ->
        Stmt.Atomic
          ( rewrite_ref converted
              { r with Expr.indices = List.map rewrite_expr r.Expr.indices },
            rewrite_expr e )
      | Stmt.If (branches, else_) ->
        Stmt.If
          ( List.map
              (fun (c, b) -> (rewrite_expr c, rewrite_stmts converted b))
              branches,
            rewrite_stmts converted else_ )
      | Stmt.For l ->
        Stmt.For
          {
            l with
            Stmt.lo = rewrite_expr l.Stmt.lo;
            hi = rewrite_expr l.Stmt.hi;
            step = rewrite_expr l.Stmt.step;
            body = rewrite_stmts converted l.Stmt.body;
          }
      | Stmt.While (c, body) ->
        Stmt.While (rewrite_expr c, rewrite_stmts converted body)
      | Stmt.Call (f, args) -> Stmt.Call (f, List.map rewrite_expr args)
      | Stmt.Return (Some e) -> Stmt.Return (Some (rewrite_expr e))
      | Stmt.Return None | Stmt.Exit_loop | Stmt.Cycle_loop | Stmt.Comment _ ->
        s
      | Stmt.Critical body -> Stmt.Critical (rewrite_stmts converted body))
    stmts

let split_grid (g : Grid.t) : Grid.t list =
  match g.Grid.kind with
  | Grid.Dense _ -> [ g ]
  | Grid.Record fields ->
    List.map
      (fun (fname, ftype) ->
        {
          g with
          Grid.name = soa_name g.Grid.name fname;
          kind = Grid.Dense ftype;
          caption = g.Grid.caption ^ "%" ^ fname;
        })
      fields

(* Record grids eligible for conversion: only grids GLAF itself
   declares; grids living in legacy modules keep their layout. *)
let convertible (g : Grid.t) =
  match (g.Grid.kind, g.Grid.storage) with
  | Grid.Record _, (Grid.Local | Grid.Arg _ | Grid.Module_scope) -> true
  | _ -> false

let apply_function converted (f : Func.t) =
  let local_converted =
    List.filter_map
      (fun (g : Grid.t) ->
        if convertible g then Some g.Grid.name else None)
      f.Func.grids
  in
  let converted = List.sort_uniq String.compare (local_converted @ converted) in
  let grids = List.concat_map split_grid f.Func.grids in
  let steps =
    List.map
      (fun (st : Func.step) ->
        { st with Func.body = rewrite_stmts converted st.Func.body })
      f.Func.steps
  in
  (* parameters that were record grids fan out into one per field *)
  let params =
    List.concat_map
      (fun pname ->
        match Func.find_grid f pname with
        | Some g when convertible g -> (
          match g.Grid.kind with
          | Grid.Record fields -> List.map (fun (fn, _) -> soa_name pname fn) fields
          | Grid.Dense _ -> [ pname ])
        | _ -> [ pname ])
      f.Func.params
  in
  { f with Func.grids; steps; params }

(** Convert every GLAF-declared record grid of the program to SoA. *)
let to_soa (p : Ir_module.program) : Ir_module.program =
  let converted_globals =
    List.filter_map
      (fun (g : Grid.t) -> if convertible g then Some g.Grid.name else None)
      p.Ir_module.globals
  in
  let globals = List.concat_map split_grid p.Ir_module.globals in
  let modules =
    List.map
      (fun (m : Ir_module.t) ->
        let converted_mod =
          converted_globals
          @ List.filter_map
              (fun (g : Grid.t) -> if convertible g then Some g.Grid.name else None)
              m.Ir_module.module_grids
        in
        {
          m with
          Ir_module.module_grids =
            List.concat_map split_grid m.Ir_module.module_grids;
          functions =
            List.map (apply_function converted_mod) m.Ir_module.functions;
        })
      p.Ir_module.modules
  in
  { p with Ir_module.globals; modules }
