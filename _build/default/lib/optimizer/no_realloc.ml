(** The no-reallocation transform (paper §4.2.1).

    FUN3D's interior loops allocate ~50 temporary arrays per call;
    inside a parallel region this dynamic reallocation dominates.  The
    paper's fix gives those arrays the Fortran [SAVE] attribute so the
    allocation from the first call is reused.  At the IR level that is
    a [save] flag on every function-local array grid with symbolic
    extents (the ones the code generator allocates dynamically);
    {!Glaf_codegen} then emits
    [if (.not. allocated(tmp)) allocate(tmp(...))] instead of an
    unconditional allocate/deallocate pair. *)

open Glaf_ir

let grid_is_dynamic (g : Grid.t) =
  g.Grid.storage = Grid.Local
  && (not (Grid.is_scalar g))
  && (g.Grid.allocatable || Grid.extent_deps g <> [])

let apply_function (f : Func.t) =
  {
    f with
    Func.grids =
      List.map
        (fun g -> if grid_is_dynamic g then { g with Grid.save = true } else g)
        f.Func.grids;
  }

(** Mark dynamic temporaries SAVE in the named functions (or in every
    function when [only] is omitted). *)
let apply ?only (p : Ir_module.program) : Ir_module.program =
  let selected (f : Func.t) =
    match only with
    | None -> true
    | Some names -> List.mem f.Func.name names
  in
  {
    p with
    Ir_module.modules =
      List.map
        (fun (m : Ir_module.t) ->
          {
            m with
            Ir_module.functions =
              List.map
                (fun f -> if selected f then apply_function f else f)
                m.Ir_module.functions;
          })
        p.Ir_module.modules;
  }

(** Number of dynamic temporary arrays in a function — the "50
    dynamically allocated temporary arrays" count of §4.2.1. *)
let dynamic_temp_count (f : Func.t) =
  List.length (List.filter grid_is_dynamic f.Func.grids)
