lib/optimizer/loop_opt.pp.ml: Depend Expr Glaf_analysis Glaf_ir List Loop_info Option Stmt String
