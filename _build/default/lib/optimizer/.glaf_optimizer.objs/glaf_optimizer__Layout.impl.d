lib/optimizer/layout.pp.ml: Expr Func Glaf_ir Grid Ir_module List Stmt String
