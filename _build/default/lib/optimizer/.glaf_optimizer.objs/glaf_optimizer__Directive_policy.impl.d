lib/optimizer/directive_policy.pp.ml: Depend Func Glaf_analysis Glaf_ir Ir_module List Loop_info Ppx_deriving_runtime Stmt
