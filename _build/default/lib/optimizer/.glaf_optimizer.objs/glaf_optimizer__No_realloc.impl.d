lib/optimizer/no_realloc.pp.ml: Func Glaf_ir Grid Ir_module List
