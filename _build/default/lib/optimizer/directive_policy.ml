(** Directive-pruning policies — the paper's Table 2.

    GLAF-parallel v0 keeps OpenMP directives on every parallelizable
    loop.  v1–v3 progressively remove directives from loop classes
    that the compiler serves better with SIMD/memset/unrolling:

    - v1: remove from zero-initializations and single-value loads,
    - v2: additionally from simple single loops (incl. reductions),
    - v3: additionally from simple double loops.

    The paper performs this removal manually and argues for automating
    it; here it {e is} automated, driven by {!Glaf_analysis}'s loop
    classification. *)

open Glaf_ir
open Glaf_analysis

type t =
  | V0
  | V1
  | V2
  | V3
[@@deriving show { with_path = false }, eq]

let all = [ V0; V1; V2; V3 ]

let name = function
  | V0 -> "GLAF-parallel v0"
  | V1 -> "GLAF-parallel v1"
  | V2 -> "GLAF-parallel v2"
  | V3 -> "GLAF-parallel v3"

let description = function
  | V0 -> "OMP directives in all parallelizable loops"
  | V1 -> "v0 minus directives on zero-init and single-value-load loops"
  | V2 -> "v1 minus directives on simple single loops"
  | V3 -> "v2 minus directives on simple double loops"

(** Loop classes whose directives the policy removes. *)
let removed_classes = function
  | V0 -> []
  | V1 -> [ Loop_info.Init_zero; Loop_info.Init_broadcast ]
  | V2 ->
    [ Loop_info.Init_zero; Loop_info.Init_broadcast; Loop_info.Simple_single ]
  | V3 ->
    [
      Loop_info.Init_zero;
      Loop_info.Init_broadcast;
      Loop_info.Simple_single;
      Loop_info.Simple_double;
    ]

(** Apply the policy to an annotated program: strip directives from
    loops whose classification is in the policy's removal set. *)
let apply ?(pure = []) policy (p : Ir_module.program) : Ir_module.program =
  let removed = removed_classes policy in
  let prune_function m (f : Func.t) =
    let env = Depend.env_of_program ~pure p m f in
    let prune_loop (l : Stmt.loop) =
      match l.Stmt.directive with
      | None -> l
      | Some _ ->
        let info = Depend.analyze env l in
        if List.mem info.Loop_info.classification removed then
          { l with Stmt.directive = None }
        else l
    in
    let steps =
      List.map
        (fun (st : Func.step) ->
          { st with Func.body = Stmt.map_loops prune_loop st.Func.body })
        f.Func.steps
    in
    { f with Func.steps }
  in
  {
    p with
    Ir_module.modules =
      List.map
        (fun m ->
          {
            m with
            Ir_module.functions = List.map (prune_function m) m.Ir_module.functions;
          })
        p.Ir_module.modules;
  }

(** Count remaining directives (for reports and tests). *)
let directive_count (p : Ir_module.program) =
  List.fold_left
    (fun acc (f : Func.t) ->
      Stmt.fold_stmts
        (fun acc s ->
          match s with
          | Stmt.For { Stmt.directive = Some _; _ } -> acc + 1
          | _ -> acc)
        acc (Func.all_stmts f))
    0
    (Ir_module.all_functions p)
