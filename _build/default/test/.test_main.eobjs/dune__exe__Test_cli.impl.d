test/test_cli.ml: Alcotest Filename Glaf_workloads Printf String Sys
