test/test_analysis.ml: Alcotest Autopar Depend Expr Func Glaf_analysis Glaf_ir Grid Hashtbl Ir_module List Loop_info Stmt Summary
