test/test_fortran_parser.ml: Alcotest Ast Float Fmt Format Glaf_fortran Lexer Line_scanner List Parser Pp_ast QCheck QCheck_alcotest Sloc String
