test/test_runtime.ml: Alcotest Array Farray Float Fun Glaf_fortran Glaf_runtime Intrinsics List Omp QCheck QCheck_alcotest Value Zones
