test/test_interp.ml: Alcotest Ast Buffer Farray Float Glaf_fortran Glaf_interp Glaf_runtime Interp Parser QCheck QCheck_alcotest Value
