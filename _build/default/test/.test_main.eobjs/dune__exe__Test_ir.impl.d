test/test_ir.ml: Alcotest Expr Fmt Func Glaf_ir Grid Ir_module List Pp QCheck QCheck_alcotest Stmt String Types Validate
