(* Tests for the performance model (lib/perf) and the integration
   layer (lib/integration): legacy-code model, checker, splicer. *)

open Glaf_fortran
open Glaf_ir
open Glaf_perf
open Glaf_integration

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- machine model -------------------------------------------------------- *)

let test_thread_speedup_monotone_to_cores () =
  let m = Machine.i5_2400 in
  check_bool "1T baseline" true (Machine.thread_speedup m 1 = 1.0);
  check_bool "monotone to core count" true
    (Machine.thread_speedup m 2 > 1.0
    && Machine.thread_speedup m 4 > Machine.thread_speedup m 2);
  check_bool "oversubscription collapses" true
    (Machine.thread_speedup m 8 < Machine.thread_speedup m 4);
  check_bool "never below 0.1" true (Machine.thread_speedup m 64 >= 0.1)

let test_region_overhead_grows () =
  let m = Machine.i5_2400 in
  check_bool "more threads, more overhead" true
    (Machine.region_overhead m 8 > Machine.region_overhead m 2)

(* --- compiler model -------------------------------------------------------- *)

let parse_loop src =
  match Parser.parse_string src with
  | [ Ast.Standalone sp ] -> (
    match Ast.loops sp.Ast.sub_body with
    | l :: _ -> l
    | [] -> Alcotest.fail "no loop")
  | _ -> Alcotest.fail "bad unit"

let test_classify_memset () =
  let l =
    parse_loop
      "subroutine f(n, a)\ninteger :: n\nreal*8 :: a(n)\ninteger :: i\ndo i = 1, n\na(i) = 0.0d0\nend do\nend subroutine f"
  in
  check_bool "memset" true (Compiler_model.classify l = Compiler_model.Memset)

let test_classify_vectorized () =
  let l =
    parse_loop
      "subroutine f(n, a, b)\ninteger :: n\nreal*8 :: a(n), b(n)\ninteger :: i\ndo i = 1, n\na(i) = b(i) * 2.0d0 + sqrt(b(i))\nend do\nend subroutine f"
  in
  check_bool "simd" true (Compiler_model.classify l = Compiler_model.Vectorized)

let test_classify_unrolled_short () =
  let l =
    parse_loop
      "subroutine f(a)\nreal*8 :: a(4)\ninteger :: i\ndo i = 1, 4\na(i) = i * 1.0d0\nend do\nend subroutine f"
  in
  check_bool "unrolled" true
    (Compiler_model.classify ~trip:(Some 4) l = Compiler_model.Unrolled)

let test_classify_scalar_on_control () =
  let l =
    parse_loop
      "subroutine f(n, a)\ninteger :: n\nreal*8 :: a(n)\ninteger :: i\ndo i = 1, n\nif (a(i) > 0.0d0) then\na(i) = 1.0d0\nend if\nend do\nend subroutine f"
  in
  check_bool "scalar" true (Compiler_model.classify l = Compiler_model.Scalar)

(* --- cost model -------------------------------------------------------------- *)

let cost_of ?(threads = 4) src name bindings =
  let cu = Parser.parse_string src in
  let cfg = { (Cost.default_config Machine.i5_2400) with Cost.threads; bindings } in
  Cost.time cfg cu name

let simple_loop_src ~omp =
  Printf.sprintf
    {|
subroutine work(n)
  integer :: n
  real*8 :: a(1000)
  integer :: i
%s
  do i = 1, n
    a(mod(i, 1000) + 1) = i * 2.0d0 + sqrt(i * 1.0d0)
  end do
%s
end subroutine work
|}
    (if omp then "!$omp parallel do private(i)" else "")
    (if omp then "!$omp end parallel do" else "")

let test_cost_scales_with_trip () =
  let t1 = cost_of (simple_loop_src ~omp:false) "work" [ ("n", 1000) ] in
  let t2 = cost_of (simple_loop_src ~omp:false) "work" [ ("n", 10000) ] in
  check_bool "10x trips ~ 10x cost" true (t2 /. t1 > 8.0 && t2 /. t1 < 12.0)

let test_cost_omp_overhead_dominates_small () =
  (* tiny loop: OMP version must be slower than serial *)
  let serial = cost_of (simple_loop_src ~omp:false) "work" [ ("n", 50) ] in
  let omp = cost_of (simple_loop_src ~omp:true) "work" [ ("n", 50) ] in
  check_bool "overhead dominates" true (omp > 4.0 *. serial)

let test_cost_omp_wins_large () =
  (* the OMP body runs scalar while the serial loop vectorizes, so the
     crossover needs enough work per iteration; check a large complex
     loop (non-vectorizable) instead *)
  let src ~omp =
    Printf.sprintf
      {|
subroutine work(n)
  integer :: n
  real*8 :: a(1000)
  integer :: i, j
  real*8 :: s
%s
  do i = 1, n
    s = 0.0d0
    do j = 1, 100
      if (a(j) > 0.5d0) then
        s = s + a(j) * j
      else
        s = s - a(j)
      end if
    end do
    a(mod(i, 1000) + 1) = s
  end do
%s
end subroutine work
|}
      (if omp then "!$omp parallel do private(i, j, s)" else "")
      (if omp then "!$omp end parallel do" else "")
  in
  let serial = cost_of (src ~omp:false) "work" [ ("n", 100000) ] in
  let omp = cost_of (src ~omp:true) "work" [ ("n", 100000) ] in
  check_bool "parallel wins on big complex loops" true (omp < serial /. 2.0)

let test_cost_alloc_guard_amortized () =
  let src ~guarded =
    Printf.sprintf
      {|
subroutine work(n)
  integer :: n
  real*8, allocatable%s :: tmp(:)
  integer :: i
%s
  do i = 1, n
    tmp(1) = 1.0d0
  end do
end subroutine work
|}
      (if guarded then ", save" else "")
      (if guarded then "  if (.not. allocated(tmp)) then\n  allocate(tmp(100))\n  end if"
       else "  allocate(tmp(100))")
  in
  let plain = cost_of (src ~guarded:false) "work" [ ("n", 1) ] in
  let guarded = cost_of (src ~guarded:true) "work" [ ("n", 1) ] in
  check_bool "guarded allocation much cheaper" true (guarded < plain /. 5.0)

(* --- legacy model -------------------------------------------------------------- *)

let legacy_src =
  {|
module physics
  implicit none
  integer, parameter :: nlev = 40
  real*8 :: temp(40)
  type :: state_t
    real*8 :: pressure
    real*8 :: winds(3)
  end type state_t
  type(state_t) :: st
end module physics

subroutine solver(niter, tol)
  implicit none
  integer :: niter
  real*8 :: tol
  common /slvblk/ relax, verbose
  real*8 :: relax
  integer :: verbose
  relax = tol
  verbose = niter
end subroutine solver
|}

let test_legacy_model_scan () =
  let m = Legacy_model.of_source legacy_src in
  check_bool "module found" true (Legacy_model.find_module m "physics" <> None);
  (match Legacy_model.find_module_var m ~module_name:"physics" ~var:"temp" with
  | Some v ->
    check_int "temp rank" 1 v.Legacy_model.v_rank;
    check_bool "temp type" true (v.Legacy_model.v_base = Ast.Real8)
  | None -> Alcotest.fail "temp not found");
  check_bool "type var resolved" true
    (Legacy_model.find_type_var m ~module_name:"physics" ~type_var:"st"
    = Some "state_t");
  (match
     Legacy_model.find_type_field m ~module_name:"physics" ~type_name:"state_t"
       ~field:"winds"
   with
  | Some f -> check_int "winds rank" 1 f.Legacy_model.v_rank
  | None -> Alcotest.fail "winds not found");
  (match Legacy_model.find_common m "slvblk" with
  | Some members -> check_int "common members" 2 (List.length members)
  | None -> Alcotest.fail "common not found");
  match Legacy_model.find_subprogram m "solver" with
  | Some s -> check_int "solver arity" 2 s.Legacy_model.s_arity
  | None -> Alcotest.fail "solver not found"

(* --- checker -------------------------------------------------------------------- *)

let program_with_grid g call =
  let f =
    Func.make "kernel" ~grids:[ g ]
      ~steps:
        [
          Func.step "s"
            (match call with
            | Some (name, args) -> [ Stmt.Call (name, args) ]
            | None -> []);
        ]
  in
  Ir_module.program "p" ~modules:[ Ir_module.make "m" ~functions:[ f ] ]

let model = Legacy_model.of_source legacy_src

let test_checker_accepts_valid () =
  let g =
    Grid.array ~storage:(Grid.External_module "physics") Types.T_real8
      ~dims:[ Grid.dim (Grid.Fixed 40) ] "temp"
  in
  check_int "ok" 0 (List.length (Checker.check model (program_with_grid g None)))

let test_checker_flags_missing_var () =
  let g =
    Grid.scalar ~storage:(Grid.External_module "physics") Types.T_real8 "ghost"
  in
  check_bool "flagged" true
    (Checker.check model (program_with_grid g None) <> [])

let test_checker_flags_rank_mismatch () =
  let g =
    Grid.array ~storage:(Grid.External_module "physics") Types.T_real8
      ~dims:[ Grid.dim (Grid.Fixed 40); Grid.dim (Grid.Fixed 2) ] "temp"
  in
  check_bool "flagged" true (Checker.check model (program_with_grid g None) <> [])

let test_checker_flags_type_mismatch () =
  let g =
    Grid.array ~storage:(Grid.External_module "physics") Types.T_logical
      ~dims:[ Grid.dim (Grid.Fixed 40) ] "temp"
  in
  check_bool "flagged" true (Checker.check model (program_with_grid g None) <> [])

let test_checker_type_element () =
  let ok =
    Grid.scalar ~storage:(Grid.Type_element ("physics", "st")) Types.T_real8
      "pressure"
  in
  check_int "type element ok" 0
    (List.length (Checker.check model (program_with_grid ok None)));
  let bad =
    Grid.scalar ~storage:(Grid.Type_element ("physics", "st")) Types.T_real8
      "no_such_field"
  in
  check_bool "bad element flagged" true
    (Checker.check model (program_with_grid bad None) <> [])

let test_checker_common_member () =
  let ok = Grid.scalar ~storage:(Grid.Common "slvblk") Types.T_real8 "relax" in
  check_int "common ok" 0
    (List.length (Checker.check model (program_with_grid ok None)));
  let bad = Grid.scalar ~storage:(Grid.Common "slvblk") Types.T_real8 "missing" in
  check_bool "bad member flagged" true
    (Checker.check model (program_with_grid bad None) <> []);
  (* a brand-new COMMON block introduced by GLAF is fine *)
  let fresh = Grid.scalar ~storage:(Grid.Common "newblk") Types.T_real8 "x" in
  check_int "fresh block ok" 0
    (List.length (Checker.check model (program_with_grid fresh None)))

let test_checker_legacy_call_arity () =
  let g = Grid.scalar Types.T_real8 "x" in
  let ok =
    program_with_grid g (Some ("solver", [ Expr.int 3; Expr.var "x" ]))
  in
  check_int "call ok" 0 (List.length (Checker.check model ok));
  let bad = program_with_grid g (Some ("solver", [ Expr.int 3 ])) in
  check_bool "arity flagged" true (Checker.check model bad <> [])

(* --- splice ------------------------------------------------------------------------ *)

let test_splice_substitute () =
  let legacy = Parser.parse_string legacy_src in
  let generated =
    Parser.parse_string
      {|
module gen_mod
  implicit none
contains
  subroutine solver(niter, tol)
    integer :: niter
    real*8 :: tol
  end subroutine solver
  subroutine helper()
  end subroutine helper
end module gen_mod
|}
  in
  let cu, substituted = Splice.substitute ~legacy ~generated in
  Alcotest.(check (list string)) "substituted" [ "solver" ] substituted;
  (* the standalone legacy solver is gone; the generated module leads *)
  check_bool "legacy solver removed" true
    (not
       (List.exists
          (function Ast.Standalone sp -> sp.Ast.sub_name = "solver" | _ -> false)
          cu));
  check_bool "generated module present" true (Ast.find_module cu "gen_mod" <> None);
  check_bool "helper available" true (Ast.find_subprogram cu "helper" <> None);
  check_bool "legacy module intact" true (Ast.find_module cu "physics" <> None)

let suites =
  [
    ( "perf.machine",
      [
        Alcotest.test_case "thread speedup" `Quick test_thread_speedup_monotone_to_cores;
        Alcotest.test_case "region overhead" `Quick test_region_overhead_grows;
      ] );
    ( "perf.compiler",
      [
        Alcotest.test_case "memset" `Quick test_classify_memset;
        Alcotest.test_case "vectorized" `Quick test_classify_vectorized;
        Alcotest.test_case "unrolled" `Quick test_classify_unrolled_short;
        Alcotest.test_case "scalar on control" `Quick test_classify_scalar_on_control;
      ] );
    ( "perf.cost",
      [
        Alcotest.test_case "scales with trip" `Quick test_cost_scales_with_trip;
        Alcotest.test_case "overhead on small loops" `Quick test_cost_omp_overhead_dominates_small;
        Alcotest.test_case "parallel wins large" `Quick test_cost_omp_wins_large;
        Alcotest.test_case "alloc guard amortized" `Quick test_cost_alloc_guard_amortized;
      ] );
    ( "integration.model",
      [ Alcotest.test_case "legacy scan" `Quick test_legacy_model_scan ] );
    ( "integration.checker",
      [
        Alcotest.test_case "accepts valid" `Quick test_checker_accepts_valid;
        Alcotest.test_case "missing var" `Quick test_checker_flags_missing_var;
        Alcotest.test_case "rank mismatch" `Quick test_checker_flags_rank_mismatch;
        Alcotest.test_case "type mismatch" `Quick test_checker_flags_type_mismatch;
        Alcotest.test_case "type element" `Quick test_checker_type_element;
        Alcotest.test_case "common member" `Quick test_checker_common_member;
        Alcotest.test_case "legacy call arity" `Quick test_checker_legacy_call_arity;
      ] );
    ( "integration.splice",
      [ Alcotest.test_case "substitute" `Quick test_splice_substitute ] );
  ]
