(* Integration tests for the two case-study workloads: the full
   pipelines of the paper's §4 (build via GLAF, analyze, generate,
   integrate into legacy code, execute, verify side by side). *)

open Glaf_ir
open Glaf_fortran
open Glaf_analysis
open Glaf_optimizer
open Glaf_workloads

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* --- SARB --------------------------------------------------------------- *)

let test_sarb_legacy_parses_and_runs () =
  let r = Sarb.run ~threads:1 Sarb.Original_serial in
  check_bool "finite checksum" true (Float.is_finite r.Sarb.checksum);
  check_bool "nonzero checksum" true (Float.abs r.Sarb.checksum > 1.0)

let test_sarb_glaf_program_valid () =
  let p = Sarb_glaf.program () in
  Alcotest.(check (list string))
    "no validation errors" []
    (List.map Validate.error_to_string (Validate.program p))

let test_sarb_integration_compatible () =
  check_int "no integration issues" 0 (List.length (Sarb.integration_issues ()))

let test_sarb_autopar_findings () =
  let _, report = Sarb.annotated_program () in
  (* the two large exchange loops are found parallel, collapsible and
     complex — exactly the loops that keep directives at v3 *)
  let complex_parallel =
    List.filter
      (fun e ->
        e.Autopar.re_info.Loop_info.parallel
        && e.Autopar.re_info.Loop_info.classification = Loop_info.Complex
        && e.Autopar.re_info.Loop_info.collapsible)
      report
  in
  check_int "two complex collapsible loops" 2 (List.length complex_parallel);
  check_bool "both in longwave" true
    (List.for_all
       (fun e -> e.Autopar.re_function = "longwave_entropy_model")
       complex_parallel);
  (* the transmission recurrences stay serial *)
  let serial =
    List.filter (fun e -> not e.Autopar.re_info.Loop_info.parallel) report
  in
  check_bool "recurrences detected" true (List.length serial >= 3)

let test_sarb_generated_code_features () =
  let src = Pp_ast.to_string (Sarb.generated_cu (Sarb.Glaf_parallel Directive_policy.V3)) in
  check_bool "collapse(2) on exchange" true (contains src "collapse(2)");
  check_bool "use fuinput" true (contains src "use fuinput");
  check_bool "common block" true (contains src "common /entcon/");
  check_bool "type element" true (contains src "fo%fuir");
  check_bool "module-scope shared arrays" true (contains src "real*8 :: flux2(2, 60)")

let test_sarb_v3_directive_count () =
  let p, _ = Sarb.annotated_program () in
  let v3 = Directive_policy.apply ~pure:Sarb.pure Directive_policy.V3 p in
  (* exactly the two large exchange loops keep directives *)
  check_int "v3 keeps two directives" 2 (Directive_policy.directive_count v3)

let test_sarb_verify_all_variants () =
  List.iter
    (fun (v, diff) ->
      check_bool
        (Printf.sprintf "%s equivalent (diff %.3e)" (Sarb.variant_name v) diff)
        true (diff < 1e-9))
    (Sarb.verify ~threads:2 ())

let test_sarb_figure5_shape () =
  let fig5 = Sarb.figure5 () in
  let get n = List.assoc n fig5 in
  check_bool "original is 1.0" true (Float.abs (get "original serial" -. 1.0) < 1e-9);
  check_bool "GLAF serial slightly slower" true
    (get "GLAF serial" < 1.0 && get "GLAF serial" > 0.7);
  check_bool "v0 well below serial" true (get "GLAF-parallel v0" < 0.7);
  check_bool "v0 < v1" true (get "GLAF-parallel v0" < get "GLAF-parallel v1");
  check_bool "v1 below serial" true (get "GLAF-parallel v1" < 1.0);
  check_bool "v2 above serial" true (get "GLAF-parallel v2" > 1.0);
  check_bool "v3 best" true
    (get "GLAF-parallel v3" >= get "GLAF-parallel v2"
    && get "GLAF-parallel v3" > 1.2)

let test_sarb_figure6_shape () =
  let fig6 = Sarb.figure6 () in
  let get t = List.assoc t fig6 in
  check_bool "1T slightly below serial" true (get 1 < 1.05);
  check_bool "2T gains" true (get 2 > get 1);
  check_bool "4T peak" true (get 4 > get 2);
  check_bool "8T collapses (oversubscription)" true (get 8 < get 4 && get 8 < 1.0)

let test_sarb_table1 () =
  List.iter
    (fun (name, paper, ours) ->
      check_bool (name ^ " has sloc") true (ours > 0 && paper > 0))
    (Sarb.table1 ())

(* --- FUN3D --------------------------------------------------------------- *)

let test_fun3d_glaf_program_valid () =
  let p = Fun3d_glaf.program ~opts:Fun3d_glaf.best_options in
  Alcotest.(check (list string))
    "no validation errors" []
    (List.map Validate.error_to_string (Validate.program p))

let test_fun3d_integration_compatible () =
  check_int "no integration issues" 0 (List.length (Fun3d.integration_issues ()))

let test_fun3d_verify_key_variants () =
  (* full matrix is exercised by the bench; here the key ones, small *)
  let ncell = 120 in
  let reference = Fun3d.run ~threads:1 ~ncell Fun3d.Original_serial in
  List.iter
    (fun v ->
      let r = Fun3d.run ~threads:2 ~ncell v in
      check_bool
        (Printf.sprintf "%s rms within 1e-7" (Fun3d.variant_name v))
        true
        (Float.abs (r.Fun3d.rms -. reference.Fun3d.rms) < 1e-7))
    [
      Fun3d.Manual_parallel;
      Fun3d.Glaf Fun3d_glaf.serial_options;
      Fun3d.Glaf Fun3d_glaf.best_options;
      Fun3d.Glaf { Fun3d_glaf.serial_options with Fun3d_glaf.par_cell = true };
    ]

let test_fun3d_realloc_counting () =
  let ncell = 120 in
  let with_realloc =
    Fun3d.run ~threads:1 ~ncell (Fun3d.Glaf Fun3d_glaf.serial_options)
  in
  let without =
    Fun3d.run ~threads:1 ~ncell
      (Fun3d.Glaf { Fun3d_glaf.serial_options with Fun3d_glaf.no_realloc = true })
  in
  check_bool "reallocation dominates without SAVE" true
    (with_realloc.Fun3d.allocations > 50 * without.Fun3d.allocations);
  check_bool "SAVE leaves only first-call allocations" true
    (without.Fun3d.allocations < 60)

let test_fun3d_temp_counts () =
  let counts = Fun3d_glaf.dynamic_temp_counts () in
  check_int "edge_loop temps" 10 (List.assoc "edge_loop" counts);
  check_int "cell_loop temps" 2 (List.assoc "cell_loop" counts)

let test_fun3d_figure7_shape () =
  let fig7 = Fun3d.figure7 ~ncell:200_000 () in
  let get n = List.assoc n fig7 in
  let best = get "GLAF EdgeJP+NoRealloc" in
  let manual = get "manual parallel" in
  check_bool "manual fastest" true
    (List.for_all (fun (_, s) -> s <= manual) fig7);
  check_bool "best GLAF above serial" true (best > 1.0);
  check_bool "manual ~2-3x best GLAF" true
    (manual /. best > 1.5 && manual /. best < 4.0);
  check_bool "EdgeJP without no-realloc below serial" true
    (get "GLAF EdgeJP" < 1.0);
  check_bool "fine-grained options far below serial" true
    (get "GLAF Cell" < 0.2 && get "GLAF Edge" < 0.5);
  check_bool "no-realloc improves fine-grained" true
    (get "GLAF Edge+NoRealloc" > get "GLAF Edge"
    && get "GLAF Cell+NoRealloc" > get "GLAF Cell")

let test_fun3d_generated_code () =
  let src = Pp_ast.to_string (Fun3d.generated_cu Fun3d_glaf.best_options) in
  check_bool "allocatable+save temps" true (contains src ", allocatable, save :: fl(:)");
  check_bool "guarded allocation" true (contains src "if (.not. allocated(fl))");
  check_bool "atomic scatter" true (contains src "!$omp atomic");
  check_bool "parallel cells loop" true (contains src "!$omp parallel do");
  check_bool "use mesh module" true (contains src "use mesh_mod")

let suites =
  [
    ( "workloads.sarb",
      [
        Alcotest.test_case "legacy runs" `Quick test_sarb_legacy_parses_and_runs;
        Alcotest.test_case "GLAF program valid" `Quick test_sarb_glaf_program_valid;
        Alcotest.test_case "integration compatible" `Quick test_sarb_integration_compatible;
        Alcotest.test_case "autopar findings" `Quick test_sarb_autopar_findings;
        Alcotest.test_case "generated features" `Quick test_sarb_generated_code_features;
        Alcotest.test_case "v3 directive count" `Quick test_sarb_v3_directive_count;
        Alcotest.test_case "verify all variants" `Slow test_sarb_verify_all_variants;
        Alcotest.test_case "figure 5 shape" `Quick test_sarb_figure5_shape;
        Alcotest.test_case "figure 6 shape" `Quick test_sarb_figure6_shape;
        Alcotest.test_case "table 1" `Quick test_sarb_table1;
      ] );
    ( "workloads.fun3d",
      [
        Alcotest.test_case "GLAF program valid" `Quick test_fun3d_glaf_program_valid;
        Alcotest.test_case "integration compatible" `Quick test_fun3d_integration_compatible;
        Alcotest.test_case "verify key variants" `Slow test_fun3d_verify_key_variants;
        Alcotest.test_case "realloc counting" `Quick test_fun3d_realloc_counting;
        Alcotest.test_case "temp counts" `Quick test_fun3d_temp_counts;
        Alcotest.test_case "figure 7 shape" `Quick test_fun3d_figure7_shape;
        Alcotest.test_case "generated code" `Quick test_fun3d_generated_code;
      ] );
  ]
