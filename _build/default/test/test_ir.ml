(* Unit and property tests for the grid IR (lib/ir). *)

open Glaf_ir

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_slist = Alcotest.(check (list string))

(* --- Expr ------------------------------------------------------------ *)

let test_expr_builders () =
  let e = Expr.(var "a" + idx "b" [ var "i" ] * real 2.0) in
  check_int "size" 6 (Expr.size e);
  check_slist "grids read" [ "a"; "b"; "i" ] (Expr.grids_read e)

let test_expr_mentions () =
  let e = Expr.(idx "a" [ var "i" + int 1 ]) in
  check_bool "mentions a" true (Expr.mentions "a" e);
  check_bool "mentions i" true (Expr.mentions "i" e);
  check_bool "mentions j" false (Expr.mentions "j" e)

let test_expr_subst () =
  let e = Expr.(var "x" + idx "a" [ var "x" ]) in
  let e' = Expr.subst_var "x" (Expr.int 7) e in
  check_bool "x gone" false (Expr.mentions "x" e');
  match e' with
  | Expr.Binop (Expr.Add, Expr.Int_lit 7, Expr.Ref r) ->
    Alcotest.(check (list (of_pp Fmt.nop)))
      "index substituted" [ Expr.Int_lit 7 ] r.Expr.indices
  | _ -> Alcotest.fail "unexpected shape"

let affinity = Alcotest.testable (fun ppf (a : Expr.affinity) ->
    match a with
    | Expr.Constant -> Fmt.string ppf "Constant"
    | Expr.Identity -> Fmt.string ppf "Identity"
    | Expr.Affine (a, b) -> Fmt.pf ppf "Affine(%d,%d)" a b
    | Expr.Nonlinear -> Fmt.string ppf "Nonlinear")
    (fun a b -> a = b)

let test_affinity () =
  let open Expr in
  Alcotest.check affinity "const" Constant (affinity_of ~var:"i" (int 3));
  Alcotest.check affinity "other var" Constant (affinity_of ~var:"i" (var "j"));
  Alcotest.check affinity "identity" Identity (affinity_of ~var:"i" (var "i"));
  Alcotest.check affinity "affine" (Affine (2, 3))
    (affinity_of ~var:"i" ((int 2 * var "i") + int 3));
  Alcotest.check affinity "affine neg" (Affine (-1, 5))
    (affinity_of ~var:"i" (int 5 - var "i"));
  Alcotest.check affinity "nonlinear" Nonlinear
    (affinity_of ~var:"i" (var "i" * var "i"));
  Alcotest.check affinity "indexed" Nonlinear
    (affinity_of ~var:"i" (idx "a" [ var "i" ]))

(* --- Stmt ------------------------------------------------------------ *)

let sample_loop =
  Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
    [
      Stmt.assign_idx "a" [ Expr.var "i" ]
        Expr.(idx "b" [ var "i" ] + var "c");
    ]

let test_stmt_reads_writes () =
  let stmts = [ sample_loop ] in
  check_slist "writes" [ "a" ] (Stmt.grids_written stmts);
  check_slist "reads" [ "b"; "c"; "i"; "n" ] (Stmt.grids_read stmts)

let test_stmt_loop_depth () =
  let nested =
    Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.int 10)
      [
        Stmt.for_ "j" ~lo:(Expr.int 1) ~hi:(Expr.int 10)
          [ Stmt.assign_var "s" (Expr.int 0) ];
      ]
  in
  check_int "depth 2" 2 (Stmt.loop_depth [ nested ]);
  check_int "depth 1" 1 (Stmt.loop_depth [ sample_loop ]);
  check_int "depth 0" 0 (Stmt.loop_depth [ Stmt.assign_var "x" (Expr.int 1) ])

let test_stmt_calls () =
  let stmts =
    [
      Stmt.Call ("edge_loop", [ Expr.var "k" ]);
      Stmt.assign_var "x" (Expr.call "abs" [ Expr.var "y" ]);
    ]
  in
  check_slist "calls" [ "abs"; "edge_loop" ] (Stmt.calls stmts)

let test_stmt_count () =
  check_int "count nested" 2 (Stmt.count [ sample_loop ])

(* --- Grid ------------------------------------------------------------ *)

let test_grid_basics () =
  let g =
    Grid.array Types.T_real8
      ~dims:[ Grid.dim (Grid.Fixed 4); Grid.dim (Grid.Sym "n") ]
      "a"
  in
  check_bool "not scalar" false (Grid.is_scalar g);
  check_int "rank" 2 (Grid.num_dims g);
  check_bool "fixed size unknown" true (Grid.fixed_size g = None);
  check_slist "extent deps" [ "n" ] (Grid.extent_deps g);
  let g2 =
    Grid.array Types.T_real ~dims:[ Grid.dim (Grid.Fixed 3); Grid.dim (Grid.Fixed 5) ] "b"
  in
  check_bool "fixed size" true (Grid.fixed_size g2 = Some 15)

let test_grid_storage () =
  let ext = Grid.scalar ~storage:(Grid.External_module "fuinput") Types.T_real8 "fi_val" in
  check_bool "external declared" true (Grid.externally_declared ext);
  let common = Grid.scalar ~storage:(Grid.Common "cblk") Types.T_int "nv" in
  check_bool "common locally declared" false (Grid.externally_declared common);
  let arg = Grid.scalar ~storage:(Grid.Arg 0) Types.T_int "n" in
  check_bool "is argument" true (Grid.is_argument arg);
  check_bool "arg position" true (Grid.arg_position arg = Some 0)

(* --- Validate -------------------------------------------------------- *)

let valid_function () =
  let grids =
    [
      Grid.scalar ~storage:(Grid.Arg 0) Types.T_int "n";
      Grid.array ~storage:(Grid.Arg 1) Types.T_real8
        ~dims:[ Grid.dim (Grid.Sym "n") ] "a";
      Grid.scalar Types.T_real8 "s";
    ]
  in
  Func.make "sum_a" ~params:[ "n"; "a" ] ~grids
    ~steps:
      [
        Func.step "init" [ Stmt.assign_var "s" (Expr.real 0.0) ];
        Func.step "accumulate"
          [
            Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
              [ Stmt.assign_var "s" Expr.(var "s" + idx "a" [ var "i" ]) ];
          ];
      ]

let program_of_functions fns =
  Ir_module.program "test_prog"
    ~modules:[ Ir_module.make "module1" ~functions:fns ]

let test_validate_ok () =
  let p = program_of_functions [ valid_function () ] in
  Alcotest.(check int) "no errors" 0 (List.length (Validate.program p))

let test_validate_unknown_grid () =
  let f =
    Func.make "bad" ~grids:[]
      ~steps:[ Func.step "s" [ Stmt.assign_var "x" (Expr.int 1) ] ]
  in
  let errs = Validate.program (program_of_functions [ f ]) in
  check_bool "caught unknown grid" true
    (List.exists (fun e -> e.Validate.what = {|reference to unknown grid "x"|}) errs)

(* substring check without extra deps *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_validate_rank_mismatch () =
  let f =
    Func.make "bad_rank"
      ~grids:[ Grid.array Types.T_real8 ~dims:[ Grid.dim (Grid.Fixed 4) ] "a" ]
      ~steps:
        [
          Func.step "s"
            [ Stmt.assign_idx "a" [ Expr.int 1; Expr.int 2 ] (Expr.int 0) ];
        ]
  in
  let errs = Validate.program (program_of_functions [ f ]) in
  check_bool "rank error" true
    (List.exists (fun e -> contains e.Validate.what "rank") errs)

let test_validate_external_init () =
  let g =
    Grid.make ~storage:(Grid.External_module "legacy") ~init:Grid.Zero_init "x"
  in
  let f = Func.make "f" ~grids:[ g ] ~steps:[] in
  let errs = Validate.program (program_of_functions [ f ]) in
  check_bool "external init rejected" true (List.length errs > 0)

let test_validate_duplicate_grid () =
  let f =
    Func.make "dup"
      ~grids:[ Grid.scalar Types.T_int "x"; Grid.scalar Types.T_real "x" ]
      ~steps:[]
  in
  let errs = Validate.program (program_of_functions [ f ]) in
  check_bool "dup caught" true (List.length errs > 0)

let test_validate_shadowed_index () =
  let f =
    Func.make "shadow" ~grids:[ Grid.scalar Types.T_real8 "s" ]
      ~steps:
        [
          Func.step "s"
            [
              Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.int 10)
                [
                  Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.int 5)
                    [ Stmt.assign_var "s" (Expr.var "i") ];
                ];
            ];
        ]
  in
  let errs = Validate.program (program_of_functions [ f ]) in
  check_bool "shadow caught" true (List.length errs > 0)

let test_validate_call_arity () =
  let callee = valid_function () in
  let caller =
    Func.make "caller"
      ~grids:[ Grid.scalar Types.T_int "n" ]
      ~steps:[ Func.step "s" [ Stmt.Call ("sum_a", [ Expr.var "n" ]) ] ]
  in
  let errs = Validate.program (program_of_functions [ callee; caller ]) in
  check_bool "arity caught" true (List.length errs > 0)

(* --- Func / Ir_module ------------------------------------------------- *)

let test_func_integration_queries () =
  let grids =
    [
      Grid.scalar ~storage:(Grid.External_module "fuinput") Types.T_real8 "pp";
      Grid.scalar ~storage:(Grid.Type_element ("fuoutput", "fo")) Types.T_real8 "fds";
      Grid.scalar ~storage:(Grid.Common "radblk") Types.T_real8 "tau";
      Grid.scalar ~storage:(Grid.Common "radblk") Types.T_real8 "omega";
      Grid.scalar Types.T_int "k";
    ]
  in
  let f = Func.make "kernel" ~grids ~steps:[] in
  check_slist "used modules" [ "fuinput"; "fuoutput" ] (Func.used_modules f);
  (match Func.common_blocks f with
  | [ ("radblk", members) ] ->
    check_slist "members" [ "tau"; "omega" ]
      (List.map (fun g -> g.Grid.name) members)
  | _ -> Alcotest.fail "expected one COMMON block");
  check_slist "locals" [ "tau"; "omega"; "k" ]
    (List.map (fun g -> g.Grid.name) (Func.local_grids f))

let test_resolve_grid () =
  let global = Grid.scalar Types.T_int "g" in
  let mgrid = Grid.scalar ~storage:Grid.Module_scope Types.T_int "m" in
  let local = Grid.scalar Types.T_int "l" in
  let f = Func.make "f" ~grids:[ local ] ~steps:[] in
  let m = Ir_module.make "mod1" ~module_grids:[ mgrid ] ~functions:[ f ] in
  let p = Ir_module.program "p" ~globals:[ global ] ~modules:[ m ] in
  check_bool "local" true (Ir_module.resolve_grid p m f "l" = Some local);
  check_bool "module" true (Ir_module.resolve_grid p m f "m" = Some mgrid);
  check_bool "global" true (Ir_module.resolve_grid p m f "g" = Some global);
  check_bool "missing" true (Ir_module.resolve_grid p m f "zz" = None)

(* --- properties ------------------------------------------------------- *)

let gen_expr =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map Expr.int (int_range (-100) 100);
                map Expr.real (float_range (-10.) 10.);
                map Expr.var (oneofl [ "a"; "b"; "i"; "j" ]);
              ]
          else
            oneof
              [
                map2
                  (fun a b -> Expr.(a + b))
                  (self (n / 2)) (self (n / 2));
                map2
                  (fun a b -> Expr.(a * b))
                  (self (n / 2)) (self (n / 2));
                map Expr.neg (self (n - 1));
                map
                  (fun e -> Expr.idx "arr" [ e ])
                  (self (n - 1));
              ])
        (min n 12))

let arb_expr = QCheck.make ~print:Pp.expr_to_string gen_expr

let prop_fold_size_positive =
  QCheck.Test.make ~name:"expr size positive" ~count:200 arb_expr (fun e ->
      Expr.size e > 0)

let prop_subst_removes_var =
  QCheck.Test.make ~name:"subst removes variable" ~count:200 arb_expr (fun e ->
      let e' = Expr.subst_var "a" (Expr.int 0) e in
      not (Expr.mentions "a" e'))

let prop_grids_read_sorted =
  QCheck.Test.make ~name:"grids_read sorted unique" ~count:200 arb_expr
    (fun e ->
      let gs = Expr.grids_read e in
      List.sort_uniq String.compare gs = gs)

let suites =
  [
    ( "ir.expr",
      [
        Alcotest.test_case "builders" `Quick test_expr_builders;
        Alcotest.test_case "mentions" `Quick test_expr_mentions;
        Alcotest.test_case "subst" `Quick test_expr_subst;
        Alcotest.test_case "affinity" `Quick test_affinity;
        QCheck_alcotest.to_alcotest prop_fold_size_positive;
        QCheck_alcotest.to_alcotest prop_subst_removes_var;
        QCheck_alcotest.to_alcotest prop_grids_read_sorted;
      ] );
    ( "ir.stmt",
      [
        Alcotest.test_case "reads/writes" `Quick test_stmt_reads_writes;
        Alcotest.test_case "loop depth" `Quick test_stmt_loop_depth;
        Alcotest.test_case "calls" `Quick test_stmt_calls;
        Alcotest.test_case "count" `Quick test_stmt_count;
      ] );
    ( "ir.grid",
      [
        Alcotest.test_case "basics" `Quick test_grid_basics;
        Alcotest.test_case "storage" `Quick test_grid_storage;
      ] );
    ( "ir.validate",
      [
        Alcotest.test_case "valid program" `Quick test_validate_ok;
        Alcotest.test_case "unknown grid" `Quick test_validate_unknown_grid;
        Alcotest.test_case "rank mismatch" `Quick test_validate_rank_mismatch;
        Alcotest.test_case "external init" `Quick test_validate_external_init;
        Alcotest.test_case "duplicate grid" `Quick test_validate_duplicate_grid;
        Alcotest.test_case "shadowed index" `Quick test_validate_shadowed_index;
        Alcotest.test_case "call arity" `Quick test_validate_call_arity;
      ] );
    ( "ir.scopes",
      [
        Alcotest.test_case "integration queries" `Quick test_func_integration_queries;
        Alcotest.test_case "grid resolution" `Quick test_resolve_grid;
      ] );
  ]
