(* Tests for the auto-parallelization analysis (lib/analysis). *)

open Glaf_ir
open Glaf_analysis

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_slist = Alcotest.(check (list string))

(* Build a one-function program and return (env, the first loop). *)
let loop_env ?(extra_funcs = []) ~grids body =
  let f = Func.make "kernel" ~grids ~steps:[ Func.step "s" body ] in
  let m = Ir_module.make "module1" ~functions:(f :: extra_funcs) in
  let p = Ir_module.program "p" ~modules:[ m ] in
  let env = Depend.env_of_program p m f in
  let loop =
    match body with
    | [ Stmt.For l ] -> l
    | _ -> Alcotest.fail "test body must be a single loop"
  in
  (env, loop)

let d8 n = Grid.array Glaf_ir.Types.T_real8 ~dims:[ Grid.dim (Grid.Sym "n") ] n
let scal n = Grid.scalar Glaf_ir.Types.T_real8 n
let iscal n = Grid.scalar Glaf_ir.Types.T_int n

let analyze ?extra_funcs ~grids body =
  let env, loop = loop_env ?extra_funcs ~grids body in
  Depend.analyze env loop

(* --- parallel loops ---------------------------------------------------- *)

let test_elementwise_parallel () =
  let info =
    analyze
      ~grids:[ iscal "n"; d8 "a"; d8 "b" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.assign_idx "a" [ Expr.var "i" ]
              Expr.(idx "b" [ var "i" ] * real 2.0);
          ];
      ]
  in
  check_bool "parallel" true info.Loop_info.parallel;
  check_bool "no obstacles" true (info.Loop_info.obstacles = [])

let test_stencil_not_parallel () =
  let info =
    analyze
      ~grids:[ iscal "n"; d8 "a" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 2) ~hi:(Expr.var "n")
          [
            Stmt.assign_idx "a" [ Expr.var "i" ]
              Expr.(idx "a" [ var "i" - int 1 ] + real 1.0);
          ];
      ]
  in
  check_bool "not parallel" false info.Loop_info.parallel;
  check_bool "loop carried on a" true
    (List.mem (Loop_info.Loop_carried "a") info.Loop_info.obstacles)

let test_offset_write_parallel () =
  (* a(i+1) = b(i): write and read touch different grids: parallel *)
  let info =
    analyze
      ~grids:[ iscal "n"; d8 "a"; d8 "b" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.assign_idx "a" [ Expr.(var "i" + int 1) ]
              Expr.(idx "b" [ var "i" ]);
          ];
      ]
  in
  check_bool "parallel" true info.Loop_info.parallel

let test_same_array_shifted_rw () =
  (* a(i) = a(i+1): read of a future iteration's cell: anti-dependence *)
  let info =
    analyze
      ~grids:[ iscal "n"; d8 "a" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.assign_idx "a" [ Expr.var "i" ]
              Expr.(idx "a" [ var "i" + int 1 ]);
          ];
      ]
  in
  check_bool "not parallel" false info.Loop_info.parallel

let test_reduction_detected () =
  let info =
    analyze
      ~grids:[ iscal "n"; d8 "a"; scal "s" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.assign_var "s" Expr.(var "s" + idx "a" [ var "i" ]);
          ];
      ]
  in
  check_bool "parallel" true info.Loop_info.parallel;
  (match info.Loop_info.reductions with
  | [ { Loop_info.red_var = "s"; red_op = Stmt.Rsum } ] -> ()
  | _ -> Alcotest.fail "expected sum reduction on s")

let test_multi_reduction () =
  (* two reduction outputs in one loop — the FUN3D case in §4.2.1 *)
  let info =
    analyze
      ~grids:[ iscal "n"; d8 "a"; scal "s1"; scal "s2" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.assign_var "s1" Expr.(var "s1" + idx "a" [ var "i" ]);
            Stmt.assign_var "s2"
              Expr.(var "s2" + (idx "a" [ var "i" ] * idx "a" [ var "i" ]));
          ];
      ]
  in
  check_bool "parallel" true info.Loop_info.parallel;
  check_int "two reductions" 2 (List.length info.Loop_info.reductions)

let test_max_reduction () =
  let info =
    analyze
      ~grids:[ iscal "n"; d8 "a"; scal "m" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.assign_var "m"
              (Expr.call "max" [ Expr.var "m"; Expr.idx "a" [ Expr.var "i" ] ]);
          ];
      ]
  in
  check_bool "parallel" true info.Loop_info.parallel;
  (match info.Loop_info.reductions with
  | [ { Loop_info.red_op = Stmt.Rmax; _ } ] -> ()
  | _ -> Alcotest.fail "expected max reduction")

let test_private_scalar () =
  let info =
    analyze
      ~grids:[ iscal "n"; d8 "a"; d8 "b"; scal "tmp" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.assign_var "tmp" Expr.(idx "b" [ var "i" ] * real 3.0);
            Stmt.assign_idx "a" [ Expr.var "i" ] Expr.(var "tmp" + real 1.0);
          ];
      ]
  in
  check_bool "parallel" true info.Loop_info.parallel;
  check_bool "tmp private" true (List.mem "tmp" info.Loop_info.private_vars)

let test_scalar_dependence () =
  (* tmp read before written each iteration: genuine dependence *)
  let info =
    analyze
      ~grids:[ iscal "n"; d8 "a"; scal "tmp" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.assign_idx "a" [ Expr.var "i" ] (Expr.var "tmp");
            Stmt.assign_var "tmp" (Expr.idx "a" [ Expr.var "i" ]);
          ];
      ]
  in
  check_bool "not parallel" false info.Loop_info.parallel;
  check_bool "scalar obstacle" true
    (List.mem (Loop_info.Scalar_dependence "tmp") info.Loop_info.obstacles)

let test_inner_loop_index_private () =
  let info =
    analyze
      ~grids:[ iscal "n"; iscal "m"; Grid.array Glaf_ir.Types.T_real8
                 ~dims:[ Grid.dim (Grid.Sym "n"); Grid.dim (Grid.Sym "m") ] "a" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.for_ "j" ~lo:(Expr.int 1) ~hi:(Expr.var "m")
              [
                Stmt.assign_idx "a" [ Expr.var "i"; Expr.var "j" ] (Expr.real 0.0);
              ];
          ];
      ]
  in
  check_bool "parallel" true info.Loop_info.parallel;
  check_bool "j private" true (List.mem "j" info.Loop_info.private_vars);
  check_bool "collapsible" true info.Loop_info.collapsible

let test_collapse_requires_invariant_bounds () =
  (* inner bound depends on i: legal loop but not collapsible *)
  let info =
    analyze
      ~grids:[ iscal "n"; Grid.array Glaf_ir.Types.T_real8
                 ~dims:[ Grid.dim (Grid.Sym "n"); Grid.dim (Grid.Sym "n") ] "a" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.for_ "j" ~lo:(Expr.int 1) ~hi:(Expr.var "i")
              [
                Stmt.assign_idx "a" [ Expr.var "i"; Expr.var "j" ] (Expr.real 1.0);
              ];
          ];
      ]
  in
  check_bool "parallel" true info.Loop_info.parallel;
  check_bool "not collapsible" false info.Loop_info.collapsible

let test_collapse_requires_parallel_inner () =
  (* outer loop over bands is parallel, but the inner sweep is a
     recurrence: the nest must NOT be collapsible *)
  let info =
    analyze
      ~grids:
        [
          iscal "n"; iscal "m";
          Grid.array Glaf_ir.Types.T_real8
            ~dims:[ Grid.dim (Grid.Sym "n"); Grid.dim (Grid.Sym "m") ] "f";
        ]
      [
        Stmt.for_ "ib" ~lo:(Expr.int 1) ~hi:(Expr.var "m")
          [
            Stmt.for_ "k" ~lo:(Expr.int 2) ~hi:(Expr.var "n")
              [
                Stmt.assign_idx "f" [ Expr.var "k"; Expr.var "ib" ]
                  (Expr.idx "f" [ Expr.(var "k" - int 1); Expr.var "ib" ]);
              ];
          ];
      ]
  in
  check_bool "outer parallel" true info.Loop_info.parallel;
  check_bool "not collapsible (serial inner)" false info.Loop_info.collapsible

let test_early_exit_blocks () =
  let info =
    analyze
      ~grids:[ iscal "n"; d8 "a" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.if_
              Expr.(idx "a" [ var "i" ] > real 10.0)
              [ Stmt.Exit_loop ] [];
            Stmt.assign_idx "a" [ Expr.var "i" ] (Expr.real 0.0);
          ];
      ]
  in
  check_bool "not parallel" false info.Loop_info.parallel;
  check_bool "early exit" true
    (List.mem Loop_info.Early_exit info.Loop_info.obstacles)

let test_scratch_array_privatized () =
  (* FUN3D pattern: local scratch array indexed only by inner index *)
  let info =
    analyze
      ~grids:
        [
          iscal "n";
          d8 "out";
          Grid.array Glaf_ir.Types.T_real8 ~dims:[ Grid.dim (Grid.Fixed 4) ] "scratch";
        ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.for_ "k" ~lo:(Expr.int 1) ~hi:(Expr.int 4)
              [ Stmt.assign_idx "scratch" [ Expr.var "k" ] (Expr.real 1.0) ];
            Stmt.assign_idx "out" [ Expr.var "i" ]
              Expr.(idx "scratch" [ int 1 ] + idx "scratch" [ int 2 ]);
          ];
      ]
  in
  check_bool "parallel" true info.Loop_info.parallel;
  check_bool "scratch private" true
    (List.mem "scratch" info.Loop_info.private_vars)

let test_shared_scratch_blocks_when_not_local () =
  (* same pattern but module-scope scratch: must NOT privatize *)
  let info =
    analyze
      ~grids:
        [
          iscal "n";
          d8 "out";
          Grid.array ~storage:Grid.Module_scope Glaf_ir.Types.T_real8
            ~dims:[ Grid.dim (Grid.Fixed 4) ] "scratch";
        ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.assign_idx "scratch" [ Expr.int 1 ] (Expr.real 1.0);
            Stmt.assign_idx "out" [ Expr.var "i" ] (Expr.idx "scratch" [ Expr.int 1 ]);
          ];
      ]
  in
  check_bool "not parallel" false info.Loop_info.parallel

let test_trip_count () =
  let info =
    analyze ~grids:[ d8 "a"; iscal "n" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.int 60)
          [ Stmt.assign_idx "a" [ Expr.var "i" ] (Expr.real 0.0) ];
      ]
  in
  check_bool "trip count" true (info.Loop_info.trip_count = Some 60)

(* --- classification ----------------------------------------------------- *)

let classify ~grids body =
  (analyze ~grids body).Loop_info.classification

let test_classification () =
  let init_zero =
    classify ~grids:[ iscal "n"; d8 "a" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [ Stmt.assign_idx "a" [ Expr.var "i" ] (Expr.real 0.0) ];
      ]
  in
  Alcotest.(check string) "init zero" "Init_zero"
    (Loop_info.show_loop_class init_zero);
  let broadcast =
    classify ~grids:[ iscal "n"; d8 "a"; d8 "b" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [ Stmt.assign_idx "a" [ Expr.var "i" ] (Expr.idx "b" [ Expr.var "i" ]) ];
      ]
  in
  Alcotest.(check string) "broadcast" "Init_broadcast"
    (Loop_info.show_loop_class broadcast);
  let simple =
    classify ~grids:[ iscal "n"; d8 "a"; d8 "b" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.assign_idx "a" [ Expr.var "i" ]
              Expr.(idx "b" [ var "i" ] * idx "b" [ var "i" ] + real 1.0);
          ];
      ]
  in
  Alcotest.(check string) "simple single" "Simple_single"
    (Loop_info.show_loop_class simple);
  let double =
    classify
      ~grids:[ iscal "n"; Grid.array Glaf_ir.Types.T_real8
                 ~dims:[ Grid.dim (Grid.Sym "n"); Grid.dim (Grid.Sym "n") ] "a" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.for_ "j" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
              [
                Stmt.assign_idx "a" [ Expr.var "i"; Expr.var "j" ]
                  Expr.(var "i" * var "j" * real 1.0);
              ];
          ];
      ]
  in
  Alcotest.(check string) "simple double" "Simple_double"
    (Loop_info.show_loop_class double);
  (* per the paper's Table 2, ANY non-nested loop is in the v2 removal
     class, branches or not *)
  let single_with_if =
    classify ~grids:[ iscal "n"; d8 "a" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.if_
              Expr.(idx "a" [ var "i" ] > real 0.0)
              [ Stmt.assign_idx "a" [ Expr.var "i" ] (Expr.real 1.0) ]
              [ Stmt.assign_idx "a" [ Expr.var "i" ] (Expr.real (-1.0)) ];
          ];
      ]
  in
  Alcotest.(check string) "single with if" "Simple_single"
    (Loop_info.show_loop_class single_with_if);
  (* a double nest carrying control flow survives every removal *)
  let complex =
    classify
      ~grids:[ iscal "n"; Grid.array Glaf_ir.Types.T_real8
                 ~dims:[ Grid.dim (Grid.Fixed 2); Grid.dim (Grid.Sym "n") ] "f2" ]
      [
        Stmt.for_ "d" ~lo:(Expr.int 1) ~hi:(Expr.int 2)
          [
            Stmt.for_ "k" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
              [
                Stmt.if_
                  Expr.(var "d" = int 1)
                  [ Stmt.assign_idx "f2" [ Expr.var "d"; Expr.var "k" ] (Expr.real 1.0) ]
                  [ Stmt.assign_idx "f2" [ Expr.var "d"; Expr.var "k" ] (Expr.real 2.0) ];
              ];
          ];
      ]
  in
  Alcotest.(check string) "complex" "Complex" (Loop_info.show_loop_class complex)

(* --- calls & summaries --------------------------------------------------- *)

let make_callee ~writes_arg =
  (* subroutine callee(x, y): writes y if writes_arg *)
  let grids =
    [
      Grid.scalar ~storage:(Grid.Arg 0) Glaf_ir.Types.T_real8 "x";
      Grid.scalar ~storage:(Grid.Arg 1) Glaf_ir.Types.T_real8 "y";
    ]
  in
  let body =
    if writes_arg then [ Stmt.assign_var "y" Expr.(var "x" * real 2.0) ]
    else [ Stmt.assign_var "x" (Expr.var "x") ]
  in
  Func.make "callee" ~params:[ "x"; "y" ] ~grids
    ~steps:[ Func.step "s" body ]

let test_call_written_arg_indexed_ok () =
  let callee = make_callee ~writes_arg:true in
  let info =
    analyze ~extra_funcs:[ callee ]
      ~grids:[ iscal "n"; d8 "a"; d8 "b" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.Call
              ( "callee",
                [ Expr.idx "b" [ Expr.var "i" ]; Expr.idx "a" [ Expr.var "i" ] ] );
          ];
      ]
  in
  check_bool "parallel (write through indexed actual)" true
    info.Loop_info.parallel

let test_call_written_scalar_arg_blocks () =
  let callee = make_callee ~writes_arg:true in
  let info =
    analyze ~extra_funcs:[ callee ]
      ~grids:[ iscal "n"; d8 "b"; scal "acc" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [
            Stmt.Call ("callee", [ Expr.idx "b" [ Expr.var "i" ]; Expr.var "acc" ]);
          ];
      ]
  in
  check_bool "not parallel (shared scalar written via call)" false
    info.Loop_info.parallel

let test_call_module_write_blocks () =
  let callee =
    Func.make "dirty"
      ~grids:[ Grid.scalar ~storage:Grid.Module_scope Glaf_ir.Types.T_real8 "gstate" ]
      ~steps:[ Func.step "s" [ Stmt.assign_var "gstate" (Expr.real 1.0) ] ]
  in
  let info =
    analyze ~extra_funcs:[ callee ]
      ~grids:[ iscal "n"; d8 "a" ]
      [
        Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
          [ Stmt.Call ("dirty", []) ];
      ]
  in
  check_bool "not parallel" false info.Loop_info.parallel;
  check_bool "unsafe call obstacle" true
    (List.exists
       (function Loop_info.Unsafe_call "dirty" -> true | _ -> false)
       info.Loop_info.obstacles)

(* --- summaries ------------------------------------------------------------ *)

let test_summary_transitive () =
  let leaf =
    Func.make "leaf"
      ~grids:[ Grid.scalar ~storage:Grid.Module_scope Glaf_ir.Types.T_real8 "g" ]
      ~steps:[ Func.step "s" [ Stmt.assign_var "g" (Expr.real 1.0) ] ]
  in
  let mid =
    Func.make "mid" ~grids:[]
      ~steps:[ Func.step "s" [ Stmt.Call ("leaf", []) ] ]
  in
  let m = Ir_module.make "m" ~functions:[ leaf; mid ] in
  let p = Ir_module.program "p" ~modules:[ m ] in
  let summaries = Summary.of_program p in
  let mid_summary = Hashtbl.find summaries "mid" in
  check_slist "transitive external write" [ "g" ]
    mid_summary.Summary.writes_external

let test_summary_params () =
  let callee = make_callee ~writes_arg:true in
  let m = Ir_module.make "m" ~functions:[ callee ] in
  let p = Ir_module.program "p" ~modules:[ m ] in
  let summaries = Summary.of_program p in
  let s = Hashtbl.find summaries "callee" in
  check_bool "writes param 1" true (List.mem 1 s.Summary.writes_params);
  check_bool "reads param 0" true (List.mem 0 s.Summary.reads_params)

(* --- autopar pass ---------------------------------------------------------- *)

let test_autopar_annotates () =
  let grids = [ iscal "n"; d8 "a"; d8 "b"; scal "s" ] in
  let f =
    Func.make "kernel" ~grids
      ~steps:
        [
          Func.step "zero"
            [
              Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
                [ Stmt.assign_idx "a" [ Expr.var "i" ] (Expr.real 0.0) ];
            ];
          Func.step "acc"
            [
              Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
                [ Stmt.assign_var "s" Expr.(var "s" + idx "a" [ var "i" ]) ];
            ];
          Func.step "stencil"
            [
              Stmt.for_ "i" ~lo:(Expr.int 2) ~hi:(Expr.var "n")
                [
                  Stmt.assign_idx "a" [ Expr.var "i" ]
                    (Expr.idx "a" [ Expr.(var "i" - int 1) ]);
                ];
            ];
        ]
  in
  let m = Ir_module.make "m" ~functions:[ f ] in
  let p = Ir_module.program "p" ~modules:[ m ] in
  let p', report = Autopar.run p in
  check_int "three loops analyzed" 3 (List.length report);
  let f' = List.hd (Ir_module.all_functions p') in
  let directives =
    Stmt.fold_stmts
      (fun acc s ->
        match s with
        | Stmt.For { Stmt.directive = Some d; _ } -> d :: acc
        | _ -> acc)
      [] (Func.all_stmts f')
  in
  check_int "two annotated" 2 (List.length directives);
  check_bool "reduction directive present" true
    (List.exists (fun d -> d.Stmt.reductions <> []) directives)

let test_autopar_descends_into_serial_outer () =
  (* outer loop has a dependence; inner is parallel: directive must land
     on the inner loop *)
  let grids =
    [
      iscal "n";
      Grid.array Glaf_ir.Types.T_real8
        ~dims:[ Grid.dim (Grid.Sym "n"); Grid.dim (Grid.Sym "n") ] "a";
    ]
  in
  let f =
    Func.make "sweep" ~grids
      ~steps:
        [
          Func.step "s"
            [
              Stmt.for_ "t" ~lo:(Expr.int 2) ~hi:(Expr.var "n")
                [
                  Stmt.for_ "j" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
                    [
                      Stmt.assign_idx "a" [ Expr.var "t"; Expr.var "j" ]
                        (Expr.idx "a" [ Expr.(var "t" - int 1); Expr.var "j" ]);
                    ];
                ];
            ];
        ]
  in
  let m = Ir_module.make "m" ~functions:[ f ] in
  let p = Ir_module.program "p" ~modules:[ m ] in
  let p', _ = Autopar.run p in
  let f' = List.hd (Ir_module.all_functions p') in
  (match Func.all_stmts f' with
  | [ Stmt.For outer ] -> (
    check_bool "outer serial" true (outer.Stmt.directive = None);
    match outer.Stmt.body with
    | [ Stmt.For innr ] ->
      check_bool "inner parallel" true (innr.Stmt.directive <> None)
    | _ -> Alcotest.fail "inner loop missing")
  | _ -> Alcotest.fail "unexpected shape")

let suites =
  [
    ( "analysis.depend",
      [
        Alcotest.test_case "elementwise parallel" `Quick test_elementwise_parallel;
        Alcotest.test_case "stencil blocked" `Quick test_stencil_not_parallel;
        Alcotest.test_case "offset write ok" `Quick test_offset_write_parallel;
        Alcotest.test_case "shifted anti-dep" `Quick test_same_array_shifted_rw;
        Alcotest.test_case "sum reduction" `Quick test_reduction_detected;
        Alcotest.test_case "multi reduction" `Quick test_multi_reduction;
        Alcotest.test_case "max reduction" `Quick test_max_reduction;
        Alcotest.test_case "private scalar" `Quick test_private_scalar;
        Alcotest.test_case "scalar dependence" `Quick test_scalar_dependence;
        Alcotest.test_case "inner index private + collapse" `Quick test_inner_loop_index_private;
        Alcotest.test_case "collapse invariant bounds" `Quick test_collapse_requires_invariant_bounds;
        Alcotest.test_case "collapse needs parallel inner" `Quick test_collapse_requires_parallel_inner;
        Alcotest.test_case "early exit" `Quick test_early_exit_blocks;
        Alcotest.test_case "scratch array privatized" `Quick test_scratch_array_privatized;
        Alcotest.test_case "shared scratch blocks" `Quick test_shared_scratch_blocks_when_not_local;
        Alcotest.test_case "trip count" `Quick test_trip_count;
        Alcotest.test_case "classification" `Quick test_classification;
      ] );
    ( "analysis.calls",
      [
        Alcotest.test_case "indexed written actual" `Quick test_call_written_arg_indexed_ok;
        Alcotest.test_case "scalar written actual" `Quick test_call_written_scalar_arg_blocks;
        Alcotest.test_case "module write blocks" `Quick test_call_module_write_blocks;
        Alcotest.test_case "summary transitive" `Quick test_summary_transitive;
        Alcotest.test_case "summary params" `Quick test_summary_params;
      ] );
    ( "analysis.autopar",
      [
        Alcotest.test_case "annotates program" `Quick test_autopar_annotates;
        Alcotest.test_case "descends into serial outer" `Quick test_autopar_descends_into_serial_outer;
      ] );
  ]
