(* Tests for the Fortran substrate: line scanner, lexer, parser,
   pretty-printer round-trip, SLOC. *)

open Glaf_fortran

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- line scanner ----------------------------------------------------- *)

let test_scan_basic () =
  let lines =
    Line_scanner.scan "x = 1\n\n! comment only\ny = 2  ! trailing\n"
  in
  check_int "two logical lines" 2 (List.length lines);
  check_str "first" "x = 1" (List.nth lines 0).Line_scanner.text;
  check_str "second" "y = 2" (List.nth lines 1).Line_scanner.text

let test_scan_continuation () =
  let lines = Line_scanner.scan "x = 1 + &\n    2 + &\n    3\n" in
  check_int "one logical line" 1 (List.length lines);
  check_str "joined" "x = 1 + 2 + 3" (List.hd lines).Line_scanner.text

let test_scan_continuation_leading_amp () =
  let lines = Line_scanner.scan "call foo(a, &\n   & b)\n" in
  check_int "one line" 1 (List.length lines);
  check_str "joined" "call foo(a, b)" (List.hd lines).Line_scanner.text

let test_scan_omp () =
  let lines = Line_scanner.scan "!$omp parallel do private(i)\ndo i = 1, n\nend do\n" in
  check_int "three lines" 3 (List.length lines);
  check_bool "directive flag" true (List.hd lines).Line_scanner.is_directive;
  check_str "directive text" "parallel do private(i)"
    (List.hd lines).Line_scanner.text

let test_scan_semicolons () =
  let lines = Line_scanner.scan "a = 1; b = 2\n" in
  check_int "split" 2 (List.length lines)

let test_scan_string_bang () =
  let lines = Line_scanner.scan "msg = 'hello ! world'\n" in
  check_str "bang kept in string" "msg = 'hello ! world'"
    (List.hd lines).Line_scanner.text

(* --- lexer ------------------------------------------------------------ *)

let tok_list s = Lexer.tokenize s

let test_lex_numbers () =
  (match tok_list "42" with
  | [ Lexer.Int 42; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "int");
  (match tok_list "1.5" with
  | [ Lexer.Real (x, false); Lexer.Eof ] when x = 1.5 -> ()
  | _ -> Alcotest.fail "real");
  (match tok_list "1.0d0" with
  | [ Lexer.Real (x, true); Lexer.Eof ] when x = 1.0 -> ()
  | _ -> Alcotest.fail "double");
  (match tok_list "2.5e-3" with
  | [ Lexer.Real (x, false); Lexer.Eof ] when abs_float (x -. 0.0025) < 1e-12 -> ()
  | _ -> Alcotest.fail "exponent");
  match tok_list "1.0_8" with
  | [ Lexer.Real (x, true); Lexer.Eof ] when x = 1.0 -> ()
  | _ -> Alcotest.fail "kind suffix"

let test_lex_dotted_vs_number () =
  match tok_list "1.and.2" with
  | [ Lexer.Int 1; Lexer.And_tok; Lexer.Int 2; Lexer.Eof ] -> ()
  | toks ->
    Alcotest.failf "got %s"
      (String.concat " " (List.map (Format.asprintf "%a" Lexer.pp_token) toks))

let test_lex_operators () =
  match tok_list "a**2 // b .ne. c" with
  | [
   Lexer.Ident "a"; Lexer.Dstar; Lexer.Int 2; Lexer.Dslash; Lexer.Ident "b";
   Lexer.Ne_tok; Lexer.Ident "c"; Lexer.Eof;
  ] ->
    ()
  | _ -> Alcotest.fail "operators"

let test_lex_string_escape () =
  match tok_list "'it''s'" with
  | [ Lexer.Str "it's"; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "escaped quote"

let test_lex_case_insensitive () =
  match tok_list "CALL Foo(X)" with
  | [ Lexer.Ident "call"; Lexer.Ident "foo"; Lexer.Lparen; Lexer.Ident "x";
      Lexer.Rparen; Lexer.Eof ] ->
    ()
  | _ -> Alcotest.fail "case folding"

(* --- expression parsing ----------------------------------------------- *)

let parse_expr s = Parser.parse_expr_string s

let test_parse_precedence () =
  let e = parse_expr "1 + 2 * 3" in
  check_str "prec" "1 + 2 * 3" (Pp_ast.expr_to_string e);
  match e with
  | Ast.Binop (Ast.Add, Ast.Int_lit 1, Ast.Binop (Ast.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "mul binds tighter"

let test_parse_power_right_assoc () =
  match parse_expr "2 ** 3 ** 2" with
  | Ast.Binop (Ast.Pow, Ast.Int_lit 2, Ast.Binop (Ast.Pow, _, _)) -> ()
  | _ -> Alcotest.fail "right assoc"

let test_parse_designator () =
  match parse_expr "fo%fds(k, ib)" with
  | Ast.Desig [ ("fo", []); ("fds", [ _; _ ]) ] -> ()
  | _ -> Alcotest.fail "part-ref chain"

let test_parse_section () =
  match parse_expr "sum(a(1:n))" with
  | Ast.Desig [ ("sum", [ Ast.Desig [ ("a", [ Ast.Section (Some _, Some _) ]) ] ]) ] ->
    ()
  | _ -> Alcotest.fail "section"

let test_parse_logical () =
  match parse_expr "a > 1 .and. .not. done" with
  | Ast.Binop (Ast.And, Ast.Binop (Ast.Gt, _, _), Ast.Unop (Ast.Not, _)) -> ()
  | _ -> Alcotest.fail "logical"

(* --- statement/unit parsing -------------------------------------------- *)

let parse_units = Parser.parse_string

let simple_subroutine =
  {|
subroutine saxpy(n, a, x, y)
  implicit none
  integer :: n
  real*8 :: a
  real*8, dimension(n) :: x, y
  integer :: i
  do i = 1, n
    y(i) = a * x(i) + y(i)
  end do
end subroutine saxpy
|}

let test_parse_subroutine () =
  match parse_units simple_subroutine with
  | [ Ast.Standalone sp ] ->
    check_str "name" "saxpy" sp.Ast.sub_name;
    check_int "args" 4 (List.length sp.Ast.sub_args);
    check_int "decls" 5 (List.length sp.Ast.sub_decls);
    check_int "body" 1 (List.length sp.Ast.sub_body)
  | _ -> Alcotest.fail "expected one subroutine"

let test_parse_module_with_common_and_type () =
  let src =
    {|
module legacy_mod
  implicit none
  type :: atom_t
    real*8 :: charge
    real*8, dimension(3) :: pos
  end type atom_t
  integer :: nzones
  real*8, dimension(60) :: pressure
  common /radblk/ tau0, omega0
  real*8 :: tau0, omega0
contains
  subroutine zero_pressure()
    integer :: k
    do k = 1, 60
      pressure(k) = 0.0d0
    end do
  end subroutine zero_pressure
end module legacy_mod
|}
  in
  match parse_units src with
  | [ Ast.Module m ] ->
    check_str "name" "legacy_mod" m.Ast.mod_name;
    check_int "contains" 1 (List.length m.Ast.mod_contains);
    check_bool "has type def" true
      (List.exists
         (function Ast.Type_def _ -> true | _ -> false)
         m.Ast.mod_decls);
    check_bool "has common" true
      (List.exists
         (function Ast.Common ("radblk", [ "tau0"; "omega0" ]) -> true | _ -> false)
         m.Ast.mod_decls)
  | _ -> Alcotest.fail "expected one module"

let test_parse_if_elseif () =
  let src =
    {|
subroutine classify(x, c)
  real*8 :: x
  integer :: c
  if (x > 1.0) then
    c = 1
  else if (x > 0.0) then
    c = 2
  elseif (x > -1.0) then
    c = 3
  else
    c = 4
  end if
end subroutine classify
|}
  in
  match parse_units src with
  | [ Ast.Standalone sp ] -> (
    match sp.Ast.sub_body with
    | [ Ast.If_block (branches, else_) ] ->
      check_int "branches" 3 (List.length branches);
      check_int "else" 1 (List.length else_)
    | _ -> Alcotest.fail "expected if block")
  | _ -> Alcotest.fail "expected subroutine"

let test_parse_logical_if () =
  let src = "subroutine f(x)\nreal*8 :: x\nif (x > 3.0) return\nend subroutine f" in
  match parse_units src with
  | [ Ast.Standalone sp ] -> (
    match sp.Ast.sub_body with
    | [ Ast.If_arith (_, Ast.Return) ] -> ()
    | _ -> Alcotest.fail "expected logical if")
  | _ -> Alcotest.fail "expected subroutine"

let test_parse_omp_do () =
  let src =
    {|
subroutine f(n, a)
  integer :: n
  real*8, dimension(n) :: a
  integer :: i
  real*8 :: s
  s = 0.0d0
!$omp parallel do private(i) reduction(+:s) collapse(1) schedule(static)
  do i = 1, n
    s = s + a(i)
  end do
!$omp end parallel do
end subroutine f
|}
  in
  match parse_units src with
  | [ Ast.Standalone sp ] -> (
    match List.rev sp.Ast.sub_body with
    | Ast.Do l :: _ -> (
      match l.Ast.do_omp with
      | Some d ->
        Alcotest.(check (list string)) "private" [ "i" ] d.Ast.omp_private;
        check_int "reductions" 1 (List.length d.Ast.omp_reduction);
        check_bool "schedule" true (d.Ast.omp_schedule = Some Ast.Static)
      | None -> Alcotest.fail "missing omp clause")
    | _ -> Alcotest.fail "expected do loop last")
  | _ -> Alcotest.fail "expected subroutine"

let test_parse_omp_schedule_chunks () =
  (* schedule clauses with literal chunk sizes survive the
     parse -> pretty-print round trip *)
  let directive_of clause =
    let src =
      Printf.sprintf
        "subroutine f(n, a)\n\
        \  integer :: n\n\
        \  real*8, dimension(n) :: a\n\
        \  integer :: i\n\
         !$omp parallel do %s\n\
        \  do i = 1, n\n\
        \    a(i) = 0.0d0\n\
        \  end do\n\
         !$omp end parallel do\n\
         end subroutine f\n"
        clause
    in
    match parse_units src with
    | [ Ast.Standalone sp ] -> (
      match List.rev sp.Ast.sub_body with
      | Ast.Do l :: _ -> (
        match l.Ast.do_omp with
        | Some d -> (d.Ast.omp_schedule, Pp_ast.to_string [ Ast.Standalone sp ])
        | None -> Alcotest.fail "missing omp clause")
      | _ -> Alcotest.fail "expected do loop last")
    | _ -> Alcotest.fail "expected subroutine"
  in
  let sched, pp = directive_of "schedule(static, 4)" in
  check_bool "static chunk" true (sched = Some (Ast.Static_chunk 4));
  check_bool "static chunk round-trips" true
    (let n = String.length pp in
     let rec go i =
       i + 19 <= n && (String.sub pp i 19 = "schedule(static, 4)" || go (i + 1))
     in
     go 0);
  let sched, _ = directive_of "schedule(dynamic, 8)" in
  check_bool "dynamic chunk" true (sched = Some (Ast.Dynamic 8));
  let sched, _ = directive_of "schedule(dynamic)" in
  check_bool "dynamic default chunk" true (sched = Some (Ast.Dynamic 1));
  let sched, pp = directive_of "schedule(guided, 2)" in
  check_bool "guided chunk" true (sched = Some (Ast.Guided 2));
  check_bool "guided chunk round-trips" true
    (let n = String.length pp in
     let rec go i =
       i + 19 <= n && (String.sub pp i 19 = "schedule(guided, 2)" || go (i + 1))
     in
     go 0);
  let sched, _ = directive_of "schedule(guided)" in
  check_bool "guided default floor" true (sched = Some (Ast.Guided 1))

let test_parse_omp_atomic_critical () =
  let src =
    {|
subroutine f(a, n)
  integer :: n
  real*8, dimension(n) :: a
  integer :: i
!$omp parallel do private(i)
  do i = 1, n
!$omp atomic
    a(1) = a(1) + 1.0d0
!$omp critical
    a(2) = a(2) + 2.0d0
!$omp end critical
  end do
!$omp end parallel do
end subroutine f
|}
  in
  match parse_units src with
  | [ Ast.Standalone sp ] -> (
    match sp.Ast.sub_body with
    | [ Ast.Do l ] -> (
      match l.Ast.do_body with
      | [ Ast.Omp_atomic (Ast.Assign _); Ast.Omp_critical [ Ast.Assign _ ] ] ->
        ()
      | _ -> Alcotest.fail "expected atomic + critical")
    | _ -> Alcotest.fail "expected one loop")
  | _ -> Alcotest.fail "expected subroutine"

let test_parse_allocate_save () =
  let src =
    {|
subroutine f(n)
  integer :: n
  real*8, allocatable, save :: tmp(:)
  allocate(tmp(n))
  tmp(1) = 0.0d0
  deallocate(tmp)
end subroutine f
|}
  in
  match parse_units src with
  | [ Ast.Standalone sp ] ->
    check_bool "has save attr" true
      (List.exists
         (function
           | Ast.Var_decl { attrs; _ } -> List.mem Ast.Save attrs
           | _ -> false)
         sp.Ast.sub_decls);
    check_bool "allocate stmt" true
      (List.exists (function Ast.Allocate _ -> true | _ -> false) sp.Ast.sub_body);
    check_bool "deallocate stmt" true
      (List.exists (function Ast.Deallocate _ -> true | _ -> false) sp.Ast.sub_body)
  | _ -> Alcotest.fail "expected subroutine"

let test_parse_do_while_exit_cycle () =
  let src =
    {|
subroutine f(n)
  integer :: n
  integer :: i
  i = 0
  do while (i < n)
    i = i + 1
    if (i == 3) cycle
    if (i > 10) exit
  end do
end subroutine f
|}
  in
  match parse_units src with
  | [ Ast.Standalone sp ] ->
    check_bool "do while present" true
      (List.exists
         (function Ast.Do_while _ -> true | _ -> false)
         sp.Ast.sub_body)
  | _ -> Alcotest.fail "expected subroutine"

let test_parse_function_unit () =
  let src =
    {|
real*8 function norm2(n, x)
  integer :: n
  real*8, dimension(n) :: x
  integer :: i
  norm2 = 0.0d0
  do i = 1, n
    norm2 = norm2 + x(i) * x(i)
  end do
  norm2 = sqrt(norm2)
end function norm2
|}
  in
  match parse_units src with
  | [ Ast.Standalone sp ] ->
    check_bool "is function" true (sp.Ast.sub_kind = `Function (Some Ast.Real8))
  | _ -> Alcotest.fail "expected function"

let test_parse_main_program () =
  let src =
    "program driver\nimplicit none\ninteger :: i\ni = 1\nprint *, i\nend program driver"
  in
  match parse_units src with
  | [ Ast.Main m ] ->
    check_str "name" "driver" m.Ast.main_name;
    check_int "body" 2 (List.length m.Ast.main_body)
  | _ -> Alcotest.fail "expected main"

let test_parse_use_only () =
  let src = "subroutine f()\nuse fuinput, only: pp, ptop\nreturn\nend subroutine f" in
  match parse_units src with
  | [ Ast.Standalone sp ] -> (
    match sp.Ast.sub_decls with
    | [ Ast.Use ("fuinput", [ "pp"; "ptop" ]) ] -> ()
    | _ -> Alcotest.fail "expected use-only")
  | _ -> Alcotest.fail "expected subroutine"

let test_parse_error_reports_line () =
  let src = "subroutine f()\nx = = 1\nend subroutine f" in
  match parse_units src with
  | _ -> Alcotest.fail "expected parse error"
  | exception Parser.Parse_error (line, _) -> check_int "error line" 2 line

(* --- round trips ------------------------------------------------------- *)

let roundtrip src =
  let cu = parse_units src in
  let printed = Pp_ast.to_string cu in
  let cu2 = parse_units printed in
  Alcotest.check
    (Alcotest.testable
       (fun ppf cu -> Fmt.pf ppf "%d units" (List.length cu))
       (fun a b -> List.for_all2 Ast.equal_program_unit a b))
    "roundtrip equal" cu cu2

let test_roundtrip_saxpy () = roundtrip simple_subroutine

(* the rewriter in lib/lift regenerates legacy sources from the AST:
   print/parse must be a fixed point on everything we ship *)
let test_roundtrip_legacy_sarb () =
  roundtrip Glaf_workloads.Sarb_legacy.full_source

let test_roundtrip_legacy_fun3d () =
  roundtrip Glaf_workloads.Fun3d_legacy.full_source

let test_roundtrip_rich () =
  roundtrip
    {|
module rich
  implicit none
  integer, parameter :: nv = 60
  real*8, dimension(nv) :: profile
contains
  subroutine work(niter, acc)
    integer :: niter
    real*8 :: acc
    integer :: i, j
    real*8 :: local
    common /blk/ shared_val
    real*8 :: shared_val
    local = 0.0d0
!$omp parallel do private(i, j) reduction(+:local) collapse(2)
    do i = 1, niter
      do j = 1, nv
        local = local + profile(j) * (1.0d0 / (i + j))
      end do
    end do
!$omp end parallel do
    if (local > 0.0d0) then
      acc = acc + local
    else
      acc = acc - local
    end if
  end subroutine work
end module rich
|}

(* property: pretty-print of random expressions reparses to equal AST *)

let gen_fexpr =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun n -> Ast.Int_lit (abs n)) small_int;
                map (fun x -> Ast.Real_lit (Float.abs x, false)) (float_bound_inclusive 1000.0);
                map (fun x -> Ast.Real_lit (Float.abs x, true)) (float_bound_inclusive 1000.0);
                map (fun b -> Ast.Logical_lit b) bool;
                oneofl [ Ast.var "a"; Ast.var "b"; Ast.var "zz" ];
              ]
          else
            let sub = self (n / 2) in
            oneof
              [
                map2 (fun a b -> Ast.Binop (Ast.Add, a, b)) sub sub;
                map2 (fun a b -> Ast.Binop (Ast.Sub, a, b)) sub sub;
                map2 (fun a b -> Ast.Binop (Ast.Mul, a, b)) sub sub;
                map2 (fun a b -> Ast.Binop (Ast.Div, a, b)) sub sub;
                map2 (fun a b -> Ast.Binop (Ast.Pow, a, b)) sub sub;
                map (fun a -> Ast.Unop (Ast.Neg, a)) (self (n - 1));
                map (fun a -> Ast.Desig [ ("arr", [ a ]) ]) (self (n - 1));
                map2
                  (fun a b -> Ast.Desig [ ("f2", [ a; b ]) ])
                  sub sub;
              ])
        (min n 10))

let arb_fexpr = QCheck.make ~print:Pp_ast.expr_to_string gen_fexpr

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"fortran expr print/parse roundtrip" ~count:300
    arb_fexpr (fun e ->
      let s = Pp_ast.expr_to_string e in
      match Parser.parse_expr_string s with
      | e' -> Ast.equal_expr e e'
      | exception _ -> false)

(* property: pretty-print of random SUBPROGRAMS reparses to equal AST *)

let gen_stmt =
  let open QCheck.Gen in
  let gen_sexpr =
    oneof
      [
        map (fun n -> Ast.Int_lit (abs n)) small_int;
        map (fun x -> Ast.Real_lit (Float.abs x, true)) (float_bound_inclusive 100.0);
        oneofl [ Ast.var "a"; Ast.var "b"; Ast.var "n" ];
        map (fun e -> Ast.Desig [ ("arr", [ e ]) ]) (oneofl [ Ast.var "i"; Ast.Int_lit 1 ]);
        map2 (fun a b -> Ast.Binop (Ast.Add, a, b)) (oneofl [ Ast.var "a" ]) (oneofl [ Ast.var "b" ]);
      ]
  in
  sized (fun n ->
      fix
        (fun self n ->
          let assign =
            map2
              (fun d e -> Ast.Assign ([ (d, []) ], e))
              (oneofl [ "a"; "b" ])
              gen_sexpr
          in
          let arr_assign =
            map2
              (fun ix e -> Ast.Assign ([ ("arr", [ ix ]) ], e))
              (oneofl [ Ast.var "i"; Ast.Int_lit 2 ])
              gen_sexpr
          in
          if n <= 0 then oneof [ assign; arr_assign; return Ast.Cycle ]
          else
            oneof
              [
                assign;
                arr_assign;
                map2
                  (fun c body -> Ast.If_block ([ (c, [ body ]) ], []))
                  (map2 (fun a b -> Ast.Binop (Ast.Gt, a, b)) gen_sexpr gen_sexpr)
                  (self (n / 2));
                map2
                  (fun c (b1, b2) -> Ast.If_block ([ (c, [ b1 ]) ], [ b2 ]))
                  (map2 (fun a b -> Ast.Binop (Ast.Le, a, b)) gen_sexpr gen_sexpr)
                  (pair (self (n / 2)) (self (n / 2)));
                map
                  (fun body ->
                    Ast.Do
                      {
                        Ast.do_var = "i";
                        do_lo = Ast.Int_lit 1;
                        do_hi = Ast.var "n";
                        do_step = None;
                        do_body = [ body ];
                        do_omp = None;
                      })
                  (self (n / 2));
                map
                  (fun body ->
                    Ast.Do
                      {
                        Ast.do_var = "i";
                        do_lo = Ast.Int_lit 1;
                        do_hi = Ast.Int_lit 8;
                        do_step = None;
                        do_body = [ body ];
                        do_omp =
                          Some
                            {
                              Ast.omp_do_default with
                              Ast.omp_private = [ "i" ];
                            };
                      })
                  (self (n / 2));
              ])
        (min n 8))

let gen_subprogram =
  QCheck.Gen.(
    map
      (fun stmts ->
        {
          Ast.sub_name = "randsub";
          sub_kind = `Subroutine;
          sub_args = [ "n"; "arr" ];
          sub_decls =
            [
              Ast.Implicit_none;
              Ast.Var_decl
                {
                  base = Ast.Integer;
                  attrs = [];
                  entities =
                    [
                      { Ast.ent_name = "n"; ent_dims = None; ent_deferred = None; ent_init = None };
                      { Ast.ent_name = "i"; ent_dims = None; ent_deferred = None; ent_init = None };
                    ];
                };
              Ast.Var_decl
                {
                  base = Ast.Real8;
                  attrs = [];
                  entities =
                    [
                      {
                        Ast.ent_name = "arr";
                        ent_dims = Some [ (None, Ast.var "n") ];
                        ent_deferred = None;
                        ent_init = None;
                      };
                      { Ast.ent_name = "a"; ent_dims = None; ent_deferred = None; ent_init = None };
                      { Ast.ent_name = "b"; ent_dims = None; ent_deferred = None; ent_init = None };
                    ];
                };
            ];
          sub_body = stmts;
        })
      (list_size (int_range 1 6) gen_stmt))

let arb_subprogram =
  QCheck.make
    ~print:(fun sp -> Pp_ast.to_string [ Ast.Standalone sp ])
    gen_subprogram

let prop_subprogram_roundtrip =
  QCheck.Test.make ~name:"fortran subprogram print/parse roundtrip" ~count:150
    arb_subprogram (fun sp ->
      let src = Pp_ast.to_string [ Ast.Standalone sp ] in
      match Parser.parse_string src with
      | [ Ast.Standalone sp' ] -> Ast.equal_subprogram sp sp'
      | _ -> false
      | exception _ -> false)

(* --- sloc --------------------------------------------------------------- *)

let test_sloc () =
  check_int "sloc ignores comments/blanks" 2
    (Sloc.of_source "! header\n\nx = 1\n\n  ! note\ny = 2\n");
  match parse_units simple_subroutine with
  | [ Ast.Standalone sp ] ->
    check_bool "subprogram sloc sensible" true (Sloc.of_subprogram sp >= 8)
  | _ -> Alcotest.fail "parse failed"

let suites =
  [
    ( "fortran.scanner",
      [
        Alcotest.test_case "basic" `Quick test_scan_basic;
        Alcotest.test_case "continuation" `Quick test_scan_continuation;
        Alcotest.test_case "leading ampersand" `Quick test_scan_continuation_leading_amp;
        Alcotest.test_case "omp sentinel" `Quick test_scan_omp;
        Alcotest.test_case "semicolons" `Quick test_scan_semicolons;
        Alcotest.test_case "bang in string" `Quick test_scan_string_bang;
      ] );
    ( "fortran.lexer",
      [
        Alcotest.test_case "numbers" `Quick test_lex_numbers;
        Alcotest.test_case "dotted vs number" `Quick test_lex_dotted_vs_number;
        Alcotest.test_case "operators" `Quick test_lex_operators;
        Alcotest.test_case "string escape" `Quick test_lex_string_escape;
        Alcotest.test_case "case insensitive" `Quick test_lex_case_insensitive;
      ] );
    ( "fortran.expr",
      [
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "power right assoc" `Quick test_parse_power_right_assoc;
        Alcotest.test_case "designator" `Quick test_parse_designator;
        Alcotest.test_case "section" `Quick test_parse_section;
        Alcotest.test_case "logical ops" `Quick test_parse_logical;
        QCheck_alcotest.to_alcotest prop_expr_roundtrip;
      ] );
    ( "fortran.units",
      [
        Alcotest.test_case "subroutine" `Quick test_parse_subroutine;
        Alcotest.test_case "module/common/type" `Quick test_parse_module_with_common_and_type;
        Alcotest.test_case "if/elseif" `Quick test_parse_if_elseif;
        Alcotest.test_case "logical if" `Quick test_parse_logical_if;
        Alcotest.test_case "omp parallel do" `Quick test_parse_omp_do;
        Alcotest.test_case "omp schedule chunks" `Quick
          test_parse_omp_schedule_chunks;
        Alcotest.test_case "omp atomic/critical" `Quick test_parse_omp_atomic_critical;
        Alcotest.test_case "allocate/save" `Quick test_parse_allocate_save;
        Alcotest.test_case "do while/exit/cycle" `Quick test_parse_do_while_exit_cycle;
        Alcotest.test_case "function unit" `Quick test_parse_function_unit;
        Alcotest.test_case "main program" `Quick test_parse_main_program;
        Alcotest.test_case "use only" `Quick test_parse_use_only;
        Alcotest.test_case "error line number" `Quick test_parse_error_reports_line;
      ] );
    ( "fortran.roundtrip",
      [
        Alcotest.test_case "saxpy" `Quick test_roundtrip_saxpy;
        Alcotest.test_case "rich module" `Quick test_roundtrip_rich;
        Alcotest.test_case "legacy sarb" `Quick test_roundtrip_legacy_sarb;
        Alcotest.test_case "legacy fun3d" `Quick test_roundtrip_legacy_fun3d;
        QCheck_alcotest.to_alcotest prop_subprogram_roundtrip;
      ] );
    ("fortran.sloc", [ Alcotest.test_case "counting" `Quick test_sloc ]);
  ]
