(* Concurrent batch serving: results of [run_calls ~concurrency:N]
   must be indistinguishable from sequential serving — same per-call
   values bit-for-bit under a deterministic (static) schedule, same
   file-order result streaming, same fault accounting — including when
   fault-injection plans fail regions or kill workers mid-batch.

   Like the fault tests, every case that installs an injection plan or
   damages the pool restores the global defaults in a finaliser. *)

open Glaf_runtime
open Glaf_service

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The quad_sweep kernel under an explicit static schedule: chunk
   boundaries are a pure function of (lo, hi, threads) and the
   reduction combines per-thread partials in thread order, so a call's
   result is bit-identical no matter which worker ran which chunk —
   the property that makes concurrent serving transparent. *)
let gpi_script =
  {|program serve_conc
module m
function pi_mid returns real8
  param n integer
  grid acc real8
  grid h real8
  step integrate
    set h = 1.0 / n
    set acc = 0.0
    foreach i = 1, n schedule static
      set acc = acc + 4.0 / (1.0 + ((i - 0.5) * h) * ((i - 0.5) * h))
    end foreach
    return acc * h
end program
|}

let compiled = lazy (Serve.compile gpi_script)

let calls () =
  Serve.parse_calls
    "pi_mid(1000)\n\
     pi_mid(2500)\n\
     pi_mid(5000)\n\
     pi_mid(7500)\n\
     pi_mid(10000)\n\
     pi_mid(12500)"

let restore () =
  Faultinject.clear ();
  Pool.reset_health ();
  Pool.set_max_respawns Pool.default_max_respawns

let serve ~concurrency ?inject ?(retries = 0) () =
  Fun.protect ~finally:restore (fun () ->
      (match inject with
      | None -> ()
      | Some plan -> (
        match Faultinject.parse_plan plan with
        | Ok p -> Faultinject.set_plan p
        | Error msg -> Alcotest.fail msg));
      Serve.run_calls ~concurrency ~threads:4 ~retries (Lazy.force compiled)
        (calls ()))

(* Collapse a batch to a comparable shape: call line, success flag,
   the result's exact bits, and the captured PRINT output. *)
let outcome_bits b =
  List.map
    (fun ((c : Serve.call), r) ->
      ( c.Serve.cl_line,
        match r with
        | Ok oc ->
          ( true,
            (match oc.Serve.oc_value with
            | Some v -> Int64.bits_of_float (Value.to_float v)
            | None -> 0L),
            oc.Serve.oc_output )
        | Error f -> (false, 0L, Fault.to_string f) ))
    b.Serve.b_results

let test_bitwise_identical_to_sequential () =
  let seq = serve ~concurrency:1 () in
  let conc = serve ~concurrency:4 () in
  check_int "no sequential failures" 0 seq.Serve.b_failed;
  check_int "no concurrent failures" 0 conc.Serve.b_failed;
  check_bool "per-call outputs bit-identical" true
    (outcome_bits seq = outcome_bits conc)

let test_results_stream_in_file_order () =
  Fun.protect ~finally:restore (fun () ->
      let order = ref [] in
      let b =
        Serve.run_calls ~concurrency:4 ~threads:2
          ~on_result:(fun c _ -> order := c.Serve.cl_line :: !order)
          (Lazy.force compiled) (calls ())
      in
      check_int "all served" 6 b.Serve.b_ok;
      Alcotest.(check (list int))
        "on_result fires in calls-file order"
        (List.map (fun (c : Serve.call) -> c.Serve.cl_line) (calls ()))
        (List.rev !order))

(* fail-region:K under overlap: the global region counter makes {e
   which} call absorbs the injected failure schedule-dependent, but
   the accounting must match sequential serving — exactly one runtime
   fault, everything else served with clean-run values. *)
let test_fail_region_parity () =
  let clean = serve ~concurrency:1 () in
  let seq = serve ~concurrency:1 ~inject:"fail-region:3" () in
  let conc = serve ~concurrency:4 ~inject:"fail-region:3" () in
  check_int "one sequential failure" 1 seq.Serve.b_failed;
  check_int "one concurrent failure" 1 conc.Serve.b_failed;
  check_int "same ok count" seq.Serve.b_ok conc.Serve.b_ok;
  let clean_bits = outcome_bits clean in
  List.iter
    (fun ((c : Serve.call), r) ->
      match r with
      | Ok oc ->
        let value_bits =
          match oc.Serve.oc_value with
          | Some v -> Int64.bits_of_float (Value.to_float v)
          | None -> 0L
        in
        check_bool
          (Printf.sprintf "line %d matches the clean run" c.Serve.cl_line)
          true
          (List.exists
             (fun (line, (ok, bits, _)) ->
               line = c.Serve.cl_line && ok && Int64.equal bits value_bits)
             clean_bits)
      | Error f ->
        check_bool "injected failure classified as runtime" true
          (Fault.cls_of f = Fault.Runtime))
    conc.Serve.b_results

(* kill-worker under overlap: the dying worker's chunk (and any chunks
   pinned to its queue) surface as transient pool faults; with retries
   the batch self-heals and every result still matches the clean
   sequential run bit-for-bit. *)
let test_kill_worker_retry_parity () =
  let clean = serve ~concurrency:1 () in
  let conc = serve ~concurrency:4 ~inject:"kill-worker:1" ~retries:3 () in
  check_int "no failures after retries" 0 conc.Serve.b_failed;
  check_int "all calls served" 6 conc.Serve.b_ok;
  check_bool "bit-identical to clean sequential serving" true
    (outcome_bits clean = outcome_bits conc);
  check_bool "pool healed" true (Pool.health () = Pool.Healthy)

(* Backoff requeue must not busy-spin idle executor slots: while a
   retrying call waits out its not-before time, each idle slot sleeps
   until the earliest deadline in one go.  The old capped poll-sleep
   woke every 50ms, so a 0.4s backoff with 2 slots burned ~16 wakeups;
   the deadline sleep needs O(retries) wakeups total.  The gauge
   counts every idle sleep, so the bound is deliberately loose — the
   regression it guards against is an order of magnitude away. *)
let test_backoff_requeue_does_not_spin () =
  Fun.protect ~finally:restore (fun () ->
      (match Faultinject.parse_plan "kill-worker:1" with
      | Ok p -> Faultinject.set_plan p
      | Error msg -> Alcotest.fail msg);
      Serve.reset_idle_wakeups ();
      let b =
        Serve.run_calls ~concurrency:2 ~threads:4 ~retries:2 ~backoff_s:0.4
          (Lazy.force compiled)
          (Serve.parse_calls "pi_mid(1000)\npi_mid(2500)")
      in
      check_int "batch recovered" 2 b.Serve.b_ok;
      let wakeups = Serve.idle_wakeups () in
      check_bool
        (Printf.sprintf "idle wakeups bounded (got %d, want <= 8)" wakeups)
        true (wakeups <= 8))

(* max_errors under overlap: the batch aborts once the failure budget
   is spent; never-attempted calls are skipped, accounting stays
   consistent. *)
let test_max_errors_aborts_concurrent_batch () =
  Fun.protect ~finally:restore (fun () ->
      (match Faultinject.parse_plan "fail-region:1,fail-region:2" with
      | Ok p -> Faultinject.set_plan p
      | Error msg -> Alcotest.fail msg);
      let b =
        Serve.run_calls ~concurrency:2 ~threads:4 ~max_errors:2
          (Lazy.force compiled) (calls ())
      in
      check_bool "batch aborted" true b.Serve.b_aborted;
      check_int "two failures" 2 b.Serve.b_failed;
      check_int "accounting covers every call" 6
        (b.Serve.b_ok + b.Serve.b_failed + b.Serve.b_skipped))

let suites =
  [
    ( "serve.concurrent",
      [
        Alcotest.test_case "bitwise identical to sequential" `Quick
          test_bitwise_identical_to_sequential;
        Alcotest.test_case "results stream in file order" `Quick
          test_results_stream_in_file_order;
        Alcotest.test_case "fail-region parity" `Quick test_fail_region_parity;
        Alcotest.test_case "kill-worker + retry parity" `Quick
          test_kill_worker_retry_parity;
        Alcotest.test_case "backoff requeue does not spin" `Quick
          test_backoff_requeue_does_not_spin;
        Alcotest.test_case "max-errors abort" `Quick
          test_max_errors_aborts_concurrent_batch;
      ] );
  ]
