let () =
  Alcotest.run "oglaf"
    (List.concat
       [
         Test_ir.suites;
         Test_fortran_parser.suites;
         Test_interp.suites;
         Test_analysis.suites;
         Test_builder.suites;
         Test_codegen.suites;
         Test_workloads.suites;
         Test_runtime.suites;
         Test_faults.suites;
         Test_bytecode_diff.suites;
         Test_serve_concurrent.suites;
         Test_listener.suites;
         Test_perf_integration.suites;
         Test_lift.suites;
         Test_tune.suites;
         Test_cli.suites;
       ])
