(* End-to-end tests of the oglaf CLI binary against the shipped GPI
   scripts. *)

let exe = "../bin/oglaf.exe"
let scripts = "../examples/scripts"

let check_bool = Alcotest.(check bool)

let run_capture cmd =
  let out = Filename.temp_file "oglaf_cli" ".out" in
  let rc = Sys.command (Printf.sprintf "%s > %s 2>&1" cmd (Filename.quote out)) in
  let ic = open_in out in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  (rc, content)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* Both the binary and the scripts directory are declared dune deps of
   this test executable, so their absence means the build is broken —
   fail loudly instead of silently skipping every CLI test. *)
let require_available () =
  if not (Sys.file_exists exe) then
    Alcotest.fail (Printf.sprintf "CLI binary %s is missing" exe);
  if not (Sys.file_exists scripts) then
    Alcotest.fail (Printf.sprintf "scripts directory %s is missing" scripts)

let test_compile_fortran () =
  require_available ();
  begin
    let rc, out = run_capture (Printf.sprintf "%s compile %s/saxpy.gpi" exe scripts) in
    check_bool "exit 0" true (rc = 0);
    check_bool "module emitted" true (contains out "module m");
    check_bool "reduction directive" true (contains out "reduction(+:s)")
  end

let test_compile_policy_and_serial () =
  require_available ();
  begin
    let rc, out =
      run_capture
        (Printf.sprintf "%s compile %s/saxpy.gpi --policy v2" exe scripts)
    in
    check_bool "exit 0" true (rc = 0);
    (* the single loop is pruned by v2 *)
    check_bool "no directive at v2" false (contains out "!$omp parallel do");
    let rc, out =
      run_capture (Printf.sprintf "%s compile %s/saxpy.gpi --serial" exe scripts)
    in
    check_bool "serial exit 0" true (rc = 0);
    check_bool "serial has no omp" false (contains out "!$omp")
  end

let test_compile_c_and_opencl () =
  require_available ();
  begin
    let rc, out =
      run_capture (Printf.sprintf "%s compile %s/saxpy.gpi --lang c" exe scripts)
    in
    check_bool "c exit 0" true (rc = 0);
    check_bool "c pragma" true (contains out "#pragma omp parallel for");
    let rc, out =
      run_capture (Printf.sprintf "%s compile %s/saxpy.gpi --lang opencl" exe scripts)
    in
    check_bool "opencl exit 0" true (rc = 0);
    check_bool "kernel" true (contains out "__kernel void")
  end

let test_analyze () =
  require_available ();
  begin
    let rc, out =
      run_capture (Printf.sprintf "%s analyze %s/point_charge.gpi" exe scripts)
    in
    check_bool "exit 0" true (rc = 0);
    check_bool "reports loop" true (contains out "loop over row");
    check_bool "reduction found" true (contains out "reduction(sum_f)")
  end

let test_run_function () =
  require_available ();
  begin
    (* with n = 0 the loop never runs, so the (scalar-filled) array
       arguments are never indexed and the reduction result is 0 *)
    let rc, out =
      run_capture
        (Printf.sprintf
           "%s run %s/saxpy.gpi --call axpy --arg 0 --arg 1.0 --arg 0 --arg 0"
           exe scripts)
    in
    (* n = 0: empty loop, arrays never touched; result 0 *)
    check_bool "exit 0" true (rc = 0);
    check_bool "zero result" true (contains out "0")
  end

let test_check_against_legacy () =
  require_available ();
  begin
    (* write the SARB legacy source to a file and check the shipped
       integration script against it *)
    let legacy = Filename.temp_file "oglaf_legacy" ".f90" in
    let oc = open_out legacy in
    output_string oc Glaf_workloads.Sarb_legacy.full_source;
    close_out oc;
    let rc, out =
      run_capture
        (Printf.sprintf "%s check %s/legacy_radiation.gpi --legacy %s" exe
           scripts (Filename.quote legacy))
    in
    check_bool "exit 0" true (rc = 0);
    check_bool "resolves" true (contains out "OK")
  end

let test_serve_batch () =
  require_available ();
  begin
    (* three invocations of the quadrature kernel from one compile *)
    let calls = Filename.temp_file "oglaf_calls" ".txt" in
    let oc = open_out calls in
    output_string oc "# serve smoke\npi_mid(100)\n\npi_mid(1000)\npi_mid(5000)\n";
    close_out oc;
    let rc, out =
      run_capture
        (Printf.sprintf
           "%s serve %s/quad_sweep.gpi --calls %s --threads 2 --stats" exe
           scripts (Filename.quote calls))
    in
    check_bool "exit 0" true (rc = 0);
    (* one result line per call, in file order, each approximating pi *)
    check_bool "three results" true
      (List.length
         (List.filter
            (fun l -> contains l "pi_mid(")
            (String.split_on_char '\n' out))
      = 3);
    check_bool "approximates pi" true (contains out "3.141");
    check_bool "stats printed" true (contains out "resident workers");
    (* bad schedule is rejected *)
    let rc, _ =
      run_capture
        (Printf.sprintf
           "%s serve %s/quad_sweep.gpi --calls %s --schedule bogus" exe scripts
           (Filename.quote calls))
    in
    check_bool "bad schedule is a usage error" true (rc = 2)
  end

(* Exit-code contract: 0 success, 1 diagnosed failure with a one-line
   stderr diagnostic (never an OCaml backtrace), 2 usage error. *)
let test_exit_codes () =
  require_available ();
  begin
    (* missing required argument -> usage error *)
    let rc, _ = run_capture (Printf.sprintf "%s compile" exe) in
    check_bool "missing arg exits 2" true (rc = 2);
    let rc, out =
      run_capture
        (Printf.sprintf "%s compile %s/saxpy.gpi --policy v9" exe scripts)
    in
    check_bool "unknown policy exits 2" true (rc = 2);
    check_bool "policy diagnostic" true (contains out "unknown policy");
    (* diagnosed runtime failure -> exit 1, one-line diagnostic *)
    let rc, out =
      run_capture (Printf.sprintf "%s run %s/saxpy.gpi --call nope" exe scripts)
    in
    check_bool "runtime failure exits 1" true (rc = 1);
    check_bool "diagnostic names the failure" true
      (contains out "oglaf: runtime error");
    check_bool "no backtrace leaks" false
      (contains out "Raised at" || contains out "Fatal error");
    (* malformed calls file -> exit 1, diagnostic carries the line *)
    let calls = Filename.temp_file "oglaf_badcalls" ".txt" in
    let oc = open_out calls in
    output_string oc "pi_mid(1,,2)\n";
    close_out oc;
    let rc, out =
      run_capture
        (Printf.sprintf "%s serve %s/quad_sweep.gpi --calls %s" exe scripts
           (Filename.quote calls))
    in
    check_bool "bad calls file exits 1" true (rc = 1);
    check_bool "names the line and slot" true
      (contains out "calls error at line 1"
      && contains out "empty argument slot")
  end

let test_serve_fault_injection () =
  require_available ();
  begin
    let calls = Filename.temp_file "oglaf_inject" ".txt" in
    let oc = open_out calls in
    output_string oc "pi_mid(1000)\npi_mid(1000)\npi_mid(1000)\n";
    close_out oc;
    (* each call runs one parallel region, so fail-region:2 fails
       exactly the second call; the batch keeps serving *)
    let rc, out =
      run_capture
        (Printf.sprintf
           "%s serve %s/quad_sweep.gpi --calls %s --threads 2 --inject \
            fail-region:2"
           exe scripts (Filename.quote calls))
    in
    check_bool "failed batch exits 1" true (rc = 1);
    check_bool "fault line printed" true
      (contains out "[FAULT]" && contains out "injected fault: fail-region:2");
    check_bool "other calls still served" true (contains out "3.141");
    check_bool "summary printed" true (contains out "2 ok, 1 failed");
    check_bool "no backtrace leaks" false (contains out "Raised at");
    (* a malformed plan is a usage error *)
    let rc, out =
      run_capture
        (Printf.sprintf "%s serve %s/quad_sweep.gpi --calls %s --inject nope:1"
           exe scripts (Filename.quote calls))
    in
    check_bool "bad plan exits 2" true (rc = 2);
    check_bool "bad plan diagnostic" true (contains out "bad --inject plan")
  end

let test_serve_timeout_and_retry_flags () =
  require_available ();
  begin
    let calls = Filename.temp_file "oglaf_deadline" ".txt" in
    let oc = open_out calls in
    (* first call would interpret 10^8 iterations (minutes): only the
       deadline can end it; the second is trivially fast *)
    output_string oc "pi_mid(100000000)\npi_mid(1000)\n";
    close_out oc;
    let rc, out =
      run_capture
        (Printf.sprintf
           "%s serve %s/quad_sweep.gpi --calls %s --threads 2 --timeout-ms \
            200 --retry 0"
           exe scripts (Filename.quote calls))
    in
    check_bool "timed-out batch exits 1" true (rc = 1);
    check_bool "timeout fault reported" true (contains out "timeout fault");
    check_bool "next call unaffected" true (contains out "3.141");
    (* flag validation *)
    let rc, _ =
      run_capture
        (Printf.sprintf
           "%s serve %s/quad_sweep.gpi --calls %s --timeout-ms 0" exe scripts
           (Filename.quote calls))
    in
    check_bool "zero timeout exits 2" true (rc = 2);
    let rc, _ =
      run_capture
        (Printf.sprintf "%s serve %s/quad_sweep.gpi --calls %s --max-errors 0"
           exe scripts (Filename.quote calls))
    in
    check_bool "zero max-errors exits 2" true (rc = 2)
  end

let test_serve_concurrency_flag () =
  require_available ();
  begin
    let calls = Filename.temp_file "oglaf_conc" ".txt" in
    let oc = open_out calls in
    output_string oc "pi_mid(1000)\npi_mid(2000)\npi_mid(3000)\npi_mid(4000)\n";
    close_out oc;
    (* overlapped batch, guided schedule, surviving an injected worker
       death: exit 0 with every call served in file order *)
    let rc, out =
      run_capture
        (Printf.sprintf
           "%s serve %s/quad_sweep.gpi --calls %s --threads 4 --schedule \
            guided:8 --concurrency 4 --retry 2 --inject kill-worker:1"
           exe scripts (Filename.quote calls))
    in
    check_bool "exit 0" true (rc = 0);
    let result_lines =
      List.filter
        (fun l -> contains l "pi_mid(")
        (String.split_on_char '\n' out)
    in
    Alcotest.(check int) "four results" 4 (List.length result_lines);
    check_bool "results in file order" true
      (List.mapi (fun i l -> contains l (Printf.sprintf "[line %d]" (i + 1)))
         result_lines
      |> List.for_all Fun.id);
    check_bool "approximates pi" true (contains out "3.141");
    (* flag validation *)
    let rc, _ =
      run_capture
        (Printf.sprintf "%s serve %s/quad_sweep.gpi --calls %s --concurrency 0"
           exe scripts (Filename.quote calls))
    in
    check_bool "zero concurrency exits 2" true (rc = 2)
  end

let test_serve_calls_parser () =
  let open Glaf_service in
  let calls = Serve.parse_calls "# c\n\nf(1, 2.5)\ng\nh()\n" in
  Alcotest.(check int) "three calls" 3 (List.length calls);
  let f = List.hd calls in
  check_bool "name" true (f.Serve.cl_name = "f");
  check_bool "args" true
    (f.Serve.cl_args
    = [ Glaf_fortran.Ast.Int_lit 1; Glaf_fortran.Ast.Real_lit (2.5, true) ]);
  check_bool "line numbers" true
    (List.map (fun c -> c.Serve.cl_line) calls = [ 3; 4; 5 ]);
  check_bool "bad arg raises" true
    (match Serve.parse_calls "f(oops)\n" with
    | exception Serve.Calls_error (1, _) -> true
    | _ -> false);
  check_bool "missing paren raises" true
    (match Serve.parse_calls "f(1\n" with
    | exception Serve.Calls_error (1, _) -> true
    | _ -> false)

let test_sloc_command () =
  require_available ();
  begin
    let src = Filename.temp_file "oglaf_sloc" ".f90" in
    let oc = open_out src in
    output_string oc "subroutine s()\ninteger :: i\ni = 1\nend subroutine s\n";
    close_out oc;
    let rc, out = run_capture (Printf.sprintf "%s sloc %s" exe (Filename.quote src)) in
    check_bool "exit 0" true (rc = 0);
    check_bool "lists subprogram" true (contains out "s")
  end

let fixtures = "../examples/fortran"
let sarb_fixture = fixtures ^ "/sarb_kernels.f90"

let test_sloc_error_contract () =
  require_available ();
  begin
    (* missing file: diagnosed run failure, one line, exit 1 *)
    let rc, out = run_capture (Printf.sprintf "%s sloc /nonexistent.f90" exe) in
    check_bool "missing file exits 1" true (rc = 1);
    check_bool "one-line diagnostic" true (contains out "oglaf:");
    check_bool "no backtrace" false (contains out "Raised at");
    (* unparsable file: exit 1 with the line number *)
    let src = Filename.temp_file "oglaf_sloc_bad" ".f90" in
    let oc = open_out src in
    output_string oc "subroutine broken(\nend";
    close_out oc;
    let rc, out = run_capture (Printf.sprintf "%s sloc %s" exe (Filename.quote src)) in
    check_bool "parse error exits 1" true (rc = 1);
    check_bool "parse diagnostic" true (contains out "parse error at line")
  end

let test_autopar_directives () =
  require_available ();
  begin
    let rc, out =
      run_capture
        (Printf.sprintf
           "%s autopar %s --mode directives --setup 'sarb_init_profiles()' \
            --call 'entropy_interface(1.5d0, 1.02d0)'"
           exe sarb_fixture)
    in
    check_bool "exit 0" true (rc = 0);
    check_bool "parallel do emitted" true (contains out "!$omp parallel do");
    check_bool "reduction clause" true (contains out "reduction(+:colq)");
    check_bool "verified" true (contains out "verified:");
    check_bool "report included" true (contains out "loop over")
  end

let test_autopar_lift () =
  require_available ();
  begin
    let rc, out =
      run_capture
        (Printf.sprintf
           "%s autopar %s --mode lift --kernel adjust2 --setup \
            'sarb_init_profiles()' --call 'adjust2(1.5d0, 1.02d0)'"
           exe sarb_fixture)
    in
    check_bool "exit 0" true (rc = 0);
    check_bool "lifted kernel emitted" true (contains out "adjust2_lifted");
    check_bool "verified" true (contains out "verified:")
  end

let test_autopar_error_contract () =
  require_available ();
  begin
    let rc, out =
      run_capture (Printf.sprintf "%s autopar %s --mode bogus" exe sarb_fixture)
    in
    check_bool "unknown mode exits 2" true (rc = 2);
    check_bool "mode diagnostic" true (contains out "unknown mode");
    let rc, out =
      run_capture (Printf.sprintf "%s autopar %s --mode lift" exe sarb_fixture)
    in
    check_bool "missing kernel exits 2" true (rc = 2);
    check_bool "kernel diagnostic" true (contains out "--kernel");
    let rc, out =
      run_capture
        (Printf.sprintf "%s autopar %s --mode lift --kernel nosuch" exe
           sarb_fixture)
    in
    check_bool "unknown kernel exits 1" true (rc = 1);
    check_bool "kernel named" true (contains out "nosuch");
    let rc, out =
      run_capture (Printf.sprintf "%s autopar /nonexistent.f90" exe)
    in
    check_bool "missing file exits 1" true (rc = 1);
    check_bool "no backtrace" false (contains out "Raised at");
    (* a broken --setup call must fail verification, not pass vacuously *)
    let rc, out =
      run_capture
        (Printf.sprintf
           "%s autopar %s --mode lift --kernel adjust2 --setup 'nope()' \
            --call 'adjust2(1.0d0, 1.0d0)'"
           exe sarb_fixture)
    in
    check_bool "broken setup exits 1" true (rc = 1);
    check_bool "names the failure" true (contains out "original run failed")
  end

(* the tune -> plan -> run pipeline: search once, persist the winning
   plan, and apply it on later runs without re-searching *)
let test_tune_plan_pipeline () =
  require_available ();
  let plan = Filename.temp_file "oglaf_plan" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove plan with Sys_error _ -> ())
  @@ fun () ->
  let rc, out =
    run_capture
      (Printf.sprintf
         "%s tune %s/quad_sweep.gpi --calls %s/quad_sweep.calls --repeats 1 \
          --out %s"
         exe scripts scripts plan)
  in
  check_bool "tune exit 0" true (rc = 0);
  check_bool "win/loss table printed" true (contains out "win/loss table");
  check_bool "bit-identity line printed" true
    (contains out "bit-identical to the serial baseline");
  check_bool "plan written" true (contains out "plan written");
  let rc, out =
    run_capture
      (Printf.sprintf "%s run %s/quad_sweep.gpi --plan %s --call pi_mid --arg 1000"
         exe scripts plan)
  in
  check_bool "run --plan exit 0" true (rc = 0);
  check_bool "plan consulted, no re-search" true
    (contains out "\"hits\":1" && contains out "\"misses\":0");
  (* a corrupted plan is a structured fault (exit 1), never a crash *)
  let oc = open_out plan in
  output_string oc "{\"version\":1,\"machine\":\"m\",\"entries\":[{\"loo";
  close_out oc;
  let rc, out =
    run_capture
      (Printf.sprintf "%s run %s/quad_sweep.gpi --plan %s --call pi_mid --arg 10"
         exe scripts plan)
  in
  check_bool "corrupted plan exits 1" true (rc = 1);
  check_bool "corrupted plan names the fault" true (contains out "plan fault")

let suites =
  [
    ( "cli",
      [
        Alcotest.test_case "compile fortran" `Quick test_compile_fortran;
        Alcotest.test_case "policy + serial" `Quick test_compile_policy_and_serial;
        Alcotest.test_case "c + opencl" `Quick test_compile_c_and_opencl;
        Alcotest.test_case "analyze" `Quick test_analyze;
        Alcotest.test_case "run" `Quick test_run_function;
        Alcotest.test_case "serve batch" `Quick test_serve_batch;
        Alcotest.test_case "serve calls parser" `Quick test_serve_calls_parser;
        Alcotest.test_case "exit codes" `Quick test_exit_codes;
        Alcotest.test_case "serve fault injection" `Quick
          test_serve_fault_injection;
        Alcotest.test_case "serve timeout + flag validation" `Quick
          test_serve_timeout_and_retry_flags;
        Alcotest.test_case "serve concurrency" `Quick
          test_serve_concurrency_flag;
        Alcotest.test_case "check legacy" `Quick test_check_against_legacy;
        Alcotest.test_case "sloc" `Quick test_sloc_command;
        Alcotest.test_case "sloc error contract" `Quick test_sloc_error_contract;
        Alcotest.test_case "autopar directives" `Quick test_autopar_directives;
        Alcotest.test_case "autopar lift" `Quick test_autopar_lift;
        Alcotest.test_case "autopar error contract" `Quick
          test_autopar_error_contract;
        Alcotest.test_case "tune plan pipeline" `Quick test_tune_plan_pipeline;
      ] );
  ]
