(* Fault-tolerance tests: taxonomy, injection-plan parsing, cooperative
   deadlines, batch isolation in the serving layer, and pool
   supervision (respawn and degraded sequential fallback).

   These tests mutate process-global pool/injection state, so every
   case that installs a plan or damages the pool restores the defaults
   in a [Fun.protect] finaliser — the suites run sequentially in one
   process. *)

open Glaf_runtime
open Glaf_service

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Same kernel as examples/scripts/quad_sweep.gpi: a parallel
   reduction with an explicit dynamic schedule, so served calls hit
   the pooled dispatch path. *)
let gpi_script =
  {|program fault_demo
module m
function pi_mid returns real8
  param n integer
  grid acc real8
  grid h real8
  step integrate
    set h = 1.0 / n
    set acc = 0.0
    foreach i = 1, n schedule dynamic:64
      set acc = acc + 4.0 / (1.0 + ((i - 0.5) * h) * ((i - 0.5) * h))
    end foreach
    return acc * h
end program
|}

let compiled = lazy (Serve.compile gpi_script)

(* Reset all global fault state; used as the finaliser of every test
   that touches it. *)
let restore () =
  Faultinject.clear ();
  Pool.reset_health ();
  Pool.set_max_respawns Pool.default_max_respawns

let with_clean_pool f = Fun.protect ~finally:restore f

(* --- taxonomy ------------------------------------------------------------ *)

let test_fault_strings () =
  let rt = Fault.Runtime_fault { call = "f"; line = 3; reason = "boom" } in
  check_string "runtime to_string" "runtime fault in f (calls line 3): boom"
    (Fault.to_string rt);
  check_string "parse to_string" "parse fault (line 2): bad"
    (Fault.to_string (Fault.Parse_fault { line = 2; reason = "bad" }));
  check_string "analysis to_string" "analysis fault: no"
    (Fault.to_string (Fault.Analysis_fault { reason = "no" }))

let test_fault_json () =
  check_string "runtime json"
    {|{"class":"runtime","call":"f","line":3,"reason":"boom"}|}
    (Fault.to_json (Fault.Runtime_fault { call = "f"; line = 3; reason = "boom" }));
  check_string "parse json" {|{"class":"parse","line":1,"reason":"a \"b\""}|}
    (Fault.to_json (Fault.Parse_fault { line = 1; reason = {|a "b"|} }));
  check_string "newline escaped"
    {|{"class":"analysis","reason":"x\ny"}|}
    (Fault.to_json (Fault.Analysis_fault { reason = "x\ny" }))

let test_fault_transience () =
  let rtf = Fault.Runtime_fault { call = "f"; line = 1; reason = "r" } in
  let tmo = Fault.Timeout_fault { call = "f"; line = 1; reason = "r" } in
  let pool = Fault.Pool_fault { call = "f"; line = 1; reason = "r" } in
  let ovl = Fault.Overload_fault { pending = 8; limit = 8 } in
  check_bool "timeout transient" true (Fault.is_transient tmo);
  check_bool "pool transient" true (Fault.is_transient pool);
  check_bool "overload transient" true (Fault.is_transient ovl);
  check_bool "runtime deterministic" false (Fault.is_transient rtf);
  check_bool "parse deterministic" false
    (Fault.is_transient (Fault.Parse_fault { line = 1; reason = "r" }));
  check_int "six classes" 6 (List.length Fault.all_classes);
  check_string "class name" "timeout" (Fault.cls_name (Fault.cls_of tmo));
  check_string "overload class name" "overload"
    (Fault.cls_name (Fault.cls_of ovl));
  check_string "overload to_string"
    "overload fault: server overloaded: 8 requests pending (max-pending 8)"
    (Fault.to_string ovl)

(* JSON-schema stability: the socket protocol and CI scrapers key on
   these exact field names and class strings.  A rename must be a
   deliberate protocol change, not a refactor side effect. *)
let test_fault_json_schema_stability () =
  check_string "class name list pinned"
    "parse,analysis,runtime,timeout,pool,overload"
    (String.concat "," (List.map Fault.cls_name Fault.all_classes));
  check_string "parse schema"
    {|{"class":"parse","line":7,"reason":"r"}|}
    (Fault.to_json (Fault.Parse_fault { line = 7; reason = "r" }));
  check_string "analysis schema"
    {|{"class":"analysis","reason":"r"}|}
    (Fault.to_json (Fault.Analysis_fault { reason = "r" }));
  check_string "runtime schema"
    {|{"class":"runtime","call":"f","line":3,"reason":"r"}|}
    (Fault.to_json (Fault.Runtime_fault { call = "f"; line = 3; reason = "r" }));
  check_string "timeout schema"
    {|{"class":"timeout","call":"f","line":3,"reason":"r"}|}
    (Fault.to_json (Fault.Timeout_fault { call = "f"; line = 3; reason = "r" }));
  check_string "pool schema"
    {|{"class":"pool","call":"f","line":3,"reason":"r"}|}
    (Fault.to_json (Fault.Pool_fault { call = "f"; line = 3; reason = "r" }));
  check_string "overload schema"
    {|{"class":"overload","pending":9,"limit":4,"reason":"server overloaded: 9 requests pending (max-pending 4)"}|}
    (Fault.to_json (Fault.Overload_fault { pending = 9; limit = 4 }))

(* --- injection plan grammar ---------------------------------------------- *)

let test_parse_plan_ok () =
  (match Faultinject.parse_plan "fail-region:2" with
  | Ok [ Faultinject.Fail_region 2 ] -> ()
  | _ -> Alcotest.fail "fail-region:2");
  (match Faultinject.parse_plan "delay-chunk:1:50, kill-worker:0" with
  | Ok
      [
        Faultinject.Delay_chunk { region = 1; delay_s };
        Faultinject.Kill_worker { worker = 0; times = 1 };
      ] ->
    check_bool "50ms" true (abs_float (delay_s -. 0.05) < 1e-9)
  | _ -> Alcotest.fail "mixed plan");
  match Faultinject.parse_plan "kill-worker:3:4" with
  | Ok [ Faultinject.Kill_worker { worker = 3; times = 4 } ] -> ()
  | _ -> Alcotest.fail "kill-worker:3:4"

let test_parse_plan_errors () =
  let bad s =
    match Faultinject.parse_plan s with Error _ -> true | Ok _ -> false
  in
  check_bool "empty plan" true (bad "");
  check_bool "region 0 rejected" true (bad "fail-region:0");
  check_bool "negative worker rejected" true (bad "kill-worker:-1");
  check_bool "unknown directive" true (bad "explode:3");
  check_bool "bad delay" true (bad "delay-chunk:1:zap")

(* --- cancellation tokens -------------------------------------------------- *)

let test_token_cancel () =
  let tk = Fault.make_token () in
  check_bool "fresh token live" false (Fault.expired tk);
  Fault.check tk;
  Fault.cancel tk;
  check_bool "cancelled token expired" true (Fault.expired tk);
  check_bool "check raises Cancelled" true
    (match Fault.check tk with
    | exception Fault.Cancelled _ -> true
    | () -> false)

let test_token_ambient () =
  check_bool "no ambient token by default" true (Fault.current () = None);
  Fault.check_current ();
  let tk = Fault.make_token () in
  Fault.with_token tk (fun () ->
      check_bool "installed" true (Fault.current () = Some tk));
  check_bool "restored" true (Fault.current () = None)

let test_token_cancels_pool_region () =
  let tk = Fault.make_token () in
  Fault.cancel tk;
  check_bool "pooled region observes cancellation" true
    (match
       Fault.with_token tk (fun () ->
           Pool.run ~threads:4 ~lo:1 ~hi:10_000 (fun _ _ _ -> ()))
     with
    | exception Fault.Cancelled _ -> true
    | () -> false);
  (* the pool is unharmed: the next region runs normally *)
  let n = Atomic.make 0 in
  Pool.run ~threads:4 ~lo:1 ~hi:100 (fun _ lo hi ->
      ignore (Atomic.fetch_and_add n (hi - lo + 1)));
  check_int "pool fine afterwards" 100 (Atomic.get n)

(* --- serving: batch isolation -------------------------------------------- *)

let parse_calls_exn s = Serve.parse_calls s

let test_runtime_error_mid_batch () =
  let c = Lazy.force compiled in
  let calls = parse_calls_exn "pi_mid(1000)\nnope(1)\npi_mid(2000)" in
  let b = Serve.run_calls ~threads:2 c calls in
  check_int "two ok" 2 b.Serve.b_ok;
  check_int "one failed" 1 b.Serve.b_failed;
  check_int "none skipped" 0 b.Serve.b_skipped;
  check_bool "not aborted" false b.Serve.b_aborted;
  check_bool "runtime class counted" true
    (b.Serve.b_by_class = [ (Fault.Runtime, 1) ]);
  (* served in file order, failure sandwiched between successes *)
  (match b.Serve.b_results with
  | [ (_, Ok o1); (_, Error (Fault.Runtime_fault f)); (_, Ok o3) ] ->
    check_bool "first value near pi" true
      (match o1.Serve.oc_value with
      | Some v -> abs_float (Value.to_float v -. Float.pi) < 1e-3
      | None -> false);
    check_int "fault carries calls line" 2 f.line;
    check_string "fault names the call" "nope" f.call;
    check_bool "third call unaffected" true (o3.Serve.oc_value <> None)
  | _ -> Alcotest.fail "unexpected batch shape");
  check_bool "summary mentions the fault" true
    (let s = Format.asprintf "%a" Serve.pp_batch_summary b in
     let contains hay needle =
       let lh = String.length hay and ln = String.length needle in
       let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
       go 0
     in
     contains s "2 ok, 1 failed" && contains s "runtime:1")

let test_max_errors_aborts () =
  let c = Lazy.force compiled in
  let calls = parse_calls_exn "nope(1)\nnope(2)\npi_mid(1000)" in
  let served = ref 0 in
  let b =
    Serve.run_calls ~threads:2 ~max_errors:1
      ~on_result:(fun _ _ -> incr served)
      c calls
  in
  check_int "aborted after first failure" 1 !served;
  check_int "no successes" 0 b.Serve.b_ok;
  check_int "one failure" 1 b.Serve.b_failed;
  check_int "rest skipped" 2 b.Serve.b_skipped;
  check_bool "flagged aborted" true b.Serve.b_aborted

let test_injected_region_failure () =
  with_clean_pool @@ fun () ->
  let c = Lazy.force compiled in
  Faultinject.set_plan [ Faultinject.Fail_region 1 ];
  (match Serve.run_call ~threads:2 c (List.hd (parse_calls_exn "pi_mid(1000)")) with
  | Error (Fault.Runtime_fault f) ->
    check_string "names the directive" "injected fault: fail-region:1" f.reason
  | _ -> Alcotest.fail "expected injected runtime fault");
  Faultinject.clear ();
  match Serve.run_call ~threads:2 c (List.hd (parse_calls_exn "pi_mid(1000)")) with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "clean call failed: %s" (Fault.to_string f)

(* --- serving: per-call deadline ------------------------------------------ *)

let test_timeout_fires_and_batch_recovers () =
  with_clean_pool @@ fun () ->
  let c = Lazy.force compiled in
  (* every chunk of the first region sleeps 50ms, so a 20ms deadline
     fires at the second chunk boundary whatever the machine speed *)
  Faultinject.set_plan
    [ Faultinject.Delay_chunk { region = 1; delay_s = 0.05 } ];
  (match
     Serve.run_call ~threads:4 ~deadline_s:0.02 c
       (List.hd (parse_calls_exn "pi_mid(100000)"))
   with
  | Error (Fault.Timeout_fault f) ->
    check_bool "reason names the deadline" true
      (f.reason = "deadline of 0.02s exceeded")
  | Error f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)
  | Ok _ -> Alcotest.fail "deadline did not fire");
  Faultinject.clear ();
  (* next call on the same compiled script is unaffected *)
  match Serve.run_call ~threads:4 ~deadline_s:10.0 c
          (List.hd (parse_calls_exn "pi_mid(1000)"))
  with
  | Ok o ->
    check_bool "value near pi" true
      (match o.Serve.oc_value with
      | Some v -> abs_float (Value.to_float v -. Float.pi) < 1e-3
      | None -> false)
  | Error f -> Alcotest.failf "recovery call failed: %s" (Fault.to_string f)

(* --- pool supervision ----------------------------------------------------- *)

let test_worker_crash_respawns () =
  with_clean_pool @@ fun () ->
  (* a healthy warm-up region, then kill resident worker 0 once *)
  Pool.run ~threads:4 ~lo:1 ~hi:1000 (fun _ _ _ -> ());
  let respawns0 = (Pool.stats ()).Pool.respawns in
  Faultinject.set_plan [ Faultinject.Kill_worker { worker = 0; times = 1 } ];
  check_bool "region with dead worker raises Pool_error" true
    (match Pool.run ~threads:4 ~lo:1 ~hi:10_000 (fun _ _ _ -> ()) with
    | exception Fault.Pool_error _ -> true
    | () -> false);
  Faultinject.clear ();
  (* next region entry reaps the corpse, respawns, and serves fully *)
  let n = Atomic.make 0 in
  Pool.run ~threads:4 ~lo:1 ~hi:10_000 (fun _ lo hi ->
      ignore (Atomic.fetch_and_add n (hi - lo + 1)));
  check_int "all iterations ran after heal" 10_000 (Atomic.get n);
  check_bool "supervisor respawned the worker" true
    ((Pool.stats ()).Pool.respawns > respawns0);
  check_bool "pool healthy again" true (Pool.health () = Pool.Healthy)

(* Static partial-sum reduction: chunk assignment is a pure function
   of (lo, hi, team), so pooled and degraded-sequential runs must
   combine in the same order and agree bit-for-bit. *)
let harmonic_sum ~threads n =
  let partials = Array.make threads 0.0 in
  Pool.run ~threads ~sched:Sched.Static ~lo:1 ~hi:n (fun t lo hi ->
      let s = ref 0.0 in
      for i = lo to hi do
        s := !s +. (1.0 /. float_of_int i)
      done;
      partials.(t) <- !s);
  Array.fold_left ( +. ) 0.0 partials

let test_degraded_sequential_fallback () =
  with_clean_pool @@ fun () ->
  let reference = harmonic_sum ~threads:4 50_000 in
  (* zero respawn budget: the first worker death degrades the pool *)
  Pool.set_max_respawns 0;
  Faultinject.set_plan [ Faultinject.Kill_worker { worker = 0; times = 1 } ];
  (match Pool.run ~threads:4 ~lo:1 ~hi:10_000 (fun _ _ _ -> ()) with
  | exception Fault.Pool_error _ -> ()
  | () -> Alcotest.fail "expected Pool_error from the killed worker");
  Faultinject.clear ();
  Pool.reset_stats ();
  let degraded = harmonic_sum ~threads:4 50_000 in
  check_bool "pool reports degraded" true
    (match Pool.health () with Pool.Degraded _ -> true | Pool.Healthy -> false);
  check_bool "region ran sequentially" true
    ((Pool.stats ()).Pool.seq_regions >= 1);
  check_bool "degraded result bit-identical to pooled" true
    (Int64.equal (Int64.bits_of_float reference) (Int64.bits_of_float degraded));
  (* reset_health restores parallel service *)
  Pool.reset_health ();
  let healed = harmonic_sum ~threads:4 50_000 in
  check_bool "healthy after reset" true (Pool.health () = Pool.Healthy);
  check_bool "healed result matches too" true
    (Int64.equal (Int64.bits_of_float reference) (Int64.bits_of_float healed))

let test_transient_retry_succeeds () =
  with_clean_pool @@ fun () ->
  let c = Lazy.force compiled in
  (* warm the pool so the kill hits a resident worker inside the call *)
  Pool.run ~threads:4 ~lo:1 ~hi:1000 (fun _ _ _ -> ());
  Faultinject.set_plan [ Faultinject.Kill_worker { worker = 0; times = 1 } ];
  let call = List.hd (parse_calls_exn "pi_mid(100000)") in
  (* without retries the injected pool fault surfaces... *)
  (match Serve.run_call ~threads:4 c call with
  | Error (Fault.Pool_fault _) -> ()
  | Error f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)
  | Ok _ -> Alcotest.fail "expected a pool fault");
  Faultinject.clear ();
  Faultinject.set_plan [ Faultinject.Kill_worker { worker = 0; times = 1 } ];
  (* ...with one retry the pool heals between attempts and the call
     lands (the kill directive fires exactly once) *)
  match Serve.run_call ~threads:4 ~retries:1 ~backoff_s:0.01 c call with
  | Ok o ->
    check_bool "retried call returns pi" true
      (match o.Serve.oc_value with
      | Some v -> abs_float (Value.to_float v -. Float.pi) < 1e-3
      | None -> false)
  | Error f -> Alcotest.failf "retry did not recover: %s" (Fault.to_string f)

(* --- calls-file hardening ------------------------------------------------- *)

let test_calls_parser_rejects_malformed () =
  let rejects s =
    match Serve.parse_calls s with
    | exception Serve.Calls_error _ -> true
    | _ -> false
  in
  check_bool "empty argument slot" true (rejects "f(1,,2)");
  check_bool "leading empty slot" true (rejects "f(,1)");
  check_bool "trailing text after )" true (rejects "f(1) garbage");
  check_bool "missing close paren" true (rejects "f(1");
  check_bool "non-literal argument" true (rejects "f(x)");
  check_bool "bad name" true (rejects "f g(1)");
  (* the errors carry the calls-file line number *)
  (match Serve.parse_calls "pi_mid(1)\nf(1,,2)" with
  | exception Serve.Calls_error (ln, msg) ->
    check_int "line number" 2 ln;
    check_bool "names the empty slot" true
      (msg = "empty argument slot (position 2)")
  | _ -> Alcotest.fail "expected Calls_error");
  (* well-formed lines still parse *)
  match Serve.parse_calls "# comment\n\nsaxpy(1000, 2.5)\ndot\n" with
  | [ c1; c2 ] ->
    check_string "name" "saxpy" c1.Serve.cl_name;
    check_int "two args" 2 (List.length c1.Serve.cl_args);
    check_int "line numbers kept" 4 c2.Serve.cl_line
  | _ -> Alcotest.fail "valid calls file misparsed"

(* Files written on Windows or piped through tools that add CRLF /
   trailing blank lines must parse identically; a single multi-MB line
   must be rejected up front with the line number, not ground through
   trim/split. *)
let test_calls_parser_crlf_blank_oversize () =
  (match Serve.parse_calls "pi_mid(10)\r\nsaxpy(1, 2.5)\r\n\r\n\n" with
  | [ c1; c2 ] ->
    check_string "crlf name 1" "pi_mid" c1.Serve.cl_name;
    check_string "crlf name 2" "saxpy" c2.Serve.cl_name;
    check_int "crlf line 2" 2 c2.Serve.cl_line;
    check_int "crlf args survive trim" 2 (List.length c2.Serve.cl_args)
  | _ -> Alcotest.fail "CRLF calls file misparsed");
  (* comment lines with CRLF endings are still comments *)
  (match Serve.parse_calls "# c\r\npi_mid(1)\r" with
  | [ c ] -> check_int "crlf comment skipped" 2 c.Serve.cl_line
  | _ -> Alcotest.fail "CRLF comment misparsed");
  let big = String.make (Serve.max_call_line_bytes + 1) 'a' in
  (match Serve.parse_calls big with
  | exception Serve.Calls_error (1, msg) ->
    check_bool "oversize names the cap" true
      (msg = Printf.sprintf "line exceeds %d bytes" Serve.max_call_line_bytes)
  | exception Serve.Calls_error (ln, _) ->
    Alcotest.failf "oversize reported on line %d, expected 1" ln
  | _ -> Alcotest.fail "oversized line accepted");
  (* the cap is per line: a valid file with a later oversized line
     reports that line's number *)
  match Serve.parse_calls ("pi_mid(1)\n" ^ big) with
  | exception Serve.Calls_error (2, _) -> ()
  | exception Serve.Calls_error (ln, _) ->
    Alcotest.failf "oversize reported on line %d, expected 2" ln
  | _ -> Alcotest.fail "oversized second line accepted"

(* --- --inject vs OGLAF_INJECT precedence ---------------------------------- *)

(* The contract (documented in faultinject.ml and the README): the
   explicit --inject flag replaces any plan OGLAF_INJECT installed at
   load.  Driven through the real CLI because the precedence lives in
   process startup order, not in library code. *)
let test_inject_precedence_flag_wins () =
  let exe = "../bin/oglaf.exe" in
  if not (Sys.file_exists exe) then
    Alcotest.fail (Printf.sprintf "CLI binary %s is missing" exe);
  let run_capture cmd =
    let out = Filename.temp_file "oglaf_inj" ".out" in
    let rc =
      Sys.command (Printf.sprintf "%s > %s 2>&1" cmd (Filename.quote out))
    in
    let ic = open_in out in
    let content = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove out;
    (rc, content)
  in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let serve = "serve ../examples/scripts/quad_sweep.gpi \
               --calls ../examples/scripts/quad_sweep.calls --threads 2" in
  (* env alone: the plan fails the first region -> first call faults *)
  let rc, out =
    run_capture (Printf.sprintf "OGLAF_INJECT=fail-region:1 %s %s" exe serve)
  in
  check_bool "env plan installs (exit 1)" true (rc = 1);
  check_bool "env plan fired" true (contains out "fail-region:1");
  (* env + flag: the flag's region-2 plan replaces the env's region-1
     plan entirely — call 1 succeeds, call 2 faults *)
  let rc, out =
    run_capture
      (Printf.sprintf "OGLAF_INJECT=fail-region:1 %s %s --inject fail-region:2"
         exe serve)
  in
  check_bool "flag plan exit 1" true (rc = 1);
  check_bool "flag plan fired" true (contains out "fail-region:2");
  check_bool "env plan fully replaced" false (contains out "fail-region:1")

let suites =
  [
    ( "faults.taxonomy",
      [
        Alcotest.test_case "to_string" `Quick test_fault_strings;
        Alcotest.test_case "to_json" `Quick test_fault_json;
        Alcotest.test_case "json schema stability" `Quick
          test_fault_json_schema_stability;
        Alcotest.test_case "transience" `Quick test_fault_transience;
      ] );
    ( "faults.inject",
      [
        Alcotest.test_case "plan parses" `Quick test_parse_plan_ok;
        Alcotest.test_case "plan errors" `Quick test_parse_plan_errors;
        Alcotest.test_case "injected region failure" `Quick
          test_injected_region_failure;
        Alcotest.test_case "--inject wins over OGLAF_INJECT" `Quick
          test_inject_precedence_flag_wins;
      ] );
    ( "faults.deadline",
      [
        Alcotest.test_case "token cancel" `Quick test_token_cancel;
        Alcotest.test_case "ambient token" `Quick test_token_ambient;
        Alcotest.test_case "cancels pool region" `Quick
          test_token_cancels_pool_region;
        Alcotest.test_case "per-call timeout" `Quick
          test_timeout_fires_and_batch_recovers;
      ] );
    ( "faults.serve",
      [
        Alcotest.test_case "runtime error mid-batch" `Quick
          test_runtime_error_mid_batch;
        Alcotest.test_case "max-errors abort" `Quick test_max_errors_aborts;
        Alcotest.test_case "calls parser hardening" `Quick
          test_calls_parser_rejects_malformed;
        Alcotest.test_case "calls parser crlf/blank/oversize" `Quick
          test_calls_parser_crlf_blank_oversize;
      ] );
    ( "faults.supervision",
      [
        Alcotest.test_case "worker respawn" `Quick test_worker_crash_respawns;
        Alcotest.test_case "degraded sequential fallback" `Quick
          test_degraded_sequential_fallback;
        Alcotest.test_case "transient retry" `Quick
          test_transient_retry_succeeds;
      ] );
  ]
