(* The variant autotuner: variant grammar, structural digests, plan
   persistence (round-trip, corruption, staleness), plan application
   counters, the static cost model's schedule ranking, and one small
   end-to-end tune. *)

open Glaf_tune
module Ast = Glaf_fortran.Ast
module Parser = Glaf_fortran.Parser
module Machine = Glaf_perf.Machine
module Cost = Glaf_perf.Cost

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* a single parallel-safe directive loop, no reduction: every variant
   is bit-identical even at the measured thread count *)
let tiny_src =
  {|
module tinyx
  implicit none
  real*8 :: a(64)
  real*8 :: b(64)
end module tinyx

subroutine tiny_init()
  use tinyx
  implicit none
  integer :: i
  do i = 1, 64
    a(i) = 0.5d0 * i
    b(i) = 0.0d0
  end do
end subroutine tiny_init

subroutine tiny_sweep()
  use tinyx
  implicit none
  integer :: i
  real*8 :: t
!$omp parallel do private(i, t)
  do i = 1, 64
    t = a(i) * 1.25d0
    b(i) = t + a(i) / (1.0d0 + t)
  end do
!$omp end parallel do
end subroutine tiny_sweep
|}

(* the SARB entropy-exchange shape: collapse(2) over a 2 x 60 space
   with a ~25-iteration stencil body *)
let collapse_src =
  {|
module colx
  implicit none
  real*8 :: flux2(2, 60)
  real*8 :: tl(61)
  real*8 :: ent2(2, 60)
end module colx

subroutine col_sweep()
  use colx
  implicit none
  integer :: idir, k, j
  real*8 :: acc
!$omp parallel do private(idir, k, j, acc) collapse(2)
  do idir = 1, 2
    do k = 1, 60
      acc = 0.0d0
      do j = max(k - 12, 1), min(k + 12, 60)
        acc = acc + flux2(idir, j) * (tl(j) - tl(k))
      end do
      ent2(idir, k) = acc
    end do
  end do
!$omp end parallel do
end subroutine col_sweep
|}

let first_loop cu =
  let found = ref None in
  List.iter
    (fun sp ->
      Ast.fold_stmts
        (fun () s ->
          match s with
          | Ast.Do l when !found = None && l.Ast.do_omp <> None ->
            found := Some l
          | _ -> ())
        () sp.Ast.sub_body)
    (Ast.all_subprograms cu);
  match !found with
  | Some l -> l
  | None -> Alcotest.fail "fixture has no directive loop"

(* --- variant grammar ---------------------------------------------------- *)

let test_variant_roundtrip () =
  let cu = Parser.parse_string collapse_src in
  let l = first_loop cu in
  let variants = Variant.enumerate l in
  check_bool "search space is non-trivial" true (List.length variants > 20);
  List.iter
    (fun v ->
      let s = Variant.to_string v in
      match Variant.of_string s with
      | Some v' -> check_bool ("roundtrip " ^ s) true (Variant.equal v v')
      | None -> Alcotest.failf "%s did not parse back" s)
    variants;
  (match Variant.of_string "static:4+collapse:2" with
  | Some (Variant.Par { sched = Some (Ast.Static_chunk 4); collapse = 2 }) -> ()
  | _ -> Alcotest.fail "static:4+collapse:2");
  check_bool "junk rejected" true (Variant.of_string "quantum:3" = None);
  check_bool "collapse:1 rejected" true
    (Variant.of_string "static+collapse:1" = None)

let test_variant_apply_preserves_clauses () =
  let cu = Parser.parse_string collapse_src in
  let l = first_loop cu in
  let d0 = Option.get l.Ast.do_omp in
  let l' =
    Variant.apply (Variant.Par { sched = Some (Ast.Dynamic 4); collapse = 1 }) l
  in
  let d' = Option.get l'.Ast.do_omp in
  check_bool "private list survives" true
    (d'.Ast.omp_private = d0.Ast.omp_private);
  check_bool "reduction list survives" true
    (d'.Ast.omp_reduction = d0.Ast.omp_reduction);
  check_int "collapse rewritten" 1 d'.Ast.omp_collapse;
  check_bool "schedule rewritten" true
    (d'.Ast.omp_schedule = Some (Ast.Dynamic 4));
  let stripped = Variant.apply Variant.Serial l in
  check_bool "serial strips the directive" true (stripped.Ast.do_omp = None)

let test_digest_ignores_directives () =
  let cu = Parser.parse_string collapse_src in
  let l = first_loop cu in
  let d0 = Variant.loop_digest l in
  List.iter
    (fun v ->
      check_string
        ("digest stable under " ^ Variant.to_string v)
        d0
        (Variant.loop_digest (Variant.apply v l)))
    (Variant.enumerate l);
  let other = first_loop (Parser.parse_string tiny_src) in
  check_bool "different bodies hash differently" true
    (d0 <> Variant.loop_digest other)

(* --- plan persistence --------------------------------------------------- *)

let sample_entry ?(digest = String.make 32 'a') ?(loop = "tiny_sweep#1") () =
  {
    Plan.pe_loop = loop;
    pe_digest = digest;
    pe_variant = Variant.Par { sched = Some (Ast.Guided 4); collapse = 1 };
    pe_default = Variant.Par { sched = None; collapse = 1 };
    pe_ms = 1.25;
    pe_default_ms = 2.5;
    pe_serial_ms = 3.125;
    pe_verified = 30;
    pe_model_agrees = true;
  }

let test_plan_roundtrip () =
  let p = Plan.make ~machine:"test rig" [ sample_entry () ] in
  match Plan.of_json (Plan.to_json p) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok p' ->
    let e = sample_entry () in
    let e' =
      match Plan.find p' e.Plan.pe_digest with
      | Some x -> x
      | None -> Alcotest.fail "entry lost in roundtrip"
    in
    check_bool "machine survives" true (p'.Plan.p_machine = "test rig");
    check_bool "variant survives" true
      (Variant.equal e.Plan.pe_variant e'.Plan.pe_variant);
    check_bool "default survives" true
      (Variant.equal e.Plan.pe_default e'.Plan.pe_default);
    check_bool "timings survive bit-exactly" true
      (e.Plan.pe_ms = e'.Plan.pe_ms
      && e.Plan.pe_default_ms = e'.Plan.pe_default_ms
      && e.Plan.pe_serial_ms = e'.Plan.pe_serial_ms);
    check_int "verified survives" e.Plan.pe_verified e'.Plan.pe_verified

let test_plan_corruption () =
  let reject label s =
    check_bool label true (Result.is_error (Plan.of_json s))
  in
  reject "empty" "";
  reject "not json" "pick the fastest one please";
  reject "truncated" "{\"version\":1,\"machine\":\"m\",\"entries\":[{\"loo";
  reject "wrong version" "{\"version\":99,\"machine\":\"m\",\"entries\":[]}";
  reject "bad digest"
    "{\"version\":1,\"machine\":\"m\",\"entries\":[{\"loop\":\"l#1\",\
     \"digest\":\"zz\",\"variant\":\"static\",\"default\":\"default\",\
     \"ms\":1,\"default_ms\":1,\"serial_ms\":1,\"verified\":1,\
     \"model_agrees\":true}]}";
  reject "bad variant"
    "{\"version\":1,\"machine\":\"m\",\"entries\":[{\"loop\":\"l#1\",\
     \"digest\":\"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\",\
     \"variant\":\"warp:9\",\"default\":\"default\",\"ms\":1,\
     \"default_ms\":1,\"serial_ms\":1,\"verified\":1,\
     \"model_agrees\":true}]}";
  (* load never raises on unreadable files either *)
  check_bool "missing file is a structured error" true
    (Result.is_error (Plan.load "/nonexistent/plan.json"))

let test_plan_apply_counters () =
  let cu = Parser.parse_string tiny_src in
  let l = first_loop cu in
  let digest = Variant.loop_digest l in
  let machine = Plan.default_machine_key () in
  (* a matching entry rewrites the loop and counts a hit *)
  let p = Plan.make ~machine [ sample_entry ~digest () ] in
  let cu' = Plan.apply p cu in
  let l' = first_loop cu' in
  check_bool "winner applied" true
    ((Option.get l'.Ast.do_omp).Ast.omp_schedule = Some (Ast.Guided 4));
  let s = Plan.stats p in
  check_int "one apply" 1 s.Plan.st_applies;
  check_int "one hit" 1 s.Plan.st_hits;
  check_int "no misses" 0 s.Plan.st_misses;
  check_int "no stale entries" 0 s.Plan.st_stale;
  (* a stale digest is ignored: loop untouched, counted stale + miss *)
  let stale = Plan.make ~machine [ sample_entry ~digest:(String.make 32 'b') () ] in
  let cu2 = Plan.apply stale cu in
  let l2 = first_loop cu2 in
  check_bool "stale entry leaves the loop alone" true
    ((Option.get l2.Ast.do_omp).Ast.omp_schedule = None);
  let s2 = Plan.stats stale in
  check_int "stale counted" 1 s2.Plan.st_stale;
  check_int "unmatched loop is a miss" 1 s2.Plan.st_misses;
  check_int "no hits" 0 s2.Plan.st_hits;
  (* a foreign machine profile never applies *)
  let foreign = Plan.make ~machine:"some other box" [ sample_entry ~digest () ] in
  let cu3 = Plan.apply foreign cu in
  check_bool "foreign plan leaves the unit alone" true
    ((Option.get (first_loop cu3).Ast.do_omp).Ast.omp_schedule = None)

(* --- cost model schedule ranking ---------------------------------------- *)

(* The model must rank schedule variants the way measurement does on
   the fixtures: fine-grained dynamic dispatch costs more than one
   contiguous block per thread.  This is a pure-model property (no
   wall clock), so it is exact and stable. *)
let test_cost_schedule_ranking () =
  let rank src sub collapse =
    let cu = Parser.parse_string src in
    let l = first_loop cu in
    let cfg =
      { (Cost.default_config (Machine.interp_host ())) with Cost.threads = 2 }
    in
    let time_of v =
      let cu' =
        Plan.apply
          (Plan.make
             ~machine:(Plan.default_machine_key ())
             [ { (sample_entry ~digest:(Variant.loop_digest l) ()) with
                 Plan.pe_variant = v } ])
          cu
      in
      Cost.time cfg cu' sub
    in
    let static = time_of (Variant.Par { sched = Some Ast.Static; collapse })
    and dyn1 = time_of (Variant.Par { sched = Some (Ast.Dynamic 1); collapse })
    and dyn64 =
      time_of (Variant.Par { sched = Some (Ast.Dynamic 64); collapse })
    in
    check_bool (sub ^ ": dynamic:1 dispatch overhead ranks worst") true
      (dyn1 > static);
    check_bool (sub ^ ": coarser chunks cost less than dynamic:1") true
      (dyn1 > dyn64);
    check_bool (sub ^ ": model separates the variants") true (dyn1 > 1.0)
  in
  (* SARB collapse nest (120 collapsed iterations) and the FUN3D
     edge-loop shape (one flat sweep) *)
  rank collapse_src "col_sweep" 2;
  rank tiny_src "tiny_sweep" 1

(* --- end-to-end tune ----------------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_tune_end_to_end () =
  let cu = Parser.parse_string tiny_src in
  let r =
    Tuner.tune ~repeats:1 ~setup:[ ("tiny_init", []) ]
      ~calls:[ ("tiny_sweep", []) ] cu
  in
  check_int "one tunable site" 1 (List.length r.Tuner.tn_loops);
  check_bool "composed program verified" true (r.Tuner.tn_compose_errors = []);
  let l = List.hd r.Tuner.tn_loops in
  check_bool "winner verified at least at 1 thread" true (l.Tuner.lr_verified > 0);
  check_bool "winner no slower than default" true
    (l.Tuner.lr_winner_ms <= l.Tuner.lr_default_ms *. 1.001);
  let table = Tuner.table_string r in
  check_bool "table mentions the loop" true (contains table "tiny_sweep#1");
  check_bool "table reports the win/loss column" true (contains table "result");
  (* re-tuning with the produced plan skips the search entirely *)
  let r2 =
    Tuner.tune ~repeats:1 ~plan:r.Tuner.tn_plan
      ~setup:[ ("tiny_init", []) ] ~calls:[ ("tiny_sweep", []) ] cu
  in
  check_int "every loop served from the plan" 1 r2.Tuner.tn_cached;
  let l2 = List.hd r2.Tuner.tn_loops in
  check_bool "cached row is flagged" true l2.Tuner.lr_cached;
  check_bool "cached decision identical" true
    (Variant.equal l.Tuner.lr_winner l2.Tuner.lr_winner)

let suites =
  [
    ( "tune.variant",
      [
        Alcotest.test_case "roundtrip" `Quick test_variant_roundtrip;
        Alcotest.test_case "apply preserves clauses" `Quick
          test_variant_apply_preserves_clauses;
        Alcotest.test_case "digest ignores directives" `Quick
          test_digest_ignores_directives;
      ] );
    ( "tune.plan",
      [
        Alcotest.test_case "json roundtrip" `Quick test_plan_roundtrip;
        Alcotest.test_case "corruption rejected" `Quick test_plan_corruption;
        Alcotest.test_case "apply counters" `Quick test_plan_apply_counters;
      ] );
    ( "tune.model",
      [
        Alcotest.test_case "schedule ranking" `Quick test_cost_schedule_ranking;
      ] );
    ( "tune.tuner",
      [ Alcotest.test_case "end to end" `Quick test_tune_end_to_end ] );
  ]
