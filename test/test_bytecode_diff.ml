(* Differential tests of the two execution engines: every program is
   run twice — bytecode VM (the default) and the tree-walking
   interpreter ([--no-bytecode]) — and the observable results must be
   bit-identical: function values compared on their IEEE-754 bit
   patterns, arrays cell by cell, PRINT output and runtime-error
   messages as exact strings.  Coverage spans the shipped example
   scripts, the SARB and FUN3D case-study workloads, all four loop
   schedules, concurrent batch serving and fault-injection plans. *)

open Glaf_fortran
open Glaf_runtime
open Glaf_interp
open Glaf_workloads
open Glaf_optimizer
module Serve = Glaf_service.Serve

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let scripts = "../examples/scripts"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Bit-exact value equality: reals compare on their bit patterns, so
   +0.0 vs -0.0 or any ULP drift between the engines is a failure. *)
let value_eq a b =
  match (a, b) with
  | Value.Real x, Value.Real y -> Int64.bits_of_float x = Int64.bits_of_float y
  | a, b -> a = b

let value_opt_eq a b =
  match (a, b) with
  | Some a, Some b -> value_eq a b
  | None, None -> true
  | _ -> false

let pp_value_opt = function
  | Some v -> Value.to_string v
  | None -> "(none)"

(* --- one call, both engines --------------------------------------------- *)

type run_out = {
  r_value : Value.t option option;  (** [None] when the call raised *)
  r_output : string;
  r_error : string option;
}

let run_engine ~bytecode ?(threads = 1) ?sched cu fname args =
  let buf = Buffer.create 64 in
  let st = Interp.make_state ~printer:(Buffer.add_string buf) cu in
  Interp.set_threads st threads;
  (match sched with Some s -> Interp.set_schedule st s | None -> ());
  Interp.set_bytecode st bytecode;
  let finish value error =
    { r_value = value; r_output = Buffer.contents buf; r_error = error }
  in
  match Interp.call st fname args with
  | v -> finish (Some v) None
  | exception Interp.Fortran_error m -> finish None (Some ("fortran: " ^ m))
  | exception Value.Runtime_error m -> finish None (Some ("value: " ^ m))
  | exception Farray.Bounds_error m -> finish None (Some ("bounds: " ^ m))
  | exception Faultinject.Injected m -> finish None (Some ("inject: " ^ m))

let assert_same name ?threads ?sched cu fname args =
  let a = run_engine ~bytecode:true ?threads ?sched cu fname args in
  let b = run_engine ~bytecode:false ?threads ?sched cu fname args in
  check_string (name ^ ": printed output") b.r_output a.r_output;
  (match (a.r_error, b.r_error) with
  | None, None -> ()
  | Some ea, Some eb -> check_string (name ^ ": error message") eb ea
  | Some e, None ->
    Alcotest.fail (name ^ ": only bytecode raised: " ^ e)
  | None, Some e ->
    Alcotest.fail (name ^ ": only tree-walk raised: " ^ e));
  match (a.r_value, b.r_value) with
  | Some va, Some vb ->
    if not (value_opt_eq va vb) then
      Alcotest.fail
        (Printf.sprintf "%s: results differ: bytecode=%s tree-walk=%s" name
           (pp_value_opt va) (pp_value_opt vb))
  | None, None -> ()
  | _ -> Alcotest.fail (name ^ ": one engine raised, the other returned")

let all_scheds =
  [
    ("default", None);
    ("static", Some Sched.Static);
    ("chunk:8", Some (Sched.Static_chunked 8));
    ("dynamic", Some (Sched.Dynamic 1));
    ("guided", Some (Sched.Guided 2));
  ]

(* --- construct battery --------------------------------------------------- *)

(* One function exercising every construct the bytecode compiler
   covers: negative-step and EXIT/CYCLE loops, DO WHILE, short-circuit
   logic, a COLLAPSE(2) array-write nest, an integer reduction plus a
   CRITICAL counter (both exact under any schedule and thread count),
   PRINT, and intrinsic calls. *)
let battery_src =
  {|
module diffmod
  implicit none
  real*8 :: grid2(24, 17)
  real*8 :: vec(400)
  integer :: hits
end module diffmod

real*8 function battery(n, t)
  use diffmod
  implicit none
  integer :: n, t
  integer :: i, j, k, steps
  real*8 :: acc, x
  do i = 400, 1, -3
    vec(i) = i * 0.125d0
  end do
  do i = 1, n
    if (mod(i, 7) == 0) cycle
    if (i > 350) exit
    vec(i) = vec(i) + 1.0d0 / (1.0d0 + i)
  end do
  steps = 0
  x = 1.0d0
  do while (x < 1000.0d0 .and. steps < 64)
    x = x * 1.7d0
    steps = steps + 1
  end do
!$omp parallel do private(i, j) collapse(2) num_threads(t)
  do i = 1, 24
    do j = 1, 17
      grid2(i, j) = exp(i * 0.01d0) * (j + 0.5d0) + i * 1000.0d0
    end do
  end do
!$omp end parallel do
  hits = 0
  k = 0
!$omp parallel do private(i) reduction(+:k) num_threads(t)
  do i = 1, n
    k = k + mod(i * i, 13)
!$omp critical
    hits = hits + 1
!$omp end critical
  end do
!$omp end parallel do
  acc = 0.0d0
  do i = 1, 400
    acc = acc + vec(i)
  end do
  do i = 1, 24
    do j = 1, 17
      acc = acc + grid2(i, j) * 1.0d-3
    end do
  end do
  print *, 'battery', steps, hits
  battery = acc + x + steps + k + hits
end function battery
|}

let test_battery_diff () =
  let cu = Parser.parse_string battery_src in
  List.iter
    (fun (sname, sched) ->
      List.iter
        (fun threads ->
          assert_same
            (Printf.sprintf "battery %s t=%d" sname threads)
            ~threads ?sched cu "battery"
            [ Ast.Int_lit 397; Ast.Int_lit threads ])
        [ 1; 4 ])
    all_scheds

(* Error paths must surface the same message through either engine. *)
let test_error_diff () =
  let cu =
    Parser.parse_string
      {|
real*8 function oob(i)
  integer :: i
  real*8 :: a(10)
  a(3) = 1.0d0
  oob = a(i)
end function oob

integer function zdiv(d)
  integer :: d
  zdiv = 7 / d
end function zdiv
|}
  in
  assert_same "oob high" cu "oob" [ Ast.Int_lit 500 ];
  assert_same "oob low" cu "oob" [ Ast.Int_lit 0 ];
  assert_same "oob ok" cu "oob" [ Ast.Int_lit 3 ];
  assert_same "zdiv" cu "zdiv" [ Ast.Int_lit 0 ]

(* --- user-call battery ---------------------------------------------------- *)

(* Every flavor of compiled call in one program: inlined branch-free
   and branching leaves, a marshalled call at the inline size boundary,
   by-reference scalar and array-element mutation through a subroutine,
   subroutine recursion (tree-walk fallback at the call site), and a
   mixed chain where an allocating subroutine falls back while the
   loops and callees inside it still run compiled. *)
let calls_src =
  {|
module callmod
  implicit none
  real*8 :: stash(64)
end module callmod

real*8 function scale2(a, b)
  implicit none
  real*8 :: a, b
  scale2 = a * 2.0d0 + b * 0.5d0
end function scale2

real*8 function clampv(x, lim)
  implicit none
  real*8 :: x, lim
  if (x > lim) then
    clampv = lim + (x - lim) * 0.25d0
  else
    clampv = x
  end if
end function clampv

real*8 function leaf8(x)
  implicit none
  real*8 :: x, t
  t = x + 1.0d0
  t = t * 1.5d0
  t = t - 0.25d0
  t = t * t
  t = t + x
  t = t * 0.5d0
  t = t + 2.0d0
  leaf8 = t
end function leaf8

real*8 function leaf9(x)
  implicit none
  real*8 :: x, t
  t = x + 1.0d0
  t = t * 1.5d0
  t = t - 0.25d0
  t = t * t
  t = t + x
  t = t * 0.5d0
  t = t + 2.0d0
  t = t - 0.125d0
  leaf9 = t
end function leaf9

subroutine bump(v, arr, i)
  use callmod
  implicit none
  real*8 :: v
  real*8 :: arr(64)
  integer :: i
  v = v + 1.25d0
  arr(i) = arr(i) + v
  stash(i) = v
end subroutine bump

subroutine rsum(n, acc)
  implicit none
  integer :: n
  real*8 :: acc
  if (n > 0) then
    acc = acc + n * 1.0d0
    call rsum(n - 1, acc)
  end if
end subroutine rsum

subroutine mixed(n, outv)
  implicit none
  integer :: n, i
  real*8 :: outv
  real*8, allocatable :: tmp(:)
  allocate(tmp(n))
  do i = 1, n
    tmp(i) = leaf9(i * 0.3d0)
  end do
  outv = 0.0d0
  do i = 1, n
    outv = outv + tmp(i)
  end do
  deallocate(tmp)
end subroutine mixed

real*8 function drive_calls(n, t)
  use callmod
  implicit none
  integer :: n, t
  integer :: i
  real*8 :: acc, v, av, bv, mx
  real*8 :: arr(64)
  do i = 1, 64
    arr(i) = i * 0.75d0
    stash(i) = 0.0d0
  end do
  v = 0.5d0
  do i = 1, 10
    call bump(v, arr, i)
  end do
  acc = 0.0d0
!$omp parallel do private(i, av, bv) reduction(+:acc) num_threads(t)
  do i = 1, n
    av = arr(mod(i, 64) + 1)
    bv = clampv(i * 0.1d0, 3.0d0)
    acc = acc + scale2(av, bv)
    acc = acc + scale2(arr(mod(i + 7, 64) + 1), 1.0d0)
  end do
!$omp end parallel do
  call rsum(12, acc)
  call mixed(20, mx)
  acc = acc + leaf9(v) + mx
  do i = 1, 4
    av = v + i * 0.5d0
    acc = acc + leaf8(av)
  end do
  do i = 1, 64
    acc = acc + stash(i)
  end do
  print *, 'calls', n
  drive_calls = acc
end function drive_calls
|}

let test_calls_diff () =
  let cu = Parser.parse_string calls_src in
  (* float +-reduction: deterministic per engine at one thread under
     every schedule, at any thread count under static *)
  List.iter
    (fun (sname, sched) ->
      assert_same ("calls " ^ sname) ~threads:1 ?sched cu "drive_calls"
        [ Ast.Int_lit 300; Ast.Int_lit 1 ])
    all_scheds;
  List.iter
    (fun threads ->
      assert_same
        (Printf.sprintf "calls static t=%d" threads)
        ~threads ~sched:Sched.Static cu "drive_calls"
        [ Ast.Int_lit 300; Ast.Int_lit threads ])
    [ 2; 4 ]

(* Under an installed fault plan the call-bearing program must fail (or
   merely slow down) identically through either engine. *)
let test_calls_inject_diff () =
  let cu = Parser.parse_string calls_src in
  let with_plan spec f =
    let plan =
      match Faultinject.parse_plan spec with
      | Ok p -> p
      | Error m -> Alcotest.fail ("bad plan: " ^ m)
    in
    Faultinject.set_plan plan;
    Fun.protect ~finally:(fun () -> Faultinject.clear ()) f
  in
  let run bytecode spec =
    with_plan spec (fun () ->
        run_engine ~bytecode ~threads:2 ~sched:Sched.Static cu "drive_calls"
          [ Ast.Int_lit 300; Ast.Int_lit 2 ])
  in
  (* fail-region:1 kills the one parallel region in drive_calls *)
  let a = run true "fail-region:1" and b = run false "fail-region:1" in
  check_bool "inject failed the call" true (a.r_error <> None);
  (match (a.r_error, b.r_error) with
  | Some ea, Some eb -> check_string "inject error identical" eb ea
  | _ -> Alcotest.fail "fail-region outcome differs between engines");
  (* delay-chunk:0 slows every region without changing results *)
  let a = run true "delay-chunk:0:1" and b = run false "delay-chunk:0:1" in
  check_string "delayed output identical" b.r_output a.r_output;
  if not (match (a.r_value, b.r_value) with
          | Some va, Some vb -> value_opt_eq va vb
          | _ -> false)
  then Alcotest.fail "delay-chunk values differ between engines"

(* White-box coverage: which call sites compiled, inlined, or fell
   back.  Leaves at or under the size cap leave no per-sub site at all
   (no frame is ever built); the boundary +1 function is a marshalled
   compiled call; recursion and ALLOCATE report bails with a reason. *)
let test_calls_stats () =
  let cu = Parser.parse_string calls_src in
  Interp.reset_bytecode_stats ();
  let st = Interp.make_state ~printer:ignore cu in
  ignore (Interp.call st "drive_calls" [ Ast.Int_lit 300; Ast.Int_lit 1 ]);
  let rows = Interp.bytecode_stats_for st in
  let find lbl = List.filter (fun r -> r.Interp.r_label = lbl) rows in
  let runs lbl =
    List.fold_left (fun a r -> a + r.Interp.r_runs) 0 (find lbl)
  and bails lbl =
    List.fold_left (fun a r -> a + r.Interp.r_bails) 0 (find lbl)
  in
  (* inlined leaves never become call frames *)
  check_bool "scale2 inlined or marshalled, never bailed" true
    (bails "sub scale2" = 0);
  check_int "leaf8 fully inlined: no site" 0 (List.length (find "sub leaf8"));
  check_bool "leaf9 (one past the cap) ran as compiled frames" true
    (runs "sub leaf9" > 0);
  check_int "leaf9 never bailed" 0 (bails "sub leaf9");
  check_bool "bump ran compiled with by-ref args" true (runs "sub bump" > 0);
  check_int "bump never bailed" 0 (bails "sub bump");
  (* recursion: every activation falls back to the tree-walker *)
  check_bool "rsum bailed" true (bails "sub rsum" > 0);
  check_bool "rsum bail has a reason" true
    (List.exists (fun r -> r.Interp.r_reason <> None) (find "sub rsum"));
  (* the allocating sub bails, but the loops inside it still compile *)
  check_bool "mixed bailed (allocate)" true (bails "sub mixed" > 0)

(* The acceptance gate of this PR: the case-study exchange subprograms
   run fully compiled — zero bails — and their factored-out leaf
   helpers vanish into their callers. *)
let test_workload_bytecode_coverage () =
  Interp.reset_bytecode_stats ();
  ignore (Sarb.run ~threads:1 ~bytecode:true Sarb.Glaf_serial);
  ignore (Fun3d.run ~threads:1 ~ncell:40 ~bytecode:true
            (Fun3d.Glaf Fun3d_glaf.serial_options));
  let rows = Interp.bytecode_stats () in
  let find lbl = List.filter (fun r -> r.Interp.r_label = lbl) rows in
  List.iter
    (fun lbl ->
      let rs = find ("sub " ^ lbl) in
      if rs = [] then Alcotest.fail ("no bytecode site for " ^ lbl);
      List.iter
        (fun r ->
          check_bool (lbl ^ " ran compiled") true (r.Interp.r_runs > 0);
          check_int (lbl ^ " zero bails") 0 r.Interp.r_bails)
        rs)
    [ "ent_exchange"; "lw_exchange_up"; "lw_exchange_dn" ];
  check_int "ent_contrib inlined away" 0 (List.length (find "sub ent_contrib"));
  check_int "combine_flux inlined away" 0
    (List.length (find "sub combine_flux"))

(* --- example scripts ----------------------------------------------------- *)

(* The script functions take array parameters the calls-file syntax
   cannot express, so each gets a Fortran driver appended to the
   generated source that fills the arrays and forwards the call. *)

let script_unit ?(prelude = "") name driver =
  let compiled = Serve.compile (read_file (Filename.concat scripts name)) in
  Parser.parse_string (prelude ^ compiled.Serve.co_source ^ driver)

let test_saxpy_diff () =
  let cu =
    script_unit "saxpy.gpi"
      {|
real*8 function drive_axpy(n)
  use m
  implicit none
  integer :: n
  integer :: i
  real*8 :: x(n)
  real*8 :: y(n)
  do i = 1, n
    x(i) = i * 0.5d0
    y(i) = (n - i) * 0.25d0
  end do
  drive_axpy = axpy(n, 2.0d0, x, y) + y(1) + y(n)
end function drive_axpy
|}
  in
  (* axpy carries a float +-reduction: deterministic per engine at one
     thread under every schedule, and at any thread count under the
     static schedules (fixed chunk->thread map, fixed combine order). *)
  List.iter
    (fun (sname, sched) ->
      assert_same ("saxpy " ^ sname) ~threads:1 ?sched cu "drive_axpy"
        [ Ast.Int_lit 1000 ])
    all_scheds;
  List.iter
    (fun threads ->
      assert_same
        (Printf.sprintf "saxpy static t=%d" threads)
        ~threads ~sched:Sched.Static cu "drive_axpy" [ Ast.Int_lit 1000 ])
    [ 2; 4 ]

let test_point_charge_diff () =
  let cu =
    script_unit "point_charge.gpi"
      {|
real*8 function drive_charge(n)
  use module1
  implicit none
  integer :: n
  integer :: i
  real*8 :: charge(n)
  real*8 :: xs(n)
  do i = 1, n
    charge(i) = (mod(i, 5) - 2) * 1.0d-9
    xs(i) = i * 0.01d0
  end do
  drive_charge = calc_point_charge(n, charge, xs, 1.2345d0)
end function drive_charge
|}
  in
  List.iter
    (fun (sname, sched) ->
      assert_same ("point_charge " ^ sname) ~threads:1 ?sched cu "drive_charge"
        [ Ast.Int_lit 500 ])
    all_scheds;
  assert_same "point_charge static t=4" ~threads:4 ~sched:Sched.Static cu
    "drive_charge" [ Ast.Int_lit 500 ]

(* legacy_radiation integrates against pre-existing modules and a
   COMMON block; the test supplies minimal versions of both, then
   compares the module-resident result array cell by cell. *)
let test_legacy_radiation_diff () =
  let cu =
    script_unit
      ~prelude:
        {|
module fuinput
  implicit none
  integer :: nv1
  real*8 :: pt(61)
end module fuinput

module fuoutput
  implicit none
  type :: fu_out_t
    real*8 :: fwin(61)
  end type fu_out_t
  type(fu_out_t) :: fo
end module fuoutput
|}
      "legacy_radiation.gpi"
      {|
subroutine drive_window(scale)
  use fuinput
  use patch
  implicit none
  real*8 :: scale
  real*8 :: wnwin
  integer :: k
  common /entcon/ wnwin
  wnwin = scale
  nv1 = 60
  do k = 1, 61
    pt(k) = 200.0d0 + k * 1.5d0
  end do
  call window_flux()
end subroutine drive_window
|}
  in
  let fwin ~bytecode ~threads sched =
    let st = Interp.make_state ~printer:ignore cu in
    Interp.set_threads st threads;
    (match sched with Some s -> Interp.set_schedule st s | None -> ());
    Interp.set_bytecode st bytecode;
    ignore (Interp.call st "drive_window" [ Ast.Real_lit (0.731, true) ]);
    Interp.module_struct_array st ~module_name:"fuoutput" ~var:"fo"
      ~field:"fwin"
  in
  List.iter
    (fun (sname, sched) ->
      let a = fwin ~bytecode:true ~threads:4 sched in
      let b = fwin ~bytecode:false ~threads:4 sched in
      check_bool
        ("window_flux fwin identical, " ^ sname)
        true
        (Farray.equal_content a b);
      (* the driver really did something *)
      check_bool ("window_flux nonzero, " ^ sname) true (Farray.rms a > 0.0))
    all_scheds

(* --- batch serving ------------------------------------------------------- *)

let quad_compiled () = Serve.compile (read_file (scripts ^ "/quad_sweep.gpi"))
let quad_calls () = Serve.parse_calls (read_file (scripts ^ "/quad_sweep.calls"))

(* Compare two served batches outcome by outcome: same per-call
   values (bit-exact), same captured PRINT output, same fault
   classification for failed calls.  Timing fields are ignored. *)
let assert_batches_same name (a : Serve.batch) (b : Serve.batch) =
  check_int (name ^ ": ok count") b.Serve.b_ok a.Serve.b_ok;
  check_int (name ^ ": failed count") b.Serve.b_failed a.Serve.b_failed;
  check_int (name ^ ": result count")
    (List.length b.Serve.b_results)
    (List.length a.Serve.b_results);
  List.iter2
    (fun (ca, ra) (cb, rb) ->
      let where =
        Printf.sprintf "%s: line %d %s" name ca.Serve.cl_line ca.Serve.cl_name
      in
      check_int (where ^ ": same call") cb.Serve.cl_line ca.Serve.cl_line;
      match (ra, rb) with
      | Ok oa, Ok ob ->
        check_bool
          (where ^ ": value bit-identical")
          true
          (value_opt_eq oa.Serve.oc_value ob.Serve.oc_value);
        check_string (where ^ ": output") ob.Serve.oc_output oa.Serve.oc_output
      | Error fa, Error fb ->
        check_string (where ^ ": fault") (Fault.to_string fb)
          (Fault.to_string fa)
      | Ok _, Error f ->
        Alcotest.fail (where ^ ": only tree-walk failed: " ^ Fault.to_string f)
      | Error f, Ok _ ->
        Alcotest.fail (where ^ ": only bytecode failed: " ^ Fault.to_string f))
    a.Serve.b_results b.Serve.b_results

let test_serve_schedules_diff () =
  let compiled = quad_compiled () and calls = quad_calls () in
  List.iter
    (fun (sname, sched) ->
      let run bytecode =
        Serve.run_calls ~threads:1 ?sched ~bytecode compiled calls
      in
      assert_batches_same ("serve " ^ sname) (run true) (run false))
    all_scheds

let test_serve_concurrent_diff () =
  let compiled = quad_compiled () and calls = quad_calls () in
  let run bytecode =
    Serve.run_calls ~concurrency:3 ~threads:1 ~bytecode compiled calls
  in
  assert_batches_same "serve concurrency=3" (run true) (run false)

(* Under an installed fault plan both engines must fail the same call
   with the same classification: region numbering is identical because
   chunk dispatch is engine-independent. *)
let test_serve_inject_diff () =
  let compiled = quad_compiled () and calls = quad_calls () in
  let plan =
    match Faultinject.parse_plan "fail-region:2,delay-chunk:1:1" with
    | Ok p -> p
    | Error m -> Alcotest.fail ("bad plan: " ^ m)
  in
  let run bytecode =
    Faultinject.set_plan plan;
    Fun.protect
      ~finally:(fun () -> Faultinject.clear ())
      (fun () -> Serve.run_calls ~threads:1 ~bytecode compiled calls)
  in
  let a = run true and b = run false in
  check_int "one injected failure" 1 a.Serve.b_failed;
  assert_batches_same "serve inject" a b

(* --- case-study workloads ------------------------------------------------ *)

let bits = Int64.bits_of_float

let assert_sarb_same name (a : Sarb.run_result) (b : Sarb.run_result) =
  check_bool (name ^ ": checksum bit-identical") true
    (bits a.Sarb.checksum = bits b.Sarb.checksum);
  check_bool (name ^ ": toa bit-identical") true
    (bits a.Sarb.toa_lw = bits b.Sarb.toa_lw
    && bits a.Sarb.toa_sw = bits b.Sarb.toa_sw);
  List.iter
    (fun (fname, fa, fb) ->
      check_bool
        (Printf.sprintf "%s: %s identical" name fname)
        true (Farray.equal_content fa fb))
    [
      ("fuir", a.Sarb.fuir, b.Sarb.fuir);
      ("fdir", a.Sarb.fdir, b.Sarb.fdir);
      ("fds", a.Sarb.fds, b.Sarb.fds);
      ("sen_lw", a.Sarb.sen_lw, b.Sarb.sen_lw);
    ]

let test_sarb_diff () =
  List.iter
    (fun (label, threads, v) ->
      assert_sarb_same label
        (Sarb.run ~threads ~bytecode:true v)
        (Sarb.run ~threads ~bytecode:false v))
    [
      ("sarb original serial", 1, Sarb.Original_serial);
      ("sarb glaf serial", 1, Sarb.Glaf_serial);
      ("sarb glaf parallel v0 t=3", 3, Sarb.Glaf_parallel Directive_policy.V0);
      ("sarb glaf parallel v2 t=3", 3, Sarb.Glaf_parallel Directive_policy.V2);
    ]

let test_fun3d_diff () =
  List.iter
    (fun (label, v) ->
      let a = Fun3d.run ~threads:1 ~ncell:60 ~bytecode:true v in
      let b = Fun3d.run ~threads:1 ~ncell:60 ~bytecode:false v in
      check_bool (label ^ ": rms bit-identical") true
        (bits a.Fun3d.rms = bits b.Fun3d.rms);
      check_bool (label ^ ": rms finite") true (Float.is_finite a.Fun3d.rms))
    [
      ("fun3d original", Fun3d.Original_serial);
      ("fun3d glaf serial", Fun3d.Glaf Fun3d_glaf.serial_options);
      ("fun3d glaf best", Fun3d.Glaf Fun3d_glaf.best_options);
    ]

let suites =
  [
    ( "bytecode.diff",
      [
        Alcotest.test_case "construct battery" `Quick test_battery_diff;
        Alcotest.test_case "error paths" `Quick test_error_diff;
        Alcotest.test_case "user-call battery" `Quick test_calls_diff;
        Alcotest.test_case "user-call injection" `Quick test_calls_inject_diff;
        Alcotest.test_case "user-call stats" `Quick test_calls_stats;
        Alcotest.test_case "workload coverage" `Quick
          test_workload_bytecode_coverage;
        Alcotest.test_case "saxpy script" `Quick test_saxpy_diff;
        Alcotest.test_case "point_charge script" `Quick test_point_charge_diff;
        Alcotest.test_case "legacy_radiation script" `Quick
          test_legacy_radiation_diff;
        Alcotest.test_case "serve schedules" `Quick test_serve_schedules_diff;
        Alcotest.test_case "serve concurrent" `Quick test_serve_concurrent_diff;
        Alcotest.test_case "serve inject" `Quick test_serve_inject_diff;
        Alcotest.test_case "sarb workload" `Quick test_sarb_diff;
        Alcotest.test_case "fun3d workload" `Quick test_fun3d_diff;
      ] );
  ]
