(* Differential tests for the reverse path (lib/lift): legacy Fortran
   → dependence analysis → OMP directives / grid-IR kernels, with
   original-vs-rewritten runs required to be bit-identical. *)

open Glaf_fortran
open Glaf_lift
module Sarb_legacy = Glaf_workloads.Sarb_legacy
module Fun3d_legacy = Glaf_workloads.Fun3d_legacy

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let pure = Glaf_runtime.Intrinsics.names ()

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let sarb_cu = lazy (Sarb_legacy.parse ())
let fun3d_cu = lazy (Parser.parse_string Fun3d_legacy.full_source)

let sarb_setup = [ ("sarb_init_profiles", []) ]

let entropy_call_args =
  [ Ast.Real_lit (1.5, true); Ast.Real_lit (1.02, true) ]

let ok_or_fail = function
  | Ok n -> n
  | Error msg -> Alcotest.fail msg

(* --- directives mode ---------------------------------------------------- *)

let sarb_annotated = lazy (Autopar_fortran.run ~pure (Lazy.force sarb_cu))

let test_directives_annotates () =
  let r = Lazy.force sarb_annotated in
  check_bool "many loops annotated" true (Autopar_fortran.annotated_count r > 40);
  (* at least one reduction nest got a reduction clause in the source *)
  let src = Pp_ast.to_string r.Autopar_fortran.annotated in
  check_bool "reduction clause emitted" true
    (contains src "reduction(+:colq)");
  check_bool "collapse clause emitted" true
    (contains src "collapse(2)")

let test_directives_source_reparses () =
  let r = Lazy.force sarb_annotated in
  let src = Pp_ast.to_string r.Autopar_fortran.annotated in
  let cu2 = Parser.parse_string src in
  check_int "same unit count" (List.length r.Autopar_fortran.annotated)
    (List.length cu2)

(* carried-dependence recurrences must be reported, never annotated *)
let test_directives_negative_recurrences () =
  let r = Lazy.force sarb_annotated in
  let serial_on grid =
    List.exists
      (fun (e : Autopar_fortran.entry) ->
        match e.Autopar_fortran.e_status with
        | Autopar_fortran.Serial info ->
          List.exists
            (fun o -> o = Glaf_analysis.Loop_info.Loop_carried grid)
            info.Glaf_analysis.Loop_info.obstacles
        | _ -> false)
      r.Autopar_fortran.entries
  in
  check_bool "cum recurrence serial" true (serial_on "cum");
  check_bool "cum9 recurrence serial" true (serial_on "cum9");
  check_bool "tsw recurrence serial" true (serial_on "tsw");
  (* and the annotated AST really carries no directive on those loops *)
  let offenders = ref 0 in
  let rec scan_stmts stmts = List.iter scan_stmt stmts
  and scan_stmt = function
    | Ast.Do l ->
      (if l.Ast.do_omp <> None then
         let writes_cum =
           List.exists
             (function
               | Ast.Assign ((("cum" | "cum9" | "tsw"), _) :: _, _) -> true
               | _ -> false)
             l.Ast.do_body
         in
         if writes_cum then incr offenders);
      scan_stmts l.Ast.do_body
    | Ast.If_block (branches, else_) ->
      List.iter (fun (_, b) -> scan_stmts b) branches;
      scan_stmts else_
    | Ast.Do_while (_, b) | Ast.Omp_critical b -> scan_stmts b
    | _ -> ()
  in
  List.iter
    (function
      | Ast.Standalone sp -> scan_stmts sp.Ast.sub_body
      | Ast.Module m ->
        List.iter (fun sp -> scan_stmts sp.Ast.sub_body) m.Ast.mod_contains
      | Ast.Main m -> scan_stmts m.Ast.main_body)
    (Lazy.force sarb_annotated).Autopar_fortran.annotated;
  check_int "no directive on recurrence loops" 0 !offenders

let test_directives_equivalent_sarb () =
  let r = Lazy.force sarb_annotated in
  let n =
    ok_or_fail
      (Verify.equivalent ~setup:sarb_setup ~args:entropy_call_args
         ~original:(Lazy.force sarb_cu, "entropy_interface")
         ~variant:(r.Autopar_fortran.annotated, "entropy_interface")
         ())
  in
  check_int "all schedules checked" (List.length Verify.schedules) n

(* loops without floating reductions are bit-identical even at 2
   threads: disjoint writes commute *)
let test_directives_equivalent_threads2 () =
  let r = Lazy.force sarb_annotated in
  let n =
    ok_or_fail
      (Verify.equivalent ~threads:[ 1; 2 ]
         ~original:(Lazy.force sarb_cu, "sarb_init_profiles")
         ~variant:(r.Autopar_fortran.annotated, "sarb_init_profiles")
         ())
  in
  check_int "schedules x threads" (2 * List.length Verify.schedules) n

let test_directives_equivalent_under_injection () =
  (* delay-chunk perturbs timing, never values: the annotated run must
     still be bit-identical *)
  (match Glaf_runtime.Faultinject.parse_plan "delay-chunk:0:1" with
  | Ok plan -> Glaf_runtime.Faultinject.set_plan plan
  | Error e -> Alcotest.fail e);
  Fun.protect ~finally:Glaf_runtime.Faultinject.clear (fun () ->
      let r = Lazy.force sarb_annotated in
      ignore
        (ok_or_fail
           (Verify.equivalent ~setup:sarb_setup ~args:entropy_call_args
              ~original:(Lazy.force sarb_cu, "entropy_interface")
              ~variant:(r.Autopar_fortran.annotated, "entropy_interface")
              ())))

let test_directives_fun3d () =
  let cu = Lazy.force fun3d_cu in
  let r = Autopar_fortran.run ~pure cu in
  check_bool "fun3d loops annotated" true (Autopar_fortran.annotated_count r > 5);
  (* the manual directive in jacobian_fill_manual is kept untouched *)
  check_bool "existing directive kept" true
    (List.exists
       (fun (e : Autopar_fortran.entry) ->
         e.Autopar_fortran.e_sub = "jacobian_fill_manual"
         && e.Autopar_fortran.e_status = Autopar_fortran.Preexisting)
       r.Autopar_fortran.entries);
  let n =
    ok_or_fail
      (Verify.equivalent
         ~setup:[ ("fun3d_init_mesh", [ Ast.Int_lit 40 ]) ]
         ~original:(cu, "jacobian_fill")
         ~variant:(r.Autopar_fortran.annotated, "jacobian_fill")
         ())
  in
  check_bool "fun3d verified" true (n > 0)

(* --- lift mode ----------------------------------------------------------- *)

let lift_and_verify ?(setup = []) ?(args = []) cu name =
  let lifted = Lift_kernel.lift ~pure cu name in
  let n =
    ok_or_fail
      (Verify.equivalent ~setup ~args ~original:(cu, name)
         ~variant:(lifted.Lift_kernel.combined, lifted.Lift_kernel.kernel)
         ())
  in
  check_int "all schedules checked" (List.length Verify.schedules) n;
  lifted

let test_lift_adjust2 () =
  let lifted =
    lift_and_verify ~setup:sarb_setup ~args:entropy_call_args
      (Lazy.force sarb_cu) "adjust2"
  in
  check_bool "kernel renamed" true
    (String.equal lifted.Lift_kernel.kernel "adjust2_lifted");
  (* the colq reduction nest is annotated in the lifted IR *)
  check_bool "reduction found" true
    (List.exists
       (fun (e : Glaf_analysis.Autopar.report_entry) ->
         List.exists
           (fun (r : Glaf_analysis.Loop_info.reduction) ->
             String.equal r.Glaf_analysis.Loop_info.red_var "colq")
           e.Glaf_analysis.Autopar.re_info.Glaf_analysis.Loop_info.reductions)
       lifted.Lift_kernel.report)

let test_lift_longwave () =
  (* the big one: COMMON block, TYPE elements, collapse(2) nests,
     module-variable reductions, serial recurrences *)
  let lifted =
    lift_and_verify ~setup:sarb_setup (Lazy.force sarb_cu)
      "longwave_entropy_model"
  in
  let parallel, serial =
    List.partition
      (fun (e : Glaf_analysis.Autopar.report_entry) ->
        e.Glaf_analysis.Autopar.re_info.Glaf_analysis.Loop_info.parallel)
      lifted.Lift_kernel.report
  in
  check_bool "many parallel loops" true (List.length parallel > 20);
  check_bool "recurrences stay serial" true (List.length serial >= 2)

let test_lift_function_result () =
  let lifted =
    lift_and_verify ~setup:sarb_setup (Lazy.force sarb_cu) "sarb_checksum"
  in
  check_bool "lifted as function" true
    (lifted.Lift_kernel.func.Glaf_ir.Func.return <> None)

let test_lift_fun3d_rms () =
  let cu = Lazy.force fun3d_cu in
  let lifted =
    lift_and_verify
      ~setup:
        [ ("fun3d_init_mesh", [ Ast.Int_lit 40 ]); ("jacobian_fill", []) ]
      cu "fun3d_rms"
  in
  (* collapse(2) + reduction survives the full round trip *)
  check_bool "collapse reduction nest" true
    (List.exists
       (fun (e : Glaf_analysis.Autopar.report_entry) ->
         let i = e.Glaf_analysis.Autopar.re_info in
         i.Glaf_analysis.Loop_info.collapsible
         && i.Glaf_analysis.Loop_info.reductions <> [])
       lifted.Lift_kernel.report)

let test_lift_unknown_kernel () =
  match Lift_kernel.lift ~pure (Lazy.force sarb_cu) "nosuch" with
  | _ -> Alcotest.fail "expected Lift_error"
  | exception Lift_kernel.Lift_error msg ->
    check_bool "names the kernel" true
      (contains msg "nosuch")

let test_verify_rejects_broken_baseline () =
  match
    Verify.equivalent
      ~setup:[ ("no_such_setup", []) ]
      ~original:(Lazy.force sarb_cu, "sarb_checksum")
      ~variant:(Lazy.force sarb_cu, "sarb_checksum")
      ()
  with
  | (exception Lift_kernel.Lift_error _) -> ()
  | Ok _ -> Alcotest.fail "expected baseline rejection"
  | Error _ -> Alcotest.fail "expected Lift_error, got comparison failure"

(* verification catches a genuinely wrong rewrite: annotate the tsw
   recurrence by hand and watch the differ refuse it *)
let test_verify_catches_bad_directive () =
  let cu = Lazy.force sarb_cu in
  let broken =
    List.map
      (fun (u : Ast.program_unit) ->
        match u with
        | Ast.Standalone sp
          when String.equal sp.Ast.sub_name "sw_spectral_integration" ->
          let rec force stmts = List.map force_stmt stmts
          and force_stmt = function
            | Ast.Do l ->
              let writes_tsw =
                List.exists
                  (function
                    | Ast.Assign (("tsw", _) :: _, _) -> true
                    | _ -> false)
                  l.Ast.do_body
              in
              if writes_tsw then
                Ast.Do { l with Ast.do_omp = Some Ast.omp_do_default }
              else Ast.Do { l with Ast.do_body = force l.Ast.do_body }
            | s -> s
          in
          Ast.Standalone { sp with Ast.sub_body = force sp.Ast.sub_body }
        | u -> u)
      cu
  in
  (* threads:2 so the recurrence actually races across chunk boundaries;
     schedules partition 60 iterations differently from serial order *)
  match
    Verify.equivalent ~threads:[ 2 ] ~setup:sarb_setup
      ~args:entropy_call_args
      ~original:(cu, "entropy_interface")
      ~variant:(broken, "entropy_interface")
      ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a mismatch on the forced recurrence"

(* --- fixtures on disk ---------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_fixture_files_in_sync () =
  (* the checked-in .f90 files must stay byte-identical to the embedded
     sources the workloads and tests use *)
  Alcotest.(check string)
    "sarb fixture" Sarb_legacy.full_source
    (read_file "../examples/fortran/sarb_kernels.f90");
  Alcotest.(check string)
    "fun3d fixture" Fun3d_legacy.full_source
    (read_file "../examples/fortran/fun3d_kernels.f90")

let suites =
  [
    ( "lift.directives",
      [
        Alcotest.test_case "annotates sarb" `Quick test_directives_annotates;
        Alcotest.test_case "source reparses" `Quick test_directives_source_reparses;
        Alcotest.test_case "recurrences not annotated" `Quick
          test_directives_negative_recurrences;
        Alcotest.test_case "sarb bit-identical" `Quick
          test_directives_equivalent_sarb;
        Alcotest.test_case "bit-identical at 2 threads" `Quick
          test_directives_equivalent_threads2;
        Alcotest.test_case "bit-identical under injection" `Quick
          test_directives_equivalent_under_injection;
        Alcotest.test_case "fun3d annotate+verify" `Quick test_directives_fun3d;
      ] );
    ( "lift.kernels",
      [
        Alcotest.test_case "adjust2" `Quick test_lift_adjust2;
        Alcotest.test_case "longwave" `Quick test_lift_longwave;
        Alcotest.test_case "function result" `Quick test_lift_function_result;
        Alcotest.test_case "fun3d rms" `Quick test_lift_fun3d_rms;
        Alcotest.test_case "unknown kernel" `Quick test_lift_unknown_kernel;
        Alcotest.test_case "broken baseline rejected" `Quick
          test_verify_rejects_broken_baseline;
        Alcotest.test_case "bad directive caught" `Quick
          test_verify_catches_bad_directive;
      ] );
    ( "lift.fixtures",
      [ Alcotest.test_case "files in sync" `Quick test_fixture_files_in_sync ] );
  ]
