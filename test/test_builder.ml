(* Tests for the glaf_builder front-end: Gpi_script error paths and a
   Build-vs-script round trip. *)

open Glaf_ir
open Glaf_builder

let program_t =
  Alcotest.testable Ir_module.pp_program Ir_module.equal_program

let check_script_error ~line script name =
  match Gpi_script.run script with
  | _ -> Alcotest.failf "%s: expected Script_error, parse succeeded" name
  | exception Gpi_script.Script_error (l, msg) ->
    Alcotest.(check int)
      (Printf.sprintf "%s: error line (%s)" name msg)
      line l

let test_unknown_action () =
  check_script_error ~line:3 "program p\nmodule m\nbogus action here\n"
    "unknown action"

let test_subscript_on_scalar () =
  (* [x] is declared without dims, so [x(3)] must be rejected at the
     line of the offending [set]. *)
  check_script_error ~line:6
    "program p\n\
     module m\n\
     function f returns real8\n\
     param x real8\n\
     step s\n\
     set x(3) = 1.0\n\
     end program\n"
    "subscripted scalar lvalue";
  (* same rule on the right-hand side *)
  check_script_error ~line:6
    "program p\n\
     module m\n\
     function f returns real8\n\
     param x real8\n\
     step s\n\
     set x = x(2) + 1.0\n\
     end program\n"
    "subscripted scalar rvalue";
  (* an empty dims() clause is a contradiction: dims-less grids are
     scalars *)
  check_script_error ~line:4
    "program p\nmodule m\nfunction f returns void\ngrid t real8 dims()\n"
    "empty dims clause"

let test_unterminated_foreach () =
  (* the error points at the foreach opener (line 6), not at the [end
     program] that exposes it *)
  check_script_error ~line:6
    "program p\n\
     module m\n\
     function f returns integer\n\
     param n integer\n\
     step s\n\
     foreach i = 1, n\n\
     set n = i\n\
     end program\n"
    "unterminated foreach at end program";
  (* also caught when the script just stops *)
  check_script_error ~line:6
    "program p\n\
     module m\n\
     function f returns integer\n\
     param n integer\n\
     step s\n\
     foreach i = 1, n\n\
     set n = i\n"
    "unterminated foreach at eof"

(* --- the foreach schedule clause --------------------------------------- *)

let sched_script clause =
  Printf.sprintf
    "program p\n\
     module m\n\
     function f returns real8\n\
     param n integer\n\
     grid s real8\n\
     step compute\n\
     set s = 0.0\n\
     foreach i = 1, n%s\n\
     set s = s + i\n\
     end foreach\n\
     return s\n\
     end program\n"
    clause

let first_loop_schedule program =
  let loops = ref [] in
  List.iter
    (fun (m : Ir_module.t) ->
      List.iter
        (fun (f : Func.t) ->
          List.iter
            (fun (st : Func.step) ->
              ignore
                (Stmt.map_loops
                   (fun l ->
                     loops := l :: !loops;
                     l)
                   st.Func.body))
            f.Func.steps)
        m.Ir_module.functions)
    program.Ir_module.modules;
  match !loops with
  | [ l ] -> l.Stmt.schedule
  | _ -> Alcotest.fail "expected exactly one loop"

let test_schedule_clause () =
  let check name clause expected =
    Alcotest.(check bool)
      name true
      (first_loop_schedule (Gpi_script.run (sched_script clause)) = expected)
  in
  check "no clause" "" None;
  check "static" " schedule static" (Some Stmt.Sched_static);
  check "chunk" " schedule chunk:4" (Some (Stmt.Sched_static_chunk 4));
  check "static:k alias" " schedule static:4" (Some (Stmt.Sched_static_chunk 4));
  check "dynamic" " schedule dynamic:16" (Some (Stmt.Sched_dynamic 16));
  check "bare dynamic" " schedule dynamic" (Some (Stmt.Sched_dynamic 1));
  check "guided" " schedule guided" (Some (Stmt.Sched_guided 1));
  check "guided with floor" " schedule guided:8" (Some (Stmt.Sched_guided 8))

let test_schedule_clause_errors () =
  check_script_error ~line:8 (sched_script " schedule sliced")
    "unknown schedule kind";
  check_script_error ~line:8 (sched_script " schedule guided:0")
    "non-positive guided floor";
  check_script_error ~line:8 (sched_script " schedule chunk:0")
    "non-positive chunk";
  check_script_error ~line:8 (sched_script " schedule dynamic:0")
    "non-positive dynamic chunk";
  check_script_error ~line:8 (sched_script " schedule static extra")
    "trailing tokens after schedule"

(* The schedule hint survives auto-parallelization: Autopar folds it
   into the emitted directive. *)
let test_schedule_reaches_directive () =
  let program = Gpi_script.run (sched_script " schedule dynamic:8") in
  let annotated, _ = Glaf_analysis.Autopar.run program in
  let found = ref None in
  List.iter
    (fun (m : Ir_module.t) ->
      List.iter
        (fun (f : Func.t) ->
          List.iter
            (fun (st : Func.step) ->
              ignore
                (Stmt.map_loops
                   (fun l ->
                     (match l.Stmt.directive with
                     | Some d -> found := Some d.Stmt.schedule
                     | None -> ());
                     l)
                   st.Func.body))
            f.Func.steps)
        m.Ir_module.functions)
    annotated.Ir_module.modules;
  Alcotest.(check bool)
    "directive carries the hint" true
    (!found = Some (Some (Stmt.Sched_dynamic 8)))

let saxpy_script =
  "! saxpy, script form\n\
   program p\n\
   module m\n\
   function axpy returns real8\n\
   param n integer\n\
   param a real8\n\
   param x real8 dims(n)\n\
   param y real8 dims(n)\n\
   grid s real8\n\
   step compute\n\
   set s = 0.0\n\
   foreach i = 1, n\n\
   set y(i) = a * x(i) + y(i)\n\
   set s = s + y(i)\n\
   end foreach\n\
   return s\n\
   end program\n"

let saxpy_built () =
  let b = Build.create "p" in
  Build.add_module b "m";
  Build.start_function b "axpy" ~return:Types.T_real8;
  Build.add_param b (Grid.scalar Types.T_int "n");
  Build.add_param b (Grid.scalar Types.T_real8 "a");
  Build.add_param b
    (Grid.array Types.T_real8 ~dims:[ Grid.dim (Grid.Sym "n") ] "x");
  Build.add_param b
    (Grid.array Types.T_real8 ~dims:[ Grid.dim (Grid.Sym "n") ] "y");
  Build.add_grid b (Grid.scalar Types.T_real8 "s");
  Build.start_step b "compute";
  Build.add_stmt b (Stmt.assign_var "s" (Expr.real 0.0));
  Build.add_stmt b
    (Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
       [
         Stmt.assign_idx "y" [ Expr.var "i" ]
           Expr.(var "a" * idx "x" [ var "i" ] + idx "y" [ var "i" ]);
         Stmt.assign_var "s" Expr.(var "s" + idx "y" [ var "i" ]);
       ]);
  Build.add_stmt b (Stmt.Return (Some (Expr.var "s")));
  Build.finish b

let test_round_trip () =
  let from_script = Gpi_script.run saxpy_script in
  let from_build = saxpy_built () in
  Alcotest.check program_t "script and Build produce identical IR"
    from_build from_script

let suites =
  [
    ( "builder.script_errors",
      [
        Alcotest.test_case "unknown action" `Quick test_unknown_action;
        Alcotest.test_case "subscript on scalar" `Quick
          test_subscript_on_scalar;
        Alcotest.test_case "unterminated foreach" `Quick
          test_unterminated_foreach;
      ] );
    ( "builder.schedule",
      [
        Alcotest.test_case "clause variants" `Quick test_schedule_clause;
        Alcotest.test_case "clause errors" `Quick test_schedule_clause_errors;
        Alcotest.test_case "reaches directive" `Quick
          test_schedule_reaches_directive;
      ] );
    ( "builder.round_trip",
      [ Alcotest.test_case "saxpy" `Quick test_round_trip ] );
  ]
