(* Tests for the builder front-end, Fortran/C code generation, the
   optimizer, and end-to-end pipelines through the interpreter. *)

open Glaf_ir
open Glaf_builder
open Glaf_fortran
open Glaf_runtime
open Glaf_interp
open Glaf_analysis
open Glaf_optimizer
open Glaf_codegen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let check_float msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* A small GLAF program used across tests: zero-init + scaled copy +
   reduction, written via the builder exactly as GPI actions. *)
let sample_program () =
  let b = Build.create "demo" in
  Build.add_module b "module1";
  Build.start_function b "process" ~return:Types.T_real8;
  Build.add_param b (Grid.scalar Types.T_int "n");
  Build.add_param b
    (Grid.array Types.T_real8 ~dims:[ Grid.dim (Grid.Sym "n") ] "input");
  Build.add_grid b
    (Grid.array Types.T_real8 ~dims:[ Grid.dim (Grid.Sym "n") ] "work");
  Build.add_grid b (Grid.scalar Types.T_real8 "total");
  Build.start_step b "zero";
  Build.add_stmt b
    (Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
       [ Stmt.assign_idx "work" [ Expr.var "i" ] (Expr.real 0.0) ]);
  Build.start_step b "scale";
  Build.add_stmt b
    (Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
       [
         Stmt.assign_idx "work" [ Expr.var "i" ]
           Expr.(idx "input" [ var "i" ] * real 2.0);
       ]);
  Build.start_step b "reduce";
  Build.add_stmt b (Stmt.assign_var "total" (Expr.real 0.0));
  Build.add_stmt b
    (Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
       [ Stmt.assign_var "total" Expr.(var "total" + idx "work" [ var "i" ]) ]);
  Build.add_stmt b (Stmt.Return (Some (Expr.var "total")));
  Build.finish b

(* --- builder ----------------------------------------------------------- *)

let test_builder_basic () =
  let p = sample_program () in
  check_int "one module" 1 (List.length p.Ir_module.modules);
  let f = List.hd (Ir_module.all_functions p) in
  check_str "name" "process" f.Func.name;
  check_int "params" 2 (List.length f.Func.params);
  check_int "steps" 3 (List.length f.Func.steps)

let test_builder_rejects_invalid () =
  let b = Build.create "bad" in
  Build.add_module b "m";
  Build.start_function b "f";
  Build.start_step b "s";
  Build.add_stmt b (Stmt.assign_var "ghost" (Expr.int 1));
  match Build.finish b with
  | _ -> Alcotest.fail "expected Build_error"
  | exception Build.Build_error _ -> ()

let test_builder_storage_helpers () =
  let g = Grid.scalar Types.T_real8 "pp" in
  let g1 = Build.grid_from_module ~module_name:"fuinput" g in
  check_bool "external module" true
    (g1.Grid.storage = Grid.External_module "fuinput");
  let g2 = Build.grid_from_module ~module_name:"fuoutput" ~type_var:"fo" g in
  check_bool "type element" true
    (g2.Grid.storage = Grid.Type_element ("fuoutput", "fo"));
  let g3 = Build.grid_in_common ~block:"radblk" g in
  check_bool "common" true (g3.Grid.storage = Grid.Common "radblk")

(* --- GPI script --------------------------------------------------------- *)

let script_source =
  {|
program scripted
module module1
function weighted_sum returns real8
  param n integer
  param a real8 dims(n)
  param w real8 dims(n)
  grid s real8
  step init
    set s = 0.0
  step accumulate
    foreach i = 1, n
      set s = s + a(i) * w(i)
    end foreach
    return s
end program
|}

let test_gpi_script_runs () =
  let p = Gpi_script.run script_source in
  let f = List.hd (Ir_module.all_functions p) in
  check_str "name" "weighted_sum" f.Func.name;
  check_int "steps" 2 (List.length f.Func.steps)

let test_gpi_script_control_flow () =
  let p =
    Gpi_script.run
      {|
program branching
module m
function classify returns integer
  param x real8
  grid c integer
  step decide
    if x > 1.0
      set c = 1
    elseif x > 0.0
      set c = 2
    else
      set c = 3
    end if
    return c
end program
|}
  in
  let f = List.hd (Ir_module.all_functions p) in
  match Func.all_stmts f with
  | [ Stmt.If (branches, else_); Stmt.Return _ ] ->
    check_int "branches" 2 (List.length branches);
    check_int "else stmts" 1 (List.length else_)
  | _ -> Alcotest.fail "unexpected body shape"

let test_gpi_script_integration_grids () =
  let p =
    Gpi_script.run
      {|
program integrated
module m
function kernel returns void
  grid pp real8 usemodule fuinput
  grid fds real8 usemodule fuoutput typevar fo
  grid tau0 real8 common radblk
  step work
    set tau0 = pp * 2.0
    set fds = tau0
end program
|}
  in
  let f = List.hd (Ir_module.all_functions p) in
  check_bool "subroutine (§3.4)" true (Func.is_subroutine f);
  Alcotest.(check (list string))
    "used modules" [ "fuinput"; "fuoutput" ] (Func.used_modules f);
  check_int "common blocks" 1 (List.length (Func.common_blocks f))

let test_gpi_script_while_and_loops () =
  let p =
    Gpi_script.run
      {|
program looping
module m
function collatz returns integer
  param n0 integer
  grid n integer
  grid steps integer
  step iterate
    set n = n0
    set steps = 0
    while n /= 1
      if mod(n, 2) == 0
        set n = n / 2
      else
        set n = 3 * n + 1
      end if
      set steps = steps + 1
    end while
    return steps
end program
|}
  in
  (* run it through the full pipeline *)
  let src = Fortran_gen.to_source ~opts:{ Fortran_gen.default_options with emit_omp = false } p in
  let st = Interp.make_state (Parser.parse_string src) in
  match Interp.call st "collatz" [ Ast.Int_lit 6 ] with
  | Some v -> check_int "collatz(6)" 8 (Value.to_int v)
  | None -> Alcotest.fail "no result"

let test_gpi_script_scopes_and_clauses () =
  let p =
    Gpi_script.run
      {|
program scoped
globalgrid gconst real8 init 2.5
module m
modulegrid shared_arr real8 dims(8)
function fill returns void
  param n integer
  grid tmp real8 dims(n) save
  step work
    foreach i = 1, n
      set shared_arr(i) = gconst * i
      set tmp(i) = shared_arr(i)
    end foreach
function total returns real8
  param n integer
  grid s real8
  step sum_up
    set s = 0.0
    foreach i = 1, n
      set s = s + shared_arr(i)
    end foreach
    return s
end program
|}
  in
  check_int "one global" 1 (List.length p.Ir_module.globals);
  let m = List.hd p.Ir_module.modules in
  check_int "one module grid" 1 (List.length m.Ir_module.module_grids);
  let fill =
    Option.get (Ir_module.find_function m "fill")
  in
  (match Func.find_grid fill "tmp" with
  | Some g -> check_bool "save clause" true g.Grid.save
  | None -> Alcotest.fail "tmp missing");
  (* execute: fill then total via generated code *)
  let annotated, _ = Autopar.run p in
  let src = Fortran_gen.to_source annotated in
  let st = Interp.make_state (Parser.parse_string src) in
  Interp.set_threads st 2;
  ignore (Interp.call st "fill" [ Ast.Int_lit 8 ]);
  match Interp.call st "total" [ Ast.Int_lit 8 ] with
  | Some v ->
    (* 2.5 * (1+..+8) = 90 *)
    Alcotest.(check (float 1e-9)) "total" 90.0 (Value.to_float v)
  | None -> Alcotest.fail "no result"

let test_gpi_script_errors_with_line () =
  match Gpi_script.run "program p\nmodule m\nbogus action here\n" with
  | _ -> Alcotest.fail "expected script error"
  | exception Gpi_script.Script_error (3, _) -> ()
  | exception Gpi_script.Script_error (n, m) ->
    Alcotest.failf "wrong line %d: %s" n m

(* --- fortran codegen ----------------------------------------------------- *)

let test_codegen_emits_integration_features () =
  let p =
    Gpi_script.run
      {|
program integrated
module m
function kernel returns void
  grid pp real8 usemodule fuinput
  grid fds real8 usemodule fuoutput typevar fo
  grid tau0 real8 common radblk
  step work
    set tau0 = pp * 2.0
    set fds = tau0
end program
|}
  in
  let src = Fortran_gen.to_source p in
  check_bool "USE fuinput" true (contains src "use fuinput");
  check_bool "USE fuoutput" true (contains src "use fuoutput");
  check_bool "COMMON line" true (contains src "common /radblk/ tau0");
  check_bool "subroutine" true (contains src "subroutine kernel()");
  check_bool "type element prefix" true (contains src "fo%fds");
  check_bool "no declaration of pp" false (contains src ":: pp")

let test_codegen_roundtrip_parses () =
  let p = sample_program () in
  let src = Fortran_gen.to_source p in
  match Parser.parse_string src with
  | cu -> check_int "one module unit" 1 (List.length cu)
  | exception Parser.Parse_error (line, msg) ->
    Alcotest.failf "generated code does not parse at line %d: %s\n%s" line msg src

(* Full pipeline: IR -> Fortran source -> parse -> interpret. *)
let run_generated ?(threads = 1) ?(policy = None) ?(parallel = false) p fname args =
  let p =
    if parallel then begin
      let annotated, _ = Autopar.run p in
      match policy with
      | Some pol -> Directive_policy.apply pol annotated
      | None -> annotated
    end
    else p
  in
  let opts = { Fortran_gen.default_options with emit_omp = parallel } in
  let src = Fortran_gen.to_source ~opts p in
  let st = Interp.make_state (Parser.parse_string src) in
  Interp.set_threads st threads;
  match Interp.call st fname args with
  | Some v -> Value.to_float v
  | None -> Alcotest.fail "expected function result"

let test_pipeline_serial () =
  let p = sample_program () in
  (* process(n, input) = sum(2 * input); drive via a wrapper that
     builds the input array *)
  let src = Fortran_gen.to_source ~opts:{ Fortran_gen.default_options with emit_omp = false } p in
  let wrapper =
    {|
real*8 function driver(n)
  integer :: n
  real*8, allocatable :: buf(:)
  integer :: i
  allocate(buf(n))
  do i = 1, n
    buf(i) = i * 1.0d0
  end do
  driver = process(n, buf)
end function driver
|}
  in
  let st = Interp.make_state (Parser.parse_string (src ^ "\n" ^ wrapper)) in
  match Interp.call st "driver" [ Ast.Int_lit 10 ] with
  | Some v -> check_float "2 * (1+..+10)" 110.0 (Value.to_float v)
  | None -> Alcotest.fail "no result"

let test_pipeline_parallel_matches_serial () =
  let p = sample_program () in
  let annotated, report = Autopar.run p in
  check_int "three loops" 3 (List.length report);
  check_bool "all parallel" true
    (List.for_all
       (fun e -> e.Autopar.re_info.Loop_info.parallel)
       report);
  let src_serial =
    Fortran_gen.to_source
      ~opts:{ Fortran_gen.default_options with emit_omp = false }
      annotated
  in
  let src_par = Fortran_gen.to_source annotated in
  check_bool "directives emitted" true (contains src_par "!$omp parallel do");
  let wrapper =
    {|
real*8 function driver(n)
  integer :: n
  real*8, allocatable :: buf(:)
  integer :: i
  allocate(buf(n))
  do i = 1, n
    buf(i) = i * 0.5d0
  end do
  driver = process(n, buf)
end function driver
|}
  in
  let run src threads =
    let st = Interp.make_state (Parser.parse_string (src ^ "\n" ^ wrapper)) in
    Interp.set_threads st threads;
    match Interp.call st "driver" [ Ast.Int_lit 200 ] with
    | Some v -> Value.to_float v
    | None -> Alcotest.fail "no result"
  in
  let serial = run src_serial 1 in
  let par = run src_par 4 in
  check_float "parallel == serial" serial par

let test_codegen_save_allocation () =
  (* no-realloc transform: generated code must guard the allocate *)
  let p = sample_program () in
  let p = No_realloc.apply p in
  let src = Fortran_gen.to_source p in
  check_bool "guarded allocate" true (contains src "if (.not. allocated(work))");
  check_bool "save attr" true (contains src ", save :: work")

let test_codegen_collapse_clause () =
  let b = Build.create "cdemo" in
  Build.add_module b "m";
  Build.start_function b "mat";
  Build.add_param b (Grid.scalar Types.T_int "n");
  Build.add_grid b
    (Grid.array Types.T_real8
       ~dims:[ Grid.dim (Grid.Sym "n"); Grid.dim (Grid.Sym "n") ]
       "a");
  Build.start_step b "s";
  Build.add_stmt b
    (Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
       [
         Stmt.for_ "j" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
           [
             Stmt.assign_idx "a" [ Expr.var "i"; Expr.var "j" ]
               Expr.(var "i" + var "j" + real 0.0);
           ];
       ]);
  let p = Build.finish b in
  let annotated, _ = Autopar.run p in
  let src = Fortran_gen.to_source annotated in
  check_bool "collapse(2) emitted" true (contains src "collapse(2)")

(* --- C codegen ------------------------------------------------------------ *)

let test_c_codegen () =
  let p = sample_program () in
  let annotated, _ = Autopar.run p in
  let src = C_gen.gen_program annotated in
  check_bool "pragma" true (contains src "#pragma omp parallel for");
  check_bool "function sig" true
    (contains src "double process(int n, double *restrict input)");
  check_bool "zero-based indexing" true (contains src "[(i) - 1]");
  check_bool "calloc for dynamic" true (contains src "calloc(n, sizeof(double))")

(* Cross-language parity: compile the generated C with gcc, run it,
   and compare the result against the interpreter running the
   generated Fortran on the same input. *)
let test_c_execution_parity () =
  if Sys.command "which gcc > /dev/null 2>&1" <> 0 then ()
  else begin
    let p = sample_program () in
    let annotated, _ = Autopar.run p in
    (* interpreter reference through the Fortran backend *)
    let fsrc =
      Fortran_gen.to_source annotated
      ^ {|
real*8 function c_parity_driver(n)
  integer :: n
  real*8, allocatable :: buf(:)
  integer :: i
  allocate(buf(n))
  do i = 1, n
    buf(i) = i * 0.5d0
  end do
  c_parity_driver = process(n, buf)
end function c_parity_driver
|}
    in
    let st = Interp.make_state (Parser.parse_string fsrc) in
    let expected =
      match Interp.call st "c_parity_driver" [ Ast.Int_lit 50 ] with
      | Some v -> Value.to_float v
      | None -> Alcotest.fail "no interpreter result"
    in
    (* C side: generated translation unit + a driver main *)
    let csrc =
      C_gen.gen_program annotated
      ^ {|
#include <stdio.h>
int main(void) {
  double buf[50];
  for (int i = 1; i <= 50; i++) buf[i - 1] = i * 0.5;
  printf("%.12f\n", process(50, buf));
  return 0;
}
|}
    in
    let file = Filename.temp_file "oglaf_c_parity" ".c" in
    let oc = open_out file in
    output_string oc csrc;
    close_out oc;
    let exe = file ^ ".exe" in
    let rc =
      Sys.command
        (Printf.sprintf "gcc -std=c99 -O1 -fopenmp %s -o %s -lm 2> %s.log"
           (Filename.quote file) (Filename.quote exe) (Filename.quote file))
    in
    if rc <> 0 then Alcotest.fail "gcc failed on parity driver";
    let out = Filename.temp_file "oglaf_c_parity" ".out" in
    let rc =
      Sys.command
        (Printf.sprintf "%s > %s" (Filename.quote exe) (Filename.quote out))
    in
    if rc <> 0 then Alcotest.fail "compiled C program crashed";
    let ic = open_in out in
    let line = input_line ic in
    close_in ic;
    let got = float_of_string (String.trim line) in
    Alcotest.(check (float 1e-9)) "C executable matches interpreter" expected got
  end

(* --- OpenCL codegen --------------------------------------------------------- *)

let test_opencl_kernels () =
  let p = sample_program () in
  let annotated, _ = Autopar.run p in
  let m = List.hd annotated.Ir_module.modules in
  let f = List.hd m.Ir_module.functions in
  let out = Opencl_gen.gen_function annotated m f in
  check_int "three kernels (zero, scale, reduce)" 3 (List.length out.Opencl_gen.kernels);
  let reduce_k = List.nth out.Opencl_gen.kernels 2 in
  check_bool "reduction partial buffer" true
    (contains reduce_k.Opencl_gen.k_source "total_partial[get_global_id(0)]");
  check_bool "global id indexing" true
    (contains reduce_k.Opencl_gen.k_source "get_global_id(0) + (1)");
  check_bool "host enqueues in order" true
    (contains out.Opencl_gen.host_source "enqueue process_k1");
  let full = Opencl_gen.gen_program annotated in
  check_bool "fp64 pragma" true (contains full "cl_khr_fp64")

let test_opencl_collapse_2d () =
  let b = Build.create "cl2d" in
  Build.add_module b "m";
  Build.start_function b "mat";
  Build.add_param b (Grid.scalar Types.T_int "n");
  Build.add_grid b
    (Grid.array Types.T_real8
       ~dims:[ Grid.dim (Grid.Sym "n"); Grid.dim (Grid.Sym "n") ] "a");
  Build.start_step b "s";
  Build.add_stmt b
    (Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
       [
         Stmt.for_ "j" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
           [
             Stmt.assign_idx "a" [ Expr.var "i"; Expr.var "j" ]
               Expr.(var "i" + var "j" + real 0.0);
           ];
       ]);
  let p = Build.finish b in
  let annotated, _ = Autopar.run p in
  let m = List.hd annotated.Ir_module.modules in
  let f = List.hd m.Ir_module.functions in
  let out = Opencl_gen.gen_function annotated m f in
  match out.Opencl_gen.kernels with
  | [ k ] ->
    check_int "2-D NDRange" 2 k.Opencl_gen.k_ndrange;
    check_bool "second dimension id" true
      (contains k.Opencl_gen.k_source "get_global_id(1)")
  | ks -> Alcotest.failf "expected one kernel, got %d" (List.length ks)

(* The generated C must actually compile: gcc is available in the
   build environment, so smoke-compile the OpenMP C translation unit. *)
let test_c_output_compiles () =
  match Sys.command "which gcc > /dev/null 2>&1" with
  | 0 ->
    let p = sample_program () in
    let annotated, _ = Autopar.run p in
    let src = C_gen.gen_program annotated in
    let file = Filename.temp_file "oglaf_c_test" ".c" in
    let oc = open_out file in
    output_string oc src;
    close_out oc;
    let rc =
      Sys.command
        (Printf.sprintf "gcc -std=c99 -fopenmp -c %s -o %s.o 2> %s.log"
           (Filename.quote file) (Filename.quote file) (Filename.quote file))
    in
    if rc <> 0 then begin
      let log = file ^ ".log" in
      let ic = open_in log in
      let msg = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.failf "gcc rejected generated C:\n%s\n%s" msg src
    end
  | _ -> () (* no gcc: skip *)

(* --- optimizer -------------------------------------------------------------- *)

let classified_program () =
  (* one loop of each class, all parallelizable *)
  let b = Build.create "classes" in
  Build.add_module b "m";
  Build.start_function b "kinds";
  Build.add_param b (Grid.scalar Types.T_int "n");
  Build.add_grid b (Grid.array Types.T_real8 ~dims:[ Grid.dim (Grid.Sym "n") ] "a");
  Build.add_grid b (Grid.array Types.T_real8 ~dims:[ Grid.dim (Grid.Sym "n") ] "bsrc");
  Build.add_grid b
    (Grid.array Types.T_real8
       ~dims:[ Grid.dim (Grid.Sym "n"); Grid.dim (Grid.Sym "n") ] "m2");
  Build.add_grid b (Grid.scalar Types.T_real8 "s");
  Build.start_step b "all";
  (* init zero *)
  Build.add_stmt b
    (Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
       [ Stmt.assign_idx "a" [ Expr.var "i" ] (Expr.real 0.0) ]);
  (* broadcast *)
  Build.add_stmt b
    (Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
       [ Stmt.assign_idx "a" [ Expr.var "i" ] (Expr.idx "bsrc" [ Expr.var "i" ]) ]);
  (* simple single (reduction) *)
  Build.add_stmt b
    (Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
       [ Stmt.assign_var "s" Expr.(var "s" + idx "a" [ var "i" ]) ]);
  (* simple double *)
  Build.add_stmt b
    (Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
       [
         Stmt.for_ "j" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
           [
             Stmt.assign_idx "m2" [ Expr.var "i"; Expr.var "j" ]
               Expr.(var "i" * var "j" * real 1.0);
           ];
       ]);
  (* complex: a double nest with control flow (the longwave pattern) *)
  Build.add_stmt b
    (Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
       [
         Stmt.for_ "j" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
           [
             Stmt.if_
               Expr.(idx "bsrc" [ var "j" ] > real 0.0)
               [
                 Stmt.assign_idx "m2" [ Expr.var "i"; Expr.var "j" ]
                   (Expr.real 1.0);
               ]
               [
                 Stmt.assign_idx "m2" [ Expr.var "i"; Expr.var "j" ]
                   (Expr.real 2.0);
               ];
           ];
       ]);
  Build.finish b

let test_directive_policies () =
  let p = classified_program () in
  let annotated, _ = Autopar.run p in
  let count pol =
    Directive_policy.directive_count (Directive_policy.apply pol annotated)
  in
  check_int "v0 keeps all" 5 (count Directive_policy.V0);
  check_int "v1 drops init+broadcast" 3 (count Directive_policy.V1);
  check_int "v2 also drops simple single" 2 (count Directive_policy.V2);
  check_int "v3 keeps only complex" 1 (count Directive_policy.V3)

let test_policy_preserves_semantics () =
  let p = classified_program () in
  let annotated, _ = Autopar.run p in
  let src_of pol =
    Fortran_gen.to_source (Directive_policy.apply pol annotated)
  in
  let wrapper =
    {|
real*8 function driver(n)
  integer :: n
  real*8 :: r
  call kinds(n)
  r = 1.0d0
  driver = r
end function driver
|}
  in
  (* kinds is generated as subroutine (no return): just make sure each
     variant parses and runs without error *)
  List.iter
    (fun pol ->
      let src = src_of pol in
      let st = Interp.make_state (Parser.parse_string (src ^ "\n" ^ wrapper)) in
      Interp.set_threads st 4;
      match Interp.call st "driver" [ Ast.Int_lit 30 ] with
      | Some v -> check_float (Directive_policy.name pol) 1.0 (Value.to_float v)
      | None -> Alcotest.fail "no result")
    Directive_policy.all

let test_layout_soa () =
  let b = Build.create "layout" in
  Build.add_module b "m";
  Build.start_function b "sweep";
  Build.add_param b (Grid.scalar Types.T_int "n");
  Build.add_grid b
    (Grid.record
       [ ("x", Types.T_real8); ("y", Types.T_real8) ]
       ~dims:[ Grid.dim (Grid.Sym "n") ] "pts");
  Build.add_grid b (Grid.scalar Types.T_real8 "acc");
  Build.start_step b "s";
  Build.add_stmt b
    (Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
       [
         Stmt.Assign
           ( { Expr.grid = "pts"; field = Some "y"; indices = [ Expr.var "i" ] },
             Expr.(fld "pts" "x" [ var "i" ] * real 2.0) );
       ]);
  let p = Build.finish b in
  let soa = Layout.to_soa p in
  (match Validate.program soa with
  | [] -> ()
  | errs ->
    Alcotest.failf "SoA program invalid: %s"
      (String.concat "; " (List.map Validate.error_to_string errs)));
  let f = List.hd (Ir_module.all_functions soa) in
  check_bool "split grids present" true
    (Func.find_grid f "pts_x" <> None && Func.find_grid f "pts_y" <> None);
  check_bool "record gone" true (Func.find_grid f "pts" = None);
  let src = Fortran_gen.to_source soa in
  check_bool "no derived type" false (contains src "type :: pts_t");
  (* AoS version keeps the record *)
  let src_aos = Fortran_gen.to_source p in
  check_bool "AoS derived type" true (contains src_aos "type :: pts_t")

let test_autopar_idempotent () =
  let p = classified_program () in
  let once, _ = Autopar.run p in
  let twice, _ = Autopar.run once in
  check_bool "second pass changes nothing" true
    (Ir_module.equal_program once twice)

let test_policy_monotone () =
  let p = classified_program () in
  let annotated, _ = Autopar.run p in
  let counts =
    List.map
      (fun pol -> Directive_policy.directive_count (Directive_policy.apply pol annotated))
      Directive_policy.all
  in
  check_bool "v0 >= v1 >= v2 >= v3" true
    (match counts with
    | [ a; b; c; d ] -> a >= b && b >= c && c >= d
    | _ -> false)

let test_soa_execution_equal () =
  (* the SoA transform must not change results *)
  let build () =
    let b = Build.create "soaexec" in
    Build.add_module b "m";
    Build.start_function b "energy" ~return:Types.T_real8;
    Build.add_param b (Grid.scalar Types.T_int "n");
    Build.add_grid b
      (Grid.record
         [ ("x", Types.T_real8); ("v", Types.T_real8) ]
         ~dims:[ Grid.dim (Grid.Sym "n") ] "pt");
    Build.add_grid b (Grid.scalar Types.T_real8 "e");
    Build.start_step b "init";
    Build.add_stmt b
      (Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
         [
           Stmt.Assign
             ( { Expr.grid = "pt"; field = Some "x"; indices = [ Expr.var "i" ] },
               Expr.(var "i" * real 0.5) );
           Stmt.Assign
             ( { Expr.grid = "pt"; field = Some "v"; indices = [ Expr.var "i" ] },
               Expr.(real 3.0 / var "i") );
         ]);
    Build.start_step b "sum";
    Build.add_stmt b (Stmt.assign_var "e" (Expr.real 0.0));
    Build.add_stmt b
      (Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
         [
           Stmt.assign_var "e"
             Expr.(var "e" + fld "pt" "x" [ var "i" ] * fld "pt" "v" [ var "i" ]);
         ]);
    Build.add_stmt b (Stmt.Return (Some (Expr.var "e")));
    Build.finish b
  in
  let run p =
    let src =
      Fortran_gen.to_source
        ~opts:{ Fortran_gen.default_options with emit_omp = false }
        p
    in
    let st = Interp.make_state (Parser.parse_string src) in
    match Interp.call st "energy" [ Ast.Int_lit 32 ] with
    | Some v -> Value.to_float v
    | None -> Alcotest.fail "no result"
  in
  let aos = build () in
  let soa = Layout.to_soa aos in
  check_float "AoS = SoA" (run aos) (run soa)

let test_loop_interchange () =
  let p = classified_program () in
  let m = List.hd p.Ir_module.modules in
  let f = List.hd m.Ir_module.functions in
  let env = Depend.env_of_program p m f in
  let nest =
    Stmt.
      {
        index = "i";
        lo = Expr.int 1;
        hi = Expr.var "n";
        step = Expr.int 1;
        body =
          [
            Stmt.For
              {
                index = "j";
                lo = Expr.int 1;
                hi = Expr.var "n";
                step = Expr.int 1;
                body =
                  [
                    Stmt.assign_idx "m2" [ Expr.var "i"; Expr.var "j" ]
                      Expr.(var "i" + var "j" + real 0.0);
                  ];
                directive = None;
                schedule = None;
              };
          ];
        directive = None;
                schedule = None;
      }
  in
  match Loop_opt.interchange env nest with
  | Some swapped ->
    check_str "outer index now j" "j" swapped.Stmt.index;
    (match swapped.Stmt.body with
    | [ Stmt.For inner ] -> check_str "inner index now i" "i" inner.Stmt.index
    | _ -> Alcotest.fail "bad shape")
  | None -> Alcotest.fail "interchange refused legal nest"

let test_manual_collapse_semantics () =
  (* collapse transform preserves results through the interpreter *)
  let nest =
    Stmt.
      {
        index = "i";
        lo = Expr.int 1;
        hi = Expr.var "n";
        step = Expr.int 1;
        body =
          [
            Stmt.For
              {
                index = "j";
                lo = Expr.int 1;
                hi = Expr.var "m";
                step = Expr.int 1;
                body =
                  [
                    Stmt.assign_idx "a" [ Expr.var "i"; Expr.var "j" ]
                      Expr.(var "i" * int 100 + var "j" + real 0.0);
                  ];
                directive = None;
                schedule = None;
              };
          ];
        directive = None;
                schedule = None;
      }
  in
  let collapsed =
    match Loop_opt.collapse ~fresh_index:"k" nest with
    | Some l -> l
    | None -> Alcotest.fail "collapse refused"
  in
  let build_with loop =
    let b = Build.create "cp" in
    Build.add_module b "m";
    Build.start_function b "fill" ~return:Types.T_real8;
    Build.add_param b (Grid.scalar Types.T_int "n");
    Build.add_param b (Grid.scalar Types.T_int "m");
    Build.add_grid b
      (Grid.array Types.T_real8
         ~dims:[ Grid.dim (Grid.Sym "n"); Grid.dim (Grid.Sym "m") ] "a");
    Build.add_grid b (Grid.scalar Types.T_real8 "s");
    Build.add_grid b (Grid.scalar Types.T_int "i");
    Build.add_grid b (Grid.scalar Types.T_int "j");
    Build.start_step b "s";
    Build.add_stmt b (Stmt.For loop);
    Build.add_stmt b (Stmt.assign_var "s" (Expr.real 0.0));
    Build.add_stmt b
      (Stmt.for_ "i2" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
         [
           Stmt.for_ "j2" ~lo:(Expr.int 1) ~hi:(Expr.var "m")
             [
               Stmt.assign_var "s"
                 Expr.(var "s" + idx "a" [ var "i2"; var "j2" ]);
             ];
         ]);
    Build.add_stmt b (Stmt.Return (Some (Expr.var "s")));
    Build.finish b
  in
  let run p =
    let src = Fortran_gen.to_source ~opts:{ Fortran_gen.default_options with emit_omp = false } p in
    let st = Interp.make_state (Parser.parse_string src) in
    match Interp.call st "fill" [ Ast.Int_lit 7; Ast.Int_lit 5 ] with
    | Some v -> Value.to_float v
    | None -> Alcotest.fail "no result"
  in
  check_float "collapse preserves semantics"
    (run (build_with nest))
    (run (build_with collapsed))

(* --- property: pipeline equivalence over random programs ----------------- *)

let arb_simple_kernel =
  (* random straight-line elementwise kernels: a(i) = affine(b(i), i) *)
  let open QCheck in
  let gen =
    Gen.(
      map3
        (fun c1 c2 n -> (c1, c2, n))
        (float_range (-4.0) 4.0) (float_range (-4.0) 4.0) (int_range 1 64))
  in
  make ~print:(fun (c1, c2, n) -> Printf.sprintf "(%g, %g, %d)" c1 c2 n) gen

let prop_pipeline_matches_direct =
  QCheck.Test.make ~name:"generated code equals direct evaluation" ~count:30
    arb_simple_kernel (fun (c1, c2, n) ->
      let b = Build.create "prop" in
      Build.add_module b "m";
      Build.start_function b "kern" ~return:Types.T_real8;
      Build.add_param b (Grid.scalar Types.T_int "n");
      Build.add_grid b
        (Grid.array Types.T_real8 ~dims:[ Grid.dim (Grid.Sym "n") ] "a");
      Build.add_grid b (Grid.scalar Types.T_real8 "s");
      Build.start_step b "s";
      Build.add_stmt b
        (Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
           [
             Stmt.assign_idx "a" [ Expr.var "i" ]
               Expr.((real c1 * var "i") + real c2);
           ]);
      Build.add_stmt b (Stmt.assign_var "s" (Expr.real 0.0));
      Build.add_stmt b
        (Stmt.for_ "i" ~lo:(Expr.int 1) ~hi:(Expr.var "n")
           [ Stmt.assign_var "s" Expr.(var "s" + idx "a" [ var "i" ]) ]);
      Build.add_stmt b (Stmt.Return (Some (Expr.var "s")));
      let p = Build.finish b in
      let annotated, _ = Autopar.run p in
      let src = Fortran_gen.to_source annotated in
      let st = Interp.make_state (Parser.parse_string src) in
      Interp.set_threads st 4;
      let got =
        match Interp.call st "kern" [ Ast.Int_lit n ] with
        | Some v -> Value.to_float v
        | None -> nan
      in
      let expected = ref 0.0 in
      for i = 1 to n do
        expected := !expected +. ((c1 *. float_of_int i) +. c2)
      done;
      Float.abs (got -. !expected) < 1e-6 *. (1.0 +. Float.abs !expected))

let suites =
  [
    ( "builder",
      [
        Alcotest.test_case "basic" `Quick test_builder_basic;
        Alcotest.test_case "rejects invalid" `Quick test_builder_rejects_invalid;
        Alcotest.test_case "storage helpers" `Quick test_builder_storage_helpers;
      ] );
    ( "gpi_script",
      [
        Alcotest.test_case "runs" `Quick test_gpi_script_runs;
        Alcotest.test_case "control flow" `Quick test_gpi_script_control_flow;
        Alcotest.test_case "integration grids" `Quick test_gpi_script_integration_grids;
        Alcotest.test_case "while + control flow" `Quick test_gpi_script_while_and_loops;
        Alcotest.test_case "scopes and clauses" `Quick test_gpi_script_scopes_and_clauses;
        Alcotest.test_case "errors with line" `Quick test_gpi_script_errors_with_line;
      ] );
    ( "codegen.fortran",
      [
        Alcotest.test_case "integration features" `Quick test_codegen_emits_integration_features;
        Alcotest.test_case "roundtrip parses" `Quick test_codegen_roundtrip_parses;
        Alcotest.test_case "pipeline serial" `Quick test_pipeline_serial;
        Alcotest.test_case "pipeline parallel" `Quick test_pipeline_parallel_matches_serial;
        Alcotest.test_case "save allocation" `Quick test_codegen_save_allocation;
        Alcotest.test_case "collapse clause" `Quick test_codegen_collapse_clause;
        QCheck_alcotest.to_alcotest prop_pipeline_matches_direct;
      ] );
    ( "codegen.c",
      [
        Alcotest.test_case "c output" `Quick test_c_codegen;
        Alcotest.test_case "gcc compiles output" `Quick test_c_output_compiles;
        Alcotest.test_case "C execution parity" `Quick test_c_execution_parity;
      ] );
    ( "codegen.opencl",
      [
        Alcotest.test_case "kernels" `Quick test_opencl_kernels;
        Alcotest.test_case "collapse 2d" `Quick test_opencl_collapse_2d;
      ] );
    ( "optimizer",
      [
        Alcotest.test_case "directive policies" `Quick test_directive_policies;
        Alcotest.test_case "policies preserve semantics" `Quick test_policy_preserves_semantics;
        Alcotest.test_case "SoA layout" `Quick test_layout_soa;
        Alcotest.test_case "SoA execution equal" `Quick test_soa_execution_equal;
        Alcotest.test_case "autopar idempotent" `Quick test_autopar_idempotent;
        Alcotest.test_case "policy monotone" `Quick test_policy_monotone;
        Alcotest.test_case "loop interchange" `Quick test_loop_interchange;
        Alcotest.test_case "manual collapse" `Quick test_manual_collapse_semantics;
      ] );
  ]
