(* Interpreter tests: serial semantics, integration constructs
   (COMMON, modules, TYPE elements, SAVE), and parallel execution. *)

open Glaf_fortran
open Glaf_runtime
open Glaf_interp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let check_float msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

let state_of src = Interp.make_state (Parser.parse_string src)

let call_scalar st name args =
  match Interp.call st name args with
  | Some v -> v
  | None -> Alcotest.fail "expected a function result"

(* --- basic evaluation ------------------------------------------------- *)

let test_function_result () =
  let st =
    state_of
      {|
real*8 function square(x)
  real*8 :: x
  square = x * x
end function square
|}
  in
  check_float "square" 9.0 (Value.to_float (call_scalar st "square" [ Ast.Real_lit (3.0, true) ]))

let test_integer_division () =
  let st =
    state_of
      {|
integer function idiv(a, b)
  integer :: a, b
  idiv = a / b
end function idiv
|}
  in
  check_int "7/2" 3
    (Value.to_int (call_scalar st "idiv" [ Ast.Int_lit 7; Ast.Int_lit 2 ]))

let test_intrinsics () =
  let st =
    state_of
      {|
real*8 function use_intrinsics(x)
  real*8 :: x
  use_intrinsics = abs(x) + alog(exp(1.0d0)) + max(1.0d0, 2.0d0, 0.5d0) + sign(3.0d0, -1.0d0)
end function use_intrinsics
|}
  in
  (* |x| + 1 + 2 + (-3) with x = -4 -> 4 *)
  check_float "intrinsics" 4.0
    (Value.to_float (call_scalar st "use_intrinsics" [ Ast.Real_lit (-4.0, true) ]))

let test_sum_intrinsic_and_section () =
  let st =
    state_of
      {|
real*8 function partial_sum(n, a, k)
  integer :: n, k
  real*8, dimension(n) :: a
  partial_sum = sum(a(1:k))
end function partial_sum

subroutine fill_iota(n, a)
  integer :: n
  real*8, dimension(n) :: a
  integer :: i
  do i = 1, n
    a(i) = real(i)
  end do
end subroutine fill_iota

real*8 function driver()
  real*8, dimension(10) :: buf
  call fill_iota(10, buf)
  driver = partial_sum(10, buf, 4)
end function driver
|}
  in
  check_float "1+2+3+4" 10.0 (Value.to_float (call_scalar st "driver" []))

let test_subroutine_aliasing () =
  let st =
    state_of
      {|
subroutine bump(x)
  real*8 :: x
  x = x + 1.0d0
end subroutine bump

real*8 function run_bump()
  real*8 :: v
  v = 10.0d0
  call bump(v)
  call bump(v)
  run_bump = v
end function run_bump
|}
  in
  check_float "by-ref scalar" 12.0 (Value.to_float (call_scalar st "run_bump" []))

let test_array_element_copyout () =
  let st =
    state_of
      {|
subroutine setval(x)
  real*8 :: x
  x = 42.0d0
end subroutine setval

real*8 function run_elem()
  real*8, dimension(3) :: a
  a(2) = 0.0d0
  call setval(a(2))
  run_elem = a(2)
end function run_elem
|}
  in
  check_float "copy-out to element" 42.0 (Value.to_float (call_scalar st "run_elem" []))

let test_whole_array_argument () =
  let st =
    state_of
      {|
subroutine scale(n, a, f)
  integer :: n
  real*8 :: f
  real*8, dimension(n) :: a
  integer :: i
  do i = 1, n
    a(i) = a(i) * f
  end do
end subroutine scale

real*8 function run_scale()
  real*8, dimension(4) :: a
  integer :: i
  do i = 1, 4
    a(i) = 1.0d0
  end do
  call scale(4, a, 5.0d0)
  run_scale = sum(a)
end function run_scale
|}
  in
  check_float "aliased array" 20.0 (Value.to_float (call_scalar st "run_scale" []))

let test_if_else_chain () =
  let st =
    state_of
      {|
integer function classify(x)
  real*8 :: x
  if (x > 1.0d0) then
    classify = 1
  else if (x > 0.0d0) then
    classify = 2
  else
    classify = 3
  end if
end function classify
|}
  in
  let c x = Value.to_int (call_scalar st "classify" [ Ast.Real_lit (x, true) ]) in
  check_int "big" 1 (c 2.0);
  check_int "mid" 2 (c 0.5);
  check_int "neg" 3 (-0.5 |> c)

let test_do_loops_exit_cycle () =
  let st =
    state_of
      {|
integer function count_even_until(n, stop_at)
  integer :: n, stop_at
  integer :: i, c
  c = 0
  do i = 1, n
    if (i == stop_at) exit
    if (mod(i, 2) == 1) cycle
    c = c + 1
  end do
  count_even_until = c
end function count_even_until
|}
  in
  check_int "evens below 7" 3
    (Value.to_int (call_scalar st "count_even_until" [ Ast.Int_lit 100; Ast.Int_lit 7 ]))

let test_do_step () =
  let st =
    state_of
      {|
integer function sum_step(n)
  integer :: n
  integer :: i, s
  s = 0
  do i = n, 1, -2
    s = s + i
  end do
  sum_step = s
end function sum_step
|}
  in
  (* 10+8+6+4+2 = 30 *)
  check_int "negative step" 30
    (Value.to_int (call_scalar st "sum_step" [ Ast.Int_lit 10 ]))

let test_do_while () =
  let st =
    state_of
      {|
integer function collatz_steps(n0)
  integer :: n0
  integer :: n, steps
  n = n0
  steps = 0
  do while (n /= 1)
    if (mod(n, 2) == 0) then
      n = n / 2
    else
      n = 3 * n + 1
    end if
    steps = steps + 1
  end do
  collatz_steps = steps
end function collatz_steps
|}
  in
  check_int "collatz(6)" 8
    (Value.to_int (call_scalar st "collatz_steps" [ Ast.Int_lit 6 ]))

(* --- integration constructs (paper §3) --------------------------------- *)

let test_module_scope_variables () =
  let st =
    state_of
      {|
module shared_state
  implicit none
  real*8 :: accumulator = 0.0d0
  integer, parameter :: nv = 5
  real*8, dimension(nv) :: level
contains
  subroutine accumulate(x)
    real*8 :: x
    accumulator = accumulator + x
  end subroutine accumulate
  subroutine set_levels()
    integer :: k
    do k = 1, nv
      level(k) = k * 10.0d0
    end do
  end subroutine set_levels
end module shared_state
|}
  in
  ignore (Interp.call st "accumulate" [ Ast.Real_lit (2.5, true) ]);
  ignore (Interp.call st "accumulate" [ Ast.Real_lit (1.5, true) ]);
  check_float "module accumulator" 4.0
    (Value.to_float (Interp.module_scalar st ~module_name:"shared_state" ~var:"accumulator"));
  ignore (Interp.call st "set_levels" []);
  let a = Interp.module_array st ~module_name:"shared_state" ~var:"level" in
  check_float "level(3)" 30.0 (Farray.get_float a [| 3 |])

let test_use_module_from_external_sub () =
  let st =
    state_of
      {|
module config
  implicit none
  real*8 :: factor = 3.0d0
end module config

real*8 function apply_factor(x)
  use config
  real*8 :: x
  apply_factor = x * factor
end function apply_factor
|}
  in
  check_float "use module var" 6.0
    (Value.to_float (call_scalar st "apply_factor" [ Ast.Real_lit (2.0, true) ]))

let test_common_block_sharing () =
  let st =
    state_of
      {|
subroutine producer()
  common /shared/ total, count
  real*8 :: total
  integer :: count
  total = 12.5d0
  count = 4
end subroutine producer

real*8 function consumer()
  common /shared/ total, count
  real*8 :: total
  integer :: count
  consumer = total / count
end function consumer
|}
  in
  ignore (Interp.call st "producer" []);
  check_float "common shared" 3.125 (Value.to_float (call_scalar st "consumer" []));
  check_float "common introspection" 12.5
    (Value.to_float (Interp.common_scalar st ~block:"shared" ~var:"total"))

let test_type_elements () =
  let st =
    state_of
      {|
module particle_mod
  implicit none
  type :: particle_t
    real*8 :: charge
    real*8, dimension(3) :: pos
  end type particle_t
  type(particle_t) :: p1
end module particle_mod

subroutine init_particle()
  use particle_mod
  p1%charge = -1.0d0
  p1%pos(1) = 0.5d0
  p1%pos(2) = 1.5d0
  p1%pos(3) = 2.5d0
end subroutine init_particle

real*8 function particle_norm()
  use particle_mod
  particle_norm = p1%charge * (p1%pos(1) + p1%pos(2) + p1%pos(3))
end function particle_norm
|}
  in
  ignore (Interp.call st "init_particle" []);
  check_float "type element access" (-4.5)
    (Value.to_float (call_scalar st "particle_norm" []))

let test_derived_type_array () =
  let st =
    state_of
      {|
module cells_mod
  implicit none
  type :: cell_t
    real*8 :: volume
  end type cell_t
  type(cell_t), dimension(4) :: cells
end module cells_mod

real*8 function total_volume()
  use cells_mod
  integer :: i
  do i = 1, 4
    cells(i)%volume = i * 1.0d0
  end do
  total_volume = 0.0d0
  do i = 1, 4
    total_volume = total_volume + cells(i)%volume
  end do
end function total_volume
|}
  in
  check_float "array of derived" 10.0 (Value.to_float (call_scalar st "total_volume" []))

let test_save_attribute_persistence () =
  let st =
    state_of
      {|
integer function counter()
  integer, save :: n = 0
  n = n + 1
  counter = n
end function counter
|}
  in
  check_int "first" 1 (Value.to_int (call_scalar st "counter" []));
  check_int "second" 2 (Value.to_int (call_scalar st "counter" []));
  check_int "third" 3 (Value.to_int (call_scalar st "counter" []))

let test_allocatable_and_alloc_count () =
  let st =
    state_of
      {|
real*8 function with_temp(n)
  integer :: n
  real*8, allocatable :: tmp(:)
  integer :: i
  allocate(tmp(n))
  do i = 1, n
    tmp(i) = 2.0d0
  end do
  with_temp = sum(tmp)
  deallocate(tmp)
end function with_temp
|}
  in
  Interp.reset_allocations st;
  check_float "allocatable sum" 10.0
    (Value.to_float (call_scalar st "with_temp" [ Ast.Int_lit 5 ]));
  check_int "one allocation" 1 (Interp.allocations st);
  ignore (call_scalar st "with_temp" [ Ast.Int_lit 5 ]);
  check_int "reallocation counted" 2 (Interp.allocations st)

let test_save_avoids_reallocation () =
  let st =
    state_of
      {|
real*8 function with_saved_temp(n)
  integer :: n
  real*8, allocatable, save :: tmp(:)
  integer :: i
  if (.not. allocated(tmp)) then
    allocate(tmp(n))
  end if
  do i = 1, n
    tmp(i) = 3.0d0
  end do
  with_saved_temp = sum(tmp)
end function with_saved_temp
|}
  in
  Interp.reset_allocations st;
  ignore (call_scalar st "with_saved_temp" [ Ast.Int_lit 4 ]);
  ignore (call_scalar st "with_saved_temp" [ Ast.Int_lit 4 ]);
  ignore (call_scalar st "with_saved_temp" [ Ast.Int_lit 4 ]);
  check_int "only first call allocates" 1 (Interp.allocations st)

(* --- parallel execution ------------------------------------------------ *)

let par_sum_src =
  {|
real*8 function par_sum(n, t)
  integer :: n, t
  real*8 :: s
  integer :: i
  s = 0.0d0
!$omp parallel do private(i) reduction(+:s) num_threads(t)
  do i = 1, n
    s = s + i * 1.0d0
  end do
!$omp end parallel do
  par_sum = s
end function par_sum
|}

let test_parallel_reduction () =
  let st = state_of par_sum_src in
  let run t =
    Value.to_float
      (call_scalar st "par_sum" [ Ast.Int_lit 1000; Ast.Int_lit t ])
  in
  check_float "1 thread" 500500.0 (run 1);
  check_float "4 threads" 500500.0 (run 4);
  check_float "3 threads (uneven chunks)" 500500.0 (run 3)

let test_parallel_array_writes () =
  let st =
    state_of
      {|
subroutine fill_squares(n, a, t)
  integer :: n, t
  real*8, dimension(n) :: a
  integer :: i
!$omp parallel do private(i) num_threads(t)
  do i = 1, n
    a(i) = i * i * 1.0d0
  end do
!$omp end parallel do
end subroutine fill_squares

real*8 function check_squares(n, t)
  integer :: n, t
  real*8, dimension(n) :: a
  integer :: i
  real*8 :: err
  call fill_squares(n, a, t)
  err = 0.0d0
  do i = 1, n
    err = err + abs(a(i) - i * i)
  end do
  check_squares = err
end function check_squares
|}
  in
  check_float "parallel writes correct" 0.0
    (Value.to_float
       (call_scalar st "check_squares" [ Ast.Int_lit 500; Ast.Int_lit 4 ]))

let test_parallel_collapse2 () =
  let st =
    state_of
      {|
real*8 function mat_sum(n, m, t)
  integer :: n, m, t
  real*8 :: s
  integer :: i, j
  s = 0.0d0
!$omp parallel do private(i, j) reduction(+:s) collapse(2) num_threads(t)
  do i = 1, n
    do j = 1, m
      s = s + (i * 1000 + j) * 1.0d0
    end do
  end do
!$omp end parallel do
  mat_sum = s
end function mat_sum
|}
  in
  let expected n m =
    let s = ref 0.0 in
    for i = 1 to n do
      for j = 1 to m do
        s := !s +. float_of_int ((i * 1000) + j)
      done
    done;
    !s
  in
  let run n m t =
    Value.to_float
      (call_scalar st "mat_sum" [ Ast.Int_lit n; Ast.Int_lit m; Ast.Int_lit t ])
  in
  check_float "collapse serial-equal" (expected 2 60) (run 2 60 4);
  check_float "collapse odd split" (expected 7 13) (run 7 13 5)

let test_parallel_private_scalar () =
  let st =
    state_of
      {|
real*8 function private_tmp(n, t)
  integer :: n, t
  real*8, dimension(1000) :: a
  real*8 :: tmp
  integer :: i
  tmp = -1.0d0
!$omp parallel do private(i, tmp) num_threads(t)
  do i = 1, n
    tmp = i * 2.0d0
    a(i) = tmp
  end do
!$omp end parallel do
  private_tmp = a(n) + tmp
end function private_tmp
|}
  in
  (* tmp outside stays -1 (private copies never written back) *)
  check_float "private semantics" (2.0 *. 800.0 -. 1.0)
    (Value.to_float (call_scalar st "private_tmp" [ Ast.Int_lit 800; Ast.Int_lit 4 ]))

let test_parallel_firstprivate () =
  let st =
    state_of
      {|
real*8 function fp_base(n, t)
  integer :: n, t
  real*8 :: base
  real*8, dimension(100) :: a
  integer :: i
  base = 7.0d0
!$omp parallel do private(i) firstprivate(base) num_threads(t)
  do i = 1, n
    a(i) = base + i
  end do
!$omp end parallel do
  fp_base = a(10)
end function fp_base
|}
  in
  check_float "firstprivate copies in" 17.0
    (Value.to_float (call_scalar st "fp_base" [ Ast.Int_lit 100; Ast.Int_lit 4 ]))

let test_parallel_atomic () =
  let st =
    state_of
      {|
integer function atomic_count(n, t)
  integer :: n, t
  integer :: c
  integer :: i
  c = 0
!$omp parallel do private(i) num_threads(t)
  do i = 1, n
!$omp atomic
    c = c + 1
  end do
!$omp end parallel do
  atomic_count = c
end function atomic_count
|}
  in
  check_int "atomic increments" 2000
    (Value.to_int (call_scalar st "atomic_count" [ Ast.Int_lit 2000; Ast.Int_lit 8 ]))

let test_parallel_critical () =
  let st =
    state_of
      {|
real*8 function critical_max(n, t)
  integer :: n, t
  real*8 :: best
  integer :: i
  best = -1.0d0
!$omp parallel do private(i) num_threads(t)
  do i = 1, n
!$omp critical
    if (i * 1.0d0 > best) then
      best = i * 1.0d0
    end if
!$omp end critical
  end do
!$omp end parallel do
  critical_max = best
end function critical_max
|}
  in
  check_float "critical max" 700.0
    (Value.to_float (call_scalar st "critical_max" [ Ast.Int_lit 700; Ast.Int_lit 4 ]))

let test_parallel_reduction_multi_var () =
  let st =
    state_of
      {|
real*8 function two_outputs(n, t)
  integer :: n, t
  real*8 :: s1, s2
  integer :: i
  s1 = 0.0d0
  s2 = 0.0d0
!$omp parallel do private(i) reduction(+:s1, s2) num_threads(t)
  do i = 1, n
    s1 = s1 + 1.0d0
    s2 = s2 + 2.0d0
  end do
!$omp end parallel do
  two_outputs = s2 - s1
end function two_outputs
|}
  in
  check_float "multi-var reduction" 300.0
    (Value.to_float (call_scalar st "two_outputs" [ Ast.Int_lit 300; Ast.Int_lit 4 ]))

let test_parallel_reduction_max () =
  let st =
    state_of
      {|
real*8 function red_max(n, t)
  integer :: n, t
  real*8 :: m
  integer :: i
  m = -1.0d30
!$omp parallel do private(i) reduction(max:m) num_threads(t)
  do i = 1, n
    if (mod(i, 2) == 0) then
      m = max(m, i * 1.0d0)
    end if
  end do
!$omp end parallel do
  red_max = m
end function red_max
|}
  in
  check_float "max reduction" 1000.0
    (Value.to_float (call_scalar st "red_max" [ Ast.Int_lit 1001; Ast.Int_lit 4 ]))

(* property: parallel result equals serial result for random sizes *)

let prop_parallel_equals_serial =
  QCheck.Test.make ~name:"parallel sum equals serial" ~count:25
    QCheck.(pair (int_range 1 2000) (int_range 1 8))
    (fun (n, t) ->
      let st = state_of par_sum_src in
      let serial =
        Value.to_float (call_scalar st "par_sum" [ Ast.Int_lit n; Ast.Int_lit 1 ])
      in
      let par =
        Value.to_float (call_scalar st "par_sum" [ Ast.Int_lit n; Ast.Int_lit t ])
      in
      Float.abs (serial -. par) < 1e-6)

(* --- error paths --------------------------------------------------------- *)

let expect_fortran_error src fname args =
  let st = state_of src in
  match Interp.call st fname args with
  | _ -> Alcotest.fail "expected a runtime error"
  | exception Interp.Fortran_error _ -> ()
  | exception Glaf_runtime.Value.Runtime_error _ -> ()
  | exception Glaf_runtime.Farray.Bounds_error _ -> ()

let test_error_unknown_variable () =
  expect_fortran_error
    "subroutine f()\nimplicit none\nx = 1.0d0\nend subroutine f" "f" []

let test_error_out_of_bounds () =
  expect_fortran_error
    "subroutine f()\nreal*8 :: a(3)\na(5) = 1.0d0\nend subroutine f" "f" []

let test_error_use_before_allocate () =
  expect_fortran_error
    "subroutine f()\nreal*8, allocatable :: a(:)\na(1) = 1.0d0\nend subroutine f"
    "f" []

let test_error_wrong_arity () =
  expect_fortran_error
    "subroutine g(x)\nreal*8 :: x\nend subroutine g\nsubroutine f()\ncall g(1.0d0, 2.0d0)\nend subroutine f"
    "f" []

let test_error_division_by_zero () =
  expect_fortran_error
    "integer function f()\ninteger :: z\nz = 0\nf = 7 / z\nend function f" "f" []

let test_error_unknown_subroutine () =
  expect_fortran_error "subroutine f()\ncall missing()\nend subroutine f" "f" []

let test_error_parallel_nonunit_step () =
  expect_fortran_error
    {|
subroutine f(n)
  integer :: n
  integer :: i
  real*8 :: a(100)
!$omp parallel do private(i)
  do i = n, 1, -2
    a(i) = 1.0d0
  end do
!$omp end parallel do
end subroutine f
|}
    "f" [ Ast.Int_lit 50 ]

(* A COLLAPSE(2) nest whose inner DO has a non-unit step must be
   rejected loudly: the linearised index maths assumes unit step, so
   silently ignoring the step would execute the wrong iterations. *)
let test_error_collapse_nonunit_inner_step () =
  let st =
    state_of
      {|
subroutine f(n)
  integer :: n
  integer :: i, j
  real*8 :: a(100)
!$omp parallel do private(i, j) collapse(2)
  do i = 1, 10
    do j = 1, n, 2
      a(i) = a(i) + 1.0d0
    end do
  end do
!$omp end parallel do
end subroutine f
|}
  in
  match Interp.call st "f" [ Ast.Int_lit 9 ] with
  | _ -> Alcotest.fail "expected COLLAPSE(2) non-unit inner step to be rejected"
  | exception Interp.Fortran_error msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i =
        i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
      in
      go 0
    in
    check_bool "names the restriction" true
      (contains msg "COLLAPSE(2) requires a unit-step inner DO")

(* After EXIT the DO variable retains its value at the point of EXIT;
   only normal completion stores the completed value (F2018 8.1.6.6).
   The tree-walker used to store the completed value unconditionally —
   exercised on both execution engines. *)
let test_do_var_after_exit () =
  List.iter
    (fun bytecode ->
      let st =
        state_of
          {|
integer function exit_var(n)
  integer :: n
  integer :: i
  do i = 1, n
    if (i == 5) exit
  end do
  exit_var = i
end function exit_var
|}
      in
      Interp.set_bytecode st bytecode;
      let eng = if bytecode then "bytecode" else "tree-walk" in
      check_int (eng ^ ": value retained at EXIT") 5
        (Value.to_int (call_scalar st "exit_var" [ Ast.Int_lit 10 ]));
      check_int (eng ^ ": completed value without EXIT") 4
        (Value.to_int (call_scalar st "exit_var" [ Ast.Int_lit 3 ])))
    [ true; false ]

(* implicit typing honoured when IMPLICIT NONE is absent *)
let test_implicit_typing () =
  let st =
    state_of
      "real*8 function f()\nxval = 2.5d0\nkount = 3\nf = xval * kount\nend function f"
  in
  check_float "implicit real*variable" 7.5 (Value.to_float (call_scalar st "f" []))

(* --- main program / print ----------------------------------------------- *)

let test_main_program_print () =
  let out = Buffer.create 64 in
  let st =
    Interp.make_state
      ~printer:(Buffer.add_string out)
      (Parser.parse_string
         "program hello\ninteger :: i\ni = 41\nprint *, 'answer', i + 1\nend program hello")
  in
  Interp.run_main st;
  check_bool "printed" true (Buffer.contents out = "answer 42\n")

let test_stop_statement () =
  let st =
    Interp.make_state ~printer:ignore
      (Parser.parse_string
         "program p\ninteger :: i\ni = 1\nstop 'done'\ni = 2\nend program p")
  in
  Interp.run_main st

let suites =
  [
    ( "interp.basic",
      [
        Alcotest.test_case "function result" `Quick test_function_result;
        Alcotest.test_case "integer division" `Quick test_integer_division;
        Alcotest.test_case "intrinsics" `Quick test_intrinsics;
        Alcotest.test_case "sum + section" `Quick test_sum_intrinsic_and_section;
        Alcotest.test_case "by-ref aliasing" `Quick test_subroutine_aliasing;
        Alcotest.test_case "element copy-out" `Quick test_array_element_copyout;
        Alcotest.test_case "whole-array arg" `Quick test_whole_array_argument;
        Alcotest.test_case "if/else chain" `Quick test_if_else_chain;
        Alcotest.test_case "exit/cycle" `Quick test_do_loops_exit_cycle;
        Alcotest.test_case "negative step" `Quick test_do_step;
        Alcotest.test_case "do while" `Quick test_do_while;
        Alcotest.test_case "do var after exit" `Quick test_do_var_after_exit;
        Alcotest.test_case "main + print" `Quick test_main_program_print;
        Alcotest.test_case "stop" `Quick test_stop_statement;
        Alcotest.test_case "implicit typing" `Quick test_implicit_typing;
      ] );
    ( "interp.errors",
      [
        Alcotest.test_case "unknown variable" `Quick test_error_unknown_variable;
        Alcotest.test_case "out of bounds" `Quick test_error_out_of_bounds;
        Alcotest.test_case "use before allocate" `Quick test_error_use_before_allocate;
        Alcotest.test_case "wrong arity" `Quick test_error_wrong_arity;
        Alcotest.test_case "division by zero" `Quick test_error_division_by_zero;
        Alcotest.test_case "unknown subroutine" `Quick test_error_unknown_subroutine;
        Alcotest.test_case "parallel non-unit step" `Quick test_error_parallel_nonunit_step;
        Alcotest.test_case "collapse non-unit inner step" `Quick
          test_error_collapse_nonunit_inner_step;
      ] );
    ( "interp.integration",
      [
        Alcotest.test_case "module-scope vars" `Quick test_module_scope_variables;
        Alcotest.test_case "use from external sub" `Quick test_use_module_from_external_sub;
        Alcotest.test_case "common blocks" `Quick test_common_block_sharing;
        Alcotest.test_case "type elements" `Quick test_type_elements;
        Alcotest.test_case "derived-type array" `Quick test_derived_type_array;
        Alcotest.test_case "save persistence" `Quick test_save_attribute_persistence;
        Alcotest.test_case "allocatable count" `Quick test_allocatable_and_alloc_count;
        Alcotest.test_case "save avoids realloc" `Quick test_save_avoids_reallocation;
      ] );
    ( "interp.parallel",
      [
        Alcotest.test_case "reduction" `Quick test_parallel_reduction;
        Alcotest.test_case "array writes" `Quick test_parallel_array_writes;
        Alcotest.test_case "collapse(2)" `Quick test_parallel_collapse2;
        Alcotest.test_case "private scalar" `Quick test_parallel_private_scalar;
        Alcotest.test_case "firstprivate" `Quick test_parallel_firstprivate;
        Alcotest.test_case "atomic" `Quick test_parallel_atomic;
        Alcotest.test_case "critical" `Quick test_parallel_critical;
        Alcotest.test_case "multi-var reduction" `Quick test_parallel_reduction_multi_var;
        Alcotest.test_case "max reduction" `Quick test_parallel_reduction_max;
        QCheck_alcotest.to_alcotest prop_parallel_equals_serial;
      ] );
  ]
