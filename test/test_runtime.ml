(* Unit and property tests for the runtime substrate: values, Fortran
   arrays, intrinsics and the domain-based OpenMP-like runtime. *)

open Glaf_runtime

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_float msg expected actual =
  Alcotest.(check (float 1e-12)) msg expected actual

(* --- Value -------------------------------------------------------------- *)

let test_value_arith () =
  check_bool "int add" true (Value.add (Value.Int 2) (Value.Int 3) = Value.Int 5);
  check_bool "mixed add is real" true
    (Value.add (Value.Int 2) (Value.Real 0.5) = Value.Real 2.5);
  check_bool "int division truncates" true
    (Value.div (Value.Int 7) (Value.Int 2) = Value.Int 3);
  check_bool "int pow" true (Value.pow (Value.Int 2) (Value.Int 10) = Value.Int 1024);
  check_bool "real pow" true
    (Value.pow (Value.Real 2.0) (Value.Int (-1)) = Value.Real 0.5);
  check_bool "neg" true (Value.neg (Value.Int 4) = Value.Int (-4))

let test_value_compare () =
  check_bool "int lt real" true (Value.lt (Value.Int 1) (Value.Real 1.5));
  check_bool "eq across kinds" true (Value.eq (Value.Int 2) (Value.Real 2.0));
  check_bool "string eq" true (Value.eq (Value.Str "a") (Value.Str "a"));
  check_bool "approx" true
    (Value.approx_eq ~tol:1e-6 (Value.Real 1.0) (Value.Real (1.0 +. 1e-8)))

let test_value_errors () =
  check_bool "div by zero raises" true
    (match Value.div (Value.Int 1) (Value.Int 0) with
    | exception Value.Runtime_error _ -> true
    | _ -> false);
  check_bool "bool arith raises" true
    (match Value.add (Value.Bool true) (Value.Int 1) with
    | exception Value.Runtime_error _ -> true
    | _ -> false)

let test_value_coerce () =
  let open Glaf_fortran.Ast in
  check_bool "real to int" true (Value.coerce Integer (Value.Real 3.9) = Value.Int 3);
  check_bool "int to real" true (Value.coerce Real8 (Value.Int 3) = Value.Real 3.0);
  check_bool "bad coerce raises" true
    (match Value.coerce Logical (Value.Int 1) with
    | exception Value.Runtime_error _ -> true
    | _ -> false)

(* --- Farray ------------------------------------------------------------- *)

let test_farray_column_major () =
  let a = Farray.create Farray.Efloat [| (1, 3); (1, 2) |] in
  (* column-major: (1,1) (2,1) (3,1) (1,2) (2,2) (3,2) *)
  Farray.set a [| 2; 1 |] (Farray.Cf 21.0);
  Farray.set a [| 1; 2 |] (Farray.Cf 12.0);
  check_float "linear 1" 21.0
    (match Farray.get_linear a 1 with Farray.Cf x -> x | _ -> nan);
  check_float "linear 3" 12.0
    (match Farray.get_linear a 3 with Farray.Cf x -> x | _ -> nan)

let test_farray_bounds () =
  let a = Farray.create Farray.Efloat [| (0, 4) |] in
  Farray.set_float a [| 0 |] 7.0;
  check_float "lower bound 0" 7.0 (Farray.get_float a [| 0 |]);
  check_bool "oob raises" true
    (match Farray.get a [| 5 |] with
    | exception Farray.Bounds_error _ -> true
    | _ -> false);
  check_bool "rank mismatch raises" true
    (match Farray.get a [| 1; 1 |] with
    | exception Farray.Bounds_error _ -> true
    | _ -> false)

let test_farray_ops () =
  let a = Farray.of_float_list [ 3.0; 4.0 ] in
  check_float "rms" 3.5355339059327378 (Farray.rms a);
  let b = Farray.of_float_list [ 3.0; 4.5 ] in
  check_float "max abs diff" 0.5 (Farray.max_abs_diff a b);
  let s = Farray.slice1 (Farray.of_float_list [ 1.; 2.; 3.; 4. ]) 2 3 in
  check_int "slice size" 2 (Farray.size s);
  check_float "slice content" 2.0 (Farray.get_float s [| 1 |]);
  let c = Farray.copy a in
  Farray.set_float c [| 1 |] 99.0;
  check_float "copy is deep" 3.0 (Farray.get_float a [| 1 |])

let prop_farray_roundtrip =
  QCheck.Test.make ~name:"farray set/get roundtrip" ~count:100
    QCheck.(pair (int_range 1 20) (int_range 1 20))
    (fun (n, m) ->
      let a = Farray.create Farray.Efloat [| (1, n); (1, m) |] in
      let v i j = float_of_int ((i * 31) + j) in
      for i = 1 to n do
        for j = 1 to m do
          Farray.set_float a [| i; j |] (v i j)
        done
      done;
      let ok = ref true in
      for i = 1 to n do
        for j = 1 to m do
          if Farray.get_float a [| i; j |] <> v i j then ok := false
        done
      done;
      !ok && Farray.size a = n * m)

(* --- Intrinsics ---------------------------------------------------------- *)

let apply name args =
  match Intrinsics.apply name args with
  | Some v -> v
  | None -> Alcotest.failf "%s is not an intrinsic" name

let test_intrinsics_numeric () =
  check_bool "abs int" true (apply "abs" [ Value.Int (-3) ] = Value.Int 3);
  check_float "alog" 1.0 (Value.to_float (apply "alog" [ Value.Real (exp 1.0) ]));
  check_float "sign" (-2.5) (Value.to_float (apply "sign" [ Value.Real 2.5; Value.Real (-1.0) ]));
  check_bool "mod int" true (apply "mod" [ Value.Int 7; Value.Int 3 ] = Value.Int 1);
  check_float "atan2" (Float.pi /. 4.0)
    (Value.to_float (apply "atan2" [ Value.Real 1.0; Value.Real 1.0 ]));
  check_bool "nint rounds" true (apply "nint" [ Value.Real 2.6 ] = Value.Int 3);
  check_bool "floor" true (apply "floor" [ Value.Real (-0.5) ] = Value.Int (-1))

let test_intrinsics_minmax () =
  check_bool "max of ints stays int" true
    (apply "max" [ Value.Int 1; Value.Int 5; Value.Int 3 ] = Value.Int 5);
  check_float "min mixed" 0.5
    (Value.to_float (apply "min" [ Value.Int 1; Value.Real 0.5 ]));
  check_float "dmax1" 2.0 (Value.to_float (apply "dmax1" [ Value.Real 2.0; Value.Real 1.0 ]))

let test_intrinsics_arrays () =
  let arr = Value.Arr (Farray.of_float_list [ 1.0; 2.0; 3.0 ]) in
  check_float "sum" 6.0 (Value.to_float (apply "sum" [ arr ]));
  check_float "product" 6.0 (Value.to_float (apply "product" [ arr ]));
  check_float "minval" 1.0 (Value.to_float (apply "minval" [ arr ]));
  check_float "maxval" 3.0 (Value.to_float (apply "maxval" [ arr ]));
  check_bool "size" true (apply "size" [ arr ] = Value.Int 3);
  let brr = Value.Arr (Farray.of_float_list [ 4.0; 5.0; 6.0 ]) in
  check_float "dot_product" 32.0 (Value.to_float (apply "dot_product" [ arr; brr ]))

let test_intrinsics_unknown () =
  check_bool "unknown name" true (Intrinsics.apply "frobnicate" [] = None);
  check_bool "case-insensitive" true (Intrinsics.apply "ABS" [ Value.Int (-1) ] <> None)

(* --- Omp ------------------------------------------------------------------ *)

let test_static_chunks () =
  let chunks = Omp.static_chunks ~lo:1 ~hi:10 4 in
  check_int "4 chunks" 4 (Array.length chunks);
  (* coverage: union of chunks is exactly 1..10, disjoint and ordered *)
  let covered = Array.to_list chunks |> List.concat_map (fun (a, b) ->
      List.init (max 0 (b - a + 1)) (fun i -> a + i)) in
  Alcotest.(check (list int)) "cover 1..10" (List.init 10 (fun i -> i + 1)) covered;
  (* empty iteration space *)
  let empty = Omp.static_chunks ~lo:5 ~hi:4 3 in
  check_bool "empty chunks" true
    (Array.for_all (fun (a, b) -> b < a) empty)

let test_parallel_for_sums () =
  let n = 1000 in
  let acc = Array.make 8 0 in
  Omp.parallel_for ~threads:4 ~lo:1 ~hi:n (fun t lo hi ->
      let s = ref 0 in
      for i = lo to hi do
        s := !s + i
      done;
      acc.(t) <- !s);
  check_int "total" (n * (n + 1) / 2) (Array.fold_left ( + ) 0 acc)

let test_parallel_for_collect_order () =
  let results =
    Omp.parallel_for_collect ~threads:3 ~lo:1 ~hi:9 (fun t lo hi -> (t, lo, hi))
  in
  check_int "three results" 3 (List.length results);
  check_bool "thread order" true
    (List.mapi (fun i (t, _, _) -> i = t) results |> List.for_all Fun.id)

let test_parallel_exception_propagates () =
  check_bool "exception surfaces" true
    (match
       Omp.parallel_for ~threads:3 ~lo:1 ~hi:10 (fun _ lo _ ->
           if lo > 1 then failwith "boom")
     with
    | exception Failure _ -> true
    | () -> false)

let test_critical_mutual_exclusion () =
  let counter = ref 0 in
  Omp.parallel_for ~threads:4 ~lo:1 ~hi:400 (fun _ lo hi ->
      for _ = lo to hi do
        Omp.critical (fun () -> incr counter)
      done);
  check_int "no lost updates" 400 !counter

(* --- Sched / Pool --------------------------------------------------------- *)

let test_sched_of_string () =
  check_bool "static" true (Sched.of_string "static" = Some Sched.Static);
  check_bool "chunk" true (Sched.of_string "chunk:8" = Some (Sched.Static_chunked 8));
  check_bool "dynamic" true (Sched.of_string "dynamic:2" = Some (Sched.Dynamic 2));
  check_bool "bare dynamic means chunk 1" true
    (Sched.of_string "dynamic" = Some (Sched.Dynamic 1));
  check_bool "zero chunk rejected" true (Sched.of_string "chunk:0" = None);
  check_bool "guided default floor" true
    (Sched.of_string "guided" = Some (Sched.Guided 1));
  check_bool "guided with floor" true
    (Sched.of_string "guided:4" = Some (Sched.Guided 4));
  check_bool "guided zero floor rejected" true (Sched.of_string "guided:0" = None);
  check_bool "junk rejected" true (Sched.of_string "gelded" = None);
  (* the OpenMP-consistent alias: schedule(static, k) prints static:<k> *)
  check_bool "static:k alias" true
    (Sched.of_string "static:8" = Some (Sched.Static_chunked 8));
  check_bool "static:k equals chunk:k" true
    (Sched.of_string "static:8" = Sched.of_string "chunk:8");
  check_bool "static:0 rejected" true (Sched.of_string "static:0" = None);
  check_bool "static: junk rejected" true (Sched.of_string "static:x" = None);
  List.iter
    (fun s ->
      check_bool "roundtrip" true
        (Sched.of_string (Sched.to_string s) = Some s))
    [ Sched.Static; Sched.Static_chunked 3; Sched.Dynamic 5; Sched.Guided 2 ]

(* every schedule round-trips through its printed form, and the
   chunked forms also parse under the static:<k> alias *)
let prop_sched_roundtrip =
  QCheck.Test.make ~name:"sched to_string/of_string roundtrip" ~count:200
    QCheck.(pair (int_range 0 3) (int_range 1 999))
    (fun (tag, k) ->
      let s =
        match tag with
        | 0 -> Sched.Static
        | 1 -> Sched.Static_chunked k
        | 2 -> Sched.Dynamic k
        | _ -> Sched.Guided k
      in
      Sched.of_string (Sched.to_string s) = Some s
      && (tag <> 1
         || Sched.of_string (Printf.sprintf "static:%d" k)
            = Some (Sched.Static_chunked k)))

(* OpenMP's guided decay rule as a pure function: every pull takes
   max(floor, remaining/team), so the sizes are non-increasing, always
   positive (the loop terminates) and partition the iteration space. *)
let test_guided_decay_law () =
  List.iter
    (fun (total, team, floor) ->
      let name = Printf.sprintf "guided %d/%d/%d" total team floor in
      let sizes = Sched.guided_chunk_sizes ~total ~team ~min_chunk:floor in
      check_int (name ^ ": sizes partition the space") total
        (List.fold_left ( + ) 0 sizes);
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | _ -> true
      in
      check_bool (name ^ ": sizes decay") true (non_increasing sizes);
      check_bool (name ^ ": chunks positive") true
        (List.for_all (fun c -> c >= 1) sizes);
      (* every chunk but the final remainder respects the floor *)
      let rec floored = function
        | [] | [ _ ] -> true
        | c :: rest -> c >= floor && floored rest
      in
      check_bool (name ^ ": floor respected") true (floored sizes);
      match sizes with
      | first :: _ ->
        check_int
          (name ^ ": first chunk is max(floor, remaining/team)")
          (min total (max floor (total / team)))
          first
      | [] -> Alcotest.failf "%s: no chunks for total %d" name total)
    [ (1000, 4, 1); (1000, 4, 16); (7, 8, 1); (1, 1, 1); (100, 3, 7);
      (64, 64, 1); (1000, 1, 1) ]

let test_guided_termination () =
  (* progress even when remaining < team or floor > total: at most one
     chunk per iteration, never zero-sized *)
  List.iter
    (fun (total, team, floor) ->
      let sizes = Sched.guided_chunk_sizes ~total ~team ~min_chunk:floor in
      check_bool
        (Printf.sprintf "guided %d/%d/%d terminates" total team floor)
        true
        (List.length sizes <= total && List.fold_left ( + ) 0 sizes = total))
    [ (1, 64, 1); (2, 64, 1); (3, 1000, 1); (1000, 1000, 1000); (5, 2, 100) ]

let test_pool_empty_range () =
  let called = Atomic.make 0 in
  List.iter
    (fun sched ->
      Pool.run ~threads:4 ~sched ~lo:5 ~hi:4 (fun _ _ _ -> Atomic.incr called))
    [ Sched.Static; Sched.Static_chunked 2; Sched.Dynamic 2; Sched.Guided 2 ];
  check_int "body never called on empty range" 0 (Atomic.get called)

let test_pool_threads_exceed_iterations () =
  (* 8 threads over 3 iterations: occupancy caps the team, every
     iteration runs exactly once, and no thread sees an empty chunk *)
  let hits = Array.make 4 0 in
  Omp.parallel_for ~threads:8 ~lo:1 ~hi:3 (fun _ lo hi ->
      check_bool "chunk non-empty" true (hi >= lo);
      for i = lo to hi do
        Omp.critical (fun () -> hits.(i) <- hits.(i) + 1)
      done);
  Alcotest.(check (list int)) "each iteration once" [ 1; 1; 1 ]
    (Array.to_list (Array.sub hits 1 3))

let test_pool_exception_propagates () =
  check_bool "pooled region surfaces exception" true
    (match
       Pool.run ~threads:4 ~lo:1 ~hi:1000 (fun _ lo _ ->
           if lo > 1 then failwith "pool boom")
     with
    | exception Failure _ -> true
    | () -> false);
  (* the pool survives a throwing region *)
  let ok = Atomic.make 0 in
  Pool.run ~threads:4 ~lo:1 ~hi:100 (fun _ lo hi ->
      ignore (Atomic.fetch_and_add ok (hi - lo + 1)));
  check_int "pool usable after exception" 100 (Atomic.get ok)

let test_pool_schedules_cover_range () =
  List.iter
    (fun sched ->
      let seen = Array.make 102 0 in
      Pool.run ~threads:4 ~sched ~lo:1 ~hi:101 (fun _ lo hi ->
          for i = lo to hi do
            Omp.critical (fun () -> seen.(i) <- seen.(i) + 1)
          done);
      check_bool
        (Printf.sprintf "%s covers 1..101 exactly once" (Sched.to_string sched))
        true
        (Array.for_all (fun c -> c = 1) (Array.sub seen 1 101)))
    [ Sched.Static; Sched.Static_chunked 7; Sched.Dynamic 3; Sched.Guided 1;
      Sched.Guided 8 ]

(* Static chunk boundaries are a pure function of (lo, hi, threads), so
   per-thread partial sums — and the thread-ordered combine — are
   bit-identical across repeated runs even for values where floating
   addition does not commute. *)
let static_partial_sum ~threads n =
  let partials = Array.make threads 0.0 in
  Omp.parallel_for ~threads ~sched:Sched.Static ~lo:1 ~hi:n (fun t lo hi ->
      let s = ref 0.0 in
      for i = lo to hi do
        s := !s +. (1.0 /. float_of_int i)
      done;
      partials.(t) <- !s);
  Array.fold_left ( +. ) 0.0 partials

let test_pool_static_reduction_deterministic () =
  List.iter
    (fun threads ->
      let first = static_partial_sum ~threads 10_000 in
      for _ = 1 to 5 do
        let again = static_partial_sum ~threads 10_000 in
        check_bool
          (Printf.sprintf "bit-identical at %d threads" threads)
          true
          (Int64.equal (Int64.bits_of_float first) (Int64.bits_of_float again))
      done)
    [ 1; 2; 4 ]

let test_pool_reuse_many_regions () =
  (* warm the pool, then check 1000 tiny regions neither grow it nor
     fall back to spawning *)
  Pool.run ~threads:4 ~lo:1 ~hi:100 (fun _ _ _ -> ());
  let size0 = Pool.pool_size () in
  Pool.reset_stats ();
  let total = Atomic.make 0 in
  for _ = 1 to 1000 do
    Pool.run ~threads:4 ~lo:1 ~hi:16 (fun _ lo hi ->
        ignore (Atomic.fetch_and_add total (hi - lo + 1)))
  done;
  check_int "all iterations ran" 16_000 (Atomic.get total);
  check_int "pool size stable" size0 (Pool.pool_size ());
  let s = Pool.stats () in
  check_int "all regions pooled" 1000 s.Pool.regions;
  check_int "no spawn fallback" 0 s.Pool.spawn_regions;
  check_bool "tasks recorded" true (s.Pool.tasks >= 1000)

(* Static chunk affinity: thread t's chunk is pinned to the worker
   that executed it in the previous static region, and pinned tasks
   are never stolen — so the chunk-to-worker map of identical
   back-to-back regions is deterministic. *)
let test_pool_affinity_deterministic () =
  let chunk_to_worker () =
    let m = Array.make 4 (-2) in
    Pool.run ~threads:4 ~sched:Sched.Static ~lo:1 ~hi:400 (fun t _ _ ->
        m.(t) <- (match Pool.current_worker () with Some w -> w | None -> -1));
    Array.to_list m
  in
  let first = chunk_to_worker () in
  check_int "thread 0 runs on the master" (-1) (List.hd first);
  check_bool "threads 1..3 run on resident workers" true
    (List.for_all (fun w -> w >= 0) (List.tl first));
  for _ = 1 to 5 do
    Alcotest.(check (list int)) "chunk-to-worker map stable across regions"
      first (chunk_to_worker ())
  done

let test_pool_nested_region_falls_back () =
  (* a region launched from inside a worker must not deadlock on the
     resident team; it takes the spawn fallback *)
  Pool.reset_stats ();
  let inner_total = Atomic.make 0 in
  Pool.run ~threads:2 ~lo:1 ~hi:2 (fun _ lo hi ->
      for _ = lo to hi do
        Pool.run ~threads:2 ~lo:1 ~hi:10 (fun _ clo chi ->
            ignore (Atomic.fetch_and_add inner_total (chi - clo + 1)))
      done);
  check_int "nested iterations all ran" 20 (Atomic.get inner_total);
  check_bool "nested regions used spawn fallback" true
    ((Pool.stats ()).Pool.spawn_regions >= 1)

let test_nested_region_exception_unwinds () =
  (* an exception thrown in an inner (spawn-fallback) region must
     unwind through the outer pooled region without poisoning the
     resident team or flipping it to degraded mode *)
  check_bool "inner exception reaches the caller" true
    (match
       Pool.run ~threads:2 ~lo:1 ~hi:2 (fun _ lo _ ->
           Pool.run ~threads:2 ~lo:1 ~hi:10 (fun _ clo _ ->
               if lo > 1 && clo > 1 then failwith "inner boom"))
     with
    | exception Failure msg -> msg = "inner boom"
    | () -> false);
  check_bool "pool still healthy" true (Pool.health () = Pool.Healthy);
  (* both nesting levels still work after the unwind *)
  let total = Atomic.make 0 in
  Pool.run ~threads:2 ~lo:1 ~hi:2 (fun _ lo hi ->
      for _ = lo to hi do
        Pool.run ~threads:2 ~lo:1 ~hi:10 (fun _ clo chi ->
            ignore (Atomic.fetch_and_add total (chi - clo + 1)))
      done);
  check_int "nested regions usable after exception" 20 (Atomic.get total)

(* --- Zones ----------------------------------------------------------------- *)

let test_zone_sizes_cosine () =
  let zones = Zones.latitude_zones ~zones:18 ~total_cells:10000 in
  check_int "18 zones" 18 (List.length zones);
  let equatorial = List.nth zones 8 and polar = List.nth zones 0 in
  check_bool "equator larger than pole" true (equatorial.Zones.size > 3 * polar.Zones.size);
  let total = List.fold_left (fun a z -> a + z.Zones.size) 0 zones in
  check_bool "total approximately preserved" true
    (abs (total - 10000) < 10000 / 10)

let test_zone_lpt_beats_static () =
  let zones = Zones.latitude_zones ~zones:24 ~total_cells:9600 in
  let cost z = float_of_int z.Zones.size in
  let static = Zones.makespan (Zones.schedule_static zones ~workers:4) ~cost in
  let lpt = Zones.makespan (Zones.schedule_lpt zones ~workers:4) ~cost in
  let bound = Zones.total_work zones ~cost /. 4.0 in
  check_bool "lpt no worse than static" true (lpt <= static +. 1e-9);
  check_bool "lpt near the balance bound" true (lpt < 1.2 *. bound)

let test_zone_run_executes_all () =
  let zones = Zones.latitude_zones ~zones:12 ~total_cells:1200 in
  let seen = Array.make 13 0 in
  Zones.run (Zones.schedule_lpt zones ~workers:3) ~f:(fun z ->
      Omp.critical (fun () -> seen.(z.Zones.zone_id) <- seen.(z.Zones.zone_id) + 1));
  check_bool "every zone ran exactly once" true
    (Array.for_all (fun c -> c = 1) (Array.sub seen 1 12))

let suites =
  [
    ( "runtime.value",
      [
        Alcotest.test_case "arithmetic" `Quick test_value_arith;
        Alcotest.test_case "comparison" `Quick test_value_compare;
        Alcotest.test_case "errors" `Quick test_value_errors;
        Alcotest.test_case "coercion" `Quick test_value_coerce;
      ] );
    ( "runtime.farray",
      [
        Alcotest.test_case "column major" `Quick test_farray_column_major;
        Alcotest.test_case "bounds" `Quick test_farray_bounds;
        Alcotest.test_case "ops" `Quick test_farray_ops;
        QCheck_alcotest.to_alcotest prop_farray_roundtrip;
      ] );
    ( "runtime.intrinsics",
      [
        Alcotest.test_case "numeric" `Quick test_intrinsics_numeric;
        Alcotest.test_case "min/max" `Quick test_intrinsics_minmax;
        Alcotest.test_case "arrays" `Quick test_intrinsics_arrays;
        Alcotest.test_case "unknown" `Quick test_intrinsics_unknown;
      ] );
    ( "runtime.omp",
      [
        Alcotest.test_case "static chunks" `Quick test_static_chunks;
        Alcotest.test_case "parallel sums" `Quick test_parallel_for_sums;
        Alcotest.test_case "collect order" `Quick test_parallel_for_collect_order;
        Alcotest.test_case "exception propagation" `Quick test_parallel_exception_propagates;
        Alcotest.test_case "critical exclusion" `Quick test_critical_mutual_exclusion;
      ] );
    ( "runtime.pool",
      [
        Alcotest.test_case "sched of_string" `Quick test_sched_of_string;
        QCheck_alcotest.to_alcotest prop_sched_roundtrip;
        Alcotest.test_case "empty range" `Quick test_pool_empty_range;
        Alcotest.test_case "threads > iterations" `Quick
          test_pool_threads_exceed_iterations;
        Alcotest.test_case "exception propagation" `Quick
          test_pool_exception_propagates;
        Alcotest.test_case "guided decay law" `Quick test_guided_decay_law;
        Alcotest.test_case "guided termination" `Quick test_guided_termination;
        Alcotest.test_case "schedules cover range" `Quick
          test_pool_schedules_cover_range;
        Alcotest.test_case "static reduction deterministic" `Quick
          test_pool_static_reduction_deterministic;
        Alcotest.test_case "affinity deterministic" `Quick
          test_pool_affinity_deterministic;
        Alcotest.test_case "reuse across 1000 regions" `Quick
          test_pool_reuse_many_regions;
        Alcotest.test_case "nested region fallback" `Quick
          test_pool_nested_region_falls_back;
        Alcotest.test_case "nested exception unwinds" `Quick
          test_nested_region_exception_unwinds;
      ] );
    ( "runtime.zones",
      [
        Alcotest.test_case "cosine sizes" `Quick test_zone_sizes_cosine;
        Alcotest.test_case "lpt vs static" `Quick test_zone_lpt_beats_static;
        Alcotest.test_case "run executes all" `Quick test_zone_run_executes_all;
      ] );
  ]
