(* Long-lived socket serving: wire protocol round trips, compile-cache
   behavior, admission control / load shedding, drain-then-exit, and
   survival of client crashes, malformed requests and worker deaths.

   Each test runs a real server (accept loop + readers + executors on
   their own domains) against a throwaway socket path; the finaliser
   always drains the server and restores the process-global pool and
   injection state, since the suites share one process. *)

open Glaf_runtime
open Glaf_service

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* Two distinct kernels so cache keying and per-script dispatch are
   observable from the responses: pi_mid sums the quadrature midpoint
   rule, triple is trivially different. *)
let pi_script =
  {|program lsn_pi
module m
function pi_mid returns real8
  param n integer
  grid acc real8
  grid h real8
  step integrate
    set h = 1.0 / n
    set acc = 0.0
    foreach i = 1, n schedule static
      set acc = acc + 4.0 / (1.0 + ((i - 0.5) * h) * ((i - 0.5) * h))
    end foreach
    return acc * h
end program
|}

let triple_script =
  {|program lsn_triple
module m
function triple returns real8
  param x real8
  step compute
    return x * 3.0
end program
|}

let restore () =
  Faultinject.clear ();
  Pool.reset_health ();
  Pool.set_max_respawns Pool.default_max_respawns

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "oglaf_lsn_%d_%d.sock" (Unix.getpid ()) !sock_counter)

(* Start a server, run [f path server], then drain it and restore
   global state whatever happens.  [Listener.serve] returns the final
   stats through the domain join, handed to [after] for assertions on
   the drained server. *)
let with_server ?(config_f = fun c -> c) ?(script = pi_script)
    ?(after = fun (_ : Listener.stats) -> ()) f =
  Fun.protect ~finally:restore @@ fun () ->
  let path = fresh_sock () in
  let config = config_f (Listener.default_config ~socket:path) in
  match Listener.create ~config script with
  | Error fault -> Alcotest.failf "server create: %s" (Fault.to_string fault)
  | Ok srv ->
    let dom = Domain.spawn (fun () -> Listener.serve srv) in
    let final = ref None in
    Fun.protect
      ~finally:(fun () ->
        Listener.request_stop srv;
        final := Some (Domain.join dom);
        (try Sys.remove path with Sys_error _ -> ()))
      (fun () -> f path srv);
    match !final with Some st -> after st | None -> ()

let recv_exn cl =
  match Listener.Client.recv_line ~timeout_s:30.0 cl with
  | Some line -> line
  | None -> Alcotest.fail "no response from server"

let request_exn cl line =
  Listener.Client.send_line cl line;
  recv_exn cl

(* --- protocol round trips ------------------------------------------------- *)

let test_round_trip () =
  with_server @@ fun path _srv ->
  let cl = Listener.Client.connect path in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl) @@ fun () ->
  let r1 = request_exn cl "run pi_mid(1000)" in
  check_bool "ok" true (contains r1 "\"ok\":true");
  check_bool "seq 1" true (contains r1 "\"seq\":1");
  check_bool "echoes the call" true (contains r1 "\"call\":\"pi_mid(1000)\"");
  check_bool "value near pi" true (contains r1 "\"value\":\"3.14");
  let r2 = request_exn cl "run pi_mid(10)" in
  check_bool "seq advances per connection" true (contains r2 "\"seq\":2");
  (* a second connection starts its own sequence *)
  let cl2 = Listener.Client.connect path in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl2) @@ fun () ->
  let r3 = request_exn cl2 "run pi_mid(10)" in
  check_bool "fresh connection restarts seq" true (contains r3 "\"seq\":1")

let test_malformed_requests_keep_connection () =
  with_server
    ~after:(fun st ->
      check_int "rejected counted" 3 st.Listener.ls_rejected;
      check_int "nothing shed" 0 st.Listener.ls_shed)
  @@ fun path _srv ->
  let cl = Listener.Client.connect path in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl) @@ fun () ->
  (* unknown verb *)
  let r = request_exn cl "bogus request" in
  check_bool "parse fault" true (contains r "\"class\":\"parse\"");
  check_bool "fault is ok:false" true (contains r "\"ok\":false");
  (* malformed call *)
  let r = request_exn cl "run pi_mid(((" in
  check_bool "bad call is a parse fault" true (contains r "\"class\":\"parse\"");
  (* bad escape in an inline script *)
  let r = request_exn cl "run f(1)\t\\q" in
  check_bool "bad escape rejected" true (contains r "unknown escape");
  (* the connection still serves *)
  let r = request_exn cl "run pi_mid(10)" in
  check_bool "connection survives" true (contains r "\"ok\":true");
  check_bool "seq counted the rejects" true (contains r "\"seq\":4")

let test_blank_and_crlf_lines_ignored () =
  with_server @@ fun path _srv ->
  let cl = Listener.Client.connect path in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl) @@ fun () ->
  (* blank lines don't consume sequence numbers; CRLF is accepted *)
  Listener.Client.send_line cl "";
  Listener.Client.send_line cl "run pi_mid(10)\r";
  let r = recv_exn cl in
  check_bool "crlf request served" true (contains r "\"ok\":true");
  check_bool "blank line skipped" true (contains r "\"seq\":1")

(* --- inline scripts through the compile cache ----------------------------- *)

let test_inline_script_cache () =
  with_server
    ~after:(fun st ->
      (* create() compiles the default script (miss 1); the inline
         triple script misses once (miss 2) and hits once; the broken
         script is a miss that is never cached (miss 3); the default
         script resent inline hits the same entry as startup *)
      check_int "misses" 3 st.Listener.ls_cache.Progcache.cs_misses;
      check_int "hits" 2 st.Listener.ls_cache.Progcache.cs_hits)
  @@ fun path _srv ->
  let cl = Listener.Client.connect path in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl) @@ fun () ->
  let inline_req call script =
    Printf.sprintf "run %s\t%s" call (Listener.escape_script script)
  in
  let r = request_exn cl (inline_req "triple(2.5)" triple_script) in
  check_bool "inline script executes" true (contains r "\"value\":\"7.5");
  let r = request_exn cl (inline_req "triple(4.0)" triple_script) in
  check_bool "cached script executes" true (contains r "\"value\":\"12\"");
  (* the startup script's cache entry is shared with inline requests *)
  let r = request_exn cl (inline_req "pi_mid(10)" pi_script) in
  check_bool "default script hits its cache entry" true
    (contains r "\"ok\":true");
  (* a broken inline script is a classified fault, not a crash *)
  let r = request_exn cl (inline_req "f(1)" "program nope\nthis is not gpi\n") in
  check_bool "compile error classified" true (contains r "\"ok\":false");
  check_bool "still serving" true
    (contains (request_exn cl "run pi_mid(10)") "\"ok\":true")

let test_escape_round_trip () =
  let cases =
    [ ""; "plain"; "tabs\tand\nnewlines\r\n"; "back\\slash\\\\n"; "\\" ]
  in
  List.iter
    (fun s ->
      match Listener.unescape_script (Listener.escape_script s) with
      | Ok s' -> check_string "escape round trip" s s'
      | Error e -> Alcotest.failf "round trip failed on %S: %s" s e)
    cases;
  (* unescape rejects junk rather than guessing *)
  check_bool "dangling backslash" true
    (match Listener.unescape_script "abc\\" with Error _ -> true | Ok _ -> false);
  check_bool "unknown escape" true
    (match Listener.unescape_script "\\q" with Error _ -> true | Ok _ -> false)

(* --- admission control / shedding ----------------------------------------- *)

let test_overload_sheds_with_structured_fault () =
  with_server
    ~config_f:(fun c ->
      { c with Listener.lc_max_pending = 1; lc_executors = 1; lc_threads = Some 1 })
    ~after:(fun st ->
      check_bool "server-side shed counter matches" true (st.Listener.ls_shed >= 1))
  @@ fun path _srv ->
  Fun.protect ~finally:Faultinject.clear @@ fun () ->
  (* every region sleeps 100ms, so the single executor is busy while
     the pipelined burst lands in the reader *)
  (match Faultinject.parse_plan "delay-chunk:0:100" with
  | Ok p -> Faultinject.set_plan p
  | Error msg -> Alcotest.fail msg);
  let cl = Listener.Client.connect path in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl) @@ fun () ->
  let n = 8 in
  for _ = 1 to n do
    Listener.Client.send_line cl "run pi_mid(100)"
  done;
  let responses = List.init n (fun _ -> recv_exn cl) in
  let overloads =
    List.length
      (List.filter (fun r -> contains r "\"class\":\"overload\"") responses)
  in
  let oks =
    List.length (List.filter (fun r -> contains r "\"ok\":true") responses)
  in
  check_int "every request answered" n (List.length responses);
  check_bool
    (Printf.sprintf "burst past the high-water mark sheds (%d overloads)"
       overloads)
    true (overloads >= 1);
  check_int "answered = ok + shed" n (oks + overloads);
  (* the overload fault carries the admission numbers *)
  let sample =
    List.find (fun r -> contains r "\"class\":\"overload\"") responses
  in
  check_bool "pending field present" true (contains sample "\"pending\":");
  check_bool "limit field present" true (contains sample "\"limit\":1")

let test_status_endpoint () =
  with_server ~config_f:(fun c -> { c with Listener.lc_max_pending = 17 })
  @@ fun path _srv ->
  let cl = Listener.Client.connect path in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl) @@ fun () ->
  ignore (request_exn cl "run pi_mid(10)");
  let st = request_exn cl "status" in
  check_bool "ok line" true (contains st "\"ok\":true");
  check_bool "health" true (contains st "\"health\":\"healthy\"");
  check_bool "not draining" true (contains st "\"draining\":false");
  check_bool "max_pending echoed" true (contains st "\"max_pending\":17");
  check_bool "served count" true (contains st "\"ok\":1");
  check_bool "cache block" true (contains st "\"cache\":{");
  check_bool "status consumes a seq" true (contains st "\"seq\":2")

(* every completed run — ok or fault — lands one wall-time sample in
   the rolling latency window; status surfaces the window size, the
   sample count, and the nearest-rank p50/p99 *)
let test_status_latency () =
  let n = 5 in
  with_server
    ~after:(fun st ->
      check_int "final stats count the calls" n st.Listener.ls_calls;
      check_bool "final p50 positive" true (st.Listener.ls_p50_ms > 0.0);
      check_bool "p99 dominates p50" true
        (st.Listener.ls_p99_ms >= st.Listener.ls_p50_ms))
  @@ fun path _srv ->
  let cl = Listener.Client.connect path in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl) @@ fun () ->
  for _ = 1 to n do
    ignore (request_exn cl "run pi_mid(50)")
  done;
  let st = request_exn cl "status" in
  check_bool "latency block present" true (contains st "\"latency\":{");
  check_bool "window advertised" true (contains st "\"window\":256");
  check_bool "count covers the calls" true
    (contains st (Printf.sprintf "\"count\":%d" n));
  check_bool "p50 field" true (contains st "\"p50_ms\":");
  check_bool "p99 field" true (contains st "\"p99_ms\":")

(* An oversized request must be rejected whether its newline trails in
   later chunks (discard mode) or arrives inside the same read chunk
   that blew the cap — the second case used to slip through. *)
let test_oversize_line_rejected () =
  with_server @@ fun path _srv ->
  let cl = Listener.Client.connect path in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl) @@ fun () ->
  let flood = String.make (Serve.max_call_line_bytes + 100) 'x' in
  (* complete oversized line, newline included in the payload *)
  let r = request_exn cl ("run " ^ flood) in
  check_bool "oversized line is a parse fault" true
    (contains r "\"class\":\"parse\"");
  check_bool "fault names the cap" true (contains r "exceeds");
  (* the connection resyncs and keeps serving *)
  let r = request_exn cl "run pi_mid(10)" in
  check_bool "connection survives the flood" true (contains r "\"ok\":true")

(* Shed requests must not cost a compile: with a 1-deep queue and a
   slow single executor, a pipelined burst of distinct inline scripts
   may only add cache misses for the requests that were admitted. *)
let slow_variant_script k =
  Printf.sprintf
    {|program lsn_slow%d
module m
function f returns real8
  param n integer
  grid acc real8
  step compute
    set acc = 0.0
    foreach i = 1, n schedule static
      set acc = acc + %d.0
    end foreach
    return acc
end program
|}
    k k

let test_shed_requests_skip_compile () =
  with_server
    ~config_f:(fun c ->
      { c with Listener.lc_max_pending = 1; lc_executors = 1; lc_threads = Some 1 })
    ~after:(fun st ->
      check_bool "burst shed something" true (st.Listener.ls_shed >= 1);
      (* misses = startup compile + one per *admitted* distinct script;
         shed requests never reach the cache *)
      check_int "compile only after admission"
        (1 + st.Listener.ls_ok + st.Listener.ls_failed)
        st.Listener.ls_cache.Progcache.cs_misses)
  @@ fun path _srv ->
  Fun.protect ~finally:Faultinject.clear @@ fun () ->
  (match Faultinject.parse_plan "delay-chunk:0:100" with
  | Ok p -> Faultinject.set_plan p
  | Error msg -> Alcotest.fail msg);
  let cl = Listener.Client.connect path in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl) @@ fun () ->
  let n = 8 in
  for k = 1 to n do
    Listener.Client.send_line cl
      (Printf.sprintf "run f(100)\t%s"
         (Listener.escape_script (slow_variant_script k)))
  done;
  let responses = List.init n (fun _ -> recv_exn cl) in
  check_int "every request answered" n (List.length responses)

(* --- resilience ----------------------------------------------------------- *)

let test_client_crash_leaves_server_up () =
  with_server
    ~after:(fun st ->
      check_int "both connections accepted" 2 st.Listener.ls_accepted)
  @@ fun path _srv ->
  (* first client sends a call and vanishes without reading *)
  let cl1 = Listener.Client.connect path in
  Listener.Client.send_line cl1 "run pi_mid(1000)";
  Listener.Client.close cl1;
  (* the server must keep serving other connections *)
  let cl2 = Listener.Client.connect path in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl2) @@ fun () ->
  let r = request_exn cl2 "run pi_mid(10)" in
  check_bool "second client served after a crash" true (contains r "\"ok\":true")

(* Disconnected clients must release their fd and reader domain while
   the server keeps running — not pile up until final drain. *)
let count_open_fds () =
  match Sys.readdir "/proc/self/fd" with
  | entries -> Some (Array.length entries)
  | exception Sys_error _ -> None

let poll_until ?(timeout_s = 10.0) pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      ignore (Unix.select [] [] [] 0.05);
      go ()
    end
  in
  go ()

let test_short_lived_clients_release_fds () =
  with_server
    ~after:(fun st ->
      check_int "all connections accepted" 20 st.Listener.ls_accepted)
  @@ fun path srv ->
  let fds_before = count_open_fds () in
  for _ = 1 to 20 do
    let cl = Listener.Client.connect path in
    Fun.protect ~finally:(fun () -> Listener.Client.close cl) @@ fun () ->
    let r = request_exn cl "run pi_mid(10)" in
    check_bool "served" true (contains r "\"ok\":true")
  done;
  (* the accept loop reaps closed connections within its poll tick *)
  check_bool "connection registry drains to zero" true
    (poll_until (fun () -> Listener.live_connections srv = 0));
  match (fds_before, count_open_fds ()) with
  | Some before, Some after ->
    check_bool
      (Printf.sprintf "no fd leak across 20 connections (%d -> %d)" before
         after)
      true
      (after <= before + 2)
  | _ -> ()  (* no /proc: the registry check above still holds *)

(* Connections past the cap are shed at accept with one overload fault
   line at seq 0, and the server keeps serving the live ones. *)
let test_connection_cap_sheds () =
  with_server
    ~config_f:(fun c -> { c with Listener.lc_max_conns = 2 })
    ~after:(fun st ->
      check_bool "refused connection counted as shed" true
        (st.Listener.ls_shed >= 1))
  @@ fun path _srv ->
  let cl1 = Listener.Client.connect path in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl1) @@ fun () ->
  let cl2 = Listener.Client.connect path in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl2) @@ fun () ->
  (* lock-step requests guarantee both readers are registered *)
  ignore (request_exn cl1 "run pi_mid(10)");
  ignore (request_exn cl2 "run pi_mid(10)");
  let cl3 = Listener.Client.connect path in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl3) @@ fun () ->
  (match Listener.Client.recv_line ~timeout_s:30.0 cl3 with
  | None -> Alcotest.fail "no shed response on the refused connection"
  | Some r ->
    check_bool "overload fault" true (contains r "\"class\":\"overload\"");
    check_bool "connection-level seq 0" true (contains r "\"seq\":0");
    check_bool "cap echoed as limit" true (contains r "\"limit\":2"));
  (* the refused connection is closed server-side: EOF, not a hang *)
  check_bool "refused connection closed" true
    (Listener.Client.recv_line ~timeout_s:30.0 cl3 = None);
  (* live connections keep serving *)
  let r = request_exn cl1 "run pi_mid(10)" in
  check_bool "live connection unaffected" true (contains r "\"ok\":true")

let test_degraded_mode_keeps_answering () =
  with_server
    ~config_f:(fun c ->
      { c with Listener.lc_threads = Some 4; lc_retries = 2; lc_executors = 1 })
  @@ fun path _srv ->
  (* warm the pool, then make the first worker death unrecoverable:
     zero respawn budget degrades the pool to sequential serving *)
  Pool.run ~threads:4 ~lo:1 ~hi:100 (fun _ _ _ -> ());
  Pool.set_max_respawns 0;
  (match Faultinject.parse_plan "kill-worker:0" with
  | Ok p -> Faultinject.set_plan p
  | Error msg -> Alcotest.fail msg);
  let cl = Listener.Client.connect path in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl) @@ fun () ->
  let r = request_exn cl "run pi_mid(1000)" in
  (* the injected death costs the first attempt; the retry runs in
     degraded sequential mode and still answers correctly *)
  check_bool "call answered despite exhausted respawn budget" true
    (contains r "\"ok\":true");
  check_bool "value near pi" true (contains r "\"value\":\"3.14");
  let st = request_exn cl "status" in
  check_bool "status reports degraded health" true
    (contains st "\"health\":\"degraded")

let test_drain_answers_admitted_requests () =
  with_server
    ~config_f:(fun c -> { c with Listener.lc_executors = 1; lc_threads = Some 1 })
    ~after:(fun st ->
      check_bool "draining flagged" true st.Listener.ls_draining;
      check_int "every admitted call answered" 3
        (st.Listener.ls_ok + st.Listener.ls_failed);
      check_int "queue fully drained" 0 st.Listener.ls_pending)
  @@ fun path srv ->
  Fun.protect ~finally:Faultinject.clear @@ fun () ->
  (match Faultinject.parse_plan "delay-chunk:0:50" with
  | Ok p -> Faultinject.set_plan p
  | Error msg -> Alcotest.fail msg);
  let cl = Listener.Client.connect path in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl) @@ fun () ->
  Listener.Client.send_line cl "run pi_mid(100)";
  Listener.Client.send_line cl "run pi_mid(100)";
  Listener.Client.send_line cl "run pi_mid(100)";
  (* the first response proves the reader admitted the whole burst
     (it read all three lines before the executor answered one) *)
  let r1 = recv_exn cl in
  check_bool "first answered" true (contains r1 "\"ok\":true");
  Listener.request_stop srv;
  (* drain: the two still-queued calls are answered before exit *)
  let r2 = recv_exn cl in
  let r3 = recv_exn cl in
  check_bool "second answered during drain" true (contains r2 "\"ok\":true");
  check_bool "third answered during drain" true (contains r3 "\"ok\":true")

let test_socket_unlinked_after_drain () =
  let path_ref = ref "" in
  with_server (fun path _srv -> path_ref := path);
  check_bool "socket file removed" false (Sys.file_exists !path_ref);
  (* and the path is immediately reusable by a new server *)
  with_server @@ fun path2 _srv ->
  let cl = Listener.Client.connect path2 in
  Fun.protect ~finally:(fun () -> Listener.Client.close cl) @@ fun () ->
  check_bool "fresh server on a reused tempdir serves" true
    (contains (request_exn cl "run pi_mid(10)") "\"ok\":true")

let test_live_socket_not_stolen () =
  with_server @@ fun path _srv ->
  match Listener.create ~config:(Listener.default_config ~socket:path) pi_script with
  | exception Listener.Listener_error msg ->
    check_bool "error names the live socket" true (contains msg "already listening")
  | Ok _ -> Alcotest.fail "second server bound a live socket"
  | Error f -> Alcotest.failf "wrong error: %s" (Fault.to_string f)

(* --- compile cache unit tests --------------------------------------------- *)

let variant_script k =
  Printf.sprintf
    {|program cache_v%d
module m
function f returns real8
  param x real8
  step compute
    return x * %d.0
end program
|}
    k k

let test_progcache_hit_miss () =
  let c = Progcache.create ~capacity:4 () in
  (match Progcache.find_or_compile c (variant_script 1) with
  | Ok _, `Miss -> ()
  | _, `Hit -> Alcotest.fail "first lookup hit"
  | Error f, _ -> Alcotest.failf "compile failed: %s" (Fault.to_string f));
  (match Progcache.find_or_compile c (variant_script 1) with
  | Ok _, `Hit -> ()
  | _ -> Alcotest.fail "second lookup missed");
  (* whitespace changes are different keys: content hash, no
     normalization *)
  (match Progcache.find_or_compile c (variant_script 1 ^ "\n") with
  | Ok _, `Miss -> ()
  | _ -> Alcotest.fail "trailing newline should be a different key");
  let st = Progcache.stats c in
  check_int "hits" 1 st.Progcache.cs_hits;
  check_int "misses" 2 st.Progcache.cs_misses;
  check_int "size" 2 st.Progcache.cs_size;
  check_bool "hit rate" true (abs_float (Progcache.hit_rate st -. 1.0 /. 3.0) < 1e-9)

let test_progcache_lru_eviction () =
  let c = Progcache.create ~capacity:2 () in
  let get k = ignore (Progcache.find_or_compile c (variant_script k)) in
  get 1;
  get 2;
  get 1;  (* 1 is now most recently used *)
  get 3;  (* evicts 2 *)
  (match Progcache.find_or_compile c (variant_script 1) with
  | Ok _, `Hit -> ()
  | _ -> Alcotest.fail "recently-used entry was evicted");
  (match Progcache.find_or_compile c (variant_script 2) with
  | Ok _, `Miss -> ()
  | _ -> Alcotest.fail "LRU entry survived past capacity");
  let st = Progcache.stats c in
  check_bool "evictions counted" true (st.Progcache.cs_evictions >= 2);
  check_int "bounded at capacity" 2 st.Progcache.cs_size

let test_progcache_does_not_cache_failures () =
  let c = Progcache.create ~capacity:4 () in
  let bad = "program nope\nthis is not gpi\n" in
  (match Progcache.find_or_compile c bad with
  | Error _, `Miss -> ()
  | Ok _, _ -> Alcotest.fail "garbage compiled"
  | Error _, `Hit -> Alcotest.fail "failure served from cache");
  (match Progcache.find_or_compile c bad with
  | Error _, `Miss -> ()
  | _ -> Alcotest.fail "failure was cached");
  let st = Progcache.stats c in
  check_int "failures keep the cache empty" 0 st.Progcache.cs_size;
  check_int "both lookups missed" 2 st.Progcache.cs_misses

let suites =
  [
    ( "listener.protocol",
      [
        Alcotest.test_case "round trip" `Quick test_round_trip;
        Alcotest.test_case "malformed requests survive" `Quick
          test_malformed_requests_keep_connection;
        Alcotest.test_case "blank and CRLF lines" `Quick
          test_blank_and_crlf_lines_ignored;
        Alcotest.test_case "inline script cache" `Quick test_inline_script_cache;
        Alcotest.test_case "script escaping round trip" `Quick
          test_escape_round_trip;
      ] );
    ( "listener.admission",
      [
        Alcotest.test_case "overload sheds structured faults" `Quick
          test_overload_sheds_with_structured_fault;
        Alcotest.test_case "oversized line rejected" `Quick
          test_oversize_line_rejected;
        Alcotest.test_case "shed requests skip compile" `Quick
          test_shed_requests_skip_compile;
        Alcotest.test_case "status endpoint" `Quick test_status_endpoint;
        Alcotest.test_case "status latency window" `Quick test_status_latency;
      ] );
    ( "listener.resilience",
      [
        Alcotest.test_case "client crash" `Quick
          test_client_crash_leaves_server_up;
        Alcotest.test_case "short-lived clients release fds" `Quick
          test_short_lived_clients_release_fds;
        Alcotest.test_case "connection cap sheds" `Quick
          test_connection_cap_sheds;
        Alcotest.test_case "degraded mode keeps answering" `Quick
          test_degraded_mode_keeps_answering;
        Alcotest.test_case "drain answers admitted requests" `Quick
          test_drain_answers_admitted_requests;
        Alcotest.test_case "socket unlinked after drain" `Quick
          test_socket_unlinked_after_drain;
        Alcotest.test_case "live socket not stolen" `Quick
          test_live_socket_not_stolen;
      ] );
    ( "listener.progcache",
      [
        Alcotest.test_case "hit/miss and content keying" `Quick
          test_progcache_hit_miss;
        Alcotest.test_case "LRU eviction" `Quick test_progcache_lru_eviction;
        Alcotest.test_case "failures not cached" `Quick
          test_progcache_does_not_cache_failures;
      ] );
  ]
