(* oglaf — command-line front door to the GLAF reproduction.

   Subcommands:
     compile   GPI action script -> analyzed, optimized Fortran or C
     analyze   print the auto-parallelization report for a script
     run       interpret a function of a compiled script
     check     integration-check a script against legacy Fortran code
     sloc      SLOC table of a Fortran source file
     sarb      reproduce the Synoptic SARB case study (§4.1)
     fun3d     reproduce the FUN3D case study (§4.2)
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Exit codes (documented in the README): 0 success, 1 diagnosed
   failure (script/calls/runtime/fault), 2 usage error.  Every
   subcommand body runs under [protect] so the user sees a one-line
   diagnostic on stderr, never an OCaml backtrace. *)
let die fmt = Printf.ksprintf (fun s -> Printf.eprintf "oglaf: %s\n" s; exit 1) fmt
let usage_die fmt =
  Printf.ksprintf (fun s -> Printf.eprintf "oglaf: %s\n" s; exit 2) fmt

let protect f =
  try f () with
  | Glaf_builder.Gpi_script.Script_error (line, msg) ->
    die "script error at line %d: %s" line msg
  | Glaf_fortran.Parser.Parse_error (line, msg) ->
    die "parse error at line %d: %s" line msg
  | Glaf_service.Serve.Calls_error (line, msg) ->
    die "calls error at line %d: %s" line msg
  | Glaf_interp.Interp.Fortran_error msg -> die "runtime error: %s" msg
  | Glaf_runtime.Value.Runtime_error msg -> die "runtime error: %s" msg
  | Glaf_runtime.Farray.Bounds_error msg -> die "runtime error: %s" msg
  | Glaf_lift.Lower.Unsupported msg -> die "lift error: %s" msg
  | Glaf_lift.Lift_kernel.Lift_error msg -> die "lift error: %s" msg
  | Glaf_service.Listener.Listener_error msg -> die "%s" msg
  | Unix.Unix_error (e, fn, arg) ->
    die "%s%s: %s" fn
      (if arg = "" then "" else " " ^ arg)
      (Unix.error_message e)
  | Sys_error msg -> die "%s" msg

let load_script path =
  match Glaf_builder.Gpi_script.run (read_file path) with
  | p -> p
  | exception Glaf_builder.Gpi_script.Script_error (line, msg) ->
    Printf.eprintf "%s:%d: %s\n" path line msg;
    exit 1

let policy_of_string = function
  | "v0" -> Some Glaf_optimizer.Directive_policy.V0
  | "v1" -> Some Glaf_optimizer.Directive_policy.V1
  | "v2" -> Some Glaf_optimizer.Directive_policy.V2
  | "v3" -> Some Glaf_optimizer.Directive_policy.V3
  | _ -> None

(* library/intrinsic functions are side-effect-free for the analysis *)
let pure = Glaf_runtime.Intrinsics.names ()

let pipeline ?(serial = false) ?(policy = None) ?(soa = false) program =
  let program =
    if soa then Glaf_optimizer.Layout.to_soa program else program
  in
  let annotated, report = Glaf_analysis.Autopar.run ~pure program in
  let annotated =
    match policy with
    | Some p -> Glaf_optimizer.Directive_policy.apply ~pure p annotated
    | None -> annotated
  in
  let opts =
    { Glaf_codegen.Fortran_gen.default_options with emit_omp = not serial }
  in
  (annotated, report, opts)

(* --- compile ----------------------------------------------------------- *)

let script_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT" ~doc:"GPI action script")

let serial_flag =
  Arg.(value & flag & info [ "serial" ] ~doc:"Generate serial code (no OpenMP directives).")

let soa_flag =
  Arg.(value & flag & info [ "soa" ] ~doc:"Apply the AoS-to-SoA layout transform first.")

let policy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "policy" ] ~docv:"V0..V3"
        ~doc:"Directive-pruning policy of the paper's Table 2 (v0, v1, v2, v3).")

let lang_arg =
  Arg.(
    value
    & opt string "fortran"
    & info [ "lang" ] ~docv:"LANG" ~doc:"Output language: fortran, c or opencl.")

let compile_cmd =
  let run script serial policy_s soa lang =
    protect @@ fun () ->
    let policy = Option.bind policy_s policy_of_string in
    if policy_s <> None && policy = None then
      usage_die "unknown policy %s (expected v0..v3)" (Option.get policy_s);
    let annotated, _, opts = pipeline ~serial ~policy ~soa (load_script script) in
    match lang with
    | "fortran" ->
      print_string (Glaf_codegen.Fortran_gen.to_source ~opts annotated)
    | "c" ->
      print_string (Glaf_codegen.C_gen.gen_program ~emit_omp:(not serial) annotated)
    | "opencl" ->
      print_string (Glaf_codegen.Opencl_gen.gen_program annotated)
    | other -> usage_die "unknown language %s (expected fortran, c or opencl)" other
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Auto-parallelize a GPI script and generate code")
    Term.(const run $ script_arg $ serial_flag $ policy_arg $ soa_flag $ lang_arg)

(* --- analyze ----------------------------------------------------------- *)

let analyze_cmd =
  let run script =
    protect @@ fun () ->
    let _, report, _ = pipeline (load_script script) in
    Format.printf "%a@." Glaf_analysis.Autopar.pp_report report
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Print the auto-parallelization report")
    Term.(const run $ script_arg)

(* --- tuning plans -------------------------------------------------------- *)

(* A corrupted or stale plan file is a diagnosed failure (exit 1, one
   structured line), never a crash or a silently ignored flag. *)
let load_plan path =
  match Glaf_tune.Plan.load path with
  | Ok p -> p
  | Error reason -> die "plan fault: %s" reason

let plan_stats_line plan =
  Printf.eprintf "oglaf: plan %s\n%!" (Glaf_tune.Plan.stats_json plan)

let plan_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "plan" ] ~docv:"FILE"
        ~doc:
          "Apply a tuning plan produced by $(b,oglaf tune --out): every loop \
           whose structural digest has a cached winner runs with that \
           schedule; stale entries are ignored. Prints the plan's \
           hit/miss/stale counters to stderr.")

(* --- run ---------------------------------------------------------------- *)

let call_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "call" ] ~docv:"FUNCTION" ~doc:"Function of the script to invoke.")

let fun_args =
  Arg.(
    value
    & opt_all string []
    & info [ "arg" ] ~docv:"VALUE" ~doc:"Scalar argument (integer or real), repeatable.")

let threads_arg =
  Arg.(value & opt int 1 & info [ "threads" ] ~doc:"OpenMP thread count.")

let no_bytecode_flag =
  Arg.(
    value
    & flag
    & info [ "no-bytecode" ]
        ~doc:
          "Force the tree-walking interpreter for every loop body \
           (differential testing; bytecode lowering is on by default).")

let bytecode_stats_flag =
  Arg.(
    value
    & flag
    & info [ "bytecode-stats" ]
        ~doc:
          "After the call, print one line per compiled construct (loop or \
           subprogram body) with its run/bail counts and, when it bailed, \
           the construct that stopped compilation.")

let print_bytecode_stats rows =
  List.iter
    (fun (r : Glaf_interp.Interp.bytecode_row) ->
      Printf.eprintf "bytecode %-24s runs=%-8d bails=%-8d%s\n" r.r_label
        r.r_runs r.r_bails
        (match r.r_reason with Some why -> " bail=" ^ why | None -> ""))
    rows

let run_cmd =
  let run script fname args threads no_bytecode bc_stats plan_file =
    protect @@ fun () ->
    let plan = Option.map load_plan plan_file in
    let annotated, _, opts = pipeline (load_script script) in
    let src = Glaf_codegen.Fortran_gen.to_source ~opts annotated in
    let cu = Glaf_fortran.Parser.parse_string src in
    let cu =
      match plan with Some p -> Glaf_tune.Plan.apply p cu | None -> cu
    in
    let st = Glaf_interp.Interp.make_state cu in
    Glaf_interp.Interp.set_threads st threads;
    Glaf_interp.Interp.set_bytecode st (not no_bytecode);
    let actuals =
      List.map
        (fun a ->
          match int_of_string_opt a with
          | Some n -> Glaf_fortran.Ast.Int_lit n
          | None -> (
            match float_of_string_opt a with
            | Some x -> Glaf_fortran.Ast.Real_lit (x, true)
            | None -> usage_die "--arg %S is not an integer or real literal" a))
        args
    in
    (match Glaf_interp.Interp.call st fname actuals with
    | Some v -> print_endline (Glaf_runtime.Value.to_string v)
    | None -> print_endline "(subroutine completed)");
    if bc_stats then print_bytecode_stats (Glaf_interp.Interp.bytecode_stats_for st);
    Option.iter plan_stats_line plan
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and interpret a function of a GPI script")
    Term.(
      const run $ script_arg $ call_arg $ fun_args $ threads_arg
      $ no_bytecode_flag $ bytecode_stats_flag $ plan_arg)

(* --- serve -------------------------------------------------------------- *)

(* serve's SCRIPT is optional at the Arg level: client mode
   (--connect) takes no script; server/batch modes validate below. *)
let serve_script_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"SCRIPT" ~doc:"GPI action script")

let calls_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "calls" ] ~docv:"FILE"
        ~doc:"Calls file: one 'function(arg, ...)' per line.")

let serve_threads_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "threads" ] ~docv:"N"
        ~doc:
          "Thread count for every served call (default: pool default, \
           i.e. \\$(b,OGLAF_NUM_THREADS) or cores - 1).")

let schedule_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "schedule" ] ~docv:"S"
        ~doc:
          "Default loop schedule for served calls: static[:K], chunk:K, \
           dynamic[:K] or guided[:K] (static:K and chunk:K are synonyms).")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print worker-pool statistics after the batch.")

let timeout_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Per-call deadline in milliseconds; a call past it is cancelled \
           at the next loop/chunk boundary and reported as a timeout fault.")

let retry_arg =
  Arg.(
    value & opt int 0
    & info [ "retry" ] ~docv:"N"
        ~doc:
          "Retry a call up to N extra times (exponential backoff) when it \
           failed with a transient fault (pool, timeout).")

let concurrency_arg =
  Arg.(
    value & opt int 1
    & info [ "concurrency" ] ~docv:"N"
        ~doc:
          "Overlap up to N independent calls across the worker pool \
           (default 1: serve sequentially). Results are still reported \
           in calls-file order.")

let max_errors_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-errors" ] ~docv:"K"
        ~doc:"Abort the batch after K failed calls (default: keep serving).")

let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"PLAN"
        ~doc:
          "Install a fault-injection plan: comma-separated \
           $(b,fail-region:K), $(b,delay-chunk:K:MS), \
           $(b,kill-worker:I[:N]) (see DESIGN.md section 11). \
           Takes precedence over $(b,OGLAF_INJECT).")

let listen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "listen" ] ~docv:"SOCK"
        ~doc:
          "Serve forever on a Unix domain socket at SOCK (newline-delimited \
           requests, one JSON response line each; see the README wire-protocol \
           section). Drains and exits 0 on SIGTERM/SIGINT.")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCK"
        ~doc:
          "Client mode: send the $(b,--calls) file (or $(b,--status)) to a \
           server started with $(b,--listen) and print each JSON response \
           line. Exits 1 if any call failed.")

let status_flag =
  Arg.(
    value & flag
    & info [ "status" ]
        ~doc:"With $(b,--connect): query the server's one-line status JSON.")

let max_pending_arg =
  Arg.(
    value & opt int 64
    & info [ "max-pending" ] ~docv:"N"
        ~doc:
          "Admission high-water mark for $(b,--listen): requests arriving \
           while N are already queued are shed with a structured overload \
           fault instead of queueing unboundedly.")

let max_conns_arg =
  Arg.(
    value & opt int 32
    & info [ "max-conns" ] ~docv:"N"
        ~doc:
          "Concurrent-connection cap for $(b,--listen): connections accepted \
           while N are already live are answered with one overload fault \
           line (seq 0) and closed, so per-connection reader domains can \
           never exhaust the runtime's domain limit.")

(* Server mode: compile once, answer requests on the socket until
   SIGTERM/SIGINT, then drain (finish every admitted call) and print a
   one-line summary.  Exit 0 on a clean drain. *)
let serve_listen ~socket ~script ~threads ~sched ~deadline_s ~retries
    ~concurrency ~max_pending ~max_conns ~no_bytecode ~stats ~plan =
  let module L = Glaf_service.Listener in
  let script_path =
    match script with
    | Some s -> s
    | None -> usage_die "--listen needs a SCRIPT to serve"
  in
  let config =
    {
      (L.default_config ~socket) with
      L.lc_max_pending = max_pending;
      lc_max_conns = max_conns;
      lc_executors = concurrency;
      lc_threads = threads;
      lc_sched = sched;
      lc_deadline_s = deadline_s;
      lc_bytecode = not no_bytecode;
      lc_retries = retries;
      lc_transform = Option.map (fun p cu -> Glaf_tune.Plan.apply p cu) plan;
      lc_status_extra =
        Option.map
          (fun p () -> [ ("plan", Glaf_tune.Plan.stats_json p) ])
          plan;
    }
  in
  match L.create ~config (read_file script_path) with
  | Error fault -> die "%s" (Glaf_runtime.Fault.to_string fault)
  | Ok srv ->
    let stop _ = L.request_stop srv in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Glaf_runtime.Pool.reset_stats ();
    Printf.eprintf "oglaf: listening on %s (max-pending %d, executors %d)\n%!"
      socket max_pending concurrency;
    let final = L.serve srv in
    Printf.eprintf "oglaf: %s\n%!" (L.summary_line final);
    Option.iter plan_stats_line plan;
    if stats then
      Format.printf "%a" Glaf_runtime.Pool.pp_stats (Glaf_runtime.Pool.stats ())

(* Client mode: lock-step request/response over the socket, one JSON
   line printed per call.  Exit 1 if any response was a fault or the
   server stopped answering. *)
let serve_connect ~socket ~calls_file ~status_q =
  let module L = Glaf_service.Listener in
  let cl = L.Client.connect socket in
  Fun.protect ~finally:(fun () -> L.Client.close cl) @@ fun () ->
  if status_q then
    match L.Client.request cl "status" with
    | Some line -> print_endline line
    | None -> die "no status reply from %s" socket
  else begin
    let calls_path =
      match calls_file with
      | Some p -> p
      | None -> usage_die "--connect needs --calls FILE or --status"
    in
    let any_failed = ref false in
    let send line =
      match L.Client.request cl ("run " ^ line) with
      | Some resp ->
        print_endline resp;
        (* our JSON writer is deterministic: a fault response always
           carries this exact token *)
        let is_fault =
          let tok = "\"ok\":false" in
          let n = String.length resp and m = String.length tok in
          let rec scan i =
            i + m <= n && (String.sub resp i m = tok || scan (i + 1))
          in
          scan 0
        in
        if is_fault then any_failed := true
      | None ->
        any_failed := true;
        Printf.eprintf "oglaf: no reply for %s (server gone?)\n%!" line
    in
    String.split_on_char '\n' (read_file calls_path)
    |> List.iter (fun raw ->
           let s = String.trim raw in
           if s <> "" && s.[0] <> '#' then send s);
    if !any_failed then exit 1
  end

let serve_cmd =
  let run script calls_file threads sched_s stats timeout_ms retries max_errors
      concurrency inject no_bytecode listen connect status_q max_pending
      max_conns plan_file =
    protect @@ fun () ->
    let plan = Option.map load_plan plan_file in
    let sched =
      match sched_s with
      | None -> None
      | Some s -> (
        match Glaf_runtime.Sched.of_string s with
        | Some sc -> Some sc
        | None ->
          usage_die
            "unknown schedule %s (expected static[:K], chunk:K, dynamic[:K] \
             or guided[:K])"
            s)
    in
    if concurrency < 1 then usage_die "--concurrency must be >= 1";
    if max_pending < 1 then usage_die "--max-pending must be >= 1";
    if max_conns < 1 then usage_die "--max-conns must be >= 1";
    (match inject with
    | None -> ()
    | Some plan -> (
      (* replaces any OGLAF_INJECT plan installed at load: the
         explicit flag wins over the environment *)
      match Glaf_runtime.Faultinject.parse_plan plan with
      | Ok p -> Glaf_runtime.Faultinject.set_plan p
      | Error msg -> usage_die "bad --inject plan: %s" msg));
    (match max_errors with
    | Some k when k < 1 -> usage_die "--max-errors must be >= 1"
    | _ -> ());
    if retries < 0 then usage_die "--retry must be >= 0";
    let deadline_s =
      match timeout_ms with
      | None -> None
      | Some ms when ms >= 1 -> Some (float_of_int ms /. 1e3)
      | Some ms -> usage_die "--timeout-ms must be >= 1, got %d" ms
    in
    match (listen, connect) with
    | Some _, Some _ -> usage_die "--listen and --connect are mutually exclusive"
    | Some socket, None ->
      (match calls_file with
      | Some _ ->
        usage_die "--calls is for batch or --connect mode; --listen serves \
                   requests from the socket"
      | None -> ());
      serve_listen ~socket ~script ~threads ~sched ~deadline_s ~retries
        ~concurrency ~max_pending ~max_conns ~no_bytecode ~stats ~plan
    | None, Some socket ->
      (match script with
      | Some _ -> usage_die "SCRIPT is not used with --connect (the server owns it)"
      | None -> ());
      (match plan with
      | Some _ -> usage_die "--plan is a server/batch option (the server owns it)"
      | None -> ());
      serve_connect ~socket ~calls_file ~status_q
    | None, None ->
      if status_q then usage_die "--status needs --connect SOCK";
      let script_path =
        match script with Some s -> s | None -> usage_die "missing SCRIPT"
      in
      let calls_path =
        match calls_file with
        | Some p -> p
        | None -> usage_die "batch mode needs --calls FILE (or use --listen)"
      in
      let transform =
        Option.map (fun p cu -> Glaf_tune.Plan.apply p cu) plan
      in
      let compiled =
        Glaf_service.Serve.compile ?transform (read_file script_path)
      in
      let calls = Glaf_service.Serve.parse_calls (read_file calls_path) in
      Glaf_runtime.Pool.reset_stats ();
      let batch =
        Glaf_service.Serve.run_calls ~concurrency ?threads ?sched ?deadline_s
          ~bytecode:(not no_bytecode) ~retries ?max_errors
          ~on_result:(fun _call r ->
            match r with
            | Ok oc -> Format.printf "%a@." Glaf_service.Serve.pp_outcome oc
            | Error f ->
              Format.printf "[FAULT] %s@." (Glaf_runtime.Fault.to_string f))
          compiled calls
      in
      if stats then
        Format.printf "%a" Glaf_runtime.Pool.pp_stats
          (Glaf_runtime.Pool.stats ());
      Option.iter plan_stats_line plan;
      if batch.Glaf_service.Serve.b_failed > 0 then begin
        Format.eprintf "oglaf: %a@." Glaf_service.Serve.pp_batch_summary batch;
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Compile a GPI script once and serve kernel calls from it: a batch \
          from --calls, a long-lived Unix-socket server with --listen, or a \
          client with --connect")
    Term.(
      const run $ serve_script_arg $ calls_arg $ serve_threads_arg
      $ schedule_arg $ stats_flag $ timeout_arg $ retry_arg $ max_errors_arg
      $ concurrency_arg $ inject_arg $ no_bytecode_flag $ listen_arg
      $ connect_arg $ status_flag $ max_pending_arg $ max_conns_arg
      $ plan_arg)

(* --- check -------------------------------------------------------------- *)

let legacy_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "legacy" ] ~docv:"FILE" ~doc:"Legacy Fortran source to integrate with.")

let check_cmd =
  let run script legacy =
    protect @@ fun () ->
    let program = load_script script in
    let model = Glaf_integration.Legacy_model.of_source (read_file legacy) in
    match Glaf_integration.Checker.check model program with
    | [] -> print_endline "OK: all integration references resolve"
    | issues ->
      List.iter
        (fun i -> print_endline (Glaf_integration.Checker.issue_to_string i))
        issues;
      exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Check a GPI script's integration surface against legacy code")
    Term.(const run $ script_arg $ legacy_arg)

(* --- sloc --------------------------------------------------------------- *)

(* a plain string, not Arg.file: a missing file is a diagnosed run
   failure (exit 1, one line via [protect]), not a usage error *)
let fortran_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Fortran source file")

let sloc_cmd =
  let run file =
    protect @@ fun () ->
    let cu = Glaf_fortran.Parser.parse_string (read_file file) in
    List.iter
      (fun (name, n) -> Printf.printf "%-32s %6d\n" name n)
      (Glaf_fortran.Sloc.table cu)
  in
  Cmd.v
    (Cmd.info "sloc" ~doc:"Per-subprogram SLOC of a Fortran source file")
    Term.(const run $ fortran_file_arg)

(* --- autopar ------------------------------------------------------------- *)

let parse_cli_call ~what s =
  match Glaf_fortran.Parser.parse_expr_string s with
  | Glaf_fortran.Ast.Desig [ (n, args) ] -> (String.lowercase_ascii n, args)
  | _ -> usage_die "%s must be a call like 'sub(1.5, 2)': %s" what s
  | exception Glaf_fortran.Parser.Parse_error (_, msg) ->
    usage_die "bad %s %S: %s" what s msg

let autopar_cmd =
  let mode_arg =
    Arg.(
      value
      & opt string "directives"
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "$(b,directives) annotates the source in place with !\\$OMP \
             PARALLEL DO; $(b,lift) raises one subprogram into the grid IR \
             and regenerates it as a parallel kernel.")
  in
  let kernel_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "kernel" ] ~docv:"SUB"
          ~doc:"Subprogram to lift (required in lift mode).")
  in
  let call_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "call" ] ~docv:"CALL"
          ~doc:
            "Verification entry call on the $(i,original) name, e.g. \
             'adjust2(1.5, 1.02)'.  Lift mode defaults to the lifted \
             kernel with synthesized scalar arguments.")
  in
  let setup_arg =
    Arg.(
      value & opt_all string []
      & info [ "setup" ] ~docv:"CALL"
          ~doc:
            "Setup call executed before verification on both versions \
             (repeatable), e.g. 'sarb_init_profiles()'.")
  in
  let no_verify_flag =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:"Skip the interpreter equivalence verification.")
  in
  let report_flag =
    Arg.(
      value & flag
      & info [ "report" ]
          ~doc:"Print only the per-loop analysis report, to stdout.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the generated source to FILE instead of stdout.")
  in
  let emit out source =
    match out with
    | None -> print_string source
    | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc source)
  in
  let verified_line n =
    Printf.eprintf "oglaf: verified: %d configurations bit-identical\n" n
  in
  let run file mode kernel call setup no_verify report_only out =
    protect @@ fun () ->
    let setup = List.map (parse_cli_call ~what:"--setup") setup in
    let cu = Glaf_fortran.Parser.parse_string (read_file file) in
    match mode with
    | "directives" ->
      let result = Glaf_lift.Autopar_fortran.run ~pure cu in
      if report_only then
        Format.printf "%a@?" Glaf_lift.Autopar_fortran.pp_report result
      else begin
        Format.eprintf "%a@?" Glaf_lift.Autopar_fortran.pp_report result;
        (match (no_verify, call) with
        | false, Some c ->
          let name, args = parse_cli_call ~what:"--call" c in
          (match
             Glaf_lift.Verify.equivalent ~setup ~args ~original:(cu, name)
               ~variant:(result.Glaf_lift.Autopar_fortran.annotated, name) ()
           with
          | Ok n -> verified_line n
          | Error msg -> die "verification failed: %s" msg)
        | _ -> ());
        emit out
          (Glaf_fortran.Pp_ast.to_string
             result.Glaf_lift.Autopar_fortran.annotated)
      end
    | "lift" ->
      let kname =
        match kernel with
        | Some k -> k
        | None -> usage_die "lift mode needs --kernel SUB"
      in
      let lifted = Glaf_lift.Lift_kernel.lift ~pure cu kname in
      if report_only then
        Format.printf "%a@?" Glaf_analysis.Autopar.pp_report
          lifted.Glaf_lift.Lift_kernel.report
      else begin
        Format.eprintf "%a@?" Glaf_analysis.Autopar.pp_report
          lifted.Glaf_lift.Lift_kernel.report;
        if not no_verify then begin
          let args =
            match call with
            | Some c ->
              let name, args = parse_cli_call ~what:"--call" c in
              if
                String.lowercase_ascii kname <> name
              then
                usage_die "--call names %s but the lifted kernel is %s" name
                  kname;
              args
            | None ->
              Glaf_lift.Verify.synthesize_args lifted.Glaf_lift.Lift_kernel.func
          in
          match
            Glaf_lift.Verify.equivalent ~setup ~args
              ~original:(cu, String.lowercase_ascii kname)
              ~variant:
                ( lifted.Glaf_lift.Lift_kernel.combined,
                  lifted.Glaf_lift.Lift_kernel.kernel )
              ()
          with
          | Ok n -> verified_line n
          | Error msg -> die "verification failed: %s" msg
        end;
        emit out lifted.Glaf_lift.Lift_kernel.source
      end
    | other -> usage_die "unknown mode %s (expected directives or lift)" other
  in
  Cmd.v
    (Cmd.info "autopar"
       ~doc:
         "Auto-parallelize legacy Fortran: insert OMP directives or lift a \
          kernel into the grid IR")
    Term.(
      const run $ fortran_file_arg $ mode_arg $ kernel_arg $ call_arg
      $ setup_arg $ no_verify_flag $ report_flag $ out_arg)

(* --- tune ----------------------------------------------------------------- *)

let tune_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"GPI action script (.gpi) or legacy Fortran source (.f90/.f).")
  in
  let calls_file_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "calls" ] ~docv:"FILE"
          ~doc:"Workload: calls file, one 'function(arg, ...)' per line.")
  in
  let call_arg =
    Arg.(
      value & opt_all string []
      & info [ "call" ] ~docv:"CALL"
          ~doc:"Workload call, e.g. 'pi_mid(10000)' (repeatable).")
  in
  let setup_arg =
    Arg.(
      value & opt_all string []
      & info [ "setup" ] ~docv:"CALL"
          ~doc:
            "Setup call executed (untimed, unverified) before each measured \
             or verified run, e.g. 'entx_init()' (repeatable).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the winning plan as JSON to FILE.")
  in
  let prior_plan_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "plan" ] ~docv:"FILE"
          ~doc:
            "Prior plan: loops whose structural digest is already cached \
             skip the search entirely (their row reads 'cached').")
  in
  let tune_threads_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "threads" ] ~docv:"N"
          ~doc:
            "Thread count the parallel variants are measured at (default: \
             min(4, cores)).")
  in
  let repeats_arg =
    Arg.(
      value & opt int 3
      & info [ "repeats" ] ~docv:"N"
          ~doc:"Timed repetitions per variant; the minimum counts.")
  in
  let tune_timeout_arg =
    Arg.(
      value & opt int 5000
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Deadline per candidate phase (verification, measurement): a \
             variant past it is disqualified, not allowed to wedge the \
             search.")
  in
  let run file calls_file call_strs setup_strs out prior_plan_file threads
      repeats timeout_ms =
    protect @@ fun () ->
    if repeats < 1 then usage_die "--repeats must be >= 1";
    if timeout_ms < 1 then usage_die "--timeout-ms must be >= 1";
    let deadline_s = float_of_int timeout_ms /. 1e3 in
    let setup = List.map (parse_cli_call ~what:"--setup") setup_strs in
    let calls =
      List.map (parse_cli_call ~what:"--call") call_strs
      @
      match calls_file with
      | None -> []
      | Some path ->
        List.map
          (fun (c : Glaf_service.Serve.call) ->
            (c.Glaf_service.Serve.cl_name, c.Glaf_service.Serve.cl_args))
          (Glaf_service.Serve.parse_calls (read_file path))
    in
    if calls = [] then
      usage_die "tune needs a workload: --call CALL and/or --calls FILE";
    let prior = Option.map load_plan prior_plan_file in
    (* .gpi scripts go through the serving pipeline (build -> autopar
       -> codegen -> reparse); legacy Fortran through autopar
       annotation, with the original file as the serial baseline *)
    let cu, baseline =
      if Filename.check_suffix file ".gpi" then begin
        let compiled = Glaf_service.Serve.compile (read_file file) in
        (compiled.Glaf_service.Serve.co_unit, None)
      end
      else
        let original = Glaf_fortran.Parser.parse_string (read_file file) in
        let result = Glaf_lift.Autopar_fortran.run ~pure original in
        (result.Glaf_lift.Autopar_fortran.annotated, Some original)
    in
    let report =
      Glaf_tune.Tuner.tune ?threads ~repeats ~deadline_s ?plan:prior ?baseline
        ~setup ~calls cu
    in
    print_string (Glaf_tune.Tuner.table_string report);
    (match report.Glaf_tune.Tuner.tn_compose_errors with
    | [] -> ()
    | e :: _ -> die "tuned plan failed composed verification: %s" e);
    match out with
    | None -> ()
    | Some path ->
      Glaf_tune.Plan.save report.Glaf_tune.Tuner.tn_plan path;
      Printf.eprintf "oglaf: plan written to %s (%d entries)\n%!" path
        (List.length report.Glaf_tune.Tuner.tn_plan.Glaf_tune.Plan.p_entries)
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Search the per-loop variant space (serial/schedule/chunk/collapse) \
          of a program against a workload, verify every candidate \
          bit-identical to the serial baseline, and emit the winning plan")
    Term.(
      const run $ file_arg $ calls_file_arg $ call_arg $ setup_arg $ out_arg
      $ prior_plan_arg $ tune_threads_arg $ repeats_arg $ tune_timeout_arg)

(* --- case studies -------------------------------------------------------- *)

let sarb_cmd =
  let run () =
    protect @@ fun () ->
    print_endline "== integration check ==";
    (match Glaf_workloads.Sarb.integration_issues () with
    | [] -> print_endline "OK"
    | l -> List.iter (fun i -> print_endline (Glaf_integration.Checker.issue_to_string i)) l);
    print_endline "\n== verification ==";
    List.iter
      (fun (v, d) ->
        Printf.printf "%-22s max |diff| %9.2e\n" (Glaf_workloads.Sarb.variant_name v) d)
      (Glaf_workloads.Sarb.verify ~threads:2 ());
    print_endline "\n== Figure 5 ==";
    List.iter
      (fun (n, s) -> Printf.printf "%-22s %.2fx\n" n s)
      (Glaf_workloads.Sarb.figure5 ());
    print_endline "\n== Figure 6 ==";
    List.iter
      (fun (t, s) -> Printf.printf "%dT %.2fx\n" t s)
      (Glaf_workloads.Sarb.figure6 ())
  in
  Cmd.v
    (Cmd.info "sarb" ~doc:"Reproduce the Synoptic SARB case study")
    Term.(const run $ const ())

let fun3d_cmd =
  let ncell_arg =
    Arg.(value & opt int 150 & info [ "ncell" ] ~doc:"Mesh size for the interpreted runs.")
  in
  let run ncell =
    protect @@ fun () ->
    print_endline "== verification + reallocation study ==";
    List.iter
      (fun (v, d, a) ->
        Printf.printf "%-40s rms diff %9.2e  allocs %6d\n"
          (Glaf_workloads.Fun3d.variant_name v) d a)
      (Glaf_workloads.Fun3d.verify ~threads:2 ~ncell ());
    print_endline "\n== Figure 7 (modeled, 1M cells, 16T) ==";
    List.iter
      (fun (n, s) -> Printf.printf "%-40s %8.3fx\n" n s)
      (Glaf_workloads.Fun3d.figure7 ())
  in
  Cmd.v
    (Cmd.info "fun3d" ~doc:"Reproduce the FUN3D case study")
    Term.(const run $ ncell_arg)

let () =
  let doc = "GLAF reproduction: auto-parallelization and code generation" in
  let info = Cmd.info "oglaf" ~version:"1.0.0" ~doc in
  let code =
    Cmd.eval
      (Cmd.group info
         [ compile_cmd; analyze_cmd; run_cmd; serve_cmd; check_cmd; sloc_cmd;
           autopar_cmd; tune_cmd; sarb_cmd; fun3d_cmd ])
  in
  (* cmdliner reports CLI misuse as 124; the documented usage-error
     code is 2 (1 is reserved for diagnosed run failures) *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
