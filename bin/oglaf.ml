(* oglaf — command-line front door to the GLAF reproduction.

   Subcommands:
     compile   GPI action script -> analyzed, optimized Fortran or C
     analyze   print the auto-parallelization report for a script
     run       interpret a function of a compiled script
     check     integration-check a script against legacy Fortran code
     sloc      SLOC table of a Fortran source file
     sarb      reproduce the Synoptic SARB case study (§4.1)
     fun3d     reproduce the FUN3D case study (§4.2)
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_script path =
  match Glaf_builder.Gpi_script.run (read_file path) with
  | p -> p
  | exception Glaf_builder.Gpi_script.Script_error (line, msg) ->
    Printf.eprintf "%s:%d: %s\n" path line msg;
    exit 1

let policy_of_string = function
  | "v0" -> Some Glaf_optimizer.Directive_policy.V0
  | "v1" -> Some Glaf_optimizer.Directive_policy.V1
  | "v2" -> Some Glaf_optimizer.Directive_policy.V2
  | "v3" -> Some Glaf_optimizer.Directive_policy.V3
  | _ -> None

(* library/intrinsic functions are side-effect-free for the analysis *)
let pure = Glaf_runtime.Intrinsics.names ()

let pipeline ?(serial = false) ?(policy = None) ?(soa = false) program =
  let program =
    if soa then Glaf_optimizer.Layout.to_soa program else program
  in
  let annotated, report = Glaf_analysis.Autopar.run ~pure program in
  let annotated =
    match policy with
    | Some p -> Glaf_optimizer.Directive_policy.apply ~pure p annotated
    | None -> annotated
  in
  let opts =
    { Glaf_codegen.Fortran_gen.default_options with emit_omp = not serial }
  in
  (annotated, report, opts)

(* --- compile ----------------------------------------------------------- *)

let script_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT" ~doc:"GPI action script")

let serial_flag =
  Arg.(value & flag & info [ "serial" ] ~doc:"Generate serial code (no OpenMP directives).")

let soa_flag =
  Arg.(value & flag & info [ "soa" ] ~doc:"Apply the AoS-to-SoA layout transform first.")

let policy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "policy" ] ~docv:"V0..V3"
        ~doc:"Directive-pruning policy of the paper's Table 2 (v0, v1, v2, v3).")

let lang_arg =
  Arg.(
    value
    & opt string "fortran"
    & info [ "lang" ] ~docv:"LANG" ~doc:"Output language: fortran, c or opencl.")

let compile_cmd =
  let run script serial policy_s soa lang =
    let policy = Option.bind policy_s policy_of_string in
    if policy_s <> None && policy = None then begin
      Printf.eprintf "unknown policy %s\n" (Option.get policy_s);
      exit 1
    end;
    let annotated, _, opts = pipeline ~serial ~policy ~soa (load_script script) in
    match lang with
    | "fortran" ->
      print_string (Glaf_codegen.Fortran_gen.to_source ~opts annotated)
    | "c" ->
      print_string (Glaf_codegen.C_gen.gen_program ~emit_omp:(not serial) annotated)
    | "opencl" ->
      print_string (Glaf_codegen.Opencl_gen.gen_program annotated)
    | other ->
      Printf.eprintf "unknown language %s\n" other;
      exit 1
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Auto-parallelize a GPI script and generate code")
    Term.(const run $ script_arg $ serial_flag $ policy_arg $ soa_flag $ lang_arg)

(* --- analyze ----------------------------------------------------------- *)

let analyze_cmd =
  let run script =
    let _, report, _ = pipeline (load_script script) in
    Format.printf "%a@." Glaf_analysis.Autopar.pp_report report
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Print the auto-parallelization report")
    Term.(const run $ script_arg)

(* --- run ---------------------------------------------------------------- *)

let call_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "call" ] ~docv:"FUNCTION" ~doc:"Function of the script to invoke.")

let fun_args =
  Arg.(
    value
    & opt_all string []
    & info [ "arg" ] ~docv:"VALUE" ~doc:"Scalar argument (integer or real), repeatable.")

let threads_arg =
  Arg.(value & opt int 1 & info [ "threads" ] ~doc:"OpenMP thread count.")

let run_cmd =
  let run script fname args threads =
    let annotated, _, opts = pipeline (load_script script) in
    let src = Glaf_codegen.Fortran_gen.to_source ~opts annotated in
    let st = Glaf_interp.Interp.make_state (Glaf_fortran.Parser.parse_string src) in
    Glaf_interp.Interp.set_threads st threads;
    let actuals =
      List.map
        (fun a ->
          match int_of_string_opt a with
          | Some n -> Glaf_fortran.Ast.Int_lit n
          | None -> Glaf_fortran.Ast.Real_lit (float_of_string a, true))
        args
    in
    match Glaf_interp.Interp.call st fname actuals with
    | Some v -> print_endline (Glaf_runtime.Value.to_string v)
    | None -> print_endline "(subroutine completed)"
    | exception Glaf_interp.Interp.Fortran_error msg ->
      Printf.eprintf "runtime error: %s\n" msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and interpret a function of a GPI script")
    Term.(const run $ script_arg $ call_arg $ fun_args $ threads_arg)

(* --- serve -------------------------------------------------------------- *)

let calls_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "calls" ] ~docv:"FILE"
        ~doc:"Calls file: one 'function(arg, ...)' per line.")

let serve_threads_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "threads" ] ~docv:"N"
        ~doc:
          "Thread count for every served call (default: pool default, \
           i.e. \\$(b,OGLAF_NUM_THREADS) or cores - 1).")

let schedule_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "schedule" ] ~docv:"S"
        ~doc:
          "Default loop schedule for served calls: static, chunk:K or \
           dynamic:K.")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print worker-pool statistics after the batch.")

let serve_cmd =
  let run script calls_file threads sched_s stats =
    let sched =
      match sched_s with
      | None -> None
      | Some s -> (
        match Glaf_runtime.Sched.of_string s with
        | Some sc -> Some sc
        | None ->
          Printf.eprintf
            "unknown schedule %s (expected static, chunk:K or dynamic:K)\n" s;
          exit 1)
    in
    let compiled =
      match Glaf_service.Serve.compile (read_file script) with
      | c -> c
      | exception Glaf_builder.Gpi_script.Script_error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" script line msg;
        exit 1
    in
    let calls =
      match Glaf_service.Serve.parse_calls (read_file calls_file) with
      | c -> c
      | exception Glaf_service.Serve.Calls_error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" calls_file line msg;
        exit 1
    in
    Glaf_runtime.Pool.reset_stats ();
    (try
       List.iter
         (fun call ->
           let oc =
             Glaf_service.Serve.run_call ?threads ?sched compiled call
           in
           Format.printf "%a@." Glaf_service.Serve.pp_outcome oc)
         calls
     with Glaf_interp.Interp.Fortran_error msg ->
       Printf.eprintf "runtime error: %s\n" msg;
       exit 1);
    if stats then
      Format.printf "%a" Glaf_runtime.Pool.pp_stats
        (Glaf_runtime.Pool.stats ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Compile a GPI script once and serve a batch of kernel calls \
          from it")
    Term.(
      const run $ script_arg $ calls_arg $ serve_threads_arg $ schedule_arg
      $ stats_flag)

(* --- check -------------------------------------------------------------- *)

let legacy_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "legacy" ] ~docv:"FILE" ~doc:"Legacy Fortran source to integrate with.")

let check_cmd =
  let run script legacy =
    let program = load_script script in
    let model = Glaf_integration.Legacy_model.of_source (read_file legacy) in
    match Glaf_integration.Checker.check model program with
    | [] -> print_endline "OK: all integration references resolve"
    | issues ->
      List.iter
        (fun i -> print_endline (Glaf_integration.Checker.issue_to_string i))
        issues;
      exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Check a GPI script's integration surface against legacy code")
    Term.(const run $ script_arg $ legacy_arg)

(* --- sloc --------------------------------------------------------------- *)

let sloc_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Fortran source")
  in
  let run file =
    let cu = Glaf_fortran.Parser.parse_string (read_file file) in
    List.iter
      (fun (name, n) -> Printf.printf "%-32s %6d\n" name n)
      (Glaf_fortran.Sloc.table cu)
  in
  Cmd.v
    (Cmd.info "sloc" ~doc:"Per-subprogram SLOC of a Fortran source file")
    Term.(const run $ file_arg)

(* --- case studies -------------------------------------------------------- *)

let sarb_cmd =
  let run () =
    print_endline "== integration check ==";
    (match Glaf_workloads.Sarb.integration_issues () with
    | [] -> print_endline "OK"
    | l -> List.iter (fun i -> print_endline (Glaf_integration.Checker.issue_to_string i)) l);
    print_endline "\n== verification ==";
    List.iter
      (fun (v, d) ->
        Printf.printf "%-22s max |diff| %9.2e\n" (Glaf_workloads.Sarb.variant_name v) d)
      (Glaf_workloads.Sarb.verify ~threads:2 ());
    print_endline "\n== Figure 5 ==";
    List.iter
      (fun (n, s) -> Printf.printf "%-22s %.2fx\n" n s)
      (Glaf_workloads.Sarb.figure5 ());
    print_endline "\n== Figure 6 ==";
    List.iter
      (fun (t, s) -> Printf.printf "%dT %.2fx\n" t s)
      (Glaf_workloads.Sarb.figure6 ())
  in
  Cmd.v
    (Cmd.info "sarb" ~doc:"Reproduce the Synoptic SARB case study")
    Term.(const run $ const ())

let fun3d_cmd =
  let ncell_arg =
    Arg.(value & opt int 150 & info [ "ncell" ] ~doc:"Mesh size for the interpreted runs.")
  in
  let run ncell =
    print_endline "== verification + reallocation study ==";
    List.iter
      (fun (v, d, a) ->
        Printf.printf "%-40s rms diff %9.2e  allocs %6d\n"
          (Glaf_workloads.Fun3d.variant_name v) d a)
      (Glaf_workloads.Fun3d.verify ~threads:2 ~ncell ());
    print_endline "\n== Figure 7 (modeled, 1M cells, 16T) ==";
    List.iter
      (fun (n, s) -> Printf.printf "%-40s %8.3fx\n" n s)
      (Glaf_workloads.Fun3d.figure7 ())
  in
  Cmd.v
    (Cmd.info "fun3d" ~doc:"Reproduce the FUN3D case study")
    Term.(const run $ ncell_arg)

let () =
  let doc = "GLAF reproduction: auto-parallelization and code generation" in
  let info = Cmd.info "oglaf" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ compile_cmd; analyze_cmd; run_cmd; serve_cmd; check_cmd; sloc_cmd; sarb_cmd; fun3d_cmd ]))
