
module fuinput
  implicit none
  integer, parameter :: nv = 60
  integer, parameter :: nv1 = 61
  integer, parameter :: mbx = 12
  integer, parameter :: mbsx = 6
  ! atmospheric profiles on nv1 pressure interfaces
  real*8 :: pp(nv1)
  real*8 :: pt(nv1)
  real*8 :: ph(nv1)
  real*8 :: po(nv1)
  ! layer geometric thickness, metres
  real*8 :: dz(nv)
  type :: fu_config_t
    real*8 :: u0
    real*8 :: ss
    real*8 :: pts
    real*8 :: ee(mbx)
  end type fu_config_t
  type(fu_config_t) :: fi
end module fuinput


module fuoutput
  use fuinput
  implicit none
  type :: fu_out_t
    real*8 :: fds(61)
    real*8 :: fus(61)
    real*8 :: fdir(61)
    real*8 :: fuir(61)
    real*8 :: fwin(61)
    real*8 :: sen_lw(61)
    real*8 :: sen_sw(61)
    real*8 :: hr(60)
  end type fu_out_t
  type(fu_out_t) :: fo
  real*8 :: toa_lw
  real*8 :: toa_sw
  real*8 :: sfc_lw
  real*8 :: sfc_sw
  real*8 :: olr_win
  real*8 :: ent_total
end module fuoutput


subroutine adjust2(dtemp, qfac)
  use fuinput
  implicit none
  real*8 :: dtemp, qfac
  integer :: k, ktrop
  real*8 :: tmin, tmax, qmin, colq, scale
  tmin = 160.0d0
  tmax = 330.0d0
  qmin = 1.0d-9
  ! temperature offset with physical clamps (branchless, vectorizes)
  do k = 1, nv1
    pt(k) = min(max(pt(k) + dtemp, tmin), tmax)
  end do
  ! humidity scaling with floor
  do k = 1, nv1
    ph(k) = max(ph(k) * qfac, qmin)
  end do
  ! renormalize the ozone column to a fixed burden
  colq = 0.0d0
  do k = 1, nv
    colq = colq + 0.5d0 * (po(k) + po(k+1)) * (pp(k+1) - pp(k))
  end do
  scale = 1.0d0
  if (colq > 1.0d-12) then
    scale = 2.6d-3 / colq
  end if
  do k = 1, nv1
    po(k) = po(k) * scale
  end do
  ! tropopause: first level where temperature starts increasing
  ktrop = 1
  do k = 1, nv
    if (pt(k+1) > pt(k)) then
      ktrop = k
      exit
    end if
  end do
  ! gentle stratospheric drying above the tropopause
  do k = 1, nv1
    if (k < ktrop) ph(k) = ph(k) * 0.999d0
  end do
  ! hydrostatic layer thickness from the adjusted temperatures
  do k = 1, nv
    dz(k) = 29.3d0 * 0.5d0 * (pt(k) + pt(k+1)) * alog(pp(k+1) / pp(k))
  end do
  return
end subroutine adjust2


subroutine longwave_entropy_model()
  use fuinput
  use fuoutput
  implicit none
  common /entcon/ pc1, pc2, sigma, wnwin
  real*8 :: pc1, pc2, sigma, wnwin
  real*8 :: tl(61)
  real*8 :: cld(61)
  real*8 :: bb(61, 12)
  real*8 :: dbb(61, 12)
  real*8 :: tau(60, 12)
  real*8 :: tauc(60, 12)
  real*8 :: taua(60, 12)
  real*8 :: wgt(12)
  real*8 :: cum(61)
  real*8 :: cum9(61)
  real*8 :: flux2(2, 60)
  real*8 :: ent2(2, 60)
  real*8 :: gray(61)
  real*8 :: gray9(61)
  real*8 :: hk(12)
  real*8 :: cwn(12)
  real*8 :: ssa(60, 12)
  real*8 :: asym(60, 12)
  real*8 :: taud(60, 12)
  real*8 :: fdb(61, 12)
  real*8 :: fub(61, 12)
  real*8 :: olrb(12)
  real*8 :: tmid(60)
  real*8 :: lapse(60)
  integer :: k, j, ib, idir
  real*8 :: path, src, acc, tsum, emis_sfc, att, dtq, hnorm, fcld, tr
  ! ---- phase 1: zero-initialization loops (memset class) ----
  do k = 1, nv1
    fo%fuir(k) = 0.0d0
  end do
  do k = 1, nv1
    fo%fdir(k) = 0.0d0
  end do
  do k = 1, nv1
    fo%fwin(k) = 0.0d0
  end do
  do k = 1, nv1
    fo%sen_lw(k) = 0.0d0
  end do
  do k = 1, nv1
    gray(k) = 0.0d0
  end do
  ! ---- phase 2: single-value loads (broadcast class) ----
  do k = 1, nv1
    tl(k) = pt(k)
  end do
  do k = 1, nv1
    cld(k) = ph(k)
  end do
  ! analytic cloud deck peaked near level 20
  do k = 1, nv1
    cld(k) = 0.8d0 * exp(-((k - 20.0d0) / 8.0d0) ** 2)
  end do
  ! ---- phase 3: Planck-like source table (simple double loop) ----
  do ib = 1, mbx
    do k = 1, nv1
      bb(k, ib) = pc1 * ib ** 3 / (exp(pc2 * ib * 100.0d0 / tl(k)) - 1.0d0)
    end do
  end do
  ! ---- phase 3b: Planck gradient table (simple double loop) ----
  do ib = 1, mbx
    do k = 1, nv1
      dbb(k, ib) = bb(k, ib) * pc2 * ib * 100.0d0 / (tl(k) * tl(k)) &
        * exp(pc2 * ib * 100.0d0 / tl(k)) &
        / (exp(pc2 * ib * 100.0d0 / tl(k)) - 1.0d0)
    end do
  end do
  ! ---- phase 4: per-band gas optical depths (simple double loop) ----
  do ib = 1, mbx
    do k = 1, nv
      tau(k, ib) = 0.02d0 * ib * ph(k) * dz(k) / 250.0d0 &
        + 1.2d4 * po(k) * abs(alog(pp(k+1) / pp(k))) / ib
    end do
  end do
  ! ---- phase 4b: cloud optical depths (simple double loop) ----
  do ib = 1, mbx
    do k = 1, nv
      tauc(k, ib) = 0.15d0 * cld(k) * exp(-0.08d0 * abs(ib - 6.0d0)) &
        * (1.0d0 + 0.002d0 * (tl(k) - 250.0d0))
    end do
  end do
  ! ---- phase 4c: aerosol optical depths (simple double loop) ----
  do ib = 1, mbx
    do k = 1, nv
      taua(k, ib) = 3.0d-4 * exp(-(k - 1.0d0) / 15.0d0) * (1.0d0 + 1.0d0 / ib) &
        * (pp(k+1) - pp(k)) / 17.0d0
    end do
  end do
  ! ---- phase 4d: band overlap combination (simple double loop) ----
  do ib = 1, mbx
    do k = 1, nv
      tau(k, ib) = tau(k, ib) + 0.35d0 * tauc(k, ib) + taua(k, ib) &
        + 0.01d0 * sqrt(tauc(k, ib) * taua(k, ib) + 1.0d-12)
    end do
  end do
  ! ---- phase 4e: single-scatter albedo / asymmetry tables ----
  do ib = 1, mbx
    do k = 1, nv
      ssa(k, ib) = 0.96d0 * tauc(k, ib) / (tau(k, ib) + 1.0d-12)
      asym(k, ib) = 0.85d0 - 0.02d0 * abs(ib - 6.0d0) - 0.04d0 * cld(k)
    end do
  end do
  ! ---- phase 4f: delta-scaled optical depths (two-stream) ----
  do ib = 1, mbx
    do k = 1, nv
      fcld = asym(k, ib) * asym(k, ib)
      taud(k, ib) = (1.0d0 - min(ssa(k, ib), 0.999d0) * fcld) * tau(k, ib)
    end do
  end do
  ! ---- phase 5: band weights (simple single loop) ----
  do ib = 1, mbx
    wgt(ib) = exp(-0.23d0 * (ib - 6.5d0) ** 2)
  end do
  tsum = 0.0d0
  do ib = 1, mbx
    tsum = tsum + wgt(ib)
  end do
  do ib = 1, mbx
    wgt(ib) = wgt(ib) / tsum
  end do
  ! ---- phase 5b: k-distribution weights and band centres ----
  ! coefficient blocks in the style of the Fu-Liou tables
  hk(1) = 0.22d0
  hk(2) = 0.16d0
  hk(3) = 0.13d0
  hk(4) = 0.11d0
  hk(5) = 0.09d0
  hk(6) = 0.08d0
  hk(7) = 0.06d0
  hk(8) = 0.05d0
  hk(9) = 0.04d0
  hk(10) = 0.03d0
  hk(11) = 0.02d0
  hk(12) = 0.01d0
  cwn(1) = 2850.0d0
  cwn(2) = 2500.0d0
  cwn(3) = 2200.0d0
  cwn(4) = 1900.0d0
  cwn(5) = 1700.0d0
  cwn(6) = 1400.0d0
  cwn(7) = 1250.0d0
  cwn(8) = 1100.0d0
  cwn(9) = 980.0d0
  cwn(10) = 800.0d0
  cwn(11) = 670.0d0
  cwn(12) = 540.0d0
  do ib = 1, mbx
    wgt(ib) = wgt(ib) * (0.5d0 + hk(ib)) * (1.0d0 + 1.0d-5 * cwn(ib))
  end do
  ! ---- phase 6: serial cumulative transmissions (recurrences) ----
  cum(1) = 0.0d0
  do k = 2, nv1
    cum(k) = cum(k-1) + taud(k-1, 6)
  end do
  cum9(1) = 0.0d0
  do k = 2, nv1
    cum9(k) = cum9(k-1) + tau(k-1, 9) * (1.0d0 + 0.1d0 * cum9(k-1) / (1.0d0 + cum9(k-1)))
  end do
  do k = 1, nv1
    gray(k) = exp(-cum(k))
  end do
  do k = 1, nv1
    gray9(k) = exp(-cum9(k))
  end do
  ! ---- phase 7: FIRST LARGE EXCHANGE LOOP (complex, 2 x 60) ----
  ! direction 1: upward flux at layer k from emitting layers below;
  ! direction 2: downward flux from layers above.  The cloud branch
  ! inside the j-loop defeats compiler vectorization; GLAF emits
  ! OMP PARALLEL DO COLLAPSE(2) here.
  do idir = 1, 2
    do k = 1, nv
      acc = 0.0d0
      if (idir == 1) then
        ! distant layers contribute negligibly: truncated window
        path = 0.0d0
        do j = k, min(k + 19, nv)
          path = path + tau(j, 6)
          src = bb(j, 6) + 0.25d0 * bb(j, 9)
          if (cld(j) > 0.3d0) then
            src = src * (1.0d0 - 0.55d0 * cld(j))
            path = path + 0.8d0 * cld(j)
          else
            src = src * (1.0d0 + 0.08d0 * cld(j))
          end if
          acc = acc + src * exp(-path) * tau(j, 6)
        end do
        emis_sfc = fi%ee(6) * sigma * fi%pts ** 4
        acc = acc + emis_sfc * exp(-path) / 3.14159d0
      else
        path = 0.0d0
        do j = k, max(k - 19, 1), -1
          path = path + tau(j, 6)
          src = bb(j, 6) + 0.25d0 * bb(j, 3)
          if (cld(j) > 0.3d0) then
            src = src * (1.0d0 - 0.45d0 * cld(j))
            path = path + 0.6d0 * cld(j)
          else
            src = src * (1.0d0 + 0.05d0 * cld(j))
          end if
          acc = acc + src * exp(-path) * tau(j, 6)
        end do
      end if
      flux2(idir, k) = acc * 3.14159d0
    end do
  end do
  ! ---- phase 8: SECOND LARGE EXCHANGE LOOP (complex, 2 x 60) ----
  ! entropy exchange: flux over emission temperature, with a
  ! cloud-sensitive correction term per source layer.
  do idir = 1, 2
    do k = 1, nv
      acc = 0.0d0
      do j = max(k - 12, 1), min(k + 12, nv)
        dtq = tl(j) - tl(k)
        if (abs(dtq) > 2.0d0) then
          acc = acc + flux2(idir, j) * dtq / (tl(j) * tl(k))
        else
          acc = acc + flux2(idir, j) * 2.0d0 / (tl(j) + tl(k)) * 0.01d0
        end if
      end do
      ent2(idir, k) = flux2(idir, k) / tl(k) + 0.05d0 * acc / nv
    end do
  end do
  ! ---- phase 8b: per-band gray flux sweeps (serial recurrences per band) ----
  do ib = 1, mbx
    fdb(1, ib) = 0.0d0
    do k = 2, nv1
      tr = exp(-taud(k-1, ib))
      fdb(k, ib) = fdb(k-1, ib) * tr + bb(k, ib) * (1.0d0 - tr) * 3.14159d0
    end do
  end do
  do ib = 1, mbx
    fub(nv1, ib) = fi%ee(ib) * sigma * fi%pts ** 4 / mbx
    do k = nv, 1, -1
      tr = exp(-taud(k, ib))
      fub(k, ib) = fub(k+1, ib) * tr + bb(k, ib) * (1.0d0 - tr) * 3.14159d0
    end do
  end do
  ! ---- phase 8c: band-integrated TOA diagnostics ----
  do ib = 1, mbx
    olrb(ib) = wgt(ib) * fub(1, ib)
  end do
  ! ---- phase 9: combine directional fluxes (simple single loops) ----
  do k = 1, nv
    fo%fuir(k) = flux2(1, k)
  end do
  do k = 1, nv
    fo%fdir(k) = flux2(2, k)
  end do
  fo%fuir(nv1) = fi%ee(6) * sigma * fi%pts ** 4
  fo%fdir(nv1) = 0.0d0
  do k = 1, nv
    fo%sen_lw(k) = ent2(1, k) + ent2(2, k)
  end do
  fo%sen_lw(nv1) = fo%fuir(nv1) / tl(nv1)
  ! ---- phase 10: window channel (simple single loops) ----
  do k = 1, nv1
    fo%fwin(k) = wnwin * bb(k, 7) * gray(k) * (1.0d0 + wgt(7))
  end do
  do k = 1, nv1
    fo%fwin(k) = fo%fwin(k) + 0.01d0 * wnwin * dbb(k, 7) * gray9(k)
  end do
  ! ---- phase 11: scalar reductions ----
  olr_win = 0.0d0
  do k = 1, nv1
    olr_win = olr_win + fo%fwin(k)
  end do
  ent_total = 0.0d0
  do k = 1, nv1
    ent_total = ent_total + fo%sen_lw(k)
  end do
  do ib = 1, mbx
    olr_win = olr_win + 1.0d-3 * olrb(ib)
  end do
  ! ---- phase 12: heating-rate diagnostic with lapse correction ----
  do k = 1, nv
    tmid(k) = 0.5d0 * (tl(k) + tl(k+1))
  end do
  do k = 1, nv
    lapse(k) = (tl(k+1) - tl(k)) / (1.0d-3 + abs(dz(k)))
  end do
  do k = 1, nv
    hnorm = 8.442d0 / (pp(k+1) - pp(k))
    fo%hr(k) = hnorm * (fo%fuir(k+1) - fo%fuir(k) - fo%fdir(k+1) + fo%fdir(k))
    fo%hr(k) = fo%hr(k) * (1.0d0 + 1.0d-4 * lapse(k)) * (tmid(k) / (tmid(k) + 1.0d0))
  end do
  return
end subroutine longwave_entropy_model


subroutine lw_spectral_integration()
  use fuinput
  use fuoutput
  implicit none
  common /entcon/ pc1, pc2, sigma, wnwin
  real*8 :: pc1, pc2, sigma, wnwin
  real*8 :: bnd(61)
  real*8 :: fnet(61)
  real*8 :: sm(61)
  real*8 :: w, resid
  integer :: k, ib
  ! accumulate band-weighted upward flux into the broadband arrays;
  ! band 6 was already computed by the entropy model, the remaining
  ! bands contribute via the Planck ratio at each level
  do k = 1, nv1
    bnd(k) = 0.0d0
  end do
  do ib = 1, mbx
    w = exp(-0.23d0 * (ib - 6.5d0) ** 2)
    do k = 1, nv1
      bnd(k) = bnd(k) + w * pc1 * ib ** 3 / (exp(pc2 * ib * 100.0d0 / pt(k)) - 1.0d0)
    end do
  end do
  ! scale the directional fluxes by the spectral correction
  ! (bnd is a Planck sum, always positive: no branch needed)
  do k = 1, nv1
    fo%fuir(k) = fo%fuir(k) * (1.0d0 + 0.1d0 * bnd(k) / (1.0d0 + bnd(k)))
  end do
  do k = 1, nv1
    fo%fdir(k) = fo%fdir(k) * (1.0d0 + 0.07d0 * bnd(k) / (1.0d0 + bnd(k)))
  end do
  ! net flux profile
  do k = 1, nv1
    fnet(k) = fo%fuir(k) - fo%fdir(k)
  end do
  ! one-pass 3-point spectral smoothing of the net flux
  sm(1) = fnet(1)
  sm(nv1) = fnet(nv1)
  do k = 2, nv
    sm(k) = 0.25d0 * fnet(k-1) + 0.5d0 * fnet(k) + 0.25d0 * fnet(k+1)
  end do
  ! smoothing residual diagnostic folded into the TOA value
  resid = 0.0d0
  do k = 1, nv1
    resid = resid + abs(fnet(k) - sm(k))
  end do
  ! column totals
  toa_lw = fo%fuir(1) - fo%fdir(1) + 1.0d-9 * resid
  sfc_lw = fo%fuir(nv1) - fo%fdir(nv1)
  return
end subroutine lw_spectral_integration


subroutine sw_spectral_integration()
  use fuinput
  use fuoutput
  implicit none
  real*8 :: tsw(61)
  real*8 :: fdif(61)
  real*8 :: w, att, uvabs
  integer :: k, ib
  do k = 1, nv1
    fo%fds(k) = 0.0d0
  end do
  do k = 1, nv1
    fo%fus(k) = 0.0d0
  end do
  ! serial cumulative attenuation down the column (recurrence)
  tsw(1) = 1.0d0
  do k = 2, nv1
    att = 2.0d-4 * ph(k-1) * dz(k-1) / 250.0d0 + 30.0d0 * po(k-1)
    tsw(k) = tsw(k-1) * exp(-att / fi%u0)
  end do
  ! band-weighted direct beam (simple double loop)
  do ib = 1, mbsx
    w = exp(-0.4d0 * (ib - 2.0d0) ** 2) / 2.2d0
    do k = 1, nv1
      fo%fds(k) = fo%fds(k) + w * fi%ss * fi%u0 * tsw(k) ** (0.6d0 + 0.15d0 * ib)
    end do
  end do
  ! Lambertian surface reflection propagated back up
  do k = 1, nv1
    fo%fus(k) = min(0.15d0 * fo%fds(nv1) * tsw(nv1) / (tsw(k) + 1.0d-9), fo%fds(k))
  end do
  ! diffuse fraction from scattering out of the direct beam
  do k = 1, nv1
    fdif(k) = 0.12d0 * fo%fds(k) * (1.0d0 - tsw(k))
  end do
  do k = 1, nv1
    fo%fds(k) = fo%fds(k) + 0.5d0 * fdif(k)
  end do
  ! ozone UV absorption diagnostic
  uvabs = 0.0d0
  do k = 1, nv
    uvabs = uvabs + po(k) * (tsw(k) - tsw(k+1))
  end do
  toa_sw = fo%fds(1) - fo%fus(1) - 20.0d0 * uvabs
  sfc_sw = fo%fds(nv1) - fo%fus(nv1)
  return
end subroutine sw_spectral_integration


subroutine shortwave_entropy_model()
  use fuinput
  use fuoutput
  implicit none
  integer :: k
  do k = 1, nv1
    fo%sen_sw(k) = fo%fds(k) * 4.0d0 / (3.0d0 * 5800.0d0) - fo%fus(k) * 4.0d0 / (3.0d0 * pt(k))
  end do
  do k = 1, nv1
    fo%sen_sw(k) = fo%sen_sw(k) * (1.0d0 - 1.0d-6 * k)
  end do
  return
end subroutine shortwave_entropy_model


subroutine entropy_interface(dtemp, qfac)
  use fuinput
  use fuoutput
  implicit none
  real*8 :: dtemp, qfac
  common /entcon/ pc1, pc2, sigma, wnwin
  real*8 :: pc1, pc2, sigma, wnwin
  integer :: k, nbad
  real*8 :: net, bal
  ! physical constants of the (toy) radiative model
  pc1 = 1.19d-2
  pc2 = 1.44d0
  sigma = 5.67d-8
  wnwin = 0.12d0
  call adjust2(dtemp, qfac)
  call longwave_entropy_model()
  call lw_spectral_integration()
  call sw_spectral_integration()
  call shortwave_entropy_model()
  ! combined entropy budget diagnostic
  ent_total = 0.0d0
  do k = 1, nv1
    ent_total = ent_total + fo%sen_lw(k) + fo%sen_sw(k)
  end do
  ! per-level budget sanity scan (counts pathological levels)
  nbad = 0
  do k = 1, nv1
    bal = fo%sen_lw(k) + fo%sen_sw(k)
    if (abs(bal) > 1.0d6) nbad = nbad + 1
  end do
  ! net balance check folded into the window diagnostic
  net = toa_sw - toa_lw
  olr_win = olr_win + 1.0d-6 * net + 1.0d-9 * nbad
  return
end subroutine entropy_interface


subroutine sarb_init_profiles()
  use fuinput
  implicit none
  integer :: k, ib
  ! analytic standard-atmosphere-like profiles
  do k = 1, nv1
    pp(k) = 1.0d0 + 1012.0d0 * (k - 1.0d0) / nv
  end do
  do k = 1, nv1
    pt(k) = 216.0d0 + 72.0d0 * (pp(k) / 1013.0d0) ** 0.19d0
  end do
  do k = 1, nv1
    ph(k) = 4.0d-3 * (pp(k) / 1013.0d0) ** 3 + 2.0d-6
  end do
  do k = 1, nv1
    po(k) = 6.0d-6 * exp(-((pp(k) - 35.0d0) / 60.0d0) ** 2) + 3.0d-8
  end do
  fi%u0 = 0.5d0
  fi%ss = 1361.0d0
  fi%pts = 288.2d0
  do ib = 1, mbx
    fi%ee(ib) = 0.98d0 - 0.004d0 * ib
  end do
  return
end subroutine sarb_init_profiles

real*8 function sarb_checksum()
  use fuinput
  use fuoutput
  implicit none
  integer :: k
  real*8 :: s
  s = 0.0d0
  do k = 1, nv1
    s = s + fo%fuir(k) + 2.0d0 * fo%fdir(k) + 3.0d0 * fo%fds(k)
    s = s + 5.0d0 * fo%fus(k) + 7.0d0 * fo%fwin(k)
    s = s + 11.0d0 * fo%sen_lw(k) + 13.0d0 * fo%sen_sw(k)
  end do
  do k = 1, nv
    s = s + 0.1d0 * fo%hr(k)
  end do
  s = s + toa_lw + toa_sw + sfc_lw + sfc_sw + olr_win + ent_total
  sarb_checksum = s
end function sarb_checksum
