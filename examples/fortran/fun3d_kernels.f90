
module mesh_mod
  implicit none
  integer, parameter :: nq = 5
  integer, parameter :: npc = 4
  integer, parameter :: nec = 6
  integer :: ncell
  integer :: nnode
  integer, allocatable :: cell_nodes(:, :)
  real*8, allocatable :: cell_vol(:)
  real*8, allocatable :: face_area(:, :)
  real*8, allocatable :: face_angle(:, :)
  real*8, allocatable :: q(:, :)
  ! local edge-endpoint tables: edge e connects cell nodes ed1(e), ed2(e)
  integer :: ed1(6)
  integer :: ed2(6)
  real*8 :: angle_limit
end module mesh_mod

module jac_mod
  implicit none
  real*8, allocatable :: ajac(:, :)
  real*8 :: ref_rms
end module jac_mod


subroutine fun3d_init_mesh(nc)
  use mesh_mod
  use jac_mod
  implicit none
  integer :: nc
  integer :: c, n, p, i, s
  ncell = nc
  nnode = max(nc / 5, 64) + 8
  ! keep 37*d nonzero mod nnode (d = 1..3) so the stride-37 cell
  ! connectivity below never repeats a node within one cell
  if (mod(nnode, 37) == 0) nnode = nnode + 1
  allocate(cell_nodes(npc, ncell))
  allocate(cell_vol(ncell))
  allocate(face_area(npc, ncell))
  allocate(face_angle(npc, ncell))
  allocate(q(nq, nnode))
  allocate(ajac(nq, nnode))
  ! fixed tetrahedral edge tables
  ed1(1) = 1; ed2(1) = 2
  ed1(2) = 1; ed2(2) = 3
  ed1(3) = 1; ed2(3) = 4
  ed1(4) = 2; ed2(4) = 3
  ed1(5) = 2; ed2(5) = 4
  ed1(6) = 3; ed2(6) = 4
  angle_limit = 0.97d0
  ! Lehmer-style generator; all values in (0, 1)
  s = 12345
  do n = 1, nnode
    do i = 1, nq
      s = mod(s * 1103 + 12347, 65521)
      q(i, n) = 0.2d0 + 1.6d0 * s / 65521.0d0
    end do
  end do
  do c = 1, ncell
    ! one connectivity seed per cell + fixed stride: all four nodes
    ! of a cell are distinct
    s = mod(s * 1103 + 12347, 65521)
    do p = 1, npc
      cell_nodes(p, c) = 1 + mod(s + c + p * 37, nnode)
    end do
    do p = 1, npc
      s = mod(s * 1103 + 12347, 65521)
      face_area(p, c) = 0.1d0 + 0.9d0 * s / 65521.0d0
      s = mod(s * 1103 + 12347, 65521)
      face_angle(p, c) = s * 1.0d0 / 65521.0d0
    end do
    s = mod(s * 1103 + 12347, 65521)
    cell_vol(c) = 0.5d0 + 1.5d0 * s / 65521.0d0
  end do
  return
end subroutine fun3d_init_mesh

subroutine jacobian_fill()

  use mesh_mod
  use jac_mod
  implicit none
  integer :: c, n, i, f, p, e, p1, p2, n1, n2, ipos1, ipos2
  real*8 :: qn(5, 4)
  real*8 :: grad(3, 5)
  real*8 :: fl(5), fr(5), df(5)
  real*8 :: amax, w

  ! zero the output matrix rows
  do n = 1, nnode
    do i = 1, nq
      ajac(i, n) = 0.0d0
    end do
  end do
  do c = 1, ncell
    ! --- cell-face angle check: skip strongly skewed cells ---
    amax = 0.0d0
    do f = 1, npc
      amax = max(amax, face_angle(f, c))
    end do
    if (amax > angle_limit) cycle
    ! --- gather nodal state into cell-local storage ---
    do p = 1, npc
      n1 = cell_nodes(p, c)
      do i = 1, nq
        qn(i, p) = q(i, n1)
      end do
    end do
    ! --- Green-Gauss gradients from face sweeps ---
    do i = 1, nq
      grad(1, i) = 0.0d0
      grad(2, i) = 0.0d0
      grad(3, i) = 0.0d0
    end do
    do f = 1, npc
      w = face_area(f, c) / cell_vol(c)
      do i = 1, nq
        grad(1, i) = grad(1, i) + w * qn(i, f) * 0.71d0
        grad(2, i) = grad(2, i) + w * qn(i, f) * 0.53d0
        grad(3, i) = grad(3, i) - w * qn(i, f) * 0.39d0
      end do
    end do
    ! --- edge flux Jacobian contributions ---
    do e = 1, nec
      p1 = ed1(e)
      p2 = ed2(e)
      n1 = cell_nodes(p1, c)
      n2 = cell_nodes(p2, c)
      ! offset search: position of each endpoint in the cell row
      ! (mirrors the CSR off-diagonal search of the real solver)
      ipos1 = 0
      do p = 1, npc
        if (cell_nodes(p, c) == n1) then
          ipos1 = p
          exit
        end if
      end do
      ipos2 = 0
      do p = 1, npc
        if (cell_nodes(p, c) == n2) then
          ipos2 = p
          exit
        end if
      end do
      w = face_area(p1, c) * 0.5d0 + face_area(p2, c) * 0.5d0
      do i = 1, nq
        fl(i) = 0.5d0 * (qn(i, ipos1) + qn(i, ipos2)) * w
        fr(i) = grad(1, i) * 0.31d0 + grad(2, i) * 0.21d0 + grad(3, i) * 0.11d0
        df(i) = (fl(i) + fr(i) * cell_vol(c)) / (1.0d0 + abs(fl(i)))
      end do

      do i = 1, nq
        ajac(i, n1) = ajac(i, n1) + df(i)
        ajac(i, n2) = ajac(i, n2) - df(i)
      end do
    end do
  end do
  return
end subroutine jacobian_fill

subroutine jacobian_fill_manual()

  use mesh_mod
  use jac_mod
  implicit none
  integer :: c, n, i, f, p, e, p1, p2, n1, n2, ipos1, ipos2
  real*8 :: qn(5, 4)
  real*8 :: grad(3, 5)
  real*8 :: fl(5), fr(5), df(5)
  real*8 :: amax, w

  ! zero the output matrix rows
  do n = 1, nnode
    do i = 1, nq
      ajac(i, n) = 0.0d0
    end do
  end do
!$omp parallel do private(c, n, i, f, p, e, p1, p2, n1, n2, ipos1, ipos2, qn, grad, fl, fr, df, amax, w)
  do c = 1, ncell
    ! --- cell-face angle check: skip strongly skewed cells ---
    amax = 0.0d0
    do f = 1, npc
      amax = max(amax, face_angle(f, c))
    end do
    if (amax > angle_limit) cycle
    ! --- gather nodal state into cell-local storage ---
    do p = 1, npc
      n1 = cell_nodes(p, c)
      do i = 1, nq
        qn(i, p) = q(i, n1)
      end do
    end do
    ! --- Green-Gauss gradients from face sweeps ---
    do i = 1, nq
      grad(1, i) = 0.0d0
      grad(2, i) = 0.0d0
      grad(3, i) = 0.0d0
    end do
    do f = 1, npc
      w = face_area(f, c) / cell_vol(c)
      do i = 1, nq
        grad(1, i) = grad(1, i) + w * qn(i, f) * 0.71d0
        grad(2, i) = grad(2, i) + w * qn(i, f) * 0.53d0
        grad(3, i) = grad(3, i) - w * qn(i, f) * 0.39d0
      end do
    end do
    ! --- edge flux Jacobian contributions ---
    do e = 1, nec
      p1 = ed1(e)
      p2 = ed2(e)
      n1 = cell_nodes(p1, c)
      n2 = cell_nodes(p2, c)
      ! offset search: position of each endpoint in the cell row
      ! (mirrors the CSR off-diagonal search of the real solver)
      ipos1 = 0
      do p = 1, npc
        if (cell_nodes(p, c) == n1) then
          ipos1 = p
          exit
        end if
      end do
      ipos2 = 0
      do p = 1, npc
        if (cell_nodes(p, c) == n2) then
          ipos2 = p
          exit
        end if
      end do
      w = face_area(p1, c) * 0.5d0 + face_area(p2, c) * 0.5d0
      do i = 1, nq
        fl(i) = 0.5d0 * (qn(i, ipos1) + qn(i, ipos2)) * w
        fr(i) = grad(1, i) * 0.31d0 + grad(2, i) * 0.21d0 + grad(3, i) * 0.11d0
        df(i) = (fl(i) + fr(i) * cell_vol(c)) / (1.0d0 + abs(fl(i)))
      end do

      do i = 1, nq
!$omp atomic
        ajac(i, n1) = ajac(i, n1) + df(i)
!$omp atomic
        ajac(i, n2) = ajac(i, n2) - df(i)
      end do
    end do
  end do

!$omp end parallel do
  return
end subroutine jacobian_fill_manual


real*8 function fun3d_rms()
  use mesh_mod
  use jac_mod
  implicit none
  integer :: n, i
  real*8 :: s
  s = 0.0d0
  do n = 1, nnode
    do i = 1, nq
      s = s + ajac(i, n) * ajac(i, n)
    end do
  end do
  fun3d_rms = sqrt(s / (nq * nnode))
end function fun3d_rms
