(* The code-optimization back-end (§2.1): data-layout transformation
   (array-of-structures -> structure-of-arrays), loop interchange and
   manual loop collapsing, with the generated Fortran shown before and
   after each transform and semantics checked through the interpreter.

   Run with:  dune exec examples/layout_and_collapse.exe
*)

open Glaf_ir
open Glaf_builder
module E = Expr
module S = Stmt

let particles_program () =
  let b = Build.create "layout_demo" in
  Build.add_module b "m";
  Build.start_function b "advance" ~return:Types.T_real8;
  Build.add_param b (Grid.scalar Types.T_int "n");
  Build.add_grid b
    (Grid.record
       [ ("pos", Types.T_real8); ("vel", Types.T_real8); ("mass", Types.T_real8) ]
       ~dims:[ Grid.dim (Grid.Sym "n") ]
       "pts");
  Build.add_grid b (Grid.scalar Types.T_real8 "energy");
  Build.start_step b "init";
  Build.add_stmt b
    (S.for_ "i" ~lo:(E.int 1) ~hi:(E.var "n")
       [
         S.Assign
           ( { E.grid = "pts"; field = Some "mass"; indices = [ E.var "i" ] },
             E.(real 1.0 + real 0.25 * var "i") );
         S.Assign
           ( { E.grid = "pts"; field = Some "pos"; indices = [ E.var "i" ] },
             E.(var "i" * real 0.1) );
         S.Assign
           ( { E.grid = "pts"; field = Some "vel"; indices = [ E.var "i" ] },
             E.(real 2.0 / var "i") );
       ]);
  Build.start_step b "kick";
  Build.add_stmt b
    (S.for_ "i" ~lo:(E.int 1) ~hi:(E.var "n")
       [
         S.Assign
           ( { E.grid = "pts"; field = Some "pos"; indices = [ E.var "i" ] },
             E.(fld "pts" "pos" [ var "i" ] + real 0.5 * fld "pts" "vel" [ var "i" ]) );
       ]);
  Build.start_step b "energy";
  Build.add_stmt b (S.assign_var "energy" (E.real 0.0));
  Build.add_stmt b
    (S.for_ "i" ~lo:(E.int 1) ~hi:(E.var "n")
       [
         S.assign_var "energy"
           E.(var "energy"
              + real 0.5 * fld "pts" "mass" [ var "i" ]
                * fld "pts" "vel" [ var "i" ]
                * fld "pts" "vel" [ var "i" ]
              + fld "pts" "pos" [ var "i" ]);
       ]);
  Build.add_stmt b (S.Return (Some (E.var "energy")));
  Build.finish b

let run_program p =
  let src = Glaf_codegen.Fortran_gen.to_source p in
  let st = Glaf_interp.Interp.make_state (Glaf_fortran.Parser.parse_string src) in
  match Glaf_interp.Interp.call st "advance" [ Glaf_fortran.Ast.Int_lit 64 ] with
  | Some v -> Glaf_runtime.Value.to_float v
  | None -> assert false

let () =
  let aos = particles_program () in
  print_endline "== AoS: generated derived TYPE + array of TYPE ==";
  let aos_src = Glaf_codegen.Fortran_gen.to_source aos in
  String.split_on_char '\n' aos_src
  |> List.filteri (fun i _ -> i < 14)
  |> List.iter print_endline;

  let soa = Glaf_optimizer.Layout.to_soa aos in
  print_endline "\n== SoA: one dense array per field ==";
  let soa_src = Glaf_codegen.Fortran_gen.to_source soa in
  String.split_on_char '\n' soa_src
  |> List.filteri (fun i _ -> i < 10)
  |> List.iter print_endline;

  let e_aos = run_program aos and e_soa = run_program soa in
  Printf.printf "\nenergy (AoS) = %.9f\nenergy (SoA) = %.9f\nequal = %b\n" e_aos
    e_soa
    (Float.abs (e_aos -. e_soa) < 1e-9);

  (* interchange + manual collapse on a double nest *)
  print_endline "\n== loop interchange & manual collapse ==";
  let nest =
    S.
      {
        index = "i";
        lo = E.int 1;
        hi = E.int 8;
        step = E.int 1;
        body =
          [
            S.For
              {
                index = "j";
                lo = E.int 1;
                hi = E.int 16;
                step = E.int 1;
                body =
                  [
                    S.assign_idx "a" [ E.var "i"; E.var "j" ]
                      E.(var "i" * int 100 + var "j" + real 0.0);
                  ];
                directive = None;
                schedule = None;
              };
          ];
        directive = None;
                schedule = None;
      }
  in
  (match Glaf_optimizer.Loop_opt.collapse ~fresh_index:"k" nest with
  | Some collapsed ->
    print_endline "collapsed form:";
    print_endline (Glaf_ir.Pp.stmt_to_string (S.For collapsed))
  | None -> print_endline "collapse refused");
  print_endline "\n(see test/test_codegen.ml for the semantics-preservation checks)"
