(** Loop restructuring options of the code-optimization back-end:
    interchange and manual collapsing (§2.1). *)

open Glaf_ir
open Glaf_analysis

(** [interchange env loop] swaps a perfect double nest when legal.
    Legality here is conservative: the nest must be fully parallel
    (then any iteration order is valid) and the inner bounds must not
    depend on the outer index. *)
let interchange env (loop : Stmt.loop) : Stmt.loop option =
  match loop.Stmt.body with
  | [ Stmt.For inner ] ->
    let info = Depend.analyze env loop in
    let bounds_invariant =
      (not (Expr.mentions loop.Stmt.index inner.Stmt.lo))
      && (not (Expr.mentions loop.Stmt.index inner.Stmt.hi))
      && (not (Expr.mentions inner.Stmt.index loop.Stmt.lo))
      && not (Expr.mentions inner.Stmt.index loop.Stmt.hi)
    in
    if info.Loop_info.parallel && bounds_invariant then
      Some
        {
          inner with
          Stmt.body = [ Stmt.For { loop with Stmt.body = inner.Stmt.body } ];
          directive = loop.Stmt.directive;
        }
    else None
  | _ -> None

(** [collapse loop] rewrites a perfect double nest with unit steps and
    constant-or-symbolic bounds into a single loop over the fused
    space, recovering the two indices by division/modulo.  Used when
    the target language has no COLLAPSE clause (e.g. plain C without
    OpenMP, or OpenCL NDRange flattening). *)
let collapse ~fresh_index (loop : Stmt.loop) : Stmt.loop option =
  match loop.Stmt.body with
  | [ Stmt.For inner ]
    when loop.Stmt.step = Expr.Int_lit 1 && inner.Stmt.step = Expr.Int_lit 1
         && (not (Expr.mentions loop.Stmt.index inner.Stmt.lo))
         && not (Expr.mentions loop.Stmt.index inner.Stmt.hi) ->
    let open Expr in
    let isize = inner.Stmt.hi - inner.Stmt.lo + int 1 in
    let osize = loop.Stmt.hi - loop.Stmt.lo + int 1 in
    let k = var fresh_index in
    let set_outer =
      Stmt.assign_var loop.Stmt.index
        (loop.Stmt.lo + ((k - int 1) / isize))
    in
    let set_inner =
      Stmt.assign_var inner.Stmt.index
        (inner.Stmt.lo + ((k - int 1) % isize))
    in
    Some
      {
        Stmt.index = fresh_index;
        lo = int 1;
        hi = osize * isize;
        step = int 1;
        body = set_outer :: set_inner :: inner.Stmt.body;
        directive =
          Option.map
            (fun d ->
              {
                d with
                Stmt.collapse = 1;
                private_vars =
                  List.sort_uniq String.compare
                    (loop.Stmt.index :: inner.Stmt.index
                     :: d.Stmt.private_vars);
              })
            loop.Stmt.directive;
        schedule = loop.Stmt.schedule;
      }
  | _ -> None
