(** Statements of the grid IR.

    A GLAF step body is a list of statements.  Loops carry an optional
    parallelization [directive]; the auto-parallelization back-end
    ({!Glaf_analysis}) fills these in and the optimizer
    ({!Glaf_optimizer}) may prune them again (versions v0..v3 of the
    paper's Table 2). *)

type red_op =
  | Rsum
  | Rprod
  | Rmax
  | Rmin
[@@deriving show { with_path = false }, eq, ord]

(** Loop schedule, mirroring OpenMP's [SCHEDULE] clause (the subset
    the runtime pool implements). *)
type sched =
  | Sched_static  (** contiguous per-thread blocks; the default *)
  | Sched_static_chunk of int  (** [schedule(static, k)] round-robin *)
  | Sched_dynamic of int  (** [schedule(dynamic, k)] work pulling *)
  | Sched_guided of int  (** [schedule(guided, k)] decaying chunks *)
[@@deriving show { with_path = false }, eq, ord]

(** An OpenMP-style parallel-loop directive, as attached by the
    auto-parallelizer.  [collapse = 1] means no COLLAPSE clause;
    [schedule = None] leaves the runtime default (static). *)
type directive = {
  private_vars : string list;
  reductions : (red_op * string) list;
  collapse : int;
  num_threads : int option;
  schedule : sched option;
}
[@@deriving show { with_path = false }, eq, ord]

let plain_directive =
  {
    private_vars = [];
    reductions = [];
    collapse = 1;
    num_threads = None;
    schedule = None;
  }

type t =
  | Assign of Expr.gref * Expr.t
  | If of (Expr.t * t list) list * t list
      (** if/elseif chain with else branch (possibly empty) *)
  | For of loop
  | While of Expr.t * t list
  | Call of string * Expr.t list  (** subroutine call *)
  | Return of Expr.t option
  | Exit_loop
  | Cycle_loop
  | Atomic of Expr.gref * Expr.t
      (** atomic update of a shared grid element *)
  | Critical of t list  (** critical section *)
  | Comment of string

and loop = {
  index : string;
  lo : Expr.t;
  hi : Expr.t;
  step : Expr.t;
  body : t list;
  directive : directive option;
  schedule : sched option;
      (** user schedule hint (the GPI [schedule] clause); folded into
          the directive by the auto-parallelizer if the loop is
          parallelized *)
}
[@@deriving show { with_path = false }, eq, ord]

let assign gref e = Assign (gref, e)

let assign_var name e =
  Assign ({ Expr.grid = name; field = None; indices = [] }, e)

let assign_idx name indices e =
  Assign ({ Expr.grid = name; field = None; indices }, e)

let for_ ?directive ?schedule ?(step = Expr.int 1) index ~lo ~hi body =
  For { index; lo; hi; step; body; directive; schedule }

let if_ cond then_ else_ = If ([ (cond, then_) ], else_)

(** {1 Traversal} *)

(** [fold_stmts f acc stmts] folds [f] over every statement, pre-order,
    descending into nested bodies. *)
let rec fold_stmts f acc stmts =
  List.fold_left
    (fun acc s ->
      let acc = f acc s in
      match s with
      | Assign _ | Call _ | Return _ | Exit_loop | Cycle_loop | Atomic _
      | Comment _ ->
        acc
      | If (branches, else_) ->
        let acc =
          List.fold_left (fun acc (_, body) -> fold_stmts f acc body) acc
            branches
        in
        fold_stmts f acc else_
      | For l -> fold_stmts f acc l.body
      | While (_, body) -> fold_stmts f acc body
      | Critical body -> fold_stmts f acc body)
    acc stmts

(** [map_loops f stmts] rewrites every [For] loop bottom-up with [f]. *)
let rec map_loops f stmts =
  let map_stmt s =
    match s with
    | Assign _ | Call _ | Return _ | Exit_loop | Cycle_loop | Atomic _
    | Comment _ ->
      s
    | If (branches, else_) ->
      If
        ( List.map (fun (c, body) -> (c, map_loops f body)) branches,
          map_loops f else_ )
    | For l -> For (f { l with body = map_loops f l.body })
    | While (c, body) -> While (c, map_loops f body)
    | Critical body -> Critical (map_loops f body)
  in
  List.map map_stmt stmts

(** All expressions evaluated by a statement (not descending into
    nested statements; loop bounds count). *)
let shallow_exprs = function
  | Assign (r, e) | Atomic (r, e) -> Expr.Ref r :: (e :: r.indices)
  | If (branches, _) -> List.map fst branches
  | For l -> [ l.lo; l.hi; l.step ]
  | While (c, _) -> [ c ]
  | Call (_, args) -> args
  | Return (Some e) -> [ e ]
  | Return None | Exit_loop | Cycle_loop | Comment _ -> []
  | Critical _ -> []

(** Grids written (assigned or atomically updated) anywhere in
    [stmts], with the writing references. *)
let writes stmts =
  let collect acc = function
    | Assign (r, _) | Atomic (r, _) -> r :: acc
    | _ -> acc
  in
  List.rev (fold_stmts collect [] stmts)

(** Grid references read anywhere in [stmts]: right-hand sides,
    conditions, index expressions of written refs, loop bounds and call
    arguments. *)
let reads stmts =
  let collect acc s =
    let exprs =
      match s with
      | Assign (r, e) | Atomic (r, e) -> e :: r.indices
      | If (branches, _) -> List.map fst branches
      | For l -> [ l.lo; l.hi; l.step ]
      | While (c, _) -> [ c ]
      | Call (_, args) -> args
      | Return (Some e) -> [ e ]
      | Return None | Exit_loop | Cycle_loop | Comment _ | Critical _ -> []
    in
    List.fold_left (fun acc e -> List.rev_append (Expr.refs e) acc) acc exprs
  in
  List.rev (fold_stmts collect [] stmts)

(** Names of grids written / read in [stmts]. *)
let grids_written stmts =
  List.sort_uniq String.compare (List.map (fun r -> r.Expr.grid) (writes stmts))

let grids_read stmts =
  List.sort_uniq String.compare (List.map (fun r -> r.Expr.grid) (reads stmts))

(** Subroutines called anywhere in [stmts]. *)
let calls stmts =
  let collect acc = function
    | Call (name, _) -> name :: acc
    | _ -> acc
  in
  let from_exprs acc s =
    List.fold_left
      (fun acc e ->
        Expr.fold
          (fun acc e ->
            match e with
            | Expr.Call (name, _) -> name :: acc
            | _ -> acc)
          acc e)
      acc (shallow_exprs s)
  in
  let acc = fold_stmts collect [] stmts in
  let acc = fold_stmts from_exprs acc stmts in
  List.sort_uniq String.compare acc

(** Number of statements, counting nested ones. *)
let count stmts = fold_stmts (fun n _ -> n + 1) 0 stmts

(** Does any statement in [stmts] satisfy [p]? *)
let exists p stmts = fold_stmts (fun acc s -> acc || p s) false stmts

(** Immediate nesting depth of loops in [stmts]. *)
let rec loop_depth stmts =
  List.fold_left
    (fun d s ->
      let d' =
        match s with
        | For l -> 1 + loop_depth l.body
        | If (branches, else_) ->
          let branch_depth =
            List.fold_left (fun m (_, b) -> max m (loop_depth b)) 0 branches
          in
          max branch_depth (loop_depth else_)
        | While (_, body) -> loop_depth body
        | Critical body -> loop_depth body
        | _ -> 0
      in
      max d d')
    0 stmts
