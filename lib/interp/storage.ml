(** Interpreter storage: slots, scopes and control-flow exceptions.

    Split out of {!Interp} so the bytecode compiler ({!Bytecode}) and
    the dispatch loop ({!Vm}) can resolve names against the same
    mutable storage the tree-walker uses without a module cycle.  The
    representation is shared, not copied: a compiled loop body reads
    and writes the very same {!slot}s and {!Glaf_runtime.Farray.t}s
    the tree-walker would, which is what makes bit-identical fallback
    cheap to argue about (DESIGN.md §13). *)

open Glaf_fortran
open Glaf_runtime

exception Fortran_error of string

let error fmt = Format.kasprintf (fun s -> raise (Fortran_error s)) fmt

(** {1 Storage} *)

type entry =
  | Scalar of Value.t
  | Array of Farray.t
  | Unalloc of Farray.elem * int  (** allocatable, not allocated: elem, rank *)
  | Struct of struct_obj
  | Struct_array of struct_obj array * (int * int) array

and slot = {
  mutable entry : entry;
  base : Ast.base_type;
  is_param : bool;
}

and struct_obj = (string, slot) Hashtbl.t

type scope = {
  vars : (string, slot) Hashtbl.t;
  used : scope list;  (** USEd module scopes, in USE order *)
  parent : scope option;  (** enclosing module scope *)
  implicit_none : bool;
}

let rec lookup scope name : slot option =
  match Hashtbl.find_opt scope.vars name with
  | Some s -> Some s
  | None -> (
    let rec from_used = function
      | [] -> None
      | u :: rest -> (
        match Hashtbl.find_opt u.vars name with
        | Some s -> Some s
        | None -> from_used rest)
    in
    match from_used scope.used with
    | Some s -> Some s
    | None -> (
      match scope.parent with
      | Some p -> lookup p name
      | None -> None))

(* Fortran implicit typing: I-N integer, else real. *)
let implicit_base name =
  match name.[0] with
  | 'i' .. 'n' -> Ast.Integer
  | _ -> Ast.Real8

(** {1 Argument bindings}

    The evaluated form of one actual argument, shared between the
    tree-walker's [bind_actual] and the VM's [Icall] marshalling so a
    compiled call site hands the interpreter exactly the bindings the
    tree-walker would have built: whole-variable actuals alias the
    slot, everything else is copy-in with an optional copy-out
    writeback. *)
type arg_binding =
  [ `Alias of slot | `Copy of Value.t * (Value.t -> unit) option ]

(** {1 Control-flow exceptions} *)

exception Loop_exit
exception Loop_cycle
exception Sub_return
exception Stop_program of string option
