(** Bytecode compiler for interpreter loop bodies and whole subprograms.

    The tree-walker pays a [Hashtbl.find], an exception handler and a
    closure allocation or two on every statement of every iteration.
    For the hot loops this repo measures (SARB's 2x60 exchange nests,
    FUN3D's edge loops) that per-iteration overhead dwarfs the actual
    arithmetic, so eligible loop bodies are lowered once to a flat
    register-style instruction array and executed by {!Vm}'s dispatch
    loop instead.  Since PR 9 the lowering also crosses call
    boundaries: user subprograms compile once into cached programs
    ({!compile_sub}), call sites marshal arguments with the exact
    by-reference semantics of the tree-walker's [bind_actual]
    ([Icall]), small leaf subprograms are inlined into the caller's
    instruction stream, and all-real / all-int programs additionally
    carry an unboxed typed-register variant (see {!specialize}).

    Design rules (DESIGN.md sections 13 and 16):
    - {e Compile or fall back, never approximate.}  Compilation raises
      {!Bail} (with the offending construct's name, for the stats
      counters) for anything whose tree-walk semantics we are not
      prepared to replicate exactly; the caller then runs the
      tree-walker, so behaviour is unchanged by construction.  The
      fallback unit is one construct — a loop body, one call site, one
      callee — never the whole program.
    - {e Same operations, same order.}  Generated code calls the exact
      [Value]/[Farray]/[Intrinsics] functions the tree-walker calls,
      in the same evaluation order, so results — including error
      messages and Fortran coercion quirks — are bit-identical.
    - {e Names resolve late.}  Compilation classifies each name
      against a representative scope but records only (name, field
      path, kind); {!Vm.bind} re-resolves against the executing scope
      (each pooled worker's private clone) and refuses mismatches,
      falling back to the tree-walker.  Anything compilation baked in
      from the representative scope — folded PARAMETER values, names
      it resolved as intrinsics or functions because they were not
      variables — is recorded in [checks]/[negatives] and re-verified
      at bind time, so a structurally identical body in a differently
      shaped scope can never run the wrong code.
    - {e Keyed by structure, not identity.}  Programs are cached by an
      MD5 digest of the marshalled AST (namespaced by the digest of
      the whole compilation unit, because call compilation consults
      the unit's subprogram table), so re-parsing an identical inline
      script — the listener does this on every request — hits the
      cache instead of recompiling. *)

open Glaf_fortran
open Glaf_runtime

(** Scalar binding descriptor: [spath] is the derived-type component
    chain ([fo%fuir] gives [sname = "fo"], [spath = ["fuir"]]).
    [sbase] is the declared base type seen at compile time; only the
    typed specializer relies on it (and the typed bind re-checks). *)
type scalar_ref = { sname : string; spath : string list; sbase : Ast.base_type }

(** Array binding descriptor; [asubs] is the subscript count at the
    use sites (0 = whole-array reference, no rank requirement).
    [aelem] is the element kind seen at compile time; used by the
    typed specializer and re-validated by the typed bind. *)
type array_ref = {
  aname : string;
  apath : string list;
  asubs : int;
  aelem : Farray.elem;
}

(** How one actual argument of a compiled call site is passed.  The
    three shapes mirror the tree-walker's [bind_actual] exactly:
    whole-variable designators alias the slot, array elements are
    copy-in/copy-out against indices evaluated {e before} the value
    (the tree-walker resolves the lvalue first), everything else is a
    plain copied value. *)
type arg_spec =
  | Arg_alias of int  (** raw-slot id: pass the caller's slot itself *)
  | Arg_value of int  (** register holding the evaluated value *)
  | Arg_elem of { ae_arr : int; ae_idx : int array; ae_val : int }
      (** array id, index registers (already [to_int]ed, the lvalue
          pass), value register (the bounds-checked re-evaluation) *)

(** A compiled call site.  The callee AST rides along so the VM's
    [callenv] can dispatch it without any name lookup: the same
    (subprogram, module) pair the compiler resolved. *)
type call_site = {
  cs_sub : Ast.subprogram;
  cs_mod : string option;  (** enclosing module, for the callee scope *)
  cs_name : string;  (** call-site spelling, for error messages *)
  cs_args : arg_spec array;
  cs_dst : int;  (** function-result register; [-1] = statement CALL *)
}

(** The VM's one hook back into the interpreter: run a callee with
    pre-marshalled bindings.  [ce_call sub mod_name name bindings]
    must behave exactly like the tail of the tree-walker's
    [call_subprogram] (scope setup, body, copy-out, result). *)
type callenv = {
  ce_call :
    Ast.subprogram ->
    string option ->
    string ->
    Storage.arg_binding list ->
    Value.t option;
}

(** {1 Typed register files}

    When every register of a program is provably a float, an int or a
    bool, {!specialize} re-emits it over split unboxed register banks
    (a [float array] and an [int array]; bools live in the int bank as
    0/1).  Every typed opcode performs the same primitive float/int
    operation, in the same order, as its boxed counterpart — unboxing
    removes allocation and dispatch cost, never changes an IEEE-754
    bit (DESIGN.md section 16 has the instruction-by-instruction
    argument). *)

type cmp = Clt | Cle | Cgt | Cge | Ceq | Cne

type tinstr =
  | TconstF of int * float
  | TconstI of int * int  (** ints; bools are 0/1 in the int bank *)
  | TmovF of int * int
  | TmovI of int * int
  | TldsF of int * int  (** dst <- slot (must hold Real), scalar id *)
  | TldsI of int * int
  | TldsB of int * int  (** dst (int bank, 0/1) <- Bool slot *)
  | TstsF of int * int  (** slot <- Real dst: declared-real slot *)
  | TstsF_ofI of int * int  (** declared-real slot <- float_of_int reg *)
  | TstsI of int * int
  | TstsI_ofF of int * int  (** declared-int slot <- int_of_float reg *)
  | TstsB of int * int
  | TstsI_raw of int * int  (** raw DO-variable store, no coercion *)
  | Ti2f of int * int  (** float dst <- float_of_int int src *)
  | Tf2i of int * int  (** int dst <- int_of_float float src *)
  | Tld1F of int * int * int  (** dst, array id, index reg (rank 1) *)
  | Tld2F of int * int * int * int
  | Tld1I of int * int * int
  | Tld2I of int * int * int * int
  | Tst1F of int * int * int  (** array id, index reg, src *)
  | Tst2F of int * int * int * int
  | Tst1I of int * int * int
  | Tst2I of int * int * int * int
  | TaddF of int * int * int
  | TsubF of int * int * int
  | TmulF of int * int * int
  | TdivF of int * int * int
  | TpowF of int * int * int
  | TaddI of int * int * int
  | TsubI of int * int * int
  | TmulI of int * int * int
  | TdivI of int * int * int  (** checks the divisor like [Value.div] *)
  | TmodI of int * int * int  (** MOD intrinsic, int args *)
  | TcmpF of cmp * int * int * int  (** int dst <- 0/1, [Float.compare] *)
  | TcmpI of cmp * int * int * int
  | TnegF of int * int
  | TnegI of int * int
  | Tnot of int * int  (** int dst <- 1 - (src <> 0) *)
  | Tbool of int * int  (** int dst <- src <> 0 (normalize to 0/1) *)
  | Tcheck_step of int  (** error if int reg is 0 *)
  | Tin1F of string * (float -> float) * int * int  (** intrinsic f(x) *)
  | Tin2F of string * (float -> float -> float) * int * int * int
  | TfniF of string * (float -> int) * int * int  (** nint/floor/... *)
  | TmaxF of int * int * int  (** IEEE [>] pick, like variadic_minmax *)
  | TminF of int * int * int
  | TmaxI of int * int * int  (** compared via float_of_int, like boxed *)
  | TminI of int * int * int
  | TabsF of int * int
  | TabsI of int * int
  | Tjmp of int
  | Tjf of int * int  (** jump when int reg = 0 *)
  | Tjt of int * int
  | Tloop_test of { t_ireg : int; t_hireg : int; t_stepreg : int; t_target : int }
  | Tinc of int * int
  | Tloop_fini of { t_sid : int; t_loreg : int; t_hireg : int; t_stepreg : int }
  | Tpoll
  | Tcrit_enter
  | Tcrit_exit
  | Treturn
  | Texit

(** A typed variant of a program: same scalars/arrays tables (ids are
    shared), registers split across float and int banks.  [t_sty]
    gives the value kind every scalar slot must hold for the typed
    code to be exact; the typed bind re-checks it and falls back to
    the boxed frame on mismatch. *)
type ty = TF | TI | TB

type tprogram = {
  tcode : tinstr array;
  t_nf : int;  (** float-bank size *)
  t_ni : int;  (** int-bank size *)
  t_sty : ty array;  (** per-scalar expected value kind *)
}

type program = {
  code : instr array;
  nregs : int;
  scalars : scalar_ref array;
  arrays : array_ref array;
  raws : string array;
      (** whole-slot aliases for [Icall] marshalling: resolved by name
          at bind time, any entry kind *)
  checks : (scalar_ref * Value.t) array;
      (** PARAMETER scalars folded into the code as constants; bind
          verifies the executing scope still holds exactly this value *)
  negatives : string array;
      (** names compilation resolved as not-in-scope (intrinsics, user
          functions); bind verifies they are still not variables *)
  typed : tprogram option;
}

(** Register-style instructions.  [int] operands are register indices
    except where noted; jump targets are instruction indices. *)
and instr =
  | Iconst of int * Value.t  (** dst <- literal / folded constant *)
  | Icopy of int * int  (** dst <- src *)
  | Iload of int * int  (** dst <- scalar slot (scalar id) *)
  | Istore of int * int  (** scalar id <- coerce slot.base src *)
  | Istore_raw of int * int
      (** scalar id <- src, no coercion (DO-variable stores, matching
          the tree-walker's raw [Scalar (Int i)] writes) *)
  | Icoerce of Ast.base_type * int * int
      (** dst <- [Value.coerce base] src: assignment to an inlined
          callee local, replicating the tree-walker's slot store *)
  | Iload_arr of int * int  (** dst <- whole-array value (array id) *)
  | Istore_whole of int * int  (** whole-array assignment: array id, src *)
  | Iload1 of int * int * int  (** dst, array id, index reg (rank 1) *)
  | Iload2 of int * int * int * int  (** dst, array id, i reg, j reg *)
  | IloadN of int * int * int array  (** dst, array id, index regs *)
  | Istore1 of int * int * int  (** array id, index reg, src *)
  | Istore2 of int * int * int * int  (** array id, i reg, j reg, src *)
  | IstoreN of int * int array * int  (** array id, index regs, src *)
  | Ibinop of Ast.binop * int * int * int  (** op, dst, a, b *)
  | Ineg of int * int
  | Inot of int * int
  | Ibool of int * int  (** dst <- Bool (to_bool src) *)
  | Ito_int of int * int  (** dst <- Int (to_int src) *)
  | Icheck_step of int  (** error if reg is integer 0 (DO step) *)
  | Iintr of string * (Value.t list -> Value.t) * int * int array
      (** pre-resolved intrinsic: lowercase name (for the typed
          specializer), fn, dst, arg regs *)
  | Icall of call_site  (** marshal arguments, run the callee *)
  | Idummy_adjust of int
      (** scalar id; the [setup_scope] dummy-redeclaration quirk for a
          dummy declared REAL: an aliased slot holding an Int is
          rewritten in place to [Real (to_float v)] *)
  | Ijmp of int
  | Ijf of int * int  (** jump when to_bool reg is false *)
  | Ijt of int * int  (** jump when to_bool reg is true *)
  | Iloop_test of { ireg : int; hireg : int; stepreg : int; target : int }
      (** nested-DO header: jump to [target] when the (Int) counter
          has passed the bound for the step's sign *)
  | Iinc of int * int  (** counter reg <- counter + step (Int regs) *)
  | Iloop_fini of { sid : int; loreg : int; hireg : int; stepreg : int }
      (** normal nested-DO completion: store the loop-completed value
          [lo + step * max 0 ((hi-lo+step)/step)]; an EXIT jumps past
          this, so the DO variable keeps its value at the EXIT *)
  | Ipoll  (** cancellation poll (every 256 ticks) *)
  | Iprint of int array
  | Icrit_enter  (** lock the global CRITICAL/ATOMIC mutex *)
  | Icrit_exit
  | Ireturn  (** RETURN: raise Sub_return *)
  | Istop of string option
  | Iexit  (** top-level EXIT: end body, signal loop exit *)

(** Compilation environment beyond the representative scope: what the
    unit as a whole provides.  [e_unit] namespaces the program cache
    and the stats sites; [e_subs] is the interpreter's subprogram
    table (shared, read-only here); [e_calls] gates call compilation
    so benchmarks can reproduce the PR 6 "mixed" path; and
    [e_module_scope] peeks at already-initialized module scopes
    (never forcing initialization) for the inliner's shadowing check. *)
type env = {
  e_unit : string;
  e_subs : (string, Ast.subprogram * string option) Hashtbl.t;
  e_calls : bool;
  e_module_scope : string -> Storage.scope option;
}

(* --- compilation context ------------------------------------------------- *)

(* Construct not covered: caller falls back to tree-walk.  The string
   is the construct's name, surfaced through the bail counters. *)
exception Bail of string

let bail reason = raise (Bail reason)

type vec = { mutable items : instr array; mutable len : int }

let vec_create () = { items = Array.make 64 (Ijmp 0); len = 0 }

let vec_push v x =
  if v.len = Array.length v.items then begin
    let bigger = Array.make (2 * v.len) (Ijmp 0) in
    Array.blit v.items 0 bigger 0 v.len;
    v.items <- bigger
  end;
  v.items.(v.len) <- x;
  v.len <- v.len + 1

(* Enclosing loop construct, for EXIT/CYCLE lowering: where to jump
   and how many CRITICAL locks to release on the way out. *)
type loop_ctx = {
  mutable exit_patches : int list;
  mutable cont_patches : int list;  (* empty when cont_target is known *)
  cont_target : int option;
  crit_at_entry : int;
}

(* How a name inside an inlined callee resolves: a caller scalar slot
   (aliased dummy) or a plain register (callee local / result). *)
type ibind = Ib_slot of int | Ib_reg of int * Ast.base_type

type iframe = {
  imap : (string, ibind) Hashtbl.t;
  mutable iret : int list;  (* RETURN -> jump-to-inline-end patch sites *)
}

type ctx = {
  env : env;
  scope : Storage.scope;
  in_sub : bool;  (* compiling a whole subprogram body *)
  code : vec;
  mutable nregs : int;
  scalar_ids : (string * string list, int) Hashtbl.t;
  mutable scalar_refs : scalar_ref list;  (* reversed *)
  array_ids : (string * string list * int, int) Hashtbl.t;
  mutable array_refs : array_ref list;  (* reversed *)
  raw_ids : (string, int) Hashtbl.t;
  mutable raw_refs : string list;  (* reversed *)
  check_ids : (string * string list, unit) Hashtbl.t;
  mutable checks : (scalar_ref * Value.t) list;
  negs : (string, unit) Hashtbl.t;
  mutable loops : loop_ctx list;  (* innermost first *)
  mutable crit : int;  (* compile-time CRITICAL nesting depth *)
  mutable end_patches : int list;  (* top-level CYCLE -> end of body *)
  mutable inline : iframe option;  (* set while expanding a leaf callee *)
}

let reg ctx =
  let r = ctx.nregs in
  ctx.nregs <- r + 1;
  r

let emit ctx i = vec_push ctx.code i
let here ctx = ctx.code.len

(* Emit a jump with a placeholder target; returns the patch site. *)
let emit_patchable ctx i =
  let at = here ctx in
  emit ctx i;
  at

let patch ctx at target =
  ctx.code.items.(at) <-
    (match ctx.code.items.(at) with
    | Ijmp _ -> Ijmp target
    | Ijf (r, _) -> Ijf (r, target)
    | Ijt (r, _) -> Ijt (r, target)
    | Iloop_test lt -> Iloop_test { lt with target }
    | _ -> assert false)

let scalar_id ctx (slot : Storage.slot) name path =
  let key = (name, path) in
  match Hashtbl.find_opt ctx.scalar_ids key with
  | Some id -> id
  | None ->
    let id = Hashtbl.length ctx.scalar_ids in
    Hashtbl.replace ctx.scalar_ids key id;
    ctx.scalar_refs <-
      { sname = name; spath = path; sbase = slot.Storage.base }
      :: ctx.scalar_refs;
    id

let array_id ctx elem name path nsubs =
  let key = (name, path, nsubs) in
  match Hashtbl.find_opt ctx.array_ids key with
  | Some id -> id
  | None ->
    let id = Hashtbl.length ctx.array_ids in
    Hashtbl.replace ctx.array_ids key id;
    ctx.array_refs <-
      { aname = name; apath = path; asubs = nsubs; aelem = elem }
      :: ctx.array_refs;
    id

let raw_id ctx name =
  match Hashtbl.find_opt ctx.raw_ids name with
  | Some id -> id
  | None ->
    let id = Hashtbl.length ctx.raw_ids in
    Hashtbl.replace ctx.raw_ids name id;
    ctx.raw_refs <- name :: ctx.raw_refs;
    id

let note_check ctx (slot : Storage.slot) name path v =
  let key = (name, path) in
  if not (Hashtbl.mem ctx.check_ids key) then begin
    Hashtbl.replace ctx.check_ids key ();
    ctx.checks <-
      ({ sname = name; spath = path; sbase = slot.Storage.base }, v)
      :: ctx.checks
  end

let note_negative ctx name =
  if not (Hashtbl.mem ctx.negs name) then Hashtbl.replace ctx.negs name ()

(* --- digests and global tables ------------------------------------------- *)

(* One global mutex guards the digest memos, the program cache and the
   stats table.  Compiles run outside it (double-checked insert); only
   Hashtbl lookups and small Marshal digests run under it. *)
let global_mutex = Mutex.create ()

let locked f =
  Mutex.lock global_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock global_mutex) f

let digest_of x =
  Digest.to_hex (Digest.string (Marshal.to_string x [ Marshal.No_sharing ]))

module Phys_stmts = Hashtbl.Make (struct
  type t = Ast.stmt list

  let equal = ( == )
  let hash = Hashtbl.hash
end)

module Phys_sub = Hashtbl.Make (struct
  type t = Ast.subprogram

  let equal = ( == )
  let hash = Hashtbl.hash
end)

module Phys_cu = Hashtbl.Make (struct
  type t = Ast.compilation_unit

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(* The parser builds each AST once, so memoizing digests by physical
   identity makes the digest cost once-per-AST, not once-per-call. *)
let body_digest_tbl : string Phys_stmts.t = Phys_stmts.create 64
let sub_digest_tbl : string Phys_sub.t = Phys_sub.create 64
let unit_key_tbl : string Phys_cu.t = Phys_cu.create 16

let body_digest (body : Ast.stmt list) =
  match locked (fun () -> Phys_stmts.find_opt body_digest_tbl body) with
  | Some d -> d
  | None ->
    let d = digest_of body in
    locked (fun () -> Phys_stmts.replace body_digest_tbl body d);
    d

let sub_digest (sp : Ast.subprogram) =
  match locked (fun () -> Phys_sub.find_opt sub_digest_tbl sp) with
  | Some d -> d
  | None ->
    let d = digest_of sp in
    locked (fun () -> Phys_sub.replace sub_digest_tbl sp d);
    d

(** Stable cache/stats namespace for a compilation unit: the digest of
    its whole AST, so structurally identical re-parses share it. *)
let unit_key (cu : Ast.compilation_unit) =
  match locked (fun () -> Phys_cu.find_opt unit_key_tbl cu) with
  | Some k -> k
  | None ->
    let k = "u" ^ digest_of cu in
    locked (fun () -> Phys_cu.replace unit_key_tbl cu k);
    k

(** {1 Bail / coverage statistics}

    One site per compiled construct (loop body or subprogram body),
    keyed by (unit, site id).  [sk_runs] counts bytecode executions,
    [sk_bails] counts tree-walk fallbacks (compile bails and bind
    refusals alike); [sk_reason] names the first construct that made
    compilation bail, when it did. *)
module Stats = struct
  type site = {
    sk_unit : string;
    sk_id : string;
    sk_label : string;
    mutable sk_reason : string option;
    sk_runs : int Atomic.t;
    sk_bails : int Atomic.t;
  }

  (* A read-only copy of a site, for reporting. *)
  type row = {
    r_unit : string;
    r_id : string;
    r_label : string;
    r_reason : string option;
    r_runs : int;
    r_bails : int;
  }

  let tbl : (string * string, site) Hashtbl.t = Hashtbl.create 64

  let get ~unit_key ~id ~label : site =
    locked (fun () ->
        match Hashtbl.find_opt tbl (unit_key, id) with
        | Some s -> s
        | None ->
          let s =
            {
              sk_unit = unit_key;
              sk_id = id;
              sk_label = label;
              sk_reason = None;
              sk_runs = Atomic.make 0;
              sk_bails = Atomic.make 0;
            }
          in
          Hashtbl.replace tbl (unit_key, id) s;
          s)

  let run s = Atomic.incr s.sk_runs
  let bail s = Atomic.incr s.sk_bails

  let set_reason s reason =
    locked (fun () ->
        match s.sk_reason with
        | Some _ -> ()
        | None -> s.sk_reason <- Some reason)

  let snapshot () : row list =
    let rows =
      locked (fun () ->
          Hashtbl.fold
            (fun _ s acc ->
              {
                r_unit = s.sk_unit;
                r_id = s.sk_id;
                r_label = s.sk_label;
                r_reason = s.sk_reason;
                r_runs = Atomic.get s.sk_runs;
                r_bails = Atomic.get s.sk_bails;
              }
              :: acc)
            tbl [])
    in
    List.sort
      (fun a b ->
        match compare a.r_unit b.r_unit with
        | 0 -> compare a.r_id b.r_id
        | c -> c)
      rows

  let reset () = locked (fun () -> Hashtbl.reset tbl)

  let purge_unit u =
    locked (fun () ->
        let doomed =
          Hashtbl.fold
            (fun k s acc -> if s.sk_unit = u then k :: acc else acc)
            tbl []
        in
        List.iter (Hashtbl.remove tbl) doomed)
end

(* --- constant folding ---------------------------------------------------- *)

(* Fold literal-only subtrees with the same Value operations the
   tree-walker uses.  Anything that would raise at runtime is left
   unfolded so the error fires in its original place and order. *)
let rec static_eval (e : Ast.expr) : Value.t option =
  match e with
  | Ast.Int_lit n -> Some (Value.Int n)
  | Ast.Real_lit (x, _) -> Some (Value.Real x)
  | Ast.Logical_lit b -> Some (Value.Bool b)
  | Ast.Str_lit s -> Some (Value.Str s)
  | Ast.Unop (op, a) -> (
    match static_eval a with
    | None -> None
    | Some va -> (
      try
        Some
          (match op with
          | Ast.Neg -> Value.neg va
          | Ast.Pos -> va
          | Ast.Not -> Value.Bool (not (Value.to_bool va)))
      with Value.Runtime_error _ -> None))
  | Ast.Binop (op, a, b) -> (
    match (static_eval a, static_eval b) with
    | Some va, Some vb -> (
      try
        Some
          (match op with
          | Ast.Add -> Value.add va vb
          | Ast.Sub -> Value.sub va vb
          | Ast.Mul -> Value.mul va vb
          | Ast.Div -> Value.div va vb
          | Ast.Pow -> Value.pow va vb
          | Ast.Eq -> Value.Bool (Value.eq va vb)
          | Ast.Ne -> Value.Bool (not (Value.eq va vb))
          | Ast.Lt -> Value.Bool (Value.lt va vb)
          | Ast.Le -> Value.Bool (Value.le va vb)
          | Ast.Gt -> Value.Bool (Value.lt vb va)
          | Ast.Ge -> Value.Bool (Value.le vb va)
          | Ast.And -> Value.Bool (Value.to_bool va && Value.to_bool vb)
          | Ast.Or -> Value.Bool (Value.to_bool va || Value.to_bool vb)
          | Ast.Eqv -> Value.Bool (Value.to_bool va = Value.to_bool vb)
          | Ast.Neqv -> Value.Bool (Value.to_bool va <> Value.to_bool vb)
          | Ast.Concat -> (
            match (va, vb) with
            | Value.Str x, Value.Str y -> Value.Str (x ^ y)
            | _ -> raise (Value.Runtime_error "unfoldable")))
      with Value.Runtime_error _ -> None)
    | _ -> None)
  | Ast.Desig _ | Ast.Implied_do _ | Ast.Section _ -> None

(* --- callee analysis ----------------------------------------------------- *)

(* The top-level expressions a statement evaluates itself (bodies of
   nested constructs are visited separately by fold_stmts). *)
let stmt_exprs (s : Ast.stmt) : Ast.expr list =
  match s with
  | Ast.Assign (d, e) -> [ Ast.Desig d; e ]
  | Ast.If_arith (c, _) -> [ c ]
  | Ast.If_block (branches, _) -> List.map fst branches
  | Ast.Do l -> (
    match l.Ast.do_step with
    | Some st -> [ l.Ast.do_lo; l.Ast.do_hi; st ]
    | None -> [ l.Ast.do_lo; l.Ast.do_hi ])
  | Ast.Do_while (c, _) -> [ c ]
  | Ast.Call (_, args) -> args
  | Ast.Print args -> args
  | Ast.Allocate allocs -> List.concat_map (fun (d, es) -> Ast.Desig d :: es) allocs
  | Ast.Deallocate ds -> List.map (fun d -> Ast.Desig d) ds
  | Ast.Stop _ | Ast.Return | Ast.Exit | Ast.Cycle | Ast.Continue
  | Ast.Comment _ | Ast.Omp_barrier ->
    []
  | Ast.Omp_atomic _ | Ast.Omp_critical _ -> []

(* Names [sp] binds as variables: dummies, declared entities, COMMON
   members.  A designator head outside this set is an intrinsic or a
   function reference. *)
let local_var_names (sp : Ast.subprogram) : (string, unit) Hashtbl.t =
  let vars = Hashtbl.create 16 in
  (* the function's own name is its result variable, not a callee:
     without this every RETURN-carrying function looks self-recursive *)
  Hashtbl.replace vars sp.Ast.sub_name ();
  Hashtbl.replace vars (String.lowercase_ascii sp.Ast.sub_name) ();
  List.iter (fun n -> Hashtbl.replace vars n ()) sp.Ast.sub_args;
  List.iter
    (function
      | Ast.Var_decl { entities; _ } ->
        List.iter (fun e -> Hashtbl.replace vars e.Ast.ent_name ()) entities
      | Ast.Common (_, names) ->
        List.iter (fun n -> Hashtbl.replace vars n ()) names
      | _ -> ())
    sp.Ast.sub_decls;
  vars

(* The dummies [sp] may write: assignment/DO/ALLOCATE heads, whole-var
   actuals of nested calls, whole-var arguments of function-looking
   designator heads, and dummies the setup_scope redeclaration quirk
   can rewrite (declared REAL over an aliased Int).  Conservative by
   construction: used to refuse compiled calls that would mutate a
   caller PARAMETER slot our constant folding relies on. *)
let written_memo : (string, unit) Hashtbl.t Phys_sub.t = Phys_sub.create 32

let written_dummies (sp : Ast.subprogram) : (string, unit) Hashtbl.t =
  match locked (fun () -> Phys_sub.find_opt written_memo sp) with
  | Some w -> w
  | None ->
    let dummies = sp.Ast.sub_args in
    let w = Hashtbl.create 8 in
    let note n = if List.mem n dummies then Hashtbl.replace w n () in
    let vars = local_var_names sp in
    List.iter
      (function
        | Ast.Var_decl { base; entities; _ }
          when base = Ast.Real || base = Ast.Real8 ->
          List.iter (fun e -> note e.Ast.ent_name) entities
        | _ -> ())
      sp.Ast.sub_decls;
    let check_expr e =
      Ast.fold_expr
        (fun () e ->
          match e with
          | Ast.Desig ((h, hargs) :: _)
            when (not (Hashtbl.mem vars h))
                 && not
                      (Hashtbl.mem Intrinsics.tbl (String.lowercase_ascii h))
            ->
            (* function-looking head: its whole-var arguments bind by
               reference in the callee and may be written there *)
            List.iter
              (function Ast.Desig [ (n, []) ] -> note n | _ -> ())
              hargs
          | _ -> ())
        () e
    in
    Ast.fold_stmts
      (fun () s ->
        (match s with
        | Ast.Assign ((h, _) :: _, _) -> note h
        | Ast.Do l -> note l.Ast.do_var
        | Ast.Allocate allocs ->
          List.iter
            (fun (d, _) -> match d with (h, _) :: _ -> note h | [] -> ())
            allocs
        | Ast.Deallocate ds ->
          List.iter (function (h, _) :: _ -> note h | [] -> ()) ds
        | Ast.Call (_, args) ->
          List.iter
            (function Ast.Desig [ (n, []) ] -> note n | _ -> ())
            args
        | _ -> ());
        List.iter check_expr (stmt_exprs s))
      () sp.Ast.sub_body;
    locked (fun () -> Phys_sub.replace written_memo sp w);
    w

(* Transitively: can running [sp] allocate or deallocate?  A bound
   frame caches Farray buffers and bounds, so a compiled call site
   must never reach ALLOCATE/DEALLOCATE — the tree-walker re-resolves
   storage on every access and tolerates it, the VM does not.
   Recursion is treated as may-allocate (conservative). *)
let alloc_memo : bool Phys_sub.t = Phys_sub.create 32

let rec may_alloc env (seen : Ast.subprogram list) (sp : Ast.subprogram) : bool
    =
  if List.memq sp seen then true
  else
    match locked (fun () -> Phys_sub.find_opt alloc_memo sp) with
    | Some b -> b
    | None ->
      let seen = sp :: seen in
      let found = ref false in
      let vars = local_var_names sp in
      let check_callee n =
        match Hashtbl.find_opt env.e_subs (String.lowercase_ascii n) with
        | Some (callee, _) -> if may_alloc env seen callee then found := true
        | None -> ()
      in
      let check_expr e =
        Ast.fold_expr
          (fun () e ->
            match e with
            | Ast.Desig ((h, _) :: _) when not (Hashtbl.mem vars h) ->
              check_callee h
            | _ -> ())
          () e
      in
      Ast.fold_stmts
        (fun () s ->
          (match s with
          | Ast.Allocate _ | Ast.Deallocate _ -> found := true
          | Ast.Call (n, _) -> check_callee n
          | _ -> ());
          List.iter check_expr (stmt_exprs s))
        () sp.Ast.sub_body;
      locked (fun () -> Phys_sub.replace alloc_memo sp !found);
      !found

(* --- leaf inlining plan -------------------------------------------------- *)

(* Body size cap for inlining, in statements (nested included). *)
let inline_max_stmts = 8

(* Shape of an inlinable leaf: straight-line numeric/logical code
   (Assign / IF / RETURN only), scalar dummies and locals, every
   designator a single scalar part or an intrinsic call.  [lf_heads]
   are the intrinsic heads, which the per-site check verifies are not
   shadowed by the callee's module scope. *)
type leaf_shape = { lf_heads : string list }

let leaf_memo : leaf_shape option Phys_sub.t = Phys_sub.create 32

let leaf_shape (sp : Ast.subprogram) : leaf_shape option =
  match locked (fun () -> Phys_sub.find_opt leaf_memo sp) with
  | Some r -> r
  | None ->
    let ok = ref true in
    let nstmts = Ast.fold_stmts (fun n _ -> n + 1) 0 sp.Ast.sub_body in
    if nstmts > inline_max_stmts then ok := false;
    if List.mem sp.Ast.sub_name sp.Ast.sub_args then ok := false;
    let locals = Hashtbl.create 8 in
    let declared = Hashtbl.create 8 in
    List.iter
      (function
        | Ast.Var_decl { base; attrs = []; entities }
          when base = Ast.Integer || base = Ast.Real || base = Ast.Real8
               || base = Ast.Logical ->
          List.iter
            (fun (e : Ast.entity) ->
              if
                e.Ast.ent_dims <> None
                || e.Ast.ent_deferred <> None
                || e.Ast.ent_init <> None
                || Hashtbl.mem declared e.Ast.ent_name
              then ok := false;
              Hashtbl.replace declared e.Ast.ent_name ();
              if not (List.mem e.Ast.ent_name sp.Ast.sub_args) then
                Hashtbl.replace locals e.Ast.ent_name ())
            entities
        | Ast.Implicit_none | Ast.Decl_comment _ -> ()
        | _ -> ok := false)
      sp.Ast.sub_decls;
    let known h =
      List.mem h sp.Ast.sub_args
      || Hashtbl.mem locals h
      || (sp.Ast.sub_kind <> `Subroutine && h = sp.Ast.sub_name)
    in
    let intr_heads = ref [] in
    let check_expr e =
      Ast.fold_expr
        (fun () e ->
          match e with
          | Ast.Implied_do _ | Ast.Section _ -> ok := false
          | Ast.Desig [ (h, args) ] ->
            if known h then begin
              if args <> [] then ok := false
            end
            else if Hashtbl.mem Intrinsics.tbl (String.lowercase_ascii h)
            then intr_heads := h :: !intr_heads
            else ok := false
          | Ast.Desig _ -> ok := false
          | _ -> ())
        () e
    in
    Ast.fold_stmts
      (fun () s ->
        match s with
        | Ast.Assign (d, e) ->
          (match d with
          | [ (h, []) ] when known h -> ()
          | _ -> ok := false);
          check_expr e
        | Ast.If_arith (c, _) -> check_expr c
        | Ast.If_block (branches, _) ->
          List.iter (fun (c, _) -> check_expr c) branches
        | Ast.Return | Ast.Continue | Ast.Comment _ -> ()
        | _ -> ok := false)
      () sp.Ast.sub_body;
    let r = if !ok then Some { lf_heads = !intr_heads } else None in
    locked (fun () -> Phys_sub.replace leaf_memo sp r);
    r

(* Inside the callee, an intrinsic head resolves only after the scope
   chain misses; a module variable of the same name would win.  The
   expansion emits Iintr directly, so refuse to inline when the
   callee's module scope (if initialized) shadows any head — and when
   the module is not initialized yet, refuse too (cannot verify). *)
let inline_shadowed env mod_name (shape : leaf_shape) : bool =
  match mod_name with
  | None -> false
  | Some m -> (
    match env.e_module_scope m with
    | None -> shape.lf_heads <> []
    | Some msc ->
      List.exists (fun h -> Storage.lookup msc h <> None) shape.lf_heads)

(* --- expressions --------------------------------------------------------- *)

let has_section args =
  List.exists (function Ast.Section _ -> true | _ -> false) args

let rec compile_expr ctx (e : Ast.expr) : int =
  match static_eval e with
  | Some v ->
    let r = reg ctx in
    emit ctx (Iconst (r, v));
    r
  | None -> (
    match e with
    | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Str_lit _ ->
      assert false (* handled by static_eval *)
    | Ast.Unop (Ast.Pos, a) -> compile_expr ctx a
    | Ast.Unop (Ast.Neg, a) ->
      let ra = compile_expr ctx a in
      let r = reg ctx in
      emit ctx (Ineg (r, ra));
      r
    | Ast.Unop (Ast.Not, a) ->
      let ra = compile_expr ctx a in
      let r = reg ctx in
      emit ctx (Inot (r, ra));
      r
    | Ast.Binop (Ast.And, a, b) ->
      (* short-circuit, like the tree-walker's (&&) *)
      let ra = compile_expr ctx a in
      let d = reg ctx in
      let jfalse = emit_patchable ctx (Ijf (ra, 0)) in
      let rb = compile_expr ctx b in
      emit ctx (Ibool (d, rb));
      let jend = emit_patchable ctx (Ijmp 0) in
      patch ctx jfalse (here ctx);
      emit ctx (Iconst (d, Value.Bool false));
      patch ctx jend (here ctx);
      d
    | Ast.Binop (Ast.Or, a, b) ->
      let ra = compile_expr ctx a in
      let d = reg ctx in
      let jtrue = emit_patchable ctx (Ijt (ra, 0)) in
      let rb = compile_expr ctx b in
      emit ctx (Ibool (d, rb));
      let jend = emit_patchable ctx (Ijmp 0) in
      patch ctx jtrue (here ctx);
      emit ctx (Iconst (d, Value.Bool true));
      patch ctx jend (here ctx);
      d
    | Ast.Binop (op, a, b) ->
      let ra = compile_expr ctx a in
      let rb = compile_expr ctx b in
      let d = reg ctx in
      emit ctx (Ibinop (op, d, ra, rb));
      d
    | Ast.Desig parts -> compile_desig_load ctx parts
    | Ast.Implied_do _ -> bail "implied-do"
    | Ast.Section _ -> bail "section")

and compile_subscripts ctx args =
  if has_section args then bail "section";
  List.map (compile_expr ctx) args

and compile_elem_load ctx elem name path args =
  let idx = compile_subscripts ctx args in
  let aid = array_id ctx elem name path (List.length idx) in
  let d = reg ctx in
  (match idx with
  | [ i ] -> emit ctx (Iload1 (d, aid, i))
  | [ i; j ] -> emit ctx (Iload2 (d, aid, i, j))
  | _ -> emit ctx (IloadN (d, aid, Array.of_list idx)));
  d

and emit_intrinsic ctx lname f args =
  if has_section args then bail "section";
  let argregs = List.map (compile_expr ctx) args in
  let d = reg ctx in
  emit ctx (Iintr (lname, f, d, Array.of_list argregs));
  d

(* Walk a designator chain against the compile-time scope.  Only the
   shapes the tree-walker's [eval_slot_access] supports without side
   effects are compiled; everything else bails. *)
and compile_slot_load ctx (slot : Storage.slot) name path args rest : int =
  match (slot.Storage.entry, args, rest) with
  | Storage.Scalar v, [], [] ->
    if slot.Storage.is_param then begin
      (* PARAMETER values are fixed by the declarations; inline them.
         Bodies that write a parameter bail, and Vm.bind re-verifies
         the folded value against the executing scope (checks). *)
      match v with
      | Value.Arr _ -> bail "array-parameter"
      | v ->
        note_check ctx slot name path v;
        let r = reg ctx in
        emit ctx (Iconst (r, v));
        r
    end
    else begin
      let sid = scalar_id ctx slot name path in
      let r = reg ctx in
      emit ctx (Iload (r, sid));
      r
    end
  | Storage.Array a, [], [] ->
    let aid = array_id ctx a.Farray.elem name path 0 in
    let r = reg ctx in
    emit ctx (Iload_arr (r, aid));
    r
  | Storage.Array a, _ :: _, [] ->
    compile_elem_load ctx a.Farray.elem name path args
  | Storage.Struct obj, [], (fname, fargs) :: frest -> (
    match Hashtbl.find_opt obj fname with
    | Some fslot ->
      compile_slot_load ctx fslot name (path @ [ fname ]) fargs frest
    | None -> bail "component")
  | _ -> bail "designator-shape"

and compile_desig_load ctx (parts : Ast.designator) : int =
  match ctx.inline with
  | Some fr -> (
    (* inside an inlined leaf: names are dummies/locals/result (the
       planner guarantees single scalar parts) or intrinsics resolved
       directly, bypassing the caller's scope *)
    match parts with
    | [ (h, args) ] -> (
      match Hashtbl.find_opt fr.imap h with
      | Some (Ib_slot sid) ->
        if args <> [] then bail "inline-shape";
        let r = reg ctx in
        emit ctx (Iload (r, sid));
        r
      | Some (Ib_reg (r, _)) ->
        if args <> [] then bail "inline-shape";
        r
      | None -> (
        match Hashtbl.find_opt Intrinsics.tbl (String.lowercase_ascii h) with
        | Some f -> emit_intrinsic ctx (String.lowercase_ascii h) f args
        | None -> bail "inline-shape"))
    | _ -> bail "inline-shape")
  | None -> (
    match parts with
    | [] -> bail "designator-shape"
    | (name, args) :: rest -> (
      match Storage.lookup ctx.scope name with
      | Some slot -> compile_slot_load ctx slot name [] args rest
      | None -> (
        if name = "allocated" then bail "allocated()"
        else
          match
            Hashtbl.find_opt Intrinsics.tbl (String.lowercase_ascii name)
          with
          | Some f ->
            if rest <> [] then bail "designator-shape";
            note_negative ctx name;
            emit_intrinsic ctx (String.lowercase_ascii name) f args
          | None -> (
            (* user function: the tree-walker's eval_desig evaluates
               every argument once (vals), finds the subprogram, then
               re-evaluates them through bind_actual *)
            match Hashtbl.find_opt ctx.env.e_subs name with
            | Some (sp, mod_name) ->
              if not ctx.env.e_calls then bail "call";
              if has_section args then bail "section";
              note_negative ctx name;
              List.iter (fun a -> ignore (compile_expr ctx a)) args;
              if rest <> [] then bail "fn-parts";
              compile_user_call ctx sp mod_name name args ~is_fn:true
            | None -> bail "unknown-name"))))

(* --- compiled calls ------------------------------------------------------ *)

(* Compile a call to [sp] (statement CALL when [is_fn] is false,
   function reference otherwise).  Returns the result register (0,
   unused, for subroutine statements).  Inline when the callee is a
   leaf and every actual is a whole scalar variable; otherwise marshal
   an Icall.  Anything the marshalling cannot express bails — the
   tree-walker then replays the whole body from scratch, so partial
   effects never leak. *)
and compile_user_call ctx sp mod_name name actuals ~is_fn : int =
  if List.length actuals <> List.length sp.Ast.sub_args then bail "call-arity";
  if is_fn && sp.Ast.sub_kind = `Subroutine then bail "sub-as-fn";
  match compile_inline_call ctx sp mod_name actuals with
  | Some r -> if is_fn then r else 0
  | None -> compile_marshalled_call ctx sp mod_name name actuals ~is_fn

and compile_marshalled_call ctx sp mod_name name actuals ~is_fn : int =
  if ctx.inline <> None then bail "inline-shape";
  if may_alloc ctx.env [] sp then bail "call-allocates";
  let written = written_dummies sp in
  let specs =
    List.map2
      (fun dummy a ->
        match a with
        | Ast.Desig [ (n, []) ] -> (
          match Storage.lookup ctx.scope n with
          | Some slot ->
            if slot.Storage.is_param && Hashtbl.mem written dummy then
              (* the callee may write through the alias; our folded
                 PARAMETER constants would go stale *)
              bail "writes-parameter-arg"
            else Arg_alias (raw_id ctx n)
          | None -> bail "implicit-arg")
        | Ast.Desig ((n, args) :: rest) -> (
          match Storage.lookup ctx.scope n with
          | Some { Storage.entry = Storage.Array arr; _ }
            when rest = [] && args <> [] && not (has_section args) ->
            (* copy-in/copy-out array element: the tree-walker first
               resolves the lvalue (evaluating and to_int-ing each
               subscript), then re-evaluates the designator for the
               value (bounds-checked) *)
            let idx =
              List.map
                (fun e ->
                  let r = compile_expr ctx e in
                  emit ctx (Ito_int (r, r));
                  r)
                args
            in
            let aid =
              array_id ctx arr.Farray.elem n [] (List.length args)
            in
            let av = compile_elem_load ctx arr.Farray.elem n [] args in
            Arg_elem { ae_arr = aid; ae_idx = Array.of_list idx; ae_val = av }
          | Some _ -> bail "arg-shape"
          | None ->
            (* head not in scope: bind_actual's resolve_lvalue fails
               and it falls back to a plain evaluated copy (which may
               itself be a function call) *)
            Arg_value (compile_expr ctx a))
        | a -> Arg_value (compile_expr ctx a))
      sp.Ast.sub_args actuals
  in
  let dst = if is_fn then reg ctx else -1 in
  emit ctx
    (Icall
       {
         cs_sub = sp;
         cs_mod = mod_name;
         cs_name = name;
         cs_args = Array.of_list specs;
         cs_dst = dst;
       });
  if is_fn then dst else 0

(* Expand a leaf callee into the caller's instruction stream.  Every
   actual must be a whole scalar variable, so dummies alias caller
   slots (same scalar-id space — two dummies aliasing one variable
   share an id, like two aliases of one slot) and locals/result live
   in plain registers.  Declaration processing follows setup_scope's
   order, including the dummy-redeclaration quirk (Idummy_adjust).
   Returns None when the call site does not qualify; the marshalled
   path then takes over. *)
and compile_inline_call ctx sp mod_name actuals : int option =
  if ctx.inline <> None then None (* leaves contain no calls *)
  else
    match leaf_shape sp with
    | None -> None
    | Some shape ->
      if inline_shadowed ctx.env mod_name shape then None
      else begin
        (* site check: every actual a whole scalar variable in scope *)
        let slots =
          List.map
            (fun a ->
              match a with
              | Ast.Desig [ (n, []) ] -> (
                match Storage.lookup ctx.scope n with
                | Some ({ Storage.entry = Storage.Scalar _; _ } as slot) ->
                  Some (n, slot)
                | _ -> None)
              | _ -> None)
            actuals
        in
        if List.exists (fun s -> s = None) slots then None
        else begin
          let written = written_dummies sp in
          let frame = { imap = Hashtbl.create 8; iret = [] } in
          List.iter2
            (fun dummy s ->
              match s with
              | Some (n, slot) ->
                if slot.Storage.is_param && Hashtbl.mem written dummy then
                  bail "writes-parameter-arg";
                Hashtbl.replace frame.imap dummy
                  (Ib_slot (scalar_id ctx slot n []))
              | None -> assert false)
            sp.Ast.sub_args slots;
          (* declarations, in setup_scope order *)
          List.iter
            (function
              | Ast.Var_decl { base; entities; _ } ->
                List.iter
                  (fun (e : Ast.entity) ->
                    let n = e.Ast.ent_name in
                    match Hashtbl.find_opt frame.imap n with
                    | Some (Ib_slot sid) ->
                      (* dummy redeclaration: REAL over an aliased Int
                         rewrites the slot in place *)
                      if base = Ast.Real || base = Ast.Real8 then
                        emit ctx (Idummy_adjust sid)
                    | Some (Ib_reg _) -> bail "inline-shape"
                    | None ->
                      let r = reg ctx in
                      emit ctx (Iconst (r, Value.zero_of base));
                      Hashtbl.replace frame.imap n (Ib_reg (r, base)))
                  entities
              | _ -> ())
            sp.Ast.sub_decls;
          (* function result register (setup_scope creates the slot
             zero-initialized when not declared) *)
          let res =
            match sp.Ast.sub_kind with
            | `Function rt -> (
              match Hashtbl.find_opt frame.imap sp.Ast.sub_name with
              | Some (Ib_reg (r, _)) -> r
              | Some (Ib_slot _) -> bail "inline-shape"
              | None ->
                let base = Option.value rt ~default:Ast.Real8 in
                let r = reg ctx in
                emit ctx (Iconst (r, Value.zero_of base));
                Hashtbl.replace frame.imap sp.Ast.sub_name (Ib_reg (r, base));
                r)
            | `Subroutine -> 0
          in
          ctx.inline <- Some frame;
          (match List.iter (compile_stmt ctx) sp.Ast.sub_body with
          | () -> ctx.inline <- None
          | exception e ->
            ctx.inline <- None;
            raise e);
          List.iter (fun at -> patch ctx at (here ctx)) frame.iret;
          Some res
        end
      end

(* --- lvalues ------------------------------------------------------------- *)

(* RHS register [rv] is already evaluated (the tree-walker evaluates
   the RHS before resolving the lvalue's subscripts). *)
and compile_slot_store ctx (slot : Storage.slot) name path args rest rv =
  match (slot.Storage.entry, args, rest) with
  | Storage.Scalar _, [], [] ->
    if slot.Storage.is_param then bail "parameter-store";
    let sid = scalar_id ctx slot name path in
    emit ctx (Istore (sid, rv))
  | Storage.Array a, [], [] ->
    let aid = array_id ctx a.Farray.elem name path 0 in
    emit ctx (Istore_whole (aid, rv))
  | Storage.Array a, _ :: _, [] -> (
    let idx = compile_subscripts ctx args in
    let aid = array_id ctx a.Farray.elem name path (List.length idx) in
    match idx with
    | [ i ] -> emit ctx (Istore1 (aid, i, rv))
    | [ i; j ] -> emit ctx (Istore2 (aid, i, j, rv))
    | _ -> emit ctx (IstoreN (aid, Array.of_list idx, rv)))
  | Storage.Struct obj, [], (fname, fargs) :: frest -> (
    match Hashtbl.find_opt obj fname with
    | Some fslot ->
      compile_slot_store ctx fslot name (path @ [ fname ]) fargs frest rv
    | None -> bail "component")
  | _ -> bail "designator-shape"

and compile_desig_store ctx (parts : Ast.designator) rv =
  match ctx.inline with
  | Some fr -> (
    match parts with
    | [ (h, []) ] -> (
      match Hashtbl.find_opt fr.imap h with
      | Some (Ib_slot sid) -> emit ctx (Istore (sid, rv))
      | Some (Ib_reg (r, base)) -> emit ctx (Icoerce (base, r, rv))
      | None -> bail "inline-shape")
    | _ -> bail "inline-shape")
  | None -> (
    match parts with
    | [] -> bail "designator-shape"
    | (name, args) :: rest -> (
      match Storage.lookup ctx.scope name with
      | Some slot -> compile_slot_store ctx slot name [] args rest rv
      | None -> bail "implicit-decl"
      (* implicit declaration on assignment: tree-walk *)))

(* --- statements ---------------------------------------------------------- *)

(* Release the CRITICAL locks held above [target_depth] (EXIT/CYCLE
   jumping out of a critical section must unlock on the way, like the
   tree-walker's Fun.protect unwinding does). *)
and emit_unlocks ctx target_depth =
  for _ = target_depth + 1 to ctx.crit do
    emit ctx Icrit_exit
  done

and compile_stmt ctx (s : Ast.stmt) =
  match s with
  | Ast.Assign (d, e) ->
    let rv = compile_expr ctx e in
    compile_desig_store ctx d rv
  | Ast.If_arith (c, s) ->
    let rc = compile_expr ctx c in
    let jend = emit_patchable ctx (Ijf (rc, 0)) in
    compile_stmt ctx s;
    patch ctx jend (here ctx)
  | Ast.If_block (branches, else_) ->
    let jends = ref [] in
    List.iter
      (fun (c, body) ->
        let rc = compile_expr ctx c in
        let jnext = emit_patchable ctx (Ijf (rc, 0)) in
        List.iter (compile_stmt ctx) body;
        jends := emit_patchable ctx (Ijmp 0) :: !jends;
        patch ctx jnext (here ctx))
      branches;
    List.iter (compile_stmt ctx) else_;
    List.iter (fun at -> patch ctx at (here ctx)) !jends
  | Ast.Do l ->
    if l.Ast.do_omp <> None then bail "nested-parallel-do";
    compile_serial_do ctx l
  | Ast.Do_while (c, body) ->
    let head = here ctx in
    let rc = compile_expr ctx c in
    let jend = emit_patchable ctx (Ijf (rc, 0)) in
    emit ctx Ipoll;
    let lctx =
      {
        exit_patches = [];
        cont_patches = [];
        cont_target = Some head;
        crit_at_entry = ctx.crit;
      }
    in
    ctx.loops <- lctx :: ctx.loops;
    List.iter (compile_stmt ctx) body;
    ctx.loops <- List.tl ctx.loops;
    emit ctx (Ijmp head);
    patch ctx jend (here ctx);
    List.iter (fun at -> patch ctx at (here ctx)) lctx.exit_patches
  | Ast.Exit -> (
    match ctx.loops with
    | lctx :: _ ->
      emit_unlocks ctx lctx.crit_at_entry;
      lctx.exit_patches <- emit_patchable ctx (Ijmp 0) :: lctx.exit_patches
    | [] ->
      if ctx.in_sub then
        (* a bare EXIT in a subprogram body raises Loop_exit into the
           caller's loop: let the tree-walker own that behaviour *)
        bail "exit-outside-loop"
      else begin
        (* EXIT from the loop the VM itself is driving *)
        emit_unlocks ctx 0;
        emit ctx Iexit
      end)
  | Ast.Cycle -> (
    match ctx.loops with
    | lctx :: _ -> (
      emit_unlocks ctx lctx.crit_at_entry;
      match lctx.cont_target with
      | Some t -> emit ctx (Ijmp t)
      | None ->
        lctx.cont_patches <- emit_patchable ctx (Ijmp 0) :: lctx.cont_patches)
    | [] ->
      if ctx.in_sub then bail "cycle-outside-loop"
      else begin
        emit_unlocks ctx 0;
        ctx.end_patches <- emit_patchable ctx (Ijmp 0) :: ctx.end_patches
      end)
  | Ast.Return -> (
    match ctx.inline with
    | Some fr -> fr.iret <- emit_patchable ctx (Ijmp 0) :: fr.iret
    | None -> emit ctx Ireturn)
  | Ast.Stop msg -> emit ctx (Istop msg)
  | Ast.Continue | Ast.Comment _ | Ast.Omp_barrier -> ()
  | Ast.Print args ->
    let regs = List.map (compile_expr ctx) args in
    emit ctx (Iprint (Array.of_list regs))
  | Ast.Omp_atomic s ->
    if ctx.crit > 0 then bail "nested-critical";
    emit ctx Icrit_enter;
    ctx.crit <- ctx.crit + 1;
    compile_stmt ctx s;
    ctx.crit <- ctx.crit - 1;
    emit ctx Icrit_exit
  | Ast.Omp_critical body ->
    if ctx.crit > 0 then bail "nested-critical";
    emit ctx Icrit_enter;
    ctx.crit <- ctx.crit + 1;
    List.iter (compile_stmt ctx) body;
    ctx.crit <- ctx.crit - 1;
    emit ctx Icrit_exit
  | Ast.Call (name, actuals) -> (
    if not ctx.env.e_calls then bail "call";
    match Hashtbl.find_opt ctx.env.e_subs (String.lowercase_ascii name) with
    | None -> bail "unknown-call"
    | Some (sp, mod_name) ->
      ignore (compile_user_call ctx sp mod_name name actuals ~is_fn:false))
  | Ast.Allocate _ -> bail "allocate"
  | Ast.Deallocate _ -> bail "deallocate"

and compile_serial_do ctx (l : Ast.do_loop) =
  let sid =
    match ctx.inline with
    | Some _ -> bail "inline-shape" (* leaves contain no DO loops *)
    | None -> (
      match Storage.lookup ctx.scope l.Ast.do_var with
      | Some slot ->
        if slot.Storage.is_param then bail "parameter-store";
        scalar_id ctx slot l.Ast.do_var []
      | None -> bail "implicit-decl" (* implicit DO-variable declaration *))
  in
  (* Bounds evaluate once, in the tree-walker's order (lo, hi, step),
     then the zero-step check fires before any iteration. *)
  let rlo = compile_expr ctx l.Ast.do_lo in
  emit ctx (Ito_int (rlo, rlo));
  let rhi = compile_expr ctx l.Ast.do_hi in
  emit ctx (Ito_int (rhi, rhi));
  let rstep =
    match l.Ast.do_step with
    | Some e ->
      let r = compile_expr ctx e in
      emit ctx (Ito_int (r, r));
      r
    | None ->
      let r = reg ctx in
      emit ctx (Iconst (r, Value.Int 1));
      r
  in
  emit ctx (Icheck_step rstep);
  let ri = reg ctx in
  emit ctx (Icopy (ri, rlo));
  let head = here ctx in
  let jfini =
    emit_patchable ctx
      (Iloop_test { ireg = ri; hireg = rhi; stepreg = rstep; target = 0 })
  in
  emit ctx Ipoll;
  emit ctx (Istore_raw (sid, ri));
  let lctx =
    {
      exit_patches = [];
      cont_patches = [];
      cont_target = None;
      crit_at_entry = ctx.crit;
    }
  in
  ctx.loops <- lctx :: ctx.loops;
  List.iter (compile_stmt ctx) l.Ast.do_body;
  ctx.loops <- List.tl ctx.loops;
  (* continue point: CYCLE lands on the increment *)
  let cont = here ctx in
  List.iter (fun at -> patch ctx at cont) lctx.cont_patches;
  emit ctx (Iinc (ri, rstep));
  emit ctx (Ijmp head);
  patch ctx jfini (here ctx);
  emit ctx (Iloop_fini { sid; loreg = rlo; hireg = rhi; stepreg = rstep });
  (* EXIT jumps here, past Iloop_fini: the DO variable retains its
     value at the point of EXIT (the satellite DO/EXIT fix, native to
     the bytecode path) *)
  List.iter (fun at -> patch ctx at (here ctx)) lctx.exit_patches

(* --- typed specialization ------------------------------------------------ *)

(* Re-emit a boxed program over unboxed float/int register banks when
   every register's value kind is statically known.  The mapping is a
   single forward pass: this emitter defines registers before use on
   every path (including the short-circuit And/Or diamonds, whose two
   definitions of the result register are both Bool), so each boxed
   register gets exactly one type or the whole program is rejected.
   Rejection is free: the boxed program still runs, so the typed layer
   can afford to be picky — anything whose boxed semantics depends on
   a runtime value kind (integer **, huge(), Value polymorphism over
   Str/Arr, calls, prints) is rejected rather than approximated.

   Soundness (DESIGN.md §16): every typed opcode performs the same
   primitive float/int operation the boxed opcode's fast path (or the
   Value function it calls) performs, in the same order.  The
   subtleties are the comparison and min/max orders: Value.compare_values
   and variadic_minmax go through OCaml's polymorphic compare on
   floats, which is Float.compare's total order (NaN below everything,
   NaN = NaN) — NOT native float (<), so typed comparisons use
   Float.compare too.  Int min/max comparisons go through float_of_int
   first, exactly like variadic_minmax's to_float. *)

exception Treject

type tvec = { mutable titems : tinstr array; mutable tlen : int }

let tvec_push v x =
  if v.tlen = Array.length v.titems then begin
    let bigger = Array.make (max 64 (2 * v.tlen)) Tpoll in
    Array.blit v.titems 0 bigger 0 v.tlen;
    v.titems <- bigger
  end;
  v.titems.(v.tlen) <- x;
  v.tlen <- v.tlen + 1

let nint_of x = int_of_float (Float.round x)
let floor_of x = int_of_float (Float.floor x)
let ceil_of x = int_of_float (Float.ceil x)
let fmod x y = Float.rem x y

let specialize (p : program) : tprogram option =
  let nsc = Array.length p.scalars in
  let sty = Array.make nsc TI in
  let sty_ok = Array.make nsc false in
  Array.iteri
    (fun i (r : scalar_ref) ->
      match r.sbase with
      | Ast.Integer ->
        sty.(i) <- TI;
        sty_ok.(i) <- true
      | Ast.Real | Ast.Real8 ->
        sty.(i) <- TF;
        sty_ok.(i) <- true
      | Ast.Logical ->
        sty.(i) <- TB;
        sty_ok.(i) <- true
      | _ -> ())
    p.scalars;
  let n = Array.length p.code in
  let out = { titems = Array.make (max 64 (2 * n)) Tpoll; tlen = 0 } in
  let map = Array.make (n + 1) 0 in
  let rty : ty option array = Array.make (max 1 p.nregs) None in
  let bank = Array.make (max 1 p.nregs) 0 in
  let nf = ref 0 and ni = ref 0 in
  let fresh_f () =
    let i = !nf in
    incr nf;
    i
  in
  let fresh_i () =
    let i = !ni in
    incr ni;
    i
  in
  let def r t =
    match rty.(r) with
    | None ->
      rty.(r) <- Some t;
      bank.(r) <- (match t with TF -> fresh_f () | TI | TB -> fresh_i ())
    | Some t' -> if t <> t' then raise Treject
  in
  let ty_of r = match rty.(r) with Some t -> t | None -> raise Treject in
  (* operand access with on-the-fly conversion into a fresh temp; the
     conversions are total (float_of_int / int_of_float never raise),
     exactly like to_float / to_int on numeric Values *)
  let as_f r =
    match ty_of r with
    | TF -> bank.(r)
    | TI ->
      let t = fresh_f () in
      tvec_push out (Ti2f (t, bank.(r)));
      t
    | TB -> raise Treject
  in
  let as_i_trunc r =
    match ty_of r with
    | TI -> bank.(r)
    | TF ->
      let t = fresh_i () in
      tvec_push out (Tf2i (t, bank.(r)));
      t
    | TB -> raise Treject
  in
  let as_cond r =
    match ty_of r with TI | TB -> bank.(r) | TF -> raise Treject
  in
  (* to_bool-normalized 0/1 operand, for Eqv/Neqv *)
  let as_bool r =
    match ty_of r with
    | TB -> bank.(r)
    | TI ->
      let t = fresh_i () in
      tvec_push out (Tbool (t, bank.(r)));
      t
    | TF -> raise Treject
  in
  let scalar i =
    if not sty_ok.(i) then raise Treject;
    sty.(i)
  in
  let cmp_of = function
    | Ast.Lt -> Clt
    | Ast.Le -> Cle
    | Ast.Gt -> Cgt
    | Ast.Ge -> Cge
    | Ast.Eq -> Ceq
    | Ast.Ne -> Cne
    | _ -> raise Treject
  in
  try
    (* slots written raw (DO variables) hold Ints mid-loop regardless
       of their declared base; only Integer-based ones stay typable *)
    Array.iter
      (function
        | Istore_raw (sid, _) | Iloop_fini { sid; _ } ->
          if scalar sid <> TI then raise Treject
        | _ -> ())
      p.code;
    for i = 0 to n - 1 do
      map.(i) <- out.tlen;
      (match p.code.(i) with
      | Iconst (d, Value.Int x) ->
        def d TI;
        tvec_push out (TconstI (bank.(d), x))
      | Iconst (d, Value.Real x) ->
        def d TF;
        tvec_push out (TconstF (bank.(d), x))
      | Iconst (d, Value.Bool b) ->
        def d TB;
        tvec_push out (TconstI (bank.(d), if b then 1 else 0))
      | Iconst (_, (Value.Str _ | Value.Arr _)) -> raise Treject
      | Icopy (d, s) -> (
        match ty_of s with
        | TF ->
          def d TF;
          tvec_push out (TmovF (bank.(d), bank.(s)))
        | TI ->
          def d TI;
          tvec_push out (TmovI (bank.(d), bank.(s)))
        | TB ->
          def d TB;
          tvec_push out (TmovI (bank.(d), bank.(s))))
      | Iload (d, sid) -> (
        match scalar sid with
        | TF ->
          def d TF;
          tvec_push out (TldsF (bank.(d), sid))
        | TI ->
          def d TI;
          tvec_push out (TldsI (bank.(d), sid))
        | TB ->
          def d TB;
          tvec_push out (TldsB (bank.(d), sid)))
      | Istore (sid, r) -> (
        match (scalar sid, ty_of r) with
        | TF, TF -> tvec_push out (TstsF (sid, bank.(r)))
        | TF, TI -> tvec_push out (TstsF_ofI (sid, bank.(r)))
        | TI, TI -> tvec_push out (TstsI (sid, bank.(r)))
        | TI, TF -> tvec_push out (TstsI_ofF (sid, bank.(r)))
        | TB, TB -> tvec_push out (TstsB (sid, bank.(r)))
        | _ -> raise Treject)
      | Istore_raw (sid, r) ->
        if ty_of r <> TI then raise Treject;
        tvec_push out (TstsI_raw (sid, bank.(r)))
      | Icoerce (base, d, s) -> (
        match (base, ty_of s) with
        | Ast.Integer, TI ->
          def d TI;
          tvec_push out (TmovI (bank.(d), bank.(s)))
        | Ast.Integer, TF ->
          def d TI;
          tvec_push out (Tf2i (bank.(d), bank.(s)))
        | (Ast.Real | Ast.Real8), TF ->
          def d TF;
          tvec_push out (TmovF (bank.(d), bank.(s)))
        | (Ast.Real | Ast.Real8), TI ->
          def d TF;
          tvec_push out (Ti2f (bank.(d), bank.(s)))
        | Ast.Logical, TB ->
          def d TB;
          tvec_push out (TmovI (bank.(d), bank.(s)))
        | _ -> raise Treject)
      | Iload_arr _ | Istore_whole _ | IloadN _ | IstoreN _ -> raise Treject
      | Iload1 (d, a, ir) -> (
        match p.arrays.(a).aelem with
        | Farray.Efloat ->
          let iv = as_i_trunc ir in
          def d TF;
          tvec_push out (Tld1F (bank.(d), a, iv))
        | Farray.Eint ->
          let iv = as_i_trunc ir in
          def d TI;
          tvec_push out (Tld1I (bank.(d), a, iv))
        | _ -> raise Treject)
      | Iload2 (d, a, ir, jr) -> (
        match p.arrays.(a).aelem with
        | Farray.Efloat ->
          let iv = as_i_trunc ir in
          let jv = as_i_trunc jr in
          def d TF;
          tvec_push out (Tld2F (bank.(d), a, iv, jv))
        | Farray.Eint ->
          let iv = as_i_trunc ir in
          let jv = as_i_trunc jr in
          def d TI;
          tvec_push out (Tld2I (bank.(d), a, iv, jv))
        | _ -> raise Treject)
      | Istore1 (a, ir, r) -> (
        match p.arrays.(a).aelem with
        | Farray.Efloat ->
          (* set_linear coerces Ci -> float_of_int, same as Ti2f *)
          let iv = as_i_trunc ir in
          let rv = as_f r in
          tvec_push out (Tst1F (a, iv, rv))
        | Farray.Eint ->
          let iv = as_i_trunc ir in
          let rv = as_i_trunc r in
          tvec_push out (Tst1I (a, iv, rv))
        | _ -> raise Treject)
      | Istore2 (a, ir, jr, r) -> (
        match p.arrays.(a).aelem with
        | Farray.Efloat ->
          let iv = as_i_trunc ir in
          let jv = as_i_trunc jr in
          let rv = as_f r in
          tvec_push out (Tst2F (a, iv, jv, rv))
        | Farray.Eint ->
          let iv = as_i_trunc ir in
          let jv = as_i_trunc jr in
          let rv = as_i_trunc r in
          tvec_push out (Tst2I (a, iv, jv, rv))
        | _ -> raise Treject)
      | Ibinop (op, d, a, b) -> (
        let ta = ty_of a and tb = ty_of b in
        match op with
        | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div -> (
          match (ta, tb) with
          | TI, TI ->
            def d TI;
            tvec_push out
              ((match op with
               | Ast.Add -> TaddI (bank.(d), bank.(a), bank.(b))
               | Ast.Sub -> TsubI (bank.(d), bank.(a), bank.(b))
               | Ast.Mul -> TmulI (bank.(d), bank.(a), bank.(b))
               | _ -> TdivI (bank.(d), bank.(a), bank.(b))))
          | (TF | TI), (TF | TI) ->
            let av = as_f a in
            let bv = as_f b in
            def d TF;
            tvec_push out
              ((match op with
               | Ast.Add -> TaddF (bank.(d), av, bv)
               | Ast.Sub -> TsubF (bank.(d), av, bv)
               | Ast.Mul -> TmulF (bank.(d), av, bv)
               | _ -> TdivF (bank.(d), av, bv)))
          | _ -> raise Treject)
        | Ast.Pow -> (
          match (ta, tb) with
          | TI, TI -> raise Treject (* integer ** is an int loop *)
          | (TF | TI), (TF | TI) ->
            let av = as_f a in
            let bv = as_f b in
            def d TF;
            tvec_push out (TpowF (bank.(d), av, bv))
          | _ -> raise Treject)
        | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> (
          match (ta, tb) with
          | TI, TI ->
            def d TB;
            tvec_push out (TcmpI (cmp_of op, bank.(d), bank.(a), bank.(b)))
          | (TF | TI), (TF | TI) ->
            (* mixed numerics compare through to_float, like
               compare_values *)
            let av = as_f a in
            let bv = as_f b in
            def d TB;
            tvec_push out (TcmpF (cmp_of op, bank.(d), av, bv))
          | TB, TB when op = Ast.Eq || op = Ast.Ne ->
            def d TB;
            tvec_push out (TcmpI (cmp_of op, bank.(d), bank.(a), bank.(b)))
          | _ -> raise Treject)
        | Ast.Eqv | Ast.Neqv ->
          let av = as_bool a in
          let bv = as_bool b in
          def d TB;
          tvec_push out
            (TcmpI
               ((if op = Ast.Eqv then Ceq else Cne), bank.(d), av, bv))
        | Ast.Concat | Ast.And | Ast.Or -> raise Treject)
      | Ineg (d, s) -> (
        match ty_of s with
        | TF ->
          def d TF;
          tvec_push out (TnegF (bank.(d), bank.(s)))
        | TI ->
          def d TI;
          tvec_push out (TnegI (bank.(d), bank.(s)))
        | TB -> raise Treject)
      | Inot (d, s) ->
        let sv = as_cond s in
        def d TB;
        tvec_push out (Tnot (bank.(d), sv))
      | Ibool (d, s) ->
        let sv = as_cond s in
        def d TB;
        tvec_push out (Tbool (bank.(d), sv))
      | Ito_int (d, s) ->
        if d = s then begin
          (* in-place narrowing can't retype a register; Int -> Int is
             the identity and needs no code *)
          match ty_of s with TI -> () | _ -> raise Treject
        end
        else begin
          match ty_of s with
          | TI ->
            def d TI;
            tvec_push out (TmovI (bank.(d), bank.(s)))
          | TF ->
            def d TI;
            tvec_push out (Tf2i (bank.(d), bank.(s)))
          | TB -> raise Treject
        end
      | Icheck_step r ->
        if ty_of r <> TI then raise Treject;
        tvec_push out (Tcheck_step bank.(r))
      | Iintr (name, _, d, args) -> (
        let arg1 () =
          match args with [| a |] -> a | _ -> raise Treject
        in
        let arg2 () =
          match args with [| a; b |] -> (a, b) | _ -> raise Treject
        in
        let un1 f =
          let av = as_f (arg1 ()) in
          def d TF;
          tvec_push out (Tin1F (name, f, bank.(d), av))
        in
        match name with
        | "sqrt" | "dsqrt" -> un1 sqrt
        | "exp" | "dexp" -> un1 exp
        | "log" | "alog" | "dlog" -> un1 log
        | "log10" | "alog10" -> un1 log10
        | "sin" -> un1 sin
        | "cos" -> un1 cos
        | "tan" -> un1 tan
        | "asin" -> un1 asin
        | "acos" -> un1 acos
        | "atan" -> un1 atan
        | "sinh" -> un1 sinh
        | "cosh" -> un1 cosh
        | "tanh" -> un1 tanh
        | "dabs" -> un1 Float.abs
        | "atan2" ->
          let x, y = arg2 () in
          let av = as_f x in
          let bv = as_f y in
          def d TF;
          tvec_push out (Tin2F (name, atan2, bank.(d), av, bv))
        | "sign" | "dsign" ->
          let x, y = arg2 () in
          let av = as_f x in
          let bv = as_f y in
          def d TF;
          tvec_push out (Tin2F (name, Intrinsics.sign_val, bank.(d), av, bv))
        | "abs" -> (
          match ty_of (arg1 ()) with
          | TI ->
            def d TI;
            tvec_push out (TabsI (bank.(d), bank.(arg1 ())))
          | TF ->
            def d TF;
            tvec_push out (TabsF (bank.(d), bank.(arg1 ())))
          | TB -> raise Treject)
        | "iabs" ->
          let av = as_i_trunc (arg1 ()) in
          def d TI;
          tvec_push out (TabsI (bank.(d), av))
        | "mod" -> (
          let x, y = arg2 () in
          match (ty_of x, ty_of y) with
          | TI, TI ->
            def d TI;
            tvec_push out (TmodI (bank.(d), bank.(x), bank.(y)))
          | (TF | TI), (TF | TI) ->
            let av = as_f x in
            let bv = as_f y in
            def d TF;
            tvec_push out (Tin2F (name, fmod, bank.(d), av, bv))
          | _ -> raise Treject)
        | "int" | "ifix" -> (
          match ty_of (arg1 ()) with
          | TI ->
            def d TI;
            tvec_push out (TmovI (bank.(d), bank.(arg1 ())))
          | TF ->
            def d TI;
            tvec_push out (Tf2i (bank.(d), bank.(arg1 ())))
          | TB -> raise Treject)
        | "nint" ->
          let av = as_f (arg1 ()) in
          def d TI;
          tvec_push out (TfniF (name, nint_of, bank.(d), av))
        | "floor" ->
          let av = as_f (arg1 ()) in
          def d TI;
          tvec_push out (TfniF (name, floor_of, bank.(d), av))
        | "ceiling" ->
          let av = as_f (arg1 ()) in
          def d TI;
          tvec_push out (TfniF (name, ceil_of, bank.(d), av))
        | "real" | "float" | "dble" | "sngl" -> (
          match ty_of (arg1 ()) with
          | TF ->
            def d TF;
            tvec_push out (TmovF (bank.(d), bank.(arg1 ())))
          | TI ->
            def d TF;
            tvec_push out (Ti2f (bank.(d), bank.(arg1 ())))
          | TB -> raise Treject)
        | "max" | "amax1" | "dmax1" | "max0" -> (
          let x, y = arg2 () in
          match (ty_of x, ty_of y) with
          | TI, TI ->
            def d TI;
            tvec_push out (TmaxI (bank.(d), bank.(x), bank.(y)))
          | (TF | TI), (TF | TI) ->
            (* all_int is false, so the boxed result is
               Real (to_float best): converting both first and picking
               in float is the same value *)
            let av = as_f x in
            let bv = as_f y in
            def d TF;
            tvec_push out (TmaxF (bank.(d), av, bv))
          | _ -> raise Treject)
        | "min" | "amin1" | "dmin1" | "min0" -> (
          let x, y = arg2 () in
          match (ty_of x, ty_of y) with
          | TI, TI ->
            def d TI;
            tvec_push out (TminI (bank.(d), bank.(x), bank.(y)))
          | (TF | TI), (TF | TI) ->
            let av = as_f x in
            let bv = as_f y in
            def d TF;
            tvec_push out (TminF (bank.(d), av, bv))
          | _ -> raise Treject)
        | "huge" -> (
          match ty_of (arg1 ()) with
          | TI ->
            def d TI;
            tvec_push out (TconstI (bank.(d), max_int))
          | TF ->
            def d TF;
            tvec_push out (TconstF (bank.(d), Float.max_float))
          | TB -> raise Treject)
        | "tiny" ->
          if ty_of (arg1 ()) <> TF then raise Treject;
          def d TF;
          tvec_push out (TconstF (bank.(d), Float.min_float))
        | "epsilon" ->
          if ty_of (arg1 ()) <> TF then raise Treject;
          def d TF;
          tvec_push out (TconstF (bank.(d), epsilon_float))
        | _ -> raise Treject)
      | Icall _ | Iprint _ | Istop _ | Idummy_adjust _ -> (
        match p.code.(i) with
        | Idummy_adjust sid -> (
          (* the quirk only rewrites an Int value; a slot the typed
             bind verified as Real or Bool is untouched by it, and
             typed stores keep it that way: nothing to emit.  An
             Integer-based dummy would be rewritten to Real -> the
             program is not typable. *)
          match scalar sid with TF | TB -> () | TI -> raise Treject)
        | _ -> raise Treject)
      | Ijmp t -> tvec_push out (Tjmp t)
      | Ijf (r, t) -> tvec_push out (Tjf (as_cond r, t))
      | Ijt (r, t) -> tvec_push out (Tjt (as_cond r, t))
      | Iloop_test { ireg; hireg; stepreg; target } ->
        if ty_of ireg <> TI || ty_of hireg <> TI || ty_of stepreg <> TI then
          raise Treject;
        tvec_push out
          (Tloop_test
             {
               t_ireg = bank.(ireg);
               t_hireg = bank.(hireg);
               t_stepreg = bank.(stepreg);
               t_target = target;
             })
      | Iinc (ir, sr) ->
        if ty_of ir <> TI || ty_of sr <> TI then raise Treject;
        tvec_push out (Tinc (bank.(ir), bank.(sr)))
      | Iloop_fini { sid; loreg; hireg; stepreg } ->
        if ty_of loreg <> TI || ty_of hireg <> TI || ty_of stepreg <> TI then
          raise Treject;
        tvec_push out
          (Tloop_fini
             {
               t_sid = sid;
               t_loreg = bank.(loreg);
               t_hireg = bank.(hireg);
               t_stepreg = bank.(stepreg);
             })
      | Ipoll -> tvec_push out Tpoll
      | Icrit_enter -> tvec_push out Tcrit_enter
      | Icrit_exit -> tvec_push out Tcrit_exit
      | Ireturn -> tvec_push out Treturn
      | Iexit -> tvec_push out Texit)
    done;
    map.(n) <- out.tlen;
    (* every scalar slot is referenced by some surviving instruction,
       so untypable bases were already rejected; keep the assertion
       cheap anyway *)
    Array.iteri (fun i ok -> if not ok then ignore (scalar i)) sty_ok;
    (* retarget jumps from boxed pcs to typed pcs *)
    let tcode = Array.sub out.titems 0 out.tlen in
    Array.iteri
      (fun i ti ->
        match ti with
        | Tjmp t -> tcode.(i) <- Tjmp map.(t)
        | Tjf (r, t) -> tcode.(i) <- Tjf (r, map.(t))
        | Tjt (r, t) -> tcode.(i) <- Tjt (r, map.(t))
        | Tloop_test lt ->
          tcode.(i) <- Tloop_test { lt with t_target = map.(lt.t_target) }
        | _ -> ())
      tcode;
    Some { tcode; t_nf = max 1 !nf; t_ni = max 1 !ni; t_sty = sty }
  with Treject -> None

(* --- entry points -------------------------------------------------------- *)

let make_ctx env scope ~in_sub =
  {
    env;
    scope;
    in_sub;
    code = vec_create ();
    nregs = 0;
    scalar_ids = Hashtbl.create 16;
    scalar_refs = [];
    array_ids = Hashtbl.create 16;
    array_refs = [];
    raw_ids = Hashtbl.create 8;
    raw_refs = [];
    check_ids = Hashtbl.create 8;
    checks = [];
    negs = Hashtbl.create 8;
    loops = [];
    crit = 0;
    end_patches = [];
    inline = None;
  }

let finish ctx : program =
  List.iter (fun at -> patch ctx at (here ctx)) ctx.end_patches;
  let p =
    {
      code = Array.sub ctx.code.items 0 ctx.code.len;
      nregs = ctx.nregs;
      scalars = Array.of_list (List.rev ctx.scalar_refs);
      arrays = Array.of_list (List.rev ctx.array_refs);
      raws = Array.of_list (List.rev ctx.raw_refs);
      checks = Array.of_list (List.rev ctx.checks);
      negatives =
        Array.of_list (Hashtbl.fold (fun n () acc -> n :: acc) ctx.negs []);
      typed = None;
    }
  in
  { p with typed = specialize p }

(* Compile raw (no cache): Ok program or Error bail-reason. *)
let compile_raw env ~scope ~in_sub (body : Ast.stmt list) :
    (program, string) result =
  let ctx = make_ctx env scope ~in_sub in
  match List.iter (compile_stmt ctx) body with
  | () -> Ok (finish ctx)
  | exception Bail reason -> Error reason

(* Program cache: structural digest key, namespaced by unit and the
   call-compilation mode, FIFO-bounded.  Compiles run outside the
   lock; a racing domain's first insert wins. *)
let cache : (string, (program, string) result) Hashtbl.t = Hashtbl.create 64
let cache_order : string Queue.t = Queue.create ()
let cache_cap = 512

let cache_key env kind digest =
  env.e_unit ^ (if env.e_calls then "|c|" else "|n|") ^ kind ^ digest

let cached_compile key (compile : unit -> (program, string) result) :
    (program, string) result =
  match locked (fun () -> Hashtbl.find_opt cache key) with
  | Some r -> r
  | None -> (
    let r = compile () in
    locked (fun () ->
        match Hashtbl.find_opt cache key with
        | Some prev -> prev
        | None ->
          Hashtbl.replace cache key r;
          Queue.push key cache_order;
          while Queue.length cache_order > cache_cap do
            let doomed = Queue.pop cache_order in
            Hashtbl.remove cache doomed
          done;
          r))

(** Compile a loop body (the [what] string labels the stats site).
    Returns the program (None = bail, recorded as the site's reason)
    and the site itself so the caller can count runs and bind-time
    bails. *)
let compile_body env ~scope ~what (body : Ast.stmt list) :
    program option * Stats.site =
  let dg = body_digest body in
  let site =
    Stats.get ~unit_key:env.e_unit
      ~id:(what ^ "@" ^ String.sub dg 0 8)
      ~label:what
  in
  let r =
    cached_compile (cache_key env "b" dg) (fun () ->
        compile_raw env ~scope ~in_sub:false body)
  in
  match r with
  | Ok p -> (Some p, site)
  | Error reason ->
    Stats.set_reason site reason;
    (None, site)

(** Compile a whole subprogram body against a representative callee
    scope (the first call's).  Later calls bind against their own
    scopes; kind or folded-constant mismatches fail the bind and
    tree-walk that call only. *)
let compile_sub env ~scope (sp : Ast.subprogram) : program option * Stats.site
    =
  let dg = sub_digest sp in
  let label = "sub " ^ String.lowercase_ascii sp.Ast.sub_name in
  let site = Stats.get ~unit_key:env.e_unit ~id:label ~label in
  let r =
    cached_compile (cache_key env "s" dg) (fun () ->
        compile_raw env ~scope ~in_sub:true sp.Ast.sub_body)
  in
  match r with
  | Ok p -> (Some p, site)
  | Error reason ->
    Stats.set_reason site reason;
    (None, site)

(** Drop every cached program and stats site belonging to [unit_key]
    (the listener calls this when it evicts a script from its own
    cache, so long-lived serve processes don't accumulate programs for
    dead scripts). *)
let purge_unit u =
  locked (fun () ->
      let doomed =
        Hashtbl.fold
          (fun k _ acc ->
            if String.length k > String.length u && String.sub k 0 (String.length u) = u
            then k :: acc
            else acc)
          cache []
      in
      List.iter (Hashtbl.remove cache) doomed);
  Stats.purge_unit u
