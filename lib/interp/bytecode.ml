(** Bytecode compiler for interpreter loop bodies.

    The tree-walker pays a [Hashtbl.find], an exception handler and a
    closure allocation or two on every statement of every iteration.
    For the hot loops this repo measures (SARB's 2x60 exchange nests,
    FUN3D's edge loops) that per-iteration overhead dwarfs the actual
    arithmetic, so eligible loop bodies are lowered once to a flat
    register-style instruction array and executed by {!Vm}'s dispatch
    loop instead.

    Design rules (DESIGN.md section 13):
    - {e Compile or fall back, never approximate.}  [compile] returns
      [None] for any construct whose tree-walk semantics we are not
      prepared to replicate exactly (subroutine/function calls,
      ALLOCATE/DEALLOCATE, array sections, derived-type arrays,
      implied-do, STOP-free [allocated()], nested parallel loops,
      names that are not yet in scope).  The caller then runs the
      tree-walker, so behaviour is unchanged by construction.
    - {e Same operations, same order.}  Generated code calls the exact
      [Value]/[Farray]/[Intrinsics] functions the tree-walker calls,
      in the same evaluation order, so results — including error
      messages and Fortran coercion quirks — are bit-identical.
    - {e Names resolve late.}  Compilation classifies each name
      against a representative scope but records only (name, field
      path, kind); {!Vm.bind} re-resolves against the executing scope
      (each pooled worker's private clone) and refuses mismatches,
      falling back to the tree-walker.  Compiled programs are
      therefore shared safely across calls, threads and states (keyed
      by physical identity of the loop-body AST, which the parser
      creates once). *)

open Glaf_fortran
open Glaf_runtime

(** Scalar binding descriptor: [spath] is the derived-type component
    chain ([fo%fuir] gives [sname = "fo"], [spath = ["fuir"]]). *)
type scalar_ref = { sname : string; spath : string list }

(** Array binding descriptor; [asubs] is the subscript count at the
    use sites (0 = whole-array reference, no rank requirement). *)
type array_ref = { aname : string; apath : string list; asubs : int }

(** Register-style instructions.  [int] operands are register indices
    except where noted; jump targets are instruction indices. *)
type instr =
  | Iconst of int * Value.t  (** dst <- literal / folded constant *)
  | Icopy of int * int  (** dst <- src *)
  | Iload of int * int  (** dst <- scalar slot (scalar id) *)
  | Istore of int * int  (** scalar id <- coerce base src *)
  | Istore_raw of int * int
      (** scalar id <- src, no coercion (DO-variable stores, matching
          the tree-walker's raw [Scalar (Int i)] writes) *)
  | Iload_arr of int * int  (** dst <- whole-array value (array id) *)
  | Istore_whole of int * int  (** whole-array assignment: array id, src *)
  | Iload1 of int * int * int  (** dst, array id, index reg (rank 1) *)
  | Iload2 of int * int * int * int  (** dst, array id, i reg, j reg *)
  | IloadN of int * int * int array  (** dst, array id, index regs *)
  | Istore1 of int * int * int  (** array id, index reg, src *)
  | Istore2 of int * int * int * int  (** array id, i reg, j reg, src *)
  | IstoreN of int * int array * int  (** array id, index regs, src *)
  | Ibinop of Ast.binop * int * int * int  (** op, dst, a, b *)
  | Ineg of int * int
  | Inot of int * int
  | Ibool of int * int  (** dst <- Bool (to_bool src) *)
  | Ito_int of int * int  (** dst <- Int (to_int src) *)
  | Icheck_step of int  (** error if reg is integer 0 (DO step) *)
  | Iintr of (Value.t list -> Value.t) * int * int array
      (** pre-resolved intrinsic: fn, dst, arg regs *)
  | Ijmp of int
  | Ijf of int * int  (** jump when to_bool reg is false *)
  | Ijt of int * int  (** jump when to_bool reg is true *)
  | Iloop_test of { ireg : int; hireg : int; stepreg : int; target : int }
      (** nested-DO header: jump to [target] when the (Int) counter
          has passed the bound for the step's sign *)
  | Iinc of int * int  (** counter reg <- counter + step (Int regs) *)
  | Iloop_fini of { sid : int; loreg : int; hireg : int; stepreg : int }
      (** normal nested-DO completion: store the loop-completed value
          [lo + step * max 0 ((hi-lo+step)/step)]; an EXIT jumps past
          this, so the DO variable keeps its value at the EXIT *)
  | Ipoll  (** cancellation poll (every 256 ticks) *)
  | Iprint of int array
  | Icrit_enter  (** lock the global CRITICAL/ATOMIC mutex *)
  | Icrit_exit
  | Ireturn  (** RETURN: raise Sub_return *)
  | Istop of string option
  | Iexit  (** top-level EXIT: end body, signal loop exit *)

type program = {
  code : instr array;
  nregs : int;
  scalars : scalar_ref array;
  arrays : array_ref array;
}

(* --- compilation context ------------------------------------------------- *)

exception Bail  (* construct not covered: caller falls back to tree-walk *)

let bail () = raise Bail

type vec = { mutable items : instr array; mutable len : int }

let vec_create () = { items = Array.make 64 (Ijmp 0); len = 0 }

let vec_push v x =
  if v.len = Array.length v.items then begin
    let bigger = Array.make (2 * v.len) (Ijmp 0) in
    Array.blit v.items 0 bigger 0 v.len;
    v.items <- bigger
  end;
  v.items.(v.len) <- x;
  v.len <- v.len + 1

(* Enclosing loop construct, for EXIT/CYCLE lowering: where to jump
   and how many CRITICAL locks to release on the way out. *)
type loop_ctx = {
  mutable exit_patches : int list;
  mutable cont_patches : int list;  (* empty when cont_target is known *)
  cont_target : int option;
  crit_at_entry : int;
}

type ctx = {
  scope : Storage.scope;
  code : vec;
  mutable nregs : int;
  scalar_ids : (string * string list, int) Hashtbl.t;
  mutable scalar_refs : scalar_ref list;  (* reversed *)
  array_ids : (string * string list * int, int) Hashtbl.t;
  mutable array_refs : array_ref list;  (* reversed *)
  mutable loops : loop_ctx list;  (* innermost first *)
  mutable crit : int;  (* compile-time CRITICAL nesting depth *)
  mutable end_patches : int list;  (* top-level CYCLE -> end of body *)
}

let reg ctx =
  let r = ctx.nregs in
  ctx.nregs <- r + 1;
  r

let emit ctx i = vec_push ctx.code i
let here ctx = ctx.code.len

(* Emit a jump with a placeholder target; returns the patch site. *)
let emit_patchable ctx i =
  let at = here ctx in
  emit ctx i;
  at

let patch ctx at target =
  ctx.code.items.(at) <-
    (match ctx.code.items.(at) with
    | Ijmp _ -> Ijmp target
    | Ijf (r, _) -> Ijf (r, target)
    | Ijt (r, _) -> Ijt (r, target)
    | Iloop_test lt -> Iloop_test { lt with target }
    | _ -> assert false)

let scalar_id ctx name path =
  let key = (name, path) in
  match Hashtbl.find_opt ctx.scalar_ids key with
  | Some id -> id
  | None ->
    let id = Hashtbl.length ctx.scalar_ids in
    Hashtbl.replace ctx.scalar_ids key id;
    ctx.scalar_refs <- { sname = name; spath = path } :: ctx.scalar_refs;
    id

let array_id ctx name path nsubs =
  let key = (name, path, nsubs) in
  match Hashtbl.find_opt ctx.array_ids key with
  | Some id -> id
  | None ->
    let id = Hashtbl.length ctx.array_ids in
    Hashtbl.replace ctx.array_ids key id;
    ctx.array_refs <-
      { aname = name; apath = path; asubs = nsubs } :: ctx.array_refs;
    id

(* --- constant folding ---------------------------------------------------- *)

(* Fold literal-only subtrees with the same Value operations the
   tree-walker uses.  Anything that would raise at runtime is left
   unfolded so the error fires in its original place and order. *)
let rec static_eval (e : Ast.expr) : Value.t option =
  match e with
  | Ast.Int_lit n -> Some (Value.Int n)
  | Ast.Real_lit (x, _) -> Some (Value.Real x)
  | Ast.Logical_lit b -> Some (Value.Bool b)
  | Ast.Str_lit s -> Some (Value.Str s)
  | Ast.Unop (op, a) -> (
    match static_eval a with
    | None -> None
    | Some va -> (
      try
        Some
          (match op with
          | Ast.Neg -> Value.neg va
          | Ast.Pos -> va
          | Ast.Not -> Value.Bool (not (Value.to_bool va)))
      with Value.Runtime_error _ -> None))
  | Ast.Binop (op, a, b) -> (
    match (static_eval a, static_eval b) with
    | Some va, Some vb -> (
      try
        Some
          (match op with
          | Ast.Add -> Value.add va vb
          | Ast.Sub -> Value.sub va vb
          | Ast.Mul -> Value.mul va vb
          | Ast.Div -> Value.div va vb
          | Ast.Pow -> Value.pow va vb
          | Ast.Eq -> Value.Bool (Value.eq va vb)
          | Ast.Ne -> Value.Bool (not (Value.eq va vb))
          | Ast.Lt -> Value.Bool (Value.lt va vb)
          | Ast.Le -> Value.Bool (Value.le va vb)
          | Ast.Gt -> Value.Bool (Value.lt vb va)
          | Ast.Ge -> Value.Bool (Value.le vb va)
          | Ast.And -> Value.Bool (Value.to_bool va && Value.to_bool vb)
          | Ast.Or -> Value.Bool (Value.to_bool va || Value.to_bool vb)
          | Ast.Eqv -> Value.Bool (Value.to_bool va = Value.to_bool vb)
          | Ast.Neqv -> Value.Bool (Value.to_bool va <> Value.to_bool vb)
          | Ast.Concat -> (
            match (va, vb) with
            | Value.Str x, Value.Str y -> Value.Str (x ^ y)
            | _ -> raise (Value.Runtime_error "unfoldable")))
      with Value.Runtime_error _ -> None)
    | _ -> None)
  | Ast.Desig _ | Ast.Implied_do _ | Ast.Section _ -> None

(* --- expressions --------------------------------------------------------- *)

let has_section args =
  List.exists (function Ast.Section _ -> true | _ -> false) args

let rec compile_expr ctx (e : Ast.expr) : int =
  match static_eval e with
  | Some v ->
    let r = reg ctx in
    emit ctx (Iconst (r, v));
    r
  | None -> (
    match e with
    | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Str_lit _ ->
      assert false (* handled by static_eval *)
    | Ast.Unop (Ast.Pos, a) -> compile_expr ctx a
    | Ast.Unop (Ast.Neg, a) ->
      let ra = compile_expr ctx a in
      let r = reg ctx in
      emit ctx (Ineg (r, ra));
      r
    | Ast.Unop (Ast.Not, a) ->
      let ra = compile_expr ctx a in
      let r = reg ctx in
      emit ctx (Inot (r, ra));
      r
    | Ast.Binop (Ast.And, a, b) ->
      (* short-circuit, like the tree-walker's (&&) *)
      let ra = compile_expr ctx a in
      let d = reg ctx in
      let jfalse = emit_patchable ctx (Ijf (ra, 0)) in
      let rb = compile_expr ctx b in
      emit ctx (Ibool (d, rb));
      let jend = emit_patchable ctx (Ijmp 0) in
      patch ctx jfalse (here ctx);
      emit ctx (Iconst (d, Value.Bool false));
      patch ctx jend (here ctx);
      d
    | Ast.Binop (Ast.Or, a, b) ->
      let ra = compile_expr ctx a in
      let d = reg ctx in
      let jtrue = emit_patchable ctx (Ijt (ra, 0)) in
      let rb = compile_expr ctx b in
      emit ctx (Ibool (d, rb));
      let jend = emit_patchable ctx (Ijmp 0) in
      patch ctx jtrue (here ctx);
      emit ctx (Iconst (d, Value.Bool true));
      patch ctx jend (here ctx);
      d
    | Ast.Binop (op, a, b) ->
      let ra = compile_expr ctx a in
      let rb = compile_expr ctx b in
      let d = reg ctx in
      emit ctx (Ibinop (op, d, ra, rb));
      d
    | Ast.Desig parts -> compile_desig_load ctx parts
    | Ast.Implied_do _ | Ast.Section _ -> bail ())

and compile_subscripts ctx args =
  if has_section args then bail ();
  List.map (compile_expr ctx) args

and compile_elem_load ctx name path args =
  let idx = compile_subscripts ctx args in
  let aid = array_id ctx name path (List.length idx) in
  let d = reg ctx in
  (match idx with
  | [ i ] -> emit ctx (Iload1 (d, aid, i))
  | [ i; j ] -> emit ctx (Iload2 (d, aid, i, j))
  | _ -> emit ctx (IloadN (d, aid, Array.of_list idx)));
  d

(* Walk a designator chain against the compile-time scope.  Only the
   shapes the tree-walker's [eval_slot_access] supports without side
   effects are compiled; everything else bails. *)
and compile_slot_load ctx (slot : Storage.slot) name path args rest : int =
  match (slot.Storage.entry, args, rest) with
  | Storage.Scalar v, [], [] ->
    if slot.Storage.is_param then begin
      (* PARAMETER values are fixed by the declarations; inline them.
         (Any body that writes a parameter bails, keeping this sound.) *)
      match v with
      | Value.Arr _ -> bail ()
      | v ->
        let r = reg ctx in
        emit ctx (Iconst (r, v));
        r
    end
    else begin
      let sid = scalar_id ctx name path in
      let r = reg ctx in
      emit ctx (Iload (r, sid));
      r
    end
  | Storage.Array _, [], [] ->
    let aid = array_id ctx name path 0 in
    let r = reg ctx in
    emit ctx (Iload_arr (r, aid));
    r
  | Storage.Array _, _ :: _, [] -> compile_elem_load ctx name path args
  | Storage.Struct obj, [], (fname, fargs) :: frest -> (
    match Hashtbl.find_opt obj fname with
    | Some fslot ->
      compile_slot_load ctx fslot name (path @ [ fname ]) fargs frest
    | None -> bail ())
  | _ -> bail ()

and compile_desig_load ctx (parts : Ast.designator) : int =
  match parts with
  | [] -> bail ()
  | (name, args) :: rest -> (
    match Storage.lookup ctx.scope name with
    | Some slot -> compile_slot_load ctx slot name [] args rest
    | None -> (
      if name = "allocated" then bail ()
      else
        match
          Hashtbl.find_opt Intrinsics.tbl (String.lowercase_ascii name)
        with
        | Some f ->
          if rest <> [] then bail ();
          if has_section args then bail ();
          let argregs = List.map (compile_expr ctx) args in
          let d = reg ctx in
          emit ctx (Iintr (f, d, Array.of_list argregs));
          d
        | None -> bail () (* user function / unknown name *)))

(* --- lvalues ------------------------------------------------------------- *)

(* RHS register [rv] is already evaluated (the tree-walker evaluates
   the RHS before resolving the lvalue's subscripts). *)
let rec compile_slot_store ctx (slot : Storage.slot) name path args rest rv =
  match (slot.Storage.entry, args, rest) with
  | Storage.Scalar _, [], [] ->
    if slot.Storage.is_param then bail ();
    let sid = scalar_id ctx name path in
    emit ctx (Istore (sid, rv))
  | Storage.Array _, [], [] ->
    let aid = array_id ctx name path 0 in
    emit ctx (Istore_whole (aid, rv))
  | Storage.Array _, _ :: _, [] -> (
    let idx = compile_subscripts ctx args in
    let aid = array_id ctx name path (List.length idx) in
    match idx with
    | [ i ] -> emit ctx (Istore1 (aid, i, rv))
    | [ i; j ] -> emit ctx (Istore2 (aid, i, j, rv))
    | _ -> emit ctx (IstoreN (aid, Array.of_list idx, rv)))
  | Storage.Struct obj, [], (fname, fargs) :: frest -> (
    match Hashtbl.find_opt obj fname with
    | Some fslot ->
      compile_slot_store ctx fslot name (path @ [ fname ]) fargs frest rv
    | None -> bail ())
  | _ -> bail ()

let compile_desig_store ctx (parts : Ast.designator) rv =
  match parts with
  | [] -> bail ()
  | (name, args) :: rest -> (
    match Storage.lookup ctx.scope name with
    | Some slot -> compile_slot_store ctx slot name [] args rest rv
    | None -> bail () (* implicit declaration on assignment: tree-walk *))

(* --- statements ---------------------------------------------------------- *)

(* Release the CRITICAL locks held above [target_depth] (EXIT/CYCLE
   jumping out of a critical section must unlock on the way, like the
   tree-walker's Fun.protect unwinding does). *)
let emit_unlocks ctx target_depth =
  for _ = target_depth + 1 to ctx.crit do
    emit ctx Icrit_exit
  done

let rec compile_stmt ctx (s : Ast.stmt) =
  match s with
  | Ast.Assign (d, e) ->
    let rv = compile_expr ctx e in
    compile_desig_store ctx d rv
  | Ast.If_arith (c, s) ->
    let rc = compile_expr ctx c in
    let jend = emit_patchable ctx (Ijf (rc, 0)) in
    compile_stmt ctx s;
    patch ctx jend (here ctx)
  | Ast.If_block (branches, else_) ->
    let jends = ref [] in
    List.iter
      (fun (c, body) ->
        let rc = compile_expr ctx c in
        let jnext = emit_patchable ctx (Ijf (rc, 0)) in
        List.iter (compile_stmt ctx) body;
        jends := emit_patchable ctx (Ijmp 0) :: !jends;
        patch ctx jnext (here ctx))
      branches;
    List.iter (compile_stmt ctx) else_;
    List.iter (fun at -> patch ctx at (here ctx)) !jends
  | Ast.Do l ->
    if l.Ast.do_omp <> None then bail ();
    compile_serial_do ctx l
  | Ast.Do_while (c, body) ->
    let head = here ctx in
    let rc = compile_expr ctx c in
    let jend = emit_patchable ctx (Ijf (rc, 0)) in
    emit ctx Ipoll;
    let lctx =
      {
        exit_patches = [];
        cont_patches = [];
        cont_target = Some head;
        crit_at_entry = ctx.crit;
      }
    in
    ctx.loops <- lctx :: ctx.loops;
    List.iter (compile_stmt ctx) body;
    ctx.loops <- List.tl ctx.loops;
    emit ctx (Ijmp head);
    patch ctx jend (here ctx);
    List.iter (fun at -> patch ctx at (here ctx)) lctx.exit_patches
  | Ast.Exit -> (
    match ctx.loops with
    | lctx :: _ ->
      emit_unlocks ctx lctx.crit_at_entry;
      lctx.exit_patches <- emit_patchable ctx (Ijmp 0) :: lctx.exit_patches
    | [] ->
      (* EXIT from the loop the VM itself is driving *)
      emit_unlocks ctx 0;
      emit ctx Iexit)
  | Ast.Cycle -> (
    match ctx.loops with
    | lctx :: _ -> (
      emit_unlocks ctx lctx.crit_at_entry;
      match lctx.cont_target with
      | Some t -> emit ctx (Ijmp t)
      | None ->
        lctx.cont_patches <- emit_patchable ctx (Ijmp 0) :: lctx.cont_patches)
    | [] ->
      emit_unlocks ctx 0;
      ctx.end_patches <- emit_patchable ctx (Ijmp 0) :: ctx.end_patches)
  | Ast.Return -> emit ctx Ireturn
  | Ast.Stop msg -> emit ctx (Istop msg)
  | Ast.Continue | Ast.Comment _ | Ast.Omp_barrier -> ()
  | Ast.Print args ->
    let regs = List.map (compile_expr ctx) args in
    emit ctx (Iprint (Array.of_list regs))
  | Ast.Omp_atomic s ->
    if ctx.crit > 0 then bail ();
    emit ctx Icrit_enter;
    ctx.crit <- ctx.crit + 1;
    compile_stmt ctx s;
    ctx.crit <- ctx.crit - 1;
    emit ctx Icrit_exit
  | Ast.Omp_critical body ->
    if ctx.crit > 0 then bail ();
    emit ctx Icrit_enter;
    ctx.crit <- ctx.crit + 1;
    List.iter (compile_stmt ctx) body;
    ctx.crit <- ctx.crit - 1;
    emit ctx Icrit_exit
  | Ast.Call _ | Ast.Allocate _ | Ast.Deallocate _ -> bail ()

and compile_serial_do ctx (l : Ast.do_loop) =
  let sid =
    match Storage.lookup ctx.scope l.Ast.do_var with
    | Some slot ->
      if slot.Storage.is_param then bail ();
      scalar_id ctx l.Ast.do_var []
    | None -> bail () (* implicit DO-variable declaration: tree-walk *)
  in
  (* Bounds evaluate once, in the tree-walker's order (lo, hi, step),
     then the zero-step check fires before any iteration. *)
  let rlo = compile_expr ctx l.Ast.do_lo in
  emit ctx (Ito_int (rlo, rlo));
  let rhi = compile_expr ctx l.Ast.do_hi in
  emit ctx (Ito_int (rhi, rhi));
  let rstep =
    match l.Ast.do_step with
    | Some e ->
      let r = compile_expr ctx e in
      emit ctx (Ito_int (r, r));
      r
    | None ->
      let r = reg ctx in
      emit ctx (Iconst (r, Value.Int 1));
      r
  in
  emit ctx (Icheck_step rstep);
  let ri = reg ctx in
  emit ctx (Icopy (ri, rlo));
  let head = here ctx in
  let jfini =
    emit_patchable ctx
      (Iloop_test { ireg = ri; hireg = rhi; stepreg = rstep; target = 0 })
  in
  emit ctx Ipoll;
  emit ctx (Istore_raw (sid, ri));
  let lctx =
    {
      exit_patches = [];
      cont_patches = [];
      cont_target = None;
      crit_at_entry = ctx.crit;
    }
  in
  ctx.loops <- lctx :: ctx.loops;
  List.iter (compile_stmt ctx) l.Ast.do_body;
  ctx.loops <- List.tl ctx.loops;
  (* continue point: CYCLE lands on the increment *)
  let cont = here ctx in
  List.iter (fun at -> patch ctx at cont) lctx.cont_patches;
  emit ctx (Iinc (ri, rstep));
  emit ctx (Ijmp head);
  patch ctx jfini (here ctx);
  emit ctx (Iloop_fini { sid; loreg = rlo; hireg = rhi; stepreg = rstep });
  (* EXIT jumps here, past Iloop_fini: the DO variable retains its
     value at the point of EXIT (the satellite DO/EXIT fix, native to
     the bytecode path) *)
  List.iter (fun at -> patch ctx at (here ctx)) lctx.exit_patches

(* --- entry points -------------------------------------------------------- *)

let compile ~(scope : Storage.scope) (body : Ast.stmt list) : program option =
  let ctx =
    {
      scope;
      code = vec_create ();
      nregs = 0;
      scalar_ids = Hashtbl.create 16;
      scalar_refs = [];
      array_ids = Hashtbl.create 16;
      array_refs = [];
      loops = [];
      crit = 0;
      end_patches = [];
    }
  in
  match List.iter (compile_stmt ctx) body with
  | () ->
    List.iter (fun at -> patch ctx at (here ctx)) ctx.end_patches;
    Some
      {
        code = Array.sub ctx.code.items 0 ctx.code.len;
        nregs = ctx.nregs;
        scalars = Array.of_list (List.rev ctx.scalar_refs);
        arrays = Array.of_list (List.rev ctx.array_refs);
      }
  | exception Bail -> None

(* Compile cache, keyed by physical identity of the loop-body list:
   the parser builds each AST once, so the same loop always presents
   the same physical list, while structurally equal loops elsewhere
   get their own entries.  Shared across states (serve builds a state
   per call over one parsed AST) and guarded for worker-domain
   compiles of loops nested in tree-walked bodies. *)
module Phys_key = struct
  type t = Ast.stmt list

  let equal = ( == )
  let hash = Hashtbl.hash
end

module Phys_tbl = Hashtbl.Make (Phys_key)

let cache : program option Phys_tbl.t = Phys_tbl.create 64
let cache_mutex = Mutex.create ()

let compile_cached ~scope (body : Ast.stmt list) : program option =
  Mutex.lock cache_mutex;
  match Phys_tbl.find_opt cache body with
  | Some r ->
    Mutex.unlock cache_mutex;
    r
  | None -> (
    Mutex.unlock cache_mutex;
    let r = compile ~scope body in
    Mutex.lock cache_mutex;
    (* another domain may have won the race; keep the first insert *)
    match Phys_tbl.find_opt cache body with
    | Some prev ->
      Mutex.unlock cache_mutex;
      prev
    | None ->
      Phys_tbl.replace cache body r;
      Mutex.unlock cache_mutex;
      r)
