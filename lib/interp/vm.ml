(** Execution engine for {!Bytecode} programs.

    [bind] re-resolves a compiled program's name descriptors against
    the executing scope (the caller's scope for serial loops, a worker
    thread's private clone for parallel chunks, the callee scope for
    compiled subprograms), verifying that every binding still has the
    kind the compiler saw — and that everything compilation baked in
    from its representative scope still holds: folded PARAMETER values
    are compared against the executing slot, and names compiled as
    intrinsics or function references must still not resolve as
    variables.  Any mismatch returns [None] and the caller falls back
    to the tree-walker.

    When the program carries a typed variant (see
    {!Bytecode.specialize}) and the executing scope's current values
    match the inferred kinds, [bind] returns an unboxed typed frame
    instead; otherwise the boxed frame.  Both produce bit-identical
    results — the typed dispatch loop performs the same primitive
    operations in the same order, minus the [Value] boxing.

    [exec]/[texec] are the dispatch loops; the [run_*] drivers
    reproduce the tree-walker's loop protocols exactly, including the
    {!Glaf_runtime.Fault.check_current} cancellation poll every 256
    iterations and the Fortran DO-variable completion/EXIT rules. *)

open Glaf_fortran
open Glaf_runtime

(** Array binding: the backing {!Farray.t} plus pre-fetched bounds for
    the rank-1/rank-2 fast paths (column-major: the second subscript
    strides by the first dimension's size). *)
type abind = {
  ba : Farray.t;
  b_lo1 : int;
  b_hi1 : int;
  b_lo2 : int;
  b_hi2 : int;
  b_s1 : int;
}

type frame = {
  code : Bytecode.instr array;
  regs : Value.t array;
  scalars : Storage.slot array;
  arrays : abind array;
  raws : Storage.slot array;  (** whole-slot aliases for Icall *)
  env : Bytecode.callenv;
  printer : string -> unit;
  mutable tick : int;
  mutable crit : int;  (* CRITICAL locks held (0 or 1) *)
}

(** Typed array binding: the raw element bank (one of the two arrays
    is empty) plus the same pre-fetched bounds. *)
type tabind = {
  t_f : float array;
  t_i : int array;
  c_lo1 : int;
  c_hi1 : int;
  c_lo2 : int;
  c_hi2 : int;
  c_s1 : int;
}

type tframe = {
  tcode : Bytecode.tinstr array;
  fregs : float array;
  iregs : int array;
  tscalars : Storage.slot array;
  tarrays : tabind array;
  mutable ttick : int;
  mutable tcrit : int;
}

(** A bound program, ready to run: boxed or typed. *)
type bound = Bf of frame | Bt of tframe

let dummy_slot () =
  { Storage.entry = Storage.Scalar (Value.Int 0); base = Ast.Integer; is_param = false }

let dummy_abind =
  {
    ba = Farray.create Farray.Eint [| (1, 0) |];
    b_lo1 = 1;
    b_hi1 = 0;
    b_lo2 = 1;
    b_hi2 = 0;
    b_s1 = 0;
  }

let resolve_slot scope name path : Storage.slot option =
  match Storage.lookup scope name with
  | None -> None
  | Some slot ->
    let rec walk (slot : Storage.slot) = function
      | [] -> Some slot
      | f :: rest -> (
        match slot.Storage.entry with
        | Storage.Struct obj -> (
          match Hashtbl.find_opt obj f with
          | Some s -> walk s rest
          | None -> None)
        | _ -> None)
    in
    walk slot path

(* Typed construction aborts back to the boxed frame. *)
exception Fall

let try_typed (p : Bytecode.program) (tp : Bytecode.tprogram)
    (scalars : Storage.slot array) (arrays : abind array)
    (dovars : Storage.slot list) : tframe option =
  try
    Array.iteri
      (fun i (sl : Storage.slot) ->
        (match (tp.Bytecode.t_sty.(i), sl.Storage.entry) with
        | Bytecode.TF, Storage.Scalar (Value.Real _) -> ()
        | Bytecode.TI, Storage.Scalar (Value.Int _) -> ()
        | Bytecode.TB, Storage.Scalar (Value.Bool _) -> ()
        | _ -> raise Fall);
        (* the loop driver writes raw Ints into its DO-variable slot *)
        List.iter
          (fun dv ->
            if dv == sl && tp.Bytecode.t_sty.(i) <> Bytecode.TI then
              raise Fall)
          dovars)
      scalars;
    let tarrays =
      Array.map2
        (fun (aref : Bytecode.array_ref) ab ->
          let tf, ti =
            match (aref.Bytecode.aelem, ab.ba.Farray.data) with
            | Farray.Efloat, Farray.F fa when ab.ba.Farray.elem = Farray.Efloat
              ->
              (fa, [||])
            | Farray.Eint, Farray.I ia when ab.ba.Farray.elem = Farray.Eint ->
              ([||], ia)
            | _ -> raise Fall
          in
          {
            t_f = tf;
            t_i = ti;
            c_lo1 = ab.b_lo1;
            c_hi1 = ab.b_hi1;
            c_lo2 = ab.b_lo2;
            c_hi2 = ab.b_hi2;
            c_s1 = ab.b_s1;
          })
        p.Bytecode.arrays arrays
    in
    Some
      {
        tcode = tp.Bytecode.tcode;
        fregs = Array.make tp.Bytecode.t_nf 0.0;
        iregs = Array.make tp.Bytecode.t_ni 0;
        tscalars = scalars;
        tarrays;
        ttick = 0;
        tcrit = 0;
      }
  with Fall -> None

(** [dovars] lists the slots a loop driver will write raw Int values
    into (the DO variables); they gate the typed variant only. *)
let bind (p : Bytecode.program) (scope : Storage.scope) ~printer
    ~(env : Bytecode.callenv) ~(dovars : Storage.slot list) : bound option =
  let ok = ref true in
  let scalars =
    Array.map
      (fun (r : Bytecode.scalar_ref) ->
        match resolve_slot scope r.Bytecode.sname r.Bytecode.spath with
        | Some ({ Storage.entry = Storage.Scalar _; _ } as s) -> s
        | _ ->
          ok := false;
          dummy_slot ())
      p.Bytecode.scalars
  in
  let arrays =
    Array.map
      (fun (r : Bytecode.array_ref) ->
        match resolve_slot scope r.Bytecode.aname r.Bytecode.apath with
        | Some { Storage.entry = Storage.Array a; _ } ->
          let rank = Farray.rank a in
          if r.Bytecode.asubs > 0 && r.Bytecode.asubs <> rank then begin
            (* rank mismatch: let the tree-walker raise its error *)
            ok := false;
            dummy_abind
          end
          else begin
            let lo1, hi1 =
              if rank >= 1 then a.Farray.bounds.(0) else (1, 0)
            in
            let lo2, hi2 =
              if rank >= 2 then a.Farray.bounds.(1) else (1, 0)
            in
            {
              ba = a;
              b_lo1 = lo1;
              b_hi1 = hi1;
              b_lo2 = lo2;
              b_hi2 = hi2;
              b_s1 = Farray.dim_size (lo1, hi1);
            }
          end
        | _ ->
          ok := false;
          dummy_abind)
      p.Bytecode.arrays
  in
  let raws =
    Array.map
      (fun name ->
        match Storage.lookup scope name with
        | Some s -> s
        | None ->
          ok := false;
          dummy_slot ())
      p.Bytecode.raws
  in
  (* Everything compilation baked in from its representative scope
     must still hold here, or the generated code is for a different
     program: folded PARAMETER values... *)
  Array.iter
    (fun ((r : Bytecode.scalar_ref), v) ->
      match resolve_slot scope r.Bytecode.sname r.Bytecode.spath with
      | Some { Storage.entry = Storage.Scalar v'; _ } when compare v v' = 0 ->
        ()
      | _ -> ok := false)
    p.Bytecode.checks;
  (* ...and names resolved as intrinsics or user functions, which a
     variable of the same name would shadow. *)
  Array.iter
    (fun name -> if Storage.lookup scope name <> None then ok := false)
    p.Bytecode.negatives;
  if not !ok then None
  else
    match p.Bytecode.typed with
    | Some tp -> (
      match try_typed p tp scalars arrays dovars with
      | Some tf -> Some (Bt tf)
      | None ->
        Some
          (Bf
             {
               code = p.Bytecode.code;
               regs = Array.make (max 1 p.Bytecode.nregs) (Value.Int 0);
               scalars;
               arrays;
               raws;
               env;
               printer;
               tick = 0;
               crit = 0;
             }))
    | None ->
      Some
        (Bf
           {
             code = p.Bytecode.code;
             regs = Array.make (max 1 p.Bytecode.nregs) (Value.Int 0);
             scalars;
             arrays;
             raws;
             env;
             printer;
             tick = 0;
             crit = 0;
           })

(* Whole-array assignment, mirroring the tree-walker's assign_lvalue. *)
let store_whole a v =
  match v with
  | Value.Arr src when Farray.size src = Farray.size a ->
    let n = Farray.size a in
    for i = 0 to n - 1 do
      Farray.set_linear a i (Farray.get_linear src i)
    done
  | Value.Arr _ -> Storage.error "shape mismatch in whole-array assignment"
  | v -> Farray.fill a (Value.to_cell v)

let corrupt () = Storage.error "bytecode: register/slot invariant violated"

(* Generic binop semantics, shared with the typed fast paths in [exec]:
   exactly the tree-walker's [eval_binop] (Gt/Ge swap operands into
   lt/le, comparisons go through [Value.compare_values]' total order). *)
let binop_slow op va vb =
  match op with
  | Ast.Add -> Value.add va vb
  | Ast.Sub -> Value.sub va vb
  | Ast.Mul -> Value.mul va vb
  | Ast.Div -> Value.div va vb
  | Ast.Pow -> Value.pow va vb
  | Ast.Eq -> Value.Bool (Value.eq va vb)
  | Ast.Ne -> Value.Bool (not (Value.eq va vb))
  | Ast.Lt -> Value.Bool (Value.lt va vb)
  | Ast.Le -> Value.Bool (Value.le va vb)
  | Ast.Gt -> Value.Bool (Value.lt vb va)
  | Ast.Ge -> Value.Bool (Value.le vb va)
  | Ast.Eqv -> Value.Bool (Value.to_bool va = Value.to_bool vb)
  | Ast.Neqv -> Value.Bool (Value.to_bool va <> Value.to_bool vb)
  | Ast.Concat -> (
    match (va, vb) with
    | Value.Str x, Value.Str y -> Value.Str (x ^ y)
    | _ -> Storage.error "// expects character operands")
  | Ast.And | Ast.Or -> corrupt () (* compiled to jumps *)

(* One pass over the body.  Returns [true] when a top-level EXIT ended
   the pass (the caller translates that into its loop's exit
   protocol).  On any exception, CRITICAL locks still held are
   released before re-raising, like Fun.protect in the tree-walker. *)
let exec fr : bool =
  let code = fr.code in
  let regs = fr.regs in
  let scalars = fr.scalars in
  let arrays = fr.arrays in
  let n = Array.length code in
  let pc = ref 0 in
  let exited = ref false in
  (try
     while !pc < n do
       match Array.unsafe_get code !pc with
       | Bytecode.Iconst (d, v) ->
         regs.(d) <- v;
         incr pc
       | Bytecode.Icopy (d, s) ->
         regs.(d) <- regs.(s);
         incr pc
       | Bytecode.Iload (d, s) ->
         (match scalars.(s).Storage.entry with
         | Storage.Scalar v -> regs.(d) <- v
         | _ -> corrupt ());
         incr pc
       | Bytecode.Istore (s, r) ->
         let sl = scalars.(s) in
         sl.Storage.entry <-
           Storage.Scalar (Value.coerce sl.Storage.base regs.(r));
         incr pc
       | Bytecode.Istore_raw (s, r) ->
         scalars.(s).Storage.entry <- Storage.Scalar regs.(r);
         incr pc
       | Bytecode.Icoerce (base, d, s) ->
         regs.(d) <- Value.coerce base regs.(s);
         incr pc
       | Bytecode.Idummy_adjust s ->
         (* setup_scope's dummy-redeclaration quirk: declaring an
            aliased dummy REAL rewrites an Int value in place *)
         let sl = scalars.(s) in
         (match sl.Storage.entry with
         | Storage.Scalar v when Value.is_int v ->
           sl.Storage.entry <-
             Storage.Scalar (Value.Real (Value.to_float v))
         | _ -> ());
         incr pc
       | Bytecode.Iload_arr (d, a) ->
         regs.(d) <- Value.Arr arrays.(a).ba;
         incr pc
       | Bytecode.Istore_whole (a, r) ->
         store_whole arrays.(a).ba regs.(r);
         incr pc
       | Bytecode.Iload1 (d, a, ir) ->
         let ab = arrays.(a) in
         let i = Value.to_int regs.(ir) in
         if i < ab.b_lo1 || i > ab.b_hi1 then
           Farray.subscript_error i ab.b_lo1 ab.b_hi1 1;
         regs.(d) <- Value.of_cell (Farray.get_linear ab.ba (i - ab.b_lo1));
         incr pc
       | Bytecode.Iload2 (d, a, ir, jr) ->
         let ab = arrays.(a) in
         let i = Value.to_int regs.(ir) in
         if i < ab.b_lo1 || i > ab.b_hi1 then
           Farray.subscript_error i ab.b_lo1 ab.b_hi1 1;
         let j = Value.to_int regs.(jr) in
         if j < ab.b_lo2 || j > ab.b_hi2 then
           Farray.subscript_error j ab.b_lo2 ab.b_hi2 2;
         regs.(d) <-
           Value.of_cell
             (Farray.get_linear ab.ba
                (i - ab.b_lo1 + ((j - ab.b_lo2) * ab.b_s1)));
         incr pc
       | Bytecode.IloadN (d, a, irs) ->
         let idx = Array.map (fun r -> Value.to_int regs.(r)) irs in
         regs.(d) <- Value.of_cell (Farray.get arrays.(a).ba idx);
         incr pc
       | Bytecode.Istore1 (a, ir, r) ->
         let ab = arrays.(a) in
         let i = Value.to_int regs.(ir) in
         if i < ab.b_lo1 || i > ab.b_hi1 then
           Farray.subscript_error i ab.b_lo1 ab.b_hi1 1;
         Farray.set_linear ab.ba (i - ab.b_lo1) (Value.to_cell regs.(r));
         incr pc
       | Bytecode.Istore2 (a, ir, jr, r) ->
         let ab = arrays.(a) in
         let i = Value.to_int regs.(ir) in
         if i < ab.b_lo1 || i > ab.b_hi1 then
           Farray.subscript_error i ab.b_lo1 ab.b_hi1 1;
         let j = Value.to_int regs.(jr) in
         if j < ab.b_lo2 || j > ab.b_hi2 then
           Farray.subscript_error j ab.b_lo2 ab.b_hi2 2;
         Farray.set_linear ab.ba
           (i - ab.b_lo1 + ((j - ab.b_lo2) * ab.b_s1))
           (Value.to_cell regs.(r));
         incr pc
       | Bytecode.IstoreN (a, irs, r) ->
         let idx = Array.map (fun i -> Value.to_int regs.(i)) irs in
         Farray.set arrays.(a).ba idx (Value.to_cell regs.(r));
         incr pc
       | Bytecode.Ibinop (op, d, a, b) ->
         let va = regs.(a) and vb = regs.(b) in
         (* Typed fast paths skipping the [Value] dispatch layers; the
            results are bit-identical to [binop_slow] — [num2]/[div]
            reduce to the raw float/int op on same-typed operands, and
            comparisons use the same [compare]-based total order (so
            NaN ordering matches the tree-walker exactly). *)
         regs.(d) <-
           (match (va, vb) with
           | Value.Real x, Value.Real y -> (
             match op with
             | Ast.Add -> Value.Real (x +. y)
             | Ast.Sub -> Value.Real (x -. y)
             | Ast.Mul -> Value.Real (x *. y)
             | Ast.Div -> Value.Real (x /. y)
             | Ast.Pow -> Value.Real (x ** y)
             | Ast.Lt -> Value.Bool (Float.compare x y < 0)
             | Ast.Le -> Value.Bool (Float.compare x y <= 0)
             | Ast.Gt -> Value.Bool (Float.compare y x < 0)
             | Ast.Ge -> Value.Bool (Float.compare y x <= 0)
             | Ast.Eq -> Value.Bool (Float.compare x y = 0)
             | Ast.Ne -> Value.Bool (Float.compare x y <> 0)
             | _ -> binop_slow op va vb)
           | Value.Int x, Value.Int y -> (
             match op with
             | Ast.Add -> Value.Int (x + y)
             | Ast.Sub -> Value.Int (x - y)
             | Ast.Mul -> Value.Int (x * y)
             | Ast.Lt -> Value.Bool (x < y)
             | Ast.Le -> Value.Bool (x <= y)
             | Ast.Gt -> Value.Bool (y < x)
             | Ast.Ge -> Value.Bool (y <= x)
             | Ast.Eq -> Value.Bool (x = y)
             | Ast.Ne -> Value.Bool (x <> y)
             | _ -> binop_slow op va vb)
           | _ -> binop_slow op va vb);
         incr pc
       | Bytecode.Ineg (d, s) ->
         regs.(d) <- Value.neg regs.(s);
         incr pc
       | Bytecode.Inot (d, s) ->
         regs.(d) <- Value.Bool (not (Value.to_bool regs.(s)));
         incr pc
       | Bytecode.Ibool (d, s) ->
         regs.(d) <- Value.Bool (Value.to_bool regs.(s));
         incr pc
       | Bytecode.Ito_int (d, s) ->
         regs.(d) <- Value.Int (Value.to_int regs.(s));
         incr pc
       | Bytecode.Icheck_step r ->
         (match regs.(r) with
         | Value.Int 0 -> Storage.error "DO loop with zero step"
         | _ -> ());
         incr pc
       | Bytecode.Iintr (_, f, d, args) ->
         let vals =
           match Array.length args with
           | 1 -> [ regs.(args.(0)) ]
           | 2 -> [ regs.(args.(0)); regs.(args.(1)) ]
           | _ -> Array.fold_right (fun r acc -> regs.(r) :: acc) args []
         in
         regs.(d) <- f vals;
         incr pc
       | Bytecode.Icall cs ->
         let bindings =
           Array.fold_right
             (fun spec acc ->
               (match spec with
               | Bytecode.Arg_alias rid -> `Alias fr.raws.(rid)
               | Bytecode.Arg_value r -> `Copy (regs.(r), None)
               | Bytecode.Arg_elem { ae_arr; ae_idx; ae_val } ->
                 let ab = arrays.(ae_arr) in
                 let idx =
                   Array.map
                     (fun r ->
                       match regs.(r) with
                       | Value.Int i -> i
                       | _ -> corrupt ())
                     ae_idx
                 in
                 (* copy-out through the resolved lvalue, exactly the
                    tree-walker's writeback: bounds-checked Farray.set *)
                 let wb v = Farray.set ab.ba idx (Value.to_cell v) in
                 `Copy (regs.(ae_val), Some wb))
               :: acc)
             cs.Bytecode.cs_args []
         in
         (match
            fr.env.Bytecode.ce_call cs.Bytecode.cs_sub cs.Bytecode.cs_mod
              cs.Bytecode.cs_name bindings
          with
         | Some v -> if cs.Bytecode.cs_dst >= 0 then regs.(cs.Bytecode.cs_dst) <- v
         | None ->
           if cs.Bytecode.cs_dst >= 0 then
             Storage.error "subroutine %s used as a function"
               cs.Bytecode.cs_name);
         incr pc
       | Bytecode.Ijmp t -> pc := t
       | Bytecode.Ijf (r, t) ->
         if Value.to_bool regs.(r) then incr pc else pc := t
       | Bytecode.Ijt (r, t) ->
         if Value.to_bool regs.(r) then pc := t else incr pc
       | Bytecode.Iloop_test { ireg; hireg; stepreg; target } -> (
         match (regs.(ireg), regs.(hireg), regs.(stepreg)) with
         | Value.Int i, Value.Int hi, Value.Int step ->
           if (if step > 0 then i <= hi else i >= hi) then incr pc
           else pc := target
         | _ -> corrupt ())
       | Bytecode.Iinc (ir, sr) ->
         (match (regs.(ir), regs.(sr)) with
         | Value.Int i, Value.Int s -> regs.(ir) <- Value.Int (i + s)
         | _ -> corrupt ());
         incr pc
       | Bytecode.Iloop_fini { sid; loreg; hireg; stepreg } ->
         (match (regs.(loreg), regs.(hireg), regs.(stepreg)) with
         | Value.Int lo, Value.Int hi, Value.Int step ->
           scalars.(sid).Storage.entry <-
             Storage.Scalar
               (Value.Int (lo + (step * max 0 ((hi - lo + step) / step))))
         | _ -> corrupt ());
         incr pc
       | Bytecode.Ipoll ->
         fr.tick <- fr.tick + 1;
         if fr.tick land 255 = 0 then Fault.check_current ();
         incr pc
       | Bytecode.Iprint rs ->
         let parts =
           Array.fold_right
             (fun r acc -> Value.to_string regs.(r) :: acc)
             rs []
         in
         fr.printer (String.concat " " parts ^ "\n");
         incr pc
       | Bytecode.Icrit_enter ->
         Mutex.lock Omp.critical_mutex;
         fr.crit <- fr.crit + 1;
         incr pc
       | Bytecode.Icrit_exit ->
         fr.crit <- fr.crit - 1;
         Mutex.unlock Omp.critical_mutex;
         incr pc
       | Bytecode.Ireturn -> raise Storage.Sub_return
       | Bytecode.Istop msg -> raise (Storage.Stop_program msg)
       | Bytecode.Iexit ->
         exited := true;
         pc := n
     done
   with e ->
     while fr.crit > 0 do
       fr.crit <- fr.crit - 1;
       Mutex.unlock Omp.critical_mutex
     done;
     raise e);
  !exited

(* The unboxed dispatch loop.  Same structure as [exec]; every opcode
   is the primitive operation its boxed counterpart performs on the
   value kinds the binder verified, so the float/int results are
   bit-identical (DESIGN.md §16). *)
let texec (fr : tframe) : bool =
  let code = fr.tcode in
  let fregs = fr.fregs in
  let iregs = fr.iregs in
  let scalars = fr.tscalars in
  let arrays = fr.tarrays in
  let n = Array.length code in
  let pc = ref 0 in
  let exited = ref false in
  (try
     while !pc < n do
       match Array.unsafe_get code !pc with
       | Bytecode.TconstF (d, x) ->
         fregs.(d) <- x;
         incr pc
       | Bytecode.TconstI (d, x) ->
         iregs.(d) <- x;
         incr pc
       | Bytecode.TmovF (d, s) ->
         fregs.(d) <- fregs.(s);
         incr pc
       | Bytecode.TmovI (d, s) ->
         iregs.(d) <- iregs.(s);
         incr pc
       | Bytecode.TldsF (d, s) ->
         (match scalars.(s).Storage.entry with
         | Storage.Scalar (Value.Real x) -> fregs.(d) <- x
         | _ -> corrupt ());
         incr pc
       | Bytecode.TldsI (d, s) ->
         (match scalars.(s).Storage.entry with
         | Storage.Scalar (Value.Int x) -> iregs.(d) <- x
         | _ -> corrupt ());
         incr pc
       | Bytecode.TldsB (d, s) ->
         (match scalars.(s).Storage.entry with
         | Storage.Scalar (Value.Bool b) -> iregs.(d) <- (if b then 1 else 0)
         | _ -> corrupt ());
         incr pc
       | Bytecode.TstsF (s, r) ->
         scalars.(s).Storage.entry <- Storage.Scalar (Value.Real fregs.(r));
         incr pc
       | Bytecode.TstsF_ofI (s, r) ->
         scalars.(s).Storage.entry <-
           Storage.Scalar (Value.Real (float_of_int iregs.(r)));
         incr pc
       | Bytecode.TstsI (s, r) | Bytecode.TstsI_raw (s, r) ->
         scalars.(s).Storage.entry <- Storage.Scalar (Value.Int iregs.(r));
         incr pc
       | Bytecode.TstsI_ofF (s, r) ->
         scalars.(s).Storage.entry <-
           Storage.Scalar (Value.Int (int_of_float fregs.(r)));
         incr pc
       | Bytecode.TstsB (s, r) ->
         scalars.(s).Storage.entry <-
           Storage.Scalar (Value.Bool (iregs.(r) <> 0));
         incr pc
       | Bytecode.Ti2f (d, s) ->
         fregs.(d) <- float_of_int iregs.(s);
         incr pc
       | Bytecode.Tf2i (d, s) ->
         iregs.(d) <- int_of_float fregs.(s);
         incr pc
       | Bytecode.Tld1F (d, a, ir) ->
         let ab = arrays.(a) in
         let i = iregs.(ir) in
         if i < ab.c_lo1 || i > ab.c_hi1 then
           Farray.subscript_error i ab.c_lo1 ab.c_hi1 1;
         fregs.(d) <- Array.unsafe_get ab.t_f (i - ab.c_lo1);
         incr pc
       | Bytecode.Tld2F (d, a, ir, jr) ->
         let ab = arrays.(a) in
         let i = iregs.(ir) in
         if i < ab.c_lo1 || i > ab.c_hi1 then
           Farray.subscript_error i ab.c_lo1 ab.c_hi1 1;
         let j = iregs.(jr) in
         if j < ab.c_lo2 || j > ab.c_hi2 then
           Farray.subscript_error j ab.c_lo2 ab.c_hi2 2;
         fregs.(d) <-
           Array.unsafe_get ab.t_f
             (i - ab.c_lo1 + ((j - ab.c_lo2) * ab.c_s1));
         incr pc
       | Bytecode.Tld1I (d, a, ir) ->
         let ab = arrays.(a) in
         let i = iregs.(ir) in
         if i < ab.c_lo1 || i > ab.c_hi1 then
           Farray.subscript_error i ab.c_lo1 ab.c_hi1 1;
         iregs.(d) <- Array.unsafe_get ab.t_i (i - ab.c_lo1);
         incr pc
       | Bytecode.Tld2I (d, a, ir, jr) ->
         let ab = arrays.(a) in
         let i = iregs.(ir) in
         if i < ab.c_lo1 || i > ab.c_hi1 then
           Farray.subscript_error i ab.c_lo1 ab.c_hi1 1;
         let j = iregs.(jr) in
         if j < ab.c_lo2 || j > ab.c_hi2 then
           Farray.subscript_error j ab.c_lo2 ab.c_hi2 2;
         iregs.(d) <-
           Array.unsafe_get ab.t_i
             (i - ab.c_lo1 + ((j - ab.c_lo2) * ab.c_s1));
         incr pc
       | Bytecode.Tst1F (a, ir, r) ->
         let ab = arrays.(a) in
         let i = iregs.(ir) in
         if i < ab.c_lo1 || i > ab.c_hi1 then
           Farray.subscript_error i ab.c_lo1 ab.c_hi1 1;
         Array.unsafe_set ab.t_f (i - ab.c_lo1) fregs.(r);
         incr pc
       | Bytecode.Tst2F (a, ir, jr, r) ->
         let ab = arrays.(a) in
         let i = iregs.(ir) in
         if i < ab.c_lo1 || i > ab.c_hi1 then
           Farray.subscript_error i ab.c_lo1 ab.c_hi1 1;
         let j = iregs.(jr) in
         if j < ab.c_lo2 || j > ab.c_hi2 then
           Farray.subscript_error j ab.c_lo2 ab.c_hi2 2;
         Array.unsafe_set ab.t_f
           (i - ab.c_lo1 + ((j - ab.c_lo2) * ab.c_s1))
           fregs.(r);
         incr pc
       | Bytecode.Tst1I (a, ir, r) ->
         let ab = arrays.(a) in
         let i = iregs.(ir) in
         if i < ab.c_lo1 || i > ab.c_hi1 then
           Farray.subscript_error i ab.c_lo1 ab.c_hi1 1;
         Array.unsafe_set ab.t_i (i - ab.c_lo1) iregs.(r);
         incr pc
       | Bytecode.Tst2I (a, ir, jr, r) ->
         let ab = arrays.(a) in
         let i = iregs.(ir) in
         if i < ab.c_lo1 || i > ab.c_hi1 then
           Farray.subscript_error i ab.c_lo1 ab.c_hi1 1;
         let j = iregs.(jr) in
         if j < ab.c_lo2 || j > ab.c_hi2 then
           Farray.subscript_error j ab.c_lo2 ab.c_hi2 2;
         Array.unsafe_set ab.t_i
           (i - ab.c_lo1 + ((j - ab.c_lo2) * ab.c_s1))
           iregs.(r);
         incr pc
       | Bytecode.TaddF (d, a, b) ->
         fregs.(d) <- fregs.(a) +. fregs.(b);
         incr pc
       | Bytecode.TsubF (d, a, b) ->
         fregs.(d) <- fregs.(a) -. fregs.(b);
         incr pc
       | Bytecode.TmulF (d, a, b) ->
         fregs.(d) <- fregs.(a) *. fregs.(b);
         incr pc
       | Bytecode.TdivF (d, a, b) ->
         fregs.(d) <- fregs.(a) /. fregs.(b);
         incr pc
       | Bytecode.TpowF (d, a, b) ->
         fregs.(d) <- fregs.(a) ** fregs.(b);
         incr pc
       | Bytecode.TaddI (d, a, b) ->
         iregs.(d) <- iregs.(a) + iregs.(b);
         incr pc
       | Bytecode.TsubI (d, a, b) ->
         iregs.(d) <- iregs.(a) - iregs.(b);
         incr pc
       | Bytecode.TmulI (d, a, b) ->
         iregs.(d) <- iregs.(a) * iregs.(b);
         incr pc
       | Bytecode.TdivI (d, a, b) ->
         let y = iregs.(b) in
         if y = 0 then Value.error "integer division by zero";
         iregs.(d) <- iregs.(a) / y;
         incr pc
       | Bytecode.TmodI (d, a, b) ->
         let y = iregs.(b) in
         if y = 0 then Value.error "mod by zero";
         iregs.(d) <- iregs.(a) mod y;
         incr pc
       | Bytecode.TcmpF (c, d, a, b) ->
         let k = Float.compare fregs.(a) fregs.(b) in
         iregs.(d) <-
           (if
              match c with
              | Bytecode.Clt -> k < 0
              | Bytecode.Cle -> k <= 0
              | Bytecode.Cgt -> k > 0
              | Bytecode.Cge -> k >= 0
              | Bytecode.Ceq -> k = 0
              | Bytecode.Cne -> k <> 0
            then 1
            else 0);
         incr pc
       | Bytecode.TcmpI (c, d, a, b) ->
         let x = iregs.(a) and y = iregs.(b) in
         iregs.(d) <-
           (if
              match c with
              | Bytecode.Clt -> x < y
              | Bytecode.Cle -> x <= y
              | Bytecode.Cgt -> x > y
              | Bytecode.Cge -> x >= y
              | Bytecode.Ceq -> x = y
              | Bytecode.Cne -> x <> y
            then 1
            else 0);
         incr pc
       | Bytecode.TnegF (d, s) ->
         fregs.(d) <- -.fregs.(s);
         incr pc
       | Bytecode.TnegI (d, s) ->
         iregs.(d) <- -iregs.(s);
         incr pc
       | Bytecode.Tnot (d, s) ->
         iregs.(d) <- (if iregs.(s) = 0 then 1 else 0);
         incr pc
       | Bytecode.Tbool (d, s) ->
         iregs.(d) <- (if iregs.(s) <> 0 then 1 else 0);
         incr pc
       | Bytecode.Tcheck_step r ->
         if iregs.(r) = 0 then Storage.error "DO loop with zero step";
         incr pc
       | Bytecode.Tin1F (_, f, d, a) ->
         fregs.(d) <- f fregs.(a);
         incr pc
       | Bytecode.Tin2F (_, f, d, a, b) ->
         fregs.(d) <- f fregs.(a) fregs.(b);
         incr pc
       | Bytecode.TfniF (_, f, d, a) ->
         iregs.(d) <- f fregs.(a);
         incr pc
       | Bytecode.TmaxF (d, a, b) ->
         (* variadic_minmax's pick is polymorphic (>) on floats, i.e.
            Float.compare's total order (NaN below everything) *)
         let x = fregs.(a) and y = fregs.(b) in
         fregs.(d) <- (if Float.compare y x > 0 then y else x);
         incr pc
       | Bytecode.TminF (d, a, b) ->
         let x = fregs.(a) and y = fregs.(b) in
         fregs.(d) <- (if Float.compare y x < 0 then y else x);
         incr pc
       | Bytecode.TmaxI (d, a, b) ->
         (* the boxed pick compares to_floats, so go through
            float_of_int (observable for > 2^53 magnitudes) *)
         let x = iregs.(a) and y = iregs.(b) in
         iregs.(d) <-
           (if Float.compare (float_of_int y) (float_of_int x) > 0 then y
            else x);
         incr pc
       | Bytecode.TminI (d, a, b) ->
         let x = iregs.(a) and y = iregs.(b) in
         iregs.(d) <-
           (if Float.compare (float_of_int y) (float_of_int x) < 0 then y
            else x);
         incr pc
       | Bytecode.TabsF (d, s) ->
         fregs.(d) <- Float.abs fregs.(s);
         incr pc
       | Bytecode.TabsI (d, s) ->
         iregs.(d) <- abs iregs.(s);
         incr pc
       | Bytecode.Tjmp t -> pc := t
       | Bytecode.Tjf (r, t) -> if iregs.(r) <> 0 then incr pc else pc := t
       | Bytecode.Tjt (r, t) -> if iregs.(r) <> 0 then pc := t else incr pc
       | Bytecode.Tloop_test { t_ireg; t_hireg; t_stepreg; t_target } ->
         let i = iregs.(t_ireg)
         and hi = iregs.(t_hireg)
         and step = iregs.(t_stepreg) in
         if (if step > 0 then i <= hi else i >= hi) then incr pc
         else pc := t_target
       | Bytecode.Tinc (ir, sr) ->
         iregs.(ir) <- iregs.(ir) + iregs.(sr);
         incr pc
       | Bytecode.Tloop_fini { t_sid; t_loreg; t_hireg; t_stepreg } ->
         let lo = iregs.(t_loreg)
         and hi = iregs.(t_hireg)
         and step = iregs.(t_stepreg) in
         scalars.(t_sid).Storage.entry <-
           Storage.Scalar
             (Value.Int (lo + (step * max 0 ((hi - lo + step) / step))));
         incr pc
       | Bytecode.Tpoll ->
         fr.ttick <- fr.ttick + 1;
         if fr.ttick land 255 = 0 then Fault.check_current ();
         incr pc
       | Bytecode.Tcrit_enter ->
         Mutex.lock Omp.critical_mutex;
         fr.tcrit <- fr.tcrit + 1;
         incr pc
       | Bytecode.Tcrit_exit ->
         fr.tcrit <- fr.tcrit - 1;
         Mutex.unlock Omp.critical_mutex;
         incr pc
       | Bytecode.Treturn -> raise Storage.Sub_return
       | Bytecode.Texit ->
         exited := true;
         pc := n
     done
   with e ->
     while fr.tcrit > 0 do
       fr.tcrit <- fr.tcrit - 1;
       Mutex.unlock Omp.critical_mutex
     done;
     raise e);
  !exited

(* --- loop drivers -------------------------------------------------------- *)

(** Run a bound subprogram body once (RETURN raises [Sub_return],
    which the interpreter's call protocol catches). *)
let exec_bound (b : bound) : unit =
  match b with Bf fr -> ignore (exec fr) | Bt tf -> ignore (texec tf)

(** Serial DO: bounds were already evaluated by the interpreter.
    After normal completion the DO variable holds the loop-completed
    value; after a top-level EXIT it retains the value at the EXIT. *)
let run_do (b : bound) ~(slot : Storage.slot) ~lo ~hi ~step =
  let continue_ i = if step > 0 then i <= hi else i >= hi in
  let exited = ref false in
  let i = ref lo in
  (match b with
  | Bf fr ->
    while (not !exited) && continue_ !i do
      fr.tick <- fr.tick + 1;
      if fr.tick land 255 = 0 then Fault.check_current ();
      slot.Storage.entry <- Storage.Scalar (Value.Int !i);
      if exec fr then exited := true else i := !i + step
    done
  | Bt tf ->
    while (not !exited) && continue_ !i do
      tf.ttick <- tf.ttick + 1;
      if tf.ttick land 255 = 0 then Fault.check_current ();
      slot.Storage.entry <- Storage.Scalar (Value.Int !i);
      if texec tf then exited := true else i := !i + step
    done);
  if not !exited then
    slot.Storage.entry <-
      Storage.Scalar (Value.Int (lo + (step * max 0 ((hi - lo + step) / step))))

(** One chunk of a parallel DO.  A top-level EXIT escapes as
    [Loop_exit], exactly like the tree-walker's chunk body (where the
    pool surfaces it as a region error). *)
let run_chunk (b : bound) ~(slot : Storage.slot) ~clo ~chi =
  match b with
  | Bf fr ->
    for i = clo to chi do
      if (i - clo) land 255 = 255 then Fault.check_current ();
      slot.Storage.entry <- Storage.Scalar (Value.Int i);
      if exec fr then raise Storage.Loop_exit
    done
  | Bt tf ->
    for i = clo to chi do
      if (i - clo) land 255 = 255 then Fault.check_current ();
      slot.Storage.entry <- Storage.Scalar (Value.Int i);
      if texec tf then raise Storage.Loop_exit
    done

(** One chunk of a COLLAPSE(2) parallel DO over the linearized
    iteration space (unit steps, validated by the interpreter). *)
let run_collapse (b : bound) ~(oslot : Storage.slot) ~(islot : Storage.slot)
    ~lo ~ilo ~isize ~clo ~chi =
  match b with
  | Bf fr ->
    for k = clo to chi do
      if (k - clo) land 255 = 255 then Fault.check_current ();
      oslot.Storage.entry <-
        Storage.Scalar (Value.Int (lo + ((k - 1) / isize)));
      islot.Storage.entry <-
        Storage.Scalar (Value.Int (ilo + ((k - 1) mod isize)));
      if exec fr then raise Storage.Loop_exit
    done
  | Bt tf ->
    for k = clo to chi do
      if (k - clo) land 255 = 255 then Fault.check_current ();
      oslot.Storage.entry <-
        Storage.Scalar (Value.Int (lo + ((k - 1) / isize)));
      islot.Storage.entry <-
        Storage.Scalar (Value.Int (ilo + ((k - 1) mod isize)));
      if texec tf then raise Storage.Loop_exit
    done
