(** Execution engine for {!Bytecode} programs.

    [bind] re-resolves a compiled program's name descriptors against
    the executing scope (the caller's scope for serial loops, a worker
    thread's private clone for parallel chunks), verifying that every
    binding still has the kind the compiler saw; any mismatch returns
    [None] and the caller falls back to the tree-walker.  [exec] is
    the tight dispatch loop; the [run_*] drivers reproduce the
    tree-walker's loop protocols exactly, including the
    {!Glaf_runtime.Fault.check_current} cancellation poll every 256
    iterations and the Fortran DO-variable completion/EXIT rules. *)

open Glaf_fortran
open Glaf_runtime

(** Array binding: the backing {!Farray.t} plus pre-fetched bounds for
    the rank-1/rank-2 fast paths (column-major: the second subscript
    strides by the first dimension's size). *)
type abind = {
  ba : Farray.t;
  b_lo1 : int;
  b_hi1 : int;
  b_lo2 : int;
  b_hi2 : int;
  b_s1 : int;
}

type frame = {
  code : Bytecode.instr array;
  regs : Value.t array;
  scalars : Storage.slot array;
  arrays : abind array;
  printer : string -> unit;
  mutable tick : int;
  mutable crit : int;  (* CRITICAL locks held (0 or 1) *)
}

let dummy_slot () =
  { Storage.entry = Storage.Scalar (Value.Int 0); base = Ast.Integer; is_param = false }

let dummy_abind =
  {
    ba = Farray.create Farray.Eint [| (1, 0) |];
    b_lo1 = 1;
    b_hi1 = 0;
    b_lo2 = 1;
    b_hi2 = 0;
    b_s1 = 0;
  }

let resolve_slot scope name path : Storage.slot option =
  match Storage.lookup scope name with
  | None -> None
  | Some slot ->
    let rec walk (slot : Storage.slot) = function
      | [] -> Some slot
      | f :: rest -> (
        match slot.Storage.entry with
        | Storage.Struct obj -> (
          match Hashtbl.find_opt obj f with
          | Some s -> walk s rest
          | None -> None)
        | _ -> None)
    in
    walk slot path

let bind (p : Bytecode.program) (scope : Storage.scope) ~printer :
    frame option =
  let ok = ref true in
  let scalars =
    Array.map
      (fun (r : Bytecode.scalar_ref) ->
        match resolve_slot scope r.Bytecode.sname r.Bytecode.spath with
        | Some ({ Storage.entry = Storage.Scalar _; _ } as s) -> s
        | _ ->
          ok := false;
          dummy_slot ())
      p.Bytecode.scalars
  in
  let arrays =
    Array.map
      (fun (r : Bytecode.array_ref) ->
        match resolve_slot scope r.Bytecode.aname r.Bytecode.apath with
        | Some { Storage.entry = Storage.Array a; _ } ->
          let rank = Farray.rank a in
          if r.Bytecode.asubs > 0 && r.Bytecode.asubs <> rank then begin
            (* rank mismatch: let the tree-walker raise its error *)
            ok := false;
            dummy_abind
          end
          else begin
            let lo1, hi1 =
              if rank >= 1 then a.Farray.bounds.(0) else (1, 0)
            in
            let lo2, hi2 =
              if rank >= 2 then a.Farray.bounds.(1) else (1, 0)
            in
            {
              ba = a;
              b_lo1 = lo1;
              b_hi1 = hi1;
              b_lo2 = lo2;
              b_hi2 = hi2;
              b_s1 = Farray.dim_size (lo1, hi1);
            }
          end
        | _ ->
          ok := false;
          dummy_abind)
      p.Bytecode.arrays
  in
  if not !ok then None
  else
    Some
      {
        code = p.Bytecode.code;
        regs = Array.make (max 1 p.Bytecode.nregs) (Value.Int 0);
        scalars;
        arrays;
        printer;
        tick = 0;
        crit = 0;
      }

(* Whole-array assignment, mirroring the tree-walker's assign_lvalue. *)
let store_whole a v =
  match v with
  | Value.Arr src when Farray.size src = Farray.size a ->
    let n = Farray.size a in
    for i = 0 to n - 1 do
      Farray.set_linear a i (Farray.get_linear src i)
    done
  | Value.Arr _ -> Storage.error "shape mismatch in whole-array assignment"
  | v -> Farray.fill a (Value.to_cell v)

let corrupt () = Storage.error "bytecode: register/slot invariant violated"

(* Generic binop semantics, shared with the typed fast paths in [exec]:
   exactly the tree-walker's [eval_binop] (Gt/Ge swap operands into
   lt/le, comparisons go through [Value.compare_values]' total order). *)
let binop_slow op va vb =
  match op with
  | Ast.Add -> Value.add va vb
  | Ast.Sub -> Value.sub va vb
  | Ast.Mul -> Value.mul va vb
  | Ast.Div -> Value.div va vb
  | Ast.Pow -> Value.pow va vb
  | Ast.Eq -> Value.Bool (Value.eq va vb)
  | Ast.Ne -> Value.Bool (not (Value.eq va vb))
  | Ast.Lt -> Value.Bool (Value.lt va vb)
  | Ast.Le -> Value.Bool (Value.le va vb)
  | Ast.Gt -> Value.Bool (Value.lt vb va)
  | Ast.Ge -> Value.Bool (Value.le vb va)
  | Ast.Eqv -> Value.Bool (Value.to_bool va = Value.to_bool vb)
  | Ast.Neqv -> Value.Bool (Value.to_bool va <> Value.to_bool vb)
  | Ast.Concat -> (
    match (va, vb) with
    | Value.Str x, Value.Str y -> Value.Str (x ^ y)
    | _ -> Storage.error "// expects character operands")
  | Ast.And | Ast.Or -> corrupt () (* compiled to jumps *)

(* One pass over the body.  Returns [true] when a top-level EXIT ended
   the pass (the caller translates that into its loop's exit
   protocol).  On any exception, CRITICAL locks still held are
   released before re-raising, like Fun.protect in the tree-walker. *)
let exec fr : bool =
  let code = fr.code in
  let regs = fr.regs in
  let scalars = fr.scalars in
  let arrays = fr.arrays in
  let n = Array.length code in
  let pc = ref 0 in
  let exited = ref false in
  (try
     while !pc < n do
       match Array.unsafe_get code !pc with
       | Bytecode.Iconst (d, v) ->
         regs.(d) <- v;
         incr pc
       | Bytecode.Icopy (d, s) ->
         regs.(d) <- regs.(s);
         incr pc
       | Bytecode.Iload (d, s) ->
         (match scalars.(s).Storage.entry with
         | Storage.Scalar v -> regs.(d) <- v
         | _ -> corrupt ());
         incr pc
       | Bytecode.Istore (s, r) ->
         let sl = scalars.(s) in
         sl.Storage.entry <-
           Storage.Scalar (Value.coerce sl.Storage.base regs.(r));
         incr pc
       | Bytecode.Istore_raw (s, r) ->
         scalars.(s).Storage.entry <- Storage.Scalar regs.(r);
         incr pc
       | Bytecode.Iload_arr (d, a) ->
         regs.(d) <- Value.Arr arrays.(a).ba;
         incr pc
       | Bytecode.Istore_whole (a, r) ->
         store_whole arrays.(a).ba regs.(r);
         incr pc
       | Bytecode.Iload1 (d, a, ir) ->
         let ab = arrays.(a) in
         let i = Value.to_int regs.(ir) in
         if i < ab.b_lo1 || i > ab.b_hi1 then
           Farray.subscript_error i ab.b_lo1 ab.b_hi1 1;
         regs.(d) <- Value.of_cell (Farray.get_linear ab.ba (i - ab.b_lo1));
         incr pc
       | Bytecode.Iload2 (d, a, ir, jr) ->
         let ab = arrays.(a) in
         let i = Value.to_int regs.(ir) in
         if i < ab.b_lo1 || i > ab.b_hi1 then
           Farray.subscript_error i ab.b_lo1 ab.b_hi1 1;
         let j = Value.to_int regs.(jr) in
         if j < ab.b_lo2 || j > ab.b_hi2 then
           Farray.subscript_error j ab.b_lo2 ab.b_hi2 2;
         regs.(d) <-
           Value.of_cell
             (Farray.get_linear ab.ba
                (i - ab.b_lo1 + ((j - ab.b_lo2) * ab.b_s1)));
         incr pc
       | Bytecode.IloadN (d, a, irs) ->
         let idx = Array.map (fun r -> Value.to_int regs.(r)) irs in
         regs.(d) <- Value.of_cell (Farray.get arrays.(a).ba idx);
         incr pc
       | Bytecode.Istore1 (a, ir, r) ->
         let ab = arrays.(a) in
         let i = Value.to_int regs.(ir) in
         if i < ab.b_lo1 || i > ab.b_hi1 then
           Farray.subscript_error i ab.b_lo1 ab.b_hi1 1;
         Farray.set_linear ab.ba (i - ab.b_lo1) (Value.to_cell regs.(r));
         incr pc
       | Bytecode.Istore2 (a, ir, jr, r) ->
         let ab = arrays.(a) in
         let i = Value.to_int regs.(ir) in
         if i < ab.b_lo1 || i > ab.b_hi1 then
           Farray.subscript_error i ab.b_lo1 ab.b_hi1 1;
         let j = Value.to_int regs.(jr) in
         if j < ab.b_lo2 || j > ab.b_hi2 then
           Farray.subscript_error j ab.b_lo2 ab.b_hi2 2;
         Farray.set_linear ab.ba
           (i - ab.b_lo1 + ((j - ab.b_lo2) * ab.b_s1))
           (Value.to_cell regs.(r));
         incr pc
       | Bytecode.IstoreN (a, irs, r) ->
         let idx = Array.map (fun i -> Value.to_int regs.(i)) irs in
         Farray.set arrays.(a).ba idx (Value.to_cell regs.(r));
         incr pc
       | Bytecode.Ibinop (op, d, a, b) ->
         let va = regs.(a) and vb = regs.(b) in
         (* Typed fast paths skipping the [Value] dispatch layers; the
            results are bit-identical to [binop_slow] — [num2]/[div]
            reduce to the raw float/int op on same-typed operands, and
            comparisons use the same [compare]-based total order (so
            NaN ordering matches the tree-walker exactly). *)
         regs.(d) <-
           (match (va, vb) with
           | Value.Real x, Value.Real y -> (
             match op with
             | Ast.Add -> Value.Real (x +. y)
             | Ast.Sub -> Value.Real (x -. y)
             | Ast.Mul -> Value.Real (x *. y)
             | Ast.Div -> Value.Real (x /. y)
             | Ast.Pow -> Value.Real (x ** y)
             | Ast.Lt -> Value.Bool (Float.compare x y < 0)
             | Ast.Le -> Value.Bool (Float.compare x y <= 0)
             | Ast.Gt -> Value.Bool (Float.compare y x < 0)
             | Ast.Ge -> Value.Bool (Float.compare y x <= 0)
             | Ast.Eq -> Value.Bool (Float.compare x y = 0)
             | Ast.Ne -> Value.Bool (Float.compare x y <> 0)
             | _ -> binop_slow op va vb)
           | Value.Int x, Value.Int y -> (
             match op with
             | Ast.Add -> Value.Int (x + y)
             | Ast.Sub -> Value.Int (x - y)
             | Ast.Mul -> Value.Int (x * y)
             | Ast.Lt -> Value.Bool (x < y)
             | Ast.Le -> Value.Bool (x <= y)
             | Ast.Gt -> Value.Bool (y < x)
             | Ast.Ge -> Value.Bool (y <= x)
             | Ast.Eq -> Value.Bool (x = y)
             | Ast.Ne -> Value.Bool (x <> y)
             | _ -> binop_slow op va vb)
           | _ -> binop_slow op va vb);
         incr pc
       | Bytecode.Ineg (d, s) ->
         regs.(d) <- Value.neg regs.(s);
         incr pc
       | Bytecode.Inot (d, s) ->
         regs.(d) <- Value.Bool (not (Value.to_bool regs.(s)));
         incr pc
       | Bytecode.Ibool (d, s) ->
         regs.(d) <- Value.Bool (Value.to_bool regs.(s));
         incr pc
       | Bytecode.Ito_int (d, s) ->
         regs.(d) <- Value.Int (Value.to_int regs.(s));
         incr pc
       | Bytecode.Icheck_step r ->
         (match regs.(r) with
         | Value.Int 0 -> Storage.error "DO loop with zero step"
         | _ -> ());
         incr pc
       | Bytecode.Iintr (f, d, args) ->
         let vals =
           match Array.length args with
           | 1 -> [ regs.(args.(0)) ]
           | 2 -> [ regs.(args.(0)); regs.(args.(1)) ]
           | _ -> Array.fold_right (fun r acc -> regs.(r) :: acc) args []
         in
         regs.(d) <- f vals;
         incr pc
       | Bytecode.Ijmp t -> pc := t
       | Bytecode.Ijf (r, t) ->
         if Value.to_bool regs.(r) then incr pc else pc := t
       | Bytecode.Ijt (r, t) ->
         if Value.to_bool regs.(r) then pc := t else incr pc
       | Bytecode.Iloop_test { ireg; hireg; stepreg; target } -> (
         match (regs.(ireg), regs.(hireg), regs.(stepreg)) with
         | Value.Int i, Value.Int hi, Value.Int step ->
           if (if step > 0 then i <= hi else i >= hi) then incr pc
           else pc := target
         | _ -> corrupt ())
       | Bytecode.Iinc (ir, sr) ->
         (match (regs.(ir), regs.(sr)) with
         | Value.Int i, Value.Int s -> regs.(ir) <- Value.Int (i + s)
         | _ -> corrupt ());
         incr pc
       | Bytecode.Iloop_fini { sid; loreg; hireg; stepreg } ->
         (match (regs.(loreg), regs.(hireg), regs.(stepreg)) with
         | Value.Int lo, Value.Int hi, Value.Int step ->
           scalars.(sid).Storage.entry <-
             Storage.Scalar
               (Value.Int (lo + (step * max 0 ((hi - lo + step) / step))))
         | _ -> corrupt ());
         incr pc
       | Bytecode.Ipoll ->
         fr.tick <- fr.tick + 1;
         if fr.tick land 255 = 0 then Fault.check_current ();
         incr pc
       | Bytecode.Iprint rs ->
         let parts =
           Array.fold_right
             (fun r acc -> Value.to_string regs.(r) :: acc)
             rs []
         in
         fr.printer (String.concat " " parts ^ "\n");
         incr pc
       | Bytecode.Icrit_enter ->
         Mutex.lock Omp.critical_mutex;
         fr.crit <- fr.crit + 1;
         incr pc
       | Bytecode.Icrit_exit ->
         fr.crit <- fr.crit - 1;
         Mutex.unlock Omp.critical_mutex;
         incr pc
       | Bytecode.Ireturn -> raise Storage.Sub_return
       | Bytecode.Istop msg -> raise (Storage.Stop_program msg)
       | Bytecode.Iexit ->
         exited := true;
         pc := n
     done
   with e ->
     while fr.crit > 0 do
       fr.crit <- fr.crit - 1;
       Mutex.unlock Omp.critical_mutex
     done;
     raise e);
  !exited

(* --- loop drivers -------------------------------------------------------- *)

(** Serial DO: bounds were already evaluated by the interpreter.
    After normal completion the DO variable holds the loop-completed
    value; after a top-level EXIT it retains the value at the EXIT. *)
let run_do fr ~(slot : Storage.slot) ~lo ~hi ~step =
  let continue_ i = if step > 0 then i <= hi else i >= hi in
  let exited = ref false in
  let i = ref lo in
  while (not !exited) && continue_ !i do
    fr.tick <- fr.tick + 1;
    if fr.tick land 255 = 0 then Fault.check_current ();
    slot.Storage.entry <- Storage.Scalar (Value.Int !i);
    if exec fr then exited := true else i := !i + step
  done;
  if not !exited then
    slot.Storage.entry <-
      Storage.Scalar (Value.Int (lo + (step * max 0 ((hi - lo + step) / step))))

(** One chunk of a parallel DO.  A top-level EXIT escapes as
    [Loop_exit], exactly like the tree-walker's chunk body (where the
    pool surfaces it as a region error). *)
let run_chunk fr ~(slot : Storage.slot) ~clo ~chi =
  for i = clo to chi do
    if (i - clo) land 255 = 255 then Fault.check_current ();
    slot.Storage.entry <- Storage.Scalar (Value.Int i);
    if exec fr then raise Storage.Loop_exit
  done

(** One chunk of a COLLAPSE(2) parallel DO over the linearized
    iteration space (unit steps, validated by the interpreter). *)
let run_collapse fr ~(oslot : Storage.slot) ~(islot : Storage.slot) ~lo ~ilo
    ~isize ~clo ~chi =
  for k = clo to chi do
    if (k - clo) land 255 = 255 then Fault.check_current ();
    oslot.Storage.entry <- Storage.Scalar (Value.Int (lo + ((k - 1) / isize)));
    islot.Storage.entry <-
      Storage.Scalar (Value.Int (ilo + ((k - 1) mod isize)));
    if exec fr then raise Storage.Loop_exit
  done
