(** Interpreter for the Fortran subset, serial and parallel.

    This is the execution substrate standing in for gfortran/ifort +
    the OpenMP runtime in the paper's evaluation: it runs both the
    legacy kernels and the GLAF-generated code, honouring
    [!$OMP PARALLEL DO] (PRIVATE/FIRSTPRIVATE/REDUCTION/COLLAPSE/
    NUM_THREADS), [!$OMP ATOMIC] and [!$OMP CRITICAL] on OCaml domains.

    Semantics notes (documented simplifications):
    - COMMON blocks share storage by member {e name} within a block,
      not by byte offset; GLAF-generated and legacy code in this repo
      use consistent member names, which the integration checker
      verifies.
    - Whole-variable actual arguments alias the callee dummy (Fortran
      by-reference); array-element and expression actuals are
      copy-in/copy-out.
    - REAL is computed in double precision like REAL*8. *)

open Glaf_fortran
open Glaf_runtime

exception Fortran_error = Storage.Fortran_error

let error = Storage.error

(** {1 Storage}

    The representation lives in {!Storage} (shared with the bytecode
    compiler and VM); re-exported here so existing users of
    [Interp.entry] / [Interp.scope] keep working. *)

type entry = Storage.entry =
  | Scalar of Value.t
  | Array of Farray.t
  | Unalloc of Farray.elem * int  (** allocatable, not allocated: elem, rank *)
  | Struct of struct_obj
  | Struct_array of struct_obj array * (int * int) array

and slot = Storage.slot = {
  mutable entry : entry;
  base : Ast.base_type;
  is_param : bool;
}

and struct_obj = (string, slot) Hashtbl.t

type scope = Storage.scope = {
  vars : (string, slot) Hashtbl.t;
  used : scope list;  (** USEd module scopes, in USE order *)
  parent : scope option;  (** enclosing module scope *)
  implicit_none : bool;
}

type state = {
  cu : Ast.compilation_unit;
  subs : (string, Ast.subprogram * string option) Hashtbl.t;
      (** name -> subprogram, enclosing module *)
  module_scopes : (string, scope) Hashtbl.t;
  commons : (string, (string, slot) Hashtbl.t) Hashtbl.t;
  type_defs : (string, Ast.decl list) Hashtbl.t;
  saved : (string, slot) Hashtbl.t;  (** "sub.var" -> persistent slot *)
  alloc_count : int Atomic.t;
      (** ALLOCATE statements executed (reallocation study, Fig. 7) *)
  mutable printer : string -> unit;
  mutable default_threads : int;
  mutable default_sched : Sched.t;
      (** schedule used when a directive has no SCHEDULE clause *)
  mutable use_bytecode : bool;
      (** lower eligible loop bodies to bytecode (default); [false]
          forces the tree-walker everywhere ([--no-bytecode]) *)
  mutable bytecode_calls : bool;
      (** compile CALLs and user-function references into [Icall] /
          inline expansions (default); [false] reproduces the PR 6
          "mixed" path where every call boundary bails to the
          tree-walker (benchmark baseline, [--no-bytecode-calls]) *)
}

let lookup = Storage.lookup
let implicit_base = Storage.implicit_base

(** {1 Control-flow exceptions} *)

exception Loop_exit = Storage.Loop_exit
exception Loop_cycle = Storage.Loop_cycle
exception Sub_return = Storage.Sub_return
exception Stop_program = Storage.Stop_program

(** {1 State construction} *)

let make_state ?(printer = print_string) (cu : Ast.compilation_unit) =
  let subs = Hashtbl.create 32 in
  let type_defs = Hashtbl.create 16 in
  List.iter
    (fun u ->
      match u with
      | Ast.Module m ->
        List.iter
          (fun sp ->
            Hashtbl.replace subs (String.lowercase_ascii sp.Ast.sub_name)
              (sp, Some m.Ast.mod_name))
          m.Ast.mod_contains;
        List.iter
          (function
            | Ast.Type_def { type_name; fields } ->
              Hashtbl.replace type_defs type_name fields
            | _ -> ())
          m.Ast.mod_decls
      | Ast.Standalone sp ->
        Hashtbl.replace subs (String.lowercase_ascii sp.Ast.sub_name) (sp, None)
      | Ast.Main _ -> ())
    cu;
  {
    cu;
    subs;
    module_scopes = Hashtbl.create 8;
    commons = Hashtbl.create 8;
    type_defs;
    saved = Hashtbl.create 16;
    alloc_count = Atomic.make 0;
    printer;
    default_threads = Omp.num_threads ();
    default_sched = Sched.default;
    use_bytecode = true;
    bytecode_calls = true;
  }

let set_threads st n = st.default_threads <- max 1 n
let set_schedule st s = st.default_sched <- s
let set_bytecode st b = st.use_bytecode <- b
let set_bytecode_calls st b = st.bytecode_calls <- b

(** The compile-time environment handed to {!Bytecode}: namespaces the
    program cache and stats by compilation unit, exposes the
    subprogram table for call compilation, and lets the inliner peek
    at module scopes for shadowing checks.  Rebuilt per use (cheap:
    one record; [Bytecode.unit_key] is memoized on the AST). *)
let benv st : Bytecode.env =
  {
    Bytecode.e_unit = Bytecode.unit_key st.cu;
    e_subs = st.subs;
    e_calls = st.bytecode_calls;
    e_module_scope = Hashtbl.find_opt st.module_scopes;
  }
let allocations st = Atomic.get st.alloc_count
let reset_allocations st = Atomic.set st.alloc_count 0

(** {1 Slot creation from declarations} *)

let elem_of_base = Farray.elem_of_base

let rec make_struct st type_name ~eval_dim : struct_obj =
  match Hashtbl.find_opt st.type_defs type_name with
  | None -> error "unknown derived type %s" type_name
  | Some fields ->
    let obj = Hashtbl.create 8 in
    List.iter
      (fun d ->
        match d with
        | Ast.Var_decl { base; attrs; entities } ->
          List.iter
            (fun (e : Ast.entity) ->
              let slot = make_slot st base attrs e ~eval_dim in
              Hashtbl.replace obj e.Ast.ent_name slot)
            entities
        | _ -> ())
      fields;
    obj

and make_slot st base attrs (e : Ast.entity) ~eval_dim =
  let dims =
    match e.Ast.ent_dims with
    | Some d -> Some d
    | None ->
      List.find_map
        (function Ast.Dimension d -> Some d | _ -> None)
        attrs
  in
  let allocatable = List.mem Ast.Allocatable attrs in
  let is_param = List.mem Ast.Parameter attrs in
  let deferred =
    match e.Ast.ent_deferred with
    | Some r -> Some r
    | None ->
      if allocatable then Option.map List.length dims else None
  in
  let entry =
    match base with
    | Ast.Derived tname -> (
      match dims with
      | None -> Struct (make_struct st tname ~eval_dim)
      | Some ds ->
        let bounds =
          Array.of_list
            (List.map
               (fun (lo, hi) ->
                 let lo = match lo with Some l -> eval_dim l | None -> 1 in
                 (lo, eval_dim hi))
               ds)
        in
        let n =
          Array.fold_left (fun acc (lo, hi) -> acc * max 0 (hi - lo + 1)) 1 bounds
        in
        Struct_array (Array.init n (fun _ -> make_struct st tname ~eval_dim), bounds))
    | _ -> (
      let elem = elem_of_base base in
      match (deferred, dims) with
      | Some rank, _ when allocatable || e.Ast.ent_deferred <> None ->
        Unalloc (elem, rank)
      | _, None -> Scalar (Value.zero_of base)
      | _, Some ds ->
        let bounds =
          Array.of_list
            (List.map
               (fun (lo, hi) ->
                 let lo = match lo with Some l -> eval_dim l | None -> 1 in
                 (lo, eval_dim hi))
               ds)
        in
        Array (Farray.create elem bounds))
  in
  { entry; base; is_param }

(** {1 Expression evaluation} *)

let reduction_identity op (base : Ast.base_type) =
  match (op, base) with
  | Ast.Osum, Ast.Integer -> Value.Int 0
  | Ast.Osum, _ -> Value.Real 0.0
  | Ast.Oprod, Ast.Integer -> Value.Int 1
  | Ast.Oprod, _ -> Value.Real 1.0
  | Ast.Omax, Ast.Integer -> Value.Int min_int
  | Ast.Omax, _ -> Value.Real Float.neg_infinity
  | Ast.Omin, Ast.Integer -> Value.Int max_int
  | Ast.Omin, _ -> Value.Real Float.infinity

let combine_reduction op a b =
  match op with
  | Ast.Osum -> Value.add a b
  | Ast.Oprod -> Value.mul a b
  | Ast.Omax -> if Value.lt a b then b else a
  | Ast.Omin -> if Value.lt b a then b else a

let rec eval st scope (e : Ast.expr) : Value.t =
  match e with
  | Ast.Int_lit n -> Value.Int n
  | Ast.Real_lit (x, _) -> Value.Real x
  | Ast.Logical_lit b -> Value.Bool b
  | Ast.Str_lit s -> Value.Str s
  | Ast.Unop (Ast.Neg, a) -> Value.neg (eval st scope a)
  | Ast.Unop (Ast.Pos, a) -> eval st scope a
  | Ast.Unop (Ast.Not, a) -> Value.Bool (not (Value.to_bool (eval st scope a)))
  | Ast.Binop (op, a, b) -> eval_binop st scope op a b
  | Ast.Desig parts -> eval_desig st scope parts
  | Ast.Implied_do (body, v, lo, hi) ->
    let lo = Value.to_int (eval st scope lo)
    and hi = Value.to_int (eval st scope hi) in
    let slot = { entry = Scalar (Value.Int lo); base = Ast.Integer; is_param = false } in
    Hashtbl.replace scope.vars v slot;
    let vals =
      List.init
        (max 0 (hi - lo + 1))
        (fun i ->
          slot.entry <- Scalar (Value.Int (lo + i));
          Value.to_float (eval st scope body))
    in
    Hashtbl.remove scope.vars v;
    Value.Arr (Farray.of_float_list vals)
  | Ast.Section _ -> error "array section outside a subscript position"

and eval_binop st scope op a b =
  match op with
  | Ast.And ->
    Value.Bool
      (Value.to_bool (eval st scope a) && Value.to_bool (eval st scope b))
  | Ast.Or ->
    Value.Bool
      (Value.to_bool (eval st scope a) || Value.to_bool (eval st scope b))
  | Ast.Eqv ->
    Value.Bool
      (Value.to_bool (eval st scope a) = Value.to_bool (eval st scope b))
  | Ast.Neqv ->
    Value.Bool
      (Value.to_bool (eval st scope a) <> Value.to_bool (eval st scope b))
  | _ -> (
    let va = eval st scope a and vb = eval st scope b in
    match op with
    | Ast.Add -> Value.add va vb
    | Ast.Sub -> Value.sub va vb
    | Ast.Mul -> Value.mul va vb
    | Ast.Div -> Value.div va vb
    | Ast.Pow -> Value.pow va vb
    | Ast.Concat -> (
      match (va, vb) with
      | Value.Str x, Value.Str y -> Value.Str (x ^ y)
      | _ -> error "// expects character operands")
    | Ast.Eq -> Value.Bool (Value.eq va vb)
    | Ast.Ne -> Value.Bool (not (Value.eq va vb))
    | Ast.Lt -> Value.Bool (Value.lt va vb)
    | Ast.Le -> Value.Bool (Value.le va vb)
    | Ast.Gt -> Value.Bool (Value.lt vb va)
    | Ast.Ge -> Value.Bool (Value.le vb va)
    | Ast.And | Ast.Or | Ast.Eqv | Ast.Neqv -> assert false)

and eval_subscripts st scope args =
  (* returns either plain indices or a single rank-1 slice *)
  let has_section =
    List.exists (function Ast.Section _ -> true | _ -> false) args
  in
  if has_section then `Section args
  else `Indices (Array.of_list (List.map (fun a -> Value.to_int (eval st scope a)) args))

and eval_desig st scope (parts : Ast.designator) : Value.t =
  match parts with
  | [] -> error "empty designator"
  | (name, args) :: rest -> (
    match lookup scope name with
    | Some slot -> eval_slot_access st scope slot name args rest
    | None -> (
      (* allocated() needs slot-level access *)
      if name = "allocated" then
        match args with
        | [ Ast.Desig [ (vname, []) ] ] -> (
          match lookup scope vname with
          | Some { entry = Array _; _ } -> Value.Bool true
          | Some { entry = Unalloc _; _ } -> Value.Bool false
          | Some _ -> error "allocated() of non-allocatable %s" vname
          | None -> error "allocated() of unknown variable %s" vname)
        | _ -> error "allocated() expects one variable"
      else
        let vals = List.map (eval_arg_value st scope) args in
        match Intrinsics.apply name vals with
        | Some v -> v
        | None -> (
          match Hashtbl.find_opt st.subs name with
          | Some _ -> (
            if rest <> [] then error "function result has no parts";
            match call_subprogram st name args ~caller_scope:scope with
            | Some v -> v
            | None -> error "subroutine %s used as a function" name)
          | None ->
            error "unknown name %S (not a variable, intrinsic or function)"
              name)))

and eval_arg_value st scope (a : Ast.expr) : Value.t =
  match a with
  | Ast.Section _ -> error "stray section argument"
  | _ -> eval st scope a

and eval_slot_access st scope slot name args rest : Value.t =
  match (slot.entry, args, rest) with
  | Scalar v, [], [] -> v
  | Scalar _, _ :: _, _ -> error "%s is scalar but was subscripted" name
  | Scalar _, [], _ :: _ -> error "%s is scalar and has no parts" name
  | Array a, [], [] -> Value.Arr a
  | Array a, _ :: _, [] -> (
    match eval_subscripts st scope args with
    | `Indices idx -> Value.of_cell (Farray.get a idx)
    | `Section [ Ast.Section (lo, hi) ] ->
      let blo, bhi = a.Farray.bounds.(0) in
      let lo = match lo with Some e -> Value.to_int (eval st scope e) | None -> blo in
      let hi = match hi with Some e -> Value.to_int (eval st scope e) | None -> bhi in
      Value.Arr (Farray.slice1 a lo hi)
    | `Section _ -> error "only rank-1 sections are supported (%s)" name)
  | Array _, _, _ :: _ -> error "array element of %s has no parts" name
  | Unalloc _, _, _ -> error "%s used before allocation" name
  | Struct obj, [], (fname, fargs) :: frest ->
    let fslot =
      match Hashtbl.find_opt obj fname with
      | Some s -> s
      | None -> error "%s has no component %s" name fname
    in
    eval_slot_access st scope fslot (name ^ "%" ^ fname) fargs frest
  | Struct _, _, _ -> error "bad access to derived-type variable %s" name
  | Struct_array (objs, bounds), _ :: _, (fname, fargs) :: frest -> (
    match eval_subscripts st scope args with
    | `Indices idx ->
      let off = Farray.offset { Farray.elem = Farray.Eint; bounds; data = Farray.I [||] } idx in
      let obj = objs.(off) in
      let fslot =
        match Hashtbl.find_opt obj fname with
        | Some s -> s
        | None -> error "%s has no component %s" name fname
      in
      eval_slot_access st scope fslot (name ^ "%" ^ fname) fargs frest
    | `Section _ -> error "sections of derived-type arrays unsupported")
  | Struct_array _, _, _ -> error "derived-type array %s needs subscripts and a component" name

(** {1 Lvalue resolution} *)

and resolve_lvalue st scope (parts : Ast.designator) :
    [ `Slot of slot | `Elem of Farray.t * int array ] =
  match parts with
  | [] -> error "empty lvalue"
  | (name, args) :: rest -> (
    match lookup scope name with
    | None ->
      if scope.implicit_none then error "assignment to undeclared %s" name
      else begin
        (* implicit declaration on first assignment *)
        if args <> [] || rest <> [] then
          error "undeclared %s used with subscripts" name;
        let base = implicit_base name in
        let slot = { entry = Scalar (Value.zero_of base); base; is_param = false } in
        Hashtbl.replace scope.vars name slot;
        `Slot slot
      end
    | Some slot -> resolve_slot_lvalue st scope slot name args rest)

and resolve_slot_lvalue st scope slot name args rest =
  match (slot.entry, args, rest) with
  | (Scalar _ | Unalloc _), [], [] -> `Slot slot
  | Array a, _ :: _, [] -> (
    match eval_subscripts st scope args with
    | `Indices idx -> `Elem (a, idx)
    | `Section _ -> error "section assignment unsupported (%s)" name)
  | Array _, [], [] -> `Slot slot
  | Struct obj, [], (fname, fargs) :: frest ->
    let fslot =
      match Hashtbl.find_opt obj fname with
      | Some s -> s
      | None -> error "%s has no component %s" name fname
    in
    resolve_slot_lvalue st scope fslot (name ^ "%" ^ fname) fargs frest
  | Struct_array (objs, bounds), _ :: _, (fname, fargs) :: frest -> (
    match eval_subscripts st scope args with
    | `Indices idx ->
      let off = Farray.offset { Farray.elem = Farray.Eint; bounds; data = Farray.I [||] } idx in
      let obj = objs.(off) in
      let fslot =
        match Hashtbl.find_opt obj fname with
        | Some s -> s
        | None -> error "%s has no component %s" name fname
      in
      resolve_slot_lvalue st scope fslot (name ^ "%" ^ fname) fargs frest
    | `Section _ -> error "sections of derived-type arrays unsupported")
  | _ -> error "cannot assign to %s this way" name

and assign_lvalue slot_or_elem base v =
  match slot_or_elem with
  | `Slot slot -> (
    match slot.entry with
    | Scalar _ -> slot.entry <- Scalar (Value.coerce slot.base v)
    | Array a -> (
      (* whole-array assignment: scalar broadcast or array copy *)
      match v with
      | Value.Arr src when Farray.size src = Farray.size a ->
        let n = Farray.size a in
        for i = 0 to n - 1 do
          Farray.set_linear a i (Farray.get_linear src i)
        done
      | Value.Arr _ -> error "shape mismatch in whole-array assignment"
      | v -> Farray.fill a (Value.to_cell v))
    | Unalloc _ -> error "assignment to unallocated array"
    | Struct _ | Struct_array _ -> error "whole-structure assignment unsupported")
  | `Elem (a, idx) ->
    ignore base;
    Farray.set a idx (Value.to_cell v)

(** {1 Subprogram calls} *)

(* Evaluate an actual argument into a binding for the callee. *)
and bind_actual st scope (a : Ast.expr) :
    [ `Alias of slot | `Copy of Value.t * (Value.t -> unit) option ] =
  match a with
  | Ast.Desig [ (name, []) ] -> (
    match lookup scope name with
    | Some slot -> `Alias slot
    | None ->
      if scope.implicit_none then error "unknown argument %s" name
      else begin
        let base = implicit_base name in
        let slot = { entry = Scalar (Value.zero_of base); base; is_param = false } in
        Hashtbl.replace scope.vars name slot;
        `Alias slot
      end)
  | Ast.Desig parts -> (
    (* array element / struct component: copy-in/copy-out when it
       resolves to an lvalue; plain value when it is a function call *)
    match resolve_lvalue st scope parts with
    | lv ->
      let v = eval_desig st scope parts in
      let writeback v' =
        match lv with
        | `Slot slot -> assign_lvalue (`Slot slot) slot.base v'
        | `Elem _ -> assign_lvalue lv Ast.Real8 v'
      in
      `Copy (v, Some writeback)
    | exception Fortran_error _ ->
      `Copy (eval st scope a, None))
  | _ -> `Copy (eval st scope a, None)

and call_subprogram st name (actuals : Ast.expr list) ~caller_scope :
    Value.t option =
  let sp, mod_name =
    match Hashtbl.find_opt st.subs (String.lowercase_ascii name) with
    | Some x -> x
    | None -> error "call to unknown subprogram %s" name
  in
  if List.length actuals <> List.length sp.Ast.sub_args then
    error "%s called with %d arguments, expects %d" name (List.length actuals)
      (List.length sp.Ast.sub_args);
  let bindings = List.map (bind_actual st caller_scope) actuals in
  call_with_bindings st sp mod_name name bindings

(* The shared call tail: scope setup, body execution, copy-out and
   result extraction.  Reached from the tree-walker (via
   [call_subprogram], which evaluates actuals with [bind_actual]) and
   from a compiled [Icall] site (via [callenv], which marshals the
   same bindings out of VM registers) — both paths MUST run this exact
   sequence or compiled and tree-walked calls diverge. *)
and call_with_bindings st (sp : Ast.subprogram) mod_name name
    (bindings : Storage.arg_binding list) : Value.t option =
  let scope = setup_scope st sp mod_name bindings in
  (* run body *)
  (try run_sub_body st sp scope with Sub_return -> ());
  (* copy-out *)
  List.iter2
    (fun dummy binding ->
      match binding with
      | `Copy (_, Some writeback) -> (
        match Hashtbl.find_opt scope.vars dummy with
        | Some { entry = Scalar v; _ } -> writeback v
        | _ -> ())
      | `Copy (_, None) | `Alias _ -> ())
    sp.Ast.sub_args bindings;
  match sp.Ast.sub_kind with
  | `Subroutine -> None
  | `Function _ -> (
    match Hashtbl.find_opt scope.vars sp.Ast.sub_name with
    | Some { entry = Scalar v; _ } -> Some v
    | _ -> error "function %s did not set its result" name)

(* Execute a subprogram body: compiled once per subprogram (digest
   cached) when bytecode is on, re-bound against each call's scope;
   any compile bail or bind mismatch tree-walks this call only. *)
and run_sub_body st (sp : Ast.subprogram) scope =
  if not st.use_bytecode then exec_stmts st scope sp.Ast.sub_body
  else begin
    let env = benv st in
    match Bytecode.compile_sub env ~scope sp with
    | Some p, site -> (
      match
        Vm.bind p scope ~printer:st.printer ~env:(callenv st) ~dovars:[]
      with
      | Some b ->
        Bytecode.Stats.run site;
        Vm.exec_bound b
      | None ->
        Bytecode.Stats.bail site;
        exec_stmts st scope sp.Ast.sub_body)
    | None, site ->
      Bytecode.Stats.bail site;
      exec_stmts st scope sp.Ast.sub_body
  end

(* The VM's view of the interpreter: a compiled [Icall] hands its
   pre-marshalled bindings straight to the shared call tail (arity was
   checked at compile time). *)
and callenv st : Bytecode.callenv =
  {
    Bytecode.ce_call =
      (fun sp mod_name name bindings ->
        call_with_bindings st sp mod_name name bindings);
  }

and init_module st mod_name : scope =
  match Hashtbl.find_opt st.module_scopes mod_name with
  | Some s -> s
  | None -> (
    match Ast.find_module st.cu mod_name with
    | None -> error "USE of unknown module %s" mod_name
    | Some m ->
      (* initialize USEd modules first so their names resolve while
         evaluating this module's declarations *)
      let used =
        List.filter_map
          (function Ast.Use (other, _) -> Some (init_module st other) | _ -> None)
          m.Ast.mod_decls
      in
      let scope =
        {
          vars = Hashtbl.create 16;
          used;
          parent = None;
          implicit_none = true;
        }
      in
      (* register first to allow self-reference in contained subs *)
      Hashtbl.replace st.module_scopes mod_name scope;
      let eval_dim expr = Value.to_int (eval st scope expr) in
      List.iter
        (fun d ->
          match d with
          | Ast.Type_def { type_name; fields } ->
            Hashtbl.replace st.type_defs type_name fields
          | Ast.Var_decl { base; attrs; entities } ->
            List.iter
              (fun (e : Ast.entity) ->
                let slot = make_slot st base attrs e ~eval_dim in
                (match e.Ast.ent_init with
                | Some ie ->
                  let v = eval st scope ie in
                  slot.entry <- Scalar (Value.coerce base v)
                | None -> ());
                Hashtbl.replace scope.vars e.Ast.ent_name slot)
              entities
          | Ast.Use (other, _) ->
            ignore (init_module st other)
          | Ast.Common (block, names) ->
            bind_common st scope block names
          | Ast.Implicit_none | Ast.External _ | Ast.Decl_comment _ -> ())
        m.Ast.mod_decls;
      scope)

and bind_common st scope block names =
  let tbl =
    match Hashtbl.find_opt st.commons block with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 8 in
      Hashtbl.replace st.commons block t;
      t
  in
  (* Bind names now if the shared slot exists; otherwise record intent
     by binding lazily after declarations are processed (handled by the
     second pass in setup_scope / init_module callers). *)
  List.iter
    (fun n ->
      match Hashtbl.find_opt tbl n with
      | Some slot -> Hashtbl.replace scope.vars n slot
      | None -> ())
    names

and setup_scope st (sp : Ast.subprogram) mod_name bindings : scope =
  let parent = Option.map (init_module st) mod_name in
  let implicit_none =
    List.exists (fun d -> d = Ast.Implicit_none) sp.Ast.sub_decls
    || parent <> None
  in
  let used =
    List.filter_map
      (function Ast.Use (m, _) -> Some (init_module st m) | _ -> None)
      sp.Ast.sub_decls
  in
  let scope = { vars = Hashtbl.create 16; used; parent; implicit_none } in
  (* type defs local to the subprogram *)
  List.iter
    (function
      | Ast.Type_def { type_name; fields } ->
        Hashtbl.replace st.type_defs type_name fields
      | _ -> ())
    sp.Ast.sub_decls;
  (* bind arguments *)
  List.iter2
    (fun dummy binding ->
      match binding with
      | `Alias slot -> Hashtbl.replace scope.vars dummy slot
      | `Copy (v, _) ->
        let base =
          match v with
          | Value.Int _ -> Ast.Integer
          | Value.Real _ -> Ast.Real8
          | Value.Bool _ -> Ast.Logical
          | Value.Str _ -> Ast.Character None
          | Value.Arr _ -> Ast.Real8
        in
        let entry =
          match v with
          | Value.Arr a -> Array (Farray.copy a)
          | v -> Scalar v
        in
        Hashtbl.replace scope.vars dummy { entry; base; is_param = false })
    sp.Ast.sub_args bindings;
  (* COMMON membership: block per member name *)
  let common_of = Hashtbl.create 8 in
  List.iter
    (function
      | Ast.Common (block, names) ->
        List.iter (fun n -> Hashtbl.replace common_of n block) names
      | _ -> ())
    sp.Ast.sub_decls;
  let eval_dim expr = Value.to_int (eval st scope expr) in
  (* declarations in order *)
  List.iter
    (fun d ->
      match d with
      | Ast.Var_decl { base; attrs; entities } ->
        List.iter
          (fun (e : Ast.entity) ->
            let name = e.Ast.ent_name in
            if Hashtbl.mem scope.vars name then begin
              (* dummy argument redeclaration: adjust scalar numeric
                 type if needed (e.g. integer dummy bound) *)
              match (Hashtbl.find scope.vars name).entry with
              | Scalar v ->
                let slot = Hashtbl.find scope.vars name in
                if Value.is_int v && (base = Ast.Real || base = Ast.Real8)
                then slot.entry <- Scalar (Value.Real (Value.to_float v))
              | _ -> ()
            end
            else begin
              match Hashtbl.find_opt common_of name with
              | Some block ->
                let tbl = Hashtbl.find_opt st.commons block in
                let tbl =
                  match tbl with
                  | Some t -> t
                  | None ->
                    let t = Hashtbl.create 8 in
                    Hashtbl.replace st.commons block t;
                    t
                in
                let slot =
                  match Hashtbl.find_opt tbl name with
                  | Some s -> s
                  | None ->
                    let s = make_slot st base attrs e ~eval_dim in
                    Hashtbl.replace tbl name s;
                    s
                in
                Hashtbl.replace scope.vars name slot
              | None ->
                if List.mem Ast.Save attrs then begin
                  (* SAVE storage is per-domain (OpenMP THREADPRIVATE
                     semantics): each worker thread re-uses its own
                     instance, which is what the paper's SAVE +
                     threadprivate tweak achieves in FUN3D *)
                  let key =
                    Printf.sprintf "%s.%s#%d"
                      (String.lowercase_ascii sp.Ast.sub_name)
                      name
                      (Domain.self () :> int)
                  in
                  let slot =
                    Omp.critical (fun () ->
                        match Hashtbl.find_opt st.saved key with
                        | Some s -> s
                        | None ->
                          let s = make_slot st base attrs e ~eval_dim in
                          (match e.Ast.ent_init with
                          | Some ie ->
                            s.entry <-
                              Scalar (Value.coerce base (eval st scope ie))
                          | None -> ());
                          Hashtbl.replace st.saved key s;
                          s)
                  in
                  Hashtbl.replace scope.vars name slot
                end
                else begin
                  let slot = make_slot st base attrs e ~eval_dim in
                  (match e.Ast.ent_init with
                  | Some ie ->
                    slot.entry <- Scalar (Value.coerce base (eval st scope ie))
                  | None -> ());
                  Hashtbl.replace scope.vars name slot
                end
            end)
          entities
      | Ast.Common _ | Ast.Use _ | Ast.Implicit_none | Ast.Type_def _
      | Ast.External _ | Ast.Decl_comment _ ->
        ())
    sp.Ast.sub_decls;
  (* function result slot *)
  (match sp.Ast.sub_kind with
  | `Function rt ->
    if not (Hashtbl.mem scope.vars sp.Ast.sub_name) then begin
      let base = Option.value rt ~default:Ast.Real8 in
      Hashtbl.replace scope.vars sp.Ast.sub_name
        { entry = Scalar (Value.zero_of base); base; is_param = false }
    end
  | `Subroutine -> ());
  scope

(** {1 Statement execution} *)

and exec_stmts st scope stmts = List.iter (exec_stmt st scope) stmts

and exec_stmt st scope (s : Ast.stmt) =
  match s with
  | Ast.Assign (d, e) ->
    let v = eval st scope e in
    let lv = resolve_lvalue st scope d in
    let base = match lv with `Slot slot -> slot.base | `Elem _ -> Ast.Real8 in
    assign_lvalue lv base v
  | Ast.If_arith (c, s) ->
    if Value.to_bool (eval st scope c) then exec_stmt st scope s
  | Ast.If_block (branches, else_) ->
    let rec go = function
      | [] -> exec_stmts st scope else_
      | (c, body) :: rest ->
        if Value.to_bool (eval st scope c) then exec_stmts st scope body
        else go rest
    in
    go branches
  | Ast.Do l -> (
    match l.Ast.do_omp with
    | None -> exec_do_serial st scope l
    | Some d -> exec_do_parallel st scope l d)
  | Ast.Do_while (c, body) ->
    let tick = ref 0 in
    (try
       while Value.to_bool (eval st scope c) do
         incr tick;
         if !tick land 255 = 0 then Fault.check_current ();
         try exec_stmts st scope body with Loop_cycle -> ()
       done
     with Loop_exit -> ())
  | Ast.Call (name, args) -> (
    match Hashtbl.find_opt st.subs (String.lowercase_ascii name) with
    | Some _ -> ignore (call_subprogram st name args ~caller_scope:scope)
    | None -> error "CALL to unknown subroutine %s" name)
  | Ast.Return -> raise Sub_return
  | Ast.Exit -> raise Loop_exit
  | Ast.Cycle -> raise Loop_cycle
  | Ast.Continue -> ()
  | Ast.Stop msg -> raise (Stop_program msg)
  | Ast.Allocate allocs ->
    List.iter
      (fun (d, exprs) ->
        let name = Ast.desig_name d in
        match lookup scope name with
        | None -> error "ALLOCATE of unknown variable %s" name
        | Some slot ->
          let bounds =
            Array.of_list
              (List.map
                 (fun e ->
                   match e with
                   | Ast.Section (Some lo, Some hi) ->
                     ( Value.to_int (eval st scope lo),
                       Value.to_int (eval st scope hi) )
                   | e -> (1, Value.to_int (eval st scope e)))
                 exprs)
          in
          let elem =
            match slot.entry with
            | Unalloc (elem, rank) ->
              if rank <> Array.length bounds then
                error "ALLOCATE rank mismatch for %s" name;
              elem
            | Array a -> a.Farray.elem
            | _ -> error "%s is not allocatable" name
          in
          Atomic.incr st.alloc_count;
          slot.entry <- Array (Farray.create elem bounds))
      allocs
  | Ast.Deallocate ds ->
    List.iter
      (fun d ->
        let name = Ast.desig_name d in
        match lookup scope name with
        | Some slot -> (
          match slot.entry with
          | Array a ->
            slot.entry <- Unalloc (a.Farray.elem, Farray.rank a)
          | Unalloc _ -> error "DEALLOCATE of unallocated %s" name
          | _ -> error "%s is not allocatable" name)
        | None -> error "DEALLOCATE of unknown variable %s" name)
      ds
  | Ast.Print args ->
    let parts = List.map (fun e -> Value.to_string (eval st scope e)) args in
    st.printer (String.concat " " parts ^ "\n")
  | Ast.Omp_atomic s -> Omp.atomic_update (fun () -> exec_stmt st scope s)
  | Ast.Omp_critical body -> Omp.critical (fun () -> exec_stmts st scope body)
  | Ast.Omp_barrier -> ()  (* fork-join model: chunks join at loop end *)
  | Ast.Comment _ -> ()

and exec_do_serial st scope (l : Ast.do_loop) =
  let lo = Value.to_int (eval st scope l.Ast.do_lo)
  and hi = Value.to_int (eval st scope l.Ast.do_hi)
  and step =
    match l.Ast.do_step with
    | Some e -> Value.to_int (eval st scope e)
    | None -> 1
  in
  if step = 0 then error "DO loop with zero step";
  let slot =
    match lookup scope l.Ast.do_var with
    | Some s -> s
    | None ->
      if scope.implicit_none then error "undeclared DO variable %s" l.Ast.do_var
      else begin
        let s = { entry = Scalar (Value.Int 0); base = Ast.Integer; is_param = false } in
        Hashtbl.replace scope.vars l.Ast.do_var s;
        s
      end
  in
  (* Hot path: lower the body to bytecode once (cached on its
     structural digest) and bind it to this scope; any unsupported
     construct or binding mismatch falls back to the tree-walk below,
     counted against the loop's stats site. *)
  let compiled =
    if st.use_bytecode then begin
      match Bytecode.compile_body (benv st) ~scope ~what:"do" l.Ast.do_body with
      | Some p, site -> (
        match
          Vm.bind p scope ~printer:st.printer ~env:(callenv st)
            ~dovars:[ slot ]
        with
        | Some b ->
          Bytecode.Stats.run site;
          Some b
        | None ->
          Bytecode.Stats.bail site;
          None)
      | None, site ->
        Bytecode.Stats.bail site;
        None
    end
    else None
  in
  match compiled with
  | Some b -> Vm.run_do b ~slot ~lo ~hi ~step
  | None ->
    let continue_ i = if step > 0 then i <= hi else i >= hi in
    (* Cooperative cancellation: poll the ambient deadline token every
       256 iterations so a runaway serial loop honours --timeout-ms
       (parallel loops poll at pool chunk boundaries and below). *)
    let tick = ref 0 in
    (try
       let i = ref lo in
       while continue_ !i do
         incr tick;
         if !tick land 255 = 0 then Fault.check_current ();
         slot.entry <- Scalar (Value.Int !i);
         (try exec_stmts st scope l.Ast.do_body with Loop_cycle -> ());
         i := !i + step
       done;
       (* normal completion only: after EXIT the DO variable retains
          its value at the point of EXIT (F2018 8.1.6.6) *)
       slot.entry <-
         Scalar (Value.Int (lo + (step * max 0 ((hi - lo + step) / step))))
     with Loop_exit -> ())

(* Clone a scope for one worker thread: same slot objects (shared),
   except names listed private/firstprivate/reduction and the loop
   variables, which get fresh slots. *)
and clone_scope_for_thread scope ~fresh =
  let vars = Hashtbl.copy scope.vars in
  List.iter (fun (name, slot) -> Hashtbl.replace vars name slot) fresh;
  { scope with vars }

and private_copy_of_slot st scope name =
  match lookup scope name with
  | None ->
    (* e.g. an inner loop index not declared: implicit integer *)
    { entry = Scalar (Value.Int 0); base = implicit_base name; is_param = false }
  | Some slot ->
    let entry =
      match slot.entry with
      | Scalar v -> Scalar (Value.coerce slot.base v |> fun _ -> Value.zero_of slot.base)
      | Array a -> Array (Farray.create a.Farray.elem a.Farray.bounds)
      | Unalloc (e, r) -> Unalloc (e, r)
      | Struct _ | Struct_array _ ->
        error "PRIVATE derived-type variables unsupported (%s)" name
    in
    ignore st;
    { entry; base = slot.base; is_param = false }

and firstprivate_copy_of_slot scope name =
  match lookup scope name with
  | None -> error "FIRSTPRIVATE of unknown variable %s" name
  | Some slot ->
    let entry =
      match slot.entry with
      | Scalar v -> Scalar v
      | Array a -> Array (Farray.copy a)
      | e -> e
    in
    { entry; base = slot.base; is_param = false }

and exec_do_parallel st scope (l : Ast.do_loop) (d : Ast.omp_do) =
  let lo = Value.to_int (eval st scope l.Ast.do_lo)
  and hi = Value.to_int (eval st scope l.Ast.do_hi) in
  (match l.Ast.do_step with
  | Some (Ast.Int_lit 1) | None -> ()
  | Some _ -> error "parallel DO requires unit step");
  let threads =
    match d.Ast.omp_num_threads with
    | Some e -> Value.to_int (eval st scope e)
    | None -> st.default_threads
  in
  let sched =
    match d.Ast.omp_schedule with
    | Some Ast.Static -> Sched.Static
    | Some (Ast.Static_chunk k) -> Sched.Static_chunked k
    | Some (Ast.Dynamic k) -> Sched.Dynamic k
    | Some (Ast.Guided k) -> Sched.Guided k
    | None -> st.default_sched
  in
  (* collapse(2): fuse with the unique inner loop *)
  let collapse2 =
    if d.Ast.omp_collapse >= 2 then begin
      match l.Ast.do_body with
      | [ Ast.Do inner ] when inner.Ast.do_omp = None ->
        (* the linearization below strides the inner space by 1, so a
           non-unit inner step would silently compute wrong indices;
           reject it like the outer-step check above *)
        (match inner.Ast.do_step with
        | Some (Ast.Int_lit 1) | None -> ()
        | Some _ -> error "COLLAPSE(2) requires a unit-step inner DO");
        Some inner
      | _ -> error "COLLAPSE(2) requires a singly-nested inner DO"
    end
    else None
  in
  (* One reduction accumulator per *thread*, reused across every chunk
     that thread executes, so each thread folds its iterations in
     execution order.  With a single thread the accumulator is seeded
     from the shared variable's current value and written back verbatim
     at the end, which makes an annotated loop bit-identical to its
     serial execution under every schedule — the property the lift
     verifier relies on. *)
  let serial_team = threads <= 1 in
  let red_by_thread : (int, (string * slot) list) Hashtbl.t =
    Hashtbl.create 8
  in
  let reduction_slots_for t =
    if d.Ast.omp_reduction = [] then []
    else
      Omp.critical (fun () ->
          match Hashtbl.find_opt red_by_thread t with
          | Some red -> red
          | None ->
            let red =
              List.concat_map
                (fun (op, names) ->
                  List.map
                    (fun n ->
                      let base, seed =
                        match lookup scope n with
                        | Some { entry = Scalar v; base; _ } when serial_team
                          ->
                          (base, v)
                        | Some s -> (s.base, reduction_identity op s.base)
                        | None ->
                          let base = implicit_base n in
                          (base, reduction_identity op base)
                      in
                      (n, { entry = Scalar seed; base; is_param = false }))
                    names)
                d.Ast.omp_reduction
            in
            Hashtbl.add red_by_thread t red;
            red)
  in
  let run_chunk body_of_thread t clo chi =
    let fresh =
      (* loop variable(s) always private *)
      let loop_vars =
        l.Ast.do_var
        :: (match collapse2 with Some i -> [ i.Ast.do_var ] | None -> [])
      in
      let priv =
        List.map
          (fun n -> (n, private_copy_of_slot st scope n))
          (List.sort_uniq String.compare (loop_vars @ d.Ast.omp_private))
      in
      let fpriv =
        List.map
          (fun n -> (n, firstprivate_copy_of_slot scope n))
          d.Ast.omp_firstprivate
      in
      priv @ fpriv @ reduction_slots_for t
    in
    let tscope = clone_scope_for_thread scope ~fresh in
    body_of_thread tscope clo chi
  in
  (* Compile the chunk body once per loop (cached on its digest); each
     worker binds against its private scope clone and falls back per
     chunk when a binding does not resolve.  Stats count chunk
     executions: runs are chunks that ran compiled, bails are chunks
     that tree-walked. *)
  let compile_chunk_body body_stmts =
    if st.use_bytecode then
      let p, site =
        Bytecode.compile_body (benv st) ~scope ~what:"omp-do" body_stmts
      in
      Some (p, site)
    else None
  in
  (match collapse2 with
  | None ->
    let prog = compile_chunk_body l.Ast.do_body in
    let body tscope clo chi =
      let slot = Hashtbl.find tscope.vars l.Ast.do_var in
      let fr =
        match prog with
        | Some (Some p, site) -> (
          match
            Vm.bind p tscope ~printer:st.printer ~env:(callenv st)
              ~dovars:[ slot ]
          with
          | Some b ->
            Bytecode.Stats.run site;
            Some b
          | None ->
            Bytecode.Stats.bail site;
            None)
        | Some (None, site) ->
          Bytecode.Stats.bail site;
          None
        | None -> None
      in
      match fr with
      | Some b -> Vm.run_chunk b ~slot ~clo ~chi
      | None ->
        for i = clo to chi do
          if (i - clo) land 255 = 255 then Fault.check_current ();
          slot.entry <- Scalar (Value.Int i);
          try exec_stmts st tscope l.Ast.do_body with Loop_cycle -> ()
        done
    in
    Omp.parallel_for ~threads ~sched ~lo ~hi (run_chunk body)
  | Some inner ->
    let ilo = Value.to_int (eval st scope inner.Ast.do_lo)
    and ihi = Value.to_int (eval st scope inner.Ast.do_hi) in
    let isize = max 0 (ihi - ilo + 1) in
    let osize = max 0 (hi - lo + 1) in
    let total = osize * isize in
    if total > 0 then begin
      let prog = compile_chunk_body inner.Ast.do_body in
      let body tscope clo chi =
        let oslot = Hashtbl.find tscope.vars l.Ast.do_var in
        let islot = Hashtbl.find tscope.vars inner.Ast.do_var in
        let fr =
          match prog with
          | Some (Some p, site) -> (
            match
              Vm.bind p tscope ~printer:st.printer ~env:(callenv st)
                ~dovars:[ oslot; islot ]
            with
            | Some b ->
              Bytecode.Stats.run site;
              Some b
            | None ->
              Bytecode.Stats.bail site;
              None)
          | Some (None, site) ->
            Bytecode.Stats.bail site;
            None
          | None -> None
        in
        match fr with
        | Some b -> Vm.run_collapse b ~oslot ~islot ~lo ~ilo ~isize ~clo ~chi
        | None ->
          for k = clo to chi do
            if (k - clo) land 255 = 255 then Fault.check_current ();
            let oi = lo + ((k - 1) / isize) in
            let ii = ilo + ((k - 1) mod isize) in
            oslot.entry <- Scalar (Value.Int oi);
            islot.entry <- Scalar (Value.Int ii);
            try exec_stmts st tscope inner.Ast.do_body with Loop_cycle -> ()
          done
      in
      Omp.parallel_for ~threads ~sched ~lo:1 ~hi:total (run_chunk body)
    end);
  (* combine reductions deterministically, in thread order *)
  let per_thread =
    Hashtbl.fold (fun t red acc -> (t, red) :: acc) red_by_thread []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (op, names) ->
      List.iter
        (fun n ->
          let shared =
            match lookup scope n with
            | Some s -> s
            | None -> error "reduction variable %s not in scope" n
          in
          let initial =
            match shared.entry with
            | Scalar v -> v
            | _ -> error "reduction variable %s is not scalar" n
          in
          let final =
            if serial_team then
              (* seeded from the shared value: the single thread's
                 accumulator already IS the serial result *)
              match per_thread with
              | [ (_, red) ] -> (
                match List.assoc_opt n red with
                | Some { entry = Scalar v; _ } -> v
                | _ -> initial)
              | _ -> initial (* zero-trip loop: no chunk ever ran *)
            else
              List.fold_left
                (fun acc (_, red) ->
                  match List.assoc_opt n red with
                  | Some { entry = Scalar v; _ } -> combine_reduction op acc v
                  | _ -> acc)
                initial per_thread
          in
          shared.entry <- Scalar (Value.coerce shared.base final))
        names)
    d.Ast.omp_reduction

(** {1 Entry points} *)

(** Run subroutine [name] with [actuals] given as expression strings
    parsed in an empty caller scope, or — more usefully — with
    pre-built bindings via {!call_with}. *)
let call st name (actuals : Ast.expr list) =
  let caller_scope =
    { vars = Hashtbl.create 4; used = []; parent = None; implicit_none = false }
  in
  call_subprogram st name actuals ~caller_scope

(** Run the [Main] program unit, if present. *)
let run_main st =
  match
    List.find_map
      (function Ast.Main m -> Some m | _ -> None)
      st.cu
  with
  | None -> error "no PROGRAM unit"
  | Some m ->
    let sp =
      {
        Ast.sub_name = m.Ast.main_name;
        sub_kind = `Subroutine;
        sub_args = [];
        sub_decls = m.Ast.main_decls;
        sub_body = m.Ast.main_body;
      }
    in
    Hashtbl.replace st.subs (String.lowercase_ascii m.Ast.main_name) (sp, None);
    (try ignore (call st m.Ast.main_name []) with Stop_program _ -> ())

(** Read a scalar module variable (for test harnesses). *)
let module_scalar st ~module_name ~var =
  let scope = init_module st module_name in
  match Hashtbl.find_opt scope.vars var with
  | Some { entry = Scalar v; _ } -> v
  | Some _ -> error "%s.%s is not scalar" module_name var
  | None -> error "no variable %s in module %s" module_name var

(** Read a whole-array module variable. *)
let module_array st ~module_name ~var =
  let scope = init_module st module_name in
  match Hashtbl.find_opt scope.vars var with
  | Some { entry = Array a; _ } -> a
  | Some _ -> error "%s.%s is not an allocated array" module_name var
  | None -> error "no variable %s in module %s" module_name var

(** Write a scalar module variable. *)
let set_module_scalar st ~module_name ~var v =
  let scope = init_module st module_name in
  match Hashtbl.find_opt scope.vars var with
  | Some slot -> slot.entry <- Scalar (Value.coerce slot.base v)
  | None -> error "no variable %s in module %s" module_name var

(** Read a COMMON-block member. *)
let common_scalar st ~block ~var =
  match Hashtbl.find_opt st.commons block with
  | None -> error "no COMMON block %s" block
  | Some tbl -> (
    match Hashtbl.find_opt tbl var with
    | Some { entry = Scalar v; _ } -> v
    | Some _ -> error "/%s/ %s is not scalar" block var
    | None -> error "no member %s in COMMON /%s/" var block)

(** {1 Bytecode observability}

    Re-exports of {!Bytecode.Stats} so front-ends report coverage
    without reaching into the compiler module. *)

type bytecode_row = Bytecode.Stats.row = {
  r_unit : string;
  r_id : string;
  r_label : string;
  r_reason : string option;  (** first bailing construct, if any *)
  r_runs : int;  (** executions that ran compiled *)
  r_bails : int;  (** executions that fell back to the tree-walker *)
}

let bytecode_stats () = Bytecode.Stats.snapshot ()

(** Only the rows belonging to [st]'s compilation unit. *)
let bytecode_stats_for st =
  let u = Bytecode.unit_key st.cu in
  List.filter (fun r -> r.r_unit = u) (Bytecode.Stats.snapshot ())

let reset_bytecode_stats () = Bytecode.Stats.reset ()

(** Read an array-valued field of a scalar TYPE variable in a module
    (e.g. SARB's [fo%fuir]). *)
let module_struct_array st ~module_name ~var ~field =
  let scope = init_module st module_name in
  match Hashtbl.find_opt scope.vars var with
  | Some { entry = Struct obj; _ } -> (
    match Hashtbl.find_opt obj field with
    | Some { entry = Array a; _ } -> a
    | Some _ -> error "%s%%%s is not an array" var field
    | None -> error "%s has no component %s" var field)
  | Some _ -> error "%s.%s is not a TYPE variable" module_name var
  | None -> error "no variable %s in module %s" module_name var
