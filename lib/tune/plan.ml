(** Persistent tuning plans: the autotuner's cached winners.

    A plan is a list of entries keyed by (loop structural digest ×
    machine profile).  The digest ({!Variant.loop_digest}) is the MD5
    of the loop's directive-stripped AST, so an entry survives
    re-analysis but goes stale the moment the loop body changes; the
    machine key pins the plan to the host class it was measured on.

    Plans round-trip through a small hand-written JSON format
    ([version] / [machine] / [entries]); {!load} returns structured
    errors — a corrupted, truncated, or wrong-version file is a
    report, never a crash.  {!apply} rewrites a freshly compiled unit
    with the cached winners and keeps hit/miss/stale counters so
    callers (CLI, listener status) can prove the cache was consulted
    instead of re-searched. *)

open Glaf_fortran

type entry = {
  pe_loop : string;  (** human label, ["sub#ordinal"] *)
  pe_digest : string;  (** {!Variant.loop_digest} of the loop tuned *)
  pe_variant : Variant.t;  (** the measured winner *)
  pe_default : Variant.t;  (** the as-compiled default it beat (or tied) *)
  pe_ms : float;  (** winner wall time, ms *)
  pe_default_ms : float;
  pe_serial_ms : float;
  pe_verified : int;  (** configurations proved bit-identical to serial *)
  pe_model_agrees : bool;  (** static cost model picked a near-winner *)
}

type stats = {
  mutable st_applies : int;  (** units rewritten through this plan *)
  mutable st_hits : int;  (** loops rewritten from a cached entry *)
  mutable st_misses : int;  (** directive loops with no matching entry *)
  mutable st_stale : int;  (** entries whose digest matched no loop *)
}

type t = {
  p_machine : string;
  p_entries : entry list;
  p_stats : stats;  (** application counters, not persisted *)
  p_mutex : Mutex.t;  (** guards [p_stats]; plans are applied concurrently *)
}

let current_version = 1

let make ~machine entries =
  {
    p_machine = machine;
    p_entries = entries;
    p_stats = { st_applies = 0; st_hits = 0; st_misses = 0; st_stale = 0 };
    p_mutex = Mutex.create ();
  }

(** Key naming the machine class a plan is valid for.  Plans tuned on
    a host with a different core count are rejected wholesale — a
    schedule winner at 8 cores says nothing at 2. *)
let machine_key (m : Glaf_perf.Machine.t) = m.Glaf_perf.Machine.name

let default_machine_key () = machine_key (Glaf_perf.Machine.interp_host ())

let find t digest =
  List.find_opt (fun e -> e.pe_digest = digest) t.p_entries

(* --- applying a plan ----------------------------------------------------- *)

let map_unit_loops f (cu : Ast.compilation_unit) : Ast.compilation_unit =
  let map_sub sp = { sp with Ast.sub_body = Ast.map_loops f sp.Ast.sub_body } in
  List.map
    (function
      | Ast.Module m ->
        Ast.Module { m with Ast.mod_contains = List.map map_sub m.Ast.mod_contains }
      | Ast.Standalone sp -> Ast.Standalone (map_sub sp)
      | Ast.Main m ->
        Ast.Main { m with Ast.main_body = Ast.map_loops f m.Ast.main_body })
    cu

let all_bodies (cu : Ast.compilation_unit) : Ast.stmt list list =
  List.concat_map
    (function
      | Ast.Module m -> List.map (fun sp -> sp.Ast.sub_body) m.Ast.mod_contains
      | Ast.Standalone sp -> [ sp.Ast.sub_body ]
      | Ast.Main m -> [ m.Ast.main_body ])
    cu

(** Rewrite every directive-carrying loop of [cu] whose structural
    digest has a cached winner; count hits, misses (directive loops
    with no entry, left at their default), and stale entries (digests
    matching no loop in [cu] — the source changed since tuning; they
    are ignored, never misapplied).  When [machine] differs from the
    plan's, [cu] is returned untouched and every entry counts stale. *)
let apply ?machine t (cu : Ast.compilation_unit) : Ast.compilation_unit =
  let machine =
    match machine with Some m -> m | None -> default_machine_key ()
  in
  let seen = Hashtbl.create 16 in
  let cu' =
    if machine <> t.p_machine then cu
    else
      let rewrite (l : Ast.do_loop) =
        match l.Ast.do_omp with
        | None -> l
        | Some _ -> (
          let digest = Variant.loop_digest l in
          match find t digest with
          | Some e ->
            Hashtbl.replace seen digest ();
            Variant.apply e.pe_variant l
          | None -> l)
      in
      map_unit_loops rewrite cu
  in
  let hits = Hashtbl.length seen in
  let misses =
    if machine <> t.p_machine then 0
    else
      List.fold_left
        (fun acc body ->
          List.fold_left
            (fun acc l ->
              match l.Ast.do_omp with
              | Some _ when find t (Variant.loop_digest l) = None -> acc + 1
              | _ -> acc)
            acc (Ast.loops body))
        0 (all_bodies cu)
  in
  let stale =
    List.length
      (List.filter (fun e -> not (Hashtbl.mem seen e.pe_digest)) t.p_entries)
  in
  Mutex.lock t.p_mutex;
  t.p_stats.st_applies <- t.p_stats.st_applies + 1;
  t.p_stats.st_hits <- t.p_stats.st_hits + hits;
  t.p_stats.st_misses <- t.p_stats.st_misses + misses;
  t.p_stats.st_stale <- t.p_stats.st_stale + stale;
  Mutex.unlock t.p_mutex;
  cu'

let stats t =
  Mutex.lock t.p_mutex;
  let s =
    {
      st_applies = t.p_stats.st_applies;
      st_hits = t.p_stats.st_hits;
      st_misses = t.p_stats.st_misses;
      st_stale = t.p_stats.st_stale;
    }
  in
  Mutex.unlock t.p_mutex;
  s

let stats_json t =
  let s = stats t in
  Printf.sprintf
    "{\"machine\":\"%s\",\"entries\":%d,\"applies\":%d,\"hits\":%d,\"misses\":%d,\"stale\":%d}"
    (Glaf_runtime.Fault.json_escape t.p_machine)
    (List.length t.p_entries) s.st_applies s.st_hits s.st_misses s.st_stale

(* --- JSON writer --------------------------------------------------------- *)

let float_str f =
  (* shortest representation that round-trips a float *)
  let s = Printf.sprintf "%.17g" f in
  let short = Printf.sprintf "%.12g" f in
  if float_of_string short = f then short else s

let entry_to_json e =
  let str s = "\"" ^ Glaf_runtime.Fault.json_escape s ^ "\"" in
  String.concat ","
    [
      Printf.sprintf "{\"loop\":%s" (str e.pe_loop);
      Printf.sprintf "\"digest\":%s" (str e.pe_digest);
      Printf.sprintf "\"variant\":%s" (str (Variant.to_string e.pe_variant));
      Printf.sprintf "\"default\":%s" (str (Variant.to_string e.pe_default));
      Printf.sprintf "\"ms\":%s" (float_str e.pe_ms);
      Printf.sprintf "\"default_ms\":%s" (float_str e.pe_default_ms);
      Printf.sprintf "\"serial_ms\":%s" (float_str e.pe_serial_ms);
      Printf.sprintf "\"verified\":%d" e.pe_verified;
      Printf.sprintf "\"model_agrees\":%b}" e.pe_model_agrees;
    ]

let to_json t =
  Printf.sprintf
    "{\"version\":%d,\"machine\":\"%s\",\"entries\":[\n%s\n]}\n"
    current_version
    (Glaf_runtime.Fault.json_escape t.p_machine)
    (String.concat ",\n" (List.map entry_to_json t.p_entries))

(* --- JSON reader --------------------------------------------------------- *)

(* Minimal recursive-descent JSON, enough for plan files (and for
   tests poking at listener status).  Any syntax error is reported
   with its byte offset. *)
module Json = struct
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of v list
    | Obj of (string * v) list

  exception Bad of int * string

  let parse (s : string) : (v, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let bad msg = raise (Bad (!pos, msg)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> incr pos
      | _ -> bad (Printf.sprintf "expected '%c'" c)
    in
    let lit word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then (
        pos := !pos + String.length word;
        v)
      else bad (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then bad "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            incr pos;
            (if !pos >= n then bad "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 't' -> Buffer.add_char b '\t'
               | 'r' -> Buffer.add_char b '\r'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'u' ->
                 if !pos + 4 >= n then bad "bad \\u escape"
                 else (
                   let code =
                     try int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                     with _ -> bad "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* plan files only ever escape control chars *)
                   if code < 0x80 then Buffer.add_char b (Char.chr code)
                   else Buffer.add_char b '?')
               | c -> bad (Printf.sprintf "bad escape '\\%c'" c));
            incr pos;
            go ()
          | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && num_char s.[!pos] do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> bad "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> bad "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (
          incr pos;
          Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              fields ((k, v) :: acc)
            | Some '}' ->
              incr pos;
              List.rev ((k, v) :: acc)
            | _ -> bad "expected ',' or '}'"
          in
          Obj (fields [])
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (
          incr pos;
          List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              items (v :: acc)
            | Some ']' ->
              incr pos;
              List.rev (v :: acc)
            | _ -> bad "expected ',' or ']'"
          in
          List (items [])
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some 'n' -> lit "null" Null
      | Some _ -> parse_number ()
    in
    try
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing bytes at offset %d" !pos)
      else Ok v
    with Bad (at, msg) -> Error (Printf.sprintf "%s at offset %d" msg at)

  let field k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None

  let str = function Str s -> Some s | _ -> None
  let num = function Num f -> Some f | _ -> None
  let boolean = function Bool b -> Some b | _ -> None
  let list = function List l -> Some l | _ -> None
end

let entry_of_json (j : Json.v) : (entry, string) result =
  let ( let* ) = Result.bind in
  let want k conv =
    match Option.bind (Json.field k j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "entry missing or malformed field %S" k)
  in
  let* loop = want "loop" Json.str in
  let* digest = want "digest" Json.str in
  let* variant_s = want "variant" Json.str in
  let* default_s = want "default" Json.str in
  let* ms = want "ms" Json.num in
  let* default_ms = want "default_ms" Json.num in
  let* serial_ms = want "serial_ms" Json.num in
  let* verified = want "verified" Json.num in
  let* model_agrees = want "model_agrees" Json.boolean in
  let* variant =
    match Variant.of_string variant_s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "unknown variant %S" variant_s)
  in
  let* default =
    match Variant.of_string default_s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "unknown variant %S" default_s)
  in
  if String.length digest <> 32 then
    Error (Printf.sprintf "digest %S is not an MD5 hex string" digest)
  else
    Ok
      {
        pe_loop = loop;
        pe_digest = digest;
        pe_variant = variant;
        pe_default = default;
        pe_ms = ms;
        pe_default_ms = default_ms;
        pe_serial_ms = serial_ms;
        pe_verified = int_of_float verified;
        pe_model_agrees = model_agrees;
      }

let of_json (s : string) : (t, string) result =
  let ( let* ) = Result.bind in
  let* j = Json.parse s in
  let* version =
    match Option.bind (Json.field "version" j) Json.num with
    | Some v -> Ok (int_of_float v)
    | None -> Error "missing plan version"
  in
  if version <> current_version then
    Error
      (Printf.sprintf "plan version %d, this build reads version %d" version
         current_version)
  else
    let* machine =
      match Option.bind (Json.field "machine" j) Json.str with
      | Some m -> Ok m
      | None -> Error "missing machine key"
    in
    let* entries =
      match Option.bind (Json.field "entries" j) Json.list with
      | Some l ->
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            let* e = entry_of_json e in
            Ok (e :: acc))
          (Ok []) l
        |> Result.map List.rev
      | None -> Error "missing entries array"
    in
    Ok (make ~machine entries)

(* --- files --------------------------------------------------------------- *)

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json t))

(** Read a plan file.  Every failure mode — unreadable file, truncated
    or corrupt JSON, unknown version, malformed entry — comes back as
    [Error reason] for the caller to surface as a structured fault. *)
let load path : (t, string) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error (Printf.sprintf "cannot read plan: %s" e)
  | contents -> (
    match of_json contents with
    | Ok p -> Ok p
    | Error e -> Error (Printf.sprintf "plan file %s: %s" path e))
