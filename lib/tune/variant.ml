(** One point of the per-loop variant space the autotuner searches.

    The paper's Table 2 prunes directives by loop {e class} (policies
    v0–v3); ComPar's stronger claim is that the whole space —
    directive on/off × schedule × chunk size × collapse — should be
    searched per loop.  A variant is exactly one such point:

    - [Serial]: the directive is removed (what v1–v3 do to whole
      classes, decided here per loop from measurement);
    - [Par]: the directive is kept with a pinned [SCHEDULE] clause and
      collapse depth.

    Variants serialize into plan files as compact strings
    ([serial], [static], [static:4], [dynamic:16+collapse:2], …); the
    schedule spelling is the OpenMP-consistent [static:<k>], which
    {!Glaf_runtime.Sched.of_string} accepts as an alias for
    [chunk:<k>]. *)

open Glaf_fortran

type t =
  | Serial  (** run the loop without its directive *)
  | Par of {
      sched : Ast.omp_schedule option;
          (** [None] = no SCHEDULE clause (interpreter default) *)
      collapse : int;  (** 1 = no COLLAPSE clause *)
    }

let equal (a : t) (b : t) =
  match (a, b) with
  | Serial, Serial -> true
  | Par a, Par b ->
    a.collapse = b.collapse
    && Option.equal Ast.equal_omp_schedule a.sched b.sched
  | _ -> false

(** Chunk sizes the search enumerates for every chunked schedule. *)
let chunk_sizes = [ 1; 4; 16; 64 ]

(* --- serialization ------------------------------------------------------- *)

(* OpenMP-consistent spelling: schedule(static, k) prints static:<k>
   (not the runtime's chunk:<k>); Sched.of_string accepts both. *)
let sched_to_string : Ast.omp_schedule -> string = function
  | Ast.Static -> "static"
  | Ast.Static_chunk k -> Printf.sprintf "static:%d" k
  | Ast.Dynamic k -> Printf.sprintf "dynamic:%d" k
  | Ast.Guided k -> Printf.sprintf "guided:%d" k

let sched_of_runtime : Glaf_runtime.Sched.t -> Ast.omp_schedule = function
  | Glaf_runtime.Sched.Static -> Ast.Static
  | Glaf_runtime.Sched.Static_chunked k -> Ast.Static_chunk k
  | Glaf_runtime.Sched.Dynamic k -> Ast.Dynamic k
  | Glaf_runtime.Sched.Guided k -> Ast.Guided k

let to_string = function
  | Serial -> "serial"
  | Par { sched; collapse } ->
    let s =
      match sched with None -> "default" | Some s -> sched_to_string s
    in
    if collapse >= 2 then Printf.sprintf "%s+collapse:%d" s collapse else s

(** Inverse of {!to_string}; [None] on anything else. *)
let of_string s =
  let s = String.trim (String.lowercase_ascii s) in
  if s = "serial" then Some Serial
  else
    let sched_part, collapse =
      match String.index_opt s '+' with
      | None -> (s, Some 1)
      | Some i ->
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        let collapse =
          match String.split_on_char ':' rest with
          | [ "collapse"; n ] -> (
            match int_of_string_opt n with
            | Some k when k >= 2 -> Some k
            | _ -> None)
          | _ -> None
        in
        (String.sub s 0 i, collapse)
    in
    match collapse with
    | None -> None
    | Some collapse ->
      if sched_part = "default" then Some (Par { sched = None; collapse })
      else
        Option.map
          (fun rs -> Par { sched = Some (sched_of_runtime rs); collapse })
          (Glaf_runtime.Sched.of_string sched_part)

(* --- loop rewriting ------------------------------------------------------ *)

(** The variant a loop currently embodies (its as-compiled default);
    [None] if the loop carries no directive (nothing to tune). *)
let default_of (l : Ast.do_loop) : t option =
  match l.Ast.do_omp with
  | None -> None
  | Some d ->
    Some (Par { sched = d.Ast.omp_schedule; collapse = d.Ast.omp_collapse })

(** Rewrite one loop to a variant.  Only the schedule/collapse clauses
    (or directive presence) change; private/reduction lists — the
    clauses correctness depends on — are never touched.  A loop with
    no directive is returned unchanged: a variant can only be applied
    where the analysis put a directive in the first place. *)
let apply (v : t) (l : Ast.do_loop) : Ast.do_loop =
  match (v, l.Ast.do_omp) with
  | _, None -> l
  | Serial, Some _ -> { l with Ast.do_omp = None }
  | Par { sched; collapse }, Some d ->
    {
      l with
      Ast.do_omp =
        Some { d with Ast.omp_schedule = sched; Ast.omp_collapse = collapse };
    }

(** The search space for one directive-carrying loop: its as-compiled
    default first, then [Serial], then every schedule × chunk —
    [static], and [static:<k>]/[dynamic:<k>]/[guided:<k>] for each
    chunk size — crossed with collapse on/off {e where the analysis
    already proved collapse legal} (a COLLAPSE the dependence analysis
    did not emit is never invented here; the bit-identity gate is a
    backstop, not a license).  Duplicates of the default are dropped.
    Empty for a directive-less loop. *)
let enumerate (l : Ast.do_loop) : t list =
  match default_of l with
  | None -> []
  | Some default ->
    let d = Option.get l.Ast.do_omp in
    let collapses =
      if d.Ast.omp_collapse >= 2 then [ d.Ast.omp_collapse; 1 ] else [ 1 ]
    in
    let scheds =
      Ast.Static
      :: List.concat_map
           (fun k -> [ Ast.Static_chunk k; Ast.Dynamic k; Ast.Guided k ])
           chunk_sizes
    in
    let pars =
      List.concat_map
        (fun collapse ->
          List.map (fun s -> Par { sched = Some s; collapse }) scheds)
        collapses
    in
    default
    :: List.filter (fun v -> not (equal v default)) (Serial :: pars)

(* --- structural digest --------------------------------------------------- *)

(* Strip every directive (this loop's and any nested one's) so the
   digest keys the *serial structure*: re-tuning decisions and plan
   lookups survive directive changes but go stale the moment the loop
   body itself changes. *)
let rec strip_stmt (s : Ast.stmt) : Ast.stmt =
  match s with
  | Ast.Do l -> Ast.Do (strip_loop l)
  | Ast.If_block (branches, else_) ->
    Ast.If_block
      ( List.map (fun (c, b) -> (c, List.map strip_stmt b)) branches,
        List.map strip_stmt else_ )
  | Ast.If_arith (c, s) -> Ast.If_arith (c, strip_stmt s)
  | Ast.Do_while (c, b) -> Ast.Do_while (c, List.map strip_stmt b)
  | Ast.Omp_atomic s -> Ast.Omp_atomic (strip_stmt s)
  | Ast.Omp_critical b -> Ast.Omp_critical (List.map strip_stmt b)
  | s -> s

and strip_loop (l : Ast.do_loop) : Ast.do_loop =
  { l with Ast.do_omp = None; Ast.do_body = List.map strip_stmt l.Ast.do_body }

(** MD5 digest of the loop's serial structure
    ({!Glaf_interp.Bytecode.unit_key}-style keying: Marshal bytes of
    the stripped AST).  Identical loops share a digest wherever they
    appear; any body change produces a fresh one. *)
let loop_digest (l : Ast.do_loop) : string =
  Digest.to_hex
    (Digest.string (Marshal.to_string (strip_loop l) [ Marshal.No_sharing ]))
