(** The variant autotuner: enumerate, measure, verify, cache.

    For every directive-carrying loop of a program the tuner walks the
    {!Variant} space (serial × schedule × chunk × collapse), runs each
    candidate on the interpreter's bytecode path, and keeps the
    fastest one {e that passed the bit-identity gate} — every
    candidate's value, array state, and PRINT bytes are compared
    against the serial baseline on IEEE-754 bit patterns via
    {!Glaf_lift.Verify} before its time is allowed to count.  Each
    measured run executes under a {!Glaf_runtime.Fault} deadline
    token, so a variant that wedges is disqualified at the next chunk
    boundary instead of hanging the search.

    Measured wall time is cross-checked against the static cost model
    ({!Glaf_perf.Cost} on the {!Glaf_perf.Machine.interp_host}
    profile): the per-loop report says whether the model's predicted
    winner landed within 10% of the measured one.

    Winners are cached in a {!Plan} keyed by (structural loop digest ×
    machine profile); a digest already present in the supplied prior
    plan is trusted and skipped — a second tune run over unchanged
    source does no searching at all. *)

open Glaf_fortran
module Verify = Glaf_lift.Verify
module Fault = Glaf_runtime.Fault
module Interp = Glaf_interp.Interp
module Value = Glaf_runtime.Value
module Farray = Glaf_runtime.Farray
module Machine = Glaf_perf.Machine
module Cost = Glaf_perf.Cost

type site = {
  st_sub : string;  (** owning subprogram (or main program) *)
  st_ord : int;  (** 1-based pre-order index among its directive loops *)
  st_label : string;  (** ["sub#ord"] *)
  st_digest : string;  (** {!Variant.loop_digest} *)
  st_loop : Ast.do_loop;
}

type trial = {
  tr_variant : Variant.t;
  tr_ms : float;  (** min wall time over repeats; meaningless if not ok *)
  tr_model_ms : float option;  (** static-model estimate, when computable *)
  tr_ok : bool;
  tr_note : string option;  (** why the trial was disqualified *)
}

type loop_result = {
  lr_site : site;
  lr_trials : trial list;  (** empty when served from the prior plan *)
  lr_winner : Variant.t;
  lr_winner_ms : float;
  lr_default : Variant.t;
  lr_default_ms : float;
  lr_serial_ms : float;
  lr_model_pick : Variant.t option;  (** static model's predicted winner *)
  lr_model_agrees : bool;
      (** model's pick measured within 10% of the actual winner *)
  lr_verified : int;  (** configurations proved bit-identical *)
  lr_cached : bool;  (** taken from the prior plan, search skipped *)
}

type report = {
  tn_machine : string;
  tn_threads : int;
  tn_loops : loop_result list;
  tn_plan : Plan.t;
  tn_cached : int;  (** loops served from the prior plan *)
  tn_compose_threads : int list;
      (** thread counts the composed program was gated at *)
  tn_compose_errors : string list;
      (** bit-identity failures of the fully rewritten program; [] =
          every winner composes cleanly *)
}

(* --- loop-site discovery and rewriting ----------------------------------- *)

(* Pre-order map over the directive-carrying loops of a body; [f] sees
   the 1-based ordinal.  The ordinal is decided by the loop's
   *original* directive, so [f] turning a directive off does not shift
   later ordinals. *)
let map_directive_loops (f : int -> Ast.do_loop -> Ast.do_loop) stmts =
  let ctr = ref 0 in
  let rec go ss = List.map stmt ss
  and stmt s =
    match s with
    | Ast.Do l ->
      let l' =
        match l.Ast.do_omp with
        | Some _ ->
          incr ctr;
          f !ctr l
        | None -> l
      in
      Ast.Do { l' with Ast.do_body = go l'.Ast.do_body }
    | Ast.If_block (branches, else_) ->
      Ast.If_block
        (List.map (fun (c, b) -> (c, go b)) branches, go else_)
    | Ast.If_arith (c, s) -> Ast.If_arith (c, stmt s)
    | Ast.Do_while (c, b) -> Ast.Do_while (c, go b)
    | Ast.Omp_atomic s -> Ast.Omp_atomic (stmt s)
    | Ast.Omp_critical b -> Ast.Omp_critical (go b)
    | s -> s
  in
  go stmts

let bodies_of (cu : Ast.compilation_unit) : (string * Ast.stmt list) list =
  List.concat_map
    (function
      | Ast.Module m ->
        List.map
          (fun sp -> (sp.Ast.sub_name, sp.Ast.sub_body))
          m.Ast.mod_contains
      | Ast.Standalone sp -> [ (sp.Ast.sub_name, sp.Ast.sub_body) ]
      | Ast.Main m -> [ (m.Ast.main_name, m.Ast.main_body) ])
    cu

(** Every directive-carrying loop of the program, pre-order per
    subprogram.  Duplicate structural digests are dropped (two
    textually identical loops share one plan entry). *)
let sites (cu : Ast.compilation_unit) : site list =
  let acc = ref [] and seen = Hashtbl.create 16 in
  List.iter
    (fun (owner, body) ->
      ignore
        (map_directive_loops
           (fun ord l ->
             let digest = Variant.loop_digest l in
             if not (Hashtbl.mem seen digest) then (
               Hashtbl.replace seen digest ();
               acc :=
                 {
                   st_sub = owner;
                   st_ord = ord;
                   st_label = Printf.sprintf "%s#%d" owner ord;
                   st_digest = digest;
                   st_loop = l;
                 }
                 :: !acc);
             l)
           body))
    (bodies_of cu);
  List.rev !acc

(* Rewrite exactly one site of [cu] to variant [v]. *)
let rewrite_site (cu : Ast.compilation_unit) (site : site) (v : Variant.t) :
    Ast.compilation_unit =
  let rewrite_body name body =
    if name <> site.st_sub then body
    else
      map_directive_loops
        (fun ord l -> if ord = site.st_ord then Variant.apply v l else l)
        body
  in
  let map_sub sp =
    { sp with Ast.sub_body = rewrite_body sp.Ast.sub_name sp.Ast.sub_body }
  in
  List.map
    (function
      | Ast.Module m ->
        Ast.Module
          { m with Ast.mod_contains = List.map map_sub m.Ast.mod_contains }
      | Ast.Standalone sp -> Ast.Standalone (map_sub sp)
      | Ast.Main m ->
        Ast.Main
          { m with Ast.main_body = rewrite_body m.Ast.main_name m.Ast.main_body })
    cu

(* --- measuring and verifying one candidate program ----------------------- *)

let ( let* ) = Result.bind

(* Wall-time one program: fresh state per repeat, setup untimed, the
   call list timed, minimum over repeats.  The whole measurement runs
   under a deadline token, so runaway variants are cut off at a chunk
   or iteration boundary. *)
let measure ?deadline_s ~threads ~repeats ~setup ~calls cu :
    (float, string) result =
  let run () =
    let st = Interp.make_state ~printer:(fun _ -> ()) cu in
    Interp.set_bytecode st true;
    Interp.set_threads st threads;
    List.iter (fun (f, a) -> ignore (Interp.call st f a)) setup;
    let t0 = Unix.gettimeofday () in
    List.iter (fun (f, a) -> ignore (Interp.call st f a)) calls;
    (Unix.gettimeofday () -. t0) *. 1000.
  in
  try
    let tk = Fault.make_token ?deadline_s () in
    Fault.with_token tk (fun () ->
        let best = ref infinity in
        for _ = 1 to repeats do
          let ms = run () in
          if ms < !best then best := ms
        done;
        Ok !best)
  with
  | Fault.Cancelled why -> Error ("timeout: " ^ why)
  | Interp.Fortran_error m -> Error ("fortran error: " ^ m)
  | Value.Runtime_error m -> Error ("runtime error: " ^ m)
  | Farray.Bounds_error m -> Error ("bounds error: " ^ m)
  | exn -> Error (Printexc.to_string exn)

(* Bit-identity gate: each call of the candidate program, at [threads],
   against the serial baseline outcome.  Returns the number of
   configurations that passed, or the first divergence. *)
let verify_calls ?deadline_s ~threads ~setup ~calls ~baselines cu :
    (int, string) result =
  try
    let tk = Fault.make_token ?deadline_s () in
    Fault.with_token tk (fun () ->
        List.fold_left2
          (fun acc (name, args) baseline ->
            let* n = acc in
            let o = Verify.run_call ~threads ~setup cu name args in
            let label = Printf.sprintf "%s@%dT" name threads in
            let* () = Verify.compare_outcomes ~label baseline o in
            Ok (n + 1))
          (Ok 0) calls baselines)
  with
  | Fault.Cancelled why -> Error ("timeout: " ^ why)
  | exn -> Error (Printexc.to_string exn)

let model_ms_of ~cfg ~calls cu : float option =
  try
    Some
      (List.fold_left
         (fun acc (name, args) -> acc +. Cost.time ~args cfg cu name)
         0.0 calls
       /. 1e6)
  with _ -> None

(* --- tuning one loop ------------------------------------------------------ *)

(* Keep the default unless a challenger wins by more than the
   hysteresis margin: re-tuning on a noisy machine should not flap
   between near-tied variants. *)
let hysteresis = 1.03

(* The model "agrees" when the variant it ranked first actually
   measured within this factor of the measured winner. *)
let model_tolerance = 1.10

(* Is bit-identity at >1 thread even possible for this loop?  A
   reduction reassociates floating-point partials across chunks —
   that reordering is the accepted OpenMP semantic, so reduction
   loops are gated at 1 thread only (where chunk order is serial
   order and identity holds by construction). *)
let reduction_free (l : Ast.do_loop) =
  match l.Ast.do_omp with
  | Some d -> d.Ast.omp_reduction = []
  | None -> true

let tune_site ~threads ~gate_threads ~repeats ~deadline_s ~cfg ~setup ~calls
    ~baselines cu (site : site) : loop_result =
  let variants = Variant.enumerate site.st_loop in
  let default =
    match Variant.default_of site.st_loop with
    | Some d -> d
    | None -> Variant.Serial
  in
  let verified_total = ref 0 in
  let trials =
    List.map
      (fun v ->
        let cu_v = rewrite_site cu site v in
        let model_ms = model_ms_of ~cfg ~calls cu_v in
        match
          let* () =
            List.fold_left
              (fun acc t ->
                let* () = acc in
                let* n =
                  verify_calls ~deadline_s ~threads:t ~setup ~calls ~baselines
                    cu_v
                in
                verified_total := !verified_total + n;
                Ok ())
              (Ok ()) gate_threads
          in
          let* ms = measure ~deadline_s ~threads ~repeats ~setup ~calls cu_v in
          Ok ms
        with
        | Ok ms ->
          { tr_variant = v; tr_ms = ms; tr_model_ms = model_ms;
            tr_ok = true; tr_note = None }
        | Error note ->
          { tr_variant = v; tr_ms = infinity; tr_model_ms = model_ms;
            tr_ok = false; tr_note = Some note })
      variants
  in
  let ok_trials = List.filter (fun t -> t.tr_ok) trials in
  let find_trial v =
    List.find_opt (fun t -> Variant.equal t.tr_variant v) trials
  in
  let best =
    match ok_trials with
    | [] ->
      (* nothing verified (should not happen: Serial is in the space
         and runs the loop exactly as the baseline does) — keep the
         default untouched *)
      { tr_variant = default; tr_ms = nan; tr_model_ms = None;
        tr_ok = false; tr_note = Some "no variant verified" }
    | t :: ts ->
      List.fold_left (fun a b -> if b.tr_ms < a.tr_ms then b else a) t ts
  in
  let default_trial = find_trial default in
  let winner =
    (* hysteresis: a challenger must beat the default by >3% *)
    match default_trial with
    | Some d when d.tr_ok && d.tr_ms <= best.tr_ms *. hysteresis -> d
    | _ -> best
  in
  let default_ms =
    match default_trial with Some d when d.tr_ok -> d.tr_ms | _ -> nan
  in
  let serial_ms =
    match find_trial Variant.Serial with
    | Some t when t.tr_ok -> t.tr_ms
    | _ -> ( match default_trial with Some d when d.tr_ok -> d.tr_ms | _ -> nan)
  in
  let model_pick =
    List.fold_left
      (fun acc t ->
        match (t.tr_model_ms, acc) with
        | Some m, Some (_, best_m) when m < best_m -> Some (t, m)
        | Some m, None -> Some (t, m)
        | _ -> acc)
      None trials
    |> Option.map (fun (t, _) -> t)
  in
  let model_agrees =
    match model_pick with
    | Some p -> p.tr_ok && p.tr_ms <= winner.tr_ms *. model_tolerance
    | None -> false
  in
  {
    lr_site = site;
    lr_trials = trials;
    lr_winner = winner.tr_variant;
    lr_winner_ms = winner.tr_ms;
    lr_default = default;
    lr_default_ms = default_ms;
    lr_serial_ms = serial_ms;
    lr_model_pick = Option.map (fun t -> t.tr_variant) model_pick;
    lr_model_agrees = model_agrees;
    lr_verified = !verified_total;
    lr_cached = false;
  }

(* --- the whole program ---------------------------------------------------- *)

let entry_of_result (r : loop_result) : Plan.entry =
  {
    Plan.pe_loop = r.lr_site.st_label;
    pe_digest = r.lr_site.st_digest;
    pe_variant = r.lr_winner;
    pe_default = r.lr_default;
    pe_ms = r.lr_winner_ms;
    pe_default_ms = r.lr_default_ms;
    pe_serial_ms = r.lr_serial_ms;
    pe_verified = r.lr_verified;
    pe_model_agrees = r.lr_model_agrees;
  }

let result_of_entry (site : site) (e : Plan.entry) : loop_result =
  {
    lr_site = site;
    lr_trials = [];
    lr_winner = e.Plan.pe_variant;
    lr_winner_ms = e.Plan.pe_ms;
    lr_default = e.Plan.pe_default;
    lr_default_ms = e.Plan.pe_default_ms;
    lr_serial_ms = e.Plan.pe_serial_ms;
    lr_model_pick = None;
    lr_model_agrees = e.Plan.pe_model_agrees;
    lr_verified = e.Plan.pe_verified;
    lr_cached = true;
  }

(** Tune every directive-carrying loop of [cu] against the workload
    [calls] (each preceded by the [setup] calls on a fresh state).

    [baseline] is the serial reference program — by default [cu]
    itself, run at 1 thread; pass the original un-annotated unit when
    tuning an autopar-annotated legacy file.  [plan] is a prior plan:
    entries whose digest (and machine) still match are reused without
    any search.  [deadline_s] bounds each candidate's verification and
    measurement phases separately. *)
let tune ?threads ?(repeats = 3) ?(deadline_s = 5.0) ?machine ?plan
    ?baseline ?(setup = []) ~calls (cu : Ast.compilation_unit) : report =
  let threads =
    match threads with
    | Some t -> max 1 t
    | None -> max 2 (min 4 (Domain.recommended_domain_count ()))
  in
  let machine =
    match machine with Some m -> m | None -> Machine.interp_host ()
  in
  let machine_key = Plan.machine_key machine in
  let cfg = { (Cost.default_config machine) with Cost.threads } in
  let baseline_cu = match baseline with Some b -> b | None -> cu in
  (* serial reference outcomes, one per call, under a generous deadline *)
  let baselines =
    let tk = Fault.make_token ~deadline_s:(deadline_s *. 4.) () in
    Fault.with_token tk (fun () ->
        List.map
          (fun (name, args) ->
            Verify.run_call ~threads:1 ~setup baseline_cu name args)
          calls)
  in
  List.iter
    (fun (b : Verify.outcome) ->
      match b.Verify.o_error with
      | Some e -> failwith ("tune: serial baseline failed: " ^ e)
      | None -> ())
    baselines;
  let prior_entry digest =
    match plan with
    | Some p when p.Plan.p_machine = machine_key -> Plan.find p digest
    | _ -> None
  in
  let all_sites = sites cu in
  (* Verification runs whole calls, so the measured-thread-count gate
     is only meaningful when NO directive loop anywhere in the program
     carries a reduction clause: one reduction loop reassociates its
     floating-point partials at >1 thread (the accepted OpenMP
     semantic, not a tuning bug) and would fail every candidate.  The
     1-thread gate — where chunk order is serial order and identity
     holds by construction — applies always, to every variant. *)
  let gate =
    if List.for_all (fun s -> reduction_free s.st_loop) all_sites
       && threads > 1
    then [ 1; threads ]
    else [ 1 ]
  in
  let loops =
    List.map
      (fun site ->
        match prior_entry site.st_digest with
        | Some e -> result_of_entry site e
        | None ->
          tune_site ~threads ~gate_threads:gate ~repeats ~deadline_s ~cfg
            ~setup ~calls ~baselines cu site)
      all_sites
  in
  let plan' = Plan.make ~machine:machine_key (List.map entry_of_result loops) in
  (* compose all winners and re-run the bit-identity gate end to end *)
  let compose_errors =
    if loops = [] then []
    else
      let cu' = Plan.apply ~machine:machine_key plan' cu in
      List.concat_map
        (fun t ->
          match
            verify_calls ~deadline_s ~threads:t ~setup ~calls ~baselines cu'
          with
          | Ok _ -> []
          | Error e -> [ Printf.sprintf "composed plan at %d threads: %s" t e ])
        gate
  in
  {
    tn_machine = machine_key;
    tn_threads = threads;
    tn_loops = loops;
    tn_plan = plan';
    tn_cached = List.length (List.filter (fun l -> l.lr_cached) loops);
    tn_compose_threads = gate;
    tn_compose_errors = compose_errors;
  }

(* --- reporting ------------------------------------------------------------ *)

let ms_str f = if Float.is_nan f then "-" else Printf.sprintf "%.2f" f

let speedup_str num den =
  if Float.is_nan num || Float.is_nan den || den <= 0. then "-"
  else Printf.sprintf "%.2fx" (num /. den)

(** The per-loop win/loss table ([oglaf tune]'s report, and the
    extension of the Table-2 reproduction to per-loop granularity).
    One row per loop: measured default / winner / serial times, the
    win-loss verdict against the default, whether the static cost
    model's pick agreed with measurement, how many configurations were
    proved bit-identical, and whether the row came from the search or
    the prior plan. *)
let table_string (r : report) : string =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "per-loop win/loss table — machine %s, %d threads (%d loops, %d cached)\n"
    r.tn_machine r.tn_threads (List.length r.tn_loops) r.tn_cached;
  let rows =
    List.map
      (fun l ->
        let verdict =
          if l.lr_cached then "cached"
          else if Variant.equal l.lr_winner l.lr_default then "tie"
          else "win"
        in
        [
          l.lr_site.st_label;
          Variant.to_string l.lr_default;
          ms_str l.lr_default_ms;
          Variant.to_string l.lr_winner;
          ms_str l.lr_winner_ms;
          speedup_str l.lr_default_ms l.lr_winner_ms;
          ms_str l.lr_serial_ms;
          verdict;
          (if l.lr_model_agrees then "agrees" else "disagrees");
          string_of_int l.lr_verified;
        ])
      r.tn_loops
  in
  let header =
    [ "loop"; "default"; "def ms"; "winner"; "win ms"; "speedup";
      "serial ms"; "result"; "model"; "verified" ]
  in
  let all = header :: rows in
  let ncols = List.length header in
  let width i =
    List.fold_left (fun w row -> max w (String.length (List.nth row i))) 0 all
  in
  let widths = List.init ncols width in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          Buffer.add_string b cell;
          if i < ncols - 1 then
            Buffer.add_string b
              (String.make (List.nth widths i - String.length cell + 2) ' '))
        row;
      Buffer.add_char b '\n')
    all;
  (* why candidates fell out of the race: distinct disqualification
     reasons per loop, with how many variants each reason killed *)
  List.iter
    (fun l ->
      let dq = List.filter (fun t -> not t.tr_ok) l.lr_trials in
      let reasons = Hashtbl.create 4 in
      List.iter
        (fun t ->
          let note = Option.value ~default:"?" t.tr_note in
          Hashtbl.replace reasons note
            (1 + Option.value ~default:0 (Hashtbl.find_opt reasons note)))
        dq;
      Hashtbl.iter
        (fun note n ->
          Printf.bprintf b "%s: %d variant%s disqualified: %s\n"
            l.lr_site.st_label n
            (if n = 1 then "" else "s")
            note)
        reasons)
    r.tn_loops;
  (match r.tn_compose_errors with
   | [] ->
     Printf.bprintf b
       "all winners bit-identical to the serial baseline (composed, at %s)\n"
       (String.concat " and "
          (List.map
             (fun t -> Printf.sprintf "%d thread%s" t (if t = 1 then "" else "s"))
             r.tn_compose_threads))
   | errs ->
     List.iter (fun e -> Printf.bprintf b "COMPOSE FAILURE: %s\n" e) errs);
  Buffer.contents b

let pp_table ppf r = Format.pp_print_string ppf (table_string r)
