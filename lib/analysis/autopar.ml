(** The auto-parallelization pass: GLAF-parallel v0.

    Walks every function of a program and attaches an OpenMP-style
    directive to each {e outermost} parallelizable loop ("OpenMP
    directives in all applicable loops", Table 2).  A loop nested
    inside an already-annotated loop is left serial — except that a
    collapsible perfect nest is absorbed into a COLLAPSE(2) directive,
    exactly as GLAF emits for the SARB 2x60 double loops.  When an
    outer loop is not parallelizable, the pass descends and annotates
    inner loops instead (FUN3D's per-level parallelization options are
    driven from here). *)

open Glaf_ir

type report_entry = {
  re_function : string;
  re_index : string;
  re_info : Loop_info.t;
}

type report = report_entry list

let annotate_function ?(pure = []) program enclosing (f : Func.t) :
    Func.t * report =
  let env = Depend.env_of_program ~pure program enclosing f in
  let report = ref [] in
  let rec annotate_stmts stmts = List.map annotate_stmt stmts
  and annotate_stmt (s : Stmt.t) =
    match s with
    | Stmt.For l -> Stmt.For (annotate_loop l)
    | Stmt.If (branches, else_) ->
      Stmt.If
        ( List.map (fun (c, b) -> (c, annotate_stmts b)) branches,
          annotate_stmts else_ )
    | Stmt.While (c, body) -> Stmt.While (c, annotate_stmts body)
    | Stmt.Critical body -> Stmt.Critical (annotate_stmts body)
    | Stmt.Assign _ | Stmt.Call _ | Stmt.Return _ | Stmt.Exit_loop
    | Stmt.Cycle_loop | Stmt.Atomic _ | Stmt.Comment _ ->
      s
  and annotate_loop (l : Stmt.loop) : Stmt.loop =
    let info = Depend.analyze env l in
    report :=
      { re_function = f.Func.name; re_index = l.Stmt.index; re_info = info }
      :: !report;
    if info.Loop_info.parallel then begin
      (* fold the user's GPI schedule hint into the emitted directive *)
      let directive =
        Option.map
          (fun (d : Stmt.directive) -> { d with Stmt.schedule = l.Stmt.schedule })
          (Loop_info.to_directive info)
      in
      (* inner loops of an annotated loop stay serial *)
      { l with Stmt.directive }
    end
    else { l with Stmt.body = annotate_stmts l.Stmt.body }
  in
  let steps =
    List.map
      (fun (st : Func.step) -> { st with Func.body = annotate_stmts st.Func.body })
      f.Func.steps
  in
  ({ f with Func.steps }, List.rev !report)

(** Annotate every function of the program; returns the annotated
    program and the per-loop analysis report. *)
let run ?(pure = []) (p : Ir_module.program) : Ir_module.program * report =
  let report = ref [] in
  let modules =
    List.map
      (fun (m : Ir_module.t) ->
        let functions =
          List.map
            (fun f ->
              let f', r = annotate_function ~pure p m f in
              report := !report @ r;
              f')
            m.Ir_module.functions
        in
        { m with Ir_module.functions })
      p.Ir_module.modules
  in
  ({ p with Ir_module.modules }, !report)

let pp_report ppf (r : report) =
  List.iter
    (fun e ->
      Format.fprintf ppf "%s: loop over %s: %s" e.re_function e.re_index
        (if e.re_info.Loop_info.parallel then "PARALLEL" else "serial");
      if e.re_info.Loop_info.parallel then begin
        if e.re_info.Loop_info.collapsible then
          Format.fprintf ppf " collapse(2)";
        List.iter
          (fun (red : Loop_info.reduction) ->
            Format.fprintf ppf " reduction(%s)" red.Loop_info.red_var)
          e.re_info.Loop_info.reductions;
        if e.re_info.Loop_info.private_vars <> [] then
          Format.fprintf ppf " private(%s)"
            (String.concat "," e.re_info.Loop_info.private_vars)
      end
      else
        List.iter
          (fun o ->
            Format.fprintf ppf " [%s]" (Loop_info.obstacle_to_string o))
          e.re_info.Loop_info.obstacles;
      Format.fprintf ppf " {%s}"
        (Loop_info.show_loop_class e.re_info.Loop_info.classification);
      Format.pp_print_newline ppf ())
    r
