(** Results of the auto-parallelization analysis for one loop. *)

open Glaf_ir

(** Loop classes used by the paper's directive-pruning study
    (Table 2).  v1 removes directives from [Init_zero] and
    [Init_broadcast] loops, v2 from [Simple_single] (including simple
    reductions), v3 from [Simple_double]. *)
type loop_class =
  | Init_zero       (** a(i) = 0 — compiler emits memset *)
  | Init_broadcast  (** a(i) = scalar or a(i) = b(i) — SIMD copy *)
  | Simple_single   (** any remaining non-nested loop (incl. reductions) *)
  | Simple_double   (** double nest without control flow *)
  | Complex         (** nests carrying control flow or calls *)
[@@deriving show { with_path = false }, eq]

type reduction = {
  red_var : string;
  red_op : Stmt.red_op;
}
[@@deriving show { with_path = false }, eq]

(** Why a loop was rejected for parallelization. *)
type obstacle =
  | Loop_carried of string  (** grid with a cross-iteration dependence *)
  | Scalar_dependence of string
      (** scalar read before written, not a recognized reduction *)
  | Nonlinear_subscript of string
  | Unsafe_call of string
  | Early_exit  (** EXIT / RETURN inside the loop body *)
  | While_loop
[@@deriving show { with_path = false }, eq]

type t = {
  parallel : bool;
  obstacles : obstacle list;  (** empty iff [parallel] *)
  reductions : reduction list;
  private_vars : string list;
      (** scalars (incl. inner loop indices) to privatize *)
  classification : loop_class;
  collapsible : bool;
      (** perfect double nest whose inner bounds are outer-invariant *)
  trip_count : int option;  (** compile-time trip count if bounds are constant *)
}
[@@deriving show { with_path = false }, eq]

let obstacle_to_string = function
  | Loop_carried g -> Printf.sprintf "loop-carried dependence on grid %s" g
  | Scalar_dependence s -> Printf.sprintf "scalar dependence on %s" s
  | Nonlinear_subscript g -> Printf.sprintf "nonlinear subscript on grid %s" g
  | Unsafe_call f -> Printf.sprintf "call to %s with unanalyzable effects" f
  | Early_exit -> "early exit from loop body"
  | While_loop -> "while loop"

let to_directive info : Stmt.directive option =
  if not info.parallel then None
  else
    Some
      {
        Stmt.private_vars = info.private_vars;
        reductions = List.map (fun r -> (r.red_op, r.red_var)) info.reductions;
        collapse = (if info.collapsible then 2 else 1);
        num_threads = None;
        schedule = None;
      }
