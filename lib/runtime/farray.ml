(** Fortran array storage: typed, column-major, arbitrary lower bounds.

    Data lives in flat OCaml arrays, so concurrent writes to distinct
    elements from different domains are safe (word-sized cells, no
    tearing), which is what the OpenMP-style parallel loops of the
    interpreter rely on. *)

exception Bounds_error of string

type elem =
  | Efloat
  | Eint
  | Ebool
  | Estr

type data =
  | F of float array
  | I of int array
  | B of bool array
  | S of string array

type t = {
  elem : elem;
  bounds : (int * int) array;  (** (lower, upper) per dimension *)
  data : data;
}

(** One cell, as a raw OCaml value. *)
type cell =
  | Cf of float
  | Ci of int
  | Cb of bool
  | Cs of string

let dim_size (lo, hi) = max 0 (hi - lo + 1)

let size a = Array.fold_left (fun n b -> n * dim_size b) 1 a.bounds

let rank a = Array.length a.bounds

let elem_of_base (bt : Glaf_fortran.Ast.base_type) =
  match bt with
  | Glaf_fortran.Ast.Integer -> Eint
  | Glaf_fortran.Ast.Real | Glaf_fortran.Ast.Real8 -> Efloat
  | Glaf_fortran.Ast.Logical -> Ebool
  | Glaf_fortran.Ast.Character _ -> Estr
  | Glaf_fortran.Ast.Derived name ->
    invalid_arg ("Farray: derived-type arrays use Struct_array, not " ^ name)

let create elem bounds =
  let n = Array.fold_left (fun n b -> n * dim_size b) 1 bounds in
  let data =
    match elem with
    | Efloat -> F (Array.make n 0.0)
    | Eint -> I (Array.make n 0)
    | Ebool -> B (Array.make n false)
    | Estr -> S (Array.make n "")
  in
  { elem; bounds; data }

(** Raise the canonical out-of-bounds error for subscript [i] against
    bounds [lo:hi] in (1-based) dimension [d].  Exposed so the bytecode
    VM's specialized rank-1/rank-2 fast paths report bit-identical
    messages to {!offset}. *)
let subscript_error i lo hi d =
  raise
    (Bounds_error
       (Printf.sprintf "subscript %d out of bounds %d:%d in dimension %d" i lo
          hi d))

(** Column-major linear offset of [indices] (Fortran order: first index
    varies fastest). *)
let offset a indices =
  let n = Array.length a.bounds in
  if Array.length indices <> n then
    raise
      (Bounds_error
         (Printf.sprintf "rank mismatch: %d subscripts for rank-%d array"
            (Array.length indices) n));
  let off = ref 0 in
  let stride = ref 1 in
  for d = 0 to n - 1 do
    let lo, hi = a.bounds.(d) in
    let i = indices.(d) in
    if i < lo || i > hi then subscript_error i lo hi (d + 1);
    off := !off + ((i - lo) * !stride);
    stride := !stride * dim_size (lo, hi)
  done;
  !off

let get_linear a i =
  match a.data with
  | F d -> Cf d.(i)
  | I d -> Ci d.(i)
  | B d -> Cb d.(i)
  | S d -> Cs d.(i)

let set_linear a i c =
  match (a.data, c) with
  | F d, Cf x -> d.(i) <- x
  | F d, Ci x -> d.(i) <- float_of_int x
  | I d, Ci x -> d.(i) <- x
  | I d, Cf x -> d.(i) <- int_of_float x
  | B d, Cb x -> d.(i) <- x
  | S d, Cs x -> d.(i) <- x
  | _ -> raise (Bounds_error "element type mismatch in array store")

let get a indices = get_linear a (offset a indices)
let set a indices c = set_linear a (offset a indices) c

let get_float a indices =
  match get a indices with
  | Cf x -> x
  | Ci x -> float_of_int x
  | Cb _ | Cs _ -> raise (Bounds_error "expected numeric element")

let set_float a indices x = set a indices (Cf x)

let fill a c =
  let n = size a in
  for i = 0 to n - 1 do
    set_linear a i c
  done

let copy a =
  let data =
    match a.data with
    | F d -> F (Array.copy d)
    | I d -> I (Array.copy d)
    | B d -> B (Array.copy d)
    | S d -> S (Array.copy d)
  in
  { a with data }

(** Fold over cells in linear (column-major) order. *)
let fold f acc a =
  let n = size a in
  let acc = ref acc in
  for i = 0 to n - 1 do
    acc := f !acc (get_linear a i)
  done;
  !acc

(** 1-D contiguous slice [lo..hi] (inclusive, in index space) of a
    rank-1 array, sharing no storage. *)
let slice1 a lo hi =
  if rank a <> 1 then raise (Bounds_error "slice of non-rank-1 array");
  let out = create a.elem [| (1, hi - lo + 1) |] in
  for i = lo to hi do
    set out [| i - lo + 1 |] (get a [| i |])
  done;
  out

let of_float_list xs =
  let arr = Array.of_list xs in
  { elem = Efloat; bounds = [| (1, Array.length arr) |]; data = F arr }

let equal_content a b =
  a.elem = b.elem
  && a.bounds = b.bounds
  &&
  match (a.data, b.data) with
  | F x, F y -> x = y
  | I x, I y -> x = y
  | B x, B y -> x = y
  | S x, S y -> x = y
  | _ -> false

(** Max |x - y| over two float arrays of identical shape. *)
let max_abs_diff a b =
  match (a.data, b.data) with
  | F x, F y when Array.length x = Array.length y ->
    let m = ref 0.0 in
    Array.iteri (fun i xi -> m := Float.max !m (Float.abs (xi -. y.(i)))) x;
    !m
  | _ -> raise (Bounds_error "max_abs_diff: incompatible arrays")

(** Root mean square of a float array — the FUN3D §4.2.1 check. *)
let rms a =
  match a.data with
  | F d ->
    let n = Array.length d in
    if n = 0 then 0.0
    else sqrt (Array.fold_left (fun s x -> s +. (x *. x)) 0.0 d /. float_of_int n)
  | _ -> raise (Bounds_error "rms of non-real array")
