(** Fault-injection harness for the serving runtime.

    Deterministically reproduces the failure modes the fault-tolerance
    layer must survive, without touching kernel code: the pool calls
    the hooks below at region entry, chunk dispatch and worker task
    receipt, and an installed {e plan} decides when they fire.

    Plan grammar (comma-separated directives):
    {[
      fail-region:K          raise in the K-th parallel region (1-based,
                             counted across the process since set_plan)
      delay-chunk:K:MS       sleep MS milliseconds in every chunk of
                             the K-th region (drives deadline tests);
                             K = 0 delays every region (models
                             latency-bound kernels for serve-overlap
                             benchmarks)
      kill-worker:I[:N]      resident worker I dies when it next
                             receives a task, N times (default 1)
    ]}

    Plans come from {!set_plan} (tests), [oglaf serve --inject]
    (manual reproduction) or the [OGLAF_INJECT] environment variable
    (whole-process smoke runs).  With no plan installed every hook is
    a single atomic load.

    Precedence: [--inject] {e wins} over [OGLAF_INJECT].  The
    environment plan is installed once at module load (bottom of this
    file); a later {!set_plan} — which is what the CLI flag calls —
    replaces the whole installed plan and resets the region counter,
    so the two never merge.  [test/test_faults.ml] pins this
    contract. *)

type directive =
  | Fail_region of int
  | Delay_chunk of { region : int; delay_s : float }
  | Kill_worker of { worker : int; times : int }

let directive_to_string = function
  | Fail_region k -> Printf.sprintf "fail-region:%d" k
  | Delay_chunk { region; delay_s } ->
    Printf.sprintf "delay-chunk:%d:%g" region (delay_s *. 1e3)
  | Kill_worker { worker; times } ->
    Printf.sprintf "kill-worker:%d:%d" worker times

(** Raised by an injected region failure; the service layer classifies
    it as a runtime fault. *)
exception Injected of string

(** Parse the plan grammar above. *)
let parse_plan s : (directive list, string) result =
  let parse_one d =
    match String.split_on_char ':' (String.trim d) with
    | [ "fail-region"; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 1 -> Ok (Fail_region k)
      | _ -> Error (Printf.sprintf "bad region index in %S" d))
    | [ "delay-chunk"; k; ms ] -> (
      match (int_of_string_opt k, float_of_string_opt ms) with
      | Some k, Some ms when k >= 0 && ms >= 0.0 ->
        Ok (Delay_chunk { region = k; delay_s = ms /. 1e3 })
      | _ -> Error (Printf.sprintf "bad delay directive %S" d))
    | [ "kill-worker"; i ] -> (
      match int_of_string_opt i with
      | Some i when i >= 0 -> Ok (Kill_worker { worker = i; times = 1 })
      | _ -> Error (Printf.sprintf "bad worker index in %S" d))
    | [ "kill-worker"; i; n ] -> (
      match (int_of_string_opt i, int_of_string_opt n) with
      | Some i, Some n when i >= 0 && n >= 1 ->
        Ok (Kill_worker { worker = i; times = n })
      | _ -> Error (Printf.sprintf "bad kill directive %S" d))
    | _ ->
      Error
        (Printf.sprintf
           "unknown directive %S (expected fail-region:K, delay-chunk:K:MS \
            or kill-worker:I[:N])"
           d)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | d :: rest -> (
      match parse_one d with Ok x -> go (x :: acc) rest | Error _ as e -> e)
  in
  match String.split_on_char ',' (String.trim s) with
  | [ "" ] -> Error "empty injection plan"
  | parts -> go [] parts

(* --- installed plan ------------------------------------------------------ *)

type compiled = {
  fail_regions : int list;
  delays : (int * float) list;  (* region -> seconds *)
  kills : (int * int Atomic.t) list;  (* worker -> remaining deaths *)
}

let state : compiled option Atomic.t = Atomic.make None

(* Region counter: every parallel region with a non-empty iteration
   space increments it, whatever execution path it takes, so the K in
   fail-region:K / delay-chunk:K is deterministic. *)
let region_ctr = Atomic.make 0

let set_plan plan =
  Atomic.set region_ctr 0;
  Atomic.set state
    (Some
       {
         fail_regions =
           List.filter_map (function Fail_region k -> Some k | _ -> None) plan;
         delays =
           List.filter_map
             (function
               | Delay_chunk { region; delay_s } -> Some (region, delay_s)
               | _ -> None)
             plan;
         kills =
           List.filter_map
             (function
               | Kill_worker { worker; times } -> Some (worker, Atomic.make times)
               | _ -> None)
             plan;
       })

let clear () =
  Atomic.set state None;
  Atomic.set region_ctr 0

let active () = Atomic.get state <> None

(* --- hooks (called by Pool) --------------------------------------------- *)

(** Region-entry hook: returns the 1-based index of this region (0
    when no plan is installed).
    @raise Injected when a [fail-region] directive matches. *)
let enter_region () =
  match Atomic.get state with
  | None -> 0
  | Some p ->
    let r = 1 + Atomic.fetch_and_add region_ctr 1 in
    if List.mem r p.fail_regions then
      raise (Injected (Printf.sprintf "fail-region:%d" r));
    r

(** Chunk-dispatch hook: sleep if a [delay-chunk] directive targets
    [region] (the index {!enter_region} returned) or every region
    (directive key 0). *)
let chunk_delay ~region =
  match Atomic.get state with
  | None -> ()
  | Some p -> (
    let delay k =
      match List.assoc_opt k p.delays with
      | Some d when d > 0.0 -> Unix.sleepf d
      | _ -> ()
    in
    delay region;
    delay 0)

(** Task-receipt hook: [true] when resident worker [worker] (0-based)
    should crash now; each [kill-worker] directive fires [times]
    times. *)
let crash_worker ~worker =
  match Atomic.get state with
  | None -> false
  | Some p -> (
    match List.assoc_opt worker p.kills with
    | None -> false
    | Some left ->
      let rec claim () =
        let n = Atomic.get left in
        if n <= 0 then false
        else if Atomic.compare_and_set left n (n - 1) then true
        else claim ()
      in
      claim ())

(* Whole-process smoke runs: OGLAF_INJECT installs a plan at load.
   This runs before any CLI flag is parsed, so an explicit --inject
   (via set_plan) always replaces it — flag wins over environment. *)
let () =
  match Sys.getenv_opt "OGLAF_INJECT" with
  | None -> ()
  | Some s -> (
    match parse_plan s with
    | Ok plan -> set_plan plan
    | Error msg -> Printf.eprintf "OGLAF_INJECT ignored: %s\n%!" msg)
