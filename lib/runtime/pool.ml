(** Persistent worker pool of OCaml 5 domains.

    A real OpenMP runtime keeps its thread team resident between
    parallel regions; entering a region is a handful of condition
    signals, not thread creation.  This module reproduces that:
    worker domains are created once (lazily, on first use) and every
    subsequent [run] dispatches chunk closures to the resident team
    through per-worker mailboxes and joins them on a countdown latch.

    Sizing: the default team size comes from {!set_num_threads} or the
    [OGLAF_NUM_THREADS] environment variable (falling back to
    [Domain.recommended_domain_count () - 1]); the pool grows on
    demand when a region requests a larger team, so asking for 8
    threads on a 4-core box oversubscribes exactly like the paper's
    8-thread runs.

    Nested regions: a [run] issued from inside a pool worker (or while
    another region holds the pool) falls back to spawn-per-region
    domains, reproducing the documented oversubscription behaviour of
    nested [PARALLEL DO] — the pool never deadlocks on itself.

    Supervision (PR 3): a worker domain that dies with an unhandled
    exception is detected at the next region entry and respawned; the
    region it was serving fails with {!Fault.Pool_error} (the chunk is
    reported, never silently dropped, and the countdown latch is
    always released so the master cannot deadlock on the join).  When
    deaths exceed the respawn budget ({!set_max_respawns}) the pool
    degrades: the resident team is retired and subsequent regions run
    their chunk plan {e sequentially} on the master domain, in thread
    order — identical chunk assignment, identical results, no
    parallelism.  {!health} reports the mode and is part of {!stats}.

    Cancellation and fault injection: every chunk dispatch polls the
    ambient {!Fault.check_current} token (cooperative deadlines for
    [oglaf serve --timeout-ms]) and the {!Faultinject} hooks fire at
    region entry, chunk dispatch and worker task receipt.

    The runtime keeps lightweight counters ({!stats}) so the region
    entry cost, schedule behaviour and worker utilisation are
    observable ([oglaf serve --stats], [bench/main.exe pool]). *)

(* --- team sizing -------------------------------------------------------- *)

let env_threads =
  match Sys.getenv_opt "OGLAF_NUM_THREADS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)
  | None -> None

let default_num_threads =
  ref
    (match env_threads with
    | Some n -> n
    | None -> max 1 (Domain.recommended_domain_count () - 1))

let set_num_threads n = default_num_threads := max 1 n
let num_threads () = !default_num_threads

(** Hard cap on resident workers; oversubscription beyond this spills
    to the spawn fallback. *)
let max_pool_size = 64

(* --- stats -------------------------------------------------------------- *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(** Region wall-time histogram buckets: [< 1us, < 10us, ..., < 1s, >= 1s]. *)
let hist_buckets = 8

let bucket_of_ns ns =
  let rec go b limit =
    if b >= hist_buckets - 1 || ns < limit then b else go (b + 1) (limit * 10)
  in
  go 0 1_000

let c_regions = Atomic.make 0
let c_inline = Atomic.make 0
let c_spawn = Atomic.make 0
let c_seq = Atomic.make 0
let c_tasks = Atomic.make 0
let c_busy_ns = Atomic.make 0
let c_region_ns = Atomic.make 0
let c_idle_ns = Atomic.make 0
let c_hist = Array.init hist_buckets (fun _ -> Atomic.make 0)

(** Pool operating mode: [Degraded] means the resident team has been
    retired after too many worker deaths and regions now run
    sequentially on the master domain. *)
type health = Healthy | Degraded of string

type stats = {
  pool_size : int;  (** resident worker domains (excludes the master) *)
  regions : int;  (** regions dispatched to the resident team *)
  inline_regions : int;  (** regions run inline (1 thread or <= 1 iteration) *)
  spawn_regions : int;  (** nested/contended regions on the spawn fallback *)
  seq_regions : int;  (** regions run sequentially in degraded mode *)
  tasks : int;  (** chunk executions across all regions *)
  busy_ns : int;  (** summed in-body time across team members *)
  region_ns : int;  (** summed region wall-clock time (master view) *)
  idle_ns : int;  (** summed [wall * team - busy]: wait at the join barrier *)
  hist : int array;  (** region wall times: < 1us, < 10us, ..., >= 1s *)
  respawns : int;  (** dead workers replaced by the supervisor *)
  health : health;
}

let reset_stats () =
  Atomic.set c_regions 0;
  Atomic.set c_inline 0;
  Atomic.set c_spawn 0;
  Atomic.set c_seq 0;
  Atomic.set c_tasks 0;
  Atomic.set c_busy_ns 0;
  Atomic.set c_region_ns 0;
  Atomic.set c_idle_ns 0;
  Array.iter (fun a -> Atomic.set a 0) c_hist

let record_region ~wall_ns ~busy_ns ~team =
  Atomic.incr c_regions;
  ignore (Atomic.fetch_and_add c_busy_ns busy_ns);
  ignore (Atomic.fetch_and_add c_region_ns wall_ns);
  ignore (Atomic.fetch_and_add c_idle_ns (max 0 ((wall_ns * team) - busy_ns)));
  Atomic.incr c_hist.(bucket_of_ns wall_ns)

let pp_stats ppf s =
  Format.fprintf ppf
    "pool: %d resident workers, %s%s@\n\
     regions: %d pooled, %d inline, %d spawn-fallback, %d sequential \
     (degraded); %d chunk tasks@\n\
     time: %.3f ms busy / %.3f ms region wall / %.3f ms barrier idle@\n"
    s.pool_size
    (match s.health with
    | Healthy -> "healthy"
    | Degraded reason -> "DEGRADED (" ^ reason ^ ")")
    (if s.respawns > 0 then Printf.sprintf ", %d respawns" s.respawns else "")
    s.regions s.inline_regions s.spawn_regions s.seq_regions s.tasks
    (float_of_int s.busy_ns /. 1e6)
    (float_of_int s.region_ns /. 1e6)
    (float_of_int s.idle_ns /. 1e6);
  let labels =
    [| "<1us"; "<10us"; "<100us"; "<1ms"; "<10ms"; "<100ms"; "<1s"; ">=1s" |]
  in
  Format.fprintf ppf "region wall-time histogram:";
  Array.iteri
    (fun i n -> if n > 0 then Format.fprintf ppf " %s:%d" labels.(i) n)
    s.hist;
  Format.pp_print_newline ppf ()

(* --- resident workers --------------------------------------------------- *)

type mailbox = {
  mu : Mutex.t;
  cv : Condition.t;
  mutable task : (unit -> unit) option;
  mutable stop : bool;
}

type worker = { mb : mailbox; alive : bool Atomic.t; dom : unit Domain.t }

(* True inside a pool worker (or spawn-fallback domain created by the
   pool): a parallel region entered there must not wait on the team it
   is part of. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let pool_lock = Mutex.create ()  (* guards [workers] growth/shutdown *)
let workers : worker array ref = ref [||]

(* One region occupies the resident team at a time; concurrent regions
   take the spawn fallback instead of queueing (see [run]). *)
let region_lock = Mutex.create ()

(* --- supervision state --------------------------------------------------- *)

(* Set by a dying worker so the common region-entry path pays one
   atomic load; the supervisor reaps under [pool_lock]. *)
let dead_flag = Atomic.make false
let death_note : string Atomic.t = Atomic.make ""
let c_respawns = Atomic.make 0

(* Respawn budget: beyond this many worker deaths the pool degrades to
   sequential execution instead of healing (a worker that keeps dying
   is a systemic problem, not a transient). *)
let default_max_respawns = 8
let max_respawns = ref default_max_respawns
let set_max_respawns n = max_respawns := max 0 n

let degraded_reason : string option Atomic.t = Atomic.make None

let health () =
  match Atomic.get degraded_reason with
  | None -> Healthy
  | Some r -> Degraded r

let worker_main mb alive =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock mb.mu;
    while mb.task = None && not mb.stop do
      Condition.wait mb.cv mb.mu
    done;
    let task = mb.task in
    mb.task <- None;
    let stop = mb.stop in
    Mutex.unlock mb.mu;
    match task with
    | Some f ->
      f ();
      loop ()
    | None -> if not stop then loop ()
  in
  (* Supervisor boundary: an exception escaping a task wrapper (chunk
     bodies catch their own — this is a poisoned/crashed worker) marks
     the worker dead for the next region entry to reap.  The domain
     terminates normally so joining it never re-raises. *)
  try loop ()
  with e ->
    Atomic.set death_note (Printexc.to_string e);
    Atomic.set alive false;
    Atomic.set dead_flag true

let spawn_worker () =
  let mb =
    { mu = Mutex.create (); cv = Condition.create (); task = None; stop = false }
  in
  let alive = Atomic.make true in
  { mb; alive; dom = Domain.spawn (fun () -> worker_main mb alive) }

(** Grow the resident team to at least [n] workers (idempotent). *)
let ensure_workers n =
  let n = min n max_pool_size in
  if Array.length !workers < n then begin
    Mutex.lock pool_lock;
    let have = Array.length !workers in
    if have < n then
      workers :=
        Array.append !workers (Array.init (n - have) (fun _ -> spawn_worker ()));
    Mutex.unlock pool_lock
  end

let pool_size () = Array.length !workers

let stats () =
  {
    pool_size = pool_size ();
    regions = Atomic.get c_regions;
    inline_regions = Atomic.get c_inline;
    spawn_regions = Atomic.get c_spawn;
    seq_regions = Atomic.get c_seq;
    tasks = Atomic.get c_tasks;
    busy_ns = Atomic.get c_busy_ns;
    region_ns = Atomic.get c_region_ns;
    idle_ns = Atomic.get c_idle_ns;
    hist = Array.map Atomic.get c_hist;
    respawns = Atomic.get c_respawns;
    health = health ();
  }

(** Stop and join the resident workers (registered [at_exit] so the
    process never hangs on blocked condition waits at shutdown).
    Joins are defensive: a worker that died on its own joins without
    re-raising (its domain body returned normally), but nothing here
    may throw during [at_exit]. *)
let shutdown () =
  Mutex.lock pool_lock;
  let ws = !workers in
  workers := [||];
  Mutex.unlock pool_lock;
  Array.iter
    (fun w ->
      Mutex.lock w.mb.mu;
      w.mb.stop <- true;
      Condition.signal w.mb.cv;
      Mutex.unlock w.mb.mu)
    ws;
  Array.iter (fun w -> try Domain.join w.dom with _ -> ()) ws

let () = at_exit shutdown

(* --- supervision --------------------------------------------------------- *)

(* Retire the resident team and run all subsequent regions
   sequentially.  Safe while holding [region_lock]: the team is idle
   (we own the region) and [shutdown] only takes [pool_lock]. *)
let degrade reason =
  Atomic.set degraded_reason (Some reason);
  shutdown ()

(** Leave degraded mode and reset the respawn budget (tests, or an
    operator who has cleared the underlying cause); workers are
    re-created lazily at the next region. *)
let reset_health () =
  Atomic.set degraded_reason None;
  Atomic.set dead_flag false;
  Atomic.set c_respawns 0

(* Reap dead workers and respawn replacements, or degrade once the
   respawn budget is exhausted.  Called while holding [region_lock],
   so no chunk is in flight on the resident team. *)
let heal_workers () =
  if Atomic.get dead_flag then begin
    Mutex.lock pool_lock;
    Atomic.set dead_flag false;
    let ws = !workers in
    let died = ref 0 in
    Array.iteri
      (fun i w ->
        if not (Atomic.get w.alive) then begin
          (try Domain.join w.dom with _ -> ());
          incr died;
          Atomic.incr c_respawns;
          ws.(i) <- spawn_worker ()
        end)
      ws;
    Mutex.unlock pool_lock;
    if !died > 0 && Atomic.get c_respawns > !max_respawns then
      degrade
        (Printf.sprintf "worker deaths exceeded respawn budget of %d (last: %s)"
           !max_respawns (Atomic.get death_note))
  end

(* --- region planning ---------------------------------------------------- *)

(* Work assignment for one region: [team] logical threads (every one
   of them has at least one chunk — empty static chunks are never
   dispatched) and a [run_thread t] that executes all of thread [t]'s
   chunks.  [body t clo chi] is the user's chunk body. *)
let plan ~sched ~lo ~hi n body =
  let total = hi - lo + 1 in
  match (sched : Sched.t) with
  | Sched.Static ->
    let team = Sched.static_occupancy ~lo ~hi n in
    let chunks = Sched.static_chunks ~lo ~hi (max 1 team) in
    ( team,
      fun t ->
        let clo, chi = chunks.(t) in
        if chi >= clo then begin
          Atomic.incr c_tasks;
          body t clo chi
        end )
  | Sched.Static_chunked k ->
    let k = max 1 k in
    let nchunks = (total + k - 1) / k in
    let team = max 0 (min n nchunks) in
    ( team,
      fun t ->
        let c = ref t in
        while lo + (!c * k) <= hi do
          let s = lo + (!c * k) in
          Atomic.incr c_tasks;
          body t s (min hi (s + (k - 1)));
          c := !c + team
        done )
  | Sched.Dynamic k ->
    let k = max 1 k in
    let nchunks = (total + k - 1) / k in
    let team = max 0 (min n nchunks) in
    let next = Atomic.make lo in
    ( team,
      fun t ->
        let rec pull () =
          let s = Atomic.fetch_and_add next k in
          if s <= hi then begin
            Atomic.incr c_tasks;
            body t s (min hi (s + (k - 1)));
            pull ()
          end
        in
        pull () )

(* --- execution paths ---------------------------------------------------- *)

type latch = { lm : Mutex.t; lcv : Condition.t; mutable pending : int }

let latch_down l =
  Mutex.lock l.lm;
  l.pending <- l.pending - 1;
  if l.pending = 0 then Condition.signal l.lcv;
  Mutex.unlock l.lm

let latch_wait l =
  Mutex.lock l.lm;
  while l.pending > 0 do
    Condition.wait l.lcv l.lm
  done;
  Mutex.unlock l.lm

let reraise_first (exns : exn option array) =
  (* master (thread 0) exception wins, then lowest thread id *)
  Array.iter (function Some e -> raise e | None -> ()) exns

(* Dispatch to the resident team; caller holds [region_lock] and has
   ensured [team - 1] workers exist.  The latch release is in a
   [finally] so even a crashing worker counts down before dying — the
   master can always join; and a crash records a {!Fault.Pool_error}
   in the worker's exception slot so its chunk is reported, never
   silently dropped. *)
let run_on_team ~team run_thread =
  let ws = !workers in
  let exns = Array.make team None in
  let latch =
    { lm = Mutex.create (); lcv = Condition.create (); pending = team - 1 }
  in
  let busy = Atomic.make 0 in
  let timed t () =
    let t0 = now_ns () in
    (try run_thread t with e -> exns.(t) <- Some e);
    ignore (Atomic.fetch_and_add busy (now_ns () - t0))
  in
  for t = 1 to team - 1 do
    let w = ws.(t - 1) in
    let job () =
      Fun.protect
        ~finally:(fun () -> latch_down latch)
        (fun () ->
          if Faultinject.crash_worker ~worker:(t - 1) then begin
            exns.(t) <-
              Some
                (Fault.Pool_error
                   (Printf.sprintf
                      "worker %d died mid-region (injected crash); chunk of \
                       thread %d not executed"
                      (t - 1) t));
            (* mark the death before the latch releases (in [finally]):
               the master may enter the next region the instant the
               join completes, and must see [dead_flag] there *)
            Atomic.set w.alive false;
            Atomic.set death_note
              (Printf.sprintf "injected kill-worker:%d" (t - 1));
            Atomic.set dead_flag true;
            (* escapes the mailbox loop: the worker domain dies and the
               supervisor respawns it at the next region entry *)
            raise (Faultinject.Injected (Printf.sprintf "kill-worker:%d" (t - 1)))
          end;
          timed t ())
    in
    if not (Atomic.get w.alive) then begin
      (* raced with a dying worker (its death not yet reaped): don't
         post to a mailbox nobody drains — record the lost chunk and
         release its latch slot ourselves so the join can't hang *)
      exns.(t) <-
        Some
          (Fault.Pool_error
             (Printf.sprintf
                "worker %d dead at dispatch; chunk of thread %d not executed"
                (t - 1) t));
      latch_down latch
    end
    else begin
      Mutex.lock w.mb.mu;
      w.mb.task <- Some job;
      Condition.signal w.mb.cv;
      Mutex.unlock w.mb.mu
    end
  done;
  timed 0 ();
  latch_wait latch;
  (exns, Atomic.get busy)

(* Spawn-per-region fallback: the pre-pool behaviour, used for nested
   regions and when the resident team is already occupied.  Nested
   regions therefore oversubscribe the machine exactly as the paper
   observes for 8 threads on 4 cores. *)
let run_spawned ~team run_thread =
  let exns = Array.make team None in
  let doms =
    Array.init (team - 1) (fun i ->
        let t = i + 1 in
        Domain.spawn (fun () ->
            Domain.DLS.set in_worker true;
            try run_thread t with e -> exns.(t) <- Some e))
  in
  (try run_thread 0 with e -> exns.(0) <- Some e);
  Array.iter Domain.join doms;
  exns

(* Degraded-mode execution: every logical thread's chunks run on the
   master domain, in thread order.  Chunk assignment — and therefore
   reduction combining order — is identical to the pooled run, so
   results match bit-for-bit; only the parallelism is gone. *)
let run_sequential ~team run_thread =
  let exns = Array.make team None in
  for t = 0 to team - 1 do
    try run_thread t with e -> exns.(t) <- Some e
  done;
  exns

(** Run [body t chunk_lo chunk_hi] over the inclusive range [lo..hi]
    on a team of [threads] logical threads (default
    {!num_threads}), under schedule [sched] (default
    {!Sched.Static}).  Thread 0 is the calling domain (the OpenMP
    master); under [Static] each participating thread receives exactly
    one contiguous chunk, so chunk assignment — and hence reduction
    combining order — is deterministic and identical to the historical
    spawn-per-region runtime. *)
let run ?threads ?(sched = Sched.default) ~lo ~hi body =
  let n = match threads with Some n -> max 1 n | None -> num_threads () in
  let total = hi - lo + 1 in
  if total <= 0 then ()  (* empty iteration space: no dispatch at all *)
  else begin
    (* may raise Faultinject.Injected (fail-region directive) *)
    let region = Faultinject.enter_region () in
    (* chunk-boundary poll points: cooperative cancellation (deadline
       watchdog) and injected chunk delays; one atomic load each when
       no token/plan is installed *)
    let body t clo chi =
      Fault.check_current ();
      Faultinject.chunk_delay ~region;
      body t clo chi
    in
    if n = 1 || total = 1 then begin
      (* single-chunk fast path: no team, no barrier *)
      Atomic.incr c_inline;
      Atomic.incr c_tasks;
      body 0 lo hi
    end
    else begin
      let team, run_thread = plan ~sched ~lo ~hi n body in
      if team <= 1 then begin
        Atomic.incr c_inline;
        run_thread 0
      end
      else if Atomic.get degraded_reason <> None then begin
        (* degraded: resident team retired, domains suspect — run the
           same chunk plan sequentially on the master *)
        Atomic.incr c_seq;
        reraise_first (run_sequential ~team run_thread)
      end
      else if Domain.DLS.get in_worker then begin
        Atomic.incr c_spawn;
        reraise_first (run_spawned ~team run_thread)
      end
      else begin
        ensure_workers (team - 1);
        let resident = pool_size () in
        if team - 1 > resident || not (Mutex.try_lock region_lock) then begin
          (* pool exhausted or another region is in flight *)
          Atomic.incr c_spawn;
          reraise_first (run_spawned ~team run_thread)
        end
        else begin
          let outcome =
            Fun.protect
              ~finally:(fun () -> Mutex.unlock region_lock)
              (fun () ->
                (* reap/respawn workers that died in an earlier region;
                   may flip the pool to degraded mode *)
                heal_workers ();
                if Atomic.get degraded_reason <> None then `Degraded
                else begin
                  let t0 = now_ns () in
                  let exns, busy = run_on_team ~team run_thread in
                  record_region ~wall_ns:(now_ns () - t0) ~busy_ns:busy ~team;
                  `Done exns
                end)
          in
          match outcome with
          | `Done exns -> reraise_first exns
          | `Degraded ->
            Atomic.incr c_seq;
            reraise_first (run_sequential ~team run_thread)
        end
      end
    end
  end
