(** Persistent worker pool of OCaml 5 domains.

    A real OpenMP runtime keeps its thread team resident between
    parallel regions; entering a region is a handful of condition
    signals, not thread creation.  This module reproduces that:
    worker domains are created once (lazily, on first use) and every
    subsequent [run] dispatches chunk tasks to the resident team.

    Dispatch (PR 5) is a top-level task queue rather than a
    one-region-at-a-time team: each region enqueues one task per
    logical thread (minus the master, which runs thread 0 inline) and
    joins them on a countdown latch.  Workers pull tasks from a global
    FIFO, so {e concurrent} regions — one per in-flight [oglaf serve
    --concurrency] call — multiplex onto the same resident workers
    instead of falling back to spawn-per-region domains.  Tasks of
    [Static] regions are pinned to the worker that executed the same
    chunk index in the previous static region (per-worker chunk
    affinity: repeated sweeps over the same grids re-touch warm
    caches); pinned tasks are never stolen, so the chunk-to-worker map
    of identical back-to-back regions is deterministic.

    Sizing: the default team size comes from {!set_num_threads} or the
    [OGLAF_NUM_THREADS] environment variable (falling back to
    [Domain.recommended_domain_count () - 1]); the pool grows on
    demand when a region requests a larger team, so asking for 8
    threads on a 4-core box oversubscribes exactly like the paper's
    8-thread runs.

    Nested regions: a [run] issued from inside a pool worker falls
    back to spawn-per-region domains, reproducing the documented
    oversubscription behaviour of nested [PARALLEL DO] — a worker
    never waits on the queue it is supposed to drain, so the pool
    cannot deadlock on itself.  (Top-level regions issued while the
    pool is busy now queue instead of spawning; only regions {e from
    inside} a worker take the fallback.)

    Supervision (PR 3): a worker domain that dies with an unhandled
    exception drains its own affinity queue on the way out (each
    pending task is reported as {!Fault.Pool_error} and its latch slot
    released, so no join can hang on a corpse) and is respawned at the
    next region entry; when deaths exceed the respawn budget
    ({!set_max_respawns}) the pool degrades: the resident team is
    retired and subsequent regions run their chunk plan {e
    sequentially} on the master domain, in thread order — identical
    chunk assignment, identical results, no parallelism.  {!health}
    reports the mode and is part of {!stats}.

    Cancellation and fault injection: the caller's ambient
    {!Fault.current} token is captured at region entry and
    re-installed around every chunk task wherever it runs, so each
    task polls the deadline of the call it belongs to even when chunk
    tasks of several served calls interleave on one worker; the
    {!Faultinject} hooks fire at region entry, chunk dispatch and
    worker task receipt.

    The runtime keeps lightweight counters ({!stats}) so the region
    entry cost, schedule behaviour, region overlap and worker
    utilisation are observable ([oglaf serve --stats],
    [bench/main.exe pool]). *)

(* --- team sizing -------------------------------------------------------- *)

let env_threads =
  match Sys.getenv_opt "OGLAF_NUM_THREADS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)
  | None -> None

let default_num_threads =
  ref
    (match env_threads with
    | Some n -> n
    | None -> max 1 (Domain.recommended_domain_count () - 1))

let set_num_threads n = default_num_threads := max 1 n
let num_threads () = !default_num_threads

(** Hard cap on resident workers; oversubscription beyond this spills
    to the spawn fallback. *)
let max_pool_size = 64

(* --- stats -------------------------------------------------------------- *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(** Region wall-time histogram buckets: [< 1us, < 10us, ..., < 1s, >= 1s]. *)
let hist_buckets = 8

let bucket_of_ns ns =
  let rec go b limit =
    if b >= hist_buckets - 1 || ns < limit then b else go (b + 1) (limit * 10)
  in
  go 0 1_000

let c_regions = Atomic.make 0
let c_inline = Atomic.make 0
let c_spawn = Atomic.make 0
let c_seq = Atomic.make 0
let c_tasks = Atomic.make 0
let c_busy_ns = Atomic.make 0
let c_region_ns = Atomic.make 0
let c_idle_ns = Atomic.make 0
let c_hist = Array.init hist_buckets (fun _ -> Atomic.make 0)

(* Region overlap gauge: how many pooled regions are in flight right
   now, and the high-water mark (proof that [serve --concurrency]
   actually multiplexes the pool instead of serialising). *)
let c_inflight = Atomic.make 0
let c_max_inflight = Atomic.make 0

let enter_inflight () =
  let n = 1 + Atomic.fetch_and_add c_inflight 1 in
  let rec bump () =
    let m = Atomic.get c_max_inflight in
    if n > m && not (Atomic.compare_and_set c_max_inflight m n) then bump ()
  in
  bump ()

let leave_inflight () = Atomic.decr c_inflight

(** Pool operating mode: [Degraded] means the resident team has been
    retired after too many worker deaths and regions now run
    sequentially on the master domain. *)
type health = Healthy | Degraded of string

type stats = {
  pool_size : int;  (** resident worker domains (excludes the master) *)
  regions : int;  (** regions dispatched to the resident team *)
  inline_regions : int;  (** regions run inline (1 thread or <= 1 iteration) *)
  spawn_regions : int;  (** nested regions on the spawn fallback *)
  seq_regions : int;  (** regions run sequentially in degraded mode *)
  tasks : int;  (** chunk executions across all regions *)
  busy_ns : int;  (** summed in-body time across team members *)
  region_ns : int;  (** summed region wall-clock time (master view) *)
  idle_ns : int;  (** summed [wall * team - busy]: wait at the join barrier *)
  hist : int array;  (** region wall times: < 1us, < 10us, ..., >= 1s *)
  respawns : int;  (** dead workers replaced by the supervisor *)
  max_inflight : int;  (** peak number of concurrently pooled regions *)
  health : health;
}

let reset_stats () =
  Atomic.set c_regions 0;
  Atomic.set c_inline 0;
  Atomic.set c_spawn 0;
  Atomic.set c_seq 0;
  Atomic.set c_tasks 0;
  Atomic.set c_busy_ns 0;
  Atomic.set c_region_ns 0;
  Atomic.set c_idle_ns 0;
  Atomic.set c_max_inflight (Atomic.get c_inflight);
  Array.iter (fun a -> Atomic.set a 0) c_hist

let record_region ~wall_ns ~busy_ns ~team =
  Atomic.incr c_regions;
  ignore (Atomic.fetch_and_add c_busy_ns busy_ns);
  ignore (Atomic.fetch_and_add c_region_ns wall_ns);
  ignore (Atomic.fetch_and_add c_idle_ns (max 0 ((wall_ns * team) - busy_ns)));
  Atomic.incr c_hist.(bucket_of_ns wall_ns)

let pp_stats ppf s =
  Format.fprintf ppf
    "pool: %d resident workers, %s%s@\n\
     regions: %d pooled (peak %d overlapped), %d inline, %d spawn-fallback, \
     %d sequential (degraded); %d chunk tasks@\n\
     time: %.3f ms busy / %.3f ms region wall / %.3f ms barrier idle@\n"
    s.pool_size
    (match s.health with
    | Healthy -> "healthy"
    | Degraded reason -> "DEGRADED (" ^ reason ^ ")")
    (if s.respawns > 0 then Printf.sprintf ", %d respawns" s.respawns else "")
    s.regions s.max_inflight s.inline_regions s.spawn_regions s.seq_regions
    s.tasks
    (float_of_int s.busy_ns /. 1e6)
    (float_of_int s.region_ns /. 1e6)
    (float_of_int s.idle_ns /. 1e6);
  let labels =
    [| "<1us"; "<10us"; "<100us"; "<1ms"; "<10ms"; "<100ms"; "<1s"; ">=1s" |]
  in
  Format.fprintf ppf "region wall-time histogram:";
  Array.iteri
    (fun i n -> if n > 0 then Format.fprintf ppf " %s:%d" labels.(i) n)
    s.hist;
  Format.pp_print_newline ppf ()

(* --- regions, tasks and the latch ---------------------------------------- *)

type latch = { lm : Mutex.t; lcv : Condition.t; mutable pending : int }

let latch_down l =
  Mutex.lock l.lm;
  l.pending <- l.pending - 1;
  if l.pending = 0 then Condition.signal l.lcv;
  Mutex.unlock l.lm

let latch_wait l =
  Mutex.lock l.lm;
  while l.pending > 0 do
    Condition.wait l.lcv l.lm
  done;
  Mutex.unlock l.lm

(* One parallel region in flight: the per-thread runner, a slot per
   logical thread for the first exception it raised, the join latch,
   the caller's cancellation token (re-installed around every task so
   chunks poll the deadline of the call they belong to), and whether
   the region is [Static] (then chunk affinity is recorded). *)
type region = {
  r_run : int -> unit;
  r_exns : exn option array;
  r_latch : latch;
  r_busy : int Atomic.t;
  r_token : Fault.token option;
  r_static : bool;
}

(* One logical thread of a region, as queued for a worker. *)
type task = { t_region : region; t_thread : int }

(* --- resident workers --------------------------------------------------- *)

type worker = {
  w_id : int;  (** slot in [workers] and [locals]; stable across respawn *)
  alive : bool Atomic.t;
  stop : bool ref;  (** guarded by [q_mu] *)
  dom : unit Domain.t;
}

(* True inside a pool worker (or spawn-fallback domain created by the
   pool): a parallel region entered there must not wait on the team it
   is part of. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* The worker slot this domain occupies, [None] on the master and on
   spawn-fallback domains; lets tests observe chunk affinity. *)
let worker_slot : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current_worker () = Domain.DLS.get worker_slot

let pool_lock = Mutex.create ()  (* guards [workers] growth/shutdown/heal *)
let workers : worker array ref = ref [||]

(* The task queue: one global FIFO plus one affinity queue per worker
   slot, all guarded by [q_mu]/[q_cv].  Affinity queues are indexed by
   worker slot, so they survive a respawn: tasks pinned to a dead slot
   are either drained by the dying worker itself (reported as lost
   chunks) or picked up by its replacement. *)
let q_mu = Mutex.create ()
let q_cv = Condition.create ()
let q_global : task Queue.t = Queue.create ()
let locals : task Queue.t array = Array.init max_pool_size (fun _ -> Queue.create ())

(* Chunk affinity: [last_worker.(t)] is the worker slot that executed
   logical thread [t]'s chunk in the most recent [Static] region
   (initially the canonical [t - 1] binding).  Read/written without a
   lock: a stale value only changes which queue a task prefers, never
   correctness. *)
let last_worker = Array.init (max_pool_size + 1) (fun t -> t - 1)

(* --- supervision state --------------------------------------------------- *)

(* Set by a dying worker so the common region-entry path pays one
   atomic load; the supervisor reaps under [pool_lock]. *)
let dead_flag = Atomic.make false
let death_note : string Atomic.t = Atomic.make ""
let c_respawns = Atomic.make 0

(* Respawn budget: beyond this many worker deaths the pool degrades to
   sequential execution instead of healing (a worker that keeps dying
   is a systemic problem, not a transient). *)
let default_max_respawns = 8
let max_respawns = ref default_max_respawns
let set_max_respawns n = max_respawns := max 0 n

let degraded_reason : string option Atomic.t = Atomic.make None

let health () =
  match Atomic.get degraded_reason with
  | None -> Healthy
  | Some r -> Degraded r

let lost_chunk ~slot ~thread =
  Fault.Pool_error
    (Printf.sprintf "worker %d died; chunk of thread %d not executed" slot
       thread)

(* Report a task that will never execute: record the lost chunk and
   release its latch slot so the region's join cannot hang. *)
let abandon_task ~slot task =
  task.t_region.r_exns.(task.t_thread) <-
    Some (lost_chunk ~slot ~thread:task.t_thread);
  latch_down task.t_region.r_latch

(* Execute one queued task on worker [slot].  Any exception the chunk
   body raises is recorded in the region's exception slot (the worker
   survives it); the latch release is in a [finally] so even a
   crashing worker counts down before dying — the master can always
   join.  An injected worker crash records a {!Fault.Pool_error} for
   its chunk and re-raises to kill the worker's domain. *)
let exec_task ~slot ~alive task =
  let r = task.t_region in
  Fun.protect
    ~finally:(fun () -> latch_down r.r_latch)
    (fun () ->
      if Faultinject.crash_worker ~worker:slot then begin
        r.r_exns.(task.t_thread) <-
          Some
            (Fault.Pool_error
               (Printf.sprintf
                  "worker %d died mid-region (injected crash); chunk of \
                   thread %d not executed"
                  slot task.t_thread));
        (* mark the death before the latch releases (in [finally]):
           the master may enter the next region the instant the join
           completes, and must see [dead_flag] there *)
        Atomic.set alive false;
        Atomic.set death_note (Printf.sprintf "injected kill-worker:%d" slot);
        Atomic.set dead_flag true;
        (* escapes the task loop: the worker domain dies and the
           supervisor respawns it at the next region entry *)
        raise (Faultinject.Injected (Printf.sprintf "kill-worker:%d" slot))
      end;
      let t0 = now_ns () in
      (try Fault.with_token_opt r.r_token (fun () -> r.r_run task.t_thread)
       with e -> r.r_exns.(task.t_thread) <- Some e);
      if r.r_static then last_worker.(task.t_thread) <- slot;
      ignore (Atomic.fetch_and_add r.r_busy (now_ns () - t0)))

(* A worker's task source: its own affinity queue first (pinned static
   chunks), then the global FIFO.  Pinned tasks are deliberately not
   stolen by other workers — affinity is a cache-locality contract and
   keeps the chunk-to-worker map of identical regions deterministic;
   a pinned task whose worker is busy simply waits its turn. *)
let next_task ~slot stop =
  Mutex.lock q_mu;
  let rec get () =
    if !stop then None
    else if not (Queue.is_empty locals.(slot)) then Some (Queue.pop locals.(slot))
    else if not (Queue.is_empty q_global) then Some (Queue.pop q_global)
    else begin
      Condition.wait q_cv q_mu;
      get ()
    end
  in
  let t = get () in
  Mutex.unlock q_mu;
  t

(* Death path: a worker leaving with an unhandled exception first
   marks itself dead (dispatchers then stop pinning tasks to its
   queue), then drains its own affinity queue — and the global queue
   too when it is the last one standing — reporting every pending task
   as a lost chunk, so no region joins on a corpse. *)
let drain_on_death ~slot ~alive =
  Atomic.set alive false;
  Atomic.set dead_flag true;
  Mutex.lock q_mu;
  while not (Queue.is_empty locals.(slot)) do
    abandon_task ~slot (Queue.pop locals.(slot))
  done;
  let others_alive =
    Array.exists (fun w' -> w'.w_id <> slot && Atomic.get w'.alive) !workers
  in
  if not others_alive then
    while not (Queue.is_empty q_global) do
      abandon_task ~slot (Queue.pop q_global)
    done;
  Mutex.unlock q_mu

let worker_main ~slot ~stop ~alive =
  Domain.DLS.set in_worker true;
  Domain.DLS.set worker_slot (Some slot);
  let rec loop () =
    match next_task ~slot stop with
    | None -> ()  (* stop requested *)
    | Some task ->
      exec_task ~slot ~alive task;
      loop ()
  in
  (* Supervisor boundary: an exception escaping [exec_task] (chunk
     bodies catch their own — this is a poisoned/crashed worker) marks
     the worker dead for the next region entry to reap.  The domain
     terminates normally so joining it never re-raises. *)
  try loop ()
  with e ->
    Atomic.set death_note (Printexc.to_string e);
    drain_on_death ~slot ~alive

let spawn_worker slot =
  let stop = ref false in
  let alive = Atomic.make true in
  let dom = Domain.spawn (fun () -> worker_main ~slot ~stop ~alive) in
  { w_id = slot; alive; stop; dom }

(** Grow the resident team to at least [n] workers (idempotent). *)
let ensure_workers n =
  let n = min n max_pool_size in
  if Array.length !workers < n then begin
    Mutex.lock pool_lock;
    let have = Array.length !workers in
    if have < n then
      workers :=
        Array.append !workers
          (Array.init (n - have) (fun i -> spawn_worker (have + i)));
    Mutex.unlock pool_lock
  end

let pool_size () = Array.length !workers

let stats () =
  {
    pool_size = pool_size ();
    regions = Atomic.get c_regions;
    inline_regions = Atomic.get c_inline;
    spawn_regions = Atomic.get c_spawn;
    seq_regions = Atomic.get c_seq;
    tasks = Atomic.get c_tasks;
    busy_ns = Atomic.get c_busy_ns;
    region_ns = Atomic.get c_region_ns;
    idle_ns = Atomic.get c_idle_ns;
    hist = Array.map Atomic.get c_hist;
    respawns = Atomic.get c_respawns;
    max_inflight = Atomic.get c_max_inflight;
    health = health ();
  }

(** Stop and join the resident workers (registered [at_exit] so the
    process never hangs on blocked condition waits at shutdown).
    Pending tasks are abandoned (lost chunks, latches released) so no
    caller can be left joining a retired team.  Joins are defensive:
    a worker that died on its own joins without re-raising (its domain
    body returned normally), but nothing here may throw during
    [at_exit]. *)
let shutdown () =
  Mutex.lock pool_lock;
  let ws = !workers in
  workers := [||];
  Mutex.unlock pool_lock;
  Mutex.lock q_mu;
  Array.iter (fun w -> w.stop := true) ws;
  Array.iter
    (fun w ->
      while not (Queue.is_empty locals.(w.w_id)) do
        abandon_task ~slot:w.w_id (Queue.pop locals.(w.w_id))
      done)
    ws;
  while not (Queue.is_empty q_global) do
    abandon_task ~slot:(-1) (Queue.pop q_global)
  done;
  Condition.broadcast q_cv;
  Mutex.unlock q_mu;
  Array.iter (fun w -> try Domain.join w.dom with _ -> ()) ws

let () = at_exit shutdown

(* --- supervision --------------------------------------------------------- *)

(* Retire the resident team and run all subsequent regions
   sequentially.  [shutdown] abandons queued tasks and releases their
   latches, so even regions dispatched concurrently with the
   degradation observe lost chunks rather than hanging. *)
let degrade reason =
  Atomic.set degraded_reason (Some reason);
  shutdown ()

(** Leave degraded mode and reset the respawn budget (tests, or an
    operator who has cleared the underlying cause); workers are
    re-created lazily at the next region. *)
let reset_health () =
  Atomic.set degraded_reason None;
  Atomic.set dead_flag false;
  Atomic.set c_respawns 0

(* Reap dead workers and respawn replacements into the same slot, or
   degrade once the respawn budget is exhausted.  Called at region
   entry; concurrent regions may race here, so the whole
   reap-and-respawn runs under [pool_lock] (the first caller heals,
   the rest see [dead_flag] already cleared).  Tasks other regions
   pinned to the dead slot survive in its affinity queue and are
   drained by the replacement worker. *)
let heal_workers () =
  if Atomic.get dead_flag then begin
    Mutex.lock pool_lock;
    if Atomic.get dead_flag then begin
      Atomic.set dead_flag false;
      let ws = !workers in
      let died = ref 0 in
      Array.iteri
        (fun i w ->
          if not (Atomic.get w.alive) then begin
            (try Domain.join w.dom with _ -> ());
            incr died;
            Atomic.incr c_respawns;
            ws.(i) <- spawn_worker w.w_id
          end)
        ws;
      if !died > 0 && Atomic.get c_respawns > !max_respawns then begin
        Atomic.set degraded_reason
          (Some
             (Printf.sprintf
                "worker deaths exceeded respawn budget of %d (last: %s)"
                !max_respawns (Atomic.get death_note)))
      end
    end;
    Mutex.unlock pool_lock;
    (* retire the team outside [pool_lock]: [degrade] takes it again *)
    match Atomic.get degraded_reason with
    | Some reason when pool_size () > 0 -> degrade reason
    | _ -> ()
  end

(* --- region planning ---------------------------------------------------- *)

(* Work assignment for one region: [team] logical threads (every one
   of them has at least one chunk — empty static chunks are never
   dispatched) and a [run_thread t] that executes all of thread [t]'s
   chunks.  [body t clo chi] is the user's chunk body. *)
let plan ~sched ~lo ~hi n body =
  let total = hi - lo + 1 in
  match (sched : Sched.t) with
  | Sched.Static ->
    let team = Sched.static_occupancy ~lo ~hi n in
    let chunks = Sched.static_chunks ~lo ~hi (max 1 team) in
    ( team,
      fun t ->
        let clo, chi = chunks.(t) in
        if chi >= clo then begin
          Atomic.incr c_tasks;
          body t clo chi
        end )
  | Sched.Static_chunked k ->
    let k = max 1 k in
    let nchunks = (total + k - 1) / k in
    let team = max 0 (min n nchunks) in
    ( team,
      fun t ->
        let c = ref t in
        while lo + (!c * k) <= hi do
          let s = lo + (!c * k) in
          Atomic.incr c_tasks;
          body t s (min hi (s + (k - 1)));
          c := !c + team
        done )
  | Sched.Dynamic k ->
    let k = max 1 k in
    let nchunks = (total + k - 1) / k in
    let team = max 0 (min n nchunks) in
    let next = Atomic.make lo in
    ( team,
      fun t ->
        let rec pull () =
          let s = Atomic.fetch_and_add next k in
          if s <= hi then begin
            Atomic.incr c_tasks;
            body t s (min hi (s + (k - 1)));
            pull ()
          end
        in
        pull () )
  | Sched.Guided k ->
    (* OpenMP guided decay: each pull takes max(k, remaining/team)
       iterations, so chunks shrink as the loop drains (see
       {!Sched.guided_chunk}).  The shared position advances by CAS:
       the size depends on the remaining count, so a plain
       fetch-and-add of a fixed stride cannot express it. *)
    let k = max 1 k in
    let nchunks = (total + k - 1) / k in
    let team = max 0 (min n nchunks) in
    let pos = Atomic.make lo in
    ( team,
      fun t ->
        let rec pull () =
          let s = Atomic.get pos in
          if s <= hi then begin
            let size =
              Sched.guided_chunk ~remaining:(hi - s + 1) ~team ~min_chunk:k
            in
            if Atomic.compare_and_set pos s (s + size) then begin
              Atomic.incr c_tasks;
              body t s (min hi (s + size - 1))
            end;
            pull ()
          end
        in
        pull () )

(* --- execution paths ---------------------------------------------------- *)

let reraise_first (exns : exn option array) =
  (* master (thread 0) exception wins, then lowest thread id *)
  Array.iter (function Some e -> raise e | None -> ()) exns

(* Dispatch one region to the task queue and run thread 0 inline (the
   OpenMP master).  Tasks of [Static] regions are pinned to the worker
   that ran the same chunk index last time (when that slot is alive);
   everything else goes through the global FIFO, where any idle worker
   picks it up — concurrent regions interleave there.  The latch
   counts the queued tasks; every path that consumes a task (normal
   execution, injected crash, death drain, shutdown) releases its
   slot, so the join always completes. *)
let run_queued ~team ~static ~token run_thread =
  let region =
    {
      r_run = run_thread;
      r_exns = Array.make team None;
      r_latch =
        { lm = Mutex.create (); lcv = Condition.create (); pending = team - 1 };
      r_busy = Atomic.make 0;
      r_token = token;
      r_static = static;
    }
  in
  let ws = !workers in
  Mutex.lock q_mu;
  for t = 1 to team - 1 do
    let task = { t_region = region; t_thread = t } in
    let pinned =
      if static then
        let slot = last_worker.(t) in
        if slot >= 0 && slot < Array.length ws && Atomic.get ws.(slot).alive
        then Some slot
        else None
      else None
    in
    match pinned with
    | Some slot -> Queue.push task locals.(slot)
    | None -> Queue.push task q_global
  done;
  Condition.broadcast q_cv;
  Mutex.unlock q_mu;
  let t0 = now_ns () in
  (try run_thread 0 with e -> region.r_exns.(0) <- Some e);
  ignore (Atomic.fetch_and_add region.r_busy (now_ns () - t0));
  latch_wait region.r_latch;
  (region.r_exns, Atomic.get region.r_busy)

(* Spawn-per-region fallback: the pre-pool behaviour, used for regions
   nested inside a pool worker.  Nested regions therefore
   oversubscribe the machine exactly as the paper observes for 8
   threads on 4 cores. *)
let run_spawned ~team run_thread =
  let exns = Array.make team None in
  let doms =
    Array.init (team - 1) (fun i ->
        let t = i + 1 in
        Domain.spawn (fun () ->
            Domain.DLS.set in_worker true;
            try run_thread t with e -> exns.(t) <- Some e))
  in
  (try run_thread 0 with e -> exns.(0) <- Some e);
  Array.iter Domain.join doms;
  exns

(* Degraded-mode execution: every logical thread's chunks run on the
   master domain, in thread order.  Chunk assignment — and therefore
   reduction combining order — is identical to the pooled run, so
   results match bit-for-bit; only the parallelism is gone. *)
let run_sequential ~team run_thread =
  let exns = Array.make team None in
  for t = 0 to team - 1 do
    try run_thread t with e -> exns.(t) <- Some e
  done;
  exns

(** Run [body t chunk_lo chunk_hi] over the inclusive range [lo..hi]
    on a team of [threads] logical threads (default
    {!num_threads}), under schedule [sched] (default
    {!Sched.default}).  Thread 0 is the calling domain (the OpenMP
    master); under [Static] each participating thread receives exactly
    one contiguous chunk, so chunk assignment — and hence reduction
    combining order — is deterministic and identical to the historical
    spawn-per-region runtime.  Concurrent top-level regions multiplex
    onto the shared resident workers through the task queue; only
    regions entered from inside a worker take the spawn fallback. *)
let run ?threads ?(sched = Sched.default) ~lo ~hi body =
  let n = match threads with Some n -> max 1 n | None -> num_threads () in
  let total = hi - lo + 1 in
  if total <= 0 then ()  (* empty iteration space: no dispatch at all *)
  else begin
    (* may raise Faultinject.Injected (fail-region directive) *)
    let region = Faultinject.enter_region () in
    (* chunk-boundary poll points: cooperative cancellation (deadline
       watchdog) and injected chunk delays; one atomic load each when
       no token/plan is installed *)
    let body t clo chi =
      Fault.check_current ();
      Faultinject.chunk_delay ~region;
      body t clo chi
    in
    if n = 1 || total = 1 then begin
      (* single-chunk fast path: no team, no barrier *)
      Atomic.incr c_inline;
      Atomic.incr c_tasks;
      body 0 lo hi
    end
    else begin
      let team, run_thread = plan ~sched ~lo ~hi n body in
      (* the caller's deadline travels with the region: every chunk
         task re-installs it on the domain that executes it *)
      let token = Fault.current () in
      let run_thread t = Fault.with_token_opt token (fun () -> run_thread t) in
      if team <= 1 then begin
        Atomic.incr c_inline;
        run_thread 0
      end
      else if Atomic.get degraded_reason <> None then begin
        (* degraded: resident team retired, domains suspect — run the
           same chunk plan sequentially on the master *)
        Atomic.incr c_seq;
        reraise_first (run_sequential ~team run_thread)
      end
      else if Domain.DLS.get in_worker then begin
        Atomic.incr c_spawn;
        reraise_first (run_spawned ~team run_thread)
      end
      else begin
        ensure_workers (team - 1);
        (* reap/respawn workers that died in an earlier region; may
           flip the pool to degraded mode *)
        heal_workers ();
        if Atomic.get degraded_reason <> None then begin
          Atomic.incr c_seq;
          reraise_first (run_sequential ~team run_thread)
        end
        else if team - 1 > pool_size () then begin
          (* requested team exceeds the pool cap *)
          Atomic.incr c_spawn;
          reraise_first (run_spawned ~team run_thread)
        end
        else begin
          enter_inflight ();
          let outcome =
            Fun.protect
              ~finally:(fun () -> leave_inflight ())
              (fun () ->
                let t0 = now_ns () in
                let exns, busy =
                  run_queued ~team ~static:(sched = Sched.Static) ~token
                    run_thread
                in
                record_region ~wall_ns:(now_ns () - t0) ~busy_ns:busy ~team;
                exns)
          in
          reraise_first outcome
        end
      end
    end
  end
