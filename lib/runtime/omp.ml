(** OpenMP-flavoured parallel runtime on OCaml 5 domains.

    Provides the fork-join [parallel_for] the interpreter uses to
    execute [!$OMP PARALLEL DO].  Since PR 2 the fork-join runs on the
    persistent worker pool ({!Pool}): domains are created once and
    reused across regions, with per-loop scheduling ({!Sched}) —
    [Static] (the default, OpenMP's static chunking with deterministic
    chunk assignment), [Static_chunked k] and [Dynamic k].  Nested
    parallel regions fall back to spawn-per-region domains, which
    reproduces the oversubscription behaviour the paper observes at 8
    threads on a 4-core machine.

    A global lock backs CRITICAL sections and the atomic-update
    helper. *)

let set_num_threads = Pool.set_num_threads
let num_threads = Pool.num_threads

(* One global lock backs both CRITICAL sections and ATOMIC updates;
   fine for correctness, and its contention is part of what makes
   fine-grained parallel loops slow — as in the paper. *)
let critical_mutex = Mutex.create ()

let critical f =
  Mutex.lock critical_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock critical_mutex) f

let atomic_update = critical

(** Static chunking of the inclusive iteration space [lo..hi]; see
    {!Sched.static_chunks}. *)
let static_chunks = Sched.static_chunks

(** Run [body t chunk_lo chunk_hi] on [threads] logical threads over
    [lo..hi], dispatching to the resident {!Pool} workers.  The
    calling domain acts as thread 0 (like an OpenMP master), so a
    1-thread parallel loop still pays a small runtime cost but
    dispatches nothing.  Under non-[Static] schedules [body] may be
    invoked several times per thread, once per chunk. *)
let parallel_for ?threads ?sched ~lo ~hi body =
  Pool.run ?threads ?sched ~lo ~hi body

(** Fork-join helper returning per-thread results in thread order
    (deterministic reduction combining).  Always runs under [Static]:
    each thread contributes exactly one result. *)
let parallel_for_collect ?threads ~lo ~hi body =
  let n = match threads with Some n -> max 1 n | None -> num_threads () in
  let results = Array.make n None in
  Pool.run ~threads:n ~sched:Sched.Static ~lo ~hi (fun t clo chi ->
      results.(t) <- Some (body t clo chi));
  Array.to_list results |> List.filter_map Fun.id
