(** Loop-scheduling policies of the parallel runtime.

    Mirrors OpenMP's [SCHEDULE] clause for the subset the interpreter
    executes: [Static] is OpenMP's default schedule (one contiguous
    block per thread, deterministic chunk assignment and therefore
    deterministic reduction combining order), [Static_chunked k] deals
    chunks of [k] iterations round-robin, and [Dynamic k] lets threads
    pull [k]-iteration chunks from a shared counter (load-balancing at
    the price of determinism). *)

type t =
  | Static
  | Static_chunked of int  (** round-robin chunks of this size *)
  | Dynamic of int  (** work-stealing chunks of this size *)

let default = Static

let to_string = function
  | Static -> "static"
  | Static_chunked k -> Printf.sprintf "chunk:%d" k
  | Dynamic k -> Printf.sprintf "dynamic:%d" k

(** Parse the surface syntax shared by the CLI ([--schedule]) and the
    [.gpi] [schedule] clause: [static], [chunk:<k>] or [dynamic:<k>]
    (chunk sizes must be >= 1). *)
let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "static" -> Some Static
  | s -> (
    let chunked prefix mk =
      let pl = String.length prefix in
      if String.length s > pl && String.sub s 0 pl = prefix then
        match int_of_string_opt (String.sub s pl (String.length s - pl)) with
        | Some k when k >= 1 -> Some (mk k)
        | _ -> None
      else None
    in
    match chunked "chunk:" (fun k -> Static_chunked k) with
    | Some _ as r -> r
    | None -> chunked "dynamic:" (fun k -> Dynamic k))

(** Static chunking of the inclusive iteration space [lo..hi] (unit
    step) into [n] contiguous chunks; returns [(chunk_lo, chunk_hi)]
    per thread, empty chunks as [(lo, lo - 1)]-style inverted ranges.
    OpenMP's default [schedule(static)]. *)
let static_chunks ~lo ~hi n =
  let total = hi - lo + 1 in
  if total <= 0 then Array.make n (lo, lo - 1)
  else
    Array.init n (fun t ->
        let base = total / n and extra = total mod n in
        let start = lo + (t * base) + min t extra in
        let len = base + if t < extra then 1 else 0 in
        (start, start + len - 1))

(** Number of logical threads that receive at least one iteration
    under [schedule(static)] — workers beyond this get empty chunks
    and are never dispatched to. *)
let static_occupancy ~lo ~hi n = max 0 (min n (hi - lo + 1))
