(** Loop-scheduling policies of the parallel runtime.

    Mirrors OpenMP's [SCHEDULE] clause for the subset the interpreter
    executes: [Static] is OpenMP's default schedule (one contiguous
    block per thread, deterministic chunk assignment and therefore
    deterministic reduction combining order), [Static_chunked k] deals
    chunks of [k] iterations round-robin, [Dynamic k] lets threads
    pull [k]-iteration chunks from a shared counter (load-balancing at
    the price of determinism), and [Guided k] pulls chunks whose size
    decays with the remaining work — OpenMP's
    [schedule(guided, k)] rule: each chunk is
    [max k (remaining / team)], so early chunks are large (low
    dispatch overhead) and late chunks small (load balance at the
    tail). *)

type t =
  | Static
  | Static_chunked of int  (** round-robin chunks of this size *)
  | Dynamic of int  (** work-stealing chunks of this size *)
  | Guided of int  (** decaying chunks, floor of this size *)

let default = Static

let to_string = function
  | Static -> "static"
  | Static_chunked k -> Printf.sprintf "chunk:%d" k
  | Dynamic k -> Printf.sprintf "dynamic:%d" k
  | Guided k -> Printf.sprintf "guided:%d" k

(** Parse the surface syntax shared by the CLI ([--schedule]), the
    [.gpi] [schedule] clause and tuning-plan files: [static],
    [chunk:<k>], [static:<k>] (the OpenMP-consistent alias for
    [chunk:<k>]), [dynamic[:<k>]] or [guided[:<k>]] (chunk sizes must
    be >= 1; bare [dynamic] and [guided] mean chunk/floor 1, OpenMP's
    default).  [of_string (to_string s) = Some s] holds for every
    constructor (pinned by a property test). *)
let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "static" -> Some Static
  | "dynamic" -> Some (Dynamic 1)
  | "guided" -> Some (Guided 1)
  | s -> (
    let chunked prefix mk =
      let pl = String.length prefix in
      if String.length s > pl && String.sub s 0 pl = prefix then
        match int_of_string_opt (String.sub s pl (String.length s - pl)) with
        | Some k when k >= 1 -> Some (mk k)
        | _ -> None
      else None
    in
    let first_some l = List.find_map (fun f -> f ()) l in
    first_some
      [
        (fun () -> chunked "chunk:" (fun k -> Static_chunked k));
        (* OpenMP spells it schedule(static, k); plans serialize the
           same spelling, so accept it everywhere chunk:<k> is *)
        (fun () -> chunked "static:" (fun k -> Static_chunked k));
        (fun () -> chunked "dynamic:" (fun k -> Dynamic k));
        (fun () -> chunked "guided:" (fun k -> Guided k));
      ])

(** Static chunking of the inclusive iteration space [lo..hi] (unit
    step) into [n] contiguous chunks; returns [(chunk_lo, chunk_hi)]
    per thread, empty chunks as [(lo, lo - 1)]-style inverted ranges.
    OpenMP's default [schedule(static)]. *)
let static_chunks ~lo ~hi n =
  let total = hi - lo + 1 in
  if total <= 0 then Array.make n (lo, lo - 1)
  else
    Array.init n (fun t ->
        let base = total / n and extra = total mod n in
        let start = lo + (t * base) + min t extra in
        let len = base + if t < extra then 1 else 0 in
        (start, start + len - 1))

(** Number of logical threads that receive at least one iteration
    under [schedule(static)] — workers beyond this get empty chunks
    and are never dispatched to. *)
let static_occupancy ~lo ~hi n = max 0 (min n (hi - lo + 1))

(** {1 Guided decay rule}

    OpenMP's [schedule(guided, k)]: the next chunk covers
    [max k (remaining / team)] iterations (clamped to what is left).
    Strictly positive for [remaining >= 1], so a guided loop always
    terminates; the sizes are non-increasing as [remaining] shrinks,
    down to the floor [k]. *)

(** Size of the next guided chunk given [remaining] iterations, a
    [team] of logical threads and the floor [min_chunk]. *)
let guided_chunk ~remaining ~team ~min_chunk =
  min remaining (max (max 1 min_chunk) (remaining / max 1 team))

(** The full chunk-size sequence a guided loop of [total] iterations
    produces when chunks are taken one at a time (the decay law, as a
    pure function — the pool's concurrent pulls interleave threads but
    each pull obeys {!guided_chunk}). *)
let guided_chunk_sizes ~total ~team ~min_chunk =
  let rec go remaining acc =
    if remaining <= 0 then List.rev acc
    else
      let c = guided_chunk ~remaining ~team ~min_chunk in
      go (remaining - c) (c :: acc)
  in
  go total []
