(** Structured fault taxonomy and cooperative cancellation.

    Every layer of the serving stack (pool -> interpreter -> service
    -> CLI) reports failures in the same shape: a {!t} classifying
    {e what} went wrong, rendered uniformly by {!to_string} (one-line
    diagnostics) and {!to_json} (machine-readable, for batch reports
    and CI).  The classes mirror the pipeline stages:

    - [Parse_fault]    — a script or calls file did not parse;
    - [Analysis_fault] — auto-parallelization / codegen / reparse of
                         the generated source failed;
    - [Runtime_fault]  — the interpreted kernel raised (bad argument
                         count, division by zero, bounds, STOP, an
                         injected failure, ...);
    - [Timeout_fault]  — a per-call deadline fired ({!token});
    - [Pool_fault]     — the worker pool lost a domain mid-region
                         ({!Pool_error});
    - [Overload_fault] — the long-lived listener shed the request at
                         admission because its bounded pending queue
                         was at the [--max-pending] high-water mark
                         (or the server was draining).

    [Pool_fault], [Timeout_fault] and [Overload_fault] are
    {e transient} ({!is_transient}): the pool self-heals at the next
    region entry, a deadline may have fired under load, and a shed
    request can be resubmitted once the queue drains.  The other
    classes are deterministic and retrying is pointless.

    The second half of the module is the cooperative cancellation
    substrate behind [oglaf serve --timeout-ms]: a {!token} carries an
    absolute deadline plus an explicit cancel flag, an ambient token
    is installed per served call ({!with_token}), and the pool's chunk
    dispatch and the interpreter's loop bodies poll
    {!check_current} — a runaway kernel raises {!Cancelled} at the
    next chunk/iteration boundary instead of wedging the batch. *)

(** {1 Taxonomy} *)

type t =
  | Parse_fault of { line : int; reason : string }
  | Analysis_fault of { reason : string }
  | Runtime_fault of { call : string; line : int; reason : string }
  | Timeout_fault of { call : string; line : int; reason : string }
  | Pool_fault of { call : string; line : int; reason : string }
  | Overload_fault of { pending : int; limit : int }
      (** [pending] requests queued when admission rejected this one
          against a high-water mark of [limit] *)

(** Fault class alone, for per-batch counts. *)
type cls = Parse | Analysis | Runtime | Timeout | Pool | Overload

let all_classes = [ Parse; Analysis; Runtime; Timeout; Pool; Overload ]

let cls_of = function
  | Parse_fault _ -> Parse
  | Analysis_fault _ -> Analysis
  | Runtime_fault _ -> Runtime
  | Timeout_fault _ -> Timeout
  | Pool_fault _ -> Pool
  | Overload_fault _ -> Overload

let cls_name = function
  | Parse -> "parse"
  | Analysis -> "analysis"
  | Runtime -> "runtime"
  | Timeout -> "timeout"
  | Pool -> "pool"
  | Overload -> "overload"

(** Transient faults are worth retrying: the pool respawns dead
    workers at the next region entry, a timeout may reflect load
    rather than the kernel itself, and a shed request can be
    resubmitted once the pending queue drains.  Parse/analysis/runtime
    faults are deterministic. *)
let is_transient f =
  match cls_of f with
  | Timeout | Pool | Overload -> true
  | Parse | Analysis | Runtime -> false

let reason = function
  | Parse_fault { reason; _ }
  | Analysis_fault { reason }
  | Runtime_fault { reason; _ }
  | Timeout_fault { reason; _ }
  | Pool_fault { reason; _ } ->
    reason
  | Overload_fault { pending; limit } ->
    Printf.sprintf "server overloaded: %d requests pending (max-pending %d)"
      pending limit

let to_string f =
  match f with
  | Parse_fault { line; reason } ->
    Printf.sprintf "parse fault (line %d): %s" line reason
  | Analysis_fault { reason } -> Printf.sprintf "analysis fault: %s" reason
  | Runtime_fault { call; line; reason } ->
    Printf.sprintf "runtime fault in %s (calls line %d): %s" call line reason
  | Timeout_fault { call; line; reason } ->
    Printf.sprintf "timeout fault in %s (calls line %d): %s" call line reason
  | Pool_fault { call; line; reason } ->
    Printf.sprintf "pool fault in %s (calls line %d): %s" call line reason
  | Overload_fault _ -> Printf.sprintf "overload fault: %s" (reason f)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** Uniform shape: [class] and [reason] always present, [call]/[line]
    when the fault is attached to a served call or source line. *)
let to_json f =
  let field k v = Printf.sprintf "\"%s\":%s" k v in
  let str s = "\"" ^ json_escape s ^ "\"" in
  let fields =
    match f with
    | Parse_fault { line; reason } ->
      [ field "class" (str "parse");
        field "line" (string_of_int line);
        field "reason" (str reason) ]
    | Analysis_fault { reason } ->
      [ field "class" (str "analysis"); field "reason" (str reason) ]
    | Runtime_fault { call; line; reason }
    | Timeout_fault { call; line; reason }
    | Pool_fault { call; line; reason } ->
      [ field "class" (str (cls_name (cls_of f)));
        field "call" (str call);
        field "line" (string_of_int line);
        field "reason" (str reason) ]
    | Overload_fault { pending; limit } ->
      [ field "class" (str "overload");
        field "pending" (string_of_int pending);
        field "limit" (string_of_int limit);
        field "reason" (str (reason f)) ]
  in
  "{" ^ String.concat "," fields ^ "}"

(** {1 Pool failures}

    Raised by {!Pool} when a worker domain dies mid-region (the chunk
    it held is reported, never silently dropped).  Classified as
    [Pool_fault] by the service layer. *)
exception Pool_error of string

(** {1 Cooperative cancellation} *)

(** Raised at a chunk or iteration boundary once the ambient token is
    cancelled or past its deadline.  The payload is the reason,
    e.g. ["deadline of 0.05s exceeded"]. *)
exception Cancelled of string

(* Monotonic-enough clock for deadlines: OCaml's stdlib exposes no
   CLOCK_MONOTONIC without an external package, so the watchdog uses
   gettimeofday; deadlines are short (ms..s) and a wall-clock step
   merely fires a timeout early or late, never corrupts results. *)
let now_s = Unix.gettimeofday

type token = {
  tk_cancelled : bool Atomic.t;
  tk_deadline : float;  (** absolute time on {!now_s}; [infinity] = none *)
  tk_budget_s : float;  (** the relative deadline, for messages *)
}

(** Fresh token; [deadline_s] is relative to now. *)
let make_token ?deadline_s () =
  match deadline_s with
  | None ->
    { tk_cancelled = Atomic.make false; tk_deadline = infinity; tk_budget_s = infinity }
  | Some d ->
    { tk_cancelled = Atomic.make false; tk_deadline = now_s () +. d; tk_budget_s = d }

let cancel tk = Atomic.set tk.tk_cancelled true

let expired tk =
  Atomic.get tk.tk_cancelled
  || (tk.tk_deadline < infinity && now_s () > tk.tk_deadline)

(** @raise Cancelled if the token is cancelled or past its deadline. *)
let check tk =
  if Atomic.get tk.tk_cancelled then raise (Cancelled "call cancelled")
  else if tk.tk_deadline < infinity && now_s () > tk.tk_deadline then
    raise (Cancelled (Printf.sprintf "deadline of %gs exceeded" tk.tk_budget_s))

(* The ambient token is per-domain: with concurrent batch serving
   several calls are in flight at once, each on its own slot domain
   with its own deadline, so a process-global slot would let one
   call's deadline cancel another.  The pool captures the caller's
   token at region entry and re-installs it (via {!with_token_opt})
   around every chunk task it runs on a worker or spawned domain, so
   a chunk polls the deadline of the call it belongs to wherever it
   executes. *)
let ambient : token option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get ambient

(** Run [f] with [tk] installed as this domain's ambient token
    (restored on exit); the pool and interpreter poll it via
    {!check_current}. *)
let with_token tk f =
  let prev = Domain.DLS.get ambient in
  Domain.DLS.set ambient (Some tk);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient prev) f

(** [with_token_opt (current ()) f] run on another domain propagates
    the caller's cancellation context there; [None] is a plain call. *)
let with_token_opt tko f =
  match tko with None -> f () | Some tk -> with_token tk f

(** Poll point: cheap no-op when no token is installed. *)
let check_current () =
  match Domain.DLS.get ambient with None -> () | Some tk -> check tk
