(** Directives mode of [oglaf autopar]: annotate legacy Fortran in
    place.

    Every DO loop of every subprogram is lowered (via {!Lower}) into
    the grid IR just far enough to run {!Glaf_analysis.Depend} on it;
    outermost parallelizable loops get a [!$OMP PARALLEL DO] directive
    attached to the AST (private / reduction / collapse clauses derived
    from the analysis), everything else is reported with its obstacle.
    The annotated AST prints back to compilable source with
    {!Glaf_fortran.Pp_ast}.

    Interpreting the annotated unit is bit-identical to the original at
    [threads = 1] under every schedule: privatized scalars are
    write-before-read by construction, and the interpreter folds
    single-thread reductions in serial order (see
    [exec_do_parallel]). *)

open Glaf_ir
open Glaf_analysis
module Ast = Glaf_fortran.Ast
module Fortran_gen = Glaf_codegen.Fortran_gen

(** Outcome for one analyzed DO loop. *)
type status =
  | Annotated of Loop_info.t  (** directive attached *)
  | Serial of Loop_info.t  (** analyzed; obstacles reported *)
  | Nonunit_step  (** parallel runtime requires unit step *)
  | Preexisting  (** already carried a [!$OMP] directive *)
  | Unanalyzable of string  (** lowering failed: reason *)

type entry = {
  e_sub : string;
  e_var : string;  (** loop variable *)
  e_status : status;
}

type t = {
  annotated : Ast.compilation_unit;
  entries : entry list;
  skipped : (string * string) list;
      (** subprograms whose declarations would not lower *)
}

let pseudo_sub_of_main (m : Ast.main_unit) : Ast.subprogram =
  {
    Ast.sub_name = m.Ast.main_name;
    sub_kind = `Subroutine;
    sub_args = [];
    sub_decls = m.Ast.main_decls;
    sub_body = m.Ast.main_body;
  }

let annotate_subprogram ~pure ~program ~enclosing cu (sp : Ast.subprogram) :
    Ast.stmt list * entry list =
  let entries = ref [] in
  let record var status =
    entries := { e_sub = sp.Ast.sub_name; e_var = var; e_status = status }
      :: !entries
  in
  match Lower.make_ctx cu sp with
  | exception Lower.Unsupported why ->
    record "-" (Unanalyzable why);
    (sp.Ast.sub_body, List.rev !entries)
  | ctx ->
    (* force-register every reachable grid (incl. lazy TYPE elements)
       so per-loop analysis sees a complete symbol table *)
    (try ignore (Lower.lower_body ctx sp.Ast.sub_body)
     with Lower.Unsupported _ -> ());
    let rec walk_stmts stmts = List.map walk_stmt stmts
    and walk_stmt (s : Ast.stmt) : Ast.stmt =
      match s with
      | Ast.Do l -> Ast.Do (walk_do l)
      | Ast.If_block (branches, else_) ->
        Ast.If_block
          ( List.map (fun (c, b) -> (c, walk_stmts b)) branches,
            walk_stmts else_ )
      | Ast.Do_while (c, body) -> Ast.Do_while (c, walk_stmts body)
      | Ast.Omp_critical body -> Ast.Omp_critical (walk_stmts body)
      | _ -> s
    and walk_do (l : Ast.do_loop) : Ast.do_loop =
      match l.Ast.do_omp with
      | Some _ ->
        (* hand-annotated already: trust it, leave the nest alone *)
        record l.Ast.do_var Preexisting;
        l
      | None -> (
        match Lower.lower_loop ctx l with
        | exception Lower.Unsupported why ->
          record l.Ast.do_var (Unanalyzable why);
          { l with Ast.do_body = walk_stmts l.Ast.do_body }
        | ir_loop ->
          if ir_loop.Stmt.step <> Expr.Int_lit 1 then begin
            (* the parallel runtime only executes unit-step DO *)
            record l.Ast.do_var Nonunit_step;
            { l with Ast.do_body = walk_stmts l.Ast.do_body }
          end
          else begin
            let func = Lower.func_of_ctx ctx in
            let env = Depend.env_of_program ~pure program enclosing func in
            let info = Depend.analyze env ir_loop in
            if info.Loop_info.parallel then begin
              record l.Ast.do_var (Annotated info);
              let d = Option.get (Loop_info.to_directive info) in
              (* inner loops of an annotated nest stay serial *)
              { l with Ast.do_omp = Some (Fortran_gen.gen_directive d) }
            end
            else begin
              record l.Ast.do_var (Serial info);
              { l with Ast.do_body = walk_stmts l.Ast.do_body }
            end
          end)
    in
    let body = walk_stmts sp.Ast.sub_body in
    (body, List.rev !entries)

(** Analyze and annotate a whole compilation unit. *)
let run ?(pure = []) (cu : Ast.compilation_unit) : t =
  (* whole-program best-effort lowering: callee summaries for the
     dependence analysis.  Subprograms that fail to lower are absent,
     so calls to them show up as Unsafe_call — conservative. *)
  let funcs, skipped = Lower.lower_all cu in
  let enclosing = Ir_module.make ~functions:funcs "legacy" in
  let program = Ir_module.program ~modules:[ enclosing ] "legacy" in
  let entries = ref [] in
  let do_sub sp =
    let body, es = annotate_subprogram ~pure ~program ~enclosing cu sp in
    entries := !entries @ es;
    body
  in
  let annotated =
    List.map
      (fun (u : Ast.program_unit) ->
        match u with
        | Ast.Standalone sp ->
          Ast.Standalone { sp with Ast.sub_body = do_sub sp }
        | Ast.Module m ->
          Ast.Module
            {
              m with
              Ast.mod_contains =
                List.map
                  (fun sp -> { sp with Ast.sub_body = do_sub sp })
                  m.Ast.mod_contains;
            }
        | Ast.Main m ->
          let sp = pseudo_sub_of_main m in
          Ast.Main { m with Ast.main_body = do_sub sp })
      cu
  in
  { annotated; entries = !entries; skipped }

let annotated_count t =
  List.length
    (List.filter
       (fun e -> match e.e_status with Annotated _ -> true | _ -> false)
       t.entries)

let pp_report ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "%s: loop over %s: " e.e_sub e.e_var;
      (match e.e_status with
      | Annotated info ->
        Format.fprintf ppf "PARALLEL";
        if info.Loop_info.collapsible then Format.fprintf ppf " collapse(2)";
        List.iter
          (fun (r : Loop_info.reduction) ->
            Format.fprintf ppf " reduction(%s)" r.Loop_info.red_var)
          info.Loop_info.reductions;
        if info.Loop_info.private_vars <> [] then
          Format.fprintf ppf " private(%s)"
            (String.concat "," info.Loop_info.private_vars);
        Format.fprintf ppf " {%s}"
          (Loop_info.show_loop_class info.Loop_info.classification)
      | Serial info ->
        Format.fprintf ppf "serial";
        List.iter
          (fun o -> Format.fprintf ppf " [%s]" (Loop_info.obstacle_to_string o))
          info.Loop_info.obstacles;
        Format.fprintf ppf " {%s}"
          (Loop_info.show_loop_class info.Loop_info.classification)
      | Nonunit_step -> Format.fprintf ppf "serial [non-unit step]"
      | Preexisting -> Format.fprintf ppf "kept existing directive"
      | Unanalyzable why -> Format.fprintf ppf "serial [not lowered: %s]" why);
      Format.pp_print_newline ppf ())
    t.entries;
  List.iter
    (fun (sub, why) ->
      Format.fprintf ppf "%s: skipped in whole-program analysis: %s@." sub why)
    t.skipped
