(** Equivalence-by-construction for lifted/annotated kernels.

    Every lift is checked before it ships: the original subprogram and
    the lifted (or annotated) version run through the interpreter on
    the same inputs, and the results must be {e bit-identical} — return
    value, PRINT output, every module variable, every COMMON member,
    every derived-type element, compared by [Int64.bits_of_float] for
    reals.  The variant additionally runs under every schedule the
    runtime implements; at one thread each schedule must reproduce the
    serial bits exactly (the interpreter folds single-thread reductions
    in serial order, see [exec_do_parallel]).

    This reuses the differential-testing discipline of
    [test/test_bytecode_diff.ml], pointed at the lift pipeline. *)

open Glaf_fortran
open Glaf_runtime
open Glaf_interp

type outcome = {
  o_value : Value.t option option;
      (** [None] = raised; [Some v] = returned, with the call's value *)
  o_output : string;  (** PRINT output *)
  o_error : string option;
  o_state : (string * string) list;  (** sorted (path, encoded bits) *)
}

(* ------------------------------------------------------------------ *)
(* Bit-exact encodings                                                 *)
(* ------------------------------------------------------------------ *)

let encode_float x = Printf.sprintf "f%Lx" (Int64.bits_of_float x)

let encode_value : Value.t -> string = function
  | Value.Int n -> "i" ^ string_of_int n
  | Value.Real x -> encode_float x
  | Value.Bool b -> if b then "T" else "F"
  | Value.Str s -> "s" ^ s
  | Value.Arr a ->
    let b = Buffer.create 64 in
    for i = 0 to Farray.size a - 1 do
      Buffer.add_string b
        (match Farray.get_linear a i with
        | Farray.Cf x -> encode_float x
        | Farray.Ci n -> string_of_int n
        | Farray.Cb v -> if v then "T" else "F"
        | Farray.Cs s -> s);
      Buffer.add_char b ','
    done;
    Buffer.contents b

let encode_cell : Farray.cell -> string = function
  | Farray.Cf x -> encode_float x
  | Farray.Ci n -> "i" ^ string_of_int n
  | Farray.Cb b -> if b then "T" else "F"
  | Farray.Cs s -> "s" ^ s

let rec snapshot_slot path (s : Interp.slot) acc =
  if s.Interp.is_param then acc
  else
    match s.Interp.entry with
    | Interp.Scalar v -> (path, encode_value v) :: acc
    | Interp.Array a ->
      let n = Farray.size a in
      let rec go i acc =
        if i >= n then acc
        else
          go (i + 1)
            (( path ^ "[" ^ string_of_int i ^ "]",
               encode_cell (Farray.get_linear a i) )
            :: acc)
      in
      go 0 acc
    | Interp.Unalloc _ -> (path, "unallocated") :: acc
    | Interp.Struct obj -> snapshot_obj path obj acc
    | Interp.Struct_array (objs, _) ->
      let acc = ref acc in
      Array.iteri
        (fun i obj ->
          acc :=
            snapshot_obj (path ^ "[" ^ string_of_int i ^ "]") obj !acc)
        objs;
      !acc

and snapshot_obj path obj acc =
  Hashtbl.fold (fun f s acc -> snapshot_slot (path ^ "%" ^ f) s acc) obj acc

(** Every observable piece of persistent state: module variables and
    COMMON members.  Modules are force-initialized first so both sides
    enumerate the same scopes even when one side never touched a
    module. *)
let snapshot (st : Interp.state) : (string * string) list =
  List.iter
    (function
      | Ast.Module m -> ignore (Interp.init_module st m.Ast.mod_name)
      | _ -> ())
    st.Interp.cu;
  let acc = ref [] in
  Hashtbl.iter
    (fun mod_name (scope : Interp.scope) ->
      Hashtbl.iter
        (fun v s -> acc := snapshot_slot (mod_name ^ "." ^ v) s !acc)
        scope.Interp.vars)
    st.Interp.module_scopes;
  Hashtbl.iter
    (fun block tbl ->
      Hashtbl.iter
        (fun v s -> acc := snapshot_slot ("/" ^ block ^ "/" ^ v) s !acc)
        tbl)
    st.Interp.commons;
  List.sort compare !acc

(* ------------------------------------------------------------------ *)
(* Running one configuration                                           *)
(* ------------------------------------------------------------------ *)

(** Run [name(args)] (after the [setup] calls) on a fresh interpreter
    state and capture value + output + persistent state. *)
let run_call ?(bytecode = true) ?(threads = 1) ?sched ?(setup = [])
    (cu : Ast.compilation_unit) (name : string) (args : Ast.expr list) :
    outcome =
  let buf = Buffer.create 256 in
  let st = Interp.make_state ~printer:(Buffer.add_string buf) cu in
  Interp.set_bytecode st bytecode;
  Interp.set_threads st threads;
  (match sched with Some s -> Interp.set_schedule st s | None -> ());
  let value, error =
    try
      List.iter (fun (f, a) -> ignore (Interp.call st f a)) setup;
      (Some (Interp.call st name args), None)
    with
    | Interp.Fortran_error m -> (None, Some ("fortran error: " ^ m))
    | Value.Runtime_error m -> (None, Some ("runtime error: " ^ m))
    | Farray.Bounds_error m -> (None, Some ("bounds error: " ^ m))
  in
  {
    o_value = value;
    o_output = Buffer.contents buf;
    o_error = error;
    o_state = snapshot st;
  }

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

let value_str = function
  | None -> "<no value>"
  | Some v -> encode_value v

let compare_outcomes ~(label : string) (a : outcome) (b : outcome) :
    (unit, string) result =
  let fail fmt = Format.kasprintf (fun s -> Error (label ^ ": " ^ s)) fmt in
  match (a.o_error, b.o_error) with
  | Some ea, Some eb ->
    if String.equal ea eb then Ok ()
    else fail "errors differ: %s vs %s" ea eb
  | Some ea, None -> fail "original raised (%s), variant succeeded" ea
  | None, Some eb -> fail "variant raised: %s" eb
  | None, None -> (
    let va = Option.value ~default:None a.o_value in
    let vb = Option.value ~default:None b.o_value in
    let vsa = Option.map encode_value va and vsb = Option.map encode_value vb in
    if vsa <> vsb then
      fail "return values differ: %s vs %s"
        (value_str va) (value_str vb)
    else if not (String.equal a.o_output b.o_output) then
      fail "PRINT output differs (%d vs %d bytes)"
        (String.length a.o_output) (String.length b.o_output)
    else
      let rec diff sa sb =
        match (sa, sb) with
        | [], [] -> Ok ()
        | (pa, va) :: ra, (pb, vb) :: rb when String.equal pa pb ->
          if String.equal va vb then diff ra rb
          else fail "%s differs: %s vs %s" pa va vb
        | (pa, _) :: _, (pb, _) :: _ ->
          fail "state shape differs at %s vs %s" pa pb
        | (pa, _) :: _, [] -> fail "variant lost state at %s" pa
        | [], (pb, _) :: _ -> fail "variant gained state at %s" pb
      in
      diff a.o_state b.o_state)

(* ------------------------------------------------------------------ *)
(* The verification matrix                                             *)
(* ------------------------------------------------------------------ *)

let schedules : (string * Sched.t option) list =
  [
    ("default", None);
    ("static", Some Sched.Static);
    ("static,8", Some (Sched.Static_chunked 8));
    ("dynamic,1", Some (Sched.Dynamic 1));
    ("guided,2", Some (Sched.Guided 2));
  ]

(** Verify that [variant_name] in [variant_cu] is bit-identical to
    [name] in [cu] on the given inputs: the original runs serially
    once, the variant runs under every schedule (at each thread count
    in [threads], default 1).  Returns the number of configurations
    checked, or the first difference. *)
let equivalent ?(setup = []) ?(args = []) ?(threads = [ 1 ])
    ~original:(cu, name) ~variant:(variant_cu, variant_name) () :
    (int, string) result =
  let baseline = run_call ~setup cu name args in
  (* a failing baseline verifies nothing — reject instead of comparing
     error strings, so a typo in --setup can't "verify" vacuously *)
  (match baseline.o_error with
  | Some e -> raise (Lift_kernel.Lift_error ("original run failed: " ^ e))
  | None -> ());
  let checks = ref 0 in
  let rec loop = function
    | [] -> Ok !checks
    | (t, (sname, sched)) :: rest -> (
      let got = run_call ~threads:t ?sched ~setup variant_cu variant_name args in
      let label = Printf.sprintf "schedule %s, threads %d" sname t in
      match compare_outcomes ~label baseline got with
      | Ok () ->
        incr checks;
        loop rest
      | Error _ as e -> e)
  in
  loop
    (List.concat_map (fun t -> List.map (fun s -> (t, s)) schedules) threads)

(** Deterministic argument synthesis for a lifted kernel: scalar dummy
    arguments get fixed, position-dependent values ("generated inputs"
    — the verifier needs {e some} input vector when the caller supplies
    none). *)
let synthesize_args (f : Glaf_ir.Func.t) : Ast.expr list =
  List.mapi
    (fun i p ->
      match Glaf_ir.Func.find_grid f p with
      | Some g when Glaf_ir.Grid.is_scalar g -> (
        match Glaf_ir.Grid.elem_type g with
        | Glaf_ir.Types.T_int -> Ast.Int_lit (i + 2)
        | Glaf_ir.Types.T_logical -> Ast.Logical_lit true
        | Glaf_ir.Types.T_string -> Ast.Str_lit "x"
        | _ -> Ast.Real_lit (0.5 +. (0.75 *. float_of_int (i + 1)), true))
      | _ ->
        raise
          (Lift_kernel.Lift_error
             (Printf.sprintf
                "cannot synthesize a value for array argument %s; pass \
                 --call with explicit arguments"
                p)))
    f.Glaf_ir.Func.params
