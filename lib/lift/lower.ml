(** Lowering legacy Fortran AST into the grid IR — the paper's reverse
    path.

    [lib/fortran] parses an existing [.f90] file; this module raises
    its subprograms into {!Glaf_ir} so they flow through the same
    Autopar → codegen → interpreter pipeline as kernels built with the
    GPI.  Every variable becomes a grid whose [storage] class records
    where it came from: dummy arguments ([Arg]), locals ([Local]),
    [USE]d module variables ([External_module]), COMMON members
    ([Common]) and elements of legacy derived-type variables
    ([Type_element]) — exactly the integration features of the paper's
    §3, recovered from source instead of declared in the GPI.

    Lowering is total on the subset the analyses understand and raises
    {!Unsupported} (with a one-line reason) on everything else; callers
    either skip the subprogram (whole-program best effort) or fall back
    to per-loop lowering (directives mode). *)

open Glaf_ir
module Ast = Glaf_fortran.Ast

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let elem_of_base : Ast.base_type -> Types.elem_type = function
  | Ast.Integer -> Types.T_int
  | Ast.Real -> Types.T_real
  | Ast.Real8 -> Types.T_real8
  | Ast.Logical -> Types.T_logical
  | Ast.Character _ -> Types.T_string
  | Ast.Derived t -> unsupported "derived type %s has no element type" t

let implicit_elem name =
  match name.[0] with
  | 'i' .. 'n' -> Types.T_int
  | _ -> Types.T_real8

(** What a source name means inside the subprogram being lowered. *)
type sym =
  | Sconst of Ast.expr  (** folded PARAMETER literal, inlined on use *)
  | Sgrid of Grid.t
  | Sstruct of string * string option
      (** derived-type variable: type name, owning module (if module
          scope — only those support [%]-element lowering) *)

type ctx = {
  cu : Ast.compilation_unit;
  sub : Ast.subprogram;
  types : (string, Ast.decl list) Hashtbl.t;  (** derived-type fields *)
  syms : (string, sym) Hashtbl.t;
  mutable grids_rev : Grid.t list;  (** registration order, reversed *)
  mutable result : (string * Grid.t) option;
      (** function name -> result-alias grid *)
}

(* ------------------------------------------------------------------ *)
(* Constant folding (PARAMETERs and dimension bounds)                  *)
(* ------------------------------------------------------------------ *)

let rec fold_const ctx (e : Ast.expr) : Ast.expr option =
  match e with
  | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Str_lit _ ->
    Some e
  | Ast.Desig [ (n, []) ] -> (
    match Hashtbl.find_opt ctx.syms (String.lowercase_ascii n) with
    | Some (Sconst lit) -> Some lit
    | _ -> None)
  | Ast.Unop (Ast.Pos, a) -> fold_const ctx a
  | Ast.Unop (Ast.Neg, a) -> (
    match fold_const ctx a with
    | Some (Ast.Int_lit n) -> Some (Ast.Int_lit (-n))
    | Some (Ast.Real_lit (x, d)) -> Some (Ast.Real_lit (-.x, d))
    | _ -> None)
  | Ast.Binop (op, a, b) -> (
    match (fold_const ctx a, fold_const ctx b) with
    | Some (Ast.Int_lit x), Some (Ast.Int_lit y) -> (
      match op with
      | Ast.Add -> Some (Ast.Int_lit (x + y))
      | Ast.Sub -> Some (Ast.Int_lit (x - y))
      | Ast.Mul -> Some (Ast.Int_lit (x * y))
      | Ast.Div when y <> 0 -> Some (Ast.Int_lit (x / y))
      | _ -> None)
    | _ -> None)
  | _ -> None

let fold_int ctx e =
  match fold_const ctx e with
  | Some (Ast.Int_lit n) -> Some n
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Symbol / grid registration                                          *)
(* ------------------------------------------------------------------ *)

let key = String.lowercase_ascii

let find_sym ctx name = Hashtbl.find_opt ctx.syms (key name)

let add_grid ctx (g : Grid.t) =
  match find_sym ctx g.Grid.name with
  | Some (Sgrid g') when Grid.equal g g' -> ()
  | Some _ -> unsupported "name collision on %s" g.Grid.name
  | None ->
    Hashtbl.replace ctx.syms (key g.Grid.name) (Sgrid g);
    ctx.grids_rev <- g :: ctx.grids_rev

(** Replace an already-registered grid (storage rebinding for args and
    COMMON members). *)
let rebind_grid ctx name (g' : Grid.t) =
  Hashtbl.replace ctx.syms (key name) (Sgrid g');
  ctx.grids_rev <-
    List.map
      (fun (g : Grid.t) -> if String.equal g.Grid.name g'.Grid.name then g' else g)
      ctx.grids_rev

(** Dimension list for an entity.  The IR convention (see
    {!Glaf_codegen.Fortran_gen}) is that [Fixed n] / [Sym s] give the
    {e upper bound}, with [lower] defaulting to 1. *)
let dims_of ctx ~ent_name (dims : (Ast.expr option * Ast.expr) list option)
    ~(deferred : int option) : Grid.dim list =
  match deferred with
  | Some rank ->
    (* deferred shape [(:,:)] — extents only known at ALLOCATE time;
       synthesize symbolic extents (never printed for externally
       declared grids, and local deferred arrays are only reachable
       through ALLOCATE, which lowering rejects). *)
    List.init rank (fun i ->
        Grid.dim (Grid.Sym (Printf.sprintf "%s_extent%d" ent_name (i + 1))))
  | None -> (
    match dims with
    | None -> []
    | Some ds ->
      List.map
        (fun (lo_opt, hi) ->
          let lower =
            match lo_opt with
            | None -> 1
            | Some e -> (
              match fold_int ctx e with
              | Some n -> n
              | None ->
                unsupported "non-constant lower bound of %s" ent_name)
          in
          match fold_int ctx hi with
          | Some n -> Grid.dim ~lower (Grid.Fixed n)
          | None -> (
            match hi with
            | Ast.Desig [ (s, []) ] when lower = 1 -> Grid.dim (Grid.Sym s)
            | _ -> unsupported "unsupported extent for %s" ent_name))
        ds)

(** Fields of a derived type as (name, elem) pairs; [None] when a field
    is itself an array or derived (record grids hold scalar fields). *)
let record_fields ctx tname =
  match Hashtbl.find_opt ctx.types (key tname) with
  | None -> unsupported "unknown derived type %s" tname
  | Some fields ->
    List.concat_map
      (function
        | Ast.Var_decl { base; attrs; entities } ->
          List.map
            (fun (e : Ast.entity) ->
              let dimmed =
                e.Ast.ent_dims <> None || e.Ast.ent_deferred <> None
                || List.exists
                     (function Ast.Dimension _ -> true | _ -> false)
                     attrs
              in
              if dimmed then
                unsupported "array field %s of type %s" e.Ast.ent_name tname
              else (e.Ast.ent_name, elem_of_base base))
            entities
        | _ -> [])
      fields

let is_function ctx =
  match ctx.sub.Ast.sub_kind with `Function _ -> true | `Subroutine -> false

(** Register one declared entity. *)
let register_entity ctx ~(base : Ast.base_type) ~(attrs : Ast.attr list)
    ~(storage : Grid.storage) (e : Ast.entity) =
  let name = e.Ast.ent_name in
  let attr_dims =
    List.find_map (function Ast.Dimension d -> Some d | _ -> None) attrs
  in
  let dims =
    match e.Ast.ent_dims with Some d -> Some d | None -> attr_dims
  in
  let is_param = List.mem Ast.Parameter attrs in
  let allocatable = List.mem Ast.Allocatable attrs in
  let save = List.mem Ast.Save attrs in
  if is_param then begin
    match e.Ast.ent_init with
    | Some init -> (
      match fold_const ctx init with
      | Some lit -> Hashtbl.replace ctx.syms (key name) (Sconst lit)
      | None -> unsupported "non-constant parameter %s" name)
    | None -> unsupported "parameter %s without value" name
  end
  else
    match base with
    | Ast.Derived tname -> (
      match dims with
      | None ->
        (* scalar derived-type variable: elements are lowered lazily as
           Type_element grids when referenced *)
        let owner =
          match storage with
          | Grid.External_module m -> Some m
          | _ -> None
        in
        Hashtbl.replace ctx.syms (key name) (Sstruct (tname, owner))
      | Some _ ->
        (* array of derived type: a record grid with scalar fields *)
        let fields = record_fields ctx tname in
        let g =
          Grid.make ~kind:(Grid.Record fields)
            ~dims:(dims_of ctx ~ent_name:name dims ~deferred:e.Ast.ent_deferred)
            ~storage ~allocatable ~save name
        in
        add_grid ctx g)
    | _ ->
      let elem = elem_of_base base in
      let grid_name, sym_key =
        (* a declaration of the function's own name declares its result;
           alias it to a fresh local so calls to the function and reads
           of the result variable stay distinguishable in the IR *)
        if is_function ctx && key name = key ctx.sub.Ast.sub_name then
          (name ^ "_r", name)
        else (name, name)
      in
      let g =
        Grid.make ~kind:(Grid.Dense elem)
          ~dims:(dims_of ctx ~ent_name:name dims ~deferred:e.Ast.ent_deferred)
          ~storage ~allocatable ~save grid_name
      in
      if String.equal grid_name name then add_grid ctx g
      else begin
        (match find_sym ctx sym_key with
        | Some _ -> unsupported "name collision on %s" sym_key
        | None -> ());
        Hashtbl.replace ctx.syms (key sym_key) (Sgrid g);
        ctx.grids_rev <- g :: ctx.grids_rev;
        ctx.result <- Some (ctx.sub.Ast.sub_name, g)
      end

(* ------------------------------------------------------------------ *)
(* Context construction                                                *)
(* ------------------------------------------------------------------ *)

let collect_types ctx decls =
  List.iter
    (function
      | Ast.Type_def { type_name; fields } ->
        Hashtbl.replace ctx.types (key type_name) fields
      | _ -> ())
    decls

(** Import a module's public names, honoring an ONLY list (parameters
    are always imported — dimension bounds need them). *)
let rec process_use ctx ~depth m_name only =
  if depth > 8 then unsupported "USE nesting too deep at %s" m_name
  else
    match Ast.find_module ctx.cu m_name with
    | None -> unsupported "unknown module %s" m_name
    | Some m ->
      collect_types ctx m.Ast.mod_decls;
      let allowed name =
        only = [] || List.exists (fun o -> key o = key name) only
      in
      List.iter
        (function
          | Ast.Use (inner, inner_only) ->
            process_use ctx ~depth:(depth + 1) inner inner_only
          | Ast.Var_decl { base; attrs; entities } ->
            let is_param = List.mem Ast.Parameter attrs in
            List.iter
              (fun (e : Ast.entity) ->
                if is_param || allowed e.Ast.ent_name then
                  match find_sym ctx e.Ast.ent_name with
                  | Some _ -> ()  (* first import wins *)
                  | None ->
                    register_entity ctx ~base ~attrs
                      ~storage:(Grid.External_module m.Ast.mod_name)
                      e)
              entities
          | _ -> ())
        m.Ast.mod_decls

let make_ctx (cu : Ast.compilation_unit) (sp : Ast.subprogram) : ctx =
  let ctx =
    {
      cu;
      sub = sp;
      types = Hashtbl.create 8;
      syms = Hashtbl.create 32;
      grids_rev = [];
      result = None;
    }
  in
  (* derived types visible from anywhere (modules may be USEd) *)
  List.iter
    (function
      | Ast.Module m -> collect_types ctx m.Ast.mod_decls
      | _ -> ())
    cu;
  collect_types ctx sp.Ast.sub_decls;
  (* COMMON membership: block name per member, from any COMMON decl *)
  let common_of = Hashtbl.create 8 in
  List.iter
    (function
      | Ast.Common (block, members) ->
        List.iter (fun m -> Hashtbl.replace common_of (key m) block) members
      | _ -> ())
    sp.Ast.sub_decls;
  let storage_of_local name =
    match Hashtbl.find_opt common_of (key name) with
    | Some block -> Grid.Common block
    | None -> Grid.Local
  in
  (* declarations in order: USE imports then locals *)
  List.iter
    (function
      | Ast.Use (m, only) -> process_use ctx ~depth:0 m only
      | Ast.Var_decl { base; attrs; entities } ->
        List.iter
          (fun (e : Ast.entity) ->
            register_entity ctx ~base ~attrs
              ~storage:(storage_of_local e.Ast.ent_name)
              e)
          entities
      | Ast.Common _ | Ast.Implicit_none | Ast.External _
      | Ast.Decl_comment _ | Ast.Type_def _ ->
        ())
    sp.Ast.sub_decls;
  (* COMMON members never declared with a type: implicit typing *)
  Hashtbl.iter
    (fun member block ->
      match find_sym ctx member with
      | Some _ -> ()
      | None ->
        add_grid ctx
          (Grid.make
             ~kind:(Grid.Dense (implicit_elem member))
             ~storage:(Grid.Common block) member))
    common_of;
  (* dummy arguments: rebind declared grids to Arg storage, synthesize
     implicit scalars for undeclared ones *)
  List.iteri
    (fun i arg ->
      match find_sym ctx arg with
      | Some (Sgrid g) -> rebind_grid ctx arg { g with Grid.storage = Grid.Arg i }
      | Some (Sconst _) -> unsupported "argument %s is a PARAMETER" arg
      | Some (Sstruct _) -> unsupported "derived-type argument %s" arg
      | None ->
        add_grid ctx
          (Grid.make
             ~kind:(Grid.Dense (implicit_elem arg))
             ~storage:(Grid.Arg i) arg))
    sp.Ast.sub_args;
  (* function result: if no declaration named it, use the header type *)
  (match sp.Ast.sub_kind with
  | `Function rt when ctx.result = None ->
    let elem =
      match rt with
      | Some b -> elem_of_base b
      | None -> implicit_elem sp.Ast.sub_name
    in
    let g = Grid.make ~kind:(Grid.Dense elem) (sp.Ast.sub_name ^ "_r") in
    (match find_sym ctx sp.Ast.sub_name with
    | Some _ -> unsupported "name collision on %s" sp.Ast.sub_name
    | None -> ());
    Hashtbl.replace ctx.syms (key sp.Ast.sub_name) (Sgrid g);
    ctx.grids_rev <- g :: ctx.grids_rev;
    ctx.result <- Some (sp.Ast.sub_name, g)
  | _ -> ());
  ctx

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                 *)
(* ------------------------------------------------------------------ *)

let lower_binop : Ast.binop -> Expr.binop = function
  | Ast.Add -> Expr.Add
  | Ast.Sub -> Expr.Sub
  | Ast.Mul -> Expr.Mul
  | Ast.Div -> Expr.Div
  | Ast.Pow -> Expr.Pow
  | Ast.Eq | Ast.Eqv -> Expr.Eq
  | Ast.Ne | Ast.Neqv -> Expr.Ne
  | Ast.Lt -> Expr.Lt
  | Ast.Le -> Expr.Le
  | Ast.Gt -> Expr.Gt
  | Ast.Ge -> Expr.Ge
  | Ast.And -> Expr.And
  | Ast.Or -> Expr.Or
  | Ast.Concat -> unsupported "string concatenation"

let lower_lit : Ast.expr -> Expr.t = function
  | Ast.Int_lit n -> Expr.Int_lit n
  | Ast.Real_lit (x, _) -> Expr.Real_lit x
  | Ast.Logical_lit b -> Expr.Bool_lit b
  | Ast.Str_lit s -> Expr.Str_lit s
  | _ -> unsupported "non-literal constant"

(** Lazily synthesize the Type_element grid for [v%field]. *)
let type_element_grid ctx ~tname ~owner ~var ~field : Grid.t =
  let owner =
    match owner with
    | Some m -> m
    | None -> unsupported "%%-access to non-module variable %s" var
  in
  let fields =
    match Hashtbl.find_opt ctx.types (key tname) with
    | Some fs -> fs
    | None -> unsupported "unknown derived type %s" tname
  in
  let decl =
    List.find_map
      (function
        | Ast.Var_decl { base; attrs; entities } ->
          List.find_map
            (fun (e : Ast.entity) ->
              if key e.Ast.ent_name = key field then Some (base, attrs, e)
              else None)
            entities
        | _ -> None)
      fields
  in
  match decl with
  | None -> unsupported "type %s has no element %s" tname field
  | Some (base, attrs, e) ->
    let attr_dims =
      List.find_map (function Ast.Dimension d -> Some d | _ -> None) attrs
    in
    let dims =
      match e.Ast.ent_dims with Some d -> Some d | None -> attr_dims
    in
    let g =
      Grid.make
        ~kind:(Grid.Dense (elem_of_base base))
        ~dims:(dims_of ctx ~ent_name:field dims ~deferred:e.Ast.ent_deferred)
        ~storage:(Grid.Type_element (owner, var))
        field
    in
    add_grid ctx g;
    g

let rec lower_expr ctx (e : Ast.expr) : Expr.t =
  match e with
  | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Str_lit _ ->
    lower_lit e
  | Ast.Unop (Ast.Pos, a) -> lower_expr ctx a
  | Ast.Unop (Ast.Neg, a) -> Expr.Unop (Expr.Neg, lower_expr ctx a)
  | Ast.Unop (Ast.Not, a) -> Expr.Unop (Expr.Not, lower_expr ctx a)
  | Ast.Binop (op, a, b) ->
    Expr.Binop (lower_binop op, lower_expr ctx a, lower_expr ctx b)
  | Ast.Desig d -> lower_desig ctx d
  | Ast.Implied_do _ -> unsupported "implied DO"
  | Ast.Section _ -> unsupported "array section"

and lower_args ctx args = List.map (lower_expr ctx) args

and lower_desig ctx (d : Ast.designator) : Expr.t =
  match d with
  | [ (name, args) ] -> (
    match find_sym ctx name with
    | Some (Sconst lit) ->
      if args = [] then lower_lit lit
      else unsupported "subscripted parameter %s" name
    | Some (Sgrid g) ->
      Expr.Ref
        { Expr.grid = g.Grid.name; field = None; indices = lower_args ctx args }
    | Some (Sstruct (t, _)) -> unsupported "derived variable %s of type %s" name t
    | None ->
      if args <> [] then
        (* undeclared name with arguments: a function reference *)
        Expr.Call (String.lowercase_ascii name, lower_args ctx args)
      else begin
        (* implicit scalar (loop index or implicitly typed local) *)
        add_grid ctx
          (Grid.make ~kind:(Grid.Dense (implicit_elem name)) name);
        Expr.Ref { Expr.grid = name; field = None; indices = [] }
      end)
  | [ (vname, vargs); (field, fargs) ] -> (
    match find_sym ctx vname with
    | Some (Sstruct (tname, owner)) ->
      if vargs <> [] then unsupported "subscripted derived variable %s" vname
      else begin
        let g = type_element_grid ctx ~tname ~owner ~var:vname ~field in
        ignore g;
        Expr.Ref
          { Expr.grid = field; field = None; indices = lower_args ctx fargs }
      end
    | Some (Sgrid g) -> (
      (* array-of-records element: v(i)%f *)
      match g.Grid.kind with
      | Grid.Record _ when fargs = [] ->
        Expr.Ref
          {
            Expr.grid = g.Grid.name;
            field = Some field;
            indices = lower_args ctx vargs;
          }
      | _ -> unsupported "%%-access to %s" vname)
    | _ -> unsupported "%%-access to %s" vname)
  | _ -> unsupported "deep part-ref chain %s" (Ast.desig_name d)

(* ------------------------------------------------------------------ *)
(* Statement lowering                                                  *)
(* ------------------------------------------------------------------ *)

let gref_of ctx (d : Ast.designator) : Expr.gref =
  match lower_desig ctx d with
  | Expr.Ref r -> r
  | Expr.Call _ ->
    unsupported "assignment to undeclared array %s" (Ast.desig_name d)
  | _ -> unsupported "assignment to constant %s" (Ast.desig_name d)

let rec lower_stmt ctx (s : Ast.stmt) : Stmt.t list =
  match s with
  | Ast.Assign (d, e) -> [ Stmt.Assign (gref_of ctx d, lower_expr ctx e) ]
  | Ast.If_block (branches, else_) ->
    [
      Stmt.If
        ( List.map
            (fun (c, body) -> (lower_expr ctx c, lower_body ctx body))
            branches,
          lower_body ctx else_ );
    ]
  | Ast.If_arith (c, s) ->
    [ Stmt.If ([ (lower_expr ctx c, lower_stmt ctx s) ], []) ]
  | Ast.Do l -> [ Stmt.For (lower_do ctx l) ]
  | Ast.Do_while (c, body) ->
    [ Stmt.While (lower_expr ctx c, lower_body ctx body) ]
  | Ast.Call (name, args) ->
    [ Stmt.Call (String.lowercase_ascii name, lower_args ctx args) ]
  | Ast.Return -> [ lower_return ctx ]
  | Ast.Exit -> [ Stmt.Exit_loop ]
  | Ast.Cycle -> [ Stmt.Cycle_loop ]
  | Ast.Continue -> []
  | Ast.Comment c -> [ Stmt.Comment c ]
  | Ast.Omp_atomic (Ast.Assign (d, e)) ->
    [ Stmt.Atomic (gref_of ctx d, lower_expr ctx e) ]
  | Ast.Omp_atomic _ -> unsupported "atomic non-assignment"
  | Ast.Omp_critical body -> [ Stmt.Critical (lower_body ctx body) ]
  | Ast.Omp_barrier -> unsupported "barrier"
  | Ast.Stop _ -> unsupported "STOP"
  | Ast.Allocate _ -> unsupported "ALLOCATE"
  | Ast.Deallocate _ -> unsupported "DEALLOCATE"
  | Ast.Print _ -> unsupported "PRINT"

and lower_return ctx : Stmt.t =
  match ctx.result with
  | Some (_, g) -> Stmt.Return (Some (Expr.var g.Grid.name))
  | None -> Stmt.Return None

and lower_body ctx body = List.concat_map (lower_stmt ctx) body

(** Lower one DO loop (the unit directives mode analyzes).  The
    original's own [!$OMP] annotation, if any, is dropped — analysis
    re-derives it. *)
and lower_do ctx (l : Ast.do_loop) : Stmt.loop =
  let step =
    match l.Ast.do_step with
    | None -> Expr.Int_lit 1
    | Some e -> (
      match fold_const ctx e with
      | Some (Ast.Int_lit n) -> Expr.Int_lit n
      | _ -> lower_expr ctx e)
  in
  (* make sure the index is registered as a scalar grid *)
  (match find_sym ctx l.Ast.do_var with
  | Some (Sgrid _) -> ()
  | Some _ -> unsupported "loop index %s is not a variable" l.Ast.do_var
  | None ->
    add_grid ctx
      (Grid.make
         ~kind:(Grid.Dense (implicit_elem l.Ast.do_var))
         l.Ast.do_var));
  {
    Stmt.index = l.Ast.do_var;
    lo = lower_expr ctx l.Ast.do_lo;
    hi = lower_expr ctx l.Ast.do_hi;
    step;
    body = lower_body ctx l.Ast.do_body;
    directive = None;
    schedule = None;
  }

let lower_loop ctx (l : Ast.do_loop) : Stmt.loop = lower_do ctx l

(* ------------------------------------------------------------------ *)
(* Subprogram / program lowering                                       *)
(* ------------------------------------------------------------------ *)

(** Snapshot the context as a {!Func.t} with the given steps. *)
let func_of_ctx ?(name = "") ?(steps = []) ctx : Func.t =
  let name = if name = "" then ctx.sub.Ast.sub_name else name in
  let return =
    match ctx.result with
    | Some (_, g) -> Some (Grid.elem_type g)
    | None -> None
  in
  Func.make ?return ~params:ctx.sub.Ast.sub_args
    ~grids:(List.rev ctx.grids_rev) ~steps name

(** Lower a whole subprogram into a function.  [rename] gives the IR
    function a fresh name so the original and the lifted version can
    coexist in one compilation unit. *)
let lower_subprogram ?rename (cu : Ast.compilation_unit)
    (sp : Ast.subprogram) : Func.t =
  let ctx = make_ctx cu sp in
  let body = lower_body ctx sp.Ast.sub_body in
  let body =
    (* a function falling off the end still returns its result variable *)
    match ctx.result with
    | Some _ -> body @ [ lower_return ctx ]
    | None -> body
  in
  let name =
    match rename with Some n -> n | None -> sp.Ast.sub_name
  in
  func_of_ctx ~name ~steps:[ Func.step "lifted body" body ] ctx

(** Best-effort lowering of every subprogram in the unit; returns the
    lowered functions (original names) and per-subprogram failures.
    Subprograms that do not lower are {e excluded} — their callers see
    an [Unsafe_call] obstacle instead of an empty (pure-looking)
    summary. *)
let lower_all (cu : Ast.compilation_unit) :
    Func.t list * (string * string) list =
  List.fold_left
    (fun (fs, errs) sp ->
      match lower_subprogram cu sp with
      | f -> (fs @ [ f ], errs)
      | exception Unsupported why -> (fs, errs @ [ (sp.Ast.sub_name, why) ]))
    ([], []) (Ast.all_subprograms cu)
