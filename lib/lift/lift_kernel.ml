(** Lift mode of [oglaf autopar]: raise a legacy subprogram into the
    grid IR and regenerate it as a servable parallel kernel.

    The pipeline is the paper's reverse path end to end:

    parse ▸ {!Lower} ▸ {!Glaf_analysis.Autopar} ▸
    {!Glaf_codegen.Fortran_gen} ▸ re-parse ▸ interpret

    The lifted function is renamed [<name>_lifted] so the original and
    the generated kernel coexist in one compilation unit (the
    interpreter resolves subprogram names last-wins, so distinct names
    are required).  Directives whose loop step is not the literal 1 are
    stripped after analysis — {!Glaf_analysis.Depend} does not inspect
    the annotated loop's own step, but the parallel runtime executes
    unit-step loops only. *)

open Glaf_ir
module Ast = Glaf_fortran.Ast
module Pp_ast = Glaf_fortran.Pp_ast
module Parser = Glaf_fortran.Parser
module Autopar = Glaf_analysis.Autopar
module Fortran_gen = Glaf_codegen.Fortran_gen

exception Lift_error of string

let lift_error fmt = Format.kasprintf (fun s -> raise (Lift_error s)) fmt

type t = {
  kernel : string;  (** name of the lifted function, [<orig>_lifted] *)
  func : Func.t;  (** annotated IR of the lifted kernel *)
  report : Autopar.report;  (** per-loop analysis, lifted kernel only *)
  combined : Ast.compilation_unit;
      (** original unit + generated [glaf_lift] module, re-parsed from
          the printed source so execution exercises the printer *)
  source : string;  (** printed combined source *)
}

let rec strip_nonunit stmts =
  List.map
    (fun (s : Stmt.t) ->
      match s with
      | Stmt.For l ->
        let l = { l with Stmt.body = strip_nonunit l.Stmt.body } in
        if l.Stmt.step <> Expr.Int_lit 1 then
          Stmt.For { l with Stmt.directive = None }
        else Stmt.For l
      | Stmt.If (branches, else_) ->
        Stmt.If
          ( List.map (fun (c, b) -> (c, strip_nonunit b)) branches,
            strip_nonunit else_ )
      | Stmt.While (c, b) -> Stmt.While (c, strip_nonunit b)
      | Stmt.Critical b -> Stmt.Critical (strip_nonunit b)
      | _ -> s)
    stmts

let strip_nonunit_func (f : Func.t) : Func.t =
  {
    f with
    Func.steps =
      List.map
        (fun (s : Func.step) -> { s with Func.body = strip_nonunit s.Func.body })
        f.Func.steps;
  }

(** Lift subprogram [name] out of [cu].  Returns the annotated kernel
    and a combined compilation unit containing both versions. *)
let lift ?(pure = []) (cu : Ast.compilation_unit) (name : string) : t =
  let sp =
    match Ast.find_subprogram cu name with
    | Some sp -> sp
    | None -> lift_error "no subprogram named %s" name
  in
  let kernel = sp.Ast.sub_name ^ "_lifted" in
  let f_target =
    try Lower.lower_subprogram ~rename:kernel cu sp
    with Lower.Unsupported why ->
      lift_error "cannot lift %s: %s" sp.Ast.sub_name why
  in
  (* callee summaries: every other subprogram that lowers cleanly *)
  let others, _skipped = Lower.lower_all cu in
  let others =
    List.filter
      (fun (f : Func.t) ->
        not (String.equal f.Func.name sp.Ast.sub_name))
      others
  in
  let m = Ir_module.make ~functions:(others @ [ f_target ]) "glaf_lift" in
  let p = Ir_module.program ~modules:[ m ] "glaf_lift" in
  let p', report = Autopar.run ~pure p in
  let f_ann =
    match Ir_module.find_program_function p' kernel with
    | Some f -> strip_nonunit_func f
    | None -> lift_error "lifted function %s vanished" kernel
  in
  (* generate only the lifted kernel: the original subprograms stay as
     parsed, the kernel arrives via a fresh generated module *)
  let p_gen =
    Ir_module.program
      ~modules:[ Ir_module.make ~functions:[ f_ann ] "glaf_lift" ]
      "glaf_lift"
  in
  let gen_units = Fortran_gen.gen_program p_gen in
  let source = Pp_ast.to_string (cu @ gen_units) in
  (* re-parse the printed source: execution goes through the printer,
     so printer defects surface as lift failures, not silent drift *)
  let combined =
    try Parser.parse_string source
    with Parser.Parse_error (ln, msg) ->
      lift_error "generated source does not re-parse (line %d: %s)" ln msg
  in
  let report =
    List.filter
      (fun (e : Autopar.report_entry) -> String.equal e.Autopar.re_function kernel)
      report
  in
  { kernel; func = f_ann; report; combined; source }
