(** SARB experiment orchestration: builds every implementation variant
    of the paper's Table 2, integrates the GLAF-generated code into
    the legacy code base, verifies functional equivalence (§4.1.1) and
    evaluates performance (Figs. 5 and 6) both on the real interpreter
    (wall clock, OCaml domains) and on the analytic cost model. *)

open Glaf_fortran
open Glaf_runtime
open Glaf_interp
open Glaf_analysis
open Glaf_optimizer
open Glaf_codegen
open Glaf_integration

type variant =
  | Original_serial
  | Glaf_serial
  | Glaf_parallel of Directive_policy.t

let all_variants =
  [
    Original_serial;
    Glaf_serial;
    Glaf_parallel Directive_policy.V0;
    Glaf_parallel Directive_policy.V1;
    Glaf_parallel Directive_policy.V2;
    Glaf_parallel Directive_policy.V3;
  ]

let variant_name = function
  | Original_serial -> "original serial"
  | Glaf_serial -> "GLAF serial"
  | Glaf_parallel p -> Directive_policy.name p

(** Intrinsics are side-effect free for the dependence analysis. *)
let pure = Intrinsics.names ()

(** The annotated GLAF program (auto-parallelized, before pruning). *)
let annotated_program () =
  let p = Sarb_glaf.program () in
  Autopar.run ~pure p

(** Fortran generated for one variant (the legacy code base itself for
    [Original_serial]). *)
let generated_cu (v : variant) : Ast.compilation_unit =
  match v with
  | Original_serial -> []
  | Glaf_serial ->
    let p, _ = annotated_program () in
    Fortran_gen.gen_program
      ~opts:{ Fortran_gen.default_options with emit_omp = false }
      p
  | Glaf_parallel policy ->
    let p, _ = annotated_program () in
    let p = Directive_policy.apply ~pure policy p in
    Fortran_gen.gen_program p

(** Check the GLAF program against the legacy-code model (§3 features
    must all resolve); returns the issue list (empty = compatible). *)
let integration_issues () =
  let legacy = Legacy_model.of_ast (Sarb_legacy.parse ()) in
  Checker.check legacy (Sarb_glaf.program ())

(** Integrated compilation unit for a variant: the legacy program with
    the six kernels substituted by GLAF-generated versions. *)
let integrated_cu (v : variant) : Ast.compilation_unit =
  let legacy = Sarb_legacy.parse () in
  match v with
  | Original_serial -> legacy
  | _ ->
    let generated = generated_cu v in
    let cu, _substituted = Splice.substitute ~legacy ~generated in
    cu

type run_result = {
  checksum : float;
  fuir : Farray.t;
  fdir : Farray.t;
  fds : Farray.t;
  sen_lw : Farray.t;
  toa_lw : float;
  toa_sw : float;
  allocations : int;
}

(** Execute a variant end to end through the interpreter. *)
let run ?(threads = 4) ?(bytecode = true) ?(dtemp = Sarb_legacy.default_dtemp)
    ?(qfac = Sarb_legacy.default_qfac) (v : variant) : run_result =
  let cu = integrated_cu v in
  let st = Interp.make_state ~printer:ignore cu in
  Interp.set_threads st threads;
  Interp.set_bytecode st bytecode;
  ignore (Interp.call st "sarb_init_profiles" []);
  Interp.reset_allocations st;
  ignore
    (Interp.call st "entropy_interface"
       [ Ast.Real_lit (dtemp, true); Ast.Real_lit (qfac, true) ]);
  let checksum =
    match Interp.call st "sarb_checksum" [] with
    | Some vl -> Value.to_float vl
    | None -> Value.error "sarb_checksum returned nothing"
  in
  let fo_field name =
    Interp.module_struct_array st ~module_name:"fuoutput" ~var:"fo" ~field:name
  in
  {
    checksum;
    fuir = fo_field "fuir";
    fdir = fo_field "fdir";
    fds = fo_field "fds";
    sen_lw = fo_field "sen_lw";
    toa_lw = Value.to_float (Interp.module_scalar st ~module_name:"fuoutput" ~var:"toa_lw");
    toa_sw = Value.to_float (Interp.module_scalar st ~module_name:"fuoutput" ~var:"toa_sw");
    allocations = Interp.allocations st;
  }

(** §4.1.1 verification: every variant must reproduce the original
    serial results.  Returns (variant, max-abs-difference) pairs. *)
let verify ?(threads = 4) () =
  let reference = run ~threads:1 Original_serial in
  List.map
    (fun v ->
      let r = run ~threads v in
      let d a b = Farray.max_abs_diff a b in
      let max_diff =
        List.fold_left Float.max 0.0
          [
            d reference.fuir r.fuir;
            d reference.fdir r.fdir;
            d reference.fds r.fds;
            d reference.sen_lw r.sen_lw;
            Float.abs (reference.checksum -. r.checksum)
            /. Float.max 1.0 (Float.abs reference.checksum);
          ]
      in
      (v, max_diff))
    all_variants

(** {1 Performance} *)

(** Wall-clock seconds for one entropy_interface invocation, measured
    on the interpreter (median of [repeats]). *)
let measure ?(threads = 4) ?(bytecode = true) ?(repeats = 3) (v : variant) :
    float =
  let cu = integrated_cu v in
  let st = Interp.make_state ~printer:ignore cu in
  Interp.set_threads st threads;
  Interp.set_bytecode st bytecode;
  ignore (Interp.call st "sarb_init_profiles" []);
  let args =
    [
      Ast.Real_lit (Sarb_legacy.default_dtemp, true);
      Ast.Real_lit (Sarb_legacy.default_qfac, true);
    ]
  in
  (* warm-up *)
  ignore (Interp.call st "entropy_interface" args);
  let samples =
    List.init repeats (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Interp.call st "entropy_interface" args);
        Unix.gettimeofday () -. t0)
  in
  match List.sort compare samples with
  | [] -> 0.0
  | sorted -> List.nth sorted (List.length sorted / 2)

(** Modeled time (ns) for one entropy_interface invocation on the
    i5-2400-class machine model. *)
let modeled_time ?(threads = 4) (v : variant) : float =
  let cu = integrated_cu v in
  let cfg =
    { (Glaf_perf.Cost.default_config Glaf_perf.Machine.i5_2400) with
      Glaf_perf.Cost.threads }
  in
  Glaf_perf.Cost.time cfg cu "entropy_interface"
    ~args:[ Ast.Real_lit (1.5, true); Ast.Real_lit (1.02, true) ]

(** Figure 5 series: speed-up of each variant over original serial at
    4 threads, from the cost model. *)
let figure5 () =
  let base = modeled_time ~threads:4 Original_serial in
  List.map (fun v -> (variant_name v, base /. modeled_time ~threads:4 v)) all_variants

(** Paper's Figure 5 values for comparison. *)
let figure5_paper =
  [
    ("original serial", 1.00);
    ("GLAF serial", 0.89);
    ("GLAF-parallel v0", 0.48);
    ("GLAF-parallel v1", 0.66);
    ("GLAF-parallel v2", 1.11);
    ("GLAF-parallel v3", 1.41);
  ]

(** Figure 6 series: v3 speed-up over GLAF serial across threads. *)
let figure6 ?(threads = [ 1; 2; 4; 8 ]) () =
  let base = modeled_time ~threads:1 Glaf_serial in
  List.map
    (fun t ->
      (t, base /. modeled_time ~threads:t (Glaf_parallel Directive_policy.V3)))
    threads

let figure6_paper = [ (1, 0.92); (2, 1.24); (4, 1.59); (8, 0.70) ]

(** Table 1: measured SLOC of the GLAF-implemented kernels (from the
    legacy sources they replace) next to the paper's numbers. *)
let table1 () =
  let sloc = Sloc.table (Sarb_legacy.parse ()) in
  List.map
    (fun name ->
      let ours = Option.value (List.assoc_opt name sloc) ~default:0 in
      let paper = Option.value (List.assoc_opt name Sarb_legacy.paper_sloc) ~default:0 in
      (name, paper, ours))
    Sarb_legacy.kernel_names
