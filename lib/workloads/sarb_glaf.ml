(** The GLAF re-implementation of the six SARB kernels (§4.1).

    Built through the {!Glaf_builder.Build} API exactly as a user
    would drive the GPI: grids imported from the existing [fuinput] /
    [fuoutput] modules (§3.1), elements of the TYPE variables [fi] and
    [fo] (§3.5), the [/entcon/] COMMON block (§3.2), void return types
    for subroutine generation (§3.4), and — per GLAF's enforced
    program structure (§3.3) — interior loops hoisted into separate
    GLAF functions ([lw_exchange_up], [lw_exchange_dn],
    [ent_exchange], [lw_band_sum], [sw_band_sum]) with module-scope
    grids carrying the shared intermediate arrays.

    The arithmetic mirrors {!Sarb_legacy} statement for statement, so
    the §4.1.1 side-by-side verification must agree to rounding. *)

open Glaf_ir
open Glaf_builder
module E = Expr
module S = Stmt

let nv = 60
let nv1 = 61
let mbx = 12
let mbsx = 6

(* --- grid constructors for the integration surface ------------------- *)

let ext_real name = Grid.scalar ~storage:(Grid.External_module "fuinput") Types.T_real8 name
let ext_int name = Grid.scalar ~storage:(Grid.External_module "fuinput") Types.T_int name

let ext_arr ?(m = "fuinput") n name =
  Grid.array ~storage:(Grid.External_module m) Types.T_real8
    ~dims:[ Grid.dim (Grid.Fixed n) ] name

let fi_scalar name =
  Grid.scalar ~storage:(Grid.Type_element ("fuinput", "fi")) Types.T_real8 name

let fi_arr n name =
  Grid.array ~storage:(Grid.Type_element ("fuinput", "fi")) Types.T_real8
    ~dims:[ Grid.dim (Grid.Fixed n) ] name

let fo_arr n name =
  Grid.array ~storage:(Grid.Type_element ("fuoutput", "fo")) Types.T_real8
    ~dims:[ Grid.dim (Grid.Fixed n) ] name

let out_scalar name =
  Grid.scalar ~storage:(Grid.External_module "fuoutput") Types.T_real8 name

let common_real name = Grid.scalar ~storage:(Grid.Common "entcon") Types.T_real8 name

let local_real name = Grid.scalar Types.T_real8 name

let local_arr dims name =
  Grid.array Types.T_real8
    ~dims:(List.map (fun n -> Grid.dim (Grid.Fixed n)) dims)
    name

let module_arr dims name =
  Grid.array ~storage:Grid.Module_scope Types.T_real8
    ~dims:(List.map (fun n -> Grid.dim (Grid.Fixed n)) dims)
    name

(* Module-scope shared intermediates (§3.3: interior-loop functions
   must see them). *)
let shared_grids =
  [
    module_arr [ nv1 ] "tl";
    module_arr [ nv1 ] "cld";
    module_arr [ nv1; mbx ] "bb";
    module_arr [ nv1; mbx ] "dbb";
    module_arr [ nv; mbx ] "tau";
    module_arr [ nv; mbx ] "tauc";
    module_arr [ nv; mbx ] "taua";
    module_arr [ mbx ] "wgt";
    module_arr [ nv1 ] "cum";
    module_arr [ nv1 ] "cum9";
    module_arr [ 2; nv ] "flux2";
    module_arr [ 2; nv ] "ent2";
    module_arr [ nv1 ] "gray";
    module_arr [ nv1 ] "gray9";
    module_arr [ nv1 ] "bnd";
    module_arr [ nv1 ] "tsw";
  ]

(* shared references used by several functions *)
let use_shared =
  List.map (fun (g : Grid.t) -> { g with Grid.storage = Grid.Module_scope })

let profile_grids =
  [
    ext_int "nv"; ext_int "nv1"; ext_int "mbx"; ext_int "mbsx";
    ext_arr nv1 "pp"; ext_arr nv1 "pt"; ext_arr nv1 "ph"; ext_arr nv1 "po";
    ext_arr nv "dz";
  ]

let entcon_grids =
  [ common_real "pc1"; common_real "pc2"; common_real "sigma"; common_real "wnwin" ]

let pi_lit = E.real 3.14159

(* --- adjust2 ----------------------------------------------------------- *)

let build_adjust2 b =
  Build.start_function b "adjust2";
  Build.add_param b (Grid.scalar Types.T_real8 "dtemp");
  Build.add_param b (Grid.scalar Types.T_real8 "qfac");
  List.iter (Build.add_grid b) profile_grids;
  Build.add_grid b (local_real "colq");
  Build.add_grid b (local_real "scale");
  Build.add_grid b (Grid.scalar Types.T_int "ktrop");
  Build.start_step b "temperature";
  Build.add_stmt b
    (S.for_ "k" ~lo:(E.int 1) ~hi:(E.var "nv1")
       [
         S.assign_idx "pt" [ E.var "k" ]
           (E.call "min"
              [
                E.call "max" [ E.(idx "pt" [ var "k" ] + var "dtemp"); E.real 160.0 ];
                E.real 330.0;
              ]);
       ]);
  Build.start_step b "humidity";
  Build.add_stmt b
    (S.for_ "k" ~lo:(E.int 1) ~hi:(E.var "nv1")
       [
         S.assign_idx "ph" [ E.var "k" ]
           (E.call "max" [ E.(idx "ph" [ var "k" ] * var "qfac"); E.real 1e-9 ]);
       ]);
  Build.start_step b "ozone_column";
  Build.add_stmt b (S.assign_var "colq" (E.real 0.0));
  Build.add_stmt b
    (S.for_ "k" ~lo:(E.int 1) ~hi:(E.var "nv")
       [
         S.assign_var "colq"
           E.(
             var "colq"
             + real 0.5
               * (idx "po" [ var "k" ] + idx "po" [ var "k" + int 1 ])
               * (idx "pp" [ var "k" + int 1 ] - idx "pp" [ var "k" ]));
       ]);
  Build.start_step b "ozone_scale";
  Build.add_stmt b (S.assign_var "scale" (E.real 1.0));
  Build.add_stmt b
    (S.if_ E.(var "colq" > real 1e-12)
       [ S.assign_var "scale" E.(real 2.6e-3 / var "colq") ]
       []);
  Build.add_stmt b
    (S.for_ "k" ~lo:(E.int 1) ~hi:(E.var "nv1")
       [ S.assign_idx "po" [ E.var "k" ] E.(idx "po" [ var "k" ] * var "scale") ]);
  Build.start_step b "tropopause";
  Build.add_stmt b (S.assign_var "ktrop" (E.int 1));
  Build.add_stmt b
    (S.for_ "k" ~lo:(E.int 1) ~hi:(E.var "nv")
       [
         S.if_
           E.(idx "pt" [ var "k" + int 1 ] > idx "pt" [ var "k" ])
           [ S.assign_var "ktrop" (E.var "k"); S.Exit_loop ]
           [];
       ]);
  Build.add_stmt b
    (S.for_ "k" ~lo:(E.int 1) ~hi:(E.var "nv1")
       [
         S.if_
           E.(var "k" < var "ktrop")
           [ S.assign_idx "ph" [ E.var "k" ] E.(idx "ph" [ var "k" ] * real 0.999) ]
           [];
       ]);
  Build.start_step b "thickness";
  Build.add_stmt b
    (S.for_ "k" ~lo:(E.int 1) ~hi:(E.var "nv")
       [
         S.assign_idx "dz" [ E.var "k" ]
           E.(
             real 29.3 * real 0.5
             * (idx "pt" [ var "k" ] + idx "pt" [ var "k" + int 1 ])
             * call "alog" [ idx "pp" [ var "k" + int 1 ] / idx "pp" [ var "k" ] ]);
       ])

(* --- interior-loop helper functions (§3.3) ----------------------------- *)

(* upward exchange for level k in band 6, including the surface term *)
let build_lw_exchange_up b =
  Build.start_function b "lw_exchange_up" ~return:Types.T_real8;
  Build.add_param b (Grid.scalar Types.T_int "k");
  List.iter (Build.add_grid b)
    (use_shared [ module_arr [ nv1; mbx ] "bb"; module_arr [ nv; mbx ] "tau";
                  module_arr [ nv1 ] "cld" ]);
  Build.add_grid b (ext_int "nv");
  Build.add_grid b (fi_arr mbx "ee");
  Build.add_grid b (fi_scalar "pts");
  Build.add_grid b (common_real "sigma");
  Build.add_grid b (local_real "path");
  Build.add_grid b (local_real "src");
  Build.add_grid b (local_real "acc");
  Build.start_step b "sweep";
  Build.add_stmt b (S.assign_var "acc" (E.real 0.0));
  Build.add_stmt b (S.assign_var "path" (E.real 0.0));
  Build.add_stmt b
    (S.for_ "j" ~lo:(E.var "k")
       ~hi:(E.call "min" [ E.(var "k" + int 19); E.var "nv" ])
       [
         S.assign_var "path" E.(var "path" + idx "tau" [ var "j"; int 6 ]);
         S.assign_var "src"
           E.(idx "bb" [ var "j"; int 6 ] + real 0.25 * idx "bb" [ var "j"; int 9 ]);
         S.if_
           E.(idx "cld" [ var "j" ] > real 0.3)
           [
             S.assign_var "src"
               E.(var "src" * (real 1.0 - real 0.55 * idx "cld" [ var "j" ]));
             S.assign_var "path" E.(var "path" + real 0.8 * idx "cld" [ var "j" ]);
           ]
           [
             S.assign_var "src"
               E.(var "src" * (real 1.0 + real 0.08 * idx "cld" [ var "j" ]));
           ];
         S.assign_var "acc"
           E.(var "acc"
              + var "src" * call "exp" [ neg (var "path") ]
                * idx "tau" [ var "j"; int 6 ]);
       ]);
  Build.start_step b "surface";
  Build.add_stmt b
    (S.assign_var "acc"
       E.(var "acc"
          + idx "ee" [ int 6 ] * var "sigma" * (var "pts" ** real 4.0)
            * call "exp" [ neg (var "path") ]
            / pi_lit));
  Build.add_stmt b (S.Return (Some (E.var "acc")))

(* downward exchange for level k *)
let build_lw_exchange_dn b =
  Build.start_function b "lw_exchange_dn" ~return:Types.T_real8;
  Build.add_param b (Grid.scalar Types.T_int "k");
  List.iter (Build.add_grid b)
    (use_shared [ module_arr [ nv1; mbx ] "bb"; module_arr [ nv; mbx ] "tau";
                  module_arr [ nv1 ] "cld" ]);
  Build.add_grid b (local_real "path");
  Build.add_grid b (local_real "src");
  Build.add_grid b (local_real "acc");
  Build.start_step b "sweep";
  Build.add_stmt b (S.assign_var "acc" (E.real 0.0));
  Build.add_stmt b (S.assign_var "path" (E.real 0.0));
  Build.add_stmt b
    (S.for_ "j" ~lo:(E.var "k")
       ~hi:(E.call "max" [ E.(var "k" - int 19); E.int 1 ])
       ~step:(E.int (-1))
       [
         S.assign_var "path" E.(var "path" + idx "tau" [ var "j"; int 6 ]);
         S.assign_var "src"
           E.(idx "bb" [ var "j"; int 6 ] + real 0.25 * idx "bb" [ var "j"; int 3 ]);
         S.if_
           E.(idx "cld" [ var "j" ] > real 0.3)
           [
             S.assign_var "src"
               E.(var "src" * (real 1.0 - real 0.45 * idx "cld" [ var "j" ]));
             S.assign_var "path" E.(var "path" + real 0.6 * idx "cld" [ var "j" ]);
           ]
           [
             S.assign_var "src"
               E.(var "src" * (real 1.0 + real 0.05 * idx "cld" [ var "j" ]));
           ];
         S.assign_var "acc"
           E.(var "acc"
              + var "src" * call "exp" [ neg (var "path") ]
                * idx "tau" [ var "j"; int 6 ]);
       ]);
  Build.add_stmt b (S.Return (Some (E.var "acc")))

(* per-neighbour entropy contribution: a §3.3 leaf — straight-line
   IF/assign code over scalar dummies — small enough for the bytecode
   compiler to inline into ent_exchange's sweep.  The operations and
   their order are exactly those of the branches it replaces, so the
   factoring is bit-preserving. *)
let build_ent_contrib b =
  Build.start_function b "ent_contrib" ~return:Types.T_real8;
  Build.add_param b (Grid.scalar Types.T_real8 "fj");
  Build.add_param b (Grid.scalar Types.T_real8 "dtq");
  Build.add_param b (Grid.scalar Types.T_real8 "tlj");
  Build.add_param b (Grid.scalar Types.T_real8 "tlk");
  Build.start_step b "contrib";
  Build.add_stmt b
    (S.if_
       E.(call "abs" [ var "dtq" ] > real 2.0)
       [
         S.Return (Some E.(var "fj" * var "dtq" / (var "tlj" * var "tlk")));
       ]
       [
         S.Return
           (Some
              E.(var "fj" * real 2.0 / (var "tlj" + var "tlk") * real 0.01));
       ])

(* entropy exchange correction for (idir, k) *)
let build_ent_exchange b =
  Build.start_function b "ent_exchange" ~return:Types.T_real8;
  Build.add_param b (Grid.scalar Types.T_int "idir");
  Build.add_param b (Grid.scalar Types.T_int "k");
  List.iter (Build.add_grid b)
    (use_shared [ module_arr [ 2; nv ] "flux2"; module_arr [ nv1 ] "tl" ]);
  Build.add_grid b (ext_int "nv");
  Build.add_grid b (local_real "acc");
  Build.add_grid b (local_real "dtq");
  Build.add_grid b (local_real "fj");
  Build.add_grid b (local_real "tlj");
  Build.add_grid b (local_real "tlk");
  Build.start_step b "exchange";
  Build.add_stmt b (S.assign_var "acc" (E.real 0.0));
  Build.add_stmt b
    (S.for_ "j"
       ~lo:(E.call "max" [ E.(var "k" - int 12); E.int 1 ])
       ~hi:(E.call "min" [ E.(var "k" + int 12); E.var "nv" ])
       [
         S.assign_var "fj" (E.idx "flux2" [ E.var "idir"; E.var "j" ]);
         S.assign_var "tlj" (E.idx "tl" [ E.var "j" ]);
         S.assign_var "tlk" (E.idx "tl" [ E.var "k" ]);
         S.assign_var "dtq" E.(var "tlj" - var "tlk");
         S.assign_var "acc"
           E.(var "acc"
              + call "ent_contrib"
                  [ var "fj"; var "dtq"; var "tlj"; var "tlk" ]);
       ]);
  Build.add_stmt b
    (S.Return
       (Some
          E.(
            idx "flux2" [ var "idir"; var "k" ] / idx "tl" [ var "k" ]
            + real 0.05 * var "acc" / var "nv")))

(* per-level longwave band sum used by lw_spectral_integration *)
let build_lw_band_sum b =
  Build.start_function b "lw_band_sum" ~return:Types.T_real8;
  Build.add_param b (Grid.scalar Types.T_int "k");
  Build.add_grid b (ext_int "mbx");
  Build.add_grid b (ext_arr nv1 "pt");
  Build.add_grid b (common_real "pc1");
  Build.add_grid b (common_real "pc2");
  Build.add_grid b (local_real "acc");
  Build.add_grid b (local_real "w");
  Build.start_step b "bands";
  Build.add_stmt b (S.assign_var "acc" (E.real 0.0));
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [
         S.assign_var "w"
           (E.call "exp" [ E.(neg (real 0.23 * ((var "ib" - real 6.5) ** real 2.0))) ]);
         S.assign_var "acc"
           E.(var "acc"
              + var "w" * var "pc1" * (var "ib" ** real 3.0)
                / (call "exp"
                     [ var "pc2" * var "ib" * real 100.0 / idx "pt" [ var "k" ] ]
                   - real 1.0));
       ]);
  Build.add_stmt b (S.Return (Some (E.var "acc")))

(* per-level shortwave band sum used by sw_spectral_integration *)
let build_sw_band_sum b =
  Build.start_function b "sw_band_sum" ~return:Types.T_real8;
  Build.add_param b (Grid.scalar Types.T_int "k");
  List.iter (Build.add_grid b) (use_shared [ module_arr [ nv1 ] "tsw" ]);
  Build.add_grid b (ext_int "mbsx");
  Build.add_grid b (fi_scalar "u0");
  Build.add_grid b (fi_scalar "ss");
  Build.add_grid b (local_real "acc");
  Build.add_grid b (local_real "w");
  Build.start_step b "bands";
  Build.add_stmt b (S.assign_var "acc" (E.real 0.0));
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbsx")
       [
         S.assign_var "w"
           E.(call "exp" [ neg (real 0.4 * ((var "ib" - real 2.0) ** real 2.0)) ]
              / real 2.2);
         S.assign_var "acc"
           E.(var "acc"
              + var "w" * var "ss" * var "u0"
                * (idx "tsw" [ var "k" ] ** (real 0.6 + real 0.15 * var "ib")));
       ]);
  Build.add_stmt b (S.Return (Some (E.var "acc")))

(* --- longwave_entropy_model -------------------------------------------- *)

let k_loop ?(hi = "nv1") body = S.for_ "k" ~lo:(E.int 1) ~hi:(E.var hi) body

let build_longwave b =
  Build.start_function b "longwave_entropy_model";
  List.iter (Build.add_grid b) profile_grids;
  List.iter (Build.add_grid b) entcon_grids;
  List.iter (Build.add_grid b)
    (use_shared
       [
         module_arr [ nv1 ] "tl"; module_arr [ nv1 ] "cld";
         module_arr [ nv1; mbx ] "bb"; module_arr [ nv1; mbx ] "dbb";
         module_arr [ nv; mbx ] "tau"; module_arr [ nv; mbx ] "tauc";
         module_arr [ nv; mbx ] "taua";
         module_arr [ mbx ] "wgt"; module_arr [ nv1 ] "cum";
         module_arr [ nv1 ] "cum9";
         module_arr [ 2; nv ] "flux2"; module_arr [ 2; nv ] "ent2";
         module_arr [ nv1 ] "gray"; module_arr [ nv1 ] "gray9";
       ]);
  List.iter (Build.add_grid b)
    [
      fo_arr nv1 "fuir"; fo_arr nv1 "fdir"; fo_arr nv1 "fwin";
      fo_arr nv1 "sen_lw"; fo_arr nv "hr";
      fi_arr mbx "ee"; fi_scalar "pts";
      out_scalar "olr_win"; out_scalar "ent_total";
    ];
  Build.add_grid b (local_real "tsum");
  Build.add_grid b (local_real "acc");
  Build.add_grid b (local_real "hnorm");
  Build.add_grid b (local_real "fcld");
  Build.add_grid b (local_real "tr");
  List.iter (Build.add_grid b)
    [
      local_arr [ mbx ] "hk"; local_arr [ mbx ] "cwn";
      local_arr [ nv; mbx ] "ssa"; local_arr [ nv; mbx ] "asym";
      local_arr [ nv; mbx ] "taud";
      local_arr [ nv1; mbx ] "fdb"; local_arr [ nv1; mbx ] "fub";
      local_arr [ mbx ] "olrb"; local_arr [ nv ] "tmid"; local_arr [ nv ] "lapse";
    ];
  (* phase 1: zero inits *)
  Build.start_step b "zero_fluxes";
  List.iter
    (fun name ->
      Build.add_stmt b (k_loop [ S.assign_idx name [ E.var "k" ] (E.real 0.0) ]))
    [ "fuir"; "fdir"; "fwin"; "sen_lw"; "gray" ];
  (* phase 2: broadcasts *)
  Build.start_step b "load_profiles";
  Build.add_stmt b
    (k_loop [ S.assign_idx "tl" [ E.var "k" ] (E.idx "pt" [ E.var "k" ]) ]);
  Build.add_stmt b
    (k_loop [ S.assign_idx "cld" [ E.var "k" ] (E.idx "ph" [ E.var "k" ]) ]);
  Build.add_stmt b
    (k_loop
       [
         S.assign_idx "cld" [ E.var "k" ]
           E.(real 0.8
              * call "exp" [ neg (((var "k" - real 20.0) / real 8.0) ** real 2.0) ]);
       ]);
  (* phase 3: planck table *)
  Build.start_step b "planck_table";
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [
         k_loop
           [
             S.assign_idx "bb" [ E.var "k"; E.var "ib" ]
               E.(var "pc1" * (var "ib" ** real 3.0)
                  / (call "exp"
                       [ var "pc2" * var "ib" * real 100.0 / idx "tl" [ var "k" ] ]
                     - real 1.0));
           ];
       ]);
  (* phase 3b: planck gradient table *)
  Build.start_step b "planck_gradient";
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [
         k_loop
           [
             S.assign_idx "dbb" [ E.var "k"; E.var "ib" ]
               E.(idx "bb" [ var "k"; var "ib" ] * var "pc2" * var "ib" * real 100.0
                  / (idx "tl" [ var "k" ] * idx "tl" [ var "k" ])
                  * call "exp"
                      [ var "pc2" * var "ib" * real 100.0 / idx "tl" [ var "k" ] ]
                  / (call "exp"
                       [ var "pc2" * var "ib" * real 100.0 / idx "tl" [ var "k" ] ]
                     - real 1.0));
           ];
       ]);
  (* phase 4: gas optical depths *)
  Build.start_step b "optical_depths";
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [
         S.for_ "k" ~lo:(E.int 1) ~hi:(E.var "nv")
           [
             S.assign_idx "tau" [ E.var "k"; E.var "ib" ]
               E.(real 0.02 * var "ib" * idx "ph" [ var "k" ] * idx "dz" [ var "k" ]
                  / real 250.0
                  + real 1.2e4 * idx "po" [ var "k" ]
                    * call "abs"
                        [ call "alog"
                            [ idx "pp" [ var "k" + int 1 ] / idx "pp" [ var "k" ] ] ]
                    / var "ib");
           ];
       ]);
  (* phase 4b: cloud optical depths *)
  Build.start_step b "cloud_depths";
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [
         S.for_ "k" ~lo:(E.int 1) ~hi:(E.var "nv")
           [
             S.assign_idx "tauc" [ E.var "k"; E.var "ib" ]
               E.(real 0.15 * idx "cld" [ var "k" ]
                  * call "exp" [ neg (real 0.08 * call "abs" [ var "ib" - real 6.0 ]) ]
                  * (real 1.0 + real 0.002 * (idx "tl" [ var "k" ] - real 250.0)));
           ];
       ]);
  (* phase 4c: aerosol optical depths *)
  Build.start_step b "aerosol_depths";
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [
         S.for_ "k" ~lo:(E.int 1) ~hi:(E.var "nv")
           [
             S.assign_idx "taua" [ E.var "k"; E.var "ib" ]
               E.(real 3.0e-4 * call "exp" [ neg ((var "k" - real 1.0) / real 15.0) ]
                  * (real 1.0 + real 1.0 / var "ib")
                  * (idx "pp" [ var "k" + int 1 ] - idx "pp" [ var "k" ])
                  / real 17.0);
           ];
       ]);
  (* phase 4d: band overlap combination *)
  Build.start_step b "band_overlap";
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [
         S.for_ "k" ~lo:(E.int 1) ~hi:(E.var "nv")
           [
             S.assign_idx "tau" [ E.var "k"; E.var "ib" ]
               E.(idx "tau" [ var "k"; var "ib" ]
                  + real 0.35 * idx "tauc" [ var "k"; var "ib" ]
                  + idx "taua" [ var "k"; var "ib" ]
                  + real 0.01
                    * call "sqrt"
                        [ idx "tauc" [ var "k"; var "ib" ]
                          * idx "taua" [ var "k"; var "ib" ]
                          + real 1e-12 ]);
           ];
       ]);
  (* phase 4e: single-scatter albedo / asymmetry tables *)
  Build.start_step b "scatter_tables";
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [
         S.for_ "k" ~lo:(E.int 1) ~hi:(E.var "nv")
           [
             S.assign_idx "ssa" [ E.var "k"; E.var "ib" ]
               E.(real 0.96 * idx "tauc" [ var "k"; var "ib" ]
                  / (idx "tau" [ var "k"; var "ib" ] + real 1e-12));
             S.assign_idx "asym" [ E.var "k"; E.var "ib" ]
               E.(real 0.85 - real 0.02 * call "abs" [ var "ib" - real 6.0 ]
                  - real 0.04 * idx "cld" [ var "k" ]);
           ];
       ]);
  (* phase 4f: delta-scaled optical depths *)
  Build.start_step b "delta_scaling";
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [
         S.for_ "k" ~lo:(E.int 1) ~hi:(E.var "nv")
           [
             S.assign_var "fcld"
               E.(idx "asym" [ var "k"; var "ib" ] * idx "asym" [ var "k"; var "ib" ]);
             S.assign_idx "taud" [ E.var "k"; E.var "ib" ]
               E.((real 1.0
                   - call "min" [ idx "ssa" [ var "k"; var "ib" ]; real 0.999 ]
                     * var "fcld")
                  * idx "tau" [ var "k"; var "ib" ]);
           ];
       ]);
  (* phase 5: band weights *)
  Build.start_step b "band_weights";
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [
         S.assign_idx "wgt" [ E.var "ib" ]
           (E.call "exp" [ E.(neg (real 0.23 * ((var "ib" - real 6.5) ** real 2.0))) ]);
       ]);
  Build.add_stmt b (S.assign_var "tsum" (E.real 0.0));
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [ S.assign_var "tsum" E.(var "tsum" + idx "wgt" [ var "ib" ]) ]);
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [ S.assign_idx "wgt" [ E.var "ib" ] E.(idx "wgt" [ var "ib" ] / var "tsum") ]);
  (* phase 5b: k-distribution weights and band centres *)
  Build.start_step b "band_coefficients";
  List.iteri
    (fun i v ->
      Build.add_stmt b (S.assign_idx "hk" [ E.int (i + 1) ] (E.real v)))
    [ 0.22; 0.16; 0.13; 0.11; 0.09; 0.08; 0.06; 0.05; 0.04; 0.03; 0.02; 0.01 ];
  List.iteri
    (fun i v ->
      Build.add_stmt b (S.assign_idx "cwn" [ E.int (i + 1) ] (E.real v)))
    [ 2850.0; 2500.0; 2200.0; 1900.0; 1700.0; 1400.0; 1250.0; 1100.0;
      980.0; 800.0; 670.0; 540.0 ];
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [
         S.assign_idx "wgt" [ E.var "ib" ]
           E.(idx "wgt" [ var "ib" ] * (real 0.5 + idx "hk" [ var "ib" ])
              * (real 1.0 + real 1e-5 * idx "cwn" [ var "ib" ]));
       ]);
  (* phase 6: serial recurrences *)
  Build.start_step b "gray_transmission";
  Build.add_stmt b (S.assign_idx "cum" [ E.int 1 ] (E.real 0.0));
  Build.add_stmt b
    (S.for_ "k" ~lo:(E.int 2) ~hi:(E.var "nv1")
       [
         S.assign_idx "cum" [ E.var "k" ]
           E.(idx "cum" [ var "k" - int 1 ] + idx "taud" [ var "k" - int 1; int 6 ]);
       ]);
  Build.add_stmt b (S.assign_idx "cum9" [ E.int 1 ] (E.real 0.0));
  Build.add_stmt b
    (S.for_ "k" ~lo:(E.int 2) ~hi:(E.var "nv1")
       [
         S.assign_idx "cum9" [ E.var "k" ]
           E.(idx "cum9" [ var "k" - int 1 ]
              + idx "tau" [ var "k" - int 1; int 9 ]
                * (real 1.0
                   + real 0.1 * idx "cum9" [ var "k" - int 1 ]
                     / (real 1.0 + idx "cum9" [ var "k" - int 1 ])));
       ]);
  Build.add_stmt b
    (k_loop
       [
         S.assign_idx "gray" [ E.var "k" ]
           (E.call "exp" [ E.neg (E.idx "cum" [ E.var "k" ]) ]);
       ]);
  Build.add_stmt b
    (k_loop
       [
         S.assign_idx "gray9" [ E.var "k" ]
           (E.call "exp" [ E.neg (E.idx "cum9" [ E.var "k" ]) ]);
       ]);
  (* phase 7: first large exchange loop (2 x 60, complex) *)
  Build.start_step b "flux_exchange";
  Build.add_stmt b
    (S.for_ "idir" ~lo:(E.int 1) ~hi:(E.int 2)
       [
         S.for_ "k" ~lo:(E.int 1) ~hi:(E.var "nv")
           [
             S.if_
               E.(var "idir" = int 1)
               [ S.assign_var "acc" (E.call "lw_exchange_up" [ E.var "k" ]) ]
               [ S.assign_var "acc" (E.call "lw_exchange_dn" [ E.var "k" ]) ];
             S.assign_idx "flux2" [ E.var "idir"; E.var "k" ]
               E.(var "acc" * pi_lit);
           ];
       ]);
  (* phase 8: second large exchange loop (2 x 60, complex) *)
  Build.start_step b "entropy_exchange";
  Build.add_stmt b
    (S.for_ "idir" ~lo:(E.int 1) ~hi:(E.int 2)
       [
         S.for_ "k" ~lo:(E.int 1) ~hi:(E.var "nv")
           [
             S.assign_idx "ent2" [ E.var "idir"; E.var "k" ]
               (E.call "ent_exchange" [ E.var "idir"; E.var "k" ]);
           ];
       ]);
  (* phase 8b: per-band gray flux sweeps (serial recurrences per band) *)
  Build.start_step b "band_sweeps";
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [
         S.assign_idx "fdb" [ E.int 1; E.var "ib" ] (E.real 0.0);
         S.for_ "k" ~lo:(E.int 2) ~hi:(E.var "nv1")
           [
             S.assign_var "tr"
               (E.call "exp" [ E.neg (E.idx "taud" [ E.(var "k" - int 1); E.var "ib" ]) ]);
             S.assign_idx "fdb" [ E.var "k"; E.var "ib" ]
               E.(idx "fdb" [ var "k" - int 1; var "ib" ] * var "tr"
                  + idx "bb" [ var "k"; var "ib" ] * (real 1.0 - var "tr")
                    * real 3.14159);
           ];
       ]);
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [
         S.assign_idx "fub" [ E.var "nv1"; E.var "ib" ]
           E.(idx "ee" [ var "ib" ] * var "sigma" * (var "pts" ** real 4.0)
              / var "mbx");
         S.for_ "k" ~lo:(E.var "nv") ~hi:(E.int 1) ~step:(E.int (-1))
           [
             S.assign_var "tr"
               (E.call "exp" [ E.neg (E.idx "taud" [ E.var "k"; E.var "ib" ]) ]);
             S.assign_idx "fub" [ E.var "k"; E.var "ib" ]
               E.(idx "fub" [ var "k" + int 1; var "ib" ] * var "tr"
                  + idx "bb" [ var "k"; var "ib" ] * (real 1.0 - var "tr")
                    * real 3.14159);
           ];
       ]);
  (* phase 8c: band-integrated TOA diagnostics *)
  Build.start_step b "band_diagnostics";
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [
         S.assign_idx "olrb" [ E.var "ib" ]
           E.(idx "wgt" [ var "ib" ] * idx "fub" [ int 1; var "ib" ]);
       ]);
  (* phase 9: combine *)
  Build.start_step b "combine_fluxes";
  Build.add_stmt b
    (k_loop ~hi:"nv"
       [ S.assign_idx "fuir" [ E.var "k" ] (E.idx "flux2" [ E.int 1; E.var "k" ]) ]);
  Build.add_stmt b
    (k_loop ~hi:"nv"
       [ S.assign_idx "fdir" [ E.var "k" ] (E.idx "flux2" [ E.int 2; E.var "k" ]) ]);
  Build.add_stmt b
    (S.assign_idx "fuir" [ E.var "nv1" ]
       E.(idx "ee" [ int 6 ] * var "sigma" * (var "pts" ** real 4.0)));
  Build.add_stmt b (S.assign_idx "fdir" [ E.var "nv1" ] (E.real 0.0));
  Build.add_stmt b
    (k_loop ~hi:"nv"
       [
         S.assign_idx "sen_lw" [ E.var "k" ]
           E.(idx "ent2" [ int 1; var "k" ] + idx "ent2" [ int 2; var "k" ]);
       ]);
  Build.add_stmt b
    (S.assign_idx "sen_lw" [ E.var "nv1" ]
       E.(idx "fuir" [ var "nv1" ] / idx "tl" [ var "nv1" ]));
  (* phase 10: window channel *)
  Build.start_step b "window_channel";
  Build.add_stmt b
    (k_loop
       [
         S.assign_idx "fwin" [ E.var "k" ]
           E.(var "wnwin" * idx "bb" [ var "k"; int 7 ] * idx "gray" [ var "k" ]
              * (real 1.0 + idx "wgt" [ int 7 ]));
       ]);
  Build.add_stmt b
    (k_loop
       [
         S.assign_idx "fwin" [ E.var "k" ]
           E.(idx "fwin" [ var "k" ]
              + real 0.01 * var "wnwin" * idx "dbb" [ var "k"; int 7 ]
                * idx "gray9" [ var "k" ]);
       ]);
  (* phase 11: reductions *)
  Build.start_step b "totals";
  Build.add_stmt b (S.assign_var "olr_win" (E.real 0.0));
  Build.add_stmt b
    (k_loop [ S.assign_var "olr_win" E.(var "olr_win" + idx "fwin" [ var "k" ]) ]);
  Build.add_stmt b (S.assign_var "ent_total" (E.real 0.0));
  Build.add_stmt b
    (k_loop
       [ S.assign_var "ent_total" E.(var "ent_total" + idx "sen_lw" [ var "k" ]) ]);
  Build.add_stmt b
    (S.for_ "ib" ~lo:(E.int 1) ~hi:(E.var "mbx")
       [ S.assign_var "olr_win" E.(var "olr_win" + real 1e-3 * idx "olrb" [ var "ib" ]) ]);
  (* phase 12: heating rates with lapse correction *)
  Build.start_step b "heating_rates";
  Build.add_stmt b
    (k_loop ~hi:"nv"
       [
         S.assign_idx "tmid" [ E.var "k" ]
           E.(real 0.5 * (idx "tl" [ var "k" ] + idx "tl" [ var "k" + int 1 ]));
       ]);
  Build.add_stmt b
    (k_loop ~hi:"nv"
       [
         S.assign_idx "lapse" [ E.var "k" ]
           E.((idx "tl" [ var "k" + int 1 ] - idx "tl" [ var "k" ])
              / (real 1e-3 + call "abs" [ idx "dz" [ var "k" ] ]));
       ]);
  Build.add_stmt b
    (k_loop ~hi:"nv"
       [
         S.assign_var "hnorm"
           E.(real 8.442 / (idx "pp" [ var "k" + int 1 ] - idx "pp" [ var "k" ]));
         S.assign_idx "hr" [ E.var "k" ]
           E.(var "hnorm"
              * (idx "fuir" [ var "k" + int 1 ] - idx "fuir" [ var "k" ]
                 - idx "fdir" [ var "k" + int 1 ]
                 + idx "fdir" [ var "k" ]));
         S.assign_idx "hr" [ E.var "k" ]
           E.(idx "hr" [ var "k" ] * (real 1.0 + real 1e-4 * idx "lapse" [ var "k" ])
              * (idx "tmid" [ var "k" ] / (idx "tmid" [ var "k" ] + real 1.0)));
       ])

(* --- lw_spectral_integration ------------------------------------------- *)

let build_lw_spectral b =
  Build.start_function b "lw_spectral_integration";
  List.iter (Build.add_grid b)
    [ ext_int "nv1"; ext_arr nv1 "pt" ];
  List.iter (Build.add_grid b) (use_shared [ module_arr [ nv1 ] "bnd" ]);
  List.iter (Build.add_grid b)
    [ fo_arr nv1 "fuir"; fo_arr nv1 "fdir";
      out_scalar "toa_lw"; out_scalar "sfc_lw" ];
  Build.add_grid b (ext_int "nv");
  List.iter (Build.add_grid b) [ local_arr [ nv1 ] "fnet"; local_arr [ nv1 ] "sm" ];
  Build.add_grid b (local_real "resid");
  Build.start_step b "band_sums";
  Build.add_stmt b
    (k_loop [ S.assign_idx "bnd" [ E.var "k" ] (E.call "lw_band_sum" [ E.var "k" ]) ]);
  Build.start_step b "spectral_correction";
  Build.add_stmt b
    (k_loop
       [
         S.assign_idx "fuir" [ E.var "k" ]
           E.(idx "fuir" [ var "k" ]
              * (real 1.0 + real 0.1 * idx "bnd" [ var "k" ]
                            / (real 1.0 + idx "bnd" [ var "k" ])));
       ]);
  Build.add_stmt b
    (k_loop
       [
         S.assign_idx "fdir" [ E.var "k" ]
           E.(idx "fdir" [ var "k" ]
              * (real 1.0 + real 0.07 * idx "bnd" [ var "k" ]
                            / (real 1.0 + idx "bnd" [ var "k" ])));
       ]);
  Build.start_step b "net_flux";
  Build.add_stmt b
    (k_loop
       [
         S.assign_idx "fnet" [ E.var "k" ]
           E.(idx "fuir" [ var "k" ] - idx "fdir" [ var "k" ]);
       ]);
  Build.start_step b "smoothing";
  Build.add_stmt b (S.assign_idx "sm" [ E.int 1 ] (E.idx "fnet" [ E.int 1 ]));
  Build.add_stmt b
    (S.assign_idx "sm" [ E.var "nv1" ] (E.idx "fnet" [ E.var "nv1" ]));
  Build.add_stmt b
    (S.for_ "k" ~lo:(E.int 2) ~hi:(E.var "nv")
       [
         S.assign_idx "sm" [ E.var "k" ]
           E.(real 0.25 * idx "fnet" [ var "k" - int 1 ]
              + real 0.5 * idx "fnet" [ var "k" ]
              + real 0.25 * idx "fnet" [ var "k" + int 1 ]);
       ]);
  Build.add_stmt b (S.assign_var "resid" (E.real 0.0));
  Build.add_stmt b
    (k_loop
       [
         S.assign_var "resid"
           E.(var "resid" + call "abs" [ idx "fnet" [ var "k" ] - idx "sm" [ var "k" ] ]);
       ]);
  Build.start_step b "column_totals";
  Build.add_stmt b
    (S.assign_var "toa_lw"
       E.(idx "fuir" [ int 1 ] - idx "fdir" [ int 1 ] + real 1e-9 * var "resid"));
  Build.add_stmt b
    (S.assign_var "sfc_lw" E.(idx "fuir" [ var "nv1" ] - idx "fdir" [ var "nv1" ]))

(* --- sw_spectral_integration -------------------------------------------- *)

let build_sw_spectral b =
  Build.start_function b "sw_spectral_integration";
  List.iter (Build.add_grid b)
    [ ext_int "nv"; ext_int "nv1"; ext_arr nv1 "ph"; ext_arr nv1 "po"; ext_arr nv "dz" ];
  List.iter (Build.add_grid b) (use_shared [ module_arr [ nv1 ] "tsw" ]);
  Build.add_grid b (local_arr [ nv1 ] "fdif");
  Build.add_grid b (local_real "uvabs");
  List.iter (Build.add_grid b)
    [ fo_arr nv1 "fds"; fo_arr nv1 "fus";
      fi_scalar "u0";
      out_scalar "toa_sw"; out_scalar "sfc_sw" ];
  Build.add_grid b (local_real "att");
  Build.start_step b "zero";
  Build.add_stmt b (k_loop [ S.assign_idx "fds" [ E.var "k" ] (E.real 0.0) ]);
  Build.add_stmt b (k_loop [ S.assign_idx "fus" [ E.var "k" ] (E.real 0.0) ]);
  Build.start_step b "attenuation";
  Build.add_stmt b (S.assign_idx "tsw" [ E.int 1 ] (E.real 1.0));
  Build.add_stmt b
    (S.for_ "k" ~lo:(E.int 2) ~hi:(E.var "nv1")
       [
         S.assign_var "att"
           E.(real 2.0e-4 * idx "ph" [ var "k" - int 1 ] * idx "dz" [ var "k" - int 1 ]
              / real 250.0
              + real 30.0 * idx "po" [ var "k" - int 1 ]);
         S.assign_idx "tsw" [ E.var "k" ]
           E.(idx "tsw" [ var "k" - int 1 ]
              * call "exp" [ neg (var "att" / var "u0") ]);
       ]);
  Build.start_step b "direct_beam";
  Build.add_stmt b
    (k_loop [ S.assign_idx "fds" [ E.var "k" ] (E.call "sw_band_sum" [ E.var "k" ]) ]);
  Build.start_step b "reflection";
  Build.add_stmt b
    (k_loop
       [
         S.assign_idx "fus" [ E.var "k" ]
           (E.call "min"
              [
                E.(real 0.15 * idx "fds" [ var "nv1" ] * idx "tsw" [ var "nv1" ]
                   / (idx "tsw" [ var "k" ] + real 1e-9));
                E.idx "fds" [ E.var "k" ];
              ]);
       ]);
  Build.start_step b "diffuse";
  Build.add_stmt b
    (k_loop
       [
         S.assign_idx "fdif" [ E.var "k" ]
           E.(real 0.12 * idx "fds" [ var "k" ] * (real 1.0 - idx "tsw" [ var "k" ]));
       ]);
  Build.add_stmt b
    (k_loop
       [
         S.assign_idx "fds" [ E.var "k" ]
           E.(idx "fds" [ var "k" ] + real 0.5 * idx "fdif" [ var "k" ]);
       ]);
  Build.start_step b "uv_absorption";
  Build.add_stmt b (S.assign_var "uvabs" (E.real 0.0));
  Build.add_stmt b
    (S.for_ "k" ~lo:(E.int 1) ~hi:(E.var "nv")
       [
         S.assign_var "uvabs"
           E.(var "uvabs"
              + idx "po" [ var "k" ]
                * (idx "tsw" [ var "k" ] - idx "tsw" [ var "k" + int 1 ]));
       ]);
  Build.start_step b "totals";
  Build.add_stmt b
    (S.assign_var "toa_sw"
       E.(idx "fds" [ int 1 ] - idx "fus" [ int 1 ] - real 20.0 * var "uvabs"));
  Build.add_stmt b
    (S.assign_var "sfc_sw" E.(idx "fds" [ var "nv1" ] - idx "fus" [ var "nv1" ]))

(* --- shortwave_entropy_model --------------------------------------------- *)

let build_sw_entropy b =
  Build.start_function b "shortwave_entropy_model";
  List.iter (Build.add_grid b) [ ext_int "nv1"; ext_arr nv1 "pt" ];
  List.iter (Build.add_grid b)
    [ fo_arr nv1 "fds"; fo_arr nv1 "fus"; fo_arr nv1 "sen_sw" ];
  Build.start_step b "entropy";
  Build.add_stmt b
    (k_loop
       [
         S.assign_idx "sen_sw" [ E.var "k" ]
           E.(idx "fds" [ var "k" ] * real 4.0 / (real 3.0 * real 5800.0)
              - idx "fus" [ var "k" ] * real 4.0 / (real 3.0 * idx "pt" [ var "k" ]));
       ]);
  Build.start_step b "taper";
  Build.add_stmt b
    (k_loop
       [
         S.assign_idx "sen_sw" [ E.var "k" ]
           E.(idx "sen_sw" [ var "k" ] * (real 1.0 - real 1e-6 * var "k"));
       ])

(* --- entropy_interface ----------------------------------------------------- *)

let build_entropy_interface b =
  Build.start_function b "entropy_interface";
  Build.add_param b (Grid.scalar Types.T_real8 "dtemp");
  Build.add_param b (Grid.scalar Types.T_real8 "qfac");
  List.iter (Build.add_grid b) [ ext_int "nv1" ];
  List.iter (Build.add_grid b) entcon_grids;
  List.iter (Build.add_grid b)
    [ fo_arr nv1 "sen_lw"; fo_arr nv1 "sen_sw";
      out_scalar "ent_total"; out_scalar "toa_sw"; out_scalar "toa_lw";
      out_scalar "olr_win" ];
  Build.add_grid b (local_real "net");
  Build.add_grid b (local_real "bal");
  Build.add_grid b (Grid.scalar Types.T_int "nbad");
  Build.start_step b "constants";
  Build.add_stmt b (S.assign_var "pc1" (E.real 1.19e-2));
  Build.add_stmt b (S.assign_var "pc2" (E.real 1.44));
  Build.add_stmt b (S.assign_var "sigma" (E.real 5.67e-8));
  Build.add_stmt b (S.assign_var "wnwin" (E.real 0.12));
  Build.start_step b "kernels";
  Build.add_stmt b (S.Call ("adjust2", [ E.var "dtemp"; E.var "qfac" ]));
  Build.add_stmt b (S.Call ("longwave_entropy_model", []));
  Build.add_stmt b (S.Call ("lw_spectral_integration", []));
  Build.add_stmt b (S.Call ("sw_spectral_integration", []));
  Build.add_stmt b (S.Call ("shortwave_entropy_model", []));
  Build.start_step b "budget";
  Build.add_stmt b (S.assign_var "ent_total" (E.real 0.0));
  Build.add_stmt b
    (k_loop
       [
         S.assign_var "ent_total"
           E.(var "ent_total" + idx "sen_lw" [ var "k" ] + idx "sen_sw" [ var "k" ]);
       ]);
  Build.add_stmt b (S.assign_var "nbad" (E.int 0));
  Build.add_stmt b
    (k_loop
       [
         S.assign_var "bal"
           E.(idx "sen_lw" [ var "k" ] + idx "sen_sw" [ var "k" ]);
         S.if_
           E.(call "abs" [ var "bal" ] > real 1e6)
           [ S.assign_var "nbad" E.(var "nbad" + int 1) ]
           [];
       ]);
  Build.add_stmt b (S.assign_var "net" E.(var "toa_sw" - var "toa_lw"));
  Build.add_stmt b
    (S.assign_var "olr_win"
       E.(var "olr_win" + real 1e-6 * var "net" + real 1e-9 * var "nbad"))

(** Build the whole GLAF program for the SARB kernels. *)
let program () : Ir_module.program =
  let b = Build.create "sarb_glaf_program" in
  Build.add_module b "sarb_glaf";
  List.iter (Build.add_module_grid b) shared_grids;
  build_adjust2 b;
  build_lw_exchange_up b;
  build_lw_exchange_dn b;
  build_ent_contrib b;
  build_ent_exchange b;
  build_lw_band_sum b;
  build_sw_band_sum b;
  build_longwave b;
  build_lw_spectral b;
  build_sw_spectral b;
  build_sw_entropy b;
  build_entropy_interface b;
  Build.finish b

(** The six Table-1 kernels (excludes the §3.3 helper functions). *)
let kernel_names = Sarb_legacy.kernel_names

(** Helper functions GLAF introduced (interior loops, §3.3). *)
let helper_names =
  [ "lw_exchange_up"; "lw_exchange_dn"; "ent_contrib"; "ent_exchange";
    "lw_band_sum"; "sw_band_sum" ]
