(** The GLAF decomposition of the FUN3D Jacobian reconstruction (§4.2).

    GLAF's enforced program structure splits the original single
    function into the five sub-functions the paper names: [edgejp]
    (outermost scope + cell loop), [cell_loop] (per-cell work with
    interior node/face/edge loops), [edge_loop] (per-edge flux
    contribution with ~10 dynamically-allocated temporaries — the
    paper's count is 50 for the real kernel), [angle_check] and
    [ioff_search].

    [program ~opts] builds a {e variant}: GLAF generates every
    parallelization level, and the per-level on/off switches of the
    paper's Figure 7 decide which loops actually carry directives,
    whether scatter updates are atomic, and whether dynamic
    temporaries carry SAVE (the no-reallocation option). *)

open Glaf_ir
open Glaf_builder
module E = Expr
module S = Stmt

type options = {
  par_edgejp : bool;  (** OMP on the outer loop over cells *)
  par_cell : bool;  (** OMP on cell_loop's node/face/component loops *)
  par_edge : bool;  (** OMP on edge_loop's component loops *)
  par_ioff : bool;  (** OMP + critical in ioff_search *)
  no_realloc : bool;  (** SAVE dynamic temporaries *)
}

let serial_options =
  {
    par_edgejp = false;
    par_cell = false;
    par_edge = false;
    par_ioff = false;
    no_realloc = false;
  }

let best_options = { serial_options with par_edgejp = true; no_realloc = true }

let any_parallel o = o.par_edgejp || o.par_cell || o.par_edge || o.par_ioff

let option_label o =
  let flag b tag = if b then tag else "" in
  let tags =
    List.filter
      (fun s -> s <> "")
      [
        flag o.par_edgejp "EdgeJP";
        flag o.par_cell "Cell";
        flag o.par_edge "Edge";
        flag o.par_ioff "IOff";
        flag o.no_realloc "NoRealloc";
      ]
  in
  if tags = [] then "serial" else String.concat "+" tags

(* --- grids ---------------------------------------------------------- *)

let mesh_int name = Grid.scalar ~storage:(Grid.External_module "mesh_mod") Types.T_int name

let mesh_iarr dims name =
  Grid.array ~storage:(Grid.External_module "mesh_mod") Types.T_int
    ~dims:(List.map (fun d -> Grid.dim d) dims)
    name

let mesh_rarr dims name =
  Grid.array ~storage:(Grid.External_module "mesh_mod") Types.T_real8
    ~dims:(List.map (fun d -> Grid.dim d) dims)
    name

let mesh_real name =
  Grid.scalar ~storage:(Grid.External_module "mesh_mod") Types.T_real8 name

let jac_arr name =
  Grid.array ~storage:(Grid.External_module "jac_mod") Types.T_real8
    ~dims:[ Grid.dim (Grid.Sym "nq"); Grid.dim (Grid.Sym "nnode") ]
    name

let mesh_surface =
  [
    mesh_int "nq"; mesh_int "npc"; mesh_int "nec";
    mesh_int "ncell"; mesh_int "nnode";
    mesh_iarr [ Grid.Fixed 4; Grid.Sym "ncell" ] "cell_nodes";
    mesh_rarr [ Grid.Sym "ncell" ] "cell_vol";
    mesh_rarr [ Grid.Fixed 4; Grid.Sym "ncell" ] "face_area";
    mesh_rarr [ Grid.Fixed 4; Grid.Sym "ncell" ] "face_angle";
    mesh_rarr [ Grid.Sym "nq"; Grid.Sym "nnode" ] "q";
    mesh_iarr [ Grid.Fixed 6 ] "ed1";
    mesh_iarr [ Grid.Fixed 6 ] "ed2";
    mesh_real "angle_limit";
  ]

(* dynamic local temp: symbolic extents force ALLOCATABLE generation,
   optionally with SAVE (no-reallocation) *)
let temp ~save dims name =
  Grid.make ~kind:(Grid.Dense Types.T_real8) ~save
    ~dims:(List.map (fun d -> Grid.dim d) dims)
    name

let local_int name = Grid.scalar Types.T_int name
let local_real name = Grid.scalar Types.T_real8 name

(* directive helper *)
let dir ?(collapse = 1) privates =
  Some
    {
      Stmt.private_vars = privates;
      reductions = [];
      collapse;
      num_threads = None;
      schedule = None;
    }

let maybe_dir on ?collapse privates = if on then dir ?collapse privates else None

(* --- angle_check ----------------------------------------------------- *)

let build_angle_check b =
  Build.start_function b "angle_check" ~return:Types.T_int;
  Build.add_param b (local_int "c");
  List.iter (Build.add_grid b)
    [ mesh_int "npc"; mesh_rarr [ Grid.Fixed 4; Grid.Sym "ncell" ] "face_angle";
      mesh_int "ncell"; mesh_real "angle_limit" ];
  Build.add_grid b (local_real "amax");
  Build.start_step b "scan_faces";
  Build.add_stmt b (S.assign_var "amax" (E.real 0.0));
  Build.add_stmt b
    (S.for_ "f" ~lo:(E.int 1) ~hi:(E.var "npc")
       [
         S.assign_var "amax"
           (E.call "max"
              [ E.var "amax"; E.idx "face_angle" [ E.var "f"; E.var "c" ] ]);
       ]);
  Build.start_step b "verdict";
  Build.add_stmt b
    (S.if_
       E.(var "amax" > var "angle_limit")
       [ S.Return (Some (E.int 0)) ]
       []);
  Build.add_stmt b (S.Return (Some (E.int 1)))

(* --- ioff_search ------------------------------------------------------ *)

let build_ioff_search ~opts b =
  Build.start_function b "ioff_search" ~return:Types.T_int;
  Build.add_param b (local_int "c");
  Build.add_param b (local_int "n");
  List.iter (Build.add_grid b)
    [ mesh_int "npc"; mesh_int "ncell";
      mesh_iarr [ Grid.Fixed 4; Grid.Sym "ncell" ] "cell_nodes" ];
  Build.add_grid b (local_int "ipos");
  Build.start_step b "search";
  Build.add_stmt b (S.assign_var "ipos" (E.int 0));
  (* first-match semantics without EXIT; under the parallel option the
     assignment sits in a critical section (the paper's early-return
     critical) *)
  let record = S.assign_var "ipos" (E.var "p") in
  let body =
    S.if_
      E.(var "ipos" = int 0 && idx "cell_nodes" [ var "p"; var "c" ] = var "n")
      [ (if opts.par_ioff then S.Critical [ record ] else record) ]
      []
  in
  Build.add_stmt b
    (S.For
       {
         S.index = "p";
         lo = E.int 1;
         hi = E.var "npc";
         step = E.int 1;
         body = [ body ];
         directive = maybe_dir opts.par_ioff [];
         schedule = None;
       });
  Build.add_stmt b (S.Return (Some (E.var "ipos")))

(* --- combine_flux ------------------------------------------------------ *)

(* Per-component flux combination: a leaf (straight-line arithmetic
   over scalar dummies) the bytecode compiler inlines into the edge
   loop's flux sweep.  Same operations in the same order as the
   expression it replaces, so the factoring is bit-preserving. *)
let build_combine_flux b =
  Build.start_function b "combine_flux" ~return:Types.T_real8;
  Build.add_param b (local_real "flv");
  Build.add_param b (local_real "wrv");
  Build.add_param b (local_real "wlv");
  Build.add_param b (local_real "dissv");
  Build.start_step b "combine";
  Build.add_stmt b
    (S.Return
       (Some
          E.((var "flv" + var "wrv") / var "wlv" + var "dissv" * real 0.0)))

(* --- edge_loop --------------------------------------------------------- *)

let build_edge_loop ~opts b =
  let save = opts.no_realloc in
  Build.start_function b "edge_loop";
  Build.add_param b (local_int "c");
  Build.add_param b (local_int "e");
  Build.add_param b
    (Grid.array Types.T_real8
       ~dims:[ Grid.dim (Grid.Sym "nq"); Grid.dim (Grid.Fixed 4) ]
       "qn");
  Build.add_param b
    (Grid.array Types.T_real8
       ~dims:[ Grid.dim (Grid.Fixed 3); Grid.dim (Grid.Sym "nq") ]
       "grad");
  List.iter (Build.add_grid b)
    [ mesh_int "nq"; mesh_int "ncell"; mesh_int "nnode";
      mesh_iarr [ Grid.Fixed 4; Grid.Sym "ncell" ] "cell_nodes";
      mesh_rarr [ Grid.Fixed 4; Grid.Sym "ncell" ] "face_area";
      mesh_rarr [ Grid.Sym "ncell" ] "cell_vol";
      mesh_iarr [ Grid.Fixed 6 ] "ed1"; mesh_iarr [ Grid.Fixed 6 ] "ed2";
      jac_arr "ajac" ];
  (* the paper counts ~50 dynamically allocated temporaries in the real
     edge loop; this scaled kernel carries 10 *)
  List.iter
    (fun name -> Build.add_grid b (temp ~save [ Grid.Sym "nq" ] name))
    [ "fl"; "fr"; "df"; "dql"; "dqr"; "diss"; "wl"; "wr"; "qa"; "qb" ];
  List.iter (Build.add_grid b)
    [ local_int "p1"; local_int "p2"; local_int "n1"; local_int "n2";
      local_int "ipos1"; local_int "ipos2"; local_real "w";
      local_real "flv"; local_real "wrv"; local_real "wlv";
      local_real "dissv" ];
  Build.start_step b "endpoints";
  Build.add_stmt b (S.assign_var "p1" (E.idx "ed1" [ E.var "e" ]));
  Build.add_stmt b (S.assign_var "p2" (E.idx "ed2" [ E.var "e" ]));
  Build.add_stmt b
    (S.assign_var "n1" (E.idx "cell_nodes" [ E.var "p1"; E.var "c" ]));
  Build.add_stmt b
    (S.assign_var "n2" (E.idx "cell_nodes" [ E.var "p2"; E.var "c" ]));
  Build.add_stmt b (S.assign_var "ipos1" (E.call "ioff_search" [ E.var "c"; E.var "n1" ]));
  Build.add_stmt b (S.assign_var "ipos2" (E.call "ioff_search" [ E.var "c"; E.var "n2" ]));
  Build.add_stmt b
    (S.assign_var "w"
       E.(idx "face_area" [ var "p1"; var "c" ] * real 0.5
          + idx "face_area" [ var "p2"; var "c" ] * real 0.5));
  Build.start_step b "flux";
  Build.add_stmt b
    (S.For
       {
         S.index = "i";
         lo = E.int 1;
         hi = E.var "nq";
         step = E.int 1;
         body =
           [
             S.assign_idx "dql" [ E.var "i" ]
               E.(idx "qn" [ var "i"; var "ipos1" ]);
             S.assign_idx "dqr" [ E.var "i" ]
               E.(idx "qn" [ var "i"; var "ipos2" ]);
             S.assign_idx "qa" [ E.var "i" ]
               E.(real 0.5 * (idx "dql" [ var "i" ] + idx "dqr" [ var "i" ]));
             S.assign_idx "qb" [ E.var "i" ]
               E.(idx "dqr" [ var "i" ] - idx "dql" [ var "i" ]);
             S.assign_idx "fl" [ E.var "i" ] E.(idx "qa" [ var "i" ] * var "w");
             S.assign_idx "fr" [ E.var "i" ]
               E.(idx "grad" [ int 1; var "i" ] * real 0.31
                  + idx "grad" [ int 2; var "i" ] * real 0.21
                  + idx "grad" [ int 3; var "i" ] * real 0.11);
             S.assign_idx "wl" [ E.var "i" ]
               E.(real 1.0 + call "abs" [ idx "fl" [ var "i" ] ]);
             S.assign_idx "wr" [ E.var "i" ]
               E.(idx "fr" [ var "i" ] * idx "cell_vol" [ var "c" ]);
             S.assign_idx "diss" [ E.var "i" ]
               E.(real 0.05 * idx "qb" [ var "i" ]);
             S.assign_var "flv" (E.idx "fl" [ E.var "i" ]);
             S.assign_var "wrv" (E.idx "wr" [ E.var "i" ]);
             S.assign_var "wlv" (E.idx "wl" [ E.var "i" ]);
             S.assign_var "dissv" (E.idx "diss" [ E.var "i" ]);
             S.assign_idx "df" [ E.var "i" ]
               (E.call "combine_flux"
                  [ E.var "flv"; E.var "wrv"; E.var "wlv"; E.var "dissv" ]);
           ];
         directive =
           maybe_dir opts.par_edge [ "flv"; "wrv"; "wlv"; "dissv" ];
         schedule = None;
       });
  Build.start_step b "scatter";
  let update sign node =
    let rhs =
      if sign > 0 then
        E.(idx "ajac" [ var "i"; var node ] + idx "df" [ var "i" ])
      else E.(idx "ajac" [ var "i"; var node ] - idx "df" [ var "i" ])
    in
    let target = { E.grid = "ajac"; field = None; indices = [ E.var "i"; E.var node ] } in
    if any_parallel opts then S.Atomic (target, rhs) else S.Assign (target, rhs)
  in
  Build.add_stmt b
    (S.For
       {
         S.index = "i";
         lo = E.int 1;
         hi = E.var "nq";
         step = E.int 1;
         body = [ update 1 "n1"; update (-1) "n2" ];
         directive = maybe_dir opts.par_edge [];
         schedule = None;
       })

(* --- cell_loop ---------------------------------------------------------- *)

let build_cell_loop ~opts b =
  let save = opts.no_realloc in
  Build.start_function b "cell_loop";
  Build.add_param b (local_int "c");
  List.iter (Build.add_grid b) mesh_surface;
  Build.add_grid b (temp ~save [ Grid.Sym "nq"; Grid.Fixed 4 ] "qn");
  Build.add_grid b (temp ~save [ Grid.Fixed 3; Grid.Sym "nq" ] "grad");
  List.iter (Build.add_grid b) [ local_int "aok"; local_int "n1"; local_real "w" ];
  Build.start_step b "angle";
  Build.add_stmt b (S.assign_var "aok" (E.call "angle_check" [ E.var "c" ]));
  Build.add_stmt b (S.if_ E.(var "aok" = int 0) [ S.Return None ] []);
  Build.start_step b "gather";
  Build.add_stmt b
    (S.For
       {
         S.index = "p";
         lo = E.int 1;
         hi = E.var "npc";
         step = E.int 1;
         body =
           [
             S.assign_var "n1" (E.idx "cell_nodes" [ E.var "p"; E.var "c" ]);
             S.for_ "i" ~lo:(E.int 1) ~hi:(E.var "nq")
               [
                 S.assign_idx "qn" [ E.var "i"; E.var "p" ]
                   (E.idx "q" [ E.var "i"; E.var "n1" ]);
               ];
           ];
         directive = maybe_dir opts.par_cell [ "n1"; "i" ];
         schedule = None;
       });
  Build.start_step b "gradient";
  (* component-major so the parallel loop carries no accumulation race *)
  Build.add_stmt b
    (S.For
       {
         S.index = "i";
         lo = E.int 1;
         hi = E.var "nq";
         step = E.int 1;
         body =
           [
             S.assign_idx "grad" [ E.int 1; E.var "i" ] (E.real 0.0);
             S.assign_idx "grad" [ E.int 2; E.var "i" ] (E.real 0.0);
             S.assign_idx "grad" [ E.int 3; E.var "i" ] (E.real 0.0);
             S.for_ "f" ~lo:(E.int 1) ~hi:(E.var "npc")
               [
                 S.assign_var "w"
                   E.(idx "face_area" [ var "f"; var "c" ]
                      / idx "cell_vol" [ var "c" ]);
                 S.assign_idx "grad" [ E.int 1; E.var "i" ]
                   E.(idx "grad" [ int 1; var "i" ]
                      + var "w" * idx "qn" [ var "i"; var "f" ] * real 0.71);
                 S.assign_idx "grad" [ E.int 2; E.var "i" ]
                   E.(idx "grad" [ int 2; var "i" ]
                      + var "w" * idx "qn" [ var "i"; var "f" ] * real 0.53);
                 S.assign_idx "grad" [ E.int 3; E.var "i" ]
                   E.(idx "grad" [ int 3; var "i" ]
                      - var "w" * idx "qn" [ var "i"; var "f" ] * real 0.39);
               ];
           ];
         directive = maybe_dir opts.par_cell [ "f"; "w" ];
         schedule = None;
       });
  Build.start_step b "edges";
  Build.add_stmt b
    (S.For
       {
         S.index = "e";
         lo = E.int 1;
         hi = E.var "nec";
         step = E.int 1;
         body =
           [ S.Call ("edge_loop", [ E.var "c"; E.var "e"; E.var "qn"; E.var "grad" ]) ];
         directive = maybe_dir opts.par_edge [];
         schedule = None;
       })

(* --- edgejp (outermost) --------------------------------------------------- *)

let build_edgejp ~opts b =
  Build.start_function b "edgejp";
  List.iter (Build.add_grid b) [ mesh_int "nq"; mesh_int "nnode"; mesh_int "ncell" ];
  Build.add_grid b (jac_arr "ajac");
  Build.start_step b "zero";
  Build.add_stmt b
    (S.For
       {
         S.index = "n";
         lo = E.int 1;
         hi = E.var "nnode";
         step = E.int 1;
         body =
           [
             S.for_ "i" ~lo:(E.int 1) ~hi:(E.var "nq")
               [ S.assign_idx "ajac" [ E.var "i"; E.var "n" ] (E.real 0.0) ];
           ];
         directive = maybe_dir opts.par_edgejp ~collapse:2 [ "i" ];
         schedule = None;
       });
  Build.start_step b "cells";
  Build.add_stmt b
    (S.For
       {
         S.index = "c";
         lo = E.int 1;
         hi = E.var "ncell";
         step = E.int 1;
         body = [ S.Call ("cell_loop", [ E.var "c" ]) ];
         directive = maybe_dir opts.par_edgejp [];
         schedule = None;
       })

(** Build a Figure-7 variant. *)
let program ~opts : Ir_module.program =
  let b = Build.create "fun3d_glaf_program" in
  Build.add_module b "fun3d_glaf";
  build_angle_check b;
  build_ioff_search ~opts b;
  build_combine_flux b;
  build_edge_loop ~opts b;
  build_cell_loop ~opts b;
  build_edgejp ~opts b;
  Build.finish b

(** Dynamic temporaries per function (reallocation study). *)
let dynamic_temp_counts () =
  let p = program ~opts:serial_options in
  List.map
    (fun (f : Func.t) ->
      (f.Func.name, Glaf_optimizer.No_realloc.dynamic_temp_count f))
    (Ir_module.all_functions p)
