(** FUN3D experiment orchestration: Figure 7's option matrix.

    Each variant integrates the GLAF-generated five-function
    decomposition with the legacy mesh code, runs it through the
    interpreter on a scaled synthetic mesh (verifying the §4.2.1 RMS
    check against the original serial version), and evaluates the
    paper-scale (1M-cell) performance on the Xeon machine model. *)

open Glaf_fortran
open Glaf_runtime
open Glaf_interp
open Glaf_codegen
open Glaf_integration

type variant =
  | Original_serial
  | Manual_parallel  (** the paper's hand-parallelized comparison *)
  | Glaf of Fun3d_glaf.options

let variant_name = function
  | Original_serial -> "original serial"
  | Manual_parallel -> "manual parallel"
  | Glaf o -> "GLAF " ^ Fun3d_glaf.option_label o

(** The option combinations of Figure 7 (all parallelization levels
    with and without the no-reallocation option), plus the serial and
    manual references. *)
let figure7_variants =
  let open Fun3d_glaf in
  [
    Original_serial;
    Glaf { serial_options with par_edge = true };
    Glaf { serial_options with par_edge = true; no_realloc = true };
    Glaf { serial_options with par_cell = true };
    Glaf { serial_options with par_cell = true; no_realloc = true };
    Glaf { serial_options with par_cell = true; par_edge = true; par_ioff = true };
    Glaf
      {
        serial_options with
        par_cell = true;
        par_edge = true;
        par_ioff = true;
        no_realloc = true;
      };
    Glaf { serial_options with par_edgejp = true };
    Glaf best_options;
    Manual_parallel;
  ]

(** Integration check of the GLAF program against the legacy model. *)
let integration_issues () =
  let legacy = Legacy_model.of_ast (Fun3d_legacy.parse ()) in
  Checker.check legacy (Fun3d_glaf.program ~opts:Fun3d_glaf.serial_options)

let generated_cu opts =
  Fortran_gen.gen_program (Fun3d_glaf.program ~opts)

(* The GLAF entry point is [edgejp]; the legacy entry is
   [jacobian_fill].  Wire a forwarding subroutine so callers are
   uniform. *)
let forwarding_source =
  "subroutine jacobian_fill_glaf()\ncall edgejp()\nend subroutine jacobian_fill_glaf\n"

let integrated_cu (v : variant) : Ast.compilation_unit =
  let legacy = Fun3d_legacy.parse () in
  match v with
  | Original_serial | Manual_parallel -> legacy
  | Glaf opts ->
    let generated =
      generated_cu opts @ Parser.parse_string forwarding_source
    in
    let cu, _ = Splice.substitute ~legacy ~generated in
    cu

let entry_name = function
  | Original_serial -> "jacobian_fill"
  | Manual_parallel -> "jacobian_fill_manual"
  | Glaf _ -> "jacobian_fill_glaf"

type run_result = {
  rms : float;
  allocations : int;
}

(** Run one variant end to end on an [ncell]-cell mesh. *)
let run ?(threads = 4) ?(bytecode = true)
    ?(ncell = Fun3d_legacy.default_test_ncell) (v : variant) : run_result =
  let st = Interp.make_state ~printer:ignore (integrated_cu v) in
  Interp.set_threads st threads;
  Interp.set_bytecode st bytecode;
  ignore (Interp.call st "fun3d_init_mesh" [ Ast.Int_lit ncell ]);
  Interp.reset_allocations st;
  ignore (Interp.call st (entry_name v) []);
  let rms =
    match Interp.call st "fun3d_rms" [] with
    | Some x -> Value.to_float x
    | None -> Value.error "fun3d_rms returned nothing"
  in
  { rms; allocations = Interp.allocations st }

(** §4.2.1 verification: RMS of every variant against the original at
    1e-7 absolute tolerance (the paper's threshold). *)
let verify ?(threads = 4) ?(ncell = Fun3d_legacy.default_test_ncell) () =
  let reference = run ~threads:1 ~ncell Original_serial in
  List.map
    (fun v ->
      let r = run ~threads ~ncell v in
      (v, Float.abs (r.rms -. reference.rms), r.allocations))
    figure7_variants

(** {1 Performance (cost model, paper scale)} *)

let modeled_time ?(threads = 16) ?(ncell = Fun3d_legacy.paper_ncell)
    (v : variant) : float =
  let cu = integrated_cu v in
  let cfg =
    {
      (Glaf_perf.Cost.default_config Glaf_perf.Machine.xeon_e5_2637v4) with
      Glaf_perf.Cost.threads;
      bindings = [ ("nc", ncell) ];
    }
  in
  (* mesh sizes are set by fun3d_init_mesh at runtime; for the static
     cost model we bind them directly *)
  let cfg =
    {
      cfg with
      Glaf_perf.Cost.bindings =
        [ ("ncell", ncell); ("nnode", (ncell / 5) + 8) ] @ cfg.Glaf_perf.Cost.bindings;
    }
  in
  Glaf_perf.Cost.time cfg cu (entry_name v)

(** Figure 7 series: 16-thread speed-up over the original serial
    implementation for each option combination. *)
let figure7 ?(threads = 16) ?(ncell = Fun3d_legacy.paper_ncell) () =
  let base = modeled_time ~threads ~ncell Original_serial in
  List.map
    (fun v -> (variant_name v, base /. modeled_time ~threads ~ncell v))
    figure7_variants

(** Landmark values from the paper's Figure 7. *)
let figure7_paper_landmarks =
  [
    ("manual parallel", 3.85);
    ("GLAF EdgeJP+NoRealloc", 1.67);
  ]
