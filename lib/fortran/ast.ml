(** AST for the Fortran subset GLAF generates and legacy codes use.

    The subset is free-form Fortran 90 plus the FORTRAN 77 legacy
    constructs the paper's integration features target: COMMON blocks,
    SAVE, derived TYPEs with [%] element access, ALLOCATABLE arrays and
    OpenMP directive comments ([!$OMP ...]).  Designators are kept as
    Fortran part-ref chains ([a(i)%b(j)]); whether a [(args)] suffix is
    an array subscript or a function call is resolved during
    interpretation, exactly as Fortran's grammar requires. *)

type base_type =
  | Integer
  | Real
  | Real8  (** REAL*8 / DOUBLE PRECISION *)
  | Logical
  | Character of int option  (** LEN, if given *)
  | Derived of string  (** TYPE(name) *)
[@@deriving show { with_path = false }, eq]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Pow
  | Concat
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Eqv
  | Neqv
[@@deriving show { with_path = false }, eq]

type unop =
  | Neg
  | Pos
  | Not
[@@deriving show { with_path = false }, eq]

(** A part-ref chain: [a(i,j)%b%c(k)] is
    [[("a", [i; j]); ("b", []); ("c", [k])]]. *)
type designator = (string * expr list) list

and expr =
  | Int_lit of int
  | Real_lit of float * bool  (** value, is-double ("1.0d0") *)
  | Logical_lit of bool
  | Str_lit of string
  | Desig of designator
      (** variable, array element, or function call: resolved later *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Implied_do of expr * string * expr * expr
      (** (expr, i = lo, hi) in array constructors — minimal support *)
  | Section of expr option * expr option
      (** array-section subscript [lo:hi]; only valid inside designator
          argument lists, e.g. [a(1:n)] or [a(:)] *)
[@@deriving show { with_path = false }, eq]

let var name : expr = Desig [ (name, []) ]
let desig_name (d : designator) = fst (List.hd d)

type omp_schedule =
  | Static  (** default static chunking, no chunk argument *)
  | Static_chunk of int  (** [schedule(static, k)] *)
  | Dynamic of int  (** [schedule(dynamic[, k])], default chunk 1 *)
  | Guided of int  (** [schedule(guided[, k])], floor chunk, default 1 *)
[@@deriving show { with_path = false }, eq]

type omp_reduction_op =
  | Osum
  | Oprod
  | Omax
  | Omin
[@@deriving show { with_path = false }, eq]

(** Clauses of a [!$OMP PARALLEL DO] directive. *)
type omp_do = {
  omp_private : string list;
  omp_firstprivate : string list;
  omp_shared : string list;
  omp_reduction : (omp_reduction_op * string list) list;
  omp_collapse : int;  (** 1 = no clause *)
  omp_num_threads : expr option;
  omp_schedule : omp_schedule option;
  omp_copyprivate : string list;
}
[@@deriving show { with_path = false }, eq]

let omp_do_default =
  {
    omp_private = [];
    omp_firstprivate = [];
    omp_shared = [];
    omp_reduction = [];
    omp_collapse = 1;
    omp_num_threads = None;
    omp_schedule = None;
    omp_copyprivate = [];
  }

type stmt =
  | Assign of designator * expr
  | If_block of (expr * stmt list) list * stmt list
      (** IF/ELSE IF/ELSE/END IF *)
  | If_arith of expr * stmt  (** logical IF: [IF (c) stmt] *)
  | Do of do_loop
  | Do_while of expr * stmt list
  | Call of string * expr list
  | Return
  | Exit
  | Cycle
  | Stop of string option
  | Allocate of (designator * expr list) list
  | Deallocate of designator list
  | Print of expr list
  | Omp_atomic of stmt  (** following update statement *)
  | Omp_critical of stmt list
  | Omp_barrier
  | Comment of string
  | Continue  (** no-op; DO loop terminator in some legacy styles *)

and do_loop = {
  do_var : string;
  do_lo : expr;
  do_hi : expr;
  do_step : expr option;
  do_body : stmt list;
  do_omp : omp_do option;  (** attached PARALLEL DO directive *)
}
[@@deriving show { with_path = false }, eq]

(** Declaration attributes. *)
type attr =
  | Dimension of (expr option * expr) list
      (** (lower, upper) per dim; deferred shape "(: , :)" encoded as
          [(None, Int_lit 0)] entries with [Deferred] flag below *)
  | Allocatable
  | Save
  | Parameter
  | Intent_in
  | Intent_out
  | Intent_inout
  | Pointer
  | Target
[@@deriving show { with_path = false }, eq]

type entity = {
  ent_name : string;
  ent_dims : (expr option * expr) list option;
      (** per-entity dimension spec overriding DIMENSION attr *)
  ent_deferred : int option;  (** rank if declared with deferred shape *)
  ent_init : expr option;
}
[@@deriving show { with_path = false }, eq]

type decl =
  | Var_decl of {
      base : base_type;
      attrs : attr list;
      entities : entity list;
    }
  | Type_def of {
      type_name : string;
      fields : decl list;  (** Var_decls only *)
    }
  | Common of string * string list  (** COMMON /name/ v1, v2, ... *)
  | Use of string * string list  (** USE mod [, ONLY: names] *)
  | Implicit_none
  | External of string list
  | Decl_comment of string
[@@deriving show { with_path = false }, eq]

type subprogram = {
  sub_name : string;
  sub_kind : [ `Subroutine | `Function of base_type option ];
      (** function result type may come from a declaration instead *)
  sub_args : string list;
  sub_decls : decl list;
  sub_body : stmt list;
}
[@@deriving show { with_path = false }, eq]

type module_unit = {
  mod_name : string;
  mod_decls : decl list;
  mod_contains : subprogram list;
}
[@@deriving show { with_path = false }, eq]

type main_unit = {
  main_name : string;
  main_decls : decl list;
  main_body : stmt list;
}
[@@deriving show { with_path = false }, eq]

type program_unit =
  | Module of module_unit
  | Standalone of subprogram
  | Main of main_unit
[@@deriving show { with_path = false }, eq]

type compilation_unit = program_unit list

(** {1 Convenience accessors} *)

let unit_name = function
  | Module m -> m.mod_name
  | Standalone s -> s.sub_name
  | Main m -> m.main_name

let subprograms_of = function
  | Module m -> m.mod_contains
  | Standalone s -> [ s ]
  | Main _ -> []

let all_subprograms (cu : compilation_unit) =
  List.concat_map subprograms_of cu

let find_subprogram cu name =
  List.find_opt
    (fun s -> String.lowercase_ascii s.sub_name = String.lowercase_ascii name)
    (all_subprograms cu)

let find_module cu name =
  List.find_map
    (function
      | Module m
        when String.lowercase_ascii m.mod_name = String.lowercase_ascii name
        ->
        Some m
      | _ -> None)
    cu

(** {1 Traversal} *)

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Int_lit _ | Real_lit _ | Logical_lit _ | Str_lit _ -> acc
  | Desig parts ->
    List.fold_left
      (fun acc (_, args) -> List.fold_left (fold_expr f) acc args)
      acc parts
  | Unop (_, a) -> fold_expr f acc a
  | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Implied_do (e, _, lo, hi) ->
    fold_expr f (fold_expr f (fold_expr f acc e) lo) hi
  | Section (lo, hi) ->
    let acc = Option.fold ~none:acc ~some:(fold_expr f acc) lo in
    Option.fold ~none:acc ~some:(fold_expr f acc) hi

let rec fold_stmts f acc stmts =
  List.fold_left
    (fun acc s ->
      let acc = f acc s in
      match s with
      | Assign _ | Call _ | Return | Exit | Cycle | Stop _ | Allocate _
      | Deallocate _ | Print _ | Comment _ | Continue | Omp_barrier ->
        acc
      | If_block (branches, else_) ->
        let acc =
          List.fold_left (fun acc (_, b) -> fold_stmts f acc b) acc branches
        in
        fold_stmts f acc else_
      | If_arith (_, s) -> fold_stmts f acc [ s ]
      | Do l -> fold_stmts f acc l.do_body
      | Do_while (_, body) -> fold_stmts f acc body
      | Omp_atomic s -> fold_stmts f acc [ s ]
      | Omp_critical body -> fold_stmts f acc body)
    acc stmts

(** Every DO loop in [stmts] (pre-order). *)
let loops stmts =
  List.rev
    (fold_stmts
       (fun acc s ->
         match s with
         | Do l -> l :: acc
         | _ -> acc)
       [] stmts)

(** Rewrite every DO loop bottom-up. *)
let rec map_loops f stmts =
  let map_stmt s =
    match s with
    | Assign _ | Call _ | Return | Exit | Cycle | Stop _ | Allocate _
    | Deallocate _ | Print _ | Comment _ | Continue | Omp_barrier ->
      s
    | If_block (branches, else_) ->
      If_block
        ( List.map (fun (c, b) -> (c, map_loops f b)) branches,
          map_loops f else_ )
    | If_arith (c, s) -> (
      match map_loops f [ s ] with
      | [ s' ] -> If_arith (c, s')
      | _ -> assert false)
    | Do l -> Do (f { l with do_body = map_loops f l.do_body })
    | Do_while (c, body) -> Do_while (c, map_loops f body)
    | Omp_atomic s -> (
      match map_loops f [ s ] with
      | [ s' ] -> Omp_atomic s'
      | _ -> assert false)
    | Omp_critical body -> Omp_critical (map_loops f body)
  in
  List.map map_stmt stmts
